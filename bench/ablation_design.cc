// Ablation of this implementation's own design choices (DESIGN.md §3):
//   * chunk size — §3.5's memory/compression trade-off: bigger chunks give
//     the entropy stage more context and amortise framing, smaller chunks
//     bound tool memory and flush latency;
//   * DEFLATE effort level of the final entropy stage;
//   * the reference-order sender column — what replay-soundness costs.
// One MCB trace is recorded once, then re-encoded under each setting.
#include <chrono>
#include <cstdio>
#include <vector>

#include "common.h"
#include "record/chunk.h"
#include "runtime/storage.h"
#include "tool/recorder.h"
#include "tool/stream_recorder.h"

namespace {

using namespace cdc;

/// Captures every stream's raw events by re-running the recorder hooks.
class EventCapture : public tool::Recorder {
 public:
  using tool::Recorder::Recorder;

  void on_deliver(minimpi::Rank rank, minimpi::CallsiteId callsite,
                  minimpi::MFKind kind,
                  std::span<const minimpi::Completion> events) override {
    auto& stream = streams_[{rank, callsite}];
    for (std::size_t i = 0; i < events.size(); ++i)
      stream.push_back({true, i + 1 < events.size(), events[i].source,
                        events[i].piggyback});
    tool::Recorder::on_deliver(rank, callsite, kind, events);
  }
  void on_unmatched_test(minimpi::Rank rank,
                         minimpi::CallsiteId callsite) override {
    streams_[{rank, callsite}].push_back({false, false, -1, 0});
    tool::Recorder::on_unmatched_test(rank, callsite);
  }

  std::map<runtime::StreamKey, std::vector<record::ReceiveEvent>> streams_;
};

struct Measurement {
  std::uint64_t bytes = 0;
  double encode_seconds = 0.0;
};

Measurement encode_all(
    const std::map<runtime::StreamKey,
                   std::vector<record::ReceiveEvent>>& streams,
    std::size_t chunk_target, compress::DeflateLevel level) {
  runtime::CountingStore store;
  const auto start = std::chrono::steady_clock::now();
  for (const auto& [key, events] : streams) {
    tool::ToolOptions options;
    options.chunk_target = chunk_target;
    options.level = level;
    tool::StreamRecorder recorder(key, options);
    for (const auto& e : events) {
      if (e.flag) {
        recorder.on_delivered(e);
      } else {
        recorder.on_unmatched_test();
      }
      recorder.flush_if_due(store);
    }
    recorder.finalize(store);
  }
  Measurement m;
  m.bytes = store.total_bytes();
  m.encode_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return m;
}

}  // namespace

int main() {
  const int ranks = bench::env_int("CDC_RANKS", 192);
  bench::print_machine_banner(
      "Ablation — chunk size and entropy-stage effort (this repo's knobs)",
      ranks);

  runtime::CountingStore sink;
  EventCapture capture(ranks, &sink);
  minimpi::Simulator sim(bench::sim_config(ranks), &capture);
  apps::run_mcb(sim, bench::mcb_config(ranks));
  capture.finalize();

  std::uint64_t total_events = 0;
  for (const auto& [key, events] : capture.streams_)
    for (const auto& e : events) total_events += e.flag;
  std::printf("trace: %llu receive events across %zu streams\n\n",
              static_cast<unsigned long long>(total_events),
              capture.streams_.size());

  std::printf("-- chunk size (DEFLATE default) --\n");
  std::printf("%12s %12s %14s %12s\n", "chunk_target", "record size",
              "bytes/event", "encode time");
  for (const std::size_t target : {64u, 256u, 1024u, 4096u, 16384u}) {
    const auto m = encode_all(capture.streams_, target,
                              compress::DeflateLevel::kDefault);
    std::printf("%12zu %12llu %14.3f %10.3f s\n", target,
                static_cast<unsigned long long>(m.bytes),
                static_cast<double>(m.bytes) /
                    static_cast<double>(total_events),
                m.encode_seconds);
  }

  std::printf("\n-- DEFLATE level (chunk_target 4096) --\n");
  std::printf("%12s %12s %14s %12s\n", "level", "record size",
              "bytes/event", "encode time");
  const std::pair<const char*, compress::DeflateLevel> levels[] = {
      {"stored", compress::DeflateLevel::kStored},
      {"fast", compress::DeflateLevel::kFast},
      {"default", compress::DeflateLevel::kDefault},
      {"best", compress::DeflateLevel::kBest},
  };
  for (const auto& [name, level] : levels) {
    const auto m = encode_all(capture.streams_, 4096, level);
    std::printf("%12s %12llu %14.3f %10.3f s\n", name,
                static_cast<unsigned long long>(m.bytes),
                static_cast<double>(m.bytes) /
                    static_cast<double>(total_events),
                m.encode_seconds);
  }

  std::printf(
      "\nreading: record size shrinks with chunk size (entropy context +\n"
      "amortised framing) and with DEFLATE effort; encode time rises with\n"
      "effort. The defaults (4096 / default) sit at the knee.\n");
  return 0;
}
