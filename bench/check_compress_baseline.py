#!/usr/bin/env python3
"""CI perf-smoke gate: compare BENCH_compress.json against the committed
compressed-size baseline.

The fig13_compression bench DEFLATE-compresses a deterministic seeded
corpus, so per-level `compressed_bytes` depends only on the code, not the
machine. This script fails (exit 1) when the default level's compressed
size regresses by more than the baseline's tolerance (ratio loss — speed
is too machine-dependent to gate on). Other levels are reported, and only
warn, so an intentional retuning of fast/best shows up in the log without
blocking.

Usage: check_compress_baseline.py <BENCH_compress.json> [baseline.json]
"""

import json
import os
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    bench_path = sys.argv[1]
    baseline_path = (
        sys.argv[2]
        if len(sys.argv) > 2
        else os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "compress_baseline.json")
    )
    with open(bench_path) as f:
        bench = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)

    if bench.get("corpus_bytes") != baseline.get("corpus_bytes") or \
       bench.get("corpus_seed") != baseline.get("corpus_seed"):
        print(f"FAIL: corpus mismatch — bench ran "
              f"{bench.get('corpus_bytes')} bytes seed "
              f"{bench.get('corpus_seed')}, baseline expects "
              f"{baseline.get('corpus_bytes')} bytes seed "
              f"{baseline.get('corpus_seed')}; regenerate the baseline")
        return 1

    tolerance = float(baseline.get("tolerance", 0.02))
    measured = {row["level"]: int(row["compressed_bytes"])
                for row in bench.get("levels", [])}
    failed = False
    for level, expected in baseline["levels"].items():
        if level not in measured:
            print(f"FAIL: level '{level}' missing from {bench_path}")
            failed = True
            continue
        actual = measured[level]
        delta = (actual - expected) / expected
        verdict = "ok"
        if delta > tolerance:
            verdict = "REGRESSED" if level == "default" else "warn"
            failed |= level == "default"
        print(f"{level:>8}: {actual} bytes vs baseline {expected} "
              f"({delta:+.3%}, tolerance {tolerance:.0%}) {verdict}")
    if failed:
        print("FAIL: default-level compressed size regressed beyond "
              "tolerance; if intentional, update "
              "bench/compress_baseline.json")
        return 1
    print("compressed-size baseline check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
