#!/usr/bin/env python3
"""CI perf-smoke gate: compare BENCH_corpus.json against the committed
corpus-dedup baseline.

The fig21_corpus_dedup bench records a deterministic seeded MCB family
through CorpusStore, so its ratios depend only on the code, not the
machine. This script fails (exit 1) when either gated ratio drops more
than the baseline's tolerance below its committed value:

  * vs_gzip           — the ISSUE 6 acceptance number: the CDC corpus
                        container vs the sum of independent gzip records
  * rows_dedup_ratio  — raw bytes vs stored bytes of the rows corpus,
                        where the corpus machinery is the only compressor

Improvements (ratios above baseline) only print, so a retuning that makes
the corpus smaller shows up in the log without blocking.

Usage: check_corpus_baseline.py <BENCH_corpus.json> [baseline.json]
"""

import json
import os
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    bench_path = sys.argv[1]
    baseline_path = (
        sys.argv[2]
        if len(sys.argv) > 2
        else os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "corpus_baseline.json")
    )
    with open(bench_path) as f:
        bench = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)

    for key in ("ranks", "members", "base_seed"):
        if bench.get(key) != baseline.get(key):
            print(f"FAIL: config mismatch — bench ran {key}="
                  f"{bench.get(key)}, baseline expects {baseline.get(key)}; "
                  f"regenerate the baseline")
            return 1

    tolerance = float(baseline.get("tolerance", 0.02))
    measured = {
        "vs_gzip": float(bench.get("vs_gzip", 0.0)),
        "rows_dedup_ratio": float(
            bench.get("rows_corpus", {}).get("dedup_ratio", 0.0)),
    }
    failed = False
    for metric, actual in measured.items():
        expected = float(baseline[metric])
        delta = (actual - expected) / expected
        verdict = "ok"
        if delta < -tolerance:
            verdict = "REGRESSED"
            failed = True
        print(f"{metric:>18}: {actual:.4f} vs baseline {expected:.4f} "
              f"({delta:+.3%}, tolerance {tolerance:.0%}) {verdict}")
    if failed:
        print("FAIL: corpus dedup ratio regressed beyond tolerance; if "
              "intentional, update bench/corpus_baseline.json")
        return 1
    print("corpus-dedup baseline check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
