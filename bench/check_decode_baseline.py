#!/usr/bin/env python3
"""CI perf-smoke gate: compare BENCH_decode.json against the committed
decode baseline.

The fig22_decode_seek bench measures the batched inflate loop against the
deflate encoder on the same deterministic corpus, from min-of-reps timings
on the same machine. Absolute MB/s is machine-dependent, so the gated
quantity is the *relative* decode throughput `inflate_vs_deflate`
(inflate MB/s over deflate MB/s at the same level) — the ratio cancels
most machine variance, and losing the decode fast path (e.g. regressing
to a bit-serial loop) collapses it by an order of magnitude. The gate
fails (exit 1) when:
  * any level failed to round-trip (`decoded_ok` false),
  * the default level's ratio drops more than the baseline's tolerance
    below the committed value (other levels only warn), or
  * the epoch-index seek spread (slowest/fastest window start) exceeds
    the baseline bound — seek cost must not depend on window position.

Usage: check_decode_baseline.py <BENCH_decode.json> [baseline.json]
"""

import json
import os
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    bench_path = sys.argv[1]
    baseline_path = (
        sys.argv[2]
        if len(sys.argv) > 2
        else os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "decode_baseline.json")
    )
    with open(bench_path) as f:
        bench = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)

    if bench.get("corpus_bytes") != baseline.get("corpus_bytes") or \
       bench.get("corpus_seed") != baseline.get("corpus_seed"):
        print(f"FAIL: corpus mismatch — bench ran "
              f"{bench.get('corpus_bytes')} bytes seed "
              f"{bench.get('corpus_seed')}, baseline expects "
              f"{baseline.get('corpus_bytes')} bytes seed "
              f"{baseline.get('corpus_seed')}; regenerate the baseline")
        return 1

    tolerance = float(baseline.get("tolerance", 0.05))
    measured = {row["level"]: row for row in bench.get("levels", [])}
    failed = False
    for level, expected in baseline["levels"].items():
        if level not in measured:
            print(f"FAIL: level '{level}' missing from {bench_path}")
            failed = True
            continue
        row = measured[level]
        if not row.get("decoded_ok", False):
            print(f"FAIL: level '{level}' did not round-trip")
            failed = True
            continue
        actual = float(row["inflate_vs_deflate"])
        delta = (actual - expected) / expected
        verdict = "ok"
        if delta < -tolerance:
            verdict = "REGRESSED" if level == "default" else "warn"
            failed |= level == "default"
        print(f"{level:>8}: inflate/deflate {actual:.2f}x vs baseline "
              f"{expected:.2f}x ({delta:+.3%}, tolerance {tolerance:.0%}) "
              f"{verdict}")

    spread = float(bench.get("seek", {}).get("seek_spread", 0.0))
    max_spread = float(baseline.get("max_seek_spread", 2.0))
    if spread <= 0.0 or spread > max_spread:
        print(f"FAIL: seek spread {spread:.2f}x exceeds {max_spread:.2f}x — "
              f"window-read cost depends on where the window starts")
        failed = True
    else:
        print(f"    seek: spread {spread:.2f}x across window starts "
              f"(bound {max_spread:.2f}x) ok")

    if failed:
        print("FAIL: decode throughput or seek behaviour regressed; if "
              "intentional, update bench/decode_baseline.json")
        return 1
    print("decode baseline check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
