#!/usr/bin/env python3
"""CI perf-smoke gate for the parallel simulator (BENCH_parallel.json).

Two kinds of checks, with very different strictness:

* Determinism — strict, on every host. The fig25 bench runs the same
  seeded 3,072-rank MCB workload at 1/2/4/8 workers and records an order
  digest per row (order-sensitive tally bits + the full counter set). The
  executor's contract is worker-count invariance, so ANY cross-row digest
  difference fails the gate, and the 12,288-rank large run must have
  completed.

* Speedup — gated only where it is meaningful. Wall-clock scaling is
  checked only for rows whose worker count fits the measuring host
  (workers <= host_cores): those rows must not fall below ~1x against the
  1-worker row, the ordering must be monotone non-decreasing (within
  slack), and when the host has 8+ cores the 8-worker row must reach the
  3x acceptance bar. Rows beyond host_cores measure oversubscription, not
  the executor, and only warn. Absolute timings are never gated.

Usage: check_parallel_baseline.py <BENCH_parallel.json>
"""

import json
import sys

SPEEDUP_SLACK = 0.15  # generous: CI timing noise, shared runners
EIGHT_WORKER_BAR = 3.0  # the acceptance bar, gated only on 8+ core hosts


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        bench = json.load(f)

    host_cores = int(bench.get("host_cores", 0))
    scaling = bench.get("scaling", [])
    if not scaling:
        print("FAIL: no scaling rows in", sys.argv[1])
        return 1

    failed = False

    # --- determinism: strict ------------------------------------------------
    digests = {row["workers"]: row.get("order_digest") for row in scaling}
    reference = scaling[0].get("order_digest")
    for workers, digest in digests.items():
        if digest != reference:
            print(f"FAIL: order digest at {workers} workers "
                  f"({digest}) differs from the 1-worker row ({reference}) "
                  f"— the executor is not worker-count-invariant")
            failed = True
    if not failed:
        print(f"determinism: {len(digests)} worker counts, "
              f"order digests identical")

    large = bench.get("large_run")
    if large is not None:
        if large.get("completed") is not True:
            print(f"FAIL: {large.get('ranks')}-rank large run did not "
                  f"complete")
            failed = True
        else:
            print(f"large run: {large['ranks']} ranks completed in "
                  f"{large['seconds']:.2f}s")

    # --- speedup: only where workers fit the host ---------------------------
    gated = [row for row in scaling if row["workers"] <= host_cores]
    ungated = [row for row in scaling if row["workers"] > host_cores]
    previous = None
    for row in gated:
        speedup = float(row["speedup_vs_1"])
        verdict = "ok"
        if speedup < 1.0 - SPEEDUP_SLACK:
            verdict = "REGRESSED"
            failed = True
        if previous is not None and speedup < previous - SPEEDUP_SLACK:
            verdict = "NOT MONOTONE"
            failed = True
        print(f"  {row['workers']:>2} workers: {speedup:.2f}x {verdict}")
        previous = max(previous or 0.0, speedup)
        if row["workers"] == 8 and host_cores >= 8 and \
                speedup < EIGHT_WORKER_BAR:
            print(f"FAIL: 8-worker speedup {speedup:.2f}x is below the "
                  f"{EIGHT_WORKER_BAR}x bar on a {host_cores}-core host")
            failed = True
    for row in ungated:
        print(f"  {row['workers']:>2} workers: {float(row['speedup_vs_1']):.2f}x "
              f"(beyond {host_cores} host cores — informational)")

    print("parallel baseline:", "FAIL" if failed else "OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
