#!/usr/bin/env python3
"""CI recovery gate: compare BENCH_recovery.json against the committed
recovery baseline.

The fig24_recovery bench runs the DESIGN.md §14 kill sweep: a real
cdc_served daemon is SIGKILLed at each armed protocol state (mid-batch,
journaled-but-unacked, pre-seal, post-seal) plus SIGTERMed under load,
restarted, and every resuming client's sealed record is byte-compared
against a local rebuild from the client seed.

Correctness is gated strictly — these fields are deterministic and any
regression is a real bug:
  * every expected kill point ran and passed;
  * every client sealed and every sealed record byte-verified, at every
    point;
  * zero per-point errors;
  * every SIGKILL point actually forced at least one reconnect (else the
    kill fired too late to test anything).

Timing is gated only against generous ceilings (absolute restart time is
machine-dependent); the ceiling exists to catch pathological recovery
stalls, not to benchmark CI hardware.

Usage: check_recovery_baseline.py <BENCH_recovery.json> [baseline.json]
"""

import json
import os
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    bench_path = sys.argv[1]
    baseline_path = (
        sys.argv[2]
        if len(sys.argv) > 2
        else os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "recovery_baseline.json")
    )
    with open(bench_path) as f:
        bench = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)

    failures = []
    clients = bench.get("clients", 0)
    if clients < baseline.get("min_clients", 0):
        failures.append(
            f"ran {clients} clients, baseline requires "
            f">= {baseline['min_clients']}")

    points = {p.get("name"): p for p in bench.get("points", [])}
    for name in baseline.get("expected_points", []):
        if name not in points:
            failures.append(f"kill point '{name}' missing from the sweep")

    # --- strict correctness ------------------------------------------------
    for name, p in points.items():
        if not p.get("passed", False):
            failures.append(f"{name}: point failed")
        if p.get("sealed", 0) != clients:
            failures.append(
                f"{name}: sealed {p.get('sealed')} of {clients} records")
        if p.get("verified", 0) != p.get("sealed", -1):
            failures.append(
                f"{name}: verified {p.get('verified')} of "
                f"{p.get('sealed')} sealed records")
        if p.get("errors", 1) != 0:
            failures.append(f"{name}: {p.get('errors')} errors")
        if (baseline.get("require_reconnects_on_kill_points", False)
                and name != "sigterm-under-load"
                and p.get("reconnects", 0) <= 0):
            failures.append(
                f"{name}: no client ever reconnected — the kill fired "
                f"too late to exercise recovery")

    if not bench.get("all_passed", False):
        failures.append("sweep reported all_passed = false")

    # --- generous timing ceilings ------------------------------------------
    ceiling = baseline.get("max_restart_ms")
    if ceiling is not None:
        for name, p in points.items():
            if p.get("restart_ms", 0.0) > ceiling:
                failures.append(
                    f"{name}: restart took {p.get('restart_ms'):.0f} ms, "
                    f"above ceiling {ceiling:.0f} ms")
    ceiling = baseline.get("max_point_wall_ms")
    if ceiling is not None:
        for name, p in points.items():
            if p.get("wall_ms", 0.0) > ceiling:
                failures.append(
                    f"{name}: point took {p.get('wall_ms'):.0f} ms, "
                    f"above ceiling {ceiling:.0f} ms")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1

    total_resent = sum(p.get("resent_batches", 0) for p in points.values())
    total_reconnects = sum(p.get("reconnects", 0) for p in points.values())
    print(f"OK: {len(points)} kill points x {clients} clients — "
          f"all sealed records byte-verified; {total_reconnects} "
          f"reconnects, {total_resent} batches re-sent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
