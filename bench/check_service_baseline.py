#!/usr/bin/env python3
"""CI service-load gate: compare BENCH_service.json against the committed
service baseline.

The fig23_service_load bench runs two phases of a seeded many-client load
against an in-process record server: a clean phase (every client must
seal, backpressure must engage) and a faulted phase (slow clients,
mid-stream disconnects, duplicate uploads, garbage bytes, oversized
frames). Every surviving record is byte-compared against a local rebuild
from the seed.

Correctness is gated strictly — these fields are deterministic and any
regression is a real bug:
  * clean phase: every client sealed and verified, zero unexpected
    failures, zero verify failures;
  * faulted phase: zero unexpected failures, zero verify failures, and
    the fault plan actually fired (expected_failures > 0);
  * the server engaged backpressure at least once (when the baseline
    requires it) — otherwise the slow-reader suspension path went
    untested.

Throughput is gated only against generous floors (absolute numbers are
machine-dependent); the floor exists to catch pathological serialization,
not to benchmark CI hardware.

Usage: check_service_baseline.py <BENCH_service.json> [baseline.json]
"""

import json
import os
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    bench_path = sys.argv[1]
    baseline_path = (
        sys.argv[2]
        if len(sys.argv) > 2
        else os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "service_baseline.json")
    )
    with open(bench_path) as f:
        bench = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)

    failures = []
    clean = bench.get("clean", {})
    faulted = bench.get("faulted", {})
    server = bench.get("server", {})

    clients = bench.get("clients", 0)
    if clients < baseline.get("min_clients", 0):
        failures.append(
            f"ran {clients} clients, baseline requires "
            f">= {baseline['min_clients']}")

    # --- strict correctness ------------------------------------------------
    if clean.get("unexpected_failures", 1) != 0:
        failures.append(
            f"clean phase had {clean.get('unexpected_failures')} "
            f"unexpected client failures")
    if clean.get("verify_failures", 1) != 0:
        failures.append(
            f"clean phase had {clean.get('verify_failures')} "
            f"oracle verify failures")
    if clean.get("sealed", 0) != clients:
        failures.append(
            f"clean phase sealed {clean.get('sealed')} of {clients} records")
    if clean.get("verified", 0) != clean.get("sealed", -1):
        failures.append(
            f"clean phase verified {clean.get('verified')} of "
            f"{clean.get('sealed')} sealed records")

    if faulted.get("unexpected_failures", 1) != 0:
        failures.append(
            f"faulted phase had {faulted.get('unexpected_failures')} "
            f"unexpected client failures")
    if faulted.get("verify_failures", 1) != 0:
        failures.append(
            f"faulted phase had {faulted.get('verify_failures')} "
            f"oracle verify failures")
    if faulted.get("expected_failures", 0) <= 0:
        failures.append("faulted phase: the fault plan never fired")
    if faulted.get("verified", 0) != faulted.get("sealed", -1):
        failures.append(
            f"faulted phase verified {faulted.get('verified')} of "
            f"{faulted.get('sealed')} sealed records")

    if baseline.get("require_backpressure", False) and \
       server.get("backpressure_suspensions", 0) <= 0:
        failures.append("backpressure never engaged "
                        "(backpressure_suspensions == 0)")

    # --- generous throughput floors ---------------------------------------
    floor = baseline.get("min_clean_frames_per_s", 0.0)
    if clean.get("frames_per_s", 0.0) < floor:
        failures.append(
            f"clean throughput {clean.get('frames_per_s'):.0f} frames/s "
            f"below floor {floor:.0f}")
    floor = baseline.get("min_clean_mb_per_s", 0.0)
    if clean.get("mb_per_s", 0.0) < floor:
        failures.append(
            f"clean throughput {clean.get('mb_per_s'):.2f} MB/s "
            f"below floor {floor:.2f}")
    ceiling = baseline.get("max_ack_p99_ms")
    if ceiling is not None and clean.get("ack_p99_ms", 0.0) > ceiling:
        failures.append(
            f"clean ack p99 {clean.get('ack_p99_ms'):.1f} ms above "
            f"ceiling {ceiling:.1f} ms")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1

    print(f"OK: {clients} clients — clean "
          f"{clean.get('frames_per_s', 0):.0f} frames/s, "
          f"{clean.get('verified')} verified; faulted "
          f"{faulted.get('sealed')} sealed / "
          f"{faulted.get('expected_failures')} planned failures, "
          f"all oracle-verified; "
          f"{server.get('backpressure_suspensions')} suspensions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
