// Shared helpers for the figure-reproduction benches.
//
// Every bench prints (a) the simulated-machine configuration (standing in
// for the paper's Table 1 Catalyst description), (b) the measured rows of
// the figure it reproduces, and (c) the paper's reported shape for
// comparison. Scale knobs:
//   CDC_FULL=1      run at the paper's process counts (3,072 for MCB,
//                   6,000+ for Jacobi) — minutes instead of seconds.
//   CDC_RANKS=N     override the rank count directly.
//   CDC_SEED=N      noise seed for every simulator a bench builds via
//                   sim_config (default 1). Together with the per-bench
//                   knobs this makes every reported number reproducible
//                   from its command line alone — no hidden RNG state.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/mcb.h"
#include "minimpi/simulator.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace cdc::bench {

using Clock = std::chrono::steady_clock;

/// Wall seconds since `start`. When `metric` names an obs histogram
/// (`bench.<what>_ns`), the interval is also recorded there, so bench
/// timings land in the same snapshot the pipeline report reads — one
/// timing substrate for figures and production metrics alike.
inline double seconds_since(Clock::time_point start,
                            const char* metric = nullptr) {
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (metric != nullptr && seconds > 0.0)
    obs::histogram(metric).record(
        static_cast<std::uint64_t>(seconds * 1e9));
  return seconds;
}

/// Writes a finished BENCH_*.json document (built with obs::JsonWriter —
/// every fig bench shares one emitter instead of hand-rolled fprintf
/// blocks) after a well-formedness check. Returns false on either
/// failure.
inline bool write_bench_json(const char* path, const std::string& doc) {
  if (!obs::json_well_formed(doc)) {
    std::fprintf(stderr, "bench: refusing to write malformed %s\n", path);
    return false;
  }
  if (!obs::JsonWriter::write_file(path, doc)) {
    std::fprintf(stderr, "bench: cannot write %s\n", path);
    return false;
  }
  return true;
}

inline bool full_scale() {
  const char* env = std::getenv("CDC_FULL");
  return env != nullptr && env[0] == '1';
}

inline int env_int(const char* name, int fallback) {
  const char* env = std::getenv(name);
  return env != nullptr ? std::atoi(env) : fallback;
}

/// Splits `ranks` into the most square grid_x x grid_y factorisation.
inline std::pair<int, int> grid_for(int ranks) {
  int best = 1;
  for (int x = 1; x * x <= ranks; ++x)
    if (ranks % x == 0) best = x;
  return {ranks / best, best};
}

inline void print_machine_banner(const char* figure, int ranks) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure);
  std::printf("--------------------------------------------------------------\n");
  std::printf("substrate : MiniMPI discrete-event simulator (this repo)\n");
  std::printf("            base latency 1 us + Exp(2 us) jitter per message\n");
  std::printf("            (stands in for Catalyst: 2.4 GHz Xeon E5-2695v2,\n");
  std::printf("             InfiniBand QDR, node-local SSD — paper Table 1)\n");
  std::printf("processes : %d\n", ranks);
  std::printf("--------------------------------------------------------------\n");
}

/// The common MCB workload used across the evaluation benches.
inline apps::McbConfig mcb_config(int ranks, double intensity = 1.0) {
  const auto [gx, gy] = grid_for(ranks);
  apps::McbConfig config;
  config.grid_x = gx;
  config.grid_y = gy;
  config.particles_per_rank =
      static_cast<int>(env_int("CDC_PARTICLES", 150) * intensity);
  config.segments_per_particle = 12;
  return config;
}

/// The bench-wide default noise seed: CDC_SEED when set, otherwise 1.
inline std::uint64_t default_seed() {
  const char* env = std::getenv("CDC_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1;
}

inline minimpi::Simulator::Config sim_config(int ranks,
                                             std::uint64_t seed =
                                                 default_seed()) {
  minimpi::Simulator::Config config;
  config.num_ranks = ranks;
  config.noise_seed = seed;
  return config;
}

}  // namespace cdc::bench
