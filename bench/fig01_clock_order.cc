// Figure 1: Lamport clock values of received messages in MCB (rank 0).
//
// The paper's key empirical observation: the clocks piggybacked on the
// messages an MCB rank receives "almost always monotonically increase" —
// i.e. the observed order closely follows the reference logical-clock
// order, which is what makes recording only the differences so cheap.
// This bench runs MCB at 48 processes (the paper's Figure 1 setting),
// prints the received-clock series of rank 0, and quantifies its
// monotonicity.
#include <cstdio>
#include <vector>

#include "common.h"
#include "runtime/storage.h"
#include "tool/recorder.h"

int main() {
  using namespace cdc;
  const int ranks = bench::env_int("CDC_RANKS", 48);
  bench::print_machine_banner(
      "Figure 1 — Lamport clocks of received messages (MPI rank = 0)",
      ranks);

  runtime::MemoryStore store;
  tool::ToolOptions options;
  options.clock_trace_rank = 0;
  tool::Recorder recorder(ranks, &store, options);
  minimpi::Simulator sim(bench::sim_config(ranks), &recorder);
  apps::run_mcb(sim, bench::mcb_config(ranks));
  recorder.finalize();

  const std::vector<std::uint64_t>& trace = recorder.clock_trace();
  std::printf("rank 0 received %zu messages; first 96 piggybacked clocks:\n",
              trace.size());
  for (std::size_t i = 0; i < trace.size() && i < 96; ++i) {
    std::printf("%6llu", static_cast<unsigned long long>(trace[i]));
    if (i % 8 == 7) std::printf("\n");
  }
  std::printf("\n");

  std::size_t increasing = 0;
  for (std::size_t i = 1; i < trace.size(); ++i)
    increasing += trace[i] > trace[i - 1];
  const double pct =
      trace.size() > 1
          ? 100.0 * static_cast<double>(increasing) /
                static_cast<double>(trace.size() - 1)
          : 100.0;
  std::printf("monotonically increasing steps : %zu / %zu (%.1f%%)\n",
              increasing, trace.size() > 0 ? trace.size() - 1 : 0, pct);
  std::printf("\npaper shape: \"the received Lamport-clock values almost\n"
              "always monotonically increase\" (Figure 1, 48 processes).\n");
  return pct > 50.0 ? 0 : 1;
}
