// Figure 13: total compressed record sizes on MCB.
//
// Paper (3,072 processes, 12.3 s, ~9.7M receive events):
//   w/o compression ~197 MB | gzip | CDC (RE) | CDC (RE+PE+LPE) | CDC,
// with CDC 5.7x smaller than gzip, ~44x smaller than raw, and an average
// of 0.51 bytes per receive event. This bench runs the identical MCB
// execution (same noise seed → identical traffic) once per codec and
// reports the same rows. Absolute sizes differ from the paper (different
// machine, different MCB implementation); the ordering and rough factors
// are the reproduction target.
//
// On top of the codec table, the bench measures the src/store/ compression
// service on the very chunks this workload sealed: the frame jobs captured
// during the gzip and CDC runs are re-encoded inline and through a
// CompressionService with 1/2/4 workers. Results land in BENCH_store.json
// (machine-readable; the 4-worker row is the ISSUE acceptance number).
#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>
#include <vector>

#include "common.h"
#include "compress/crc32.h"
#include "compress/deflate.h"
#include "runtime/storage.h"
#include "store/compression_service.h"
#include "support/rng.h"
#include "support/stats.h"
#include "tool/frame.h"
#include "tool/frame_sink.h"
#include "tool/recorder.h"

namespace {

using namespace cdc;

struct Row {
  const char* label;
  cdc::tool::RecordCodec codec;
  bool identify_callsites;
  std::uint64_t bytes = 0;
  std::uint64_t events = 0;
};

/// Delegates to the inline path (so the codec table stays honest) while
/// keeping a copy of every sealed chunk for the throughput section.
class CapturingSink final : public tool::FrameSink {
 public:
  CapturingSink(runtime::RecordStore* store,
                std::vector<std::pair<runtime::StreamKey, tool::FrameJob>>*
                    jobs)
      : inner_(store), jobs_(jobs) {}

  void submit(const runtime::StreamKey& key, tool::FrameJob job) override {
    jobs_->emplace_back(key, job);
    inner_.submit(key, std::move(job));
  }

 private:
  tool::InlineFrameSink inner_;
  std::vector<std::pair<runtime::StreamKey, tool::FrameJob>>* jobs_;
};

using bench::Clock;
using bench::seconds_since;

struct ThroughputRow {
  std::size_t workers = 0;  ///< 0 = inline on the calling thread
  double seconds = 0;
  double mb_per_s = 0;
};

}  // namespace

int main() {
  using namespace cdc;
  const int default_ranks = bench::full_scale() ? 3072 : 1536;
  const int ranks = bench::env_int("CDC_RANKS", default_ranks);
  bench::print_machine_banner(
      "Figure 13 — total compressed record sizes on MCB", ranks);

  std::vector<Row> rows = {
      {"w/o Compression", tool::RecordCodec::kBaselineRaw, true},
      {"gzip", tool::RecordCodec::kBaselineGzip, true},
      {"CDC (RE)", tool::RecordCodec::kCdcRe, true},
      {"CDC (RE+PE+LPE)", tool::RecordCodec::kCdcFull, false},
      {"CDC", tool::RecordCodec::kCdcFull, true},
  };

  // Chunks sealed by the gzip and CDC rows: the workload for the
  // compression-service throughput section below.
  std::vector<std::pair<runtime::StreamKey, tool::FrameJob>> jobs;

  for (Row& row : rows) {
    runtime::CountingStore store;
    tool::ToolOptions options;
    options.codec = row.codec;
    options.identify_callsites = row.identify_callsites;
    const bool capture = row.codec == tool::RecordCodec::kBaselineGzip ||
                         (row.codec == tool::RecordCodec::kCdcFull &&
                          row.identify_callsites);
    CapturingSink sink(&store, &jobs);
    tool::Recorder recorder(ranks, &store, options,
                            capture ? &sink : nullptr);
    minimpi::Simulator sim(bench::sim_config(ranks), &recorder);
    apps::run_mcb(sim, bench::mcb_config(ranks));
    recorder.finalize();
    row.bytes = store.total_bytes();
    row.events = recorder.totals().matched_events;
    std::fprintf(stderr, "  [measured %-16s]\n", row.label);
  }

  const double raw = static_cast<double>(rows[0].bytes);
  const double gz = static_cast<double>(rows[1].bytes);
  std::printf("receive events per run: %llu\n\n",
              static_cast<unsigned long long>(rows[0].events));
  std::printf("%-18s %12s %14s %10s %10s\n", "method", "record size",
              "bytes/event", "vs raw", "vs gzip");
  for (const Row& row : rows) {
    const double bytes = static_cast<double>(row.bytes);
    std::printf("%-18s %12s %14.3f %9.1fx %9.2fx\n", row.label,
                support::format_bytes(bytes).c_str(),
                bytes / static_cast<double>(row.events), raw / bytes,
                gz / bytes);
  }
  const double cdc = static_cast<double>(rows.back().bytes);
  std::printf(
      "\npaper shape: raw >> gzip > CDC(RE) > CDC(RE+PE+LPE) >= CDC;\n"
      "paper factors at 3,072 procs: CDC ~44x vs raw, ~5.7x vs gzip,\n"
      "0.51 bytes/event. Measured here: %.1fx vs raw, %.2fx vs gzip,\n"
      "%.3f bytes/event.\n",
      raw / cdc, gz / cdc,
      cdc / static_cast<double>(rows.back().events));

  // --- store/ compression-service throughput on the captured chunks ------
  const std::size_t cap = static_cast<std::size_t>(
      bench::env_int("CDC_STORE_JOBS", 2048));
  if (jobs.size() > cap) {
    // Keep an evenly spaced sample so the large/small chunk mix survives.
    std::vector<std::pair<runtime::StreamKey, tool::FrameJob>> sampled;
    sampled.reserve(cap);
    const std::size_t stride = jobs.size() / cap;
    for (std::size_t i = 0; i < jobs.size() && sampled.size() < cap;
         i += stride)
      sampled.push_back(jobs[i]);
    std::fprintf(stderr,
                 "  [store bench: sampled %zu of %zu captured chunks; "
                 "raise CDC_STORE_JOBS to use more]\n",
                 sampled.size(), jobs.size());
    jobs = std::move(sampled);
  }
  std::uint64_t job_raw_bytes = 0;
  for (const auto& [key, job] : jobs) job_raw_bytes += job.payload.size();
  const double job_mb =
      static_cast<double>(job_raw_bytes) / (1024.0 * 1024.0);

  std::printf("\nstore/ compression service on %zu sealed chunks "
              "(%s raw):\n",
              jobs.size(),
              support::format_bytes(
                  static_cast<double>(job_raw_bytes)).c_str());
  std::printf("%-10s %10s %12s %10s\n", "path", "seconds", "MB/s",
              "speedup");

  std::vector<ThroughputRow> throughput;
  {  // inline reference: encode every chunk on this thread.
    runtime::CountingStore store;
    const auto start = Clock::now();
    for (const auto& [key, job] : jobs)
      store.append(key, tool::encode_frame(job));
    ThroughputRow row;
    row.workers = 0;
    row.seconds = seconds_since(start, "bench.fig13.inline_encode_ns");
    row.mb_per_s = job_mb / row.seconds;
    throughput.push_back(row);
  }
  for (const std::size_t workers : {1u, 2u, 4u}) {
    runtime::CountingStore store;
    store::CompressionService::Config config;
    config.workers = workers;
    const auto start = Clock::now();
    {
      store::CompressionService service(&store, config);
      for (const auto& [key, job] : jobs)
        service.submit(key, job.payload.size(),
                       [&job = job] { return tool::encode_frame(job); });
      service.drain();
    }
    ThroughputRow row;
    row.workers = workers;
    row.seconds = seconds_since(start, "bench.fig13.service_encode_ns");
    row.mb_per_s = job_mb / row.seconds;
    throughput.push_back(row);
  }
  const double inline_seconds = throughput.front().seconds;
  for (const ThroughputRow& row : throughput) {
    char label[32];
    if (row.workers == 0)
      std::snprintf(label, sizeof label, "inline");
    else
      std::snprintf(label, sizeof label, "%zu worker%s", row.workers,
                    row.workers == 1 ? "" : "s");
    std::printf("%-10s %10.4f %12.2f %9.2fx\n", label, row.seconds,
                row.mb_per_s, inline_seconds / row.seconds);
  }
  const double speedup_4x = inline_seconds / throughput.back().seconds;
  const unsigned cpus = std::thread::hardware_concurrency();
  if (cpus < 4)
    std::printf("(only %u hardware thread%s available — parallel speedup "
                "is core-limited on this machine)\n",
                cpus, cpus == 1 ? "" : "s");

  // --- machine-readable output (same keys as the fprintf original) ------
  const char* json_path = "BENCH_store.json";
  obs::JsonWriter w;
  w.begin_object();
  w.field("bench", "fig13_compression");
  w.field("ranks", ranks);
  w.field("receive_events", rows[0].events);
  w.key("codecs").begin_array();
  for (const auto& row : rows) {
    const double bytes = static_cast<double>(row.bytes);
    w.begin_object();
    w.field("label", row.label);
    w.field("bytes", row.bytes);
    w.field("bytes_per_event", bytes / static_cast<double>(row.events));
    w.field("vs_raw", raw / bytes);
    w.field("vs_gzip", gz / bytes);
    w.end_object();
  }
  w.end_array();
  w.key("store_throughput").begin_object();
  w.field("hardware_threads", cpus);
  w.field("chunks", jobs.size());
  w.field("raw_bytes", job_raw_bytes);
  w.key("paths").begin_array();
  for (const ThroughputRow& row : throughput) {
    w.begin_object();
    w.field("workers", row.workers);
    w.field("inline", row.workers == 0);
    w.field("seconds", row.seconds);
    w.field("mb_per_s", row.mb_per_s);
    w.field("speedup_vs_inline", inline_seconds / row.seconds);
    w.end_object();
  }
  w.end_array();
  w.field("speedup_4_workers_vs_inline", speedup_4x);
  w.end_object();
  w.end_object();
  if (bench::write_bench_json(json_path, std::move(w).take()))
    std::printf("\nwrote %s (4-worker speedup vs inline: %.2fx)\n",
                json_path, speedup_4x);

  // --- leveled codec fast path (BENCH_compress.json) ---------------------
  // Per-level DEFLATE wall time + ratio on a deterministic seeded corpus.
  // The corpus depends only on the fixed RNG seed and the compressor is
  // deterministic per (input, level), so `compressed_bytes` is
  // machine-independent — which is what lets the CI perf-smoke job diff
  // it against a committed baseline (bench/check_compress_baseline.py).
  // Seed-era numbers (this repo before the leveled fast path, one level
  // == today's default) are embedded alongside so regressions read
  // against both.
  struct LevelRow {
    compress::DeflateLevel level;
    double seed_mb_per_s;  ///< seed-era throughput on this corpus
    double seed_ratio;
    double seconds = 0;
    std::uint64_t bytes = 0;
  };
  std::vector<LevelRow> levels = {
      {compress::DeflateLevel::kFast, 30.81, 5.591},
      {compress::DeflateLevel::kDefault, 7.82, 6.555},
      {compress::DeflateLevel::kBest, 1.48, 6.924},
  };
  constexpr std::size_t kCorpusBytes = 4u << 20;
  constexpr double kSeedCrcMbPerS = 362.5;
  std::vector<std::uint8_t> corpus(kCorpusBytes);
  {
    support::Xoshiro256 rng(3);
    for (auto& byte : corpus)
      byte = rng.uniform() < 0.85 ? 0 : static_cast<std::uint8_t>(
                                            rng.bounded(6));
  }
  const double corpus_mb = static_cast<double>(kCorpusBytes) / (1u << 20);

  double crc_seconds = 0;
  {
    constexpr int kReps = 8;
    std::uint32_t crc_accum = 0;
    const auto start = Clock::now();
    for (int i = 0; i < kReps; ++i)
      crc_accum ^= compress::crc32(corpus);
    crc_seconds = seconds_since(start, "bench.fig13.crc_ns") / kReps;
    // Keep the loop observable without dragging in a benchmark dependency.
    if (crc_accum == 0xdeadbeef) std::printf("(crc collision)\n");
  }
  const double crc_mb_per_s = corpus_mb / crc_seconds;

  std::printf("\ndeflate levels on a deterministic %s record-like corpus "
              "(seed-era default: %.2f MB/s, ratio %.3f):\n",
              support::format_bytes(
                  static_cast<double>(kCorpusBytes)).c_str(),
              levels[1].seed_mb_per_s, levels[1].seed_ratio);
  std::printf("%-10s %10s %10s %12s %10s\n", "level", "MB/s", "ratio",
              "bytes", "vs seed");
  std::vector<std::uint8_t> reuse;
  for (LevelRow& row : levels) {
    const auto start = Clock::now();
    auto out = compress::deflate_compress(corpus, row.level,
                                          std::move(reuse));
    row.seconds = seconds_since(start, "bench.fig13.deflate_level_ns");
    row.bytes = out.size();
    reuse = std::move(out);
    std::printf("%-10.*s %10.2f %10.3f %12llu %9.2fx\n",
                static_cast<int>(compress::to_string(row.level).size()),
                compress::to_string(row.level).data(),
                corpus_mb / row.seconds,
                static_cast<double>(kCorpusBytes) /
                    static_cast<double>(row.bytes),
                static_cast<unsigned long long>(row.bytes),
                (corpus_mb / row.seconds) / row.seed_mb_per_s);
  }
  std::printf("crc32: %.0f MB/s (seed bytewise: %.1f MB/s, %.1fx)\n",
              crc_mb_per_s, kSeedCrcMbPerS, crc_mb_per_s / kSeedCrcMbPerS);

  obs::JsonWriter lw;
  lw.begin_object();
  lw.field("bench", "fig13_compression_levels");
  lw.field("corpus_bytes", static_cast<std::uint64_t>(kCorpusBytes));
  lw.field("corpus_seed", 3);
  lw.key("crc32").begin_object();
  lw.field("mb_per_s", crc_mb_per_s);
  lw.field("seed_mb_per_s", kSeedCrcMbPerS);
  lw.field("speedup_vs_seed", crc_mb_per_s / kSeedCrcMbPerS);
  lw.end_object();
  lw.key("levels").begin_array();
  for (const LevelRow& row : levels) {
    const double mb_per_s = corpus_mb / row.seconds;
    lw.begin_object();
    lw.field("level", std::string(compress::to_string(row.level)));
    lw.field("seconds", row.seconds);
    lw.field("mb_per_s", mb_per_s);
    lw.field("compressed_bytes", row.bytes);
    lw.field("ratio", static_cast<double>(kCorpusBytes) /
                          static_cast<double>(row.bytes));
    lw.field("seed_mb_per_s", row.seed_mb_per_s);
    lw.field("seed_ratio", row.seed_ratio);
    lw.field("speedup_vs_seed", mb_per_s / row.seed_mb_per_s);
    lw.end_object();
  }
  lw.end_array();
  lw.end_object();
  if (bench::write_bench_json("BENCH_compress.json", std::move(lw).take()))
    std::printf("wrote BENCH_compress.json\n");

  return (cdc < gz && gz < raw) ? 0 : 1;
}
