// Figure 13: total compressed record sizes on MCB.
//
// Paper (3,072 processes, 12.3 s, ~9.7M receive events):
//   w/o compression ~197 MB | gzip | CDC (RE) | CDC (RE+PE+LPE) | CDC,
// with CDC 5.7x smaller than gzip, ~44x smaller than raw, and an average
// of 0.51 bytes per receive event. This bench runs the identical MCB
// execution (same noise seed → identical traffic) once per codec and
// reports the same rows. Absolute sizes differ from the paper (different
// machine, different MCB implementation); the ordering and rough factors
// are the reproduction target.
#include <cstdio>
#include <vector>

#include "common.h"
#include "runtime/storage.h"
#include "support/stats.h"
#include "tool/recorder.h"

namespace {

struct Row {
  const char* label;
  cdc::tool::RecordCodec codec;
  bool identify_callsites;
  std::uint64_t bytes = 0;
  std::uint64_t events = 0;
};

}  // namespace

int main() {
  using namespace cdc;
  const int default_ranks = bench::full_scale() ? 3072 : 1536;
  const int ranks = bench::env_int("CDC_RANKS", default_ranks);
  bench::print_machine_banner(
      "Figure 13 — total compressed record sizes on MCB", ranks);

  std::vector<Row> rows = {
      {"w/o Compression", tool::RecordCodec::kBaselineRaw, true},
      {"gzip", tool::RecordCodec::kBaselineGzip, true},
      {"CDC (RE)", tool::RecordCodec::kCdcRe, true},
      {"CDC (RE+PE+LPE)", tool::RecordCodec::kCdcFull, false},
      {"CDC", tool::RecordCodec::kCdcFull, true},
  };

  for (Row& row : rows) {
    runtime::CountingStore store;
    tool::ToolOptions options;
    options.codec = row.codec;
    options.identify_callsites = row.identify_callsites;
    tool::Recorder recorder(ranks, &store, options);
    minimpi::Simulator sim(bench::sim_config(ranks), &recorder);
    apps::run_mcb(sim, bench::mcb_config(ranks));
    recorder.finalize();
    row.bytes = store.total_bytes();
    row.events = recorder.totals().matched_events;
    std::fprintf(stderr, "  [measured %-16s]\n", row.label);
  }

  const double raw = static_cast<double>(rows[0].bytes);
  const double gz = static_cast<double>(rows[1].bytes);
  std::printf("receive events per run: %llu\n\n",
              static_cast<unsigned long long>(rows[0].events));
  std::printf("%-18s %12s %14s %10s %10s\n", "method", "record size",
              "bytes/event", "vs raw", "vs gzip");
  for (const Row& row : rows) {
    const double bytes = static_cast<double>(row.bytes);
    std::printf("%-18s %12s %14.3f %9.1fx %9.2fx\n", row.label,
                support::format_bytes(bytes).c_str(),
                bytes / static_cast<double>(row.events), raw / bytes,
                gz / bytes);
  }
  const double cdc = static_cast<double>(rows.back().bytes);
  std::printf(
      "\npaper shape: raw >> gzip > CDC(RE) > CDC(RE+PE+LPE) >= CDC;\n"
      "paper factors at 3,072 procs: CDC ~44x vs raw, ~5.7x vs gzip,\n"
      "0.51 bytes/event. Measured here: %.1fx vs raw, %.2fx vs gzip,\n"
      "%.3f bytes/event.\n",
      raw / cdc, gz / cdc,
      cdc / static_cast<double>(rows.back().events));
  return (cdc < gz && gz < raw) ? 0 : 1;
}
