// Figure 14: histogram of the percentage of permutated messages across
// MPI ranks on MCB.
//
// The similarity metric is Np / N — permutated (moved) messages over total
// received messages, per rank. The paper reports ~30% on average at 3,072
// processes, i.e. ~70% of receives already follow the reference
// logical-clock order.
#include <cstdio>

#include "common.h"
#include "runtime/storage.h"
#include "support/stats.h"
#include "tool/recorder.h"

int main() {
  using namespace cdc;
  const int default_ranks = bench::full_scale() ? 3072 : 768;
  const int ranks = bench::env_int("CDC_RANKS", default_ranks);
  bench::print_machine_banner(
      "Figure 14 — percentage of permutated messages per rank (MCB)",
      ranks);

  runtime::CountingStore store;
  tool::Recorder recorder(ranks, &store);
  minimpi::Simulator sim(bench::sim_config(ranks), &recorder);
  apps::run_mcb(sim, bench::mcb_config(ranks));
  recorder.finalize();

  support::Histogram histogram(0.0, 100.0, 20);
  for (const double p : recorder.permutation_percentages())
    histogram.add(100.0 * p);

  std::printf("%8s %9s  histogram (one # per %d ranks)\n", "perm. %",
              "ranks", std::max(1, ranks / 200));
  const std::size_t unit =
      static_cast<std::size_t>(std::max(1, ranks / 200));
  for (std::size_t b = 0; b < histogram.counts().size(); ++b) {
    const std::size_t count = histogram.counts()[b];
    std::printf("%3.0f-%3.0f%% %9zu  ", histogram.bucket_lo(b),
                histogram.bucket_lo(b) + histogram.bucket_width(), count);
    for (std::size_t i = 0; i < count / unit; ++i) std::printf("#");
    std::printf("\n");
  }
  std::printf("\nmean %.1f%%, min %.1f%%, max %.1f%% over %zu ranks\n",
              histogram.summary().mean(), histogram.summary().min(),
              histogram.summary().max(), histogram.summary().count());
  std::printf(
      "\npaper shape: similarity ~30%% on average — most receives follow\n"
      "the reference order, which is what CDC exploits (Figure 14).\n");
  return histogram.summary().mean() < 60.0 ? 0 : 1;
}
