// Figure 15: per-node record-size estimates as simulation time increases.
//
// Method (the paper's own): measure the record cost per receive event on
// MCB runs at communication intensity x1, x1.5 and x2 for the gzip
// baseline and for CDC, then extrapolate to long simulations. The paper
// anchors the event rate at its measured MCB production rate — 258
// receive events per second per process (§6.2), 24 processes per node —
// and scales it with communication intensity. Punchline: with a 500 MB
// ramdisk budget, gzip lasts ~5 hours on MCB while CDC runs past 24 hours
// (and double-intensity CDC still fits a 24 h run in ~1 GB).
#include <cstdio>
#include <vector>

#include "common.h"
#include "runtime/storage.h"
#include "tool/recorder.h"

namespace {

struct Series {
  const char* label;
  cdc::tool::RecordCodec codec;
  double intensity;
  double bytes_per_event = 0.0;
  double mb_per_node_hour = 0.0;
};

}  // namespace

int main() {
  using namespace cdc;
  const int ranks = bench::env_int("CDC_RANKS", 384);
  constexpr int kRanksPerNode = 24;          // Catalyst: 24 cores/node
  constexpr double kEventsPerSecond = 258.0; // paper §6.2, per process
  bench::print_machine_banner(
      "Figure 15 — per-node record size vs execution time (24 procs/node)",
      ranks);

  std::vector<Series> series = {
      {"gzip (x2)", tool::RecordCodec::kBaselineGzip, 2.0},
      {"gzip (x1.5)", tool::RecordCodec::kBaselineGzip, 1.5},
      {"gzip (x1)", tool::RecordCodec::kBaselineGzip, 1.0},
      {"CDC  (x2)", tool::RecordCodec::kCdcFull, 2.0},
      {"CDC  (x1.5)", tool::RecordCodec::kCdcFull, 1.5},
      {"CDC  (x1)", tool::RecordCodec::kCdcFull, 1.0},
  };

  for (Series& s : series) {
    runtime::CountingStore store;
    tool::ToolOptions options;
    options.codec = s.codec;
    tool::Recorder recorder(ranks, &store, options);
    minimpi::Simulator sim(bench::sim_config(ranks), &recorder);
    apps::run_mcb(sim, bench::mcb_config(ranks, s.intensity));
    recorder.finalize();
    s.bytes_per_event =
        static_cast<double>(store.total_bytes()) /
        static_cast<double>(recorder.totals().matched_events);
    // events/node/hour at the paper's production rate, scaled by the
    // communication-intensity multiplier.
    const double events_per_node_hour =
        kEventsPerSecond * s.intensity * kRanksPerNode * 3600.0;
    s.mb_per_node_hour = s.bytes_per_event * events_per_node_hour / 1e6;
    std::fprintf(stderr, "  [measured %-12s]\n", s.label);
  }

  std::printf("event rate anchor: %.0f events/s/process (paper §6.2) x "
              "intensity x %d procs/node\n\n",
              kEventsPerSecond, kRanksPerNode);
  std::printf("%-12s %8s %13s |", "series", "B/event", "MB/node/hour");
  for (int h = 0; h <= 24; h += 4) std::printf(" %6dh", h);
  std::printf("\n");
  for (const Series& s : series) {
    std::printf("%-12s %8.3f %13.1f |", s.label, s.bytes_per_event,
                s.mb_per_node_hour);
    for (int h = 0; h <= 24; h += 4)
      std::printf(" %6.0f", s.mb_per_node_hour * h);
    std::printf("   (MB/node)\n");
  }

  std::printf("\nhours until a 500 MB ramdisk fills:\n");
  for (const Series& s : series)
    std::printf("  %-12s %8.1f h\n", s.label, 500.0 / s.mb_per_node_hour);

  const double gzip_rate = series[2].mb_per_node_hour;
  const double cdc_rate = series[5].mb_per_node_hour;
  std::printf(
      "\npaper shape: CDC slopes are far flatter than gzip's; gzip fills\n"
      "500 MB in ~5 h on MCB while CDC lasts beyond 24 h, and 24 h at x2\n"
      "intensity fits in ~1 GB (Figure 15). Measured slope ratio\n"
      "gzip/CDC at x1: %.1fx; CDC x2 24 h size: %.0f MB/node.\n",
      gzip_rate / cdc_rate, series[3].mb_per_node_hour * 24.0);
  return gzip_rate > cdc_rate ? 0 : 1;
}
