// Figure 16: recording overhead on MCB under weak scaling.
//
// Paper: 48 → 3,072 processes, 4,000 particles per process; performance in
// tracks/sec for MCB without recording, with gzip recording, and with CDC
// recording. CDC costs 13.1–25.5% vs no recording and 4.6–13.9% more than
// gzip (the extra compute of the edit-distance encoder), and the overhead
// is roughly constant across scale because recording needs no
// communication.
//
// Overhead model in this reproduction: recording is asynchronous (§4.2),
// so encode and I/O stay off the critical path. What the application
// thread pays is (a) PMPI/PnMPI interception on every matching-function
// call — MCB polls Testsome millions of times, so this dominates exactly
// as the paper's flat-overhead discussion implies; (b) clock piggybacking
// on every send (the paper measures 1.18%% end to end); and (c) per-event
// enqueue work plus a core-share of the CDC thread's encode compute (24
// ranks + tool threads on 24 cores). (c) is calibrated by timing this
// repo's real encoder on an MCB-like stream and charging 1/24th of it.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <vector>

#include "common.h"
#include "obs/obs.h"
#include "record/event.h"
#include "runtime/storage.h"
#include "support/rng.h"
#include "tool/recorder.h"
#include "tool/stream_recorder.h"

namespace {

using namespace cdc;

/// Wall-clock seconds per event of the real encode pipeline for `codec`.
double calibrate_encode_cost(tool::RecordCodec codec) {
  // Synthetic MCB-like stream: 4 senders, ~30% out of reference order,
  // a sprinkle of unmatched tests.
  support::Xoshiro256 rng(7);
  std::vector<record::ReceiveEvent> events;
  std::vector<std::uint64_t> clocks(4, 1);
  constexpr int kEvents = 200000;
  events.reserve(kEvents);
  for (int i = 0; i < kEvents; ++i) {
    if (rng.uniform() < 0.3) events.push_back({false, false, -1, 0});
    const auto s = static_cast<std::int32_t>(rng.bounded(4));
    clocks[static_cast<std::size_t>(s)] += 1 + rng.bounded(4);
    events.push_back({true, false, s, clocks[static_cast<std::size_t>(s)]});
  }
  for (int i = 0; i + 1 < kEvents; i += 16)  // local reorder ~ Figure 14
    if (rng.uniform() < 0.5) std::swap(events[i], events[i + 1]);

  runtime::CountingStore store;
  tool::ToolOptions options;
  options.codec = codec;
  tool::StreamRecorder recorder({0, 0}, options);
  const auto start = std::chrono::steady_clock::now();
  for (const auto& e : events) {
    if (e.flag) {
      recorder.on_delivered(e);
    } else {
      recorder.on_unmatched_test();
    }
    recorder.flush_if_due(store);
  }
  recorder.finalize(store);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return elapsed / static_cast<double>(events.size());
}

struct Cell {
  double tracks_per_sec = 0.0;
};

}  // namespace

int main() {
  const int max_ranks =
      bench::env_int("CDC_RANKS", bench::full_scale() ? 3072 : 768);
  bench::print_machine_banner(
      "Figure 16 — recording overhead on MCB (weak scaling, tracks/sec)",
      max_ranks);

  const double gzip_encode =
      calibrate_encode_cost(tool::RecordCodec::kBaselineGzip);
  const double cdc_encode =
      calibrate_encode_cost(tool::RecordCodec::kCdcFull);
  constexpr double kPiggybackCost = 25e-9;   // 8-byte datatype piggyback
  constexpr double kInterceptCost = 40e-9;   // thin interposition per MF call
  constexpr double kEnqueueCost = 50e-9;     // SPSC enqueue per event
  constexpr int kCoresPerNode = 24;          // Catalyst: 24 ranks/node
  const double gzip_cost = kEnqueueCost + gzip_encode / kCoresPerNode;
  const double cdc_cost = kEnqueueCost + cdc_encode / kCoresPerNode;
  std::printf("calibrated encode: gzip %.0f ns/event, CDC %.0f ns/event;\n"
              "charged to the app: %.0f / %.0f ns/event (1/%d core share)\n"
              "plus %.0f ns per MF call interception, %.0f ns piggyback/send"
              "\n\n",
              gzip_encode * 1e9, cdc_encode * 1e9, gzip_cost * 1e9,
              cdc_cost * 1e9, kCoresPerNode, kInterceptCost * 1e9,
              kPiggybackCost * 1e9);

  // Observability tax: the same real encode loop (the record hot path —
  // metric counters fire per chunk and per frame) with the obs layer
  // enabled-but-idle vs runtime-disabled. Best of 3 to shed scheduler
  // noise. The satellite acceptance bar is < ~2%.
  double obs_on_cost = std::numeric_limits<double>::infinity();
  double obs_off_cost = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    obs::set_enabled(true);
    obs_on_cost = std::min(
        obs_on_cost, calibrate_encode_cost(tool::RecordCodec::kCdcFull));
    obs::set_enabled(false);
    obs_off_cost = std::min(
        obs_off_cost, calibrate_encode_cost(tool::RecordCodec::kCdcFull));
  }
  obs::set_enabled(true);
  const double obs_tax_pct = 100.0 * (obs_on_cost / obs_off_cost - 1.0);
  std::printf("obs layer: record hot path %.0f ns/event metrics-on vs "
              "%.0f ns/event metrics-off (%+.2f%% enabled-but-idle, "
              "target < ~2%%)\n\n",
              obs_on_cost * 1e9, obs_off_cost * 1e9, obs_tax_pct);

  std::vector<int> scales;
  for (int r = 48; r <= max_ranks; r *= 2) scales.push_back(r);

  std::printf("%8s %18s %18s %18s %10s %10s %10s\n", "procs",
              "no recording", "gzip", "CDC", "CDC ovh", "CDCvsGzip",
              "obs off d");
  bool shape_ok = true;
  for (const int ranks : scales) {
    // Mode 3 repeats the CDC run with obs runtime-disabled: the virtual
    // schedule must be bit-identical (the acceptance criterion that
    // disabling obs changes nothing an experiment can measure).
    Cell none, gzip, cdc, cdc_obs_off;
    for (int mode = 0; mode < 4; ++mode) {
      if (mode == 3) obs::set_enabled(false);
      minimpi::Simulator::Config config = bench::sim_config(ranks);
      runtime::CountingStore store;
      std::unique_ptr<tool::Recorder> recorder;
      if (mode > 0) {
        tool::ToolOptions options;
        options.codec = mode == 1 ? tool::RecordCodec::kBaselineGzip
                                  : tool::RecordCodec::kCdcFull;
        recorder =
            std::make_unique<tool::Recorder>(ranks, &store, options);
        config.tool_event_cost = mode == 1 ? gzip_cost : cdc_cost;
        config.tool_call_cost = kInterceptCost;
        config.piggyback_send_cost = kPiggybackCost;
      }
      minimpi::Simulator sim(config, recorder.get());
      const auto result = apps::run_mcb(sim, bench::mcb_config(ranks));
      if (recorder) recorder->finalize();
      if (mode == 3) obs::set_enabled(true);
      (mode == 0   ? none
       : mode == 1 ? gzip
       : mode == 2 ? cdc
                   : cdc_obs_off)
          .tracks_per_sec = result.tracks_per_sec;
    }
    const double ovh =
        100.0 * (1.0 - cdc.tracks_per_sec / none.tracks_per_sec);
    const double vs_gzip =
        100.0 * (1.0 - cdc.tracks_per_sec / gzip.tracks_per_sec);
    const double obs_delta =
        100.0 * (1.0 - cdc.tracks_per_sec / cdc_obs_off.tracks_per_sec);
    std::printf("%8d %18.3e %18.3e %18.3e %9.1f%% %9.1f%% %9.3f%%\n",
                ranks, none.tracks_per_sec, gzip.tracks_per_sec,
                cdc.tracks_per_sec, ovh, vs_gzip, obs_delta);
    shape_ok = shape_ok && cdc.tracks_per_sec <= none.tracks_per_sec;
    // Disabling obs must not perturb the simulated schedule at all.
    shape_ok =
        shape_ok && cdc.tracks_per_sec == cdc_obs_off.tracks_per_sec;
  }

  std::printf(
      "\npaper shape: throughput keeps scaling under recording; CDC's\n"
      "overhead is 13.1-25.5%% vs no recording, 4.6-13.9%% vs gzip, and\n"
      "roughly flat across scale (recording needs no communication).\n");
  return shape_ok ? 0 : 1;
}
