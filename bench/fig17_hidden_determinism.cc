// Figure 17: compression size under hidden-deterministic communication.
//
// Paper: a Poisson/Jacobi solver (Himeno-style) at 6,114 processes, 1K
// iterations, posting MPI_ANY_SOURCE receives whose actual order is
// deterministic. gzip records 91 MB; CDC records 2 MB (2.2%) — the LP
// encoder predicts the regular index sequences almost perfectly, so the
// recording is nearly free.
#include <cstdio>

#include "apps/jacobi.h"
#include "common.h"
#include "runtime/storage.h"
#include "support/stats.h"
#include "tool/recorder.h"

namespace {

std::uint64_t record_with(cdc::tool::RecordCodec codec, int ranks,
                          int iterations, std::uint64_t* events) {
  using namespace cdc;
  const auto [gx, gy] = bench::grid_for(ranks);
  runtime::CountingStore store;
  tool::ToolOptions options;
  options.codec = codec;
  tool::Recorder recorder(ranks, &store, options);
  minimpi::Simulator sim(bench::sim_config(ranks, 7), &recorder);

  apps::JacobiConfig jacobi;
  jacobi.grid_x = gx;
  jacobi.grid_y = gy;
  jacobi.iterations = iterations;
  apps::run_jacobi(sim, jacobi);
  recorder.finalize();
  if (events != nullptr) *events = recorder.totals().matched_events;
  return store.total_bytes();
}

}  // namespace

int main() {
  using namespace cdc;
  const int default_ranks = bench::full_scale() ? 6084 : 384;
  const int ranks = bench::env_int("CDC_RANKS", default_ranks);
  const int iterations = bench::env_int("CDC_ITERS", 1000);
  bench::print_machine_banner(
      "Figure 17 — hidden-deterministic communication (Jacobi, 1K iters)",
      ranks);

  std::uint64_t events = 0;
  const std::uint64_t gzip_bytes =
      record_with(tool::RecordCodec::kBaselineGzip, ranks, iterations,
                  &events);
  std::fprintf(stderr, "  [measured gzip]\n");
  const std::uint64_t cdc_bytes =
      record_with(tool::RecordCodec::kCdcFull, ranks, iterations, nullptr);
  std::fprintf(stderr, "  [measured CDC]\n");

  std::printf("receive events: %llu (%d iterations)\n\n",
              static_cast<unsigned long long>(events), iterations);
  std::printf("%-8s %12s %14s\n", "method", "record size", "bytes/event");
  std::printf("%-8s %12s %14.4f\n", "gzip",
              support::format_bytes(static_cast<double>(gzip_bytes)).c_str(),
              static_cast<double>(gzip_bytes) / static_cast<double>(events));
  std::printf("%-8s %12s %14.4f\n", "CDC",
              support::format_bytes(static_cast<double>(cdc_bytes)).c_str(),
              static_cast<double>(cdc_bytes) / static_cast<double>(events));
  std::printf("\nCDC / gzip = %.1f%%\n",
              100.0 * static_cast<double>(cdc_bytes) /
                  static_cast<double>(gzip_bytes));
  std::printf(
      "\npaper shape: 91 MB (gzip) vs 2 MB (CDC) = 2.2%% at 6,114 procs —\n"
      "CDC records hidden-deterministic patterns almost for free.\n");
  return cdc_bytes * 4 < gzip_bytes ? 0 : 1;
}
