// Fault sweep (companion to the §6 robustness claims): the schedule
// fuzzer at benchmark volume. Three sections:
//
//   1. Fuzz matrix — N seeds per fault class through record→store→replay,
//      each checked by the replay-equivalence oracle. Reports pass rate,
//      oracle event comparisons, and faults injected per class.
//   2. Fault overhead — virtual completion-time inflation of the recorded
//      task-farm run under each fault class (same workload, same noise
//      seed; the faults are the only difference), plus recorder bytes.
//   3. Crash sweep — a sealed container truncated at every frame
//      boundary; each survivor must repack CRC-clean and prefix-replay.
//
// Machine-readable results land in BENCH_fault.json (CI uploads it as an
// artifact). Scale knobs: CDC_FUZZ_SEEDS (default 64), CDC_SEED /
// CDC_FUZZ_BASE_SEED (default 1), CDC_FULL=1 doubles the per-class seed
// count and workload size.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "minimpi/fault.h"
#include "minimpi/schedule_fuzzer.h"
#include "runtime/storage.h"
#include "tool/recorder.h"

namespace {

using namespace cdc;
using bench::Clock;
using bench::seconds_since;

struct ClassRow {
  fuzz::FaultClass cls = fuzz::FaultClass::kNone;
  fuzz::FuzzReport report;
  double wall_seconds = 0;
};

struct OverheadRow {
  fuzz::FaultClass cls = fuzz::FaultClass::kNone;
  double virtual_seconds = 0;   ///< simulated completion time
  std::uint64_t faults = 0;     ///< injected message/stall faults
  std::uint64_t record_bytes = 0;
};

}  // namespace

int main() {
  const int seeds_default = bench::full_scale() ? 128 : 64;
  const std::uint32_t num_seeds = static_cast<std::uint32_t>(
      bench::env_int("CDC_FUZZ_SEEDS", seeds_default));
  const std::uint64_t base_seed = static_cast<std::uint64_t>(
      bench::env_int("CDC_FUZZ_BASE_SEED", bench::env_int("CDC_SEED", 1)));
  const int tasks = bench::full_scale() ? 400 : 160;
  const int ranks = bench::env_int("CDC_RANKS", 6);

  bench::print_machine_banner(
      "Fault sweep: schedule fuzzing + crash boundaries (robustness)",
      ranks);
  std::printf("seeds/class : %u (base seed %llu)\n", num_seeds,
              static_cast<unsigned long long>(base_seed));
  std::printf("workload    : task farm, %d ranks x %d tasks\n\n", ranks,
              tasks);

  // --- 1. fuzz matrix ------------------------------------------------------
  const fuzz::FuzzWorkload workload = fuzz::taskfarm_workload(ranks, tasks);
  std::vector<ClassRow> matrix;
  for (const fuzz::FaultClass cls : fuzz::kAllFaultClasses) {
    fuzz::FuzzOptions options;
    options.base_seed = base_seed;
    options.num_seeds = num_seeds;
    options.classes = {cls};
    ClassRow row;
    row.cls = cls;
    const auto start = Clock::now();
    row.report = fuzz::ScheduleFuzzer(workload, options).run();
    row.wall_seconds = seconds_since(start, "bench.fig18.class_ns");
    matrix.push_back(row);
    std::fprintf(stderr, "  [fuzzed %-14s %llu/%llu]\n",
                 fuzz::fault_class_name(cls),
                 static_cast<unsigned long long>(row.report.cases_passed),
                 static_cast<unsigned long long>(row.report.cases_run));
  }

  std::printf("%-15s %8s %8s %12s %10s %8s\n", "fault class", "cases",
              "passed", "events_ok", "faults", "wall_s");
  for (const ClassRow& row : matrix) {
    std::printf("%-15s %8llu %8llu %12llu %10llu %8.2f\n",
                fuzz::fault_class_name(row.cls),
                static_cast<unsigned long long>(row.report.cases_run),
                static_cast<unsigned long long>(row.report.cases_passed),
                static_cast<unsigned long long>(row.report.events_checked),
                static_cast<unsigned long long>(row.report.faults_injected),
                row.wall_seconds);
    for (const auto& failure : row.report.failures)
      std::printf("    FAIL %s\n", failure.repro().c_str());
  }

  // --- 2. fault overhead ---------------------------------------------------
  // Same workload and noise seed per row; only the fault plan changes, so
  // the virtual-time delta against the `none` row is the fault cost.
  std::vector<OverheadRow> overhead;
  for (const fuzz::FaultClass cls : fuzz::kAllFaultClasses) {
    if (cls == fuzz::FaultClass::kRecorderCrash) continue;  // not a
    // transport fault: its adversary is storage loss, timed in section 3.
    OverheadRow row;
    row.cls = cls;
    runtime::MemoryStore store;
    tool::Recorder recorder(workload.num_ranks, &store);
    minimpi::Simulator::Config config = bench::sim_config(workload.num_ranks,
                                                          base_seed);
    config.faults = fuzz::plan_for(cls, base_seed);
    minimpi::Simulator sim(config, &recorder);
    workload.run(sim);
    recorder.finalize();
    const minimpi::FaultStats& stats = sim.fault_stats();
    row.virtual_seconds = sim.now();
    row.faults = stats.delay_spikes + stats.burst_messages +
                 stats.duplicates_injected + stats.stalls;
    row.record_bytes = store.total_bytes();
    overhead.push_back(row);
  }
  const double baseline_time = overhead.front().virtual_seconds;
  std::printf("\n%-15s %14s %10s %10s %12s\n", "fault class", "virtual_s",
              "overhead", "faults", "record_B");
  for (const OverheadRow& row : overhead)
    std::printf("%-15s %14.6f %9.1f%% %10llu %12llu\n",
                fuzz::fault_class_name(row.cls), row.virtual_seconds,
                100.0 * (row.virtual_seconds / baseline_time - 1.0),
                static_cast<unsigned long long>(row.faults),
                static_cast<unsigned long long>(row.record_bytes));

  // --- 3. crash sweep ------------------------------------------------------
  const auto sweep_start = Clock::now();
  const fuzz::CrashSweepReport sweep =
      fuzz::crash_boundary_sweep(workload, base_seed);
  const double sweep_seconds =
      seconds_since(sweep_start, "bench.fig18.crash_sweep_ns");
  std::printf("\ncrash sweep : %s (%.2f s)\n", sweep.summary().c_str(),
              sweep_seconds);
  for (const std::string& failure : sweep.failures)
    std::printf("    FAIL %s\n", failure.c_str());

  bool all_ok = sweep.ok();
  for (const ClassRow& row : matrix) all_ok = all_ok && row.report.ok();
  std::printf("\nverdict     : %s\n", all_ok ? "all cases oracle-clean"
                                             : "FAILURES (see above)");

  // --- machine-readable (same keys as the fprintf original) ---------------
  const char* json_path = "BENCH_fault.json";
  obs::JsonWriter w;
  w.begin_object();
  w.field("bench", "fig18_fault_sweep");
  w.field("ranks", ranks);
  w.field("tasks", tasks);
  w.field("base_seed", base_seed);
  w.field("seeds_per_class", num_seeds);
  w.key("classes").begin_array();
  for (const ClassRow& row : matrix) {
    w.begin_object();
    w.field("class", fuzz::fault_class_name(row.cls));
    w.field("cases", row.report.cases_run);
    w.field("passed", row.report.cases_passed);
    w.field("events_checked", row.report.events_checked);
    w.field("faults_injected", row.report.faults_injected);
    w.field("wall_seconds", row.wall_seconds);
    w.end_object();
  }
  w.end_array();
  w.key("overhead").begin_array();
  for (const OverheadRow& row : overhead) {
    w.begin_object();
    w.field("class", fuzz::fault_class_name(row.cls));
    w.field("virtual_seconds", row.virtual_seconds);
    w.field("faults", row.faults);
    w.field("record_bytes", row.record_bytes);
    w.end_object();
  }
  w.end_array();
  w.key("crash_sweep").begin_object();
  w.field("frames", sweep.frames_recorded);
  w.field("boundaries", sweep.boundaries_tested);
  w.field("prefixes_verified", sweep.prefixes_verified);
  w.field("events_checked", sweep.events_checked);
  w.field("wall_seconds", sweep_seconds);
  w.end_object();
  w.field("ok", all_ok);
  w.end_object();
  if (bench::write_bench_json(json_path, std::move(w).take()))
    std::printf("json        : %s\n", json_path);

  return all_ok ? 0 : 1;
}
