// Degraded-replay sweep (companion to the survive-and-resume robustness
// claims): what fraction of a damaged record is still faithfully
// replayable. Three sections:
//
//   1. Kill-time sweep — a worker rank is killed at a fraction of the
//      run's virtual span; the task farm shrinks around it, the recorder
//      seals a complete container, and degraded replay must verify the
//      gated prefix against the recorded trace (zero aborts anywhere).
//   2. Transient I/O fault-rate sweep — seeded EIO/short-write/fsync
//      faults at increasing rates between the frame sink and the store;
//      bounded-backoff retries must leave the record bit-identical to the
//      fault-free one, with backoff inside its analytic bound.
//   3. Hard-fault quarantine — appends that never succeed are quarantined
//      to the `.cdcq` sidecar; the gap report must see the holes the
//      container cannot, and the longest-consistent-prefix replay must
//      verify against the oracle.
//
// Machine-readable results land in BENCH_degraded.json (CI uploads it as
// an artifact). Scale knobs: CDC_FUZZ_SEEDS (seeds per kill fraction),
// CDC_SEED, CDC_RANKS, CDC_FULL=1 for more seeds and a bigger farm.
#include <unistd.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "apps/taskfarm.h"
#include "common.h"
#include "minimpi/fault.h"
#include "runtime/storage.h"
#include "store/container_store.h"
#include "store/resilient.h"
#include "support/oracle.h"
#include "tool/degraded.h"
#include "tool/frame_sink.h"
#include "tool/recorder.h"
#include "tool/replayer.h"

namespace {

using namespace cdc;
using bench::Clock;
using bench::seconds_since;

/// splitmix64 finalizer — the fuzzer's per-purpose seed derivation, so a
/// fig19 row and the equivalent fuzz case see identical schedules.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Small chunks, many frames: gives kills and hard faults sub-stream
/// granularity to damage.
tool::ToolOptions tool_options(bool partial_record = false) {
  tool::ToolOptions options;
  options.chunk_target = 8;
  options.partial_record = partial_record;
  return options;
}

std::map<runtime::StreamKey, std::uint64_t> prefix_lengths(
    const tool::Replayer& replayer) {
  std::map<runtime::StreamKey, std::uint64_t> lengths;
  for (const auto& [key, stats] : replayer.stream_totals())
    lengths[key] = stats.replayed_events + stats.replayed_unmatched;
  return lengths;
}

std::uint64_t trace_events(const support::Trace& trace) {
  std::uint64_t events = 0;
  for (const auto& [key, stream] : trace) events += stream.size();
  return events;
}

std::string scratch_path(const char* tag, std::uint64_t seed,
                         const char* ext) {
  return (std::filesystem::temp_directory_path() /
          ("cdc_fig19_" + std::to_string(::getpid()) + "_" + tag + "_" +
           std::to_string(seed) + ext))
      .string();
}

void remove_quietly(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

struct KillRow {
  double fraction = 0;          ///< kill time as a fraction of the run span
  std::uint32_t cases = 0;
  std::uint32_t passed = 0;
  std::uint32_t kills_fired = 0;
  std::uint64_t tasks_lost = 0;
  std::uint64_t events_recorded = 0;
  std::uint64_t events_verified = 0;  ///< oracle-compared prefix events
  double min_coverage = 1.0;          ///< worst per-seed verified fraction
  std::vector<std::string> failures;
};

struct TransientRow {
  double eio_probability = 0;
  std::uint64_t faults = 0;
  std::uint64_t retries = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t quarantined = 0;
  double backoff_ms = 0;
  double backoff_bound_ms = 0;
  bool bit_identical = false;
  bool replay_ok = false;
  std::uint64_t events_checked = 0;
};

struct HardRow {
  std::uint32_t hard_every_n = 0;
  std::uint64_t frames_quarantined = 0;
  std::uint64_t bytes_quarantined = 0;
  std::uint64_t gap_streams = 0;
  double frame_coverage = 1.0;
  std::uint64_t events_recorded = 0;
  std::uint64_t events_verified = 0;
  bool replay_ok = false;
};

}  // namespace

int main() {
  const int ranks = bench::env_int("CDC_RANKS", 6);
  const int tasks = bench::full_scale() ? 400 : 120;
  const std::uint64_t base_seed = bench::default_seed();
  const std::uint32_t seeds_per_point = static_cast<std::uint32_t>(
      bench::env_int("CDC_FUZZ_SEEDS", bench::full_scale() ? 8 : 4));
  apps::TaskFarmConfig farm;
  farm.tasks = tasks;

  bench::print_machine_banner(
      "Degraded replay: rank kills, I/O faults, quarantine (survive-and-"
      "resume)",
      ranks);
  std::printf("workload    : task farm, %d ranks x %d tasks\n", ranks, tasks);
  std::printf("seeds/point : %u (base seed %llu)\n\n", seeds_per_point,
              static_cast<unsigned long long>(base_seed));

  // --- 1. kill-time sweep --------------------------------------------------
  // The later the kill, the more of the victim's streams the record holds;
  // degraded replay must verify the gated prefix at every kill time.
  const auto kill_start = Clock::now();
  std::vector<KillRow> kill_sweep;
  for (const double fraction : {0.12, 0.30, 0.50, 0.70, 0.88}) {
    KillRow row;
    row.fraction = fraction;
    for (std::uint32_t i = 0; i < seeds_per_point; ++i) {
      const std::uint64_t seed = base_seed + i;
      ++row.cases;

      // Probe (same noise seed, no faults): learn the virtual span so the
      // kill lands at the requested fraction of it.
      double probe_end = 0.0;
      {
        minimpi::Simulator probe(bench::sim_config(ranks, mix(seed * 4 + 1)));
        apps::run_taskfarm(probe, farm);
        probe_end = probe.stats().end_time;
      }

      minimpi::FaultPlan plan;
      plan.seed = mix(seed * 4 + 2);
      minimpi::RankKill kill;
      kill.rank = 1 + static_cast<minimpi::Rank>(
                          mix(seed * 4 + 2) %
                          static_cast<std::uint64_t>(ranks - 1));
      kill.time = probe_end * fraction;
      plan.kills.push_back(kill);

      const std::string container_path = scratch_path("kill", seed, ".cdc");
      support::Trace recorded;
      {
        store::ContainerStore container(container_path);
        tool::Recorder recorder(ranks, &container, tool_options());
        support::OrderProbe probe(&recorder);
        minimpi::Simulator::Config config =
            bench::sim_config(ranks, mix(seed * 4 + 1));
        config.faults = plan;
        minimpi::Simulator sim(config, &probe);
        const apps::TaskFarmResult farmed = apps::run_taskfarm(sim, farm);
        recorder.finalize();
        container.seal();
        recorded = probe.trace();
        row.kills_fired +=
            static_cast<std::uint32_t>(sim.fault_stats().rank_kills);
        row.tasks_lost += farmed.tasks_lost;
      }
      row.events_recorded += trace_events(recorded);

      const tool::GapReport gaps = tool::inspect_gaps(container_path);
      if (!gaps.container_sealed || gaps.frame_coverage() < 1.0) {
        row.failures.push_back("seed " + std::to_string(seed) +
                               ": post-kill container frame-damaged");
        remove_quietly(container_path);
        continue;
      }

      // Degraded replay: fault-free run gated by the truncated record;
      // the oracle checks the gated prefix, coverage is what it compared.
      const auto replay_store = store::ContainerStore::open(container_path);
      tool::Replayer replayer(ranks, replay_store.get(),
                              tool_options(/*partial_record=*/true));
      support::OrderProbe replay_probe(&replayer);
      minimpi::Simulator replay_sim(
          bench::sim_config(ranks, mix(seed * 4 + 3)), &replay_probe);
      apps::run_taskfarm(replay_sim, farm);

      const support::OracleReport oracle = support::check_prefix(
          recorded, replay_probe.trace(), prefix_lengths(replayer));
      row.events_verified += oracle.events_compared;
      const std::uint64_t recorded_events = trace_events(recorded);
      const double coverage =
          recorded_events == 0
              ? 1.0
              : static_cast<double>(oracle.events_compared) /
                    static_cast<double>(recorded_events);
      row.min_coverage = std::min(row.min_coverage, coverage);
      if (!oracle.ok) {
        row.failures.push_back("seed " + std::to_string(seed) + ": " +
                               oracle.summary());
      } else if (oracle.events_compared == 0 && !replayer.released() &&
                 recorded_events > 0) {
        row.failures.push_back("seed " + std::to_string(seed) +
                               ": replay gated nothing");
      } else {
        ++row.passed;
      }
      remove_quietly(container_path);
    }
    kill_sweep.push_back(std::move(row));
  }
  const double kill_seconds = seconds_since(kill_start, "bench.fig19.kill_ns");

  std::printf("%-10s %6s %6s %6s %10s %12s %12s %10s\n", "kill@frac",
              "cases", "passed", "kills", "tasks_lost", "events_rec",
              "events_ver", "min_cov");
  for (const KillRow& row : kill_sweep) {
    std::printf("%-10.2f %6u %6u %6u %10llu %12llu %12llu %9.1f%%\n",
                row.fraction, row.cases, row.passed, row.kills_fired,
                static_cast<unsigned long long>(row.tasks_lost),
                static_cast<unsigned long long>(row.events_recorded),
                static_cast<unsigned long long>(row.events_verified),
                100.0 * row.min_coverage);
    for (const std::string& failure : row.failures)
      std::printf("    FAIL %s\n", failure.c_str());
  }

  // --- 2. transient I/O fault-rate sweep -----------------------------------
  // Retried faults must be invisible: same bytes as the fault-free record,
  // backoff inside its bound, nothing quarantined.
  const auto io_start = Clock::now();
  std::vector<TransientRow> transient_sweep;
  for (const double rate : {0.0, 0.05, 0.15, 0.35}) {
    TransientRow row;
    row.eio_probability = rate;
    const std::uint64_t seed = base_seed;

    runtime::MemoryStore clean;
    support::Trace recorded;
    double recorded_value = 0.0;
    {
      tool::Recorder recorder(ranks, &clean, tool_options());
      support::OrderProbe probe(&recorder);
      minimpi::Simulator sim(bench::sim_config(ranks, mix(seed * 4 + 1)),
                             &probe);
      recorded_value = apps::run_taskfarm(sim, farm).accumulated;
      recorder.finalize();
      recorded = probe.trace();
    }

    runtime::MemoryStore faulted;
    store::IoFaultPlan fault_plan;
    fault_plan.seed = mix(seed * 4 + 2);
    fault_plan.eio_probability = rate;
    fault_plan.eio_every_n = rate > 0.0 ? 5 : 0;
    fault_plan.failures_per_fault = 2;
    fault_plan.short_write_probability = 0.4;
    fault_plan.fsync_failure_every_n = rate > 0.0 ? 3 : 0;
    store::IoFaultStore faulty(&faulted, fault_plan);
    store::RetryPolicy policy;
    policy.jitter_seed = mix(seed * 4 + 5);
    tool::RetryingFrameSink sink(&faulty, policy);
    {
      tool::Recorder recorder(ranks, &sink.store(), tool_options(), &sink);
      support::OrderProbe probe(&recorder);
      minimpi::Simulator sim(bench::sim_config(ranks, mix(seed * 4 + 1)),
                             &probe);
      apps::run_taskfarm(sim, farm);
      recorder.finalize();
    }
    row.faults = faulty.stats().transient_throws +
                 faulty.stats().fsync_failures;
    row.retries = sink.stats().retries;
    row.recoveries = sink.stats().recoveries;
    row.quarantined = sink.stats().quarantined;
    row.backoff_ms = sink.stats().backoff_ms_total;
    row.backoff_bound_ms = policy.max_total_backoff_ms() *
                           static_cast<double>(faulty.stats().appends);

    row.bit_identical = clean.keys() == faulted.keys();
    if (row.bit_identical)
      for (const runtime::StreamKey& key : clean.keys())
        if (clean.read(key) != faulted.read(key)) {
          row.bit_identical = false;
          break;
        }

    tool::Replayer replayer(ranks, &faulted, tool_options());
    support::OrderProbe replay_probe(&replayer);
    minimpi::Simulator replay_sim(
        bench::sim_config(ranks, mix(seed * 4 + 3)), &replay_probe);
    const double replayed_value =
        apps::run_taskfarm(replay_sim, farm).accumulated;
    const support::OracleReport oracle =
        support::check_equivalence(recorded, replay_probe.trace());
    row.events_checked = oracle.events_compared;
    row.replay_ok = oracle.ok && recorded_value == replayed_value;
    transient_sweep.push_back(row);
  }
  const double io_seconds = seconds_since(io_start, "bench.fig19.io_ns");

  std::printf("\n%-10s %8s %8s %8s %6s %10s %12s %10s %8s\n", "eio_p",
              "faults", "retries", "recover", "quar", "backoff_ms",
              "bound_ms", "identical", "replay");
  for (const TransientRow& row : transient_sweep)
    std::printf("%-10.2f %8llu %8llu %8llu %6llu %10.2f %12.1f %10s %8s\n",
                row.eio_probability,
                static_cast<unsigned long long>(row.faults),
                static_cast<unsigned long long>(row.retries),
                static_cast<unsigned long long>(row.recoveries),
                static_cast<unsigned long long>(row.quarantined),
                row.backoff_ms, row.backoff_bound_ms,
                row.bit_identical ? "yes" : "NO",
                row.replay_ok ? "ok" : "FAIL");

  // --- 3. hard-fault quarantine --------------------------------------------
  // Every Nth append fails permanently: the frame lands in the `.cdcq`
  // sidecar, the gap report finds the hole the container cannot show, and
  // replay of the longest consistent prefix still verifies.
  const auto hard_start = Clock::now();
  std::vector<HardRow> hard_rows;
  for (const std::uint32_t every_n : {6u, 25u}) {
    HardRow row;
    row.hard_every_n = every_n;
    const std::uint64_t seed = base_seed + every_n;
    const std::string container_path = scratch_path("hard", seed, ".cdc");
    const std::string quarantine_path = scratch_path("hard", seed, ".cdcq");

    support::Trace recorded;
    {
      store::ContainerStore container(container_path);
      store::IoFaultPlan fault_plan;
      fault_plan.seed = mix(seed * 4 + 2);
      fault_plan.hard_every_n = every_n;
      store::IoFaultStore faulty(&container, fault_plan);
      store::RetryPolicy policy;
      policy.max_retries = 2;  // hard faults never clear; fail fast
      policy.jitter_seed = mix(seed * 4 + 5);
      tool::RetryingFrameSink sink(&faulty, policy, quarantine_path);
      tool::Recorder recorder(ranks, &sink.store(), tool_options(), &sink);
      support::OrderProbe probe(&recorder);
      minimpi::Simulator sim(bench::sim_config(ranks, mix(seed * 4 + 1)),
                             &probe);
      apps::run_taskfarm(sim, farm);
      recorder.finalize();
      container.seal();
      recorded = probe.trace();
    }
    row.events_recorded = trace_events(recorded);

    const auto record =
        tool::load_degraded(container_path, quarantine_path);
    row.frames_quarantined = record->report.quarantined_frames;
    row.bytes_quarantined = record->report.quarantined_bytes;
    row.frame_coverage = record->report.frame_coverage();
    for (const tool::StreamGap& gap : record->report.streams)
      if (gap.truncated) ++row.gap_streams;

    tool::Replayer replayer(ranks, &record->store,
                            tool_options(/*partial_record=*/true));
    support::OrderProbe replay_probe(&replayer);
    minimpi::Simulator replay_sim(
        bench::sim_config(ranks, mix(seed * 4 + 3)), &replay_probe);
    apps::run_taskfarm(replay_sim, farm);
    const support::OracleReport oracle = support::check_prefix(
        recorded, replay_probe.trace(), prefix_lengths(replayer));
    row.events_verified = oracle.events_compared;
    row.replay_ok =
        oracle.ok &&
        // A quarantined frame must be visible as a gap…
        (row.frames_quarantined == 0 || row.frame_coverage < 1.0) &&
        // …and the replay must still make verified progress.
        (oracle.events_compared > 0 || replayer.released() ||
         row.events_recorded == 0);
    hard_rows.push_back(row);
    remove_quietly(container_path);
    remove_quietly(quarantine_path);
  }
  const double hard_seconds =
      seconds_since(hard_start, "bench.fig19.hard_ns");

  std::printf("\n%-12s %6s %10s %6s %10s %12s %12s %8s\n", "hard_every_n",
              "quar", "quar_B", "gaps", "coverage", "events_rec",
              "events_ver", "replay");
  for (const HardRow& row : hard_rows)
    std::printf("%-12u %6llu %10llu %6llu %9.1f%% %12llu %12llu %8s\n",
                row.hard_every_n,
                static_cast<unsigned long long>(row.frames_quarantined),
                static_cast<unsigned long long>(row.bytes_quarantined),
                static_cast<unsigned long long>(row.gap_streams),
                100.0 * row.frame_coverage,
                static_cast<unsigned long long>(row.events_recorded),
                static_cast<unsigned long long>(row.events_verified),
                row.replay_ok ? "ok" : "FAIL");

  bool all_ok = true;
  for (const KillRow& row : kill_sweep)
    all_ok = all_ok && row.passed == row.cases;
  for (const TransientRow& row : transient_sweep)
    all_ok = all_ok && row.bit_identical && row.replay_ok &&
             row.quarantined == 0 && row.backoff_ms <= row.backoff_bound_ms;
  for (const HardRow& row : hard_rows) all_ok = all_ok && row.replay_ok;
  std::printf("\nverdict     : %s\n",
              all_ok ? "all cases survived and verified"
                     : "FAILURES (see above)");

  // --- machine-readable ----------------------------------------------------
  const char* json_path = "BENCH_degraded.json";
  obs::JsonWriter w;
  w.begin_object();
  w.field("bench", "fig19_degraded_replay");
  w.field("ranks", ranks);
  w.field("tasks", tasks);
  w.field("base_seed", base_seed);
  w.field("seeds_per_point", seeds_per_point);
  w.key("kill_sweep").begin_array();
  for (const KillRow& row : kill_sweep) {
    w.begin_object();
    w.field("fraction", row.fraction);
    w.field("cases", row.cases);
    w.field("passed", row.passed);
    w.field("kills_fired", row.kills_fired);
    w.field("tasks_lost", row.tasks_lost);
    w.field("events_recorded", row.events_recorded);
    w.field("events_verified", row.events_verified);
    w.field("min_coverage", row.min_coverage);
    w.field("wall_seconds", kill_seconds);
    w.end_object();
  }
  w.end_array();
  w.key("transient_sweep").begin_array();
  for (const TransientRow& row : transient_sweep) {
    w.begin_object();
    w.field("eio_probability", row.eio_probability);
    w.field("faults", row.faults);
    w.field("retries", row.retries);
    w.field("recoveries", row.recoveries);
    w.field("quarantined", row.quarantined);
    w.field("backoff_ms", row.backoff_ms);
    w.field("backoff_bound_ms", row.backoff_bound_ms);
    w.field("bit_identical", row.bit_identical);
    w.field("replay_ok", row.replay_ok);
    w.field("events_checked", row.events_checked);
    w.field("wall_seconds", io_seconds);
    w.end_object();
  }
  w.end_array();
  w.key("hard_faults").begin_array();
  for (const HardRow& row : hard_rows) {
    w.begin_object();
    w.field("hard_every_n", row.hard_every_n);
    w.field("frames_quarantined", row.frames_quarantined);
    w.field("bytes_quarantined", row.bytes_quarantined);
    w.field("gap_streams", row.gap_streams);
    w.field("frame_coverage", row.frame_coverage);
    w.field("events_recorded", row.events_recorded);
    w.field("events_verified", row.events_verified);
    w.field("replay_ok", row.replay_ok);
    w.field("wall_seconds", hard_seconds);
    w.end_object();
  }
  w.end_array();
  w.field("ok", all_ok);
  w.end_object();
  if (bench::write_bench_json(json_path, std::move(w).take()))
    std::printf("json        : %s\n", json_path);

  return all_ok ? 0 : 1;
}
