// Figure 21 (this repo's extension): corpus storage of a 64-seed record
// family vs 64 independently stored records.
//
// The paper compresses ONE record by encoding it against a predictable
// reference (the Lamport clock order). The corpus applies the same move
// across records: 64 runs of the fig13 MCB workload — identical app and
// config, different network-noise seeds — are recorded through a
// CorpusStore into a single container. Two corpora are measured:
//
//   * the CDC corpus: each member recorded with the paper's full codec
//     (RE + PE + LPE + epoch), the replayable form. The acceptance bar
//     (ISSUE 6) is that this one container is >= 3x smaller than the sum
//     of the same 64 runs stored as independent gzip records (fig13's
//     "gzip" row — the production status quo the corpus replaces).
//   * the rows corpus: the same runs as UNcompressed baseline rows, where
//     the corpus machinery (reference election, JACM'02 deltas,
//     content-defined chunk dedup, gzip fallback) is the only compressor
//     — isolating the cross-member dedup contribution.
//
// Every member of both corpora must reconstruct byte-identically,
// alternating between the fresh-apply and the TKDE'03 in-place path
// (replay-equivalence of corpus members is fuzzed separately in
// tests/integration/corpus_fuzz_test.cc). The simulator is deterministic
// per seed and every encoder is deterministic, so all byte counts in
// BENCH_corpus.json are machine-independent — which is what lets the CI
// perf-smoke job diff the ratios against bench/corpus_baseline.json
// (bench/check_corpus_baseline.py, 2% tolerance).
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common.h"
#include "corpus/corpus.h"
#include "runtime/storage.h"
#include "support/stats.h"
#include "tool/recorder.h"

namespace {

using namespace cdc;

using StreamMap = std::map<runtime::StreamKey, std::vector<std::uint8_t>>;

struct CurveRow {
  int members = 0;
  std::uint64_t corpus_bytes = 0;  ///< CDC corpus container after flush
  std::uint64_t gzip_bytes = 0;    ///< same members as independent gzip
};

/// One corpus under measurement plus the originals to verify against.
struct Family {
  const char* label;
  std::filesystem::path path;
  std::unique_ptr<corpus::Corpus> corpus;
  std::vector<std::pair<std::uint32_t, StreamMap>> originals;
};

/// Runs the seeded MCB workload once with `options`, recording into
/// `store`.
void record_run(int ranks, std::uint64_t seed, const tool::ToolOptions& options,
                runtime::RecordStore* store) {
  tool::Recorder recorder(ranks, store, options);
  minimpi::Simulator sim(bench::sim_config(ranks, seed), &recorder);
  apps::run_mcb(sim, bench::mcb_config(ranks));
  recorder.finalize();
}

/// Ingests the buffered record as a member and snapshots its streams.
void keep_member(Family& family, const std::string& name,
                 const runtime::RecordStore& rows, std::uint32_t ordinal) {
  StreamMap streams;
  for (const auto& key : rows.keys()) streams.emplace(key, rows.read(key));
  family.originals.emplace_back(ordinal, std::move(streams));
  (void)name;
}

/// Byte-verifies every member of a sealed family, alternating fresh and
/// in-place reconstruction. Returns verified stream count, 0 on failure.
std::uint64_t verify_family(const Family& family,
                            const corpus::CorpusReader& reader) {
  std::uint64_t verified = 0;
  for (std::size_t i = 0; i < family.originals.size(); ++i) {
    const auto& [ordinal, streams] = family.originals[i];
    const bool in_place = (i % 2) == 1;
    for (const auto& [key, bytes] : streams) {
      const auto back = reader.read_stream(ordinal, key, in_place);
      if (!back.has_value() || *back != bytes) {
        std::fprintf(stderr,
                     "FAIL: %s member %u stream (%d,%u) did not round-trip "
                     "(in_place=%d)\n",
                     family.label, ordinal, key.rank, key.callsite,
                     in_place ? 1 : 0);
        return 0;
      }
      ++verified;
    }
  }
  return verified;
}

}  // namespace

int main() {
  using namespace cdc;
  const int default_ranks = bench::full_scale() ? 64 : 24;
  const int ranks = bench::env_int("CDC_RANKS", default_ranks);
  const int members = bench::env_int("CDC_CORPUS_MEMBERS", 64);
  const std::uint64_t base_seed = bench::default_seed();
  bench::print_machine_banner(
      "Figure 21 — corpus storage of a 64-seed record family", ranks);
  std::printf("family    : MCB, %d members (noise seeds %llu..%llu)\n\n",
              members, static_cast<unsigned long long>(base_seed),
              static_cast<unsigned long long>(base_seed + members - 1));

  const auto tmp = std::filesystem::temp_directory_path();
  Family cdc_family{"cdc", tmp / "cdc_fig21_cdc.cdcc", nullptr, {}};
  Family rows_family{"rows", tmp / "cdc_fig21_rows.cdcc", nullptr, {}};
  for (Family* family : {&cdc_family, &rows_family}) {
    std::filesystem::remove(family->path);
    family->corpus =
        std::make_unique<corpus::Corpus>(family->path.string());
  }

  std::vector<CurveRow> curve;
  std::uint64_t sum_gzip = 0;   ///< independent gzip records (fig13 row)
  std::uint64_t sum_raw = 0;    ///< uncompressed rows, for scale

  for (int m = 0; m < members; ++m) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(m);
    const std::string name = "seed-" + std::to_string(seed);

    // The corpus under test: the paper's full codec through CorpusStore.
    {
      corpus::CorpusStore store(cdc_family.corpus.get(), "mcb", name);
      record_run(ranks, seed, tool::ToolOptions{}, &store);
      // Snapshot BEFORE sealing: seal_member clears the buffer.
      runtime::MemoryStore copy;
      for (const auto& key : store.keys()) copy.append(key, store.read(key));
      const std::uint32_t ordinal = store.seal_member();
      keep_member(cdc_family, name, copy, ordinal);
    }

    // The comparison bar: the same run as an independent gzip record.
    {
      runtime::CountingStore gzip_store;
      tool::ToolOptions options;
      options.codec = tool::RecordCodec::kBaselineGzip;
      record_run(ranks, seed, options, &gzip_store);
      sum_gzip += gzip_store.total_bytes();
    }

    // The dedup probe: uncompressed rows, corpus as the only compressor.
    {
      runtime::MemoryStore rows;
      tool::ToolOptions options;
      options.codec = tool::RecordCodec::kBaselineRaw;
      record_run(ranks, seed, options, &rows);
      sum_raw += rows.total_bytes();
      const std::uint32_t ordinal =
          rows_family.corpus->add_member("mcb-rows", name, rows);
      keep_member(rows_family, name, rows, ordinal);
    }

    const int count = m + 1;
    if (count == 8 || count == 16 || count == 32 || count == members) {
      cdc_family.corpus->flush();  // durable prefix = corpus cost so far
      CurveRow row;
      row.members = count;
      row.corpus_bytes = std::filesystem::file_size(cdc_family.path);
      row.gzip_bytes = sum_gzip;
      if (curve.empty() || curve.back().members != count)
        curve.push_back(row);
      else
        curve.back() = row;
      std::fprintf(stderr, "  [ingested %3d/%d members]\n", count, members);
    }
  }
  cdc_family.corpus->seal();
  rows_family.corpus->seal();
  const std::uint64_t corpus_bytes =
      std::filesystem::file_size(cdc_family.path);
  const std::uint64_t rows_corpus_bytes =
      std::filesystem::file_size(rows_family.path);
  if (!curve.empty()) curve.back().corpus_bytes = corpus_bytes;

  std::string error;
  const auto cdc_reader =
      corpus::CorpusReader::open(cdc_family.path.string(), &error);
  if (cdc_reader == nullptr) {
    std::fprintf(stderr, "FAIL: CDC corpus would not reopen: %s\n",
                 error.c_str());
    return 1;
  }
  const auto rows_reader =
      corpus::CorpusReader::open(rows_family.path.string(), &error);
  if (rows_reader == nullptr) {
    std::fprintf(stderr, "FAIL: rows corpus would not reopen: %s\n",
                 error.c_str());
    return 1;
  }
  const std::uint64_t cdc_verified = verify_family(cdc_family, *cdc_reader);
  const std::uint64_t rows_verified = verify_family(rows_family, *rows_reader);
  if (cdc_verified == 0 || rows_verified == 0) return 1;

  const double vs_gzip = static_cast<double>(sum_gzip) /
                         static_cast<double>(corpus_bytes);
  const double rows_dedup = rows_reader->stats().dedup_ratio();
  const double rows_vs_gzip = static_cast<double>(sum_gzip) /
                              static_cast<double>(rows_corpus_bytes);

  std::printf("%8s %16s %16s %9s\n", "members", "CDC corpus file",
              "Σ gzip records", "vs gzip");
  for (const CurveRow& row : curve) {
    std::printf("%8d %16s %16s %8.2fx\n", row.members,
                support::format_bytes(
                    static_cast<double>(row.corpus_bytes)).c_str(),
                support::format_bytes(
                    static_cast<double>(row.gzip_bytes)).c_str(),
                static_cast<double>(row.gzip_bytes) /
                    static_cast<double>(row.corpus_bytes));
  }
  std::printf(
      "\nrows corpus (corpus as the only compressor): %s for %s raw "
      "(%.2fx dedup, %.2fx vs the gzip records)\n",
      support::format_bytes(static_cast<double>(rows_corpus_bytes)).c_str(),
      support::format_bytes(static_cast<double>(sum_raw)).c_str(),
      rows_dedup, rows_vs_gzip);
  const corpus::CorpusStats& rs = rows_reader->stats();
  std::printf(
      "rows corpus internals: %llu streams (%llu chunked / %llu onepass / "
      "%llu correcting / %llu gzip / %llu raw), %llu chunk hits\n",
      static_cast<unsigned long long>(rs.streams),
      static_cast<unsigned long long>(rs.by_encoding[static_cast<int>(
          corpus::MemberEncoding::kChunks)]),
      static_cast<unsigned long long>(rs.by_encoding[static_cast<int>(
          corpus::MemberEncoding::kDeltaOnepass)]),
      static_cast<unsigned long long>(rs.by_encoding[static_cast<int>(
          corpus::MemberEncoding::kDeltaCorrecting)]),
      static_cast<unsigned long long>(rs.by_encoding[static_cast<int>(
          corpus::MemberEncoding::kSelfGzip)]),
      static_cast<unsigned long long>(rs.by_encoding[static_cast<int>(
          corpus::MemberEncoding::kRaw)]),
      static_cast<unsigned long long>(rs.chunk_hits));
  std::printf("verified %llu + %llu member streams byte-identical "
              "(alternating fresh / in-place reconstruction)\n",
              static_cast<unsigned long long>(cdc_verified),
              static_cast<unsigned long long>(rows_verified));
  std::printf("\nacceptance: CDC corpus must be >= 3x smaller than %d "
              "independent gzip records — measured %.2fx\n",
              members, vs_gzip);

  // --- machine-readable output ------------------------------------------
  obs::JsonWriter w;
  w.begin_object();
  w.field("bench", "fig21_corpus_dedup");
  w.field("ranks", ranks);
  w.field("members", members);
  w.field("base_seed", base_seed);
  w.key("curve").begin_array();
  for (const CurveRow& row : curve) {
    w.begin_object();
    w.field("members", row.members);
    w.field("corpus_bytes", row.corpus_bytes);
    w.field("gzip_bytes", row.gzip_bytes);
    w.field("vs_gzip", static_cast<double>(row.gzip_bytes) /
                           static_cast<double>(row.corpus_bytes));
    w.end_object();
  }
  w.end_array();
  w.field("corpus_bytes", corpus_bytes);
  w.field("gzip_bytes", sum_gzip);
  w.field("raw_bytes", sum_raw);
  w.field("vs_gzip", vs_gzip);
  w.key("rows_corpus").begin_object();
  w.field("corpus_bytes", rows_corpus_bytes);
  w.field("dedup_ratio", rows_dedup);
  w.field("vs_gzip", rows_vs_gzip);
  w.field("chunk_hits", rs.chunk_hits);
  w.field("chunk_hit_bytes", rs.chunk_hit_bytes);
  w.key("by_encoding").begin_object();
  w.field("chunks", rs.by_encoding[static_cast<int>(
                        corpus::MemberEncoding::kChunks)]);
  w.field("delta_onepass", rs.by_encoding[static_cast<int>(
                               corpus::MemberEncoding::kDeltaOnepass)]);
  w.field("delta_correcting", rs.by_encoding[static_cast<int>(
                                  corpus::MemberEncoding::kDeltaCorrecting)]);
  w.field("self_gzip", rs.by_encoding[static_cast<int>(
                           corpus::MemberEncoding::kSelfGzip)]);
  w.field("raw", rs.by_encoding[static_cast<int>(
                     corpus::MemberEncoding::kRaw)]);
  w.end_object();
  w.end_object();
  w.field("verified_streams", cdc_verified + rows_verified);
  w.end_object();
  if (bench::write_bench_json("BENCH_corpus.json", std::move(w).take()))
    std::printf("wrote BENCH_corpus.json\n");

  std::filesystem::remove(cdc_family.path);
  std::filesystem::remove(rows_family.path);
  return vs_gzip >= 3.0 ? 0 : 1;
}
