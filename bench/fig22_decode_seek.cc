// Figure 22 (this repo): decode-side throughput and epoch-index seeks.
//
// Two questions the replay path must answer well:
//   1. How fast is the batched inflate loop relative to the deflate
//      encoder at every effort level? (The decode fast path exists so
//      replay start-up is never compression-bound; the acceptance bar is
//      inflate comfortably faster than the same level's deflate.)
//   2. Is a windowed replay's seek O(window) — i.e. independent of where
//      the window starts in the record? The epoch index maps epoch -> frame
//      offset, so reading epochs [lo, lo+w) must cost the same whether lo
//      is at the front or the back of the record.
//
// Results land in BENCH_decode.json. The CI perf-smoke job gates the
// default level's *relative* decode throughput (inflate MB/s over deflate
// MB/s — the ratio cancels most machine variance) against the committed
// bench/decode_baseline.json via bench/check_decode_baseline.py.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common.h"
#include "compress/deflate.h"
#include "store/compression_service.h"
#include "store/container_reader.h"
#include "store/container_store.h"
#include "support/rng.h"
#include "support/stats.h"
#include "tool/frame_sink.h"
#include "tool/options.h"
#include "tool/recorder.h"

namespace {

using namespace cdc;
using bench::Clock;
using bench::seconds_since;

struct LevelRow {
  compress::DeflateLevel level;
  double deflate_seconds = 0;
  double inflate_seconds = 0;
  std::uint64_t compressed_bytes = 0;
  bool decoded_ok = false;
};

struct WindowRow {
  std::uint64_t lo = 0;
  double seconds = 0;
  std::uint64_t bytes = 0;
};

}  // namespace

int main() {
  const int ranks = bench::env_int("CDC_RANKS", bench::full_scale() ? 256 : 64);
  bench::print_machine_banner(
      "Figure 22 — decode throughput and epoch-index seek latency", ranks);

  // --- part 1: inflate vs deflate per level ------------------------------
  // The same deterministic record-like corpus fig13 compresses (seed 3,
  // 85% zeros), so the two benches describe the same workload from the two
  // sides of the codec. Min-of-reps timing keeps the gated ratio stable.
  constexpr std::size_t kCorpusBytes = 4u << 20;
  constexpr int kEncodeReps = 3;
  constexpr int kDecodeReps = 8;
  std::vector<std::uint8_t> corpus(kCorpusBytes);
  {
    support::Xoshiro256 rng(3);
    for (auto& byte : corpus)
      byte = rng.uniform() < 0.85 ? 0 : static_cast<std::uint8_t>(
                                            rng.bounded(6));
  }
  const double corpus_mb = static_cast<double>(kCorpusBytes) / (1u << 20);

  std::vector<LevelRow> levels = {{compress::DeflateLevel::kFast},
                                  {compress::DeflateLevel::kDefault},
                                  {compress::DeflateLevel::kBest}};
  std::printf("codec on a deterministic %s record-like corpus "
              "(min of %d encode / %d decode passes):\n",
              support::format_bytes(
                  static_cast<double>(kCorpusBytes)).c_str(),
              kEncodeReps, kDecodeReps);
  std::printf("%-10s %14s %14s %14s\n", "level", "deflate MB/s",
              "inflate MB/s", "inflate/deflate");
  for (LevelRow& row : levels) {
    std::vector<std::uint8_t> encoded;
    row.deflate_seconds = 1e30;
    for (int rep = 0; rep < kEncodeReps; ++rep) {
      const auto start = Clock::now();
      encoded = compress::deflate_compress(corpus, row.level,
                                           std::move(encoded));
      row.deflate_seconds = std::min(
          row.deflate_seconds,
          seconds_since(start, "bench.fig22.deflate_ns"));
    }
    row.compressed_bytes = encoded.size();

    row.decoded_ok = true;
    row.inflate_seconds = 1e30;
    std::vector<std::uint8_t> decoded;
    for (int rep = 0; rep < kDecodeReps; ++rep) {
      const auto start = Clock::now();
      auto out = compress::deflate_decompress(encoded, std::move(decoded));
      const double seconds =
          seconds_since(start, "bench.fig22.inflate_ns");
      if (!out || *out != corpus) {
        row.decoded_ok = false;
        decoded.clear();
        break;
      }
      row.inflate_seconds = std::min(row.inflate_seconds, seconds);
      decoded = std::move(*out);
    }
    std::printf("%-10.*s %14.2f %14.2f %14.2fx%s\n",
                static_cast<int>(compress::to_string(row.level).size()),
                compress::to_string(row.level).data(),
                corpus_mb / row.deflate_seconds,
                corpus_mb / row.inflate_seconds,
                row.deflate_seconds / row.inflate_seconds,
                row.decoded_ok ? "" : "  DECODE FAILED");
  }

  // --- part 2: seek latency vs window start ------------------------------
  // Record an MCB run into a sealed epoch-indexed container, then read a
  // one-epoch window of every stream at four starting positions spread
  // across the record. The epoch index makes each read O(window): the four
  // rows must cost the same regardless of lo, and far less than decoding
  // the whole record.
  const std::string container_path = "fig22_seek.cdcc";
  {
    store::ContainerStore container(container_path);
    store::CompressionService::Config service_config;
    service_config.workers = 2;
    store::CompressionService service(&container, service_config);
    tool::AsyncFrameSink sink(&service);
    tool::ToolOptions options;
    options.chunk_target = 128;
    tool::Recorder recorder(ranks, &container, options, &sink);
    minimpi::Simulator sim(bench::sim_config(ranks), &recorder);
    apps::run_mcb(sim, bench::mcb_config(ranks));
    recorder.finalize();
    service.drain();
    container.seal();
  }
  std::string error;
  const auto reader = store::ContainerReader::open(container_path, &error);
  if (reader == nullptr || !reader->epoch_index_ok()) {
    std::fprintf(stderr, "fig22: container has no usable epoch index: %s\n",
                 error.c_str());
    return 1;
  }
  const std::vector<runtime::StreamKey> keys = reader->keys();
  std::uint64_t epochs = 0;
  std::uint64_t frame_bytes = 0;
  for (const runtime::StreamKey& key : keys)
    if (const store::StreamEpochIndex* index = reader->find_epochs(key))
      epochs = std::max(epochs,
                        static_cast<std::uint64_t>(index->epochs.size()));
  if (epochs < 4) {
    std::fprintf(stderr, "fig22: record too shallow to seek (%llu epochs)\n",
                 static_cast<unsigned long long>(epochs));
    return 1;
  }

  constexpr int kSeekReps = 32;
  double full_seconds = 1e30;
  for (int rep = 0; rep < 4; ++rep) {
    std::uint64_t bytes = 0;
    const auto start = Clock::now();
    for (const runtime::StreamKey& key : keys)
      bytes += reader->read_stream_window(key, 0, epochs).bytes.size();
    full_seconds = std::min(full_seconds,
                            seconds_since(start, "bench.fig22.full_read_ns"));
    frame_bytes = bytes;
  }

  std::vector<WindowRow> windows = {{0},
                                    {epochs / 4},
                                    {epochs / 2},
                                    {3 * epochs / 4}};
  for (WindowRow& row : windows) {
    row.seconds = 1e30;
    for (int rep = 0; rep < kSeekReps; ++rep) {
      std::uint64_t bytes = 0;
      const auto start = Clock::now();
      for (const runtime::StreamKey& key : keys) {
        const store::ContainerReader::WindowRead read =
            reader->read_stream_window(key, row.lo, row.lo + 1);
        if (!read.seeked && reader->find_epochs(key) != nullptr) {
          std::fprintf(stderr, "fig22: window read fell back to a "
                               "sequential scan\n");
          return 1;
        }
        bytes += read.bytes.size();
      }
      row.seconds = std::min(row.seconds,
                             seconds_since(start, "bench.fig22.seek_ns"));
      row.bytes = bytes;
    }
  }

  std::printf("\nepoch-index seeks over %zu streams, %llu epochs deep "
              "(%s framed; min of %d passes):\n",
              keys.size(), static_cast<unsigned long long>(epochs),
              support::format_bytes(
                  static_cast<double>(frame_bytes)).c_str(),
              kSeekReps);
  std::printf("%-22s %12s %12s\n", "window", "seconds", "bytes read");
  std::printf("%-22s %12.6f %12s\n", "full record", full_seconds,
              support::format_bytes(
                  static_cast<double>(frame_bytes)).c_str());
  double seek_min = 1e30;
  double seek_max = 0;
  for (const WindowRow& row : windows) {
    char label[32];
    std::snprintf(label, sizeof label, "epoch [%llu, %llu)",
                  static_cast<unsigned long long>(row.lo),
                  static_cast<unsigned long long>(row.lo + 1));
    std::printf("%-22s %12.6f %12s\n", label, row.seconds,
                support::format_bytes(
                    static_cast<double>(row.bytes)).c_str());
    seek_min = std::min(seek_min, row.seconds);
    seek_max = std::max(seek_max, row.seconds);
  }
  const double spread = seek_max / seek_min;
  std::printf("seek spread (slowest/fastest start): %.2fx — the window's "
              "position in the record %s its cost\n",
              spread, spread < 2.0 ? "does not change" : "CHANGES");

  // --- machine-readable output ------------------------------------------
  obs::JsonWriter w;
  w.begin_object();
  w.field("bench", "fig22_decode_seek");
  w.field("corpus_bytes", static_cast<std::uint64_t>(kCorpusBytes));
  w.field("corpus_seed", 3);
  w.key("levels").begin_array();
  for (const LevelRow& row : levels) {
    const double deflate_mb_per_s = corpus_mb / row.deflate_seconds;
    const double inflate_mb_per_s = corpus_mb / row.inflate_seconds;
    w.begin_object();
    w.field("level", std::string(compress::to_string(row.level)));
    w.field("compressed_bytes", row.compressed_bytes);
    w.field("deflate_mb_per_s", deflate_mb_per_s);
    w.field("inflate_mb_per_s", inflate_mb_per_s);
    w.field("inflate_vs_deflate", inflate_mb_per_s / deflate_mb_per_s);
    w.field("decoded_ok", row.decoded_ok);
    w.end_object();
  }
  w.end_array();
  w.key("seek").begin_object();
  w.field("ranks", ranks);
  w.field("streams", keys.size());
  w.field("epochs", epochs);
  w.field("frame_bytes", frame_bytes);
  w.field("full_read_seconds", full_seconds);
  w.field("seek_spread", spread);
  w.key("windows").begin_array();
  for (const WindowRow& row : windows) {
    w.begin_object();
    w.field("lo", row.lo);
    w.field("seconds", row.seconds);
    w.field("bytes", row.bytes);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();
  if (bench::write_bench_json("BENCH_decode.json", std::move(w).take()))
    std::printf("\nwrote BENCH_decode.json\n");
  std::remove(container_path.c_str());

  bool ok = spread < 2.0;
  for (const LevelRow& row : levels)
    ok = ok && row.decoded_ok && row.inflate_seconds < row.deflate_seconds;
  return ok ? 0 : 1;
}
