// Figure 23 (this repo): record-service load — many concurrent clients
// against one in-process server, with and without an injected fault mix.
//
// Two phases, both fully seeded:
//   1. clean   — CDC_CLIENTS well-behaved uploaders (default 100) against
//                a deliberately tight ingest queue + per-batch throttle,
//                so TCP backpressure (slow-reader suspension) must engage
//                while every record still seals byte-identical to its
//                local rebuild. Reports throughput and ack percentiles.
//   2. faulted — the same population with the full fault plan mixed in
//                (slow clients, mid-stream disconnects, duplicate
//                uploads, garbage bytes, oversized frames); surviving
//                records are oracle-verified against a rebuild from the
//                seed, vanished records must be absent.
//
// Results land in BENCH_service.json. The CI service job gates the
// correctness fields strictly (zero unexpected failures, zero verify
// failures, backpressure engaged) and the throughput only against a
// generous floor via bench/check_service_baseline.py — absolute MB/s is
// machine noise; silently dropped frames are not.
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "common.h"
#include "net/load_gen.h"
#include "net/server.h"

namespace {

using namespace cdc;
using bench::Clock;

// One tenant per phase: record names are per-tenant, so the phases get
// disjoint namespaces (and the per-tenant accounting is exercised).
constexpr const char* kCleanToken = "bench-clean-token";
constexpr const char* kCleanTenant = "bench-clean";
constexpr const char* kFaultToken = "bench-fault-token";
constexpr const char* kFaultTenant = "bench-fault";

net::LoadReport run_phase(const net::Server& server,
                          const std::filesystem::path& root,
                          const char* token, const char* tenant,
                          std::size_t clients, std::uint64_t seed,
                          const net::FaultPlan& faults) {
  net::LoadConfig config;
  config.port = server.port();
  config.token = token;
  config.clients = clients;
  config.seed = seed;
  config.level = compress::DeflateLevel::kFast;
  config.shape.batches = 6;
  config.shape.frames_per_batch = 8;
  config.shape.payload_bytes = 2048;
  config.shape.streams = 4;
  config.faults = faults;
  config.server_root = (root / "root").string();
  config.tenant = tenant;
  config.scratch_dir = (root / "scratch").string();
  return net::run_load(config);
}

void print_report(const char* phase, const net::LoadReport& r) {
  std::printf("%-8s clients %3zu  sealed %3zu  expected-fail %2zu  "
              "unexpected %2zu\n",
              phase, r.clients, r.sealed, r.expected_failures,
              r.unexpected_failures);
  std::printf("         verified %3zu  verify-fail %zu  %.0f frames/s  "
              "%.2f MB/s\n",
              r.verified, r.verify_failures, r.frames_per_s, r.mb_per_s);
  std::printf("         ack p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  "
              "(%llu samples)\n",
              r.ack_p50_ms, r.ack_p95_ms, r.ack_p99_ms,
              static_cast<unsigned long long>(r.latency_samples));
  for (const std::string& e : r.errors)
    std::printf("         error: %s\n", e.c_str());
}

void emit_phase(obs::JsonWriter& w, const net::LoadReport& r) {
  w.begin_object();
  w.field("clients", static_cast<std::uint64_t>(r.clients));
  w.field("sealed", static_cast<std::uint64_t>(r.sealed));
  w.field("expected_failures",
          static_cast<std::uint64_t>(r.expected_failures));
  w.field("unexpected_failures",
          static_cast<std::uint64_t>(r.unexpected_failures));
  w.field("verified", static_cast<std::uint64_t>(r.verified));
  w.field("verify_failures",
          static_cast<std::uint64_t>(r.verify_failures));
  w.field("frames_acked", r.frames_acked);
  w.field("raw_bytes_acked", r.raw_bytes_acked);
  w.field("duration_s", r.duration_s);
  w.field("frames_per_s", r.frames_per_s);
  w.field("mb_per_s", r.mb_per_s);
  w.field("ack_p50_ms", r.ack_p50_ms);
  w.field("ack_p95_ms", r.ack_p95_ms);
  w.field("ack_p99_ms", r.ack_p99_ms);
  w.end_object();
}

}  // namespace

int main() {
  const auto clients = static_cast<std::size_t>(
      bench::env_int("CDC_CLIENTS", 100));
  std::printf("==============================================================\n");
  std::printf("Figure 23 — record-service load: %zu concurrent clients\n",
              clients);
  std::printf("--------------------------------------------------------------\n");

  const std::filesystem::path root =
      std::filesystem::temp_directory_path() /
      ("cdc_fig23." + std::to_string(::getpid()));
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);

  net::ServerConfig server_config;
  server_config.root_dir = (root / "root").string();
  for (const auto& [name, token] :
       {std::pair{kCleanTenant, kCleanToken},
        std::pair{kFaultTenant, kFaultToken}}) {
    net::TenantConfig tenant;
    tenant.name = name;
    tenant.token = token;
    tenant.max_bytes = 2ull << 30;
    tenant.max_records = 4096;
    server_config.tenants.push_back(tenant);
  }
  server_config.sink_mode = net::SinkMode::kService;
  // The backpressure stage: a short queue and a per-batch throttle make
  // the event thread suspend reads instead of buffering.
  server_config.ingest_queue_batches = 2;
  server_config.ingest_delay_us = 200;
  net::Server server(std::move(server_config));
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "fig23: cannot start server: %s\n", error.c_str());
    std::filesystem::remove_all(root);
    return 1;
  }

  // Phase 1: clean load. Every client must seal and verify.
  const net::LoadReport clean =
      run_phase(server, root, kCleanToken, kCleanTenant, clients,
                /*seed=*/1001, net::FaultPlan{});
  print_report("clean", clean);
  const net::Server::Stats clean_stats = server.stats();
  std::printf("         backpressure suspensions: %llu\n",
              static_cast<unsigned long long>(
                  clean_stats.backpressure_suspensions));

  // Phase 2: the fault plan. 30% of clients misbehave; the rest must be
  // untouched by their neighbours' abuse.
  net::FaultPlan faults;
  faults.slow_pct = 6;
  faults.disconnect_pct = 6;
  faults.duplicate_pct = 6;
  faults.garbage_pct = 6;
  faults.oversized_pct = 6;
  const net::LoadReport faulted =
      run_phase(server, root, kFaultToken, kFaultTenant, clients,
                /*seed=*/2002, faults);
  print_report("faulted", faulted);
  const net::Server::Stats stats = server.stats();

  obs::JsonWriter w;
  w.begin_object();
  w.field("bench", "fig23_service_load");
  w.field("clients", static_cast<std::uint64_t>(clients));
  w.key("clean");
  emit_phase(w, clean);
  w.key("faulted");
  emit_phase(w, faulted);
  w.key("server").begin_object();
  w.field("connections_accepted", stats.connections_accepted);
  w.field("sessions_sealed", stats.sessions_sealed);
  w.field("sessions_aborted", stats.sessions_aborted);
  w.field("frames_ingested", stats.frames_ingested);
  w.field("bytes_ingested", stats.bytes_ingested);
  w.field("errors_sent", stats.errors_sent);
  w.field("backpressure_suspensions", stats.backpressure_suspensions);
  w.end_object();
  w.end_object();
  const bool wrote =
      bench::write_bench_json("BENCH_service.json", std::move(w).take());

  server.stop();
  std::filesystem::remove_all(root);

  const bool ok = wrote && clean.ok() && faulted.ok() &&
                  clean.sealed == clients &&
                  clean_stats.backpressure_suspensions > 0;
  std::printf("--------------------------------------------------------------\n");
  std::printf("fig23: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
