// Figure 24 (this repo): crash-recovery cost of the record service — the
// DESIGN.md §14 kill sweep as a measured bench instead of a pass/fail
// test.
//
// For each kill point (mid-batch tear, journaled-but-unacked batch,
// pre-seal, post-seal, SIGTERM-under-load) the chaos harness forks a real
// cdc_served, arms the crash hook, runs CDC_CHAOS_CLIENTS resuming
// uploaders against it, restarts the daemon after the death, and
// byte-verifies every sealed record against a local rebuild from the
// client seed. Reported per point:
//   * restart_ms  — daemon death to the replacement's LISTENING line;
//   * reconnects / resent batches / resent raw bytes — the retry tax the
//     clients paid (raw bytes follow exactly from the deterministic
//     batch shape);
//   * wall_ms     — the whole point including both daemon lives.
//
// Results land in BENCH_recovery.json. The CI gate
// (bench/check_recovery_baseline.py) is strict on correctness — every
// point passed, every record sealed and byte-verified, every kill point
// actually exercised the reconnect path — and generous on the timing
// ceilings, which exist to catch pathological recovery stalls, not to
// benchmark CI hardware.
//
// The path to cdc_served is injected by CMake as CDC_SERVED_BIN.
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "common.h"
#include "net/chaos.h"

int main() {
  using namespace cdc;
  const auto clients = static_cast<std::size_t>(
      bench::env_int("CDC_CHAOS_CLIENTS", 4));
  std::printf("==============================================================\n");
  std::printf("Figure 24 — service crash recovery: %zu resuming clients "
              "per kill point\n", clients);
  std::printf("--------------------------------------------------------------\n");

  const std::filesystem::path root =
      std::filesystem::temp_directory_path() /
      ("cdc_fig24." + std::to_string(::getpid()));
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);

  net::ChaosConfig config;
  config.binary = CDC_SERVED_BIN;
  config.root_dir = root.string();
  config.clients = clients;
  config.seed = static_cast<std::uint64_t>(bench::env_int("CDC_SEED", 1));
  config.shape.batches = 8;
  config.shape.frames_per_batch = 8;
  config.shape.payload_bytes = 2048;
  config.shape.streams = 4;
  config.crash_batch = static_cast<std::uint32_t>(clients) * 2;
  config.level = compress::DeflateLevel::kFast;
  // Raw payload bytes per re-sent batch: the synth shape is exact.
  const std::uint64_t batch_raw_bytes =
      static_cast<std::uint64_t>(config.shape.frames_per_batch) *
      config.shape.payload_bytes;

  const net::ChaosReport report = net::run_chaos(config);

  obs::JsonWriter w;
  w.begin_object();
  w.field("bench", "fig24_recovery");
  w.field("clients", static_cast<std::uint64_t>(clients));
  w.field("batches_per_client",
          static_cast<std::uint64_t>(config.shape.batches));
  w.field("batch_raw_bytes", batch_raw_bytes);
  w.key("points").begin_array();
  std::printf("%-20s %6s %6s %10s %10s %12s %10s %10s\n", "kill point",
              "sealed", "verif", "reconnects", "resent", "resent MB",
              "restart ms", "wall ms");
  for (const net::ChaosPointResult& p : report.points) {
    const std::uint64_t resent_bytes = p.batches_resent * batch_raw_bytes;
    std::printf("%-20s %6zu %6zu %10llu %10llu %12.2f %10.1f %10.1f%s\n",
                p.name.c_str(), p.sealed, p.verified,
                static_cast<unsigned long long>(p.reconnects),
                static_cast<unsigned long long>(p.batches_resent),
                static_cast<double>(resent_bytes) / (1 << 20), p.restart_ms,
                p.wall_ms, p.passed ? "" : "  FAILED");
    for (const std::string& e : p.errors)
      std::printf("    error: %s\n", e.c_str());
    w.begin_object();
    w.field("name", p.name.c_str());
    w.field("passed", p.passed);
    w.field("sealed", static_cast<std::uint64_t>(p.sealed));
    w.field("verified", static_cast<std::uint64_t>(p.verified));
    w.field("reconnects", p.reconnects);
    w.field("resent_batches", p.batches_resent);
    w.field("resent_raw_bytes", resent_bytes);
    w.field("restart_ms", p.restart_ms);
    w.field("wall_ms", p.wall_ms);
    w.field("errors", static_cast<std::uint64_t>(p.errors.size()));
    w.end_object();
  }
  w.end_array();
  w.field("all_passed", report.ok());
  w.end_object();
  const bool wrote =
      bench::write_bench_json("BENCH_recovery.json", std::move(w).take());

  std::filesystem::remove_all(root);
  const bool ok = wrote && report.ok();
  std::printf("--------------------------------------------------------------\n");
  std::printf("fig24: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
