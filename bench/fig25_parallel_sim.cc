// Figure 25 (this repo's extension): parallel-simulator scaling.
//
// The paper's evaluation needs simulated runs at thousands of MPI
// processes (3,072-rank MCB, 6,114-rank Jacobi); the sequential
// discrete-event loop makes those minutes-long. This bench measures the
// conservative time-window executor (DESIGN.md §15) on the common MCB
// workload: scheduler throughput (events/sec) at 1 → 8 worker threads for
// a 3,072-rank run, plus one large 12,288-rank completion run.
//
// Determinism is part of the measurement: every worker count must produce
// the same run, so each row carries an order digest (order-sensitive
// global tally bits + the full counter set) and the CI gate
// (bench/check_parallel_baseline.py) fails on any cross-worker-count
// difference — strictly, regardless of host. Speedup expectations are
// gated only where workers <= host_cores: wall-clock scaling on an
// oversubscribed host measures the scheduler, not the executor.
//
// Knobs: CDC_RANKS (default 3,072), CDC_LARGE_RANKS (default 12,288;
// 0 skips the large run), CDC_PARTICLES (per rank, default 2), CDC_SEED.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "apps/mcb.h"
#include "common.h"
#include "minimpi/simulator.h"
#include "obs/json.h"

namespace {

using namespace cdc;

std::uint64_t fnv_mix(std::uint64_t digest, std::uint64_t value) noexcept {
  for (int i = 0; i < 8; ++i) {
    digest ^= (value >> (8 * i)) & 0xff;
    digest *= 0x100000001b3ull;
  }
  return digest;
}

std::uint64_t double_bits(double value) noexcept {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof value);
  __builtin_memcpy(&bits, &value, sizeof bits);
  return bits;
}

struct Row {
  int workers = 0;  ///< 0 = the sequential engine (reference row)
  double seconds = 0.0;
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  double tally = 0.0;
  double end_time = 0.0;
  std::uint64_t digest = 0;
};

/// One measured run. The digest folds in everything the executor is
/// required to keep invariant across worker counts: the order-sensitive
/// tally, the virtual end time, and the exact counter set.
Row run_once(int ranks, int workers, const apps::McbConfig& mcb,
             std::uint64_t seed) {
  minimpi::Simulator::Config config = bench::sim_config(ranks, seed);
  config.workers = workers;
  minimpi::Simulator sim(config);
  const auto start = bench::Clock::now();
  const apps::McbResult result = apps::run_mcb(sim, mcb);
  Row row;
  row.workers = workers;
  row.seconds = bench::seconds_since(start, "bench.parallel_sim_ns");
  const auto& stats = sim.stats();
  row.events = stats.scheduler_events;
  row.messages = stats.messages_sent;
  row.tally = result.global_tally;
  row.end_time = stats.end_time;
  std::uint64_t d = 0xcbf29ce484222325ull;
  d = fnv_mix(d, double_bits(result.global_tally));
  d = fnv_mix(d, double_bits(stats.end_time));
  d = fnv_mix(d, stats.scheduler_events);
  d = fnv_mix(d, stats.messages_sent);
  d = fnv_mix(d, stats.receive_events_delivered);
  d = fnv_mix(d, stats.mf_calls);
  d = fnv_mix(d, stats.unmatched_tests);
  d = fnv_mix(d, stats.max_queue_depth);
  row.digest = d;
  return row;
}

apps::McbConfig bench_mcb(int ranks) {
  const auto [gx, gy] = bench::grid_for(ranks);
  apps::McbConfig config;
  config.grid_x = gx;
  config.grid_y = gy;
  config.particles_per_rank = bench::env_int("CDC_PARTICLES", 2);
  config.segments_per_particle = 4;
  config.tracks_per_poll = 8;
  return config;
}

}  // namespace

int main() {
  const int ranks = bench::env_int("CDC_RANKS", 3072);
  const int large_ranks = bench::env_int("CDC_LARGE_RANKS", 12288);
  const std::uint64_t seed = bench::default_seed();
  const unsigned host_cores = std::thread::hardware_concurrency();
  bench::print_machine_banner(
      "Figure 25 — parallel simulator scaling (conservative time-windows)",
      ranks);
  std::printf("host cores: %u (speedup rows with workers beyond that "
              "measure\noversubscription, not the executor)\n\n",
              host_cores);

  const apps::McbConfig mcb = bench_mcb(ranks);
  const Row sequential = run_once(ranks, /*workers=*/0, mcb, seed);
  std::printf("%-12s %10s %12s %14s %10s\n", "engine", "workers",
              "seconds", "events/sec", "speedup");
  std::printf("%-12s %10d %12.2f %14.0f %10s\n", "sequential", 0,
              sequential.seconds,
              static_cast<double>(sequential.events) / sequential.seconds,
              "-");

  constexpr int kWorkerCounts[] = {1, 2, 4, 8};
  std::vector<Row> scaling;
  for (const int workers : kWorkerCounts) {
    scaling.push_back(run_once(ranks, workers, mcb, seed));
    const Row& row = scaling.back();
    std::printf("%-12s %10d %12.2f %14.0f %9.2fx\n", "parallel",
                row.workers, row.seconds,
                static_cast<double>(row.events) / row.seconds,
                scaling.front().seconds / row.seconds);
  }

  bool digests_match = true;
  for (const Row& row : scaling)
    digests_match &= row.digest == scaling.front().digest;
  std::printf("\norder digests across worker counts: %s\n",
              digests_match ? "IDENTICAL (worker-count-invariant)"
                            : "DIVERGED — determinism bug");

  // The large completion run: the executor must handle 12,288 ranks (4x
  // the paper's largest MCB) without the per-rank shards, outboxes or the
  // ready-list machinery becoming the bottleneck.
  Row large;
  if (large_ranks > 0) {
    const apps::McbConfig large_mcb = bench_mcb(large_ranks);
    const int large_workers =
        host_cores >= 8 ? 8 : static_cast<int>(host_cores > 0 ? host_cores
                                                              : 1);
    large = run_once(large_ranks, large_workers, large_mcb, seed);
    std::printf("\nlarge run: %d ranks, %d workers — %.2fs, %llu events "
                "(%.0f events/sec)\n",
                large_ranks, large.workers, large.seconds,
                static_cast<unsigned long long>(large.events),
                static_cast<double>(large.events) / large.seconds);
  }

  // --- machine-readable output ------------------------------------------
  obs::JsonWriter w;
  w.begin_object();
  w.field("bench", "fig25_parallel_sim");
  w.field("host_cores", static_cast<std::uint64_t>(host_cores));
  w.field("ranks", static_cast<std::uint64_t>(ranks));
  w.field("seed", seed);
  w.field("particles_per_rank",
          static_cast<std::uint64_t>(mcb.particles_per_rank));
  w.key("sequential").begin_object();
  w.field("seconds", sequential.seconds);
  w.field("events", sequential.events);
  w.field("order_digest", sequential.digest);
  w.end_object();
  w.key("scaling").begin_array();
  for (const Row& row : scaling) {
    w.begin_object();
    w.field("workers", static_cast<std::uint64_t>(row.workers));
    w.field("seconds", row.seconds);
    w.field("events", row.events);
    w.field("events_per_sec",
            static_cast<double>(row.events) / row.seconds);
    w.field("speedup_vs_1", scaling.front().seconds / row.seconds);
    w.field("order_digest", row.digest);
    w.end_object();
  }
  w.end_array();
  if (large_ranks > 0) {
    w.key("large_run").begin_object();
    w.field("ranks", static_cast<std::uint64_t>(large_ranks));
    w.field("workers", static_cast<std::uint64_t>(large.workers));
    w.field("seconds", large.seconds);
    w.field("events", large.events);
    w.field("order_digest", large.digest);
    w.field("completed", true);
    w.end_object();
  }
  w.end_object();
  if (bench::write_bench_json("BENCH_parallel.json", std::move(w).take()))
    std::printf("\nwrote BENCH_parallel.json\n");

  return digests_match ? 0 : 1;
}
