// Microbenchmarks of the CDC building blocks (google-benchmark).
//
// Covers the §6.2 queue-rate story (the CDC thread drains events far
// faster than the application produces them: 331K vs 258 events/s in the
// paper), the §4.1 fast edit-distance algorithm, LP encoding, the DEFLATE
// entropy stage, and the end-to-end chunk encode path.
#include <benchmark/benchmark.h>

#include <numeric>
#include <queue>
#include <string_view>
#include <vector>

#include "compress/crc32.h"
#include "compress/deflate.h"
#include "compress/lz77.h"
#include "minimpi/event_heap.h"
#include "record/baseline.h"
#include "store/compression_service.h"
#include "store/mpmc_queue.h"
#include "store/sharded_store.h"
#include "record/chunk.h"
#include "record/edit_distance.h"
#include "record/fast_permutation.h"
#include "record/lp.h"
#include "runtime/spsc_queue.h"
#include "runtime/storage.h"
#include "support/rng.h"
#include "tool/async_recorder.h"
#include "tool/stream_recorder.h"

namespace {

using namespace cdc;

// --- inputs ---------------------------------------------------------------

/// A permutation of {0..n-1} with roughly `percent` of elements moved by
/// local swaps — the near-reference-order streams of Figure 14.
std::vector<std::uint32_t> near_sorted_permutation(std::size_t n,
                                                   int percent) {
  std::vector<std::uint32_t> b(n);
  std::iota(b.begin(), b.end(), 0u);
  support::Xoshiro256 rng(42);
  const std::size_t swaps = n * static_cast<std::size_t>(percent) / 200;
  for (std::size_t i = 0; i < swaps; ++i) {
    const std::size_t j = rng.bounded(n - 1);
    std::swap(b[j], b[j + 1]);
  }
  return b;
}

std::vector<record::ReceiveEvent> mcb_like_events(std::size_t n) {
  support::Xoshiro256 rng(9);
  std::vector<record::ReceiveEvent> events;
  std::vector<std::uint64_t> clocks(4, 1);
  events.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.uniform() < 0.3) events.push_back({false, false, -1, 0});
    const auto s = static_cast<std::int32_t>(rng.bounded(4));
    clocks[static_cast<std::size_t>(s)] += 1 + rng.bounded(4);
    events.push_back({true, false, s, clocks[static_cast<std::size_t>(s)]});
  }
  return events;
}

// --- §4.1 edit distance -----------------------------------------------------

void BM_PermutationEncode(benchmark::State& state) {
  const auto b = near_sorted_permutation(
      static_cast<std::size_t>(state.range(0)),
      static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(record::encode_permutation(b));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["moved_pct"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_PermutationEncode)
    ->Args({4096, 0})
    ->Args({4096, 10})
    ->Args({4096, 30})
    ->Args({4096, 60})
    ->Args({65536, 30});

void BM_FastPermutationEncode(benchmark::State& state) {
  const auto b = near_sorted_permutation(
      static_cast<std::size_t>(state.range(0)),
      static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(record::fast_encode_permutation(b));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["moved_pct"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_FastPermutationEncode)
    ->Args({4096, 30})
    ->Args({65536, 30})
    ->Args({1 << 20, 30});

void BM_FastPermutationDecode(benchmark::State& state) {
  const auto b = near_sorted_permutation(
      static_cast<std::size_t>(state.range(0)), 30);
  const auto ops = record::fast_encode_permutation(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(record::fast_apply_moves(b.size(), ops));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FastPermutationDecode)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_PermutationDecode(benchmark::State& state) {
  const auto b = near_sorted_permutation(
      static_cast<std::size_t>(state.range(0)), 30);
  const auto ops = record::encode_permutation(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(record::apply_moves(b.size(), ops));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PermutationDecode)->Arg(4096)->Arg(65536);

void BM_BandedEditDistance(benchmark::State& state) {
  const auto b = near_sorted_permutation(
      static_cast<std::size_t>(state.range(0)), 30);
  for (auto _ : state) {
    benchmark::DoNotOptimize(record::banded_edit_distance(b));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BandedEditDistance)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_DpEditDistance(benchmark::State& state) {
  // The O(N^2) reference the paper improves on — note the gap.
  const auto b = near_sorted_permutation(
      static_cast<std::size_t>(state.range(0)), 30);
  for (auto _ : state) {
    benchmark::DoNotOptimize(record::dp_edit_distance(b));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DpEditDistance)->Arg(512)->Arg(4096);

// --- §3.4 LP encoding -------------------------------------------------------

void BM_LpEncodeDecode(benchmark::State& state) {
  std::vector<std::int64_t> xs(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < xs.size(); ++i)
    xs[i] = static_cast<std::int64_t>(3 * i + (i % 7 == 0));
  for (auto _ : state) {
    auto encoded = record::lp_encode(xs);
    benchmark::DoNotOptimize(record::lp_decode(encoded));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LpEncodeDecode)->Arg(4096)->Arg(65536);

// --- entropy stage ----------------------------------------------------------

/// Record-like corpus shared by the codec benchmarks: near-zero
/// varint-heavy bytes, like serialized CDC chunks.
std::vector<std::uint8_t> record_like_bytes(std::size_t n) {
  support::Xoshiro256 rng(3);
  std::vector<std::uint8_t> input(n);
  for (auto& byte : input)
    byte = rng.uniform() < 0.85 ? 0 : static_cast<std::uint8_t>(
                                          rng.bounded(6));
  return input;
}

void BM_Crc32(benchmark::State& state) {
  // The sliced (16 x 256-table) CRC on the gzip trailer path. Seed
  // baseline (bytewise, this machine): ~363 MB/s.
  const auto input =
      record_like_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress::crc32(input));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(1 << 14)->Arg(1 << 20);

void BM_Crc32Bytewise(benchmark::State& state) {
  // The seed's one-table bytewise loop, kept as the comparison point.
  const auto input =
      record_like_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compress::crc32_update_bytewise(0, input));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32Bytewise)->Arg(1 << 14)->Arg(1 << 20);

void BM_Lz77Tokenize(benchmark::State& state) {
  // The match-finder alone (no entropy stage), per level preset, with a
  // recycled workspace and token buffer as on the deflate hot path.
  const auto level = static_cast<compress::DeflateLevel>(state.range(1));
  const auto input =
      record_like_bytes(static_cast<std::size_t>(state.range(0)));
  const compress::Lz77Params params = compress::lz77_params_for(level);
  compress::Lz77Workspace workspace;
  std::vector<compress::Lz77Token> tokens;
  for (auto _ : state) {
    compress::lz77_tokenize_into(workspace, input, params, tokens);
    benchmark::DoNotOptimize(tokens.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  state.SetLabel(std::string(compress::to_string(level)));
}
BENCHMARK(BM_Lz77Tokenize)
    ->Args({1 << 18, static_cast<int>(compress::DeflateLevel::kFast)})
    ->Args({1 << 18, static_cast<int>(compress::DeflateLevel::kDefault)})
    ->Args({1 << 18, static_cast<int>(compress::DeflateLevel::kBest)});

void BM_DeflateLevels(benchmark::State& state) {
  // Full DEFLATE per level on the record-like corpus. Seed baselines
  // (this machine, single level == today's default): fast 30.8 MB/s
  // ratio 5.59, default 7.8 MB/s ratio 6.56, best 1.5 MB/s ratio 6.92.
  const auto level = static_cast<compress::DeflateLevel>(state.range(1));
  const auto input =
      record_like_bytes(static_cast<std::size_t>(state.range(0)));
  std::size_t compressed = 0;
  for (auto _ : state) {
    const auto out = compress::deflate_compress(input, level);
    compressed = out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  state.counters["ratio"] =
      static_cast<double>(state.range(0)) / static_cast<double>(compressed);
  state.SetLabel(std::string(compress::to_string(level)));
}
BENCHMARK(BM_DeflateLevels)
    ->Args({1 << 18, static_cast<int>(compress::DeflateLevel::kFast)})
    ->Args({1 << 18, static_cast<int>(compress::DeflateLevel::kDefault)})
    ->Args({1 << 18, static_cast<int>(compress::DeflateLevel::kBest)});

void BM_GzipLevels(benchmark::State& state) {
  // gzip wrapper (DEFLATE + CRC32 + trailer) per level, with buffer reuse.
  const auto level = static_cast<compress::DeflateLevel>(state.range(1));
  const auto input =
      record_like_bytes(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint8_t> reuse;
  std::size_t compressed = 0;
  for (auto _ : state) {
    auto out = compress::gzip_compress(input, level, std::move(reuse));
    compressed = out.size();
    benchmark::DoNotOptimize(out.data());
    reuse = std::move(out);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  state.counters["ratio"] =
      static_cast<double>(state.range(0)) / static_cast<double>(compressed);
  state.SetLabel(std::string(compress::to_string(level)));
}
BENCHMARK(BM_GzipLevels)
    ->Args({1 << 18, static_cast<int>(compress::DeflateLevel::kFast)})
    ->Args({1 << 18, static_cast<int>(compress::DeflateLevel::kDefault)})
    ->Args({1 << 18, static_cast<int>(compress::DeflateLevel::kBest)});

void BM_DeflateRecordLike(benchmark::State& state) {
  // Near-zero varint-heavy bytes, like serialized CDC chunks.
  support::Xoshiro256 rng(3);
  std::vector<std::uint8_t> input(
      static_cast<std::size_t>(state.range(0)));
  for (auto& byte : input)
    byte = rng.uniform() < 0.85 ? 0 : static_cast<std::uint8_t>(
                                          rng.bounded(6));
  std::size_t compressed = 0;
  for (auto _ : state) {
    const auto out = compress::deflate_compress(input);
    compressed = out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  state.counters["ratio"] =
      static_cast<double>(state.range(0)) / static_cast<double>(compressed);
}
BENCHMARK(BM_DeflateRecordLike)->Arg(1 << 14)->Arg(1 << 18);

void BM_Inflate(benchmark::State& state) {
  support::Xoshiro256 rng(4);
  std::vector<std::uint8_t> input(
      static_cast<std::size_t>(state.range(0)));
  for (auto& byte : input)
    byte = static_cast<std::uint8_t>(rng.bounded(4));
  const auto compressed = compress::deflate_compress(input);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress::deflate_decompress(compressed));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Inflate)->Arg(1 << 14)->Arg(1 << 18);

// --- record pipeline --------------------------------------------------------

template <tool::RecordCodec Codec>
void BM_RecordPipeline(benchmark::State& state) {
  const auto events =
      mcb_like_events(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    runtime::CountingStore store;
    tool::ToolOptions options;
    options.codec = Codec;
    tool::StreamRecorder recorder({0, 0}, options);
    for (const auto& e : events) {
      if (e.flag) {
        recorder.on_delivered(e);
      } else {
        recorder.on_unmatched_test();
      }
      recorder.flush_if_due(store);
    }
    recorder.finalize(store);
    benchmark::DoNotOptimize(store.total_bytes());
  }
  // events/sec — compare against the paper's 331K events/s recording rate.
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_RecordPipeline<tool::RecordCodec::kBaselineRaw>)->Arg(100000);
BENCHMARK(BM_RecordPipeline<tool::RecordCodec::kBaselineGzip>)->Arg(100000);
BENCHMARK(BM_RecordPipeline<tool::RecordCodec::kCdcRe>)->Arg(100000);
BENCHMARK(BM_RecordPipeline<tool::RecordCodec::kCdcFull>)->Arg(100000);

void BM_BaselineSerialize(benchmark::State& state) {
  const auto rows = record::to_rows(
      mcb_like_events(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(record::baseline_serialize(rows));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rows.size()));
}
BENCHMARK(BM_BaselineSerialize)->Arg(100000);

// --- §4.2 queue rates ---------------------------------------------------------

void BM_SpscQueueThroughput(benchmark::State& state) {
  runtime::SpscQueue<record::ReceiveEvent> queue(1 << 12);
  const record::ReceiveEvent event{true, false, 1, 42};
  record::ReceiveEvent out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(queue.try_push(event));
    benchmark::DoNotOptimize(queue.try_pop(out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscQueueThroughput);

// --- src/minimpi/ event queue -------------------------------------------------

/// The key shape of the simulator's events: (time, seq) with a strict
/// total order, pushed and popped in the discrete-event hot loop.
struct QueueEvent {
  double time = 0.0;
  std::uint64_t seq = 0;
};
struct QueueEventBefore {
  bool operator()(const QueueEvent& a, const QueueEvent& b) const noexcept {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  }
};

/// Steady-state churn at a backlog of `hold` pending events: pop the
/// minimum, schedule a successor — the simulator's per-event cost.
/// EventHeap is the reserve-ahead binary heap the simulator uses
/// (minimpi/event_heap.h); BM_EventQueuePriorityQueue is the
/// std::priority_queue it replaced.
void BM_EventQueue(benchmark::State& state) {
  const auto hold = static_cast<std::size_t>(state.range(0));
  minimpi::EventHeap<QueueEvent, QueueEventBefore> heap;
  heap.reserve(hold);
  support::Xoshiro256 rng(7);
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < hold; ++i) heap.push({rng.uniform(), seq++});
  for (auto _ : state) {
    QueueEvent ev = heap.pop();
    ev.time += rng.uniform() * 0.01;
    ev.seq = seq++;
    heap.push(ev);
    benchmark::DoNotOptimize(heap.top());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueue)->Arg(64)->Arg(4096)->Arg(65536);

void BM_EventQueuePriorityQueue(benchmark::State& state) {
  const auto hold = static_cast<std::size_t>(state.range(0));
  // Min-queue: std::priority_queue pops the Compare-largest element.
  const auto after = [](const QueueEvent& a, const QueueEvent& b) {
    return QueueEventBefore{}(b, a);
  };
  std::priority_queue<QueueEvent, std::vector<QueueEvent>, decltype(after)>
      queue(after);
  support::Xoshiro256 rng(7);
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < hold; ++i) queue.push({rng.uniform(), seq++});
  for (auto _ : state) {
    QueueEvent ev = queue.top();
    queue.pop();
    ev.time += rng.uniform() * 0.01;
    ev.seq = seq++;
    queue.push(ev);
    benchmark::DoNotOptimize(queue.top());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueuePriorityQueue)->Arg(64)->Arg(4096)->Arg(65536);

/// One simulated run's fill-then-drain, queue reused across runs: the
/// reserve-ahead heap keeps its backing vector (clear() holds capacity),
/// so iterations after the first are allocation-free.
void BM_EventQueueFillDrain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  minimpi::EventHeap<QueueEvent, QueueEventBefore> heap;
  heap.reserve(n);
  support::Xoshiro256 rng(11);
  for (auto _ : state) {
    heap.clear();
    for (std::size_t i = 0; i < n; ++i) heap.push({rng.uniform(), i});
    double last = 0.0;
    while (!heap.empty()) last = heap.pop().time;
    benchmark::DoNotOptimize(last);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueFillDrain)->Arg(4096)->Arg(65536);

// --- §4.2 record queue rates --------------------------------------------------

void BM_AsyncRecorderDrain(benchmark::State& state) {
  // End-to-end: application thread enqueues, the dedicated CDC thread
  // encodes and "writes". items/sec here is the sustainable recording
  // rate — the paper measured 331K events/s/process against an
  // application producing only 258 events/s/process.
  const auto events = mcb_like_events(100000);
  for (auto _ : state) {
    runtime::CountingStore store;
    tool::AsyncRecorder::Config config;
    config.key = {0, 1};
    tool::AsyncRecorder recorder(config, &store);
    for (const auto& e : events) recorder.enqueue(e);
    recorder.finalize();
    benchmark::DoNotOptimize(store.total_bytes());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_AsyncRecorderDrain)->Unit(benchmark::kMillisecond);

// --- src/store/ pipeline ------------------------------------------------------

void BM_MpmcQueueThroughput(benchmark::State& state) {
  store::BoundedMpmcQueue<int> queue(1 << 10);
  int out = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(queue.push(1));
    benchmark::DoNotOptimize(queue.pop(out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MpmcQueueThroughput);

void BM_ShardedStoreAppend(benchmark::State& state) {
  const std::vector<std::uint8_t> chunk(256, 7);
  store::ShardedStore sharded;
  std::uint32_t callsite = 0;
  for (auto _ : state) {
    sharded.append({0, callsite++ % 64}, chunk);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(chunk.size()));
}
BENCHMARK(BM_ShardedStoreAppend);

void BM_CompressionService(benchmark::State& state) {
  // DEFLATE of sealed gzip-baseline chunks through the worker pool,
  // in-order commit included; compare workers=1/2/4 against the
  // single-thread BM_DeflateRecordLike cost above.
  const auto rows = record::to_rows(mcb_like_events(1 << 14));
  const auto payload = record::baseline_serialize(rows);
  constexpr int kJobs = 64;
  for (auto _ : state) {
    runtime::CountingStore counting;
    store::CompressionService::Config config;
    config.workers = static_cast<std::size_t>(state.range(0));
    {
      store::CompressionService service(&counting, config);
      for (int i = 0; i < kJobs; ++i)
        service.submit({0, 1}, payload.size(), [&payload] {
          return compress::deflate_compress(payload);
        });
      service.drain();
    }
    benchmark::DoNotOptimize(counting.total_bytes());
  }
  state.SetBytesProcessed(state.iterations() * kJobs *
                          static_cast<std::int64_t>(payload.size()));
  state.counters["workers"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CompressionService)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- chunk serialization ------------------------------------------------------

void BM_ChunkSerializeParse(benchmark::State& state) {
  const auto events =
      mcb_like_events(static_cast<std::size_t>(state.range(0)));
  const auto tables = record::build_tables(events);
  const auto chunk = record::encode_chunk(tables);
  for (auto _ : state) {
    support::ByteWriter writer;
    record::write_chunk(writer, chunk);
    support::ByteReader reader(writer.view());
    benchmark::DoNotOptimize(record::read_chunk(reader));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChunkSerializeParse)->Arg(4096);

}  // namespace

// Like BENCHMARK_MAIN(), but defaults to a machine-readable JSON dump next
// to BENCH_store.json when the caller did not pick an output file.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    has_out |= std::string_view(argv[i]).starts_with("--benchmark_out=");
  std::string default_out = "--benchmark_out=BENCH_micro.json";
  std::string default_fmt = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(default_out.data());
    args.push_back(default_fmt.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
