# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/compress_test[1]_include.cmake")
include("/root/repo/build/tests/zlib_interop_test[1]_include.cmake")
include("/root/repo/build/tests/clock_test[1]_include.cmake")
include("/root/repo/build/tests/record_test[1]_include.cmake")
include("/root/repo/build/tests/minimpi_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/tool_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
