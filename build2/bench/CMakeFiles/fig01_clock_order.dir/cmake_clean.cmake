file(REMOVE_RECURSE
  "CMakeFiles/fig01_clock_order.dir/fig01_clock_order.cc.o"
  "CMakeFiles/fig01_clock_order.dir/fig01_clock_order.cc.o.d"
  "fig01_clock_order"
  "fig01_clock_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_clock_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
