# Empty dependencies file for fig01_clock_order.
# This may be replaced when dependencies are built.
