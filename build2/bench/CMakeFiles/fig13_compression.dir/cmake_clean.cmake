file(REMOVE_RECURSE
  "CMakeFiles/fig13_compression.dir/fig13_compression.cc.o"
  "CMakeFiles/fig13_compression.dir/fig13_compression.cc.o.d"
  "fig13_compression"
  "fig13_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
