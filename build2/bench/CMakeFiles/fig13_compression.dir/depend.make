# Empty dependencies file for fig13_compression.
# This may be replaced when dependencies are built.
