file(REMOVE_RECURSE
  "CMakeFiles/fig14_permutation.dir/fig14_permutation.cc.o"
  "CMakeFiles/fig14_permutation.dir/fig14_permutation.cc.o.d"
  "fig14_permutation"
  "fig14_permutation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_permutation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
