# Empty compiler generated dependencies file for fig14_permutation.
# This may be replaced when dependencies are built.
