file(REMOVE_RECURSE
  "CMakeFiles/fig15_growth.dir/fig15_growth.cc.o"
  "CMakeFiles/fig15_growth.dir/fig15_growth.cc.o.d"
  "fig15_growth"
  "fig15_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
