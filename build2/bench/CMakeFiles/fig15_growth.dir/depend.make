# Empty dependencies file for fig15_growth.
# This may be replaced when dependencies are built.
