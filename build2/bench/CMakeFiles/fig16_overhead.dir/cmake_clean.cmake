file(REMOVE_RECURSE
  "CMakeFiles/fig16_overhead.dir/fig16_overhead.cc.o"
  "CMakeFiles/fig16_overhead.dir/fig16_overhead.cc.o.d"
  "fig16_overhead"
  "fig16_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
