# Empty dependencies file for fig16_overhead.
# This may be replaced when dependencies are built.
