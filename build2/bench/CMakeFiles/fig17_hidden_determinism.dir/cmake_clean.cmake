file(REMOVE_RECURSE
  "CMakeFiles/fig17_hidden_determinism.dir/fig17_hidden_determinism.cc.o"
  "CMakeFiles/fig17_hidden_determinism.dir/fig17_hidden_determinism.cc.o.d"
  "fig17_hidden_determinism"
  "fig17_hidden_determinism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_hidden_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
