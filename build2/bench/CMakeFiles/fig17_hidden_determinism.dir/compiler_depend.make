# Empty compiler generated dependencies file for fig17_hidden_determinism.
# This may be replaced when dependencies are built.
