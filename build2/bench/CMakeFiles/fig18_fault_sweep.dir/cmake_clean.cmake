file(REMOVE_RECURSE
  "CMakeFiles/fig18_fault_sweep.dir/fig18_fault_sweep.cc.o"
  "CMakeFiles/fig18_fault_sweep.dir/fig18_fault_sweep.cc.o.d"
  "fig18_fault_sweep"
  "fig18_fault_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_fault_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
