# Empty dependencies file for fig18_fault_sweep.
# This may be replaced when dependencies are built.
