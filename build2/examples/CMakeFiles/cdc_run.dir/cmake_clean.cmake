file(REMOVE_RECURSE
  "CMakeFiles/cdc_run.dir/cdc_run.cpp.o"
  "CMakeFiles/cdc_run.dir/cdc_run.cpp.o.d"
  "cdc_run"
  "cdc_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdc_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
