# Empty dependencies file for cdc_run.
# This may be replaced when dependencies are built.
