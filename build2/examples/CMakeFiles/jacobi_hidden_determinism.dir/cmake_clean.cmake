file(REMOVE_RECURSE
  "CMakeFiles/jacobi_hidden_determinism.dir/jacobi_hidden_determinism.cpp.o"
  "CMakeFiles/jacobi_hidden_determinism.dir/jacobi_hidden_determinism.cpp.o.d"
  "jacobi_hidden_determinism"
  "jacobi_hidden_determinism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jacobi_hidden_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
