# Empty dependencies file for jacobi_hidden_determinism.
# This may be replaced when dependencies are built.
