file(REMOVE_RECURSE
  "CMakeFiles/mcb_debugging_session.dir/mcb_debugging_session.cpp.o"
  "CMakeFiles/mcb_debugging_session.dir/mcb_debugging_session.cpp.o.d"
  "mcb_debugging_session"
  "mcb_debugging_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcb_debugging_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
