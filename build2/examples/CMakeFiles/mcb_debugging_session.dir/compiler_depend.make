# Empty compiler generated dependencies file for mcb_debugging_session.
# This may be replaced when dependencies are built.
