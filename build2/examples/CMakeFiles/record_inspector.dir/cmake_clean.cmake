file(REMOVE_RECURSE
  "CMakeFiles/record_inspector.dir/record_inspector.cpp.o"
  "CMakeFiles/record_inspector.dir/record_inspector.cpp.o.d"
  "record_inspector"
  "record_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/record_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
