# Empty dependencies file for record_inspector.
# This may be replaced when dependencies are built.
