
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/jacobi.cc" "src/apps/CMakeFiles/cdc_apps.dir/jacobi.cc.o" "gcc" "src/apps/CMakeFiles/cdc_apps.dir/jacobi.cc.o.d"
  "/root/repo/src/apps/mcb.cc" "src/apps/CMakeFiles/cdc_apps.dir/mcb.cc.o" "gcc" "src/apps/CMakeFiles/cdc_apps.dir/mcb.cc.o.d"
  "/root/repo/src/apps/taskfarm.cc" "src/apps/CMakeFiles/cdc_apps.dir/taskfarm.cc.o" "gcc" "src/apps/CMakeFiles/cdc_apps.dir/taskfarm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/minimpi/CMakeFiles/cdc_minimpi.dir/DependInfo.cmake"
  "/root/repo/build2/src/obs/CMakeFiles/cdc_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
