file(REMOVE_RECURSE
  "CMakeFiles/cdc_apps.dir/jacobi.cc.o"
  "CMakeFiles/cdc_apps.dir/jacobi.cc.o.d"
  "CMakeFiles/cdc_apps.dir/mcb.cc.o"
  "CMakeFiles/cdc_apps.dir/mcb.cc.o.d"
  "CMakeFiles/cdc_apps.dir/taskfarm.cc.o"
  "CMakeFiles/cdc_apps.dir/taskfarm.cc.o.d"
  "libcdc_apps.a"
  "libcdc_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdc_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
