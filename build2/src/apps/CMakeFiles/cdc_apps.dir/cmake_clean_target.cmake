file(REMOVE_RECURSE
  "libcdc_apps.a"
)
