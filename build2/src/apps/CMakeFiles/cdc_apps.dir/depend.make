# Empty dependencies file for cdc_apps.
# This may be replaced when dependencies are built.
