
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/deflate.cc" "src/compress/CMakeFiles/cdc_compress.dir/deflate.cc.o" "gcc" "src/compress/CMakeFiles/cdc_compress.dir/deflate.cc.o.d"
  "/root/repo/src/compress/huffman.cc" "src/compress/CMakeFiles/cdc_compress.dir/huffman.cc.o" "gcc" "src/compress/CMakeFiles/cdc_compress.dir/huffman.cc.o.d"
  "/root/repo/src/compress/lz77.cc" "src/compress/CMakeFiles/cdc_compress.dir/lz77.cc.o" "gcc" "src/compress/CMakeFiles/cdc_compress.dir/lz77.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
