file(REMOVE_RECURSE
  "CMakeFiles/cdc_compress.dir/deflate.cc.o"
  "CMakeFiles/cdc_compress.dir/deflate.cc.o.d"
  "CMakeFiles/cdc_compress.dir/huffman.cc.o"
  "CMakeFiles/cdc_compress.dir/huffman.cc.o.d"
  "CMakeFiles/cdc_compress.dir/lz77.cc.o"
  "CMakeFiles/cdc_compress.dir/lz77.cc.o.d"
  "libcdc_compress.a"
  "libcdc_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdc_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
