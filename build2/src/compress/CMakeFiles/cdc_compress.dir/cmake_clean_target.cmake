file(REMOVE_RECURSE
  "libcdc_compress.a"
)
