# Empty compiler generated dependencies file for cdc_compress.
# This may be replaced when dependencies are built.
