file(REMOVE_RECURSE
  "CMakeFiles/cdc_fuzz.dir/schedule_fuzzer.cc.o"
  "CMakeFiles/cdc_fuzz.dir/schedule_fuzzer.cc.o.d"
  "libcdc_fuzz.a"
  "libcdc_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdc_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
