file(REMOVE_RECURSE
  "libcdc_fuzz.a"
)
