# Empty compiler generated dependencies file for cdc_fuzz.
# This may be replaced when dependencies are built.
