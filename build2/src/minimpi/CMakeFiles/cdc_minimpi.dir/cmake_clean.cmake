file(REMOVE_RECURSE
  "CMakeFiles/cdc_minimpi.dir/simulator.cc.o"
  "CMakeFiles/cdc_minimpi.dir/simulator.cc.o.d"
  "libcdc_minimpi.a"
  "libcdc_minimpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdc_minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
