file(REMOVE_RECURSE
  "libcdc_minimpi.a"
)
