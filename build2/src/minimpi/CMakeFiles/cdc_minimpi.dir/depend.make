# Empty dependencies file for cdc_minimpi.
# This may be replaced when dependencies are built.
