file(REMOVE_RECURSE
  "CMakeFiles/cdc_obs.dir/json.cc.o"
  "CMakeFiles/cdc_obs.dir/json.cc.o.d"
  "CMakeFiles/cdc_obs.dir/metrics.cc.o"
  "CMakeFiles/cdc_obs.dir/metrics.cc.o.d"
  "CMakeFiles/cdc_obs.dir/report.cc.o"
  "CMakeFiles/cdc_obs.dir/report.cc.o.d"
  "CMakeFiles/cdc_obs.dir/trace.cc.o"
  "CMakeFiles/cdc_obs.dir/trace.cc.o.d"
  "libcdc_obs.a"
  "libcdc_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdc_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
