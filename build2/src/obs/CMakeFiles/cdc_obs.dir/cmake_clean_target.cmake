file(REMOVE_RECURSE
  "libcdc_obs.a"
)
