# Empty compiler generated dependencies file for cdc_obs.
# This may be replaced when dependencies are built.
