
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/record/baseline.cc" "src/record/CMakeFiles/cdc_record.dir/baseline.cc.o" "gcc" "src/record/CMakeFiles/cdc_record.dir/baseline.cc.o.d"
  "/root/repo/src/record/chunk.cc" "src/record/CMakeFiles/cdc_record.dir/chunk.cc.o" "gcc" "src/record/CMakeFiles/cdc_record.dir/chunk.cc.o.d"
  "/root/repo/src/record/edit_distance.cc" "src/record/CMakeFiles/cdc_record.dir/edit_distance.cc.o" "gcc" "src/record/CMakeFiles/cdc_record.dir/edit_distance.cc.o.d"
  "/root/repo/src/record/epoch.cc" "src/record/CMakeFiles/cdc_record.dir/epoch.cc.o" "gcc" "src/record/CMakeFiles/cdc_record.dir/epoch.cc.o.d"
  "/root/repo/src/record/fast_permutation.cc" "src/record/CMakeFiles/cdc_record.dir/fast_permutation.cc.o" "gcc" "src/record/CMakeFiles/cdc_record.dir/fast_permutation.cc.o.d"
  "/root/repo/src/record/tables.cc" "src/record/CMakeFiles/cdc_record.dir/tables.cc.o" "gcc" "src/record/CMakeFiles/cdc_record.dir/tables.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/obs/CMakeFiles/cdc_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
