file(REMOVE_RECURSE
  "CMakeFiles/cdc_record.dir/baseline.cc.o"
  "CMakeFiles/cdc_record.dir/baseline.cc.o.d"
  "CMakeFiles/cdc_record.dir/chunk.cc.o"
  "CMakeFiles/cdc_record.dir/chunk.cc.o.d"
  "CMakeFiles/cdc_record.dir/edit_distance.cc.o"
  "CMakeFiles/cdc_record.dir/edit_distance.cc.o.d"
  "CMakeFiles/cdc_record.dir/epoch.cc.o"
  "CMakeFiles/cdc_record.dir/epoch.cc.o.d"
  "CMakeFiles/cdc_record.dir/fast_permutation.cc.o"
  "CMakeFiles/cdc_record.dir/fast_permutation.cc.o.d"
  "CMakeFiles/cdc_record.dir/tables.cc.o"
  "CMakeFiles/cdc_record.dir/tables.cc.o.d"
  "libcdc_record.a"
  "libcdc_record.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdc_record.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
