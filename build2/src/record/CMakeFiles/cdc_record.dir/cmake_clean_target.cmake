file(REMOVE_RECURSE
  "libcdc_record.a"
)
