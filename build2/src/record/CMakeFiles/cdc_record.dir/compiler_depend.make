# Empty compiler generated dependencies file for cdc_record.
# This may be replaced when dependencies are built.
