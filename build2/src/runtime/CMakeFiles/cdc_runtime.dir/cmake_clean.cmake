file(REMOVE_RECURSE
  "CMakeFiles/cdc_runtime.dir/storage.cc.o"
  "CMakeFiles/cdc_runtime.dir/storage.cc.o.d"
  "libcdc_runtime.a"
  "libcdc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
