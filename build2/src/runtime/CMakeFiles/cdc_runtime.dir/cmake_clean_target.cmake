file(REMOVE_RECURSE
  "libcdc_runtime.a"
)
