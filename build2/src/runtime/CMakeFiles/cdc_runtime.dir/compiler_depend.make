# Empty compiler generated dependencies file for cdc_runtime.
# This may be replaced when dependencies are built.
