
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/compression_service.cc" "src/store/CMakeFiles/cdc_store.dir/compression_service.cc.o" "gcc" "src/store/CMakeFiles/cdc_store.dir/compression_service.cc.o.d"
  "/root/repo/src/store/container_reader.cc" "src/store/CMakeFiles/cdc_store.dir/container_reader.cc.o" "gcc" "src/store/CMakeFiles/cdc_store.dir/container_reader.cc.o.d"
  "/root/repo/src/store/container_store.cc" "src/store/CMakeFiles/cdc_store.dir/container_store.cc.o" "gcc" "src/store/CMakeFiles/cdc_store.dir/container_store.cc.o.d"
  "/root/repo/src/store/container_writer.cc" "src/store/CMakeFiles/cdc_store.dir/container_writer.cc.o" "gcc" "src/store/CMakeFiles/cdc_store.dir/container_writer.cc.o.d"
  "/root/repo/src/store/sharded_store.cc" "src/store/CMakeFiles/cdc_store.dir/sharded_store.cc.o" "gcc" "src/store/CMakeFiles/cdc_store.dir/sharded_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/runtime/CMakeFiles/cdc_runtime.dir/DependInfo.cmake"
  "/root/repo/build2/src/compress/CMakeFiles/cdc_compress.dir/DependInfo.cmake"
  "/root/repo/build2/src/obs/CMakeFiles/cdc_obs.dir/DependInfo.cmake"
  "/root/repo/build2/src/minimpi/CMakeFiles/cdc_minimpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
