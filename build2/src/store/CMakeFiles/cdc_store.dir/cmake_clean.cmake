file(REMOVE_RECURSE
  "CMakeFiles/cdc_store.dir/compression_service.cc.o"
  "CMakeFiles/cdc_store.dir/compression_service.cc.o.d"
  "CMakeFiles/cdc_store.dir/container_reader.cc.o"
  "CMakeFiles/cdc_store.dir/container_reader.cc.o.d"
  "CMakeFiles/cdc_store.dir/container_store.cc.o"
  "CMakeFiles/cdc_store.dir/container_store.cc.o.d"
  "CMakeFiles/cdc_store.dir/container_writer.cc.o"
  "CMakeFiles/cdc_store.dir/container_writer.cc.o.d"
  "CMakeFiles/cdc_store.dir/sharded_store.cc.o"
  "CMakeFiles/cdc_store.dir/sharded_store.cc.o.d"
  "libcdc_store.a"
  "libcdc_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdc_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
