file(REMOVE_RECURSE
  "libcdc_store.a"
)
