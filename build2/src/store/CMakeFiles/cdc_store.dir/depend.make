# Empty dependencies file for cdc_store.
# This may be replaced when dependencies are built.
