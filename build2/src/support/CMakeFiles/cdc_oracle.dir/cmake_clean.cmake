file(REMOVE_RECURSE
  "CMakeFiles/cdc_oracle.dir/oracle.cc.o"
  "CMakeFiles/cdc_oracle.dir/oracle.cc.o.d"
  "libcdc_oracle.a"
  "libcdc_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdc_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
