file(REMOVE_RECURSE
  "libcdc_oracle.a"
)
