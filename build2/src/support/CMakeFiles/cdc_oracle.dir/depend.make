# Empty dependencies file for cdc_oracle.
# This may be replaced when dependencies are built.
