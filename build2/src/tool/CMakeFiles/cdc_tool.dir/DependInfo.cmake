
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tool/async_recorder.cc" "src/tool/CMakeFiles/cdc_tool.dir/async_recorder.cc.o" "gcc" "src/tool/CMakeFiles/cdc_tool.dir/async_recorder.cc.o.d"
  "/root/repo/src/tool/frame.cc" "src/tool/CMakeFiles/cdc_tool.dir/frame.cc.o" "gcc" "src/tool/CMakeFiles/cdc_tool.dir/frame.cc.o.d"
  "/root/repo/src/tool/frame_sink.cc" "src/tool/CMakeFiles/cdc_tool.dir/frame_sink.cc.o" "gcc" "src/tool/CMakeFiles/cdc_tool.dir/frame_sink.cc.o.d"
  "/root/repo/src/tool/pipeline_inspect.cc" "src/tool/CMakeFiles/cdc_tool.dir/pipeline_inspect.cc.o" "gcc" "src/tool/CMakeFiles/cdc_tool.dir/pipeline_inspect.cc.o.d"
  "/root/repo/src/tool/recorder.cc" "src/tool/CMakeFiles/cdc_tool.dir/recorder.cc.o" "gcc" "src/tool/CMakeFiles/cdc_tool.dir/recorder.cc.o.d"
  "/root/repo/src/tool/replayer.cc" "src/tool/CMakeFiles/cdc_tool.dir/replayer.cc.o" "gcc" "src/tool/CMakeFiles/cdc_tool.dir/replayer.cc.o.d"
  "/root/repo/src/tool/stream_recorder.cc" "src/tool/CMakeFiles/cdc_tool.dir/stream_recorder.cc.o" "gcc" "src/tool/CMakeFiles/cdc_tool.dir/stream_recorder.cc.o.d"
  "/root/repo/src/tool/stream_replayer.cc" "src/tool/CMakeFiles/cdc_tool.dir/stream_replayer.cc.o" "gcc" "src/tool/CMakeFiles/cdc_tool.dir/stream_replayer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/record/CMakeFiles/cdc_record.dir/DependInfo.cmake"
  "/root/repo/build2/src/store/CMakeFiles/cdc_store.dir/DependInfo.cmake"
  "/root/repo/build2/src/compress/CMakeFiles/cdc_compress.dir/DependInfo.cmake"
  "/root/repo/build2/src/runtime/CMakeFiles/cdc_runtime.dir/DependInfo.cmake"
  "/root/repo/build2/src/minimpi/CMakeFiles/cdc_minimpi.dir/DependInfo.cmake"
  "/root/repo/build2/src/obs/CMakeFiles/cdc_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
