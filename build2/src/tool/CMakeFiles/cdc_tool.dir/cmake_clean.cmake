file(REMOVE_RECURSE
  "CMakeFiles/cdc_tool.dir/async_recorder.cc.o"
  "CMakeFiles/cdc_tool.dir/async_recorder.cc.o.d"
  "CMakeFiles/cdc_tool.dir/frame.cc.o"
  "CMakeFiles/cdc_tool.dir/frame.cc.o.d"
  "CMakeFiles/cdc_tool.dir/frame_sink.cc.o"
  "CMakeFiles/cdc_tool.dir/frame_sink.cc.o.d"
  "CMakeFiles/cdc_tool.dir/pipeline_inspect.cc.o"
  "CMakeFiles/cdc_tool.dir/pipeline_inspect.cc.o.d"
  "CMakeFiles/cdc_tool.dir/recorder.cc.o"
  "CMakeFiles/cdc_tool.dir/recorder.cc.o.d"
  "CMakeFiles/cdc_tool.dir/replayer.cc.o"
  "CMakeFiles/cdc_tool.dir/replayer.cc.o.d"
  "CMakeFiles/cdc_tool.dir/stream_recorder.cc.o"
  "CMakeFiles/cdc_tool.dir/stream_recorder.cc.o.d"
  "CMakeFiles/cdc_tool.dir/stream_replayer.cc.o"
  "CMakeFiles/cdc_tool.dir/stream_replayer.cc.o.d"
  "libcdc_tool.a"
  "libcdc_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdc_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
