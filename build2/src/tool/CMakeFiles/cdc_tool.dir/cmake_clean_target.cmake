file(REMOVE_RECURSE
  "libcdc_tool.a"
)
