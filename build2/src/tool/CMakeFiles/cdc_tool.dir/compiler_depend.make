# Empty compiler generated dependencies file for cdc_tool.
# This may be replaced when dependencies are built.
