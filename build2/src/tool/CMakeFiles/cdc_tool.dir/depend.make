# Empty dependencies file for cdc_tool.
# This may be replaced when dependencies are built.
