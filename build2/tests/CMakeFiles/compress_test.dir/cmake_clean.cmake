file(REMOVE_RECURSE
  "CMakeFiles/compress_test.dir/compress/crc32_test.cc.o"
  "CMakeFiles/compress_test.dir/compress/crc32_test.cc.o.d"
  "CMakeFiles/compress_test.dir/compress/deflate_fuzz_test.cc.o"
  "CMakeFiles/compress_test.dir/compress/deflate_fuzz_test.cc.o.d"
  "CMakeFiles/compress_test.dir/compress/deflate_test.cc.o"
  "CMakeFiles/compress_test.dir/compress/deflate_test.cc.o.d"
  "CMakeFiles/compress_test.dir/compress/huffman_test.cc.o"
  "CMakeFiles/compress_test.dir/compress/huffman_test.cc.o.d"
  "CMakeFiles/compress_test.dir/compress/interop_test.cc.o"
  "CMakeFiles/compress_test.dir/compress/interop_test.cc.o.d"
  "CMakeFiles/compress_test.dir/compress/lz77_test.cc.o"
  "CMakeFiles/compress_test.dir/compress/lz77_test.cc.o.d"
  "compress_test"
  "compress_test.pdb"
  "compress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
