file(REMOVE_RECURSE
  "CMakeFiles/minimpi_test.dir/minimpi/fault_test.cc.o"
  "CMakeFiles/minimpi_test.dir/minimpi/fault_test.cc.o.d"
  "CMakeFiles/minimpi_test.dir/minimpi/rebinding_test.cc.o"
  "CMakeFiles/minimpi_test.dir/minimpi/rebinding_test.cc.o.d"
  "CMakeFiles/minimpi_test.dir/minimpi/simulator_test.cc.o"
  "CMakeFiles/minimpi_test.dir/minimpi/simulator_test.cc.o.d"
  "minimpi_test"
  "minimpi_test.pdb"
  "minimpi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimpi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
