
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/record/baseline_test.cc" "tests/CMakeFiles/record_test.dir/record/baseline_test.cc.o" "gcc" "tests/CMakeFiles/record_test.dir/record/baseline_test.cc.o.d"
  "/root/repo/tests/record/chunk_edge_test.cc" "tests/CMakeFiles/record_test.dir/record/chunk_edge_test.cc.o" "gcc" "tests/CMakeFiles/record_test.dir/record/chunk_edge_test.cc.o.d"
  "/root/repo/tests/record/chunk_test.cc" "tests/CMakeFiles/record_test.dir/record/chunk_test.cc.o" "gcc" "tests/CMakeFiles/record_test.dir/record/chunk_test.cc.o.d"
  "/root/repo/tests/record/edit_distance_test.cc" "tests/CMakeFiles/record_test.dir/record/edit_distance_test.cc.o" "gcc" "tests/CMakeFiles/record_test.dir/record/edit_distance_test.cc.o.d"
  "/root/repo/tests/record/epoch_test.cc" "tests/CMakeFiles/record_test.dir/record/epoch_test.cc.o" "gcc" "tests/CMakeFiles/record_test.dir/record/epoch_test.cc.o.d"
  "/root/repo/tests/record/event_test.cc" "tests/CMakeFiles/record_test.dir/record/event_test.cc.o" "gcc" "tests/CMakeFiles/record_test.dir/record/event_test.cc.o.d"
  "/root/repo/tests/record/fast_permutation_diff_test.cc" "tests/CMakeFiles/record_test.dir/record/fast_permutation_diff_test.cc.o" "gcc" "tests/CMakeFiles/record_test.dir/record/fast_permutation_diff_test.cc.o.d"
  "/root/repo/tests/record/fast_permutation_test.cc" "tests/CMakeFiles/record_test.dir/record/fast_permutation_test.cc.o" "gcc" "tests/CMakeFiles/record_test.dir/record/fast_permutation_test.cc.o.d"
  "/root/repo/tests/record/lp_test.cc" "tests/CMakeFiles/record_test.dir/record/lp_test.cc.o" "gcc" "tests/CMakeFiles/record_test.dir/record/lp_test.cc.o.d"
  "/root/repo/tests/record/property_roundtrip_test.cc" "tests/CMakeFiles/record_test.dir/record/property_roundtrip_test.cc.o" "gcc" "tests/CMakeFiles/record_test.dir/record/property_roundtrip_test.cc.o.d"
  "/root/repo/tests/record/tables_test.cc" "tests/CMakeFiles/record_test.dir/record/tables_test.cc.o" "gcc" "tests/CMakeFiles/record_test.dir/record/tables_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/minimpi/CMakeFiles/cdc_fuzz.dir/DependInfo.cmake"
  "/root/repo/build2/src/support/CMakeFiles/cdc_oracle.dir/DependInfo.cmake"
  "/root/repo/build2/src/apps/CMakeFiles/cdc_apps.dir/DependInfo.cmake"
  "/root/repo/build2/src/tool/CMakeFiles/cdc_tool.dir/DependInfo.cmake"
  "/root/repo/build2/src/store/CMakeFiles/cdc_store.dir/DependInfo.cmake"
  "/root/repo/build2/src/record/CMakeFiles/cdc_record.dir/DependInfo.cmake"
  "/root/repo/build2/src/compress/CMakeFiles/cdc_compress.dir/DependInfo.cmake"
  "/root/repo/build2/src/runtime/CMakeFiles/cdc_runtime.dir/DependInfo.cmake"
  "/root/repo/build2/src/minimpi/CMakeFiles/cdc_minimpi.dir/DependInfo.cmake"
  "/root/repo/build2/src/obs/CMakeFiles/cdc_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
