file(REMOVE_RECURSE
  "CMakeFiles/record_test.dir/record/baseline_test.cc.o"
  "CMakeFiles/record_test.dir/record/baseline_test.cc.o.d"
  "CMakeFiles/record_test.dir/record/chunk_edge_test.cc.o"
  "CMakeFiles/record_test.dir/record/chunk_edge_test.cc.o.d"
  "CMakeFiles/record_test.dir/record/chunk_test.cc.o"
  "CMakeFiles/record_test.dir/record/chunk_test.cc.o.d"
  "CMakeFiles/record_test.dir/record/edit_distance_test.cc.o"
  "CMakeFiles/record_test.dir/record/edit_distance_test.cc.o.d"
  "CMakeFiles/record_test.dir/record/epoch_test.cc.o"
  "CMakeFiles/record_test.dir/record/epoch_test.cc.o.d"
  "CMakeFiles/record_test.dir/record/event_test.cc.o"
  "CMakeFiles/record_test.dir/record/event_test.cc.o.d"
  "CMakeFiles/record_test.dir/record/fast_permutation_diff_test.cc.o"
  "CMakeFiles/record_test.dir/record/fast_permutation_diff_test.cc.o.d"
  "CMakeFiles/record_test.dir/record/fast_permutation_test.cc.o"
  "CMakeFiles/record_test.dir/record/fast_permutation_test.cc.o.d"
  "CMakeFiles/record_test.dir/record/lp_test.cc.o"
  "CMakeFiles/record_test.dir/record/lp_test.cc.o.d"
  "CMakeFiles/record_test.dir/record/property_roundtrip_test.cc.o"
  "CMakeFiles/record_test.dir/record/property_roundtrip_test.cc.o.d"
  "CMakeFiles/record_test.dir/record/tables_test.cc.o"
  "CMakeFiles/record_test.dir/record/tables_test.cc.o.d"
  "record_test"
  "record_test.pdb"
  "record_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/record_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
