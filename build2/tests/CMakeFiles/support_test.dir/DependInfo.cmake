
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/support/binary_test.cc" "tests/CMakeFiles/support_test.dir/support/binary_test.cc.o" "gcc" "tests/CMakeFiles/support_test.dir/support/binary_test.cc.o.d"
  "/root/repo/tests/support/bitstream_test.cc" "tests/CMakeFiles/support_test.dir/support/bitstream_test.cc.o" "gcc" "tests/CMakeFiles/support_test.dir/support/bitstream_test.cc.o.d"
  "/root/repo/tests/support/oracle_test.cc" "tests/CMakeFiles/support_test.dir/support/oracle_test.cc.o" "gcc" "tests/CMakeFiles/support_test.dir/support/oracle_test.cc.o.d"
  "/root/repo/tests/support/rng_test.cc" "tests/CMakeFiles/support_test.dir/support/rng_test.cc.o" "gcc" "tests/CMakeFiles/support_test.dir/support/rng_test.cc.o.d"
  "/root/repo/tests/support/stats_test.cc" "tests/CMakeFiles/support_test.dir/support/stats_test.cc.o" "gcc" "tests/CMakeFiles/support_test.dir/support/stats_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/minimpi/CMakeFiles/cdc_fuzz.dir/DependInfo.cmake"
  "/root/repo/build2/src/support/CMakeFiles/cdc_oracle.dir/DependInfo.cmake"
  "/root/repo/build2/src/apps/CMakeFiles/cdc_apps.dir/DependInfo.cmake"
  "/root/repo/build2/src/tool/CMakeFiles/cdc_tool.dir/DependInfo.cmake"
  "/root/repo/build2/src/store/CMakeFiles/cdc_store.dir/DependInfo.cmake"
  "/root/repo/build2/src/record/CMakeFiles/cdc_record.dir/DependInfo.cmake"
  "/root/repo/build2/src/compress/CMakeFiles/cdc_compress.dir/DependInfo.cmake"
  "/root/repo/build2/src/runtime/CMakeFiles/cdc_runtime.dir/DependInfo.cmake"
  "/root/repo/build2/src/minimpi/CMakeFiles/cdc_minimpi.dir/DependInfo.cmake"
  "/root/repo/build2/src/obs/CMakeFiles/cdc_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
