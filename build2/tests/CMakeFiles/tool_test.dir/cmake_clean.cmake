file(REMOVE_RECURSE
  "CMakeFiles/tool_test.dir/tool/async_recorder_test.cc.o"
  "CMakeFiles/tool_test.dir/tool/async_recorder_test.cc.o.d"
  "CMakeFiles/tool_test.dir/tool/frame_test.cc.o"
  "CMakeFiles/tool_test.dir/tool/frame_test.cc.o.d"
  "CMakeFiles/tool_test.dir/tool/hook_chain_test.cc.o"
  "CMakeFiles/tool_test.dir/tool/hook_chain_test.cc.o.d"
  "CMakeFiles/tool_test.dir/tool/stream_recorder_test.cc.o"
  "CMakeFiles/tool_test.dir/tool/stream_recorder_test.cc.o.d"
  "CMakeFiles/tool_test.dir/tool/stream_replayer_test.cc.o"
  "CMakeFiles/tool_test.dir/tool/stream_replayer_test.cc.o.d"
  "tool_test"
  "tool_test.pdb"
  "tool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
