# Empty dependencies file for tool_test.
# This may be replaced when dependencies are built.
