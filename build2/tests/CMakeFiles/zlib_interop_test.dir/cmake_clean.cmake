file(REMOVE_RECURSE
  "CMakeFiles/zlib_interop_test.dir/compress/zlib_roundtrip_test.cc.o"
  "CMakeFiles/zlib_interop_test.dir/compress/zlib_roundtrip_test.cc.o.d"
  "zlib_interop_test"
  "zlib_interop_test.pdb"
  "zlib_interop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zlib_interop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
