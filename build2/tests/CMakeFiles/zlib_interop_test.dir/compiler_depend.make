# Empty compiler generated dependencies file for zlib_interop_test.
# This may be replaced when dependencies are built.
