# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build2/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/tests/support_test[1]_include.cmake")
include("/root/repo/build2/tests/compress_test[1]_include.cmake")
include("/root/repo/build2/tests/zlib_interop_test[1]_include.cmake")
include("/root/repo/build2/tests/obs_test[1]_include.cmake")
include("/root/repo/build2/tests/clock_test[1]_include.cmake")
include("/root/repo/build2/tests/record_test[1]_include.cmake")
include("/root/repo/build2/tests/minimpi_test[1]_include.cmake")
include("/root/repo/build2/tests/runtime_test[1]_include.cmake")
include("/root/repo/build2/tests/store_test[1]_include.cmake")
include("/root/repo/build2/tests/tool_test[1]_include.cmake")
include("/root/repo/build2/tests/apps_test[1]_include.cmake")
include("/root/repo/build2/tests/integration_test[1]_include.cmake")
include("/root/repo/build2/tests/schedule_fuzz_test[1]_include.cmake")
