// cdc_client — command-line client for the record/replay service.
//
// Subcommands (all need --host/--port/--token):
//   put REC FILE.cdcc   upload a local sealed container as record REC
//                       (frames are re-framed at the negotiated level)
//   window REC LO:HI    fetch epochs [LO, HI) of every stream; prints one
//                       line per stream: key, first_epoch, seeked, bytes
//   inspect REC KIND    print the verify | pipeline | gaps JSON report
//   load                run the seeded load generator against the server
//                       (see --clients/--seed/--faults below)
//
// Exit codes: 0 success, 1 server/protocol error, 2 usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/client.h"
#include "net/load_gen.h"
#include "store/container_reader.h"
#include "tool/frame.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --host H --port P --token T [--level L]\n"
      "          [--timeout-ms N] [--connect-timeout-ms N]\n"
      "          [--retries N] [--resume] [--protocol V] COMMAND...\n"
      "  put REC FILE.cdcc        upload a sealed container as record REC\n"
      "  window REC LO:HI         fetch epoch window [LO, HI)\n"
      "  inspect REC verify|pipeline|gaps\n"
      "  load [--clients N] [--seed S] [--batches N] [--frames N]\n"
      "       [--payload BYTES] [--faults slow,disc,dup,garbage,oversized]\n"
      "       [--tenant NAME --server-root DIR]\n"
      "                           (with both set, surviving records are\n"
      "                           byte-verified against a local rebuild)\n",
      argv0);
}

bool parse_window(const std::string& spec, std::uint64_t& lo,
                  std::uint64_t& hi) {
  char* end = nullptr;
  lo = std::strtoull(spec.c_str(), &end, 10);
  if (end == spec.c_str() || *end != ':') return false;
  const char* hi_at = end + 1;
  hi = std::strtoull(hi_at, &end, 10);
  return end != hi_at && *end == '\0' && lo < hi;
}

int cmd_put(const cdc::net::Client::Options& base, const std::string& record,
            const std::string& path) {
  std::string error;
  auto reader = cdc::store::ContainerReader::open(path, &error);
  if (reader == nullptr || !reader->index_ok()) {
    std::fprintf(stderr, "cdc_client: cannot read %s: %s\n", path.c_str(),
                 reader == nullptr ? error.c_str()
                                   : reader->index_error().c_str());
    return 1;
  }
  cdc::net::Client::Options options = base;
  options.record = record;
  options.intent = cdc::net::Intent::kIngest;
  auto client = cdc::net::Client::connect(options, &error);
  if (client == nullptr) {
    std::fprintf(stderr, "cdc_client: %s\n", error.c_str());
    return 1;
  }
  cdc::net::NetFrameSink sink(client.get());
  for (const cdc::runtime::StreamKey& key : reader->keys()) {
    // read_stream concatenates decoded payloads; ship each stream as one
    // job and let the server re-frame it at the negotiated level (a
    // recompressing mirror).
    const std::vector<std::uint8_t> raw = reader->read_stream(key);
    cdc::tool::FrameJob job;
    job.codec = 0x01;
    job.payload = raw;
    sink.submit(key, std::move(job));
  }
  cdc::net::Sealed sealed;
  if (!sink.flush() || !client->seal(&sealed)) {
    std::fprintf(stderr, "cdc_client: %s\n", client->last_error().c_str());
    return 1;
  }
  client->bye();
  std::printf("sealed %s: %llu streams, %llu frames, %llu bytes\n",
              record.c_str(), static_cast<unsigned long long>(sealed.streams),
              static_cast<unsigned long long>(sealed.frames),
              static_cast<unsigned long long>(sealed.container_bytes));
  return 0;
}

int cmd_window(const cdc::net::Client::Options& base,
               const std::string& record, const std::string& spec) {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  if (!parse_window(spec, lo, hi)) {
    std::fprintf(stderr, "cdc_client: bad window '%s' (need LO:HI, LO < HI)\n",
                 spec.c_str());
    return 2;
  }
  cdc::net::Client::Options options = base;
  options.record = record;
  options.intent = cdc::net::Intent::kReplay;
  std::string error;
  auto client = cdc::net::Client::connect(options, &error);
  if (client == nullptr) {
    std::fprintf(stderr, "cdc_client: %s\n", error.c_str());
    return 1;
  }
  std::vector<cdc::net::WindowStream> streams;
  cdc::net::WindowDone done;
  if (!client->replay_window(lo, hi, &streams, &done)) {
    std::fprintf(stderr, "cdc_client: %s\n", client->last_error().c_str());
    return 1;
  }
  client->bye();
  for (const cdc::net::WindowStream& ws : streams)
    std::printf("rank %lld callsite %llu first_epoch %llu seeked %d "
                "bytes %zu\n",
                static_cast<long long>(ws.key.rank),
                static_cast<unsigned long long>(ws.key.callsite),
                static_cast<unsigned long long>(ws.first_epoch),
                ws.seeked ? 1 : 0, ws.bytes.size());
  std::printf("done: %llu streams, all_seeked %d\n",
              static_cast<unsigned long long>(done.streams),
              done.all_seeked ? 1 : 0);
  return 0;
}

int cmd_inspect(const cdc::net::Client::Options& base,
                const std::string& record, const std::string& kind_name) {
  cdc::net::InspectKind kind;
  if (kind_name == "verify") kind = cdc::net::InspectKind::kVerify;
  else if (kind_name == "pipeline") kind = cdc::net::InspectKind::kPipeline;
  else if (kind_name == "gaps") kind = cdc::net::InspectKind::kGaps;
  else {
    std::fprintf(stderr, "cdc_client: bad inspect kind '%s'\n",
                 kind_name.c_str());
    return 2;
  }
  cdc::net::Client::Options options = base;
  options.record = record;
  options.intent = cdc::net::Intent::kReplay;
  std::string error;
  auto client = cdc::net::Client::connect(options, &error);
  if (client == nullptr) {
    std::fprintf(stderr, "cdc_client: %s\n", error.c_str());
    return 1;
  }
  std::string json;
  if (!client->inspect(kind, &json)) {
    std::fprintf(stderr, "cdc_client: %s\n", client->last_error().c_str());
    return 1;
  }
  client->bye();
  std::fputs(json.c_str(), stdout);
  return 0;
}

// Consumes flags from argv starting at `i`, stopping at the first
// non-flag argument (the subcommand) or the end. Returns false on a
// malformed flag. Called twice: once before the subcommand and once
// after it, so `load --clients 24` and `--clients 24 load` both work.
bool parse_flags(int argc, char** argv, int& i,
                 cdc::net::Client::Options& base,
                 cdc::net::LoadConfig& load) {
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) return false;
      base.host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return false;
      base.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--token") {
      const char* v = next();
      if (v == nullptr) return false;
      base.token = v;
    } else if (arg == "--level") {
      const char* v = next();
      const auto level = v == nullptr
                             ? std::nullopt
                             : cdc::compress::deflate_level_from_name(v);
      if (!level.has_value()) return false;
      base.level = *level;
    } else if (arg == "--timeout-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      base.timeout_ms = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--connect-timeout-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      base.connect_timeout_ms = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--retries") {
      const char* v = next();
      if (v == nullptr) return false;
      base.max_reconnects = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--resume") {
      base.resumable = true;
    } else if (arg == "--protocol") {
      const char* v = next();
      if (v == nullptr) return false;
      base.version = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--clients") {
      const char* v = next();
      if (v == nullptr) return false;
      load.clients = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      load.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--batches") {
      const char* v = next();
      if (v == nullptr) return false;
      load.shape.batches = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--frames") {
      const char* v = next();
      if (v == nullptr) return false;
      load.shape.frames_per_batch = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--payload") {
      const char* v = next();
      if (v == nullptr) return false;
      load.shape.payload_bytes = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--tenant") {
      const char* v = next();
      if (v == nullptr) return false;
      load.tenant = v;
    } else if (arg == "--server-root") {
      const char* v = next();
      if (v == nullptr) return false;
      load.server_root = v;
    } else if (arg == "--faults") {
      const char* v = next();
      if (v == nullptr ||
          std::sscanf(v, "%u,%u,%u,%u,%u", &load.faults.slow_pct,
                      &load.faults.disconnect_pct, &load.faults.duplicate_pct,
                      &load.faults.garbage_pct,
                      &load.faults.oversized_pct) != 5) {
        return false;
      }
    } else {
      break;  // first non-flag: the subcommand
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  cdc::net::Client::Options base;
  cdc::net::LoadConfig load;
  int i = 1;
  if (!parse_flags(argc, argv, i, base, load) || i >= argc ||
      base.port == 0 || base.token.empty()) {
    usage(argv[0]);
    return 2;
  }
  const std::string command = argv[i++];
  if (command == "put" && i + 1 < argc)
    return cmd_put(base, argv[i], argv[i + 1]);
  if (command == "window" && i + 1 < argc)
    return cmd_window(base, argv[i], argv[i + 1]);
  if (command == "inspect" && i + 1 < argc)
    return cmd_inspect(base, argv[i], argv[i + 1]);
  if (command == "load") {
    // load is the only subcommand with trailing flags; a second pass
    // picks them up and anything left over is a usage error.
    if (!parse_flags(argc, argv, i, base, load) || i != argc) {
      usage(argv[0]);
      return 2;
    }
    load.host = base.host;
    load.port = base.port;
    load.token = base.token;
    load.level = base.level;
    const cdc::net::LoadReport report = cdc::net::run_load(load);
    std::printf(
        "load: %zu clients, %zu sealed, %zu expected failures, "
        "%zu unexpected, %.0f frames/s, %.2f MB/s, "
        "ack p50/p95/p99 %.2f/%.2f/%.2f ms\n",
        report.clients, report.sealed, report.expected_failures,
        report.unexpected_failures, report.frames_per_s, report.mb_per_s,
        report.ack_p50_ms, report.ack_p95_ms, report.ack_p99_ms);
    if (!load.server_root.empty())
      std::printf("load: %zu verified against local rebuild, %zu failures\n",
                  report.verified, report.verify_failures);
    for (const std::string& e : report.errors)
      std::fprintf(stderr, "  %s\n", e.c_str());
    return report.ok() ? 0 : 1;
  }
  usage(argv[0]);
  return 2;
}
