// cdc_run — command-line record/replay driver (the "release binary").
//
// Runs one of the bundled applications on the simulator, optionally under
// the CDC recorder or replayer, with a file-backed record directory — the
// workflow a user of the real tool would follow:
//
//   # 1. the bug manifests under some network condition: record it
//   $ ./cdc_run --app mcb --ranks 16 --seed 3 --mode record --dir /tmp/rec
//
//   # 2. debug: replay as many times as needed, any network condition
//   $ ./cdc_run --app mcb --ranks 16 --seed 77 --mode replay --dir /tmp/rec
//
// Modes: plain (default) | record | replay.  Apps: mcb | jacobi | taskfarm.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "apps/jacobi.h"
#include "apps/mcb.h"
#include "apps/taskfarm.h"
#include "minimpi/simulator.h"
#include "runtime/storage.h"
#include "support/stats.h"
#include "tool/recorder.h"
#include "tool/replayer.h"

namespace {

using namespace cdc;

struct Options {
  std::string app = "mcb";
  std::string mode = "plain";
  std::string dir = "/tmp/cdc_run_record";
  int ranks = 16;
  std::uint64_t seed = 1;
  std::size_t chunk_target = 4096;
  int scale = 100;  // particles / iterations / tasks knob
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--app mcb|jacobi|taskfarm] [--mode "
               "plain|record|replay]\n"
               "          [--ranks N] [--seed S] [--dir PATH] [--scale N] "
               "[--chunk N]\n",
               argv0);
}

bool parse(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (arg == "--app") {
      const char* v = next();
      if (v == nullptr) return false;
      options.app = v;
    } else if (arg == "--mode") {
      const char* v = next();
      if (v == nullptr) return false;
      options.mode = v;
    } else if (arg == "--dir") {
      const char* v = next();
      if (v == nullptr) return false;
      options.dir = v;
    } else if (arg == "--ranks") {
      const char* v = next();
      if (v == nullptr) return false;
      options.ranks = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--scale") {
      const char* v = next();
      if (v == nullptr) return false;
      options.scale = std::atoi(v);
    } else if (arg == "--chunk") {
      const char* v = next();
      if (v == nullptr) return false;
      options.chunk_target = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return options.ranks >= 1 &&
         (options.mode == "plain" || options.mode == "record" ||
          options.mode == "replay") &&
         (options.app == "mcb" || options.app == "jacobi" ||
          options.app == "taskfarm");
}

std::pair<int, int> grid_for(int ranks) {
  int best = 1;
  for (int x = 1; x * x <= ranks; ++x)
    if (ranks % x == 0) best = x;
  return {ranks / best, best};
}

/// Runs the selected app; returns an order-sensitive scalar result.
double run_app(const Options& options, minimpi::Simulator& sim) {
  const auto [gx, gy] = grid_for(options.ranks);
  if (options.app == "mcb") {
    apps::McbConfig config;
    config.grid_x = gx;
    config.grid_y = gy;
    config.particles_per_rank = options.scale;
    return apps::run_mcb(sim, config).global_tally;
  }
  if (options.app == "jacobi") {
    apps::JacobiConfig config;
    config.grid_x = gx;
    config.grid_y = gy;
    config.iterations = options.scale;
    return apps::run_jacobi(sim, config).residual;
  }
  apps::TaskFarmConfig config;
  config.tasks = options.scale * 10;
  return apps::run_taskfarm(sim, config).accumulated;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse(argc, argv, options)) {
    usage(argv[0]);
    return 2;
  }

  minimpi::Simulator::Config sim_config;
  sim_config.num_ranks = options.ranks;
  sim_config.noise_seed = options.seed;

  std::unique_ptr<runtime::FileStore> store;
  std::unique_ptr<tool::Recorder> recorder;
  std::unique_ptr<tool::Replayer> replayer;
  tool::ToolOptions tool_options;
  tool_options.chunk_target = options.chunk_target;

  minimpi::ToolHooks* hooks = nullptr;
  if (options.mode == "record") {
    store = std::make_unique<runtime::FileStore>(options.dir);
    recorder = std::make_unique<tool::Recorder>(options.ranks, store.get(),
                                                tool_options);
    hooks = recorder.get();
  } else if (options.mode == "replay") {
    store = std::make_unique<runtime::FileStore>(options.dir);
    replayer = std::make_unique<tool::Replayer>(options.ranks, store.get(),
                                                tool_options);
    hooks = replayer.get();
  }

  minimpi::Simulator sim(sim_config, hooks);
  const double result = run_app(options, sim);

  std::printf("app=%s ranks=%d seed=%llu mode=%s\n", options.app.c_str(),
              options.ranks, static_cast<unsigned long long>(options.seed),
              options.mode.c_str());
  std::printf("result   : %.17g\n", result);
  if (recorder) {
    recorder->finalize();
    const auto totals = recorder->totals();
    std::printf("recorded : %llu events, %llu chunks, %s -> %s\n",
                static_cast<unsigned long long>(totals.matched_events),
                static_cast<unsigned long long>(totals.chunks),
                support::format_bytes(
                    static_cast<double>(store->total_bytes())).c_str(),
                options.dir.c_str());
    std::printf("digest   : %016llx\n",
                static_cast<unsigned long long>(recorder->order_digest()));
  }
  if (replayer) {
    std::printf("replayed : %llu events (%s)\n",
                static_cast<unsigned long long>(
                    replayer->totals().replayed_events),
                replayer->fully_replayed() ? "complete" : "INCOMPLETE");
    std::printf("digest   : %016llx\n",
                static_cast<unsigned long long>(replayer->order_digest()));
  }
  return 0;
}
