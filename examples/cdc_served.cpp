// cdc_served — the multi-tenant record/replay service daemon.
//
// Serves the DESIGN.md §13 wire protocol over TCP: authenticated tenants
// stream record frames in (PUT_FRAMES → sealed containers under the
// storage root) and read windows back out (REPLAY_WINDOW / INSPECT).
//
// Usage:
//   cdc_served --root DIR --tenant NAME:TOKEN[:MAX_MB[:MAX_RECORDS]] ...
//              [--host H] [--port P] [--sink inline|service|retrying]
//              [--workers N] [--queue-batches N] [--max-level LEVEL]
//              [--ingest-delay-us N] [--duration-s N]
//              [--drain-timeout-ms N]
//              [--crash-sync-batch N] [--crash-ack-batch N]
//              [--crash-before-seal] [--crash-after-seal]
//
// With --port 0 (the default) an ephemeral port is chosen and printed as
// `LISTENING <port>` on stdout — the handshake the tests and the load
// bench use to find the server. Runs until SIGINT/SIGTERM, or for
// --duration-s seconds when given. Shutdown is graceful: stop accepting,
// GOAWAY idle connections, finish journaling in-flight batches, park
// resumable sessions, exit 0 — all within --drain-timeout-ms.
//
// The --crash-* flags arm the DESIGN.md §14 chaos hooks: the daemon
// SIGKILLs itself at a precise protocol state so the kill-sweep harness
// can verify that a restarted daemon + resuming clients reproduce a
// byte-identical record.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>

#include "compress/deflate.h"
#include "net/server.h"

namespace {

std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --root DIR --tenant NAME:TOKEN[:MAX_MB[:MAX_RECORDS]]...\n"
      "          [--host H] [--port P] [--sink inline|service|retrying]\n"
      "          [--workers N] [--queue-batches N] [--max-level LEVEL]\n"
      "          [--ingest-delay-us N] [--duration-s N]\n"
      "          [--drain-timeout-ms N] [--crash-sync-batch N]\n"
      "          [--crash-ack-batch N] [--crash-before-seal]\n"
      "          [--crash-after-seal]\n",
      argv0);
}

bool parse_tenant(const std::string& spec, cdc::net::TenantConfig& out) {
  const std::size_t c1 = spec.find(':');
  if (c1 == std::string::npos || c1 == 0) return false;
  out.name = spec.substr(0, c1);
  const std::size_t c2 = spec.find(':', c1 + 1);
  out.token = spec.substr(c1 + 1, c2 == std::string::npos
                                      ? std::string::npos
                                      : c2 - c1 - 1);
  if (out.token.empty()) return false;
  if (c2 != std::string::npos) {
    char* end = nullptr;
    const std::size_t c3 = spec.find(':', c2 + 1);
    const std::string mb = spec.substr(
        c2 + 1, c3 == std::string::npos ? std::string::npos : c3 - c2 - 1);
    out.max_bytes = std::strtoull(mb.c_str(), &end, 10) << 20;
    if (end == mb.c_str() || *end != '\0') return false;
    if (c3 != std::string::npos) {
      const std::string recs = spec.substr(c3 + 1);
      out.max_records =
          static_cast<std::uint32_t>(std::strtoul(recs.c_str(), &end, 10));
      if (end == recs.c_str() || *end != '\0') return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  cdc::net::ServerConfig config;
  long duration_s = -1;
  std::uint32_t drain_timeout_ms = 5000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--root") {
      const char* v = next();
      if (v == nullptr) { usage(argv[0]); return 2; }
      config.root_dir = v;
    } else if (arg == "--tenant") {
      const char* v = next();
      cdc::net::TenantConfig tenant;
      if (v == nullptr || !parse_tenant(v, tenant)) {
        std::fprintf(stderr, "bad --tenant spec\n");
        return 2;
      }
      config.tenants.push_back(std::move(tenant));
    } else if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) { usage(argv[0]); return 2; }
      config.host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) { usage(argv[0]); return 2; }
      config.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--sink") {
      const char* v = next();
      if (v == nullptr) { usage(argv[0]); return 2; }
      if (std::strcmp(v, "inline") == 0)
        config.sink_mode = cdc::net::SinkMode::kInline;
      else if (std::strcmp(v, "service") == 0)
        config.sink_mode = cdc::net::SinkMode::kService;
      else if (std::strcmp(v, "retrying") == 0)
        config.sink_mode = cdc::net::SinkMode::kRetrying;
      else { std::fprintf(stderr, "bad --sink\n"); return 2; }
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) { usage(argv[0]); return 2; }
      config.service_workers = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--queue-batches") {
      const char* v = next();
      if (v == nullptr) { usage(argv[0]); return 2; }
      config.ingest_queue_batches = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--max-level") {
      const char* v = next();
      const auto level =
          v == nullptr ? std::nullopt : cdc::compress::deflate_level_from_name(v);
      if (!level.has_value()) {
        std::fprintf(stderr, "bad --max-level\n");
        return 2;
      }
      config.max_level = *level;
    } else if (arg == "--ingest-delay-us") {
      const char* v = next();
      if (v == nullptr) { usage(argv[0]); return 2; }
      config.ingest_delay_us = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--duration-s") {
      const char* v = next();
      if (v == nullptr) { usage(argv[0]); return 2; }
      duration_s = std::atol(v);
    } else if (arg == "--drain-timeout-ms") {
      const char* v = next();
      if (v == nullptr) { usage(argv[0]); return 2; }
      drain_timeout_ms = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--crash-sync-batch") {
      const char* v = next();
      if (v == nullptr) { usage(argv[0]); return 2; }
      config.crash.kill_before_sync_batch =
          static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--crash-ack-batch") {
      const char* v = next();
      if (v == nullptr) { usage(argv[0]); return 2; }
      config.crash.kill_before_ack_batch =
          static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--crash-before-seal") {
      config.crash.kill_before_seal = true;
    } else if (arg == "--crash-after-seal") {
      config.crash.kill_after_seal = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (config.root_dir.empty() || config.tenants.empty()) {
    usage(argv[0]);
    return 2;
  }

  // Install the stop handlers before LISTENING is printed: a supervisor
  // may SIGTERM the instant it parses that line, and a signal landing
  // before the handler exists would kill the process with the default
  // disposition instead of draining.
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  cdc::net::Server server(std::move(config));
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "cdc_served: %s\n", error.c_str());
    return 1;
  }
  std::printf("LISTENING %u\n", static_cast<unsigned>(server.port()));
  std::fflush(stdout);
  const auto started = std::chrono::steady_clock::now();
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (duration_s >= 0 &&
        std::chrono::steady_clock::now() - started >=
            std::chrono::seconds(duration_s))
      break;
  }
  // Graceful drain: in-flight batches finish (journaled + acked),
  // resumable sessions are parked for the next daemon life, and the
  // process exits 0 — SIGTERM is a normal way to stop this server.
  const bool drained = server.drain(drain_timeout_ms);
  const cdc::net::Server::Stats stats = server.stats();
  std::printf(
      "cdc_served: %llu conns, %llu sealed, %llu aborted, %llu frames, "
      "%llu bytes, %llu errors, %llu suspensions, %llu resumed, "
      "%llu recovered, %llu parked, %llu deduped, drained=%s\n",
      static_cast<unsigned long long>(stats.connections_accepted),
      static_cast<unsigned long long>(stats.sessions_sealed),
      static_cast<unsigned long long>(stats.sessions_aborted),
      static_cast<unsigned long long>(stats.frames_ingested),
      static_cast<unsigned long long>(stats.bytes_ingested),
      static_cast<unsigned long long>(stats.errors_sent),
      static_cast<unsigned long long>(stats.backpressure_suspensions),
      static_cast<unsigned long long>(stats.sessions_resumed),
      static_cast<unsigned long long>(stats.sessions_recovered),
      static_cast<unsigned long long>(stats.sessions_parked),
      static_cast<unsigned long long>(stats.batches_deduped),
      drained ? "clean" : "deadline");
  return 0;
}
