// Walks the CDC encoding pipeline on the paper's worked example (Figures
// 4–8): redundancy elimination, permutation encoding, LP encoding, and the
// epoch line, printing the value counts at each stage (55 → 23 → 19) and
// the final serialized/compressed sizes.
//
//   $ ./compression_pipeline
#include <cstdio>

#include "compress/deflate.h"
#include "record/baseline.h"
#include "record/chunk.h"
#include "record/lp.h"
#include "record/tables.h"

namespace {

using namespace cdc;

std::vector<record::ReceiveEvent> figure4_events() {
  const auto matched = [](std::int32_t rank, std::uint64_t clk,
                          bool with_next = false) {
    return record::ReceiveEvent{true, with_next, rank, clk};
  };
  const record::ReceiveEvent unmatched{false, false, -1, 0};
  return {
      matched(0, 2),        unmatched, unmatched,
      matched(0, 13, true), matched(2, 8),
      matched(1, 8),        matched(0, 15),
      matched(1, 19),       unmatched, unmatched, unmatched,
      matched(0, 17),       unmatched,
      matched(0, 18),
  };
}

}  // namespace

int main() {
  std::printf("== CDC encoding pipeline on the paper's Figure 4 example ==\n\n");

  const auto events = figure4_events();
  const auto rows = record::to_rows(events);
  std::printf("original record (Figure 4): %zu rows x 5 values = %zu values\n",
              rows.size(), rows.size() * 5);
  std::printf("  packed traditional format: %zu bytes (162 bits/row)\n\n",
              record::baseline_size_bytes(rows.size()));

  const auto tables = record::build_tables(events);
  std::printf("redundancy elimination (Figure 6): %zu values\n",
              tables.value_count());
  std::printf("  matched-test: %zu x (rank, clock)\n", tables.matched.size());
  std::printf("  with_next   : %zu indices\n", tables.with_next.size());
  std::printf("  unmatched   : %zu x (index, count)\n\n",
              tables.unmatched.size());

  const auto chunk = record::encode_chunk(tables);
  std::printf("permutation + LP + epoch (Figure 8): %zu values\n",
              chunk.value_count());
  std::printf("  permutation difference:");
  for (const auto& op : chunk.moves)
    std::printf(" (%lld,%+lld)", static_cast<long long>(op.index),
                static_cast<long long>(op.delay));
  std::printf("\n  with_next indices     :");
  for (const auto i : chunk.with_next)
    std::printf(" %llu", static_cast<unsigned long long>(i));
  std::printf("\n  unmatched-test        :");
  for (const auto& run : chunk.unmatched)
    std::printf(" (%llu,%llu)", static_cast<unsigned long long>(run.index),
                static_cast<unsigned long long>(run.count));
  std::printf("\n  epoch line            :");
  for (const auto& e : chunk.epoch)
    std::printf(" (rank %d, clock %llu)", e.sender,
                static_cast<unsigned long long>(e.clock));
  std::printf("\n\n");

  // LP encoding demonstration on the section 3.4 example.
  const std::vector<std::int64_t> xs = {1, 2, 4, 6, 8, 12, 17};
  const auto es = record::lp_encode(xs);
  std::printf("LP encoding (section 3.4): {");
  for (const auto x : xs) std::printf("%lld,", static_cast<long long>(x));
  std::printf("\b} -> {");
  for (const auto e : es) std::printf("%lld,", static_cast<long long>(e));
  std::printf("\b}\n\n");

  // Serialized sizes before and after the final entropy stage.
  support::ByteWriter chunk_bytes;
  record::write_chunk(chunk_bytes, chunk);
  const auto baseline = record::baseline_serialize(rows);
  const auto gz_baseline = compress::gzip_compress(baseline);
  const auto gz_chunk = compress::gzip_compress(
      std::vector<std::uint8_t>(chunk_bytes.view().begin(),
                                chunk_bytes.view().end()));
  std::printf("serialized sizes for this (tiny) example:\n");
  std::printf("  traditional, raw     : %5zu bytes\n", baseline.size());
  std::printf("  traditional, gzip    : %5zu bytes\n", gz_baseline.size());
  std::printf("  CDC chunk, raw       : %5zu bytes\n", chunk_bytes.size());
  std::printf("  CDC chunk, gzip      : %5zu bytes\n", gz_chunk.size());
  std::printf(
      "\n(gzip overhead dominates 14-event examples; the Figure 13 bench\n"
      "measures millions of events, where CDC wins by orders of "
      "magnitude.)\n");
  return 0;
}
