// Hidden determinism (§6.3): recording a deterministic wildcard pattern.
//
// The Jacobi solver posts MPI_ANY_SOURCE halo receives although each tag
// has exactly one possible sender — the receive order is deterministic,
// but no tool can know that without watching the run, so everything gets
// recorded. The example contrasts the gzip'd traditional record with CDC,
// whose LP encoding all but eliminates the regular pattern (the paper
// reports 91 MB vs 2 MB at 6,114 processes).
//
//   $ ./jacobi_hidden_determinism [grid_x grid_y iterations]
#include <cstdio>
#include <cstdlib>

#include "apps/jacobi.h"
#include "minimpi/simulator.h"
#include "runtime/storage.h"
#include "support/stats.h"
#include "tool/recorder.h"
#include "tool/replayer.h"

namespace {

std::uint64_t record_with(cdc::tool::RecordCodec codec, int gx, int gy,
                          int iterations, double* residual) {
  cdc::minimpi::Simulator::Config config;
  config.num_ranks = gx * gy;
  config.noise_seed = 7;

  cdc::runtime::MemoryStore store;
  cdc::tool::ToolOptions options;
  options.codec = codec;
  cdc::tool::Recorder recorder(config.num_ranks, &store, options);
  cdc::minimpi::Simulator sim(config, &recorder);

  cdc::apps::JacobiConfig jacobi;
  jacobi.grid_x = gx;
  jacobi.grid_y = gy;
  jacobi.iterations = iterations;
  const auto result = cdc::apps::run_jacobi(sim, jacobi);
  recorder.finalize();
  if (residual != nullptr) *residual = result.residual;
  return store.total_bytes();
}

}  // namespace

int main(int argc, char** argv) {
  const int gx = argc > 1 ? std::atoi(argv[1]) : 8;
  const int gy = argc > 2 ? std::atoi(argv[2]) : 8;
  const int iterations = argc > 3 ? std::atoi(argv[3]) : 1000;

  std::printf("== Jacobi halo exchange: hidden determinism ==\n");
  std::printf("%d x %d ranks, %d iterations, ANY_SOURCE halo receives\n\n",
              gx, gy, iterations);

  double residual = 0.0;
  const std::uint64_t gzip_bytes = record_with(
      cdc::tool::RecordCodec::kBaselineGzip, gx, gy, iterations, &residual);
  const std::uint64_t cdc_bytes = record_with(
      cdc::tool::RecordCodec::kCdcFull, gx, gy, iterations, nullptr);

  std::printf("final residual       : %.6e\n", residual);
  std::printf("gzip record size     : %s\n",
              cdc::support::format_bytes(
                  static_cast<double>(gzip_bytes)).c_str());
  std::printf("CDC  record size     : %s (%.1f%% of gzip)\n",
              cdc::support::format_bytes(
                  static_cast<double>(cdc_bytes)).c_str(),
              100.0 * static_cast<double>(cdc_bytes) /
                  static_cast<double>(gzip_bytes));
  std::printf(
      "\nCDC records the deterministic pattern almost for free — \"as if\n"
      "deterministic communications are automatically excluded\" (§6.3).\n");
  return cdc_bytes * 5 < gzip_bytes ? 0 : 1;
}
