// The paper's motivating scenario (§2.1) as a debugging session.
//
// A domain-decomposed Monte Carlo particle transport run produces a global
// tally by summing deposits in receive order — so the tally varies from
// run to run in its last bits, which can hide or confuse a bug. This
// example records a "buggy" run with CDC, then replays it several times
// under different network conditions: every replay reproduces the exact
// tally, making the anomaly deterministic and debuggable.
//
//   $ ./mcb_debugging_session [grid_x grid_y particles_per_rank]
#include <cstdio>
#include <cstdlib>

#include "apps/mcb.h"
#include "minimpi/simulator.h"
#include "runtime/storage.h"
#include "support/stats.h"
#include "tool/recorder.h"
#include "tool/replayer.h"

namespace {

cdc::apps::McbResult run(int gx, int gy, int particles,
                         std::uint64_t noise_seed,
                         cdc::minimpi::ToolHooks* hooks) {
  cdc::minimpi::Simulator::Config config;
  config.num_ranks = gx * gy;
  config.noise_seed = noise_seed;
  cdc::minimpi::Simulator sim(config, hooks);

  cdc::apps::McbConfig mcb;
  mcb.grid_x = gx;
  mcb.grid_y = gy;
  mcb.particles_per_rank = particles;
  return cdc::apps::run_mcb(sim, mcb);
}

}  // namespace

int main(int argc, char** argv) {
  const int gx = argc > 1 ? std::atoi(argv[1]) : 4;
  const int gy = argc > 2 ? std::atoi(argv[2]) : 4;
  const int particles = argc > 3 ? std::atoi(argv[3]) : 200;

  std::printf("== MCB non-determinism and order-replay ==\n");
  std::printf("%d x %d ranks, %d particles/rank\n\n", gx, gy, particles);

  // The "production" runs: same input, different noise, drifting tallies.
  std::printf("-- five untooled runs (network noise varies) --\n");
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto result = run(gx, gy, particles, seed, nullptr);
    std::printf("  seed %llu: tally = %.15e   (%llu tracks)\n",
                static_cast<unsigned long long>(seed), result.global_tally,
                static_cast<unsigned long long>(result.total_tracks));
  }

  // The run where "the bug showed up" — record it.
  std::printf("\n-- record the run of interest (seed 3) with CDC --\n");
  cdc::runtime::MemoryStore store;
  cdc::tool::Recorder recorder(gx * gy, &store);
  const auto buggy = run(gx, gy, particles, 3, &recorder);
  recorder.finalize();
  const auto totals = recorder.totals();
  std::printf("  tally      : %.15e\n", buggy.global_tally);
  std::printf("  events     : %llu receives, %llu unmatched tests\n",
              static_cast<unsigned long long>(totals.matched_events),
              static_cast<unsigned long long>(totals.unmatched_events));
  std::printf("  record size: %s (%.3f bytes/event)\n",
              cdc::support::format_bytes(
                  static_cast<double>(store.total_bytes()))
                  .c_str(),
              static_cast<double>(store.total_bytes()) /
                  static_cast<double>(totals.matched_events));

  // Debug sessions: replay under wildly different network conditions.
  std::printf("\n-- three replays under different noise seeds --\n");
  bool all_exact = true;
  for (const std::uint64_t seed : {101ull, 202ull, 303ull}) {
    cdc::tool::Replayer replayer(gx * gy, &store);
    const auto replayed = run(gx, gy, particles, seed, &replayer);
    const bool exact = replayed.global_tally == buggy.global_tally;
    all_exact = all_exact && exact && replayer.fully_replayed();
    std::printf("  seed %3llu: tally = %.15e   %s\n",
                static_cast<unsigned long long>(seed),
                replayed.global_tally,
                exact ? "== recorded (bitwise)" : "!! DIVERGED");
  }
  std::printf("\n%s\n", all_exact
                            ? "every replay reproduced the recorded run"
                            : "REPLAY FAILURE");
  return all_exact ? 0 : 1;
}
