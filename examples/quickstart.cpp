// Quickstart: record a non-deterministic MPI run, replay it exactly.
//
// Three ranks run a wildcard-receive pattern whose receive order depends
// on network noise. We run it twice under different noise seeds to show
// the order changes, then record one run with CDC and replay it under yet
// another seed — the replayed order (and the order-sensitive result)
// matches the recorded run bit for bit.
//
//   $ ./quickstart
#include <cstdio>
#include <memory>
#include <vector>

#include "minimpi/simulator.h"
#include "runtime/storage.h"
#include "tool/recorder.h"
#include "tool/replayer.h"

namespace {

using cdc::minimpi::Comm;
using cdc::minimpi::Request;
using cdc::minimpi::Task;

// Rank 0 receives ten messages from each worker through MPI_ANY_SOURCE
// receives and folds them into an order-sensitive checksum; the workers
// send with noisy timing.
struct RunResult {
  double checksum = 0.0;
  std::vector<int> receive_order;
};

Task root_program(Comm& comm, RunResult* out) {
  constexpr int kPerWorker = 10;
  const int total = (comm.size() - 1) * kPerWorker;
  std::vector<Request> pool;
  for (int i = 0; i < 4; ++i)
    pool.push_back(comm.irecv(cdc::minimpi::kAnySource, 1));

  int received = 0;
  while (received < total) {
    auto result = co_await comm.testsome(pool, /*callsite=*/1);
    for (const auto& completion : result.completions) {
      const double value =
          cdc::minimpi::from_payload<double>(completion.payload);
      // Deliberately order-sensitive: FP addition is not associative.
      out->checksum = (out->checksum + value) * 1.0000001;
      out->receive_order.push_back(completion.source);
      pool[completion.span_index] = comm.irecv(cdc::minimpi::kAnySource, 1);
      ++received;
    }
    co_await comm.compute(1e-6);
  }
}

Task worker_program(Comm& comm) {
  for (int i = 0; i < 10; ++i) {
    const double value = comm.rank() * 100.0 + i;
    comm.isend(0, 1, cdc::minimpi::to_payload(value));
    co_await comm.compute(0.5e-6 * (1 + (comm.rank() + i) % 3));
  }
}

RunResult run(std::uint64_t noise_seed, cdc::minimpi::ToolHooks* hooks) {
  cdc::minimpi::Simulator::Config config;
  config.num_ranks = 3;
  config.noise_seed = noise_seed;
  cdc::minimpi::Simulator sim(config, hooks);

  auto result = std::make_shared<RunResult>();
  sim.set_program(0, [result](Comm& comm) {
    return root_program(comm, result.get());
  });
  for (int r = 1; r < 3; ++r)
    sim.set_program(r, [](Comm& comm) { return worker_program(comm); });
  sim.run();
  return *result;
}

void print_run(const char* label, const RunResult& result) {
  std::printf("%-28s checksum=%.10f  order:", label, result.checksum);
  for (std::size_t i = 0; i < result.receive_order.size() && i < 12; ++i)
    std::printf(" %d", result.receive_order[i]);
  std::printf(" ...\n");
}

}  // namespace

int main() {
  std::printf("== CDC quickstart: record & replay a wildcard pattern ==\n\n");

  // 1. Non-determinism: two seeds, two different receive orders.
  const RunResult seed_a = run(1, nullptr);
  const RunResult seed_b = run(2, nullptr);
  print_run("noise seed 1:", seed_a);
  print_run("noise seed 2:", seed_b);
  std::printf("orders %s\n\n",
              seed_a.receive_order == seed_b.receive_order
                  ? "match (try other seeds)"
                  : "differ — the application is non-deterministic");

  // 2. Record the seed-1 run with CDC.
  cdc::runtime::MemoryStore store;
  cdc::tool::Recorder recorder(3, &store);
  const RunResult recorded = run(1, &recorder);
  recorder.finalize();
  std::printf("recorded %llu receive events into %llu bytes of CDC data\n",
              static_cast<unsigned long long>(
                  recorder.totals().matched_events),
              static_cast<unsigned long long>(store.total_bytes()));

  // 3. Replay under a different noise seed: identical order and checksum.
  cdc::tool::Replayer replayer(3, &store);
  const RunResult replayed = run(99, &replayer);
  print_run("recorded  (seed 1):", recorded);
  print_run("replayed  (seed 99):", replayed);
  std::printf("\nreplay %s the recorded run\n",
              recorded.receive_order == replayed.receive_order &&
                      recorded.checksum == replayed.checksum
                  ? "bitwise reproduces"
                  : "FAILED to reproduce");
  return recorded.receive_order == replayed.receive_order ? 0 : 1;
}
