// Record inspector: a release-style utility that dissects CDC record data.
//
// Records a small MCB run into a directory-backed store (or inspects an
// existing record directory given as argv[1]) and prints, per stream and
// per chunk: event counts, permutation moves, with_next and unmatched-test
// table sizes, the epoch line, stored-value accounting, and compressed
// sizes. Handy when debugging the tool itself or sizing records.
//
//   $ ./record_inspector            # self-contained demo
//   $ ./record_inspector /path/dir  # inspect an existing FileStore record
#include <cstdio>
#include <memory>
#include <string>

#include "apps/mcb.h"
#include "minimpi/simulator.h"
#include "record/chunk.h"
#include "runtime/storage.h"
#include "support/stats.h"
#include "tool/frame.h"
#include "tool/options.h"
#include "tool/recorder.h"

namespace {

using namespace cdc;

void inspect(const runtime::RecordStore& store) {
  std::uint64_t total_events = 0;
  std::uint64_t total_moves = 0;
  std::uint64_t total_values = 0;

  for (const runtime::StreamKey& key : store.keys()) {
    const std::vector<std::uint8_t> bytes = store.read(key);
    std::printf("stream rank=%d callsite=%u: %zu bytes\n", key.rank,
                key.callsite, bytes.size());
    support::ByteReader reader(bytes);
    std::size_t index = 0;
    while (auto frame = tool::read_frame(reader)) {
      if (frame->codec != static_cast<std::uint8_t>(
                              tool::RecordCodec::kCdcFull)) {
        std::printf("  chunk %zu: codec %u (%zu bytes payload) — not CDC, "
                    "skipping detail\n",
                    index, frame->codec, frame->payload.size());
        ++index;
        continue;
      }
      support::ByteReader payload(frame->payload);
      const auto chunk = record::read_chunk(payload);
      if (!chunk) {
        std::printf("  chunk %zu: CORRUPT\n", index);
        break;
      }
      std::printf(
          "  chunk %zu: N=%llu moves=%zu with_next=%zu unmatched=%zu "
          "senders=%zu values=%zu (payload %zu B)\n",
          index, static_cast<unsigned long long>(chunk->num_matched),
          chunk->moves.size(), chunk->with_next.size(),
          chunk->unmatched.size(), chunk->epoch.size(),
          chunk->value_count(), frame->payload.size());
      if (!chunk->epoch.empty()) {
        std::printf("           epoch line:");
        for (std::size_t i = 0; i < chunk->epoch.size() && i < 6; ++i)
          std::printf(" (%d,%llu)", chunk->epoch[i].sender,
                      static_cast<unsigned long long>(
                          chunk->epoch[i].clock));
        if (chunk->epoch.size() > 6) std::printf(" ...");
        std::printf("\n");
      }
      total_events += chunk->num_matched;
      total_moves += chunk->moves.size();
      total_values += chunk->value_count();
      ++index;
    }
  }

  std::printf("\ntotals: %llu receive events, %llu moves (%.1f%% permutated),"
              " %llu stored values, %s on storage (%.3f bytes/event)\n",
              static_cast<unsigned long long>(total_events),
              static_cast<unsigned long long>(total_moves),
              total_events > 0
                  ? 100.0 * static_cast<double>(total_moves) /
                        static_cast<double>(total_events)
                  : 0.0,
              static_cast<unsigned long long>(total_values),
              support::format_bytes(
                  static_cast<double>(store.total_bytes())).c_str(),
              total_events > 0
                  ? static_cast<double>(store.total_bytes()) /
                        static_cast<double>(total_events)
                  : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    runtime::FileStore store(argv[1]);
    // FileStore discovers nothing on its own; rebuild keys from names is
    // out of scope — inspect freshly recorded directories instead.
    std::printf("inspecting existing record directory: %s\n\n", argv[1]);
    inspect(store);
    return 0;
  }

  std::printf("== recording a demo MCB run into a FileStore ==\n\n");
  const std::string dir = "/tmp/cdc_record_demo";
  runtime::FileStore store(dir);
  tool::ToolOptions options;
  options.chunk_target = 128;
  tool::Recorder recorder(9, &store, options);
  minimpi::Simulator::Config config;
  config.num_ranks = 9;
  config.noise_seed = 4;
  minimpi::Simulator sim(config, &recorder);
  apps::McbConfig mcb;
  mcb.grid_x = 3;
  mcb.grid_y = 3;
  mcb.particles_per_rank = 120;
  apps::run_mcb(sim, mcb);
  recorder.finalize();

  inspect(store);
  std::printf("\nrecord files left in %s\n", dir.c_str());
  return 0;
}
