// Record inspector: a release-style utility that dissects CDC record data.
//
// Records a small MCB run into a container-backed store (or inspects an
// existing record given on the command line) and prints, per stream and
// per chunk: event counts, permutation moves, with_next and unmatched-test
// table sizes, the epoch line, stored-value accounting, and compressed
// sizes. Handy when debugging the tool itself or sizing records.
//
//   $ ./record_inspector                     # self-contained demo
//   $ ./record_inspector --dir <path>        # inspect a FileStore record
//   $ ./record_inspector --container <file>  # inspect a record container
//   $ ./record_inspector --verify <file>     # CRC-verify a container
//   $ ./record_inspector --repack <in> <out> # salvage/compact a container
//   $ ./record_inspector --gaps <file> [quarantine.cdcq]
//                                            # degraded-replay gap report
//                                            # (+ cdc_gap_report.json)
//   $ ./record_inspector --stats             # instrumented demo run:
//                                            # pipeline report + trace JSON
//   $ ./record_inspector --stats <file>      # pipeline report of a container
//   $ ./record_inspector --corpus <file>     # corpus container stats:
//                                            # families, dedup ratio,
//                                            # chunk histogram
//
// The recording modes (the default demo and bare `--stats`) accept
//   --level <stored|fast|default|best>
// anywhere on the command line to pick the DEFLATE effort level.
// Unknown flags are rejected with the usage text and exit code 2.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/mcb.h"
#include "corpus/corpus.h"
#include "minimpi/simulator.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "record/chunk.h"
#include "runtime/storage.h"
#include "store/compression_service.h"
#include "store/container_reader.h"
#include "store/container_store.h"
#include "store/decompression_service.h"
#include "support/oracle.h"
#include "support/stats.h"
#include "tool/degraded.h"
#include "tool/frame.h"
#include "tool/frame_sink.h"
#include "tool/options.h"
#include "tool/pipeline_inspect.h"
#include "tool/recorder.h"
#include "tool/replayer.h"

namespace {

using namespace cdc;

void inspect(const runtime::RecordStore& store) {
  std::uint64_t total_events = 0;
  std::uint64_t total_moves = 0;
  std::uint64_t total_values = 0;

  for (const runtime::StreamKey& key : store.keys()) {
    const std::vector<std::uint8_t> bytes = store.read(key);
    std::printf("stream rank=%d callsite=%u: %zu bytes\n", key.rank,
                key.callsite, bytes.size());
    support::ByteReader reader(bytes);
    std::size_t index = 0;
    while (auto frame = tool::read_frame(reader)) {
      if (frame->codec != static_cast<std::uint8_t>(
                              tool::RecordCodec::kCdcFull)) {
        std::printf("  chunk %zu: codec %u (%zu bytes payload) — not CDC, "
                    "skipping detail\n",
                    index, frame->codec, frame->payload.size());
        ++index;
        continue;
      }
      support::ByteReader payload(frame->payload);
      const auto chunk = record::read_chunk(payload);
      if (!chunk) {
        std::printf("  chunk %zu: CORRUPT\n", index);
        break;
      }
      std::printf(
          "  chunk %zu: N=%llu moves=%zu with_next=%zu unmatched=%zu "
          "senders=%zu values=%zu (payload %zu B)\n",
          index, static_cast<unsigned long long>(chunk->num_matched),
          chunk->moves.size(), chunk->with_next.size(),
          chunk->unmatched.size(), chunk->epoch.size(),
          chunk->value_count(), frame->payload.size());
      if (!chunk->epoch.empty()) {
        std::printf("           epoch line:");
        for (std::size_t i = 0; i < chunk->epoch.size() && i < 6; ++i)
          std::printf(" (%d,%llu)", chunk->epoch[i].sender,
                      static_cast<unsigned long long>(
                          chunk->epoch[i].clock));
        if (chunk->epoch.size() > 6) std::printf(" ...");
        std::printf("\n");
      }
      total_events += chunk->num_matched;
      total_moves += chunk->moves.size();
      total_values += chunk->value_count();
      ++index;
    }
  }

  std::printf("\ntotals: %llu receive events, %llu moves (%.1f%% permutated),"
              " %llu stored values, %s on storage (%.3f bytes/event)\n",
              static_cast<unsigned long long>(total_events),
              static_cast<unsigned long long>(total_moves),
              total_events > 0
                  ? 100.0 * static_cast<double>(total_moves) /
                        static_cast<double>(total_events)
                  : 0.0,
              static_cast<unsigned long long>(total_values),
              support::format_bytes(
                  static_cast<double>(store.total_bytes())).c_str(),
              total_events > 0
                  ? static_cast<double>(store.total_bytes()) /
                        static_cast<double>(total_events)
                  : 0.0);
}

int inspect_container(const std::string& path) {
  const auto store = store::ContainerStore::open(path);
  std::printf("inspecting record container: %s\n\n", path.c_str());
  inspect(*store);
  return 0;
}

int verify_container(const std::string& path) {
  std::string error;
  const auto reader = store::ContainerReader::open(path, &error);
  if (reader == nullptr) {
    std::printf("FAILED: %s\n", error.c_str());
    return 1;
  }
  const store::VerifyReport report = reader->verify();
  std::printf("%s: %s\n", path.c_str(), report.summary().c_str());
  for (const std::string& problem : report.container_errors)
    std::printf("  container: %s\n", problem.c_str());
  for (const store::FrameDefect& defect : report.bad_frames) {
    if (defect.key_known)
      std::printf("  frame at offset %llu: stream (rank=%d, callsite=%u) "
                  "frame #%llu: %s\n",
                  static_cast<unsigned long long>(defect.offset),
                  defect.key.rank, defect.key.callsite,
                  static_cast<unsigned long long>(defect.seq),
                  defect.reason.c_str());
    else
      std::printf("  frame at offset %llu: (stream unidentifiable) %s\n",
                  static_cast<unsigned long long>(defect.offset),
                  defect.reason.c_str());
  }
  return report.ok ? 0 : 1;
}

int repack(const std::string& in_path, const std::string& out_path) {
  const store::RepackResult result =
      store::repack_container(in_path, out_path);
  if (!result.ok) {
    std::printf("repack FAILED: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("repacked %s -> %s: kept %llu frames, dropped %llu, "
              "%s -> %s\n",
              in_path.c_str(), out_path.c_str(),
              static_cast<unsigned long long>(result.frames_kept),
              static_cast<unsigned long long>(result.frames_dropped),
              support::format_bytes(
                  static_cast<double>(result.bytes_in)).c_str(),
              support::format_bytes(
                  static_cast<double>(result.bytes_out)).c_str());
  return verify_container(out_path);
}

/// `--gaps <container> [quarantine]`: degraded-replay coverage report —
/// human summary on stdout, machine-readable cdc_gap_report.json next to
/// the cwd. Exit 0 when the record is whole, 1 when degraded (so scripts
/// can branch), 2 on an unreadable file.
int gaps_container(const std::string& path,
                   const std::string& quarantine_path) {
  const tool::GapReport report = tool::inspect_gaps(path, quarantine_path);
  report.print(stdout);
  const std::string json = report.to_json();
  if (!obs::json_well_formed(json)) {
    std::printf("INTERNAL: gap report JSON is malformed\n");
    return 2;
  }
  if (!obs::JsonWriter::write_file("cdc_gap_report.json", json)) {
    std::printf("cannot write cdc_gap_report.json\n");
    return 2;
  }
  std::printf("gap report written to cdc_gap_report.json\n");
  return report.degraded() ? 1 : 0;
}

int emit_report(obs::PipelineReport& report,
                const std::string& report_path) {
  report.reconcile();
  report.print(stdout);
  const std::string json = report.to_json();
  if (!obs::json_well_formed(json)) {
    std::printf("INTERNAL: pipeline report JSON is malformed\n");
    return 1;
  }
  if (!obs::JsonWriter::write_file(report_path, json)) {
    std::printf("cannot write %s\n", report_path.c_str());
    return 1;
  }
  std::printf("\npipeline report written to %s\n", report_path.c_str());
  return report.reconciled ? 0 : 1;
}

/// `--stats <container>`: report on an existing container (no live
/// metrics, so only the container section and its internal checks).
int stats_container(const std::string& path) {
  obs::PipelineReport report;
  std::string error;
  if (!tool::fill_container_section(path, report, &error)) {
    std::printf("cannot open %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  return emit_report(report, "cdc_pipeline_report.json");
}

/// `--stats`: record an instrumented demo MCB run (metrics + trace ring +
/// parallel compression service into a container), then reconcile the
/// live stage/byte accounting against the container on disk.
int stats_demo(compress::DeflateLevel level) {
  std::printf("== instrumented demo MCB run (record + container, "
              "deflate level %.*s) ==\n\n",
              static_cast<int>(compress::to_string(level).size()),
              compress::to_string(level).data());
  const std::string file = "/tmp/cdc_record_stats.cdcc";
  obs::Registry::global().reset_values();
  obs::TraceBuffer ring(1 << 16);
  obs::install_trace(&ring);
  {
    store::ContainerStore container(file);
    store::CompressionService::Config service_config;
    service_config.workers = 2;
    service_config.level = level;
    store::CompressionService service(&container, service_config);
    tool::AsyncFrameSink sink(&service);
    tool::ToolOptions options;
    options.chunk_target = 128;
    options.level = level;
    tool::Recorder recorder(9, &container, options, &sink);
    minimpi::Simulator::Config config;
    config.num_ranks = 9;
    config.noise_seed = 4;
    minimpi::Simulator sim(config, &recorder);
    apps::McbConfig mcb;
    mcb.grid_x = 3;
    mcb.grid_y = 3;
    mcb.particles_per_rank = 120;
    apps::run_mcb(sim, mcb);
    recorder.finalize();
    service.drain();
    container.seal();
  }
  // Replay the sealed container so the decode side of the report is live
  // too: read_frame's inflate stage fills record.stage.inflate.* and the
  // report prints decode MB/s next to the encoder's deflate MB/s.
  {
    const auto replay_store = store::ContainerStore::open(file);
    tool::ToolOptions options;
    options.chunk_target = 128;
    options.level = level;
    tool::Replayer replayer(9, replay_store.get(), options);
    minimpi::Simulator::Config config;
    config.num_ranks = 9;
    config.noise_seed = 7;  // replay pins the order under different noise
    minimpi::Simulator sim(config, &replayer);
    apps::McbConfig mcb;
    mcb.grid_x = 3;
    mcb.grid_y = 3;
    mcb.particles_per_rank = 120;
    apps::run_mcb(sim, mcb);
    if (!replayer.fully_replayed()) {
      std::printf("INTERNAL: demo replay left unconsumed record\n");
      return 1;
    }
  }
  obs::install_trace(nullptr);  // quiesce before export

  obs::PipelineReport report =
      obs::PipelineReport::from_snapshot(obs::Registry::global().snapshot());
  std::string error;
  if (!tool::fill_container_section(file, report, &error)) {
    std::printf("cannot re-open %s: %s\n", file.c_str(), error.c_str());
    return 1;
  }

  const std::string trace =
      ring.export_chrome_json({.virtual_time = false, .include_args = true});
  if (!obs::json_well_formed(trace)) {
    std::printf("INTERNAL: trace JSON is malformed\n");
    return 1;
  }
  if (!obs::JsonWriter::write_file("cdc_trace.json", trace)) {
    std::printf("cannot write cdc_trace.json\n");
    return 1;
  }
  std::printf("trace: %zu events (%llu overwritten) -> cdc_trace.json "
              "(load in Perfetto / chrome://tracing)\n\n",
              ring.size(), static_cast<unsigned long long>(ring.dropped()));
  return emit_report(report, "cdc_pipeline_report.json");
}

/// `--window LO:HI`: windowed-replay demo. Records the demo MCB run into
/// an epoch-indexed container, full-replays it, then replays only epochs
/// [LO, HI) — every stream's bytes come from the epoch-index seek, so the
/// windowed run reads O(window) bytes, not O(record). Each stream's
/// verified window slice is oracle-checked event-for-event against the
/// same interval of the full replay. Exit 0 when every slice matches.
int window_demo(compress::DeflateLevel level, std::uint64_t lo,
                std::uint64_t hi) {
  std::printf("== windowed replay of epochs [%llu, %llu) of a demo MCB "
              "run ==\n\n",
              static_cast<unsigned long long>(lo),
              static_cast<unsigned long long>(hi));
  const std::string file = "/tmp/cdc_record_window.cdcc";
  apps::McbConfig mcb;
  mcb.grid_x = 3;
  mcb.grid_y = 3;
  mcb.particles_per_rank = 120;
  tool::ToolOptions options;
  options.chunk_target = 128;
  options.level = level;
  {
    store::ContainerStore container(file);
    store::CompressionService::Config service_config;
    service_config.workers = 2;
    service_config.level = level;
    store::CompressionService service(&container, service_config);
    tool::AsyncFrameSink sink(&service);
    tool::Recorder recorder(9, &container, options, &sink);
    minimpi::Simulator::Config config;
    config.num_ranks = 9;
    config.noise_seed = 4;
    minimpi::Simulator sim(config, &recorder);
    apps::run_mcb(sim, mcb);
    recorder.finalize();
    service.drain();
    container.seal();
  }

  const auto store = store::ContainerStore::open(file);
  if (store->reader() == nullptr || !store->reader()->epoch_index_ok()) {
    std::printf("FAILED: sealed container has no usable epoch index\n");
    return 1;
  }

  // Full replay: the reference trace the window slices are checked against.
  tool::Replayer full(9, store.get(), options);
  support::OrderProbe full_probe(&full);
  {
    minimpi::Simulator::Config config;
    config.num_ranks = 9;
    config.noise_seed = 7;
    minimpi::Simulator sim(config, &full_probe);
    apps::run_mcb(sim, mcb);
  }
  if (!full.fully_replayed()) {
    std::printf("FAILED: full replay left unconsumed record\n");
    return 1;
  }
  std::uint64_t epochs = 0;
  for (const auto& [key, stats] : full.stream_totals())
    epochs = std::max(epochs, stats.chunks);
  if (lo >= epochs || hi <= lo) {
    std::printf("window [%llu, %llu) is empty or past the record "
                "(deepest stream has %llu epochs)\n",
                static_cast<unsigned long long>(lo),
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(epochs));
    return 2;
  }
  if (hi > epochs) hi = epochs;

  // How much of the record the seek actually touches — and a parallel
  // decode of the window through the DecompressionService (the replay
  // side's twin of the recording CompressionService).
  std::uint64_t window_stored = 0;
  std::uint64_t window_raw = 0;
  store::DecompressionService::Config decode_config;
  decode_config.workers = 2;
  store::DecompressionService decode(decode_config);
  for (const runtime::StreamKey& key : store->keys()) {
    std::vector<std::uint8_t> bytes = store->read_prefix(key, hi);
    window_stored += bytes.size();
    decode.submit(
        key,
        [bytes = std::move(bytes)](std::vector<std::uint8_t> reuse) {
          reuse.clear();
          support::ByteReader reader(bytes);
          while (auto frame = tool::read_frame(reader))
            reuse.insert(reuse.end(), frame->payload.begin(),
                         frame->payload.end());
          return reuse;
        },
        [&window_raw](const runtime::StreamKey&,
                      std::span<const std::uint8_t> raw) {
          window_raw += raw.size();
        });
  }
  decode.drain();
  const std::uint64_t total_stored = store->total_bytes();
  std::printf("record  : %zu streams, %llu epochs deep, %s framed\n",
              store->keys().size(),
              static_cast<unsigned long long>(epochs),
              support::format_bytes(
                  static_cast<double>(total_stored)).c_str());
  std::printf("seek    : epochs [0, %llu) cover %s (%.1f%% of the record); "
              "%llu decode jobs on %zu workers -> %s raw\n",
              static_cast<unsigned long long>(hi),
              support::format_bytes(
                  static_cast<double>(window_stored)).c_str(),
              total_stored > 0 ? 100.0 * static_cast<double>(window_stored) /
                                     static_cast<double>(total_stored)
                               : 0.0,
              static_cast<unsigned long long>(decode.stats().jobs),
              decode.stats().workers,
              support::format_bytes(static_cast<double>(window_raw)).c_str());

  // Windowed replay under yet another schedule; the stream bytes must come
  // from the epoch-index seek, so the fallback counter must not move.
  obs::Counter& fallbacks = obs::counter("store.container.epoch_fallbacks");
  const std::uint64_t fallbacks_before = fallbacks.value();
  tool::Replayer window(9, store.get(), options);
  window.replay_window(lo, hi);
  support::OrderProbe window_probe(&window);
  {
    minimpi::Simulator::Config config;
    config.num_ranks = 9;
    config.noise_seed = 11;
    minimpi::Simulator sim(config, &window_probe);
    apps::run_mcb(sim, mcb);
  }
  if (fallbacks.value() != fallbacks_before) {
    std::printf("FAILED: windowed replay fell back to a sequential read\n");
    return 1;
  }

  // Slice both traces to each stream's verified [begin, end) and compare.
  support::Trace full_slice;
  support::Trace window_slice;
  std::size_t sliced_streams = 0;
  for (const auto& [key, slice] : window.window_slices()) {
    if (slice.end == slice.begin) continue;
    const auto full_it = full_probe.trace().find(key);
    const auto window_it = window_probe.trace().find(key);
    if (full_it == full_probe.trace().end() ||
        window_it == window_probe.trace().end() ||
        full_it->second.size() < slice.end ||
        window_it->second.size() < slice.end) {
      std::printf("FAILED: slice [%llu, %llu) runs past the trace of "
                  "stream (rank=%d, callsite=%u)\n",
                  static_cast<unsigned long long>(slice.begin),
                  static_cast<unsigned long long>(slice.end), key.rank,
                  key.callsite);
      return 1;
    }
    full_slice[key].assign(
        full_it->second.begin() + static_cast<std::ptrdiff_t>(slice.begin),
        full_it->second.begin() + static_cast<std::ptrdiff_t>(slice.end));
    window_slice[key].assign(
        window_it->second.begin() + static_cast<std::ptrdiff_t>(slice.begin),
        window_it->second.begin() + static_cast<std::ptrdiff_t>(slice.end));
    ++sliced_streams;
  }
  const support::OracleReport oracle =
      support::check_equivalence(full_slice, window_slice);
  if (!oracle.ok || oracle.events_compared == 0) {
    std::printf("FAILED: %s\n",
                oracle.ok ? "window verified zero events"
                          : oracle.summary().c_str());
    return 1;
  }
  std::printf("verified: %llu events across %zu stream slices match the "
              "full replay\n",
              static_cast<unsigned long long>(oracle.events_compared),
              sliced_streams);
  std::printf("\nwindow container left at %s\n", file.c_str());
  return 0;
}

/// `--corpus <file>`: corpus container stats — families, members, dedup
/// ratio, per-encoding stream counts, and a log2 chunk-size histogram.
/// Exit 0 for a healthy corpus, 1 when salvage left unreadable members,
/// 2 when the file cannot be opened as a corpus.
int corpus_stats(const std::string& path) {
  std::string error;
  const auto reader = corpus::CorpusReader::open(path, &error);
  if (reader == nullptr) {
    std::printf("cannot open corpus %s: %s\n", path.c_str(), error.c_str());
    return 2;
  }
  const corpus::CorpusStats& stats = reader->stats();
  std::printf("corpus %s: %llu members in %llu families, %llu streams\n",
              path.c_str(), static_cast<unsigned long long>(stats.members),
              static_cast<unsigned long long>(stats.families),
              static_cast<unsigned long long>(stats.streams));
  std::printf("  %s raw -> %s stored in %s on disk (dedup %.2fx)\n",
              support::format_bytes(
                  static_cast<double>(stats.raw_bytes)).c_str(),
              support::format_bytes(
                  static_cast<double>(stats.stored_bytes)).c_str(),
              support::format_bytes(
                  static_cast<double>(reader->file_bytes())).c_str(),
              stats.dedup_ratio());
  std::printf("  streams by encoding:");
  const corpus::MemberEncoding encodings[] = {
      corpus::MemberEncoding::kChunks, corpus::MemberEncoding::kDeltaOnepass,
      corpus::MemberEncoding::kDeltaCorrecting,
      corpus::MemberEncoding::kSelfGzip, corpus::MemberEncoding::kRaw};
  for (const auto encoding : encodings) {
    const std::uint64_t n =
        stats.by_encoding[static_cast<std::size_t>(encoding)];
    if (n > 0)
      std::printf(" %.*s=%llu",
                  static_cast<int>(corpus::to_string(encoding).size()),
                  corpus::to_string(encoding).data(),
                  static_cast<unsigned long long>(n));
  }
  std::printf("\n");

  const std::vector<std::size_t> sizes = reader->chunk_sizes();
  if (!sizes.empty()) {
    std::printf("  chunk table: %llu chunks, %s unique content\n",
                static_cast<unsigned long long>(stats.chunk_count),
                support::format_bytes(
                    static_cast<double>(stats.chunk_bytes)).c_str());
    // Log2 size histogram, the usual CDC sanity view: the mass should sit
    // between min_size and max_size with a mode near avg_size.
    std::map<int, std::uint64_t> buckets;
    for (const std::size_t size : sizes) {
      int bucket = 0;
      for (std::size_t v = size; v > 1; v >>= 1) ++bucket;
      ++buckets[bucket];
    }
    for (const auto& [bucket, count] : buckets) {
      const std::size_t lo = bucket == 0 ? 0 : (std::size_t{1} << bucket);
      std::printf("    [%6zu, %6zu): %6llu chunks\n", lo,
                  std::size_t{1} << (bucket + 1),
                  static_cast<unsigned long long>(count));
    }
  }

  int unreadable = 0;
  for (const corpus::CorpusReader::Member& member : reader->members()) {
    std::printf("  member %3u %s%s family=%s%s%s\n", member.ordinal,
                member.name.empty() ? "(unnamed)" : member.name.c_str(),
                member.is_reference ? " [reference]" : "",
                member.family.c_str(),
                member.readable ? "" : " UNREADABLE: ",
                member.readable ? "" : member.damage.c_str());
    if (!member.readable) ++unreadable;
  }
  if (unreadable > 0)
    std::printf("  %d member(s) unreadable after salvage\n", unreadable);
  return unreadable > 0 ? 1 : 0;
}

int demo(compress::DeflateLevel level) {
  std::printf("== recording a demo MCB run into a record container "
              "(deflate level %.*s) ==\n\n",
              static_cast<int>(compress::to_string(level).size()),
              compress::to_string(level).data());
  const std::string file = "/tmp/cdc_record_demo.cdcc";
  {
    store::ContainerStore container(file);
    store::CompressionService::Config service_config;
    service_config.workers = 2;
    service_config.level = level;
    store::CompressionService service(&container, service_config);
    tool::AsyncFrameSink sink(&service);
    tool::ToolOptions options;
    options.chunk_target = 128;
    options.level = level;
    tool::Recorder recorder(9, &container, options, &sink);
    minimpi::Simulator::Config config;
    config.num_ranks = 9;
    config.noise_seed = 4;
    minimpi::Simulator sim(config, &recorder);
    apps::McbConfig mcb;
    mcb.grid_x = 3;
    mcb.grid_y = 3;
    mcb.particles_per_rank = 120;
    apps::run_mcb(sim, mcb);
    recorder.finalize();
    service.drain();
    container.seal();

    inspect(container);
    const auto stats = service.stats();
    std::printf("\ncompression service: %llu chunks on %zu workers, "
                "%s raw -> %s stored\n",
                static_cast<unsigned long long>(stats.jobs), stats.workers,
                support::format_bytes(
                    static_cast<double>(stats.raw_bytes)).c_str(),
                support::format_bytes(
                    static_cast<double>(stats.encoded_bytes)).c_str());
  }
  std::printf("\nrecord container left at %s; verifying it:\n", file.c_str());
  return verify_container(file);
}

int usage(const char* prog, int code) {
  std::printf(
      "usage: %s [mode] [--level <stored|fast|default|best>]\n"
      "modes:\n"
      "  (none)                 record and dissect a demo MCB run\n"
      "  --dir <path>           inspect a FileStore record directory\n"
      "  --container <file>     inspect a record container\n"
      "  --verify <file>        CRC-verify a container\n"
      "  --repack <in> <out>    salvage/compact a container\n"
      "  --gaps <file> [quarantine]\n"
      "                         degraded-replay gap report (+ JSON)\n"
      "  --stats [container]    pipeline report (demo run, or of a file)\n"
      "  --window <LO:HI>       windowed-replay demo: replay only epochs\n"
      "                         [LO, HI) via the epoch-index seek and\n"
      "                         oracle-check the slices vs a full replay\n"
      "  --corpus <file>        corpus stats: families, dedup ratio,\n"
      "                         chunk histogram, member health\n"
      "  --help                 this text\n"
      "--level applies to the recording modes (demo and bare --stats).\n",
      prog);
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  // Pull an optional `--level <name>` pair out of argv (it applies to the
  // recording modes); everything else keeps its relative order for the
  // positional dispatch below.
  cdc::compress::DeflateLevel level = cdc::compress::DeflateLevel::kDefault;
  for (int i = 1; i < argc;) {
    if (std::strcmp(argv[i], "--level") == 0) {
      if (i + 1 >= argc) {
        std::printf("--level needs a value (stored|fast|default|best)\n");
        return 2;
      }
      const auto parsed =
          cdc::compress::deflate_level_from_name(argv[i + 1]);
      if (!parsed) {
        std::printf("unknown --level '%s' (stored|fast|default|best)\n",
                    argv[i + 1]);
        return 2;
      }
      level = *parsed;
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
    } else {
      ++i;
    }
  }
  // Every flag must be one the dispatch below understands: an unknown
  // flag is an error, not something to silently ignore.
  static const char* const known_flags[] = {
      "--dir",  "--container", "--verify", "--repack",
      "--gaps", "--stats",     "--corpus", "--window", "--help"};
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') continue;
    bool known = false;
    for (const char* flag : known_flags)
      known = known || std::strcmp(argv[i], flag) == 0;
    if (!known) {
      std::printf("unknown flag '%s'\n", argv[i]);
      return usage(argv[0], 2);
    }
  }
  const auto is = [&](int i, const char* flag) {
    return i < argc && std::strcmp(argv[i], flag) == 0;
  };
  if (is(1, "--help")) return usage(argv[0], 0);
  if (is(1, "--container") && argc == 3) return inspect_container(argv[2]);
  if (is(1, "--verify") && argc == 3) return verify_container(argv[2]);
  if (is(1, "--repack") && argc == 4) return repack(argv[2], argv[3]);
  if (is(1, "--gaps") && (argc == 3 || argc == 4))
    return gaps_container(argv[2], argc == 4 ? argv[3] : "");
  if (is(1, "--stats") && argc == 2) return stats_demo(level);
  if (is(1, "--stats") && argc == 3) return stats_container(argv[2]);
  if (is(1, "--corpus") && argc == 3) return corpus_stats(argv[2]);
  if (is(1, "--window") && argc == 3) {
    char* colon = nullptr;
    const unsigned long long lo = std::strtoull(argv[2], &colon, 10);
    if (colon == argv[2] || *colon != ':') {
      std::printf("--window needs LO:HI (e.g. --window 2:5)\n");
      return 2;
    }
    char* end = nullptr;
    const unsigned long long hi = std::strtoull(colon + 1, &end, 10);
    if (end == colon + 1 || *end != '\0') {
      std::printf("--window needs LO:HI (e.g. --window 2:5)\n");
      return 2;
    }
    // A half-open window needs LO < HI: 60:40 (reversed) and 5:5 (empty)
    // are operator errors, not runs with nothing to do.
    if (lo >= hi) {
      std::printf("--window needs LO < HI, got %llu:%llu\n", lo, hi);
      return 2;
    }
    return window_demo(level, lo, hi);
  }
  if (is(1, "--dir") && argc == 3) {
    runtime::FileStore store(argv[2]);
    // FileStore discovers nothing on its own; rebuild keys from names is
    // out of scope — inspect freshly recorded directories instead.
    std::printf("inspecting existing record directory: %s\n\n", argv[2]);
    inspect(store);
    return 0;
  }
  if (argc > 1) return usage(argv[0], 2);
  return demo(level);
}
