#include "apps/jacobi.h"

#include <cmath>
#include <cstring>
#include <vector>

#include "support/check.h"

namespace cdc::apps {

namespace {

using minimpi::Comm;
using minimpi::Rank;
using minimpi::Request;
using minimpi::Task;

// Halo direction tags (the receiver's side of the exchange). Each tag has
// exactly one possible sender, which is what makes the ANY_SOURCE receives
// hidden-deterministic.
enum Direction : int { kWest = 0, kEast = 1, kNorth = 2, kSouth = 3 };
constexpr int kNumDirections = 4;

std::vector<std::uint8_t> pack_doubles(const std::vector<double>& values) {
  std::vector<std::uint8_t> bytes(values.size() * sizeof(double));
  std::memcpy(bytes.data(), values.data(), bytes.size());
  return bytes;
}

std::vector<double> unpack_doubles(std::span<const std::uint8_t> bytes) {
  CDC_CHECK(bytes.size() % sizeof(double) == 0);
  std::vector<double> values(bytes.size() / sizeof(double));
  std::memcpy(values.data(), bytes.data(), bytes.size());
  return values;
}

struct SharedResult {
  double residual = 0.0;
};

Task jacobi_rank(Comm& comm, JacobiConfig cfg, SharedResult* shared) {
  const Rank rank = comm.rank();
  const int gx = cfg.grid_x;
  const int cx = static_cast<int>(rank) % gx;
  const int cy = static_cast<int>(rank) / gx;
  const int nx = cfg.local_nx;
  const int ny = cfg.local_ny;

  Rank neighbour[kNumDirections] = {-1, -1, -1, -1};
  if (cx > 0) neighbour[kWest] = rank - 1;
  if (cx + 1 < gx) neighbour[kEast] = rank + 1;
  if (cy > 0) neighbour[kNorth] = rank - gx;
  if (cy + 1 < cfg.grid_y) neighbour[kSouth] = rank + gx;

  // (nx+2) x (ny+2) including halo cells; row-major.
  const int stride = nx + 2;
  std::vector<double> u(static_cast<std::size_t>(stride) * (ny + 2), 0.0);
  std::vector<double> u_next = u;
  const auto at = [&](std::vector<double>& grid, int i, int j) -> double& {
    return grid[static_cast<std::size_t>(j) * stride +
                static_cast<std::size_t>(i)];
  };
  // Source term: a smooth bump that differs per global position.
  const auto source = [&](int i, int j) {
    const double x = (cx * nx + i - 1 + 0.5) / (gx * nx);
    const double y = (cy * ny + j - 1 + 0.5) / (cfg.grid_y * ny);
    return std::sin(3.1415926 * x) * std::sin(3.1415926 * y);
  };

  double residual = 0.0;
  for (int iter = 0; iter < cfg.iterations; ++iter) {
    // Send boundary strips to every neighbour.
    for (int d = 0; d < kNumDirections; ++d) {
      if (neighbour[d] < 0) continue;
      std::vector<double> strip;
      switch (d) {
        case kWest:
          for (int j = 1; j <= ny; ++j) strip.push_back(at(u, 1, j));
          break;
        case kEast:
          for (int j = 1; j <= ny; ++j) strip.push_back(at(u, nx, j));
          break;
        case kNorth:
          for (int i = 1; i <= nx; ++i) strip.push_back(at(u, i, 1));
          break;
        default:
          for (int i = 1; i <= nx; ++i) strip.push_back(at(u, i, ny));
          break;
      }
      // The receiver's direction is the mirror of ours.
      const int mirror = d ^ 1;
      comm.isend(neighbour[d], mirror, pack_doubles(strip));
    }

    // Post wildcard receives — the tag alone identifies the halo, so the
    // order below is deterministic although ANY_SOURCE is used (§6.3).
    Request recvs[kNumDirections];
    for (int d = 0; d < kNumDirections; ++d)
      if (neighbour[d] >= 0) recvs[d] = comm.irecv(minimpi::kAnySource, d);

    for (int d = 0; d < kNumDirections; ++d) {
      if (neighbour[d] < 0) continue;
      auto result = co_await comm.wait(recvs[d], kJacobiHaloCallsite);
      const std::vector<double> strip =
          unpack_doubles(result.completions[0].payload);
      switch (d) {
        case kWest:
          for (int j = 1; j <= ny; ++j) at(u, 0, j) = strip[j - 1];
          break;
        case kEast:
          for (int j = 1; j <= ny; ++j) at(u, nx + 1, j) = strip[j - 1];
          break;
        case kNorth:
          for (int i = 1; i <= nx; ++i) at(u, i, 0) = strip[i - 1];
          break;
        default:
          for (int i = 1; i <= nx; ++i) at(u, i, ny + 1) = strip[i - 1];
          break;
      }
    }

    // Jacobi sweep.
    residual = 0.0;
    for (int j = 1; j <= ny; ++j) {
      for (int i = 1; i <= nx; ++i) {
        const double updated =
            0.25 * (at(u, i - 1, j) + at(u, i + 1, j) + at(u, i, j - 1) +
                    at(u, i, j + 1) + source(i, j));
        residual += std::abs(updated - at(u, i, j));
        at(u_next, i, j) = updated;
      }
    }
    std::swap(u, u_next);
    co_await comm.compute(static_cast<double>(nx) * ny * cfg.cell_cost);
  }

  std::vector<double> contributions = {residual};
  std::vector<double> sums =
      co_await comm.allreduce_sum(std::move(contributions));
  if (rank == 0) shared->residual = sums[0];
}

}  // namespace

JacobiResult run_jacobi(minimpi::Simulator& sim, const JacobiConfig& config) {
  CDC_CHECK(config.grid_x * config.grid_y == sim.size());
  auto shared = std::make_shared<SharedResult>();
  sim.set_program([config, shared](Comm& comm) {
    return jacobi_rank(comm, config, shared.get());
  });
  const minimpi::Simulator::Stats stats = sim.run();

  JacobiResult result;
  result.residual = shared->residual;
  result.iterations = static_cast<std::uint64_t>(config.iterations);
  result.elapsed = stats.end_time;
  result.messages = stats.messages_sent;
  return result;
}

}  // namespace cdc::apps
