// Jacobi/Poisson solver with hidden-deterministic communication (§6.3).
//
// Solves Poisson's equation on a 2-D grid with the Jacobi iteration,
// distributed over a 2-D rank grid with halo exchange. Like the Himeno-
// style application the paper records, the halo receives are posted with
// MPI_ANY_SOURCE even though each direction's message is identified by its
// tag — so the actual message-receive order is deterministic, but no
// record-and-replay tool can know that without observing the run (hidden
// determinism). CDC's LP encoding all but eliminates the record for this
// regular pattern (Figure 17: 2 MB vs gzip's 91 MB at 6,114 processes).
#pragma once

#include <cstdint>

#include "minimpi/simulator.h"

namespace cdc::apps {

struct JacobiConfig {
  int grid_x = 4;   ///< rank grid width
  int grid_y = 4;   ///< rank grid height
  int local_nx = 16;  ///< interior cells per rank, x
  int local_ny = 16;  ///< interior cells per rank, y
  int iterations = 1000;  ///< the paper records 1K iterations
  double cell_cost = 5.0e-9;  ///< virtual seconds per cell update
};

inline constexpr minimpi::CallsiteId kJacobiHaloCallsite = 1;

struct JacobiResult {
  double residual = 0.0;  ///< deterministic checksum of the solve
  std::uint64_t iterations = 0;
  double elapsed = 0.0;
  std::uint64_t messages = 0;
};

/// Installs the Jacobi program on every rank of `sim` and runs it.
JacobiResult run_jacobi(minimpi::Simulator& sim, const JacobiConfig& config);

}  // namespace cdc::apps
