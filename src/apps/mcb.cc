#include "apps/mcb.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "support/check.h"

namespace cdc::apps {

namespace {

using minimpi::Comm;
using minimpi::Rank;
using minimpi::Request;
using minimpi::Task;

constexpr int kParticleTag = 10;
constexpr int kDoneTag = 11;
constexpr int kStopTag = 12;

/// A particle in flight. Carries its own RNG state so that its trajectory
/// is a pure function of its state — independent of the order in which
/// ranks process particles. Trivially copyable: sent as a raw payload.
struct Particle {
  double x = 0.0;
  double y = 0.0;
  double weight = 1.0;
  std::uint64_t rng = 0;
  std::int32_t segments_left = 0;
  std::int32_t padding = 0;
};
static_assert(std::is_trivially_copyable_v<Particle>);

/// splitmix64 step: the particle-carried RNG.
std::uint64_t next_u64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double next_unit(std::uint64_t& state) noexcept {
  return static_cast<double>(next_u64(state) >> 11) * 0x1.0p-53;
}

struct SharedResult {
  double tally = 0.0;
  double tracks = 0.0;
  double stop_time = 0.0;  ///< virtual time when global completion decided
};

/// Advances one track segment; returns the tally deposit.
double track_segment(Particle& p, int grid_x, int grid_y) {
  const std::uint64_t dir = next_u64(p.rng) & 3;
  const double r = 0.05 + 0.85 * next_unit(p.rng);
  switch (dir) {
    case 0: p.x += r; break;
    case 1: p.x -= r; break;
    case 2: p.y += r; break;
    default: p.y -= r; break;
  }
  // Periodic global boundaries (toroidal domain).
  const auto gx = static_cast<double>(grid_x);
  const auto gy = static_cast<double>(grid_y);
  if (p.x < 0.0) p.x += gx;
  if (p.x >= gx) p.x -= gx;
  if (p.y < 0.0) p.y += gy;
  if (p.y >= gy) p.y -= gy;
  const double deposit = p.weight * r;
  p.weight *= 0.995;
  --p.segments_left;
  return deposit;
}

Task mcb_rank(Comm& comm, McbConfig cfg, SharedResult* shared) {
  const Rank rank = comm.rank();
  const int gx = cfg.grid_x;
  const int gy = cfg.grid_y;
  const int cx = static_cast<int>(rank) % gx;
  const int cy = static_cast<int>(rank) / gx;

  // Neighbour ranks: periodic (toroidal) 4-neighbourhood, so every rank
  // has the same communication degree and clocks advance at equal rates
  // across ranks (as in the paper's interior-dominated 3,072-rank runs).
  std::vector<Rank> neighbours;
  const auto cell_rank = [gx](int x, int y) {
    return static_cast<Rank>(y * gx + x);
  };
  constexpr std::pair<int, int> kOffsets[] = {{-1, 0}, {1, 0}, {0, -1}, {0, 1}};
  for (const auto& [dx, dy] : kOffsets) {
    const int nx = (cx + dx + gx) % gx;
    const int ny = (cy + dy + gy) % gy;
    const Rank nb = cell_rank(nx, ny);
    if (nb == rank) continue;  // degenerate 1-wide grids
    if (std::find(neighbours.begin(), neighbours.end(), nb) ==
        neighbours.end())
      neighbours.push_back(nb);
  }

  // Deterministic particle initialisation (independent of the noise seed:
  // the physics is identical across runs, only message timing varies).
  std::uint64_t init_rng = cfg.physics_seed * 1000003ull +
                           static_cast<std::uint64_t>(rank);
  std::deque<Particle> local;
  for (int i = 0; i < cfg.particles_per_rank; ++i) {
    Particle p;
    p.x = cx + next_unit(init_rng);
    p.y = cy + next_unit(init_rng);
    p.weight = 0.5 + next_unit(init_rng);
    p.rng = next_u64(init_rng);
    p.segments_left =
        1 + static_cast<std::int32_t>(next_u64(init_rng) %
                                      (2 * cfg.segments_per_particle - 1));
    local.push_back(p);
  }

  // Pre-post particle receives for every neighbour (§2.1: "posts
  // non-blocking receives for all possible incoming messages"); several
  // outstanding receives per peer so bursts drain in one Testsome.
  std::vector<Request> particle_recvs;
  std::vector<Rank> recv_owner;
  particle_recvs.reserve(neighbours.size() *
                         static_cast<std::size_t>(cfg.recvs_per_neighbour));
  for (const Rank nb : neighbours) {
    for (int i = 0; i < cfg.recvs_per_neighbour; ++i) {
      particle_recvs.push_back(comm.irecv(nb, kParticleTag));
      recv_owner.push_back(nb);
    }
  }

  // Exit-coordination plumbing. Rank 0 pre-posts a pool of wildcard
  // receives for completion counts so bursts from thousands of ranks match
  // posted requests instead of piling up in the unexpected queue.
  Request stop_recv = comm.irecv(0, kStopTag);
  std::vector<Request> done_pool;
  if (rank == 0) {
    const int pool = std::min(64, std::max(4, comm.size() / 4));
    for (int i = 0; i < pool; ++i)
      done_pool.push_back(comm.irecv(minimpi::kAnySource, kDoneTag));
  }
  const std::uint64_t born_total =
      static_cast<std::uint64_t>(comm.size()) *
      static_cast<std::uint64_t>(cfg.particles_per_rank);
  std::uint64_t done_total = 0;
  std::uint64_t absorbed_delta = 0;
  bool stop_sent = false;

  double tally = 0.0;
  std::uint64_t tracks = 0;
  bool stopped = false;
  int idle_rounds = 0;

  while (!stopped) {
    // Phase 1: process a bounded batch of local track segments.
    int processed = 0;
    while (!local.empty() && processed < cfg.tracks_per_poll) {
      Particle p = local.front();
      local.pop_front();
      tally += track_segment(p, gx, gy);
      ++tracks;
      ++processed;
      if (p.segments_left <= 0) {
        ++absorbed_delta;
        continue;
      }
      const int owner_x = static_cast<int>(p.x);
      const int owner_y = static_cast<int>(p.y);
      const Rank owner = static_cast<Rank>(owner_y * gx + owner_x);
      if (owner == rank) {
        local.push_back(p);
      } else {
        comm.isend(owner, kParticleTag, minimpi::to_payload(p));
      }
    }
    // An idle pass (no local particles) costs a full poll interval; a rank
    // that stays idle backs off exponentially (capped), like a polling
    // loop that yields while waiting for work or the stop message.
    if (processed > 0) {
      idle_rounds = 0;
      co_await comm.compute(static_cast<double>(processed) * cfg.track_cost);
    } else {
      idle_rounds = std::min(idle_rounds + 1, 2);
      co_await comm.compute(static_cast<double>(cfg.tracks_per_poll << idle_rounds) *
                            cfg.track_cost);
    }

    // Phase 2: stream completion counts to rank 0, batched to keep the
    // coordinator's inbox manageable at scale.
    if (absorbed_delta > 0 && (local.empty() || absorbed_delta >= 64)) {
      comm.isend(0, kDoneTag, minimpi::to_payload(absorbed_delta));
      absorbed_delta = 0;
    }

    // Phase 3 (rank 0): drain completion counts; announce the stop when
    // every particle born has terminated.
    if (rank == 0) {
      auto counts = co_await comm.testsome(done_pool, kMcbDoneCallsite);
      for (const minimpi::Completion& c : counts.completions) {
        done_total += minimpi::from_payload<std::uint64_t>(c.payload);
        done_pool[c.span_index] = comm.irecv(minimpi::kAnySource, kDoneTag);
      }
      if (!stop_sent && done_total == born_total) {
        shared->stop_time = comm.now();
        for (Rank r = 0; r < comm.size(); ++r)
          comm.isend(r, kStopTag, {});
        stop_sent = true;
      }
    }

    // Phase 4: first-come-first-served particle arrivals (the paper's
    // Testsome loop); re-post each matched receive immediately.
    if (!particle_recvs.empty()) {
      auto arrivals = co_await comm.testsome(particle_recvs,
                                             kMcbParticleCallsite);
      for (const minimpi::Completion& c : arrivals.completions) {
        local.push_back(minimpi::from_payload<Particle>(c.payload));
        particle_recvs[c.span_index] =
            comm.irecv(recv_owner[c.span_index], kParticleTag);
      }
    }

    // Phase 5: check for the stop message.
    auto stop = co_await comm.test(stop_recv, kMcbStopCallsite);
    if (stop.flag) stopped = true;
  }

  // Deterministic global reduction of the order-sensitive local tallies.
  std::vector<double> contributions = {tally, static_cast<double>(tracks)};
  std::vector<double> sums =
      co_await comm.allreduce_sum(std::move(contributions));
  if (rank == 0) {
    shared->tally = sums[0];
    shared->tracks = sums[1];
  }
}

}  // namespace

McbResult run_mcb(minimpi::Simulator& sim, const McbConfig& config) {
  CDC_CHECK(config.grid_x * config.grid_y == sim.size());
  auto shared = std::make_shared<SharedResult>();
  sim.set_program([config, shared](Comm& comm) {
    return mcb_rank(comm, config, shared.get());
  });
  const minimpi::Simulator::Stats stats = sim.run();

  McbResult result;
  result.global_tally = shared->tally;
  result.total_tracks = static_cast<std::uint64_t>(shared->tracks);
  result.elapsed = stats.end_time;
  // Throughput over the productive phase: initialization to the moment
  // global completion is established. The subsequent stop broadcast and
  // final reduction are a fixed epilogue, not tracking work.
  const double active =
      shared->stop_time > 0.0 ? shared->stop_time : stats.end_time;
  result.active_time = active;
  result.tracks_per_sec = active > 0.0 ? shared->tracks / active : 0.0;
  result.messages = stats.messages_sent;
  return result;
}

}  // namespace cdc::apps
