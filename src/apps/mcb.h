// MCB-style Monte Carlo particle transport mini-app (§2.1).
//
// Reimplements the communication idiom of the CORAL MCB benchmark that the
// paper evaluates: a domain-decomposed particle Monte Carlo where each MPI
// rank
//   * pre-posts nonblocking receives for every possible incoming particle
//     message,
//   * processes a bounded batch of local particle track segments, then
//     polls MPI_Testsome first-come-first-served for newly arrived
//     particles, appends them to its local list and immediately re-posts
//     the receive,
//   * forwards particles that cross its domain boundary to the owning
//     neighbour with a nonblocking send, and
//   * participates in an asynchronous exit protocol (completion counts are
//     streamed to rank 0 with MPI_ANY_SOURCE receives; rank 0 broadcasts a
//     stop message once every particle born has terminated).
//
// Each particle carries its own RNG state, so its physics is independent
// of processing order; the only run-to-run variation under different
// network-noise seeds is the order in which track segments update the
// rank-local tally — and double-precision addition is not associative, so
// the global tally varies in the last bits exactly as the paper describes.
// Order-replay makes it bitwise reproducible.
#pragma once

#include <cstdint>

#include "minimpi/simulator.h"

namespace cdc::apps {

struct McbConfig {
  int grid_x = 4;  ///< rank grid width  (num_ranks = grid_x * grid_y)
  int grid_y = 4;  ///< rank grid height
  int particles_per_rank = 4000;  ///< weak scaling, as in §6.2
  int segments_per_particle = 12; ///< mean track segments until absorption
  int tracks_per_poll = 8;        ///< local work between Testsome polls
  int recvs_per_neighbour = 4;    ///< outstanding irecvs per neighbour
  double track_cost = 1.0e-6;     ///< virtual seconds per track segment
  std::uint64_t physics_seed = 12345;  ///< particle init (noise-independent)
};

/// MF callsites (the §4.4 identification keys).
inline constexpr minimpi::CallsiteId kMcbParticleCallsite = 1;
inline constexpr minimpi::CallsiteId kMcbDoneCallsite = 2;
inline constexpr minimpi::CallsiteId kMcbStopCallsite = 3;

struct McbResult {
  double global_tally = 0.0;       ///< order-sensitive in the last bits
  std::uint64_t total_tracks = 0;  ///< track segments processed
  double elapsed = 0.0;            ///< virtual seconds, whole run
  double active_time = 0.0;        ///< virtual seconds until completion
  double tracks_per_sec = 0.0;     ///< the paper's Figure 16 metric
  std::uint64_t messages = 0;
};

/// Installs the MCB program on every rank of `sim` and runs it.
McbResult run_mcb(minimpi::Simulator& sim, const McbConfig& config);

}  // namespace cdc::apps
