#include "apps/taskfarm.h"

#include <vector>

#include "support/check.h"

namespace cdc::apps {

namespace {

using minimpi::Comm;
using minimpi::Rank;
using minimpi::Request;
using minimpi::Task;

constexpr int kTaskTag = 20;
constexpr int kResultTag = 21;

struct WorkItem {
  std::int64_t id = 0;
  std::int32_t stop = 0;
  std::int32_t padding = 0;
};
static_assert(std::is_trivially_copyable_v<WorkItem>);

struct WorkResult {
  double value = 0.0;
  std::int64_t id = 0;
};
static_assert(std::is_trivially_copyable_v<WorkResult>);

std::uint64_t hash_id(std::uint64_t seed, std::int64_t id) noexcept {
  std::uint64_t x = seed ^ (static_cast<std::uint64_t>(id) * 0x9e3779b97f4a7c15ull);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct SharedResult {
  double accumulated = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t lost = 0;  ///< tasks written off on failed workers
};

Task master_rank(Comm& comm, TaskFarmConfig cfg, SharedResult* shared) {
  const int workers = comm.size() - 1;
  std::int64_t next_task = 0;
  std::int64_t outstanding = 0;

  const auto send_next = [&](Rank worker) {
    WorkItem item;
    if (next_task < cfg.tasks) {
      item.id = next_task++;
      ++outstanding;
    } else {
      item.stop = 1;
    }
    comm.isend(worker, kTaskTag, minimpi::to_payload(item));
    return item.stop == 0;
  };

  // One result receive per worker, re-posted after each delivery; workers
  // holding a stop marker drop out of the wait set.
  std::vector<Request> result_recvs(static_cast<std::size_t>(workers));
  std::vector<bool> active(static_cast<std::size_t>(workers), false);
  for (int w = 0; w < workers; ++w) {
    const Rank worker = static_cast<Rank>(w + 1);
    if (send_next(worker)) {
      result_recvs[static_cast<std::size_t>(w)] =
          comm.irecv(worker, kResultTag);
      active[static_cast<std::size_t>(w)] = true;
    }
  }

  while (outstanding > 0) {
    // Wait on the receives of currently active workers only.
    std::vector<Request> wait_set;
    std::vector<int> wait_worker;
    for (int w = 0; w < workers; ++w) {
      if (active[static_cast<std::size_t>(w)]) {
        wait_set.push_back(result_recvs[static_cast<std::size_t>(w)]);
        wait_worker.push_back(w);
      }
    }
    auto res = co_await comm.waitany(wait_set, kFarmResultCallsite);
    if (res.failed) {
      // ULFM shrink: write off the task each dead worker held and drop the
      // worker from the wait set; the farm continues on the survivors. A
      // timeout naming no culprit means nothing can be attributed — stop.
      bool shrunk = false;
      for (const Rank dead : res.failed_ranks) {
        const int w = static_cast<int>(dead) - 1;
        if (w < 0 || w >= workers || !active[static_cast<std::size_t>(w)])
          continue;
        active[static_cast<std::size_t>(w)] = false;
        --outstanding;
        ++shared->lost;
        shrunk = true;
      }
      if (!shrunk) break;
      continue;
    }
    const auto& completion = res.completions[0];
    const int w = wait_worker[completion.span_index];
    const auto result = minimpi::from_payload<WorkResult>(completion.payload);

    // Order-sensitive fold: FP multiply-accumulate is not associative.
    shared->accumulated = shared->accumulated * 1.0000000001 + result.value;
    ++shared->completed;
    --outstanding;

    const Rank worker = static_cast<Rank>(w + 1);
    if (send_next(worker)) {
      result_recvs[static_cast<std::size_t>(w)] =
          comm.irecv(worker, kResultTag);
    } else {
      active[static_cast<std::size_t>(w)] = false;
    }
  }
}

Task worker_rank(Comm& comm, TaskFarmConfig cfg) {
  for (;;) {
    Request req = comm.irecv(0, kTaskTag);
    auto res = co_await comm.wait(req, kFarmTaskCallsite);
    if (res.failed) break;  // the master died: no more work is coming
    const auto item =
        minimpi::from_payload<WorkItem>(res.completions[0].payload);
    if (item.stop != 0) break;

    // Deterministic per-item cost and value: only completion ORDER varies
    // between runs.
    const std::uint64_t h = hash_id(cfg.work_seed, item.id);
    const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
    co_await comm.compute(cfg.task_cost_mean * (0.25 + 1.5 * unit));
    WorkResult result;
    result.id = item.id;
    result.value = 1.0 + unit;
    comm.isend(0, kResultTag, minimpi::to_payload(result));
  }
}

}  // namespace

TaskFarmResult run_taskfarm(minimpi::Simulator& sim,
                            const TaskFarmConfig& config) {
  CDC_CHECK_MSG(sim.size() >= 2, "task farm needs a master and >=1 worker");
  auto shared = std::make_shared<SharedResult>();
  sim.set_program(0, [config, shared](Comm& comm) {
    return master_rank(comm, config, shared.get());
  });
  for (Rank r = 1; r < sim.size(); ++r) {
    sim.set_program(r, [config](Comm& comm) {
      return worker_rank(comm, config);
    });
  }
  const minimpi::Simulator::Stats stats = sim.run();

  TaskFarmResult result;
  result.accumulated = shared->accumulated;
  result.completed = shared->completed;
  result.tasks_lost = shared->lost;
  result.elapsed = stats.end_time;
  result.messages = stats.messages_sent;
  return result;
}

}  // namespace cdc::apps
