// Master/worker task farm — a third non-deterministic workload.
//
// A master rank hands work items to workers on demand and folds results
// into an order-sensitive accumulator as they arrive (MPI_Waitany over
// per-worker result receives, first come first served). Completion order
// depends on network noise, so the accumulated result varies in its last
// bits between runs — the same reproducibility problem as MCB (§2.1) in a
// different communication idiom: Waitany instead of Testsome, a single
// hot wildcard-ish callsite at the master, and strictly deterministic
// workers. Exercises the MF kinds the other apps do not.
//
// The farm is failure-aware (the ULFM shrink idiom): when a matching
// function reports failed ranks, the master writes off the tasks those
// workers held and keeps farming to the survivors, and a worker whose
// master died simply stops — so a run with a killed rank still completes,
// which is what makes this the rank-kill workload for the fuzzer and the
// degraded-replay bench.
#pragma once

#include <cstdint>

#include "minimpi/simulator.h"

namespace cdc::apps {

struct TaskFarmConfig {
  int tasks = 500;              ///< total work items
  double task_cost_mean = 4e-6; ///< virtual seconds per item (varies by item)
  std::uint64_t work_seed = 99; ///< deterministic per-item cost/value
};

inline constexpr minimpi::CallsiteId kFarmResultCallsite = 1;
inline constexpr minimpi::CallsiteId kFarmTaskCallsite = 2;

struct TaskFarmResult {
  double accumulated = 0.0;    ///< order-sensitive FP fold
  std::uint64_t completed = 0;
  std::uint64_t tasks_lost = 0;  ///< written off on failed workers
  double elapsed = 0.0;
  std::uint64_t messages = 0;
};

/// Rank 0 is the master; ranks 1..size-1 are workers.
TaskFarmResult run_taskfarm(minimpi::Simulator& sim,
                            const TaskFarmConfig& config);

}  // namespace cdc::apps
