// Lamport clocks and the total-order relation CDC derives from them.
//
// Definition 4 (paper §5): (i) on send, attach the current clock to the
// message, then increment by one; (ii) on receive, set the clock to the
// maximum of the received clock and the local clock, then increment by one.
//
// Definition 6: the reference order fm over receive events is
// (clock, sender rank) lexicographic — clock first, sender rank breaking
// ties. Because every send increments the sender's clock, successive sends
// from one rank carry strictly increasing clocks, so the pair
// (sender rank, clock) uniquely identifies a message; CDC uses it as the
// message identifier that survives application-level reordering (Fig 3).
#pragma once

#include <compare>
#include <cstdint>

namespace cdc::clock {

using ClockValue = std::uint64_t;

/// Per-process Lamport clock implementing Definition 4.
class LamportClock {
 public:
  /// Returns the clock value to piggyback on an outgoing message and
  /// advances the local clock (rule i).
  ClockValue on_send() noexcept {
    const ClockValue attached = clock_;
    ++clock_;
    return attached;
  }

  /// Folds a received piggyback clock into the local clock (rule ii).
  void on_receive(ClockValue received) noexcept {
    clock_ = (received > clock_ ? received : clock_) + 1;
  }

  /// Local events that should advance logical time (not required by the
  /// paper's rules but available for experimentation).
  void tick() noexcept { ++clock_; }

  [[nodiscard]] ClockValue value() const noexcept { return clock_; }

  void reset() noexcept { clock_ = 0; }

 private:
  ClockValue clock_ = 0;
};

/// The (sender rank, clock) pair piggybacked on every message: the unique
/// message identifier of §3.1 and the key of the reference order.
struct MessageId {
  std::int32_t sender = 0;
  ClockValue clock = 0;

  friend bool operator==(const MessageId&, const MessageId&) = default;
};

/// Definition 6: fm(e) < fm(f) iff clock(e) < clock(f), or clocks equal and
/// sender(e) < sender(f).
struct ReferenceOrderLess {
  bool operator()(const MessageId& a, const MessageId& b) const noexcept {
    if (a.clock != b.clock) return a.clock < b.clock;
    return a.sender < b.sender;
  }
};

}  // namespace cdc::clock
