// Vector clocks — the alternative §4.3 considers and rejects.
//
// "Another approach would be to use a Vector clock. Unfortunately, Vector
// clocks are not scalable [26]." A vector clock orders events *exactly*
// (e ≺ f iff VC(e) < VC(f) componentwise), which would make the reference
// order track causality perfectly — but each piggybacked message must
// carry one counter per process: 8 bytes × 3,072 ranks = 24 KiB on every
// message, versus CDC's single 8-byte Lamport clock. This implementation
// exists to make that trade-off measurable (see the piggyback-size test
// and microbench) and for experimentation with hybrid clock definitions.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "support/check.h"

namespace cdc::clock {

class VectorClock {
 public:
  VectorClock(std::int32_t rank, std::size_t num_ranks)
      : rank_(rank), components_(num_ranks, 0) {
    CDC_CHECK(rank >= 0 && static_cast<std::size_t>(rank) < num_ranks);
  }

  /// Advances the local component, then returns the vector to piggyback —
  /// the conventional Fidge/Mattern rule (the event's own tick is part of
  /// its timestamp, unlike the paper's Lamport Definition 4 which attaches
  /// before incrementing).
  std::vector<std::uint64_t> on_send() {
    ++components_[static_cast<std::size_t>(rank_)];
    return components_;
  }

  /// Folds a received vector in: componentwise max, then local increment.
  void on_receive(std::span<const std::uint64_t> received) {
    CDC_CHECK(received.size() == components_.size());
    for (std::size_t i = 0; i < components_.size(); ++i)
      components_[i] = std::max(components_[i], received[i]);
    ++components_[static_cast<std::size_t>(rank_)];
  }

  [[nodiscard]] std::span<const std::uint64_t> value() const noexcept {
    return components_;
  }

  /// Piggyback payload size per message — the scalability problem.
  [[nodiscard]] std::size_t piggyback_bytes() const noexcept {
    return components_.size() * sizeof(std::uint64_t);
  }

  /// Happens-before: a ≺ b iff a ≤ b componentwise and a ≠ b.
  static bool happens_before(std::span<const std::uint64_t> a,
                             std::span<const std::uint64_t> b) {
    CDC_CHECK(a.size() == b.size());
    bool strictly_less = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] > b[i]) return false;
      if (a[i] < b[i]) strictly_less = true;
    }
    return strictly_less;
  }

  /// Concurrent: neither happens-before the other.
  static bool concurrent(std::span<const std::uint64_t> a,
                         std::span<const std::uint64_t> b) {
    return !happens_before(a, b) && !happens_before(b, a) &&
           !std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  std::int32_t rank_;
  std::vector<std::uint64_t> components_;
};

}  // namespace cdc::clock
