// CRC-32 (ISO 3309 / ITU-T V.42, polynomial 0xEDB88320) as required by the
// gzip container (RFC 1952 §8).
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace cdc::compress {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    table[n] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

}  // namespace detail

/// Incrementally updatable CRC-32. `crc` starts at 0 for a fresh stream.
inline std::uint32_t crc32_update(std::uint32_t crc,
                                  std::span<const std::uint8_t> data) noexcept {
  std::uint32_t c = crc ^ 0xffffffffu;
  for (const std::uint8_t byte : data)
    c = detail::kCrcTable[(c ^ byte) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

inline std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept {
  return crc32_update(0, data);
}

}  // namespace cdc::compress
