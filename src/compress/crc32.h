// CRC-32 (ISO 3309 / ITU-T V.42, polynomial 0xEDB88320) as required by the
// gzip container (RFC 1952 §8), computed with the slicing technique:
// constexpr 256-entry tables (one per lane) let the hot loop fold 16 input
// bytes per iteration instead of one — the running state only enters the
// first four lookups, so the fold's latency is one round of parallel L1
// loads regardless of width. Worth >5x on record-sized buffers (every
// container frame, index footer, quarantine sidecar, and gzip member pays
// this checksum).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <span>

namespace cdc::compress {

namespace detail {

using CrcSlices = std::array<std::array<std::uint32_t, 256>, 16>;

constexpr CrcSlices make_crc_slices() {
  CrcSlices t{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    t[0][n] = c;
  }
  // t[k][n] = crc of byte n followed by k zero bytes: one table per lane
  // of the 16-byte fold below.
  for (std::size_t k = 1; k < t.size(); ++k)
    for (std::uint32_t n = 0; n < 256; ++n)
      t[k][n] = (t[k - 1][n] >> 8) ^ t[0][t[k - 1][n] & 0xffu];
  return t;
}

inline constexpr CrcSlices kCrcSlices = make_crc_slices();

// The byte-at-a-time table is kept as the tail loop and as the reference
// the microbenchmark compares the sliced loop against.
inline constexpr const std::array<std::uint32_t, 256>& kCrcTable =
    kCrcSlices[0];

/// One-byte-per-iteration reference update over raw (pre-inverted) state.
/// Exposed so tests and the microbench can compare against slicing-by-8.
inline std::uint32_t crc32_bytewise_raw(
    std::uint32_t c, std::span<const std::uint8_t> data) noexcept {
  for (const std::uint8_t byte : data)
    c = kCrcTable[(c ^ byte) & 0xffu] ^ (c >> 8);
  return c;
}

}  // namespace detail

/// Incrementally updatable CRC-32. `crc` starts at 0 for a fresh stream.
inline std::uint32_t crc32_update(std::uint32_t crc,
                                  std::span<const std::uint8_t> data) noexcept {
  using detail::kCrcSlices;
  std::uint32_t c = crc ^ 0xffffffffu;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  if constexpr (std::endian::native == std::endian::little) {
    // Fold 16 bytes per iteration from two unaligned 64-bit loads; the
    // running state only enters the lowest word, and all sixteen table
    // lookups are mutually independent.
    while (n >= 16) {
      std::uint64_t w0;
      std::uint64_t w1;
      std::memcpy(&w0, p, 8);
      std::memcpy(&w1, p + 8, 8);
      const auto a = static_cast<std::uint32_t>(w0) ^ c;
      const auto b = static_cast<std::uint32_t>(w0 >> 32);
      const auto d = static_cast<std::uint32_t>(w1);
      const auto e = static_cast<std::uint32_t>(w1 >> 32);
      c = kCrcSlices[15][a & 0xffu] ^ kCrcSlices[14][(a >> 8) & 0xffu] ^
          kCrcSlices[13][(a >> 16) & 0xffu] ^ kCrcSlices[12][a >> 24] ^
          kCrcSlices[11][b & 0xffu] ^ kCrcSlices[10][(b >> 8) & 0xffu] ^
          kCrcSlices[9][(b >> 16) & 0xffu] ^ kCrcSlices[8][b >> 24] ^
          kCrcSlices[7][d & 0xffu] ^ kCrcSlices[6][(d >> 8) & 0xffu] ^
          kCrcSlices[5][(d >> 16) & 0xffu] ^ kCrcSlices[4][d >> 24] ^
          kCrcSlices[3][e & 0xffu] ^ kCrcSlices[2][(e >> 8) & 0xffu] ^
          kCrcSlices[1][(e >> 16) & 0xffu] ^ kCrcSlices[0][e >> 24];
      p += 16;
      n -= 16;
    }
    // One 8-byte fold for the 8..15-byte remainder.
    if (n >= 8) {
      std::uint64_t word;
      std::memcpy(&word, p, 8);
      const auto lo = static_cast<std::uint32_t>(word) ^ c;
      const auto hi = static_cast<std::uint32_t>(word >> 32);
      c = kCrcSlices[7][lo & 0xffu] ^ kCrcSlices[6][(lo >> 8) & 0xffu] ^
          kCrcSlices[5][(lo >> 16) & 0xffu] ^ kCrcSlices[4][lo >> 24] ^
          kCrcSlices[3][hi & 0xffu] ^ kCrcSlices[2][(hi >> 8) & 0xffu] ^
          kCrcSlices[1][(hi >> 16) & 0xffu] ^ kCrcSlices[0][hi >> 24];
      p += 8;
      n -= 8;
    }
  } else {
    // Big-endian: compose the two words byte-by-byte; same fold.
    while (n >= 8) {
      const std::uint32_t lo =
          (static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24)) ^ c;
      const std::uint32_t hi = static_cast<std::uint32_t>(p[4]) |
                               (static_cast<std::uint32_t>(p[5]) << 8) |
                               (static_cast<std::uint32_t>(p[6]) << 16) |
                               (static_cast<std::uint32_t>(p[7]) << 24);
      c = kCrcSlices[7][lo & 0xffu] ^ kCrcSlices[6][(lo >> 8) & 0xffu] ^
          kCrcSlices[5][(lo >> 16) & 0xffu] ^ kCrcSlices[4][lo >> 24] ^
          kCrcSlices[3][hi & 0xffu] ^ kCrcSlices[2][(hi >> 8) & 0xffu] ^
          kCrcSlices[1][(hi >> 16) & 0xffu] ^ kCrcSlices[0][hi >> 24];
      p += 8;
      n -= 8;
    }
  }
  c = detail::crc32_bytewise_raw(c, {p, n});
  return c ^ 0xffffffffu;
}

inline std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept {
  return crc32_update(0, data);
}

/// The seed's one-byte-per-iteration implementation, kept callable so the
/// microbench records old-vs-new on the same machine (BENCH_micro.json).
inline std::uint32_t crc32_update_bytewise(
    std::uint32_t crc, std::span<const std::uint8_t> data) noexcept {
  return detail::crc32_bytewise_raw(crc ^ 0xffffffffu, data) ^ 0xffffffffu;
}

}  // namespace cdc::compress
