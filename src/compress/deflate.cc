#include "compress/deflate.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "compress/crc32.h"
#include "compress/deflate_tables.h"
#include "compress/huffman.h"
#include "support/bitstream.h"
#include "support/check.h"

namespace cdc::compress {

namespace {

using support::BitReader;
using support::BitWriter;

using tables::kCodeLenOrder;
using tables::kDistCodes;
using tables::kEndOfBlock;
using tables::kLengthCodes;
using tables::kNumCodeLen;
using tables::kNumDist;
using tables::kNumLitLen;
using tables::LengthCode;

constexpr int length_to_code_scan(int length) noexcept {
  for (int c = 28; c >= 0; --c)
    if (length >= kLengthCodes[static_cast<std::size_t>(c)].base) return c;
  return 0;
}

constexpr int dist_to_code_scan(int distance) noexcept {
  for (int c = 29; c >= 0; --c)
    if (distance >= kDistCodes[static_cast<std::size_t>(c)].base) return c;
  return 0;
}

// --- Fast symbol maps ----------------------------------------------------
// Direct-indexed replacements for the reverse linear scans above; built at
// compile time from the same alphabet tables they replace.

constexpr std::array<std::uint8_t, kMaxMatch + 1> make_length_to_code() {
  std::array<std::uint8_t, kMaxMatch + 1> t{};
  for (int len = kMinMatch; len <= kMaxMatch; ++len)
    t[static_cast<std::size_t>(len)] =
        static_cast<std::uint8_t>(length_to_code_scan(len));
  return t;
}

inline constexpr auto kLengthToCode = make_length_to_code();

// zlib-style split table: distances 1..256 index the low half directly;
// 257..32768 index the high half by (distance - 1) >> 7, which is exact
// because every distance-code base above 256 is 1 mod 128.
constexpr std::array<std::uint8_t, 512> make_dist_to_code() {
  std::array<std::uint8_t, 512> t{};
  for (int d = 1; d <= kWindowSize; ++d) {
    const auto code = static_cast<std::uint8_t>(dist_to_code_scan(d));
    if (d <= 256) {
      t[static_cast<std::size_t>(d - 1)] = code;
    } else {
      t[static_cast<std::size_t>(256 + ((d - 1) >> 7))] = code;
    }
  }
  return t;
}

inline constexpr auto kDistToCode = make_dist_to_code();

int length_code(int length) noexcept {
  return kLengthToCode[static_cast<std::size_t>(length)];
}

int dist_code(int distance) noexcept {
  return distance <= 256
             ? kDistToCode[static_cast<std::size_t>(distance - 1)]
             : kDistToCode[static_cast<std::size_t>(256 +
                                                    ((distance - 1) >> 7))];
}

// Fixed Huffman code lengths (§3.2.6).
using tables::kFixedDistLengths;
using tables::kFixedLitLenLengths;

// --- Encoder ------------------------------------------------------------

/// Run-length encodes a concatenated code-length sequence into the
/// code-length alphabet (symbols 0..18 with extra-bit payloads).
struct ClToken {
  std::uint8_t symbol;
  std::uint8_t extra;      // payload for 16/17/18
};

std::vector<ClToken> rle_code_lengths(std::span<const std::uint8_t> lens) {
  std::vector<ClToken> out;
  std::size_t i = 0;
  while (i < lens.size()) {
    const std::uint8_t len = lens[i];
    std::size_t run = 1;
    while (i + run < lens.size() && lens[i + run] == len) ++run;
    if (len == 0) {
      std::size_t left = run;
      while (left >= 11) {
        const std::size_t take = std::min<std::size_t>(left, 138);
        out.push_back({18, static_cast<std::uint8_t>(take - 11)});
        left -= take;
      }
      if (left >= 3) {
        out.push_back({17, static_cast<std::uint8_t>(left - 3)});
        left = 0;
      }
      while (left-- > 0) out.push_back({0, 0});
    } else {
      out.push_back({len, 0});
      std::size_t left = run - 1;
      while (left >= 3) {
        const std::size_t take = std::min<std::size_t>(left, 6);
        out.push_back({16, static_cast<std::uint8_t>(take - 3)});
        left -= take;
      }
      while (left-- > 0) out.push_back({len, 0});
    }
    i += run;
  }
  return out;
}

struct BlockPlan {
  std::vector<std::uint8_t> litlen_lengths;
  std::vector<std::uint8_t> dist_lengths;
  std::vector<ClToken> cl_tokens;
  std::vector<std::uint8_t> cl_lengths;   // code-length code (limit 7)
  std::size_t header_bits = 0;
  std::size_t body_bits_dynamic = 0;
  std::size_t body_bits_fixed = 0;
};

/// Computes the dynamic-block plan and the dynamic/fixed bit costs for one
/// token block.
BlockPlan plan_block(std::span<const Lz77Token> tokens) {
  std::array<std::uint64_t, kNumLitLen> lit_freq{};
  std::array<std::uint64_t, kNumDist> dist_freq{};
  std::size_t extra_bits = 0;
  for (const Lz77Token& t : tokens) {
    if (t.is_literal()) {
      ++lit_freq[t.literal];
    } else {
      const int lc = length_code(t.length);
      const int dc = dist_code(t.distance);
      ++lit_freq[static_cast<std::size_t>(257 + lc)];
      ++dist_freq[static_cast<std::size_t>(dc)];
      extra_bits += kLengthCodes[static_cast<std::size_t>(lc)].extra;
      extra_bits += kDistCodes[static_cast<std::size_t>(dc)].extra;
    }
  }
  ++lit_freq[kEndOfBlock];
  // A distance alphabet must describe at least one code.
  if (std::all_of(dist_freq.begin(), dist_freq.end(),
                  [](std::uint64_t f) { return f == 0; }))
    dist_freq[0] = 1;

  BlockPlan plan;
  plan.litlen_lengths = package_merge_lengths(lit_freq, 15);
  plan.dist_lengths = package_merge_lengths(dist_freq, 15);

  // Trim trailing zero lengths but keep the §3.2.7 minima.
  std::size_t nlit = kNumLitLen;
  while (nlit > 257 && plan.litlen_lengths[nlit - 1] == 0) --nlit;
  std::size_t ndist = kNumDist;
  while (ndist > 1 && plan.dist_lengths[ndist - 1] == 0) --ndist;
  plan.litlen_lengths.resize(nlit);
  plan.dist_lengths.resize(ndist);

  std::vector<std::uint8_t> all_lengths = plan.litlen_lengths;
  all_lengths.insert(all_lengths.end(), plan.dist_lengths.begin(),
                     plan.dist_lengths.end());
  plan.cl_tokens = rle_code_lengths(all_lengths);

  std::array<std::uint64_t, kNumCodeLen> cl_freq{};
  for (const ClToken& t : plan.cl_tokens) ++cl_freq[t.symbol];
  plan.cl_lengths = package_merge_lengths(cl_freq, 7);

  std::size_t ncl = kNumCodeLen;
  while (ncl > 4 && plan.cl_lengths[kCodeLenOrder[ncl - 1]] == 0) --ncl;

  plan.header_bits = 5 + 5 + 4 + 3 * ncl;
  for (const ClToken& t : plan.cl_tokens) {
    plan.header_bits += plan.cl_lengths[t.symbol];
    if (t.symbol == 16) plan.header_bits += 2;
    if (t.symbol == 17) plan.header_bits += 3;
    if (t.symbol == 18) plan.header_bits += 7;
  }

  for (std::size_t s = 0; s < lit_freq.size(); ++s) {
    plan.body_bits_dynamic +=
        lit_freq[s] * (s < plan.litlen_lengths.size()
                           ? plan.litlen_lengths[s]
                           : 0);
    plan.body_bits_fixed += lit_freq[s] * kFixedLitLenLengths[s];
  }
  for (std::size_t s = 0; s < dist_freq.size(); ++s) {
    plan.body_bits_dynamic +=
        dist_freq[s] *
        (s < plan.dist_lengths.size() ? plan.dist_lengths[s] : 0);
    plan.body_bits_fixed += dist_freq[s] * kFixedDistLengths[s];
  }
  plan.body_bits_dynamic += extra_bits;
  plan.body_bits_fixed += extra_bits;
  return plan;
}

/// A Huffman code ready for BitWriter::put_bits: bit-reversed (DEFLATE
/// emits codes MSB-first, the writer packs LSB-first) with its length.
struct EmitCode {
  std::uint16_t bits = 0;
  std::uint8_t len = 0;
};

std::uint32_t reverse_code(std::uint32_t code, int length) noexcept {
  std::uint32_t reversed = 0;
  for (int i = 0; i < length; ++i)
    reversed |= ((code >> i) & 1u) << (length - 1 - i);
  return reversed;
}

template <std::size_t N>
void build_emit_codes(std::span<const std::uint8_t> lengths,
                      std::array<EmitCode, N>& out) {
  const std::vector<std::uint32_t> codes = canonical_codes(lengths);
  out.fill(EmitCode{});
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] == 0) continue;
    out[s].bits = static_cast<std::uint16_t>(
        reverse_code(codes[s], lengths[s]));
    out[s].len = lengths[s];
  }
}

void emit_tokens(BitWriter& bw, std::span<const Lz77Token> tokens,
                 const std::array<EmitCode, kNumLitLen>& lit,
                 const std::array<EmitCode, 32>& dist) {
  for (const Lz77Token& t : tokens) {
    if (t.is_literal()) {
      const EmitCode& e = lit[t.literal];
      bw.put_bits(e.bits, e.len);
      continue;
    }
    // Pack length code + length extra + distance code + distance extra
    // into a single accumulator write (at most 15+5+15+13 = 48 bits).
    const int lc = length_code(t.length);
    const LengthCode& le = kLengthCodes[static_cast<std::size_t>(lc)];
    const EmitCode& el = lit[static_cast<std::size_t>(257 + lc)];
    std::uint64_t bits = el.bits;
    int count = el.len;
    bits |= static_cast<std::uint64_t>(t.length - le.base) << count;
    count += le.extra;

    const int dc = dist_code(t.distance);
    const LengthCode& de = kDistCodes[static_cast<std::size_t>(dc)];
    const EmitCode& ed = dist[static_cast<std::size_t>(dc)];
    bits |= static_cast<std::uint64_t>(ed.bits) << count;
    count += ed.len;
    bits |= static_cast<std::uint64_t>(t.distance - de.base) << count;
    count += de.extra;
    bw.put_bits(bits, count);
  }
  bw.put_bits(lit[kEndOfBlock].bits, lit[kEndOfBlock].len);
}

void emit_stored_block(BitWriter& bw, std::span<const std::uint8_t> raw,
                       bool final_block) {
  std::size_t off = 0;
  do {
    const std::size_t take = std::min<std::size_t>(raw.size() - off, 65535);
    const bool last_piece = off + take == raw.size();
    bw.write(final_block && last_piece ? 1u : 0u, 1);
    bw.write(0u, 2);  // BTYPE = 00
    bw.align_to_byte();
    const auto len = static_cast<std::uint16_t>(take);
    bw.append_byte(static_cast<std::uint8_t>(len));
    bw.append_byte(static_cast<std::uint8_t>(len >> 8));
    const std::uint16_t nlen = ~len;
    bw.append_byte(static_cast<std::uint8_t>(nlen));
    bw.append_byte(static_cast<std::uint8_t>(nlen >> 8));
    bw.append_bytes(raw.subspan(off, take));
    off += take;
  } while (off < raw.size());
}

void emit_dynamic_header(BitWriter& bw, const BlockPlan& plan) {
  std::size_t ncl = kNumCodeLen;
  while (ncl > 4 && plan.cl_lengths[kCodeLenOrder[ncl - 1]] == 0) --ncl;

  bw.write(static_cast<std::uint32_t>(plan.litlen_lengths.size() - 257), 5);
  bw.write(static_cast<std::uint32_t>(plan.dist_lengths.size() - 1), 5);
  bw.write(static_cast<std::uint32_t>(ncl - 4), 4);
  for (std::size_t i = 0; i < ncl; ++i)
    bw.write(plan.cl_lengths[kCodeLenOrder[i]], 3);

  const auto cl_codes = canonical_codes(plan.cl_lengths);
  for (const ClToken& t : plan.cl_tokens) {
    bw.write_huffman(cl_codes[t.symbol], plan.cl_lengths[t.symbol]);
    if (t.symbol == 16) bw.write(t.extra, 2);
    if (t.symbol == 17) bw.write(t.extra, 3);
    if (t.symbol == 18) bw.write(t.extra, 7);
  }
}

/// Per-thread codec scratch: the LZ77 chain workspace plus the token
/// buffer, both recycled across calls so steady-state compression does
/// not allocate. Holds capacity only — never data that could leak between
/// inputs (see the determinism contract in deflate.h).
struct DeflateScratch {
  Lz77Workspace workspace;
  std::vector<Lz77Token> tokens;
};

DeflateScratch& deflate_scratch() {
  thread_local DeflateScratch scratch;
  return scratch;
}

/// Emits the complete DEFLATE stream for `input` into `bw` (which may
/// already hold container header bytes, e.g. gzip's).
void deflate_into(BitWriter& bw, std::span<const std::uint8_t> input,
                  DeflateLevel level) {
  if (input.empty() || level == DeflateLevel::kStored) {
    // A single (possibly empty) run of stored blocks.
    emit_stored_block(bw, input, /*final_block=*/true);
    return;
  }

  DeflateScratch& scratch = deflate_scratch();
  std::vector<Lz77Token>& tokens = scratch.tokens;
  lz77_tokenize_into(scratch.workspace, input, lz77_params_for(level),
                     tokens);

  std::array<EmitCode, kNumLitLen> lit_emit;
  std::array<EmitCode, 32> dist_emit;

  // Chunk the token stream into blocks so that each block gets Huffman
  // tables fit to its local statistics.
  constexpr std::size_t kTokensPerBlock = 1 << 16;
  std::size_t tok_begin = 0;
  std::size_t byte_begin = 0;
  while (tok_begin < tokens.size() || byte_begin == 0) {
    const std::size_t tok_end =
        std::min(tokens.size(), tok_begin + kTokensPerBlock);
    std::size_t byte_end = byte_begin;
    for (std::size_t i = tok_begin; i < tok_end; ++i)
      byte_end += tokens[i].is_literal() ? 1 : tokens[i].length;
    const bool final_block = tok_end == tokens.size();
    const std::span<const Lz77Token> block{tokens.data() + tok_begin,
                                           tok_end - tok_begin};

    const BlockPlan plan = plan_block(block);
    const std::size_t dynamic_bits =
        3 + plan.header_bits + plan.body_bits_dynamic;
    const std::size_t fixed_bits = 3 + plan.body_bits_fixed;
    const std::size_t stored_bits =
        3 + 7 + 32 + 8 * (byte_end - byte_begin);

    if (stored_bits < dynamic_bits && stored_bits < fixed_bits) {
      emit_stored_block(bw, input.subspan(byte_begin, byte_end - byte_begin),
                        final_block);
    } else if (fixed_bits <= dynamic_bits) {
      bw.write(final_block ? 1u : 0u, 1);
      bw.write(1u, 2);  // BTYPE = 01 fixed
      build_emit_codes(kFixedLitLenLengths, lit_emit);
      build_emit_codes(kFixedDistLengths, dist_emit);
      emit_tokens(bw, block, lit_emit, dist_emit);
    } else {
      bw.write(final_block ? 1u : 0u, 1);
      bw.write(2u, 2);  // BTYPE = 10 dynamic
      emit_dynamic_header(bw, plan);
      build_emit_codes(plan.litlen_lengths, lit_emit);
      build_emit_codes(plan.dist_lengths, dist_emit);
      emit_tokens(bw, block, lit_emit, dist_emit);
    }

    tok_begin = tok_end;
    byte_begin = byte_end;
    if (final_block) break;
  }
}

}  // namespace

Lz77Params lz77_params_for(DeflateLevel level) noexcept {
  switch (level) {
    case DeflateLevel::kFast:
      return {.max_chain = 32, .good_length = 8, .nice_length = 128,
              .lazy = true};
    case DeflateLevel::kBest:
      return {.max_chain = 1024, .good_length = 32, .nice_length = 258,
              .lazy = true};
    case DeflateLevel::kStored:
    case DeflateLevel::kDefault:
      break;
  }
  return {};
}

std::string_view to_string(DeflateLevel level) noexcept {
  switch (level) {
    case DeflateLevel::kStored: return "stored";
    case DeflateLevel::kFast: return "fast";
    case DeflateLevel::kDefault: return "default";
    case DeflateLevel::kBest: return "best";
  }
  return "unknown";
}

std::optional<DeflateLevel> deflate_level_from_name(
    std::string_view name) noexcept {
  if (name == "stored") return DeflateLevel::kStored;
  if (name == "fast") return DeflateLevel::kFast;
  if (name == "default") return DeflateLevel::kDefault;
  if (name == "best") return DeflateLevel::kBest;
  return std::nullopt;
}

namespace detail {

int length_to_code(int length) noexcept { return length_code(length); }

int dist_to_code(int distance) noexcept { return dist_code(distance); }

int length_to_code_reference(int length) noexcept {
  return length_to_code_scan(length);
}

int dist_to_code_reference(int distance) noexcept {
  return dist_to_code_scan(distance);
}

}  // namespace detail

std::vector<std::uint8_t> deflate_compress(
    std::span<const std::uint8_t> input, DeflateLevel level,
    std::vector<std::uint8_t> reuse) {
  BitWriter bw(std::move(reuse));
  deflate_into(bw, input, level);
  return std::move(bw).finish();
}

namespace {

/// Decodes one Huffman symbol; -1 on malformed input.
int decode_symbol(BitReader& br, HuffmanDecoder& dec) {
  return dec.decode(br);
}

bool inflate_block_body(BitReader& br, HuffmanDecoder& lit_dec,
                        HuffmanDecoder& dist_dec,
                        std::vector<std::uint8_t>& out) {
  for (;;) {
    const int sym = decode_symbol(br, lit_dec);
    if (sym < 0) return false;
    if (sym < 256) {
      out.push_back(static_cast<std::uint8_t>(sym));
      continue;
    }
    if (sym == kEndOfBlock) return true;
    const int lc = sym - 257;
    if (lc >= static_cast<int>(kLengthCodes.size())) return false;
    const LengthCode& le = kLengthCodes[static_cast<std::size_t>(lc)];
    std::uint32_t extra = 0;
    if (le.extra > 0 && !br.try_read(le.extra, extra)) return false;
    const std::size_t length = le.base + extra;

    const int dsym = decode_symbol(br, dist_dec);
    if (dsym < 0 || dsym >= static_cast<int>(kDistCodes.size())) return false;
    const LengthCode& de = kDistCodes[static_cast<std::size_t>(dsym)];
    std::uint32_t dextra = 0;
    if (de.extra > 0 && !br.try_read(de.extra, dextra)) return false;
    const std::size_t distance = de.base + dextra;
    if (distance == 0 || distance > out.size()) return false;

    const std::size_t start = out.size() - distance;
    for (std::size_t i = 0; i < length; ++i)
      out.push_back(out[start + i]);
  }
}

bool read_dynamic_tables(BitReader& br, HuffmanDecoder& lit_dec,
                         HuffmanDecoder& dist_dec) {
  std::uint32_t hlit = 0;
  std::uint32_t hdist = 0;
  std::uint32_t hclen = 0;
  if (!br.try_read(5, hlit) || !br.try_read(5, hdist) ||
      !br.try_read(4, hclen))
    return false;
  const std::size_t nlit = hlit + 257;
  const std::size_t ndist = hdist + 1;
  const std::size_t ncl = hclen + 4;
  if (nlit > kNumLitLen || ndist > 32) return false;

  std::vector<std::uint8_t> cl_lengths(kNumCodeLen, 0);
  for (std::size_t i = 0; i < ncl; ++i) {
    std::uint32_t v = 0;
    if (!br.try_read(3, v)) return false;
    cl_lengths[kCodeLenOrder[i]] = static_cast<std::uint8_t>(v);
  }
  HuffmanDecoder cl_dec;
  if (!cl_dec.init(cl_lengths)) return false;

  std::vector<std::uint8_t> lengths;
  lengths.reserve(nlit + ndist);
  while (lengths.size() < nlit + ndist) {
    const int sym = decode_symbol(br, cl_dec);
    if (sym < 0) return false;
    if (sym < 16) {
      lengths.push_back(static_cast<std::uint8_t>(sym));
    } else if (sym == 16) {
      std::uint32_t rep = 0;
      if (!br.try_read(2, rep) || lengths.empty()) return false;
      const std::uint8_t prev = lengths.back();
      for (std::uint32_t i = 0; i < rep + 3; ++i) lengths.push_back(prev);
    } else if (sym == 17) {
      std::uint32_t rep = 0;
      if (!br.try_read(3, rep)) return false;
      for (std::uint32_t i = 0; i < rep + 3; ++i) lengths.push_back(0);
    } else {
      std::uint32_t rep = 0;
      if (!br.try_read(7, rep)) return false;
      for (std::uint32_t i = 0; i < rep + 11; ++i) lengths.push_back(0);
    }
  }
  if (lengths.size() != nlit + ndist) return false;

  const std::span<const std::uint8_t> all{lengths};
  if (!lit_dec.init(all.subspan(0, nlit))) return false;
  // An all-zero distance alphabet is legal when the block has no matches;
  // init() rejects it, so tolerate that case with an unusable decoder.
  const auto dist_lengths = all.subspan(nlit, ndist);
  if (!dist_dec.init(dist_lengths)) {
    const bool all_zero =
        std::all_of(dist_lengths.begin(), dist_lengths.end(),
                    [](std::uint8_t l) { return l == 0; });
    if (!all_zero) return false;
  }
  return true;
}

}  // namespace

std::optional<std::vector<std::uint8_t>> deflate_decompress_reference(
    std::span<const std::uint8_t> compressed) {
  BitReader br(compressed);
  std::vector<std::uint8_t> out;
  for (;;) {
    std::uint32_t bfinal = 0;
    std::uint32_t btype = 0;
    if (!br.try_read_bit(bfinal) || !br.try_read(2, btype))
      return std::nullopt;
    if (btype == 0) {
      std::span<const std::uint8_t> header;
      if (!br.try_read_aligned_bytes(4, header)) return std::nullopt;
      const std::uint16_t len =
          static_cast<std::uint16_t>(header[0] | (header[1] << 8));
      const std::uint16_t nlen =
          static_cast<std::uint16_t>(header[2] | (header[3] << 8));
      if (static_cast<std::uint16_t>(~len) != nlen) return std::nullopt;
      std::span<const std::uint8_t> raw;
      if (!br.try_read_aligned_bytes(len, raw)) return std::nullopt;
      out.insert(out.end(), raw.begin(), raw.end());
    } else if (btype == 1) {
      HuffmanDecoder lit_dec(kFixedLitLenLengths);
      HuffmanDecoder dist_dec(kFixedDistLengths);
      if (!inflate_block_body(br, lit_dec, dist_dec, out))
        return std::nullopt;
    } else if (btype == 2) {
      HuffmanDecoder lit_dec;
      HuffmanDecoder dist_dec;
      if (!read_dynamic_tables(br, lit_dec, dist_dec)) return std::nullopt;
      if (!inflate_block_body(br, lit_dec, dist_dec, out))
        return std::nullopt;
    } else {
      return std::nullopt;
    }
    if (bfinal) return out;
  }
}

// --- gzip container (RFC 1952) -------------------------------------------

std::vector<std::uint8_t> gzip_compress(std::span<const std::uint8_t> input,
                                        DeflateLevel level,
                                        std::vector<std::uint8_t> reuse) {
  static constexpr std::array<std::uint8_t, 10> kHeader = {
      0x1f, 0x8b,  // magic
      0x08,        // CM = deflate
      0x00,        // FLG
      0, 0, 0, 0,  // MTIME
      0x00,        // XFL
      0xff,        // OS = unknown
  };
  BitWriter bw(std::move(reuse));
  bw.append_bytes(kHeader);
  deflate_into(bw, input, level);
  bw.align_to_byte();
  const std::uint32_t crc = crc32(input);
  const auto isize = static_cast<std::uint32_t>(input.size());
  for (int i = 0; i < 4; ++i)
    bw.append_byte(static_cast<std::uint8_t>(crc >> (8 * i)));
  for (int i = 0; i < 4; ++i)
    bw.append_byte(static_cast<std::uint8_t>(isize >> (8 * i)));
  return std::move(bw).finish();
}

std::optional<std::vector<std::uint8_t>> gzip_decompress(
    std::span<const std::uint8_t> compressed,
    std::vector<std::uint8_t> reuse) {
  if (compressed.size() < 18) return std::nullopt;
  if (compressed[0] != 0x1f || compressed[1] != 0x8b || compressed[2] != 0x08)
    return std::nullopt;
  const std::uint8_t flg = compressed[3];
  std::size_t pos = 10;
  // Optional fields: FEXTRA, FNAME, FCOMMENT, FHCRC.
  if (flg & 0x04) {  // FEXTRA
    if (compressed.size() < pos + 2) return std::nullopt;
    const std::size_t xlen = compressed[pos] | (compressed[pos + 1] << 8);
    pos += 2 + xlen;
  }
  for (const std::uint8_t bit : {std::uint8_t{0x08}, std::uint8_t{0x10}}) {
    if (flg & bit) {  // FNAME / FCOMMENT: zero-terminated
      while (pos < compressed.size() && compressed[pos] != 0) ++pos;
      ++pos;
    }
  }
  if (flg & 0x02) pos += 2;  // FHCRC
  if (compressed.size() < pos + 8) return std::nullopt;

  const auto body = compressed.subspan(pos, compressed.size() - pos - 8);
  auto decoded = deflate_decompress(body, std::move(reuse));
  if (!decoded) return std::nullopt;

  const auto trailer = compressed.subspan(compressed.size() - 8);
  std::uint32_t crc = 0;
  std::uint32_t isize = 0;
  for (int i = 0; i < 4; ++i) {
    crc |= static_cast<std::uint32_t>(trailer[static_cast<std::size_t>(i)])
           << (8 * i);
    isize |=
        static_cast<std::uint32_t>(trailer[static_cast<std::size_t>(4 + i)])
        << (8 * i);
  }
  if (crc32(*decoded) != crc) return std::nullopt;
  if (static_cast<std::uint32_t>(decoded->size()) != isize)
    return std::nullopt;
  return decoded;
}

}  // namespace cdc::compress
