#include "compress/deflate.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "compress/crc32.h"
#include "compress/huffman.h"
#include "support/bitstream.h"
#include "support/check.h"

namespace cdc::compress {

namespace {

using support::BitReader;
using support::BitWriter;

// --- RFC 1951 alphabets -------------------------------------------------

constexpr int kNumLitLen = 288;   // literal/length alphabet size
constexpr int kNumDist = 30;      // distance alphabet size
constexpr int kNumCodeLen = 19;   // code-length alphabet size
constexpr int kEndOfBlock = 256;

struct LengthCode {
  std::uint16_t base;
  std::uint8_t extra;
};

// Length codes 257..285 (§3.2.5).
constexpr std::array<LengthCode, 29> kLengthCodes = {{
    {3, 0},   {4, 0},   {5, 0},   {6, 0},   {7, 0},   {8, 0},
    {9, 0},   {10, 0},  {11, 1},  {13, 1},  {15, 1},  {17, 1},
    {19, 2},  {23, 2},  {27, 2},  {31, 2},  {35, 3},  {43, 3},
    {51, 3},  {59, 3},  {67, 4},  {83, 4},  {99, 4},  {115, 4},
    {131, 5}, {163, 5}, {195, 5}, {227, 5}, {258, 0},
}};

// Distance codes 0..29 (§3.2.5).
constexpr std::array<LengthCode, 30> kDistCodes = {{
    {1, 0},      {2, 0},      {3, 0},     {4, 0},     {5, 1},
    {7, 1},      {9, 2},      {13, 2},    {17, 3},    {25, 3},
    {33, 4},     {49, 4},     {65, 5},    {97, 5},    {129, 6},
    {193, 6},    {257, 7},    {385, 7},   {513, 8},   {769, 8},
    {1025, 9},   {1537, 9},   {2049, 10}, {3073, 10}, {4097, 11},
    {6145, 11},  {8193, 12},  {12289, 12},{16385, 13},{24577, 13},
}};

// Order in which code-length code lengths appear in the header (§3.2.7).
constexpr std::array<std::uint8_t, kNumCodeLen> kCodeLenOrder = {
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15};

int length_to_code(int length) noexcept {
  // Codes are monotone in base length; linear scan over 29 entries.
  for (int c = 28; c >= 0; --c)
    if (length >= kLengthCodes[static_cast<std::size_t>(c)].base) return c;
  return 0;
}

int dist_to_code(int distance) noexcept {
  for (int c = 29; c >= 0; --c)
    if (distance >= kDistCodes[static_cast<std::size_t>(c)].base) return c;
  return 0;
}

// Fixed Huffman code lengths (§3.2.6).
std::vector<std::uint8_t> fixed_litlen_lengths() {
  std::vector<std::uint8_t> lens(kNumLitLen);
  for (int s = 0; s <= 143; ++s) lens[static_cast<std::size_t>(s)] = 8;
  for (int s = 144; s <= 255; ++s) lens[static_cast<std::size_t>(s)] = 9;
  for (int s = 256; s <= 279; ++s) lens[static_cast<std::size_t>(s)] = 7;
  for (int s = 280; s <= 287; ++s) lens[static_cast<std::size_t>(s)] = 8;
  return lens;
}

std::vector<std::uint8_t> fixed_dist_lengths() {
  return std::vector<std::uint8_t>(32, 5);
}

Lz77Params params_for(DeflateLevel level) {
  switch (level) {
    case DeflateLevel::kFast:
      return {.max_chain = 16, .nice_length = 32, .lazy = false};
    case DeflateLevel::kBest:
      return {.max_chain = 1024, .nice_length = 258, .lazy = true};
    case DeflateLevel::kStored:
    case DeflateLevel::kDefault:
      break;
  }
  return {};
}

// --- Encoder ------------------------------------------------------------

/// Run-length encodes a concatenated code-length sequence into the
/// code-length alphabet (symbols 0..18 with extra-bit payloads).
struct ClToken {
  std::uint8_t symbol;
  std::uint8_t extra;      // payload for 16/17/18
};

std::vector<ClToken> rle_code_lengths(std::span<const std::uint8_t> lens) {
  std::vector<ClToken> out;
  std::size_t i = 0;
  while (i < lens.size()) {
    const std::uint8_t len = lens[i];
    std::size_t run = 1;
    while (i + run < lens.size() && lens[i + run] == len) ++run;
    if (len == 0) {
      std::size_t left = run;
      while (left >= 11) {
        const std::size_t take = std::min<std::size_t>(left, 138);
        out.push_back({18, static_cast<std::uint8_t>(take - 11)});
        left -= take;
      }
      if (left >= 3) {
        out.push_back({17, static_cast<std::uint8_t>(left - 3)});
        left = 0;
      }
      while (left-- > 0) out.push_back({0, 0});
    } else {
      out.push_back({len, 0});
      std::size_t left = run - 1;
      while (left >= 3) {
        const std::size_t take = std::min<std::size_t>(left, 6);
        out.push_back({16, static_cast<std::uint8_t>(take - 3)});
        left -= take;
      }
      while (left-- > 0) out.push_back({len, 0});
    }
    i += run;
  }
  return out;
}

struct BlockPlan {
  std::vector<std::uint8_t> litlen_lengths;
  std::vector<std::uint8_t> dist_lengths;
  std::vector<ClToken> cl_tokens;
  std::vector<std::uint8_t> cl_lengths;   // code-length code (limit 7)
  std::size_t header_bits = 0;
  std::size_t body_bits_dynamic = 0;
  std::size_t body_bits_fixed = 0;
};

/// Computes the dynamic-block plan and the dynamic/fixed bit costs for one
/// token block.
BlockPlan plan_block(std::span<const Lz77Token> tokens) {
  std::vector<std::uint64_t> lit_freq(kNumLitLen, 0);
  std::vector<std::uint64_t> dist_freq(kNumDist, 0);
  std::size_t extra_bits = 0;
  for (const Lz77Token& t : tokens) {
    if (t.is_literal()) {
      ++lit_freq[t.literal];
    } else {
      const int lc = length_to_code(t.length);
      const int dc = dist_to_code(t.distance);
      ++lit_freq[static_cast<std::size_t>(257 + lc)];
      ++dist_freq[static_cast<std::size_t>(dc)];
      extra_bits += kLengthCodes[static_cast<std::size_t>(lc)].extra;
      extra_bits += kDistCodes[static_cast<std::size_t>(dc)].extra;
    }
  }
  ++lit_freq[kEndOfBlock];
  // A distance alphabet must describe at least one code.
  if (std::all_of(dist_freq.begin(), dist_freq.end(),
                  [](std::uint64_t f) { return f == 0; }))
    dist_freq[0] = 1;

  BlockPlan plan;
  plan.litlen_lengths = package_merge_lengths(lit_freq, 15);
  plan.dist_lengths = package_merge_lengths(dist_freq, 15);

  // Trim trailing zero lengths but keep the §3.2.7 minima.
  std::size_t nlit = kNumLitLen;
  while (nlit > 257 && plan.litlen_lengths[nlit - 1] == 0) --nlit;
  std::size_t ndist = kNumDist;
  while (ndist > 1 && plan.dist_lengths[ndist - 1] == 0) --ndist;
  plan.litlen_lengths.resize(nlit);
  plan.dist_lengths.resize(ndist);

  std::vector<std::uint8_t> all_lengths = plan.litlen_lengths;
  all_lengths.insert(all_lengths.end(), plan.dist_lengths.begin(),
                     plan.dist_lengths.end());
  plan.cl_tokens = rle_code_lengths(all_lengths);

  std::vector<std::uint64_t> cl_freq(kNumCodeLen, 0);
  for (const ClToken& t : plan.cl_tokens) ++cl_freq[t.symbol];
  plan.cl_lengths = package_merge_lengths(cl_freq, 7);

  std::size_t ncl = kNumCodeLen;
  while (ncl > 4 && plan.cl_lengths[kCodeLenOrder[ncl - 1]] == 0) --ncl;

  plan.header_bits = 5 + 5 + 4 + 3 * ncl;
  for (const ClToken& t : plan.cl_tokens) {
    plan.header_bits += plan.cl_lengths[t.symbol];
    if (t.symbol == 16) plan.header_bits += 2;
    if (t.symbol == 17) plan.header_bits += 3;
    if (t.symbol == 18) plan.header_bits += 7;
  }

  const auto fixed_lit = fixed_litlen_lengths();
  const auto fixed_dist = fixed_dist_lengths();
  for (std::size_t s = 0; s < lit_freq.size(); ++s) {
    plan.body_bits_dynamic +=
        lit_freq[s] * (s < plan.litlen_lengths.size()
                           ? plan.litlen_lengths[s]
                           : 0);
    plan.body_bits_fixed += lit_freq[s] * fixed_lit[s];
  }
  for (std::size_t s = 0; s < dist_freq.size(); ++s) {
    plan.body_bits_dynamic +=
        dist_freq[s] *
        (s < plan.dist_lengths.size() ? plan.dist_lengths[s] : 0);
    plan.body_bits_fixed += dist_freq[s] * fixed_dist[s];
  }
  plan.body_bits_dynamic += extra_bits;
  plan.body_bits_fixed += extra_bits;
  return plan;
}

void emit_tokens(BitWriter& bw, std::span<const Lz77Token> tokens,
                 std::span<const std::uint8_t> lit_lengths,
                 std::span<const std::uint32_t> lit_codes,
                 std::span<const std::uint8_t> dist_lengths,
                 std::span<const std::uint32_t> dist_codes) {
  for (const Lz77Token& t : tokens) {
    if (t.is_literal()) {
      bw.write_huffman(lit_codes[t.literal], lit_lengths[t.literal]);
    } else {
      const int lc = length_to_code(t.length);
      const auto lsym = static_cast<std::size_t>(257 + lc);
      bw.write_huffman(lit_codes[lsym], lit_lengths[lsym]);
      const LengthCode& le = kLengthCodes[static_cast<std::size_t>(lc)];
      if (le.extra > 0)
        bw.write(static_cast<std::uint32_t>(t.length - le.base), le.extra);
      const int dc = dist_to_code(t.distance);
      bw.write_huffman(dist_codes[static_cast<std::size_t>(dc)],
                       dist_lengths[static_cast<std::size_t>(dc)]);
      const LengthCode& de = kDistCodes[static_cast<std::size_t>(dc)];
      if (de.extra > 0)
        bw.write(static_cast<std::uint32_t>(t.distance - de.base), de.extra);
    }
  }
  bw.write_huffman(lit_codes[kEndOfBlock], lit_lengths[kEndOfBlock]);
}

void emit_stored_block(BitWriter& bw, std::span<const std::uint8_t> raw,
                       bool final_block) {
  std::size_t off = 0;
  do {
    const std::size_t take = std::min<std::size_t>(raw.size() - off, 65535);
    const bool last_piece = off + take == raw.size();
    bw.write(final_block && last_piece ? 1u : 0u, 1);
    bw.write(0u, 2);  // BTYPE = 00
    bw.align_to_byte();
    const auto len = static_cast<std::uint16_t>(take);
    bw.append_byte(static_cast<std::uint8_t>(len));
    bw.append_byte(static_cast<std::uint8_t>(len >> 8));
    const std::uint16_t nlen = ~len;
    bw.append_byte(static_cast<std::uint8_t>(nlen));
    bw.append_byte(static_cast<std::uint8_t>(nlen >> 8));
    for (std::size_t i = 0; i < take; ++i) bw.append_byte(raw[off + i]);
    off += take;
  } while (off < raw.size());
}

void emit_dynamic_header(BitWriter& bw, const BlockPlan& plan) {
  std::size_t ncl = kNumCodeLen;
  while (ncl > 4 && plan.cl_lengths[kCodeLenOrder[ncl - 1]] == 0) --ncl;

  bw.write(static_cast<std::uint32_t>(plan.litlen_lengths.size() - 257), 5);
  bw.write(static_cast<std::uint32_t>(plan.dist_lengths.size() - 1), 5);
  bw.write(static_cast<std::uint32_t>(ncl - 4), 4);
  for (std::size_t i = 0; i < ncl; ++i)
    bw.write(plan.cl_lengths[kCodeLenOrder[i]], 3);

  const auto cl_codes = canonical_codes(plan.cl_lengths);
  for (const ClToken& t : plan.cl_tokens) {
    bw.write_huffman(cl_codes[t.symbol], plan.cl_lengths[t.symbol]);
    if (t.symbol == 16) bw.write(t.extra, 2);
    if (t.symbol == 17) bw.write(t.extra, 3);
    if (t.symbol == 18) bw.write(t.extra, 7);
  }
}

}  // namespace

std::vector<std::uint8_t> deflate_compress(
    std::span<const std::uint8_t> input, DeflateLevel level) {
  BitWriter bw;
  if (input.empty()) {
    // A single empty stored block.
    emit_stored_block(bw, input, /*final_block=*/true);
    return std::move(bw).finish();
  }
  if (level == DeflateLevel::kStored) {
    emit_stored_block(bw, input, /*final_block=*/true);
    return std::move(bw).finish();
  }

  const std::vector<Lz77Token> tokens =
      lz77_tokenize(input, params_for(level));

  // Chunk the token stream into blocks so that each block gets Huffman
  // tables fit to its local statistics.
  constexpr std::size_t kTokensPerBlock = 1 << 16;
  std::size_t tok_begin = 0;
  std::size_t byte_begin = 0;
  while (tok_begin < tokens.size() || byte_begin == 0) {
    const std::size_t tok_end =
        std::min(tokens.size(), tok_begin + kTokensPerBlock);
    std::size_t byte_end = byte_begin;
    for (std::size_t i = tok_begin; i < tok_end; ++i)
      byte_end += tokens[i].is_literal() ? 1 : tokens[i].length;
    const bool final_block = tok_end == tokens.size();
    const std::span<const Lz77Token> block{tokens.data() + tok_begin,
                                           tok_end - tok_begin};

    const BlockPlan plan = plan_block(block);
    const std::size_t dynamic_bits =
        3 + plan.header_bits + plan.body_bits_dynamic;
    const std::size_t fixed_bits = 3 + plan.body_bits_fixed;
    const std::size_t stored_bits =
        3 + 7 + 32 + 8 * (byte_end - byte_begin);

    if (stored_bits < dynamic_bits && stored_bits < fixed_bits) {
      emit_stored_block(bw, input.subspan(byte_begin, byte_end - byte_begin),
                        final_block);
    } else if (fixed_bits <= dynamic_bits) {
      bw.write(final_block ? 1u : 0u, 1);
      bw.write(1u, 2);  // BTYPE = 01 fixed
      const auto lit_lengths = fixed_litlen_lengths();
      const auto dist_lengths = fixed_dist_lengths();
      emit_tokens(bw, block, lit_lengths, canonical_codes(lit_lengths),
                  dist_lengths, canonical_codes(dist_lengths));
    } else {
      bw.write(final_block ? 1u : 0u, 1);
      bw.write(2u, 2);  // BTYPE = 10 dynamic
      emit_dynamic_header(bw, plan);
      emit_tokens(bw, block, plan.litlen_lengths,
                  canonical_codes(plan.litlen_lengths), plan.dist_lengths,
                  canonical_codes(plan.dist_lengths));
    }

    tok_begin = tok_end;
    byte_begin = byte_end;
    if (final_block) break;
  }
  return std::move(bw).finish();
}

namespace {

/// Decodes one Huffman symbol bit-serially. Returns -1 on malformed input.
int decode_symbol(BitReader& br, HuffmanDecoder& dec) {
  dec.reset();
  for (;;) {
    std::uint32_t bit = 0;
    if (!br.try_read_bit(bit)) return -1;
    const int sym = dec.feed(bit);
    if (sym >= 0) return sym;
    if (sym == -2) return -1;
  }
}

bool inflate_block_body(BitReader& br, HuffmanDecoder& lit_dec,
                        HuffmanDecoder& dist_dec,
                        std::vector<std::uint8_t>& out) {
  for (;;) {
    const int sym = decode_symbol(br, lit_dec);
    if (sym < 0) return false;
    if (sym < 256) {
      out.push_back(static_cast<std::uint8_t>(sym));
      continue;
    }
    if (sym == kEndOfBlock) return true;
    const int lc = sym - 257;
    if (lc >= static_cast<int>(kLengthCodes.size())) return false;
    const LengthCode& le = kLengthCodes[static_cast<std::size_t>(lc)];
    std::uint32_t extra = 0;
    if (le.extra > 0 && !br.try_read(le.extra, extra)) return false;
    const std::size_t length = le.base + extra;

    const int dsym = decode_symbol(br, dist_dec);
    if (dsym < 0 || dsym >= static_cast<int>(kDistCodes.size())) return false;
    const LengthCode& de = kDistCodes[static_cast<std::size_t>(dsym)];
    std::uint32_t dextra = 0;
    if (de.extra > 0 && !br.try_read(de.extra, dextra)) return false;
    const std::size_t distance = de.base + dextra;
    if (distance == 0 || distance > out.size()) return false;

    const std::size_t start = out.size() - distance;
    for (std::size_t i = 0; i < length; ++i)
      out.push_back(out[start + i]);
  }
}

bool read_dynamic_tables(BitReader& br, HuffmanDecoder& lit_dec,
                         HuffmanDecoder& dist_dec) {
  std::uint32_t hlit = 0;
  std::uint32_t hdist = 0;
  std::uint32_t hclen = 0;
  if (!br.try_read(5, hlit) || !br.try_read(5, hdist) ||
      !br.try_read(4, hclen))
    return false;
  const std::size_t nlit = hlit + 257;
  const std::size_t ndist = hdist + 1;
  const std::size_t ncl = hclen + 4;
  if (nlit > kNumLitLen || ndist > 32) return false;

  std::vector<std::uint8_t> cl_lengths(kNumCodeLen, 0);
  for (std::size_t i = 0; i < ncl; ++i) {
    std::uint32_t v = 0;
    if (!br.try_read(3, v)) return false;
    cl_lengths[kCodeLenOrder[i]] = static_cast<std::uint8_t>(v);
  }
  HuffmanDecoder cl_dec;
  if (!cl_dec.init(cl_lengths)) return false;

  std::vector<std::uint8_t> lengths;
  lengths.reserve(nlit + ndist);
  while (lengths.size() < nlit + ndist) {
    const int sym = decode_symbol(br, cl_dec);
    if (sym < 0) return false;
    if (sym < 16) {
      lengths.push_back(static_cast<std::uint8_t>(sym));
    } else if (sym == 16) {
      std::uint32_t rep = 0;
      if (!br.try_read(2, rep) || lengths.empty()) return false;
      const std::uint8_t prev = lengths.back();
      for (std::uint32_t i = 0; i < rep + 3; ++i) lengths.push_back(prev);
    } else if (sym == 17) {
      std::uint32_t rep = 0;
      if (!br.try_read(3, rep)) return false;
      for (std::uint32_t i = 0; i < rep + 3; ++i) lengths.push_back(0);
    } else {
      std::uint32_t rep = 0;
      if (!br.try_read(7, rep)) return false;
      for (std::uint32_t i = 0; i < rep + 11; ++i) lengths.push_back(0);
    }
  }
  if (lengths.size() != nlit + ndist) return false;

  const std::span<const std::uint8_t> all{lengths};
  if (!lit_dec.init(all.subspan(0, nlit))) return false;
  // An all-zero distance alphabet is legal when the block has no matches;
  // init() rejects it, so tolerate that case with an unusable decoder.
  const auto dist_lengths = all.subspan(nlit, ndist);
  if (!dist_dec.init(dist_lengths)) {
    const bool all_zero =
        std::all_of(dist_lengths.begin(), dist_lengths.end(),
                    [](std::uint8_t l) { return l == 0; });
    if (!all_zero) return false;
  }
  return true;
}

}  // namespace

std::optional<std::vector<std::uint8_t>> deflate_decompress(
    std::span<const std::uint8_t> compressed) {
  BitReader br(compressed);
  std::vector<std::uint8_t> out;
  for (;;) {
    std::uint32_t bfinal = 0;
    std::uint32_t btype = 0;
    if (!br.try_read_bit(bfinal) || !br.try_read(2, btype))
      return std::nullopt;
    if (btype == 0) {
      std::span<const std::uint8_t> header;
      if (!br.try_read_aligned_bytes(4, header)) return std::nullopt;
      const std::uint16_t len =
          static_cast<std::uint16_t>(header[0] | (header[1] << 8));
      const std::uint16_t nlen =
          static_cast<std::uint16_t>(header[2] | (header[3] << 8));
      if (static_cast<std::uint16_t>(~len) != nlen) return std::nullopt;
      std::span<const std::uint8_t> raw;
      if (!br.try_read_aligned_bytes(len, raw)) return std::nullopt;
      out.insert(out.end(), raw.begin(), raw.end());
    } else if (btype == 1) {
      HuffmanDecoder lit_dec(fixed_litlen_lengths());
      HuffmanDecoder dist_dec(fixed_dist_lengths());
      if (!inflate_block_body(br, lit_dec, dist_dec, out))
        return std::nullopt;
    } else if (btype == 2) {
      HuffmanDecoder lit_dec;
      HuffmanDecoder dist_dec;
      if (!read_dynamic_tables(br, lit_dec, dist_dec)) return std::nullopt;
      if (!inflate_block_body(br, lit_dec, dist_dec, out))
        return std::nullopt;
    } else {
      return std::nullopt;
    }
    if (bfinal) return out;
  }
}

// --- gzip container (RFC 1952) -------------------------------------------

std::vector<std::uint8_t> gzip_compress(std::span<const std::uint8_t> input,
                                        DeflateLevel level) {
  std::vector<std::uint8_t> out = {
      0x1f, 0x8b,  // magic
      0x08,        // CM = deflate
      0x00,        // FLG
      0, 0, 0, 0,  // MTIME
      0x00,        // XFL
      0xff,        // OS = unknown
  };
  const std::vector<std::uint8_t> body = deflate_compress(input, level);
  out.insert(out.end(), body.begin(), body.end());
  const std::uint32_t crc = crc32(input);
  const auto isize = static_cast<std::uint32_t>(input.size());
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(isize >> (8 * i)));
  return out;
}

std::optional<std::vector<std::uint8_t>> gzip_decompress(
    std::span<const std::uint8_t> compressed) {
  if (compressed.size() < 18) return std::nullopt;
  if (compressed[0] != 0x1f || compressed[1] != 0x8b || compressed[2] != 0x08)
    return std::nullopt;
  const std::uint8_t flg = compressed[3];
  std::size_t pos = 10;
  // Optional fields: FEXTRA, FNAME, FCOMMENT, FHCRC.
  if (flg & 0x04) {  // FEXTRA
    if (compressed.size() < pos + 2) return std::nullopt;
    const std::size_t xlen = compressed[pos] | (compressed[pos + 1] << 8);
    pos += 2 + xlen;
  }
  for (const std::uint8_t bit : {std::uint8_t{0x08}, std::uint8_t{0x10}}) {
    if (flg & bit) {  // FNAME / FCOMMENT: zero-terminated
      while (pos < compressed.size() && compressed[pos] != 0) ++pos;
      ++pos;
    }
  }
  if (flg & 0x02) pos += 2;  // FHCRC
  if (compressed.size() < pos + 8) return std::nullopt;

  const auto body = compressed.subspan(pos, compressed.size() - pos - 8);
  auto decoded = deflate_decompress(body);
  if (!decoded) return std::nullopt;

  const auto trailer = compressed.subspan(compressed.size() - 8);
  std::uint32_t crc = 0;
  std::uint32_t isize = 0;
  for (int i = 0; i < 4; ++i) {
    crc |= static_cast<std::uint32_t>(trailer[static_cast<std::size_t>(i)])
           << (8 * i);
    isize |=
        static_cast<std::uint32_t>(trailer[static_cast<std::size_t>(4 + i)])
        << (8 * i);
  }
  if (crc32(*decoded) != crc) return std::nullopt;
  if (static_cast<std::uint32_t>(decoded->size()) != isize)
    return std::nullopt;
  return decoded;
}

}  // namespace cdc::compress
