// DEFLATE (RFC 1951) encoder and decoder, and the gzip container
// (RFC 1952). Self-contained: this is the entropy-coding stage behind the
// paper's "gzip" baseline and the final stage of CDC (§3.5: "Finally, CDC
// applies gzip to the CDC encoding format").
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "compress/lz77.h"

namespace cdc::compress {

enum class DeflateLevel {
  kStored,   ///< no compression, stored blocks only
  kFast,     ///< short hash chains, greedy matching
  kDefault,  ///< moderate chains, lazy matching
  kBest,     ///< deep chains, lazy matching
};

/// Compresses `input` into a raw DEFLATE stream.
std::vector<std::uint8_t> deflate_compress(
    std::span<const std::uint8_t> input,
    DeflateLevel level = DeflateLevel::kDefault);

/// Decompresses a raw DEFLATE stream. Returns std::nullopt on malformed
/// input (never aborts: record files may be truncated or corrupt).
std::optional<std::vector<std::uint8_t>> deflate_decompress(
    std::span<const std::uint8_t> compressed);

/// Compresses into a gzip member (header + DEFLATE + CRC32 + ISIZE).
std::vector<std::uint8_t> gzip_compress(
    std::span<const std::uint8_t> input,
    DeflateLevel level = DeflateLevel::kDefault);

/// Decompresses a single gzip member, verifying CRC32 and ISIZE.
std::optional<std::vector<std::uint8_t>> gzip_decompress(
    std::span<const std::uint8_t> compressed);

}  // namespace cdc::compress
