// DEFLATE (RFC 1951) encoder and decoder, and the gzip container
// (RFC 1952). Self-contained: this is the entropy-coding stage behind the
// paper's "gzip" baseline and the final stage of CDC (§3.5: "Finally, CDC
// applies gzip to the CDC encoding format").
//
// Determinism contract: for a given (input, level) the compressed bytes
// are identical on every thread and every call — the encoder keeps no
// history across calls (thread-local workspaces only recycle capacity),
// so the inline and CompressionService paths stay bit-identical.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "compress/lz77.h"

namespace cdc::compress {

enum class DeflateLevel {
  kStored,   ///< no compression, stored blocks only
  kFast,     ///< short hash chains, cheapest matching
  kDefault,  ///< moderate chains, lazy matching
  kBest,     ///< deep chains, lazy matching
};

/// The LZ77 preset behind a level (kStored has no tokenizer).
Lz77Params lz77_params_for(DeflateLevel level) noexcept;

/// "stored" | "fast" | "default" | "best" (CLI flags, bench labels).
std::string_view to_string(DeflateLevel level) noexcept;

/// Inverse of to_string; nullopt for unknown names.
std::optional<DeflateLevel> deflate_level_from_name(
    std::string_view name) noexcept;

/// Compresses `input` into a raw DEFLATE stream. `reuse` donates its
/// capacity for the output (contents discarded) — pass a recycled buffer
/// to make steady-state compression allocation-free.
std::vector<std::uint8_t> deflate_compress(
    std::span<const std::uint8_t> input,
    DeflateLevel level = DeflateLevel::kDefault,
    std::vector<std::uint8_t> reuse = {});

/// Decompresses a raw DEFLATE stream. Returns std::nullopt on malformed
/// input (never aborts: record files may be truncated or corrupt).
/// Batched decoder: 64-bit refill loop over the two-level Huffman tables
/// plus overlap-aware 8-byte match copies — the read-side twin of the
/// encoder's put_bits fast path. `reuse` donates its capacity for the
/// output (contents discarded), making steady-state decode allocation-free.
std::optional<std::vector<std::uint8_t>> deflate_decompress(
    std::span<const std::uint8_t> compressed,
    std::vector<std::uint8_t> reuse = {});

/// The seed's bit-serial decoder, kept as the oracle the differential
/// decode battery checks the batched decoder against: identical bytes on
/// accept, identical rejection on truncated or corrupt streams.
std::optional<std::vector<std::uint8_t>> deflate_decompress_reference(
    std::span<const std::uint8_t> compressed);

/// Compresses into a gzip member (header + DEFLATE + CRC32 + ISIZE).
/// `reuse` donates capacity as in deflate_compress.
std::vector<std::uint8_t> gzip_compress(
    std::span<const std::uint8_t> input,
    DeflateLevel level = DeflateLevel::kDefault,
    std::vector<std::uint8_t> reuse = {});

/// Decompresses a single gzip member, verifying CRC32 and ISIZE.
/// `reuse` donates output capacity as in deflate_decompress.
std::optional<std::vector<std::uint8_t>> gzip_decompress(
    std::span<const std::uint8_t> compressed,
    std::vector<std::uint8_t> reuse = {});

namespace detail {

/// Table-driven symbol maps used on the encoder hot path: length (3..258)
/// to length code 0..28, distance (1..32768) to distance code 0..29.
int length_to_code(int length) noexcept;
int dist_to_code(int distance) noexcept;

/// The seed's reverse linear scans, kept as the reference the exhaustive
/// table test checks the fast maps against.
int length_to_code_reference(int length) noexcept;
int dist_to_code_reference(int distance) noexcept;

}  // namespace detail

}  // namespace cdc::compress
