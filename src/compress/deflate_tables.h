// RFC 1951 alphabet tables shared by the encoder (deflate.cc) and the
// batched decoder (inflate.cc). Internal to the compress layer — the
// public surface stays in deflate.h.
#pragma once

#include <array>
#include <cstdint>

namespace cdc::compress::tables {

inline constexpr int kNumLitLen = 288;   // literal/length alphabet size
inline constexpr int kNumDist = 30;      // distance alphabet size
inline constexpr int kNumCodeLen = 19;   // code-length alphabet size
inline constexpr int kEndOfBlock = 256;

struct LengthCode {
  std::uint16_t base;
  std::uint8_t extra;
};

// Length codes 257..285 (§3.2.5).
inline constexpr std::array<LengthCode, 29> kLengthCodes = {{
    {3, 0},   {4, 0},   {5, 0},   {6, 0},   {7, 0},   {8, 0},
    {9, 0},   {10, 0},  {11, 1},  {13, 1},  {15, 1},  {17, 1},
    {19, 2},  {23, 2},  {27, 2},  {31, 2},  {35, 3},  {43, 3},
    {51, 3},  {59, 3},  {67, 4},  {83, 4},  {99, 4},  {115, 4},
    {131, 5}, {163, 5}, {195, 5}, {227, 5}, {258, 0},
}};

// Distance codes 0..29 (§3.2.5).
inline constexpr std::array<LengthCode, 30> kDistCodes = {{
    {1, 0},      {2, 0},      {3, 0},     {4, 0},     {5, 1},
    {7, 1},      {9, 2},      {13, 2},    {17, 3},    {25, 3},
    {33, 4},     {49, 4},     {65, 5},    {97, 5},    {129, 6},
    {193, 6},    {257, 7},    {385, 7},   {513, 8},   {769, 8},
    {1025, 9},   {1537, 9},   {2049, 10}, {3073, 10}, {4097, 11},
    {6145, 11},  {8193, 12},  {12289, 12},{16385, 13},{24577, 13},
}};

// Order in which code-length code lengths appear in the header (§3.2.7).
inline constexpr std::array<std::uint8_t, kNumCodeLen> kCodeLenOrder = {
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15};

// Fixed Huffman code lengths (§3.2.6).
inline constexpr std::array<std::uint8_t, kNumLitLen>
make_fixed_litlen_lengths() {
  std::array<std::uint8_t, kNumLitLen> lens{};
  for (int s = 0; s <= 143; ++s) lens[static_cast<std::size_t>(s)] = 8;
  for (int s = 144; s <= 255; ++s) lens[static_cast<std::size_t>(s)] = 9;
  for (int s = 256; s <= 279; ++s) lens[static_cast<std::size_t>(s)] = 7;
  for (int s = 280; s <= 287; ++s) lens[static_cast<std::size_t>(s)] = 8;
  return lens;
}

inline constexpr auto kFixedLitLenLengths = make_fixed_litlen_lengths();

inline constexpr std::array<std::uint8_t, 32> make_fixed_dist_lengths() {
  std::array<std::uint8_t, 32> lens{};
  lens.fill(5);
  return lens;
}

inline constexpr auto kFixedDistLengths = make_fixed_dist_lengths();

}  // namespace cdc::compress::tables
