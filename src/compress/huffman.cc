#include "compress/huffman.h"

#include <algorithm>
#include <cstddef>

#include "support/check.h"

namespace cdc::compress {

namespace {

// A package in package-merge: accumulated weight plus the multiset of leaf
// symbols it contains (symbol indices into the active-symbol array).
struct Package {
  std::uint64_t weight = 0;
  std::vector<std::uint16_t> symbols;
};

bool weight_less(const Package& a, const Package& b) noexcept {
  return a.weight < b.weight;
}

}  // namespace

std::vector<std::uint8_t> package_merge_lengths(
    std::span<const std::uint64_t> freqs, int limit) {
  CDC_CHECK(limit >= 1 && limit <= 32);
  std::vector<std::uint8_t> lengths(freqs.size(), 0);

  std::vector<std::uint16_t> active;
  for (std::size_t s = 0; s < freqs.size(); ++s)
    if (freqs[s] > 0) active.push_back(static_cast<std::uint16_t>(s));

  if (active.empty()) return lengths;
  if (active.size() == 1) {
    lengths[active[0]] = 1;
    return lengths;
  }
  CDC_CHECK_MSG(active.size() <= (std::size_t{1} << limit),
                "alphabet too large for length limit");

  std::vector<Package> leaves;
  leaves.reserve(active.size());
  for (const std::uint16_t s : active)
    leaves.push_back(Package{freqs[s], {s}});
  std::sort(leaves.begin(), leaves.end(), weight_less);

  // Level `limit` starts with the bare leaves; moving toward level 1 we
  // package pairs and merge fresh leaves back in.
  std::vector<Package> prev = leaves;
  for (int level = limit - 1; level >= 1; --level) {
    std::vector<Package> packaged;
    packaged.reserve(prev.size() / 2);
    for (std::size_t i = 0; i + 1 < prev.size(); i += 2) {
      Package merged;
      merged.weight = prev[i].weight + prev[i + 1].weight;
      merged.symbols = prev[i].symbols;
      merged.symbols.insert(merged.symbols.end(), prev[i + 1].symbols.begin(),
                            prev[i + 1].symbols.end());
      packaged.push_back(std::move(merged));
    }
    std::vector<Package> next;
    next.reserve(leaves.size() + packaged.size());
    std::merge(leaves.begin(), leaves.end(),
               std::make_move_iterator(packaged.begin()),
               std::make_move_iterator(packaged.end()),
               std::back_inserter(next), weight_less);
    prev = std::move(next);
  }

  // The first 2(n-1) packages of the level-1 list; every occurrence of a
  // symbol adds one to its code length.
  const std::size_t take = 2 * (active.size() - 1);
  CDC_CHECK(prev.size() >= take);
  for (std::size_t i = 0; i < take; ++i)
    for (const std::uint16_t s : prev[i].symbols) ++lengths[s];

  for (const std::uint16_t s : active)
    CDC_CHECK(lengths[s] >= 1 &&
              lengths[s] <= static_cast<std::uint8_t>(limit));
  return lengths;
}

std::vector<std::uint32_t> canonical_codes(
    std::span<const std::uint8_t> lengths) {
  constexpr int kMaxBits = 32;
  std::uint32_t bl_count[kMaxBits + 1] = {};
  int max_len = 0;
  for (const std::uint8_t len : lengths) {
    CDC_CHECK(len <= kMaxBits);
    if (len > 0) {
      ++bl_count[len];
      max_len = std::max<int>(max_len, len);
    }
  }
  std::uint32_t next_code[kMaxBits + 1] = {};
  std::uint32_t code = 0;
  for (int bits = 1; bits <= max_len; ++bits) {
    code = (code + bl_count[bits - 1]) << 1;
    next_code[bits] = code;
  }
  std::vector<std::uint32_t> codes(lengths.size(), 0);
  for (std::size_t s = 0; s < lengths.size(); ++s)
    if (lengths[s] > 0) codes[s] = next_code[lengths[s]]++;
  return codes;
}

bool HuffmanDecoder::init(std::span<const std::uint8_t> lengths) {
  ok_ = false;
  reset();
  std::fill(std::begin(first_code_), std::end(first_code_), 0u);
  std::fill(std::begin(count_), std::end(count_), 0u);
  std::fill(std::begin(offset_), std::end(offset_), 0u);
  symbols_.clear();

  std::size_t coded = 0;
  for (const std::uint8_t len : lengths) {
    if (len == 0) continue;
    if (len > kMaxBits) return false;
    ++count_[len];
    ++coded;
  }
  if (coded == 0) return false;

  // Kraft sum check: reject oversubscribed sets; allow the degenerate
  // single-code case (DEFLATE permits a one-symbol distance alphabet).
  std::uint64_t kraft = 0;
  for (int len = 1; len <= kMaxBits; ++len)
    kraft += static_cast<std::uint64_t>(count_[len])
             << (kMaxBits - len);
  const std::uint64_t full = std::uint64_t{1} << kMaxBits;
  if (kraft > full) return false;
  if (kraft < full && coded > 1) return false;

  std::uint32_t code = 0;
  std::uint32_t offset = 0;
  for (int len = 1; len <= kMaxBits; ++len) {
    code = (code + count_[len - 1]) << 1;
    first_code_[len] = code;
    offset_[len] = offset;
    offset += count_[len];
  }

  symbols_.resize(coded);
  std::uint32_t fill[kMaxBits + 1] = {};
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    const std::uint8_t len = lengths[s];
    if (len == 0) continue;
    symbols_[offset_[len] + fill[len]] = static_cast<std::uint16_t>(s);
    ++fill[len];
  }
  build_fast_table();
  ok_ = true;
  return true;
}

void HuffmanDecoder::build_fast_table() noexcept {
  fast_.fill(0);
  for (int len = 1; len <= kFastBits; ++len) {
    for (std::uint32_t j = 0; j < count_[len]; ++j) {
      // DEFLATE streams codes MSB-first but the bit reader yields bits
      // LSB-first, so the table is indexed by the reversed code,
      // replicated over every value of the don't-care high bits.
      const std::uint32_t code = first_code_[len] + j;
      std::uint32_t rev = 0;
      for (int b = 0; b < len; ++b)
        rev |= ((code >> b) & 1u) << (len - 1 - b);
      const std::uint16_t sym = symbols_[offset_[len] + j];
      const auto entry = static_cast<std::uint16_t>(
          (static_cast<std::uint32_t>(sym) << 4) | static_cast<std::uint32_t>(len));
      for (std::size_t i = rev; i < kFastSize; i += std::size_t{1} << len)
        fast_[i] = entry;
    }
  }
}

}  // namespace cdc::compress
