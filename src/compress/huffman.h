// Canonical Huffman codes with an explicit length limit, as DEFLATE needs
// (15 bits for literal/length and distance alphabets, 7 for the code-length
// alphabet). Lengths are produced by the package-merge algorithm, which is
// optimal under a length bound; codes are assigned canonically per
// RFC 1951 §3.2.2.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "support/bitstream.h"

namespace cdc::compress {

/// Optimal length-limited code lengths for the given symbol frequencies.
/// Symbols with zero frequency get length 0 (no code). If only one symbol
/// has nonzero frequency it is assigned length 1. Returns one length per
/// symbol, all <= `limit`.
std::vector<std::uint8_t> package_merge_lengths(
    std::span<const std::uint64_t> freqs, int limit);

/// Canonical code values for given code lengths (RFC 1951 §3.2.2).
/// codes[s] is meaningful only where lengths[s] > 0.
std::vector<std::uint32_t> canonical_codes(
    std::span<const std::uint8_t> lengths);

/// Canonical Huffman decoder. decode() resolves almost every symbol with
/// one table lookup over the next kFastBits bits (codes longer than that
/// fall back to the bit-serial feed() path, kept public for tests).
/// Construction fails (ok() == false) on oversubscribed or (for multi-
/// symbol alphabets) incomplete length sets, which is how the DEFLATE
/// decoder rejects corrupt dynamic headers.
class HuffmanDecoder {
 public:
  static constexpr int kMaxBits = 15;
  /// Width of the primary decode table. DEFLATE's dynamic tables rarely
  /// assign lengths beyond 9 bits to symbols that actually occur, so the
  /// fast path covers nearly every decoded symbol.
  static constexpr int kFastBits = 9;

  HuffmanDecoder() = default;
  explicit HuffmanDecoder(std::span<const std::uint8_t> lengths) {
    init(lengths);
  }

  /// (Re)builds the decode tables. Returns ok().
  bool init(std::span<const std::uint8_t> lengths);

  [[nodiscard]] bool ok() const noexcept { return ok_; }

  /// Starts decoding a fresh symbol.
  void reset() noexcept {
    code_ = 0;
    length_ = 0;
  }

  /// Decodes one symbol from `br`: peek kFastBits, one table lookup,
  /// consume only the code's real length. Returns -1 on malformed or
  /// truncated input.
  int decode(support::BitReader& br) noexcept {
    std::uint32_t bits = 0;
    const int have = br.peek_padded(kFastBits, bits);
    const std::uint16_t entry = fast_[bits];
    if (entry != 0) {
      const int len = entry & 0xfu;
      if (len > have) return -1;  // code runs past the end of the stream
      br.consume(len);
      return static_cast<int>(entry >> 4);
    }
    // The peeked bits are a prefix of a code longer than kFastBits (or
    // the input is corrupt): decode bit-serially from the same position.
    reset();
    for (;;) {
      std::uint32_t bit = 0;
      if (!br.try_read_bit(bit)) return -1;
      const int sym = feed(bit);
      if (sym >= 0) return sym;
      if (sym == -2) return -1;
    }
  }

  /// Primary-table entry for the low kFastBits of `bits` (bits in
  /// LSB-first stream order, as a 64-bit accumulator holds them):
  /// (symbol << 4) | code_length, 0 = long code or invalid prefix. The
  /// seam for accumulator-based decoders that bypass BitReader; only
  /// meaningful while ok().
  [[nodiscard]] std::uint16_t fast_entry(std::uint64_t bits) const noexcept {
    return fast_[static_cast<std::size_t>(bits) & (kFastSize - 1)];
  }

  /// Bit-serial decode from the low `avail` bits of `bits` (LSB-first
  /// stream order) — the slow path behind fast_entry() == 0. On success
  /// returns the symbol and sets `used` to the code length; returns -1
  /// when the code runs past `avail` bits (truncated input), -2 when no
  /// code matches within kMaxBits (corrupt input).
  [[nodiscard]] int decode_bits(std::uint64_t bits, int avail,
                                int& used) const noexcept {
    std::uint32_t code = 0;
    for (int len = 1; len <= kMaxBits; ++len) {
      if (len > avail) return -1;
      code = (code << 1) |
             static_cast<std::uint32_t>((bits >> (len - 1)) & 1u);
      const std::uint32_t first = first_code_[len];
      if (code >= first && code - first < count_[len]) {
        used = len;
        return symbols_[offset_[len] + (code - first)];
      }
    }
    return -2;
  }

  /// Consumes one bit; returns the symbol when complete, -1 when more bits
  /// are needed, -2 on an invalid code.
  int feed(std::uint32_t bit) noexcept {
    code_ = (code_ << 1) | (bit & 1u);
    ++length_;
    if (length_ > kMaxBits) return -2;
    const std::uint32_t first = first_code_[length_];
    const std::uint32_t count = count_[length_];
    if (code_ >= first && code_ - first < count) {
      const int sym = symbols_[offset_[length_] + (code_ - first)];
      reset();
      return sym;
    }
    return -1;
  }

 private:
  static constexpr std::size_t kFastSize = std::size_t{1} << kFastBits;

  void build_fast_table() noexcept;

  bool ok_ = false;
  std::uint32_t code_ = 0;
  int length_ = 0;
  std::uint32_t first_code_[kMaxBits + 1] = {};
  std::uint32_t count_[kMaxBits + 1] = {};
  std::uint32_t offset_[kMaxBits + 1] = {};
  std::vector<std::uint16_t> symbols_;
  // Indexed by the next kFastBits of the stream (LSB-first as read);
  // entry = (symbol << 4) | code_length, 0 = long code or invalid prefix.
  std::array<std::uint16_t, kFastSize> fast_ = {};
};

}  // namespace cdc::compress
