// Batched DEFLATE decoder — the read-side twin of the encoder's 57-bit
// put_bits fast path (deflate.cc). A 64-bit accumulator is refilled once
// per token: after a refill the buffer holds 56..63 valid bits, enough for
// a worst-case match (15-bit length code + 5 extra + 15-bit distance code
// + 13 extra = 48 bits) or several literals, so the hot loop pays one
// bounds check per symbol instead of one per byte. Match copies go through
// overlap-aware 8-byte chunks into a slack-padded output buffer.
//
// Rejection semantics are bit-for-bit those of deflate_decompress_reference
// — the differential battery in tests/compress/inflate_differential_test.cc
// holds the two to identical accept/reject decisions and identical output,
// so replay's trust model does not change with the fast path.

#include <algorithm>
#include <cstring>

#include "compress/deflate.h"
#include "compress/deflate_tables.h"
#include "compress/huffman.h"

namespace cdc::compress {

namespace {

namespace tb = tables;

// --- Accumulator ---------------------------------------------------------

/// Invariant: 8 * (p - base) == bits_consumed + n; bits [0, n) of acc are
/// the next stream bits, bits at and above n are either zero (at the tail)
/// or a correct lookahead of upcoming bytes (mid-stream), so refills are
/// idempotent ORs.
struct Bits {
  const std::uint8_t* base = nullptr;
  const std::uint8_t* p = nullptr;
  const std::uint8_t* end = nullptr;
  std::uint64_t acc = 0;
  int n = 0;
};

inline std::uint64_t load_le64(const std::uint8_t* p) noexcept {
  std::uint64_t w;
  std::memcpy(&w, p, sizeof w);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  w = __builtin_bswap64(w);
#endif
  return w;
}

/// Tops the accumulator up to 56..63 bits (fewer only when the stream is
/// nearly exhausted, in which case n counts exactly the real bits left).
inline void refill(Bits& b) noexcept {
  if (b.end - b.p >= 8) {
    b.acc |= load_le64(b.p) << b.n;
    b.p += (63 - b.n) >> 3;
    b.n |= 56;
    return;
  }
  while (b.n <= 56 && b.p < b.end) {
    b.acc |= static_cast<std::uint64_t>(*b.p++) << b.n;
    b.n += 8;
  }
}

/// try_read twin: refills on demand; false only when the stream itself is
/// out of bits. count <= 32.
inline bool read_bits(Bits& b, int count, std::uint32_t& out) noexcept {
  if (b.n < count) {
    refill(b);
    if (b.n < count) return false;
  }
  out = static_cast<std::uint32_t>(b.acc) &
        ((count == 32) ? ~0u : ((1u << count) - 1u));
  b.acc >>= count;
  b.n -= count;
  return true;
}

/// Decodes one Huffman symbol from the accumulator. The caller must have
/// refilled since the last token so that a -1 really means the stream ran
/// dry (mirrors HuffmanDecoder::decode over a padded BitReader): -1 on
/// truncated or invalid input.
inline int decode_one(Bits& b, const HuffmanDecoder& dec) noexcept {
  const std::uint16_t entry = dec.fast_entry(b.acc);
  if (entry != 0) {
    const int len = entry & 0xf;
    if (len > b.n) return -1;  // code runs past the end of the stream
    b.acc >>= len;
    b.n -= len;
    return entry >> 4;
  }
  int used = 0;
  const int sym = dec.decode_bits(b.acc, b.n, used);
  if (sym < 0) return -1;
  b.acc >>= used;
  b.n -= used;
  return sym;
}

// --- Output buffer -------------------------------------------------------

/// Guarantees out[wpos, wpos + need) is writable, plus 8 bytes of slack so
/// match copies can run in whole 8-byte chunks.
inline void ensure(std::vector<std::uint8_t>& out, std::size_t wpos,
                   std::size_t need) {
  const std::size_t want = wpos + need + 8;
  if (want > out.size())
    out.resize(std::max(want, out.size() + out.size() / 2 + 64));
}

/// Overlap-aware copy of `length` bytes from `distance` back. May write up
/// to 7 bytes of slack past dst + length (covered by ensure()).
inline void copy_match(std::uint8_t* dst, std::size_t distance,
                       std::size_t length) noexcept {
  const std::uint8_t* src = dst - distance;
  if (distance == 1) {
    std::memset(dst, src[0], length);
    return;
  }
  if (distance >= 8) {
    std::size_t i = 0;
    do {
      std::memcpy(dst + i, src + i, 8);
      i += 8;
    } while (i < length);
    return;
  }
  // Short overlapping distance (2..7): the pattern period is below the
  // chunk width, so chunked copies would repeat the wrong period —
  // replicate byte-wise (reads trail writes by `distance`, as RFC 1951
  // overlap semantics require).
  for (std::size_t i = 0; i < length; ++i) dst[i] = src[i];
}

// --- Decoder scratch -----------------------------------------------------

/// Per-thread decode workspace: Huffman tables and header length buffers,
/// recycled across calls so steady-state decode does not allocate. Holds
/// capacity only, never data (dist_usable guards a stale table after a
/// failed init).
struct InflateScratch {
  HuffmanDecoder lit;
  HuffmanDecoder dist;
  HuffmanDecoder cl;
  std::vector<std::uint8_t> cl_lengths;
  std::vector<std::uint8_t> lengths;
};

InflateScratch& inflate_scratch() {
  thread_local InflateScratch scratch;
  return scratch;
}

/// Parses a dynamic-table header (§3.2.7) into scratch.lit / scratch.dist.
/// dist_usable is false for the legal all-zero distance alphabet, whose
/// decoder must never be consulted (its tables may be stale).
bool read_dynamic_tables(Bits& b, InflateScratch& s, bool& dist_usable) {
  std::uint32_t hlit = 0;
  std::uint32_t hdist = 0;
  std::uint32_t hclen = 0;
  if (!read_bits(b, 5, hlit) || !read_bits(b, 5, hdist) ||
      !read_bits(b, 4, hclen))
    return false;
  const std::size_t nlit = hlit + 257;
  const std::size_t ndist = hdist + 1;
  const std::size_t ncl = hclen + 4;
  if (nlit > tb::kNumLitLen || ndist > 32) return false;

  s.cl_lengths.assign(tb::kNumCodeLen, 0);
  for (std::size_t i = 0; i < ncl; ++i) {
    std::uint32_t v = 0;
    if (!read_bits(b, 3, v)) return false;
    s.cl_lengths[tb::kCodeLenOrder[i]] = static_cast<std::uint8_t>(v);
  }
  if (!s.cl.init(s.cl_lengths)) return false;

  std::vector<std::uint8_t>& lengths = s.lengths;
  lengths.clear();
  lengths.reserve(nlit + ndist);
  while (lengths.size() < nlit + ndist) {
    // Code-length codes are <= 7 bits with <= 7 extra bits.
    if (b.n < 14) refill(b);
    const int sym = decode_one(b, s.cl);
    if (sym < 0) return false;
    if (sym < 16) {
      lengths.push_back(static_cast<std::uint8_t>(sym));
    } else if (sym == 16) {
      std::uint32_t rep = 0;
      if (!read_bits(b, 2, rep) || lengths.empty()) return false;
      const std::uint8_t prev = lengths.back();
      for (std::uint32_t i = 0; i < rep + 3; ++i) lengths.push_back(prev);
    } else if (sym == 17) {
      std::uint32_t rep = 0;
      if (!read_bits(b, 3, rep)) return false;
      for (std::uint32_t i = 0; i < rep + 3; ++i) lengths.push_back(0);
    } else {
      std::uint32_t rep = 0;
      if (!read_bits(b, 7, rep)) return false;
      for (std::uint32_t i = 0; i < rep + 11; ++i) lengths.push_back(0);
    }
  }
  if (lengths.size() != nlit + ndist) return false;

  const std::span<const std::uint8_t> all{lengths};
  if (!s.lit.init(all.subspan(0, nlit))) return false;
  // An all-zero distance alphabet is legal when the block has no matches;
  // init() rejects it, so tolerate that case with an unusable decoder.
  const auto dist_lengths = all.subspan(nlit, ndist);
  dist_usable = s.dist.init(dist_lengths);
  if (!dist_usable) {
    const bool all_zero =
        std::all_of(dist_lengths.begin(), dist_lengths.end(),
                    [](std::uint8_t l) { return l == 0; });
    if (!all_zero) return false;
  }
  return true;
}

/// Fixed-block decoders (§3.2.6), built once per thread.
const HuffmanDecoder& fixed_lit_decoder() {
  thread_local const HuffmanDecoder dec{tb::kFixedLitLenLengths};
  return dec;
}

const HuffmanDecoder& fixed_dist_decoder() {
  thread_local const HuffmanDecoder dec{tb::kFixedDistLengths};
  return dec;
}

/// Decodes one block body. `wpos` tracks the write position in `out`,
/// whose size is capacity (ensure() keeps 8 bytes of slack beyond wpos).
bool inflate_block_body(Bits& b, const HuffmanDecoder& lit_dec,
                        const HuffmanDecoder& dist_dec, bool dist_usable,
                        std::vector<std::uint8_t>& out, std::size_t& wpos) {
  for (;;) {
    refill(b);
    int sym = decode_one(b, lit_dec);
    for (;;) {
      if (sym < 0) return false;
      if (sym >= 256) break;
      ensure(out, wpos, 1);
      out[wpos++] = static_cast<std::uint8_t>(sym);
      // Batched literal run: a litlen code is <= 15 bits, so keep
      // decoding from the same refill while the accumulator allows.
      if (b.n < HuffmanDecoder::kMaxBits) break;
      sym = decode_one(b, lit_dec);
    }
    if (sym < 256) continue;  // accumulator low, refill and resume
    if (sym == tb::kEndOfBlock) return true;

    const int lc = sym - 257;
    if (lc >= static_cast<int>(tb::kLengthCodes.size())) return false;
    const tb::LengthCode& le =
        tb::kLengthCodes[static_cast<std::size_t>(lc)];
    // One refill covers length extra + distance code + distance extra
    // (5 + 15 + 13 = 33 bits <= the 56 a refill guarantees mid-stream).
    refill(b);
    std::uint32_t extra = 0;
    if (le.extra > 0 && !read_bits(b, le.extra, extra)) return false;
    const std::size_t length = le.base + extra;

    if (!dist_usable) return false;  // match in a matchless block
    const int dsym = decode_one(b, dist_dec);
    if (dsym < 0 || dsym >= static_cast<int>(tb::kDistCodes.size()))
      return false;
    const tb::LengthCode& de =
        tb::kDistCodes[static_cast<std::size_t>(dsym)];
    std::uint32_t dextra = 0;
    if (de.extra > 0 && !read_bits(b, de.extra, dextra)) return false;
    const std::size_t distance = de.base + dextra;
    if (distance == 0 || distance > wpos) return false;

    ensure(out, wpos, length);
    copy_match(out.data() + wpos, distance, length);
    wpos += length;
  }
}

}  // namespace

std::optional<std::vector<std::uint8_t>> deflate_decompress(
    std::span<const std::uint8_t> compressed,
    std::vector<std::uint8_t> reuse) {
  Bits b;
  b.base = compressed.data();
  b.p = b.base;
  b.end = b.base + compressed.size();

  std::vector<std::uint8_t> out = std::move(reuse);
  out.clear();
  std::size_t wpos = 0;

  InflateScratch& scratch = inflate_scratch();
  for (;;) {
    std::uint32_t bfinal = 0;
    std::uint32_t btype = 0;
    if (!read_bits(b, 1, bfinal) || !read_bits(b, 2, btype))
      return std::nullopt;
    if (btype == 0) {
      // Stored block: drop to the byte boundary and leave the
      // accumulator, so LEN/NLEN and the payload read straight from the
      // input buffer.
      b.acc >>= b.n & 7;
      b.n -= b.n & 7;
      const std::uint8_t* at = b.p - (b.n >> 3);
      b.acc = 0;
      b.n = 0;
      if (b.end - at < 4) return std::nullopt;
      const std::uint16_t len =
          static_cast<std::uint16_t>(at[0] | (at[1] << 8));
      const std::uint16_t nlen =
          static_cast<std::uint16_t>(at[2] | (at[3] << 8));
      if (static_cast<std::uint16_t>(~len) != nlen) return std::nullopt;
      at += 4;
      if (b.end - at < len) return std::nullopt;
      ensure(out, wpos, len);
      std::memcpy(out.data() + wpos, at, len);
      wpos += len;
      b.p = at + len;
    } else if (btype == 1) {
      if (!inflate_block_body(b, fixed_lit_decoder(), fixed_dist_decoder(),
                              /*dist_usable=*/true, out, wpos))
        return std::nullopt;
    } else if (btype == 2) {
      bool dist_usable = false;
      if (!read_dynamic_tables(b, scratch, dist_usable))
        return std::nullopt;
      if (!inflate_block_body(b, scratch.lit, scratch.dist, dist_usable,
                              out, wpos))
        return std::nullopt;
    } else {
      return std::nullopt;
    }
    if (bfinal) {
      out.resize(wpos);
      return out;
    }
  }
}

}  // namespace cdc::compress
