#include "compress/lz77.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>

#include "support/check.h"

namespace cdc::compress {

namespace {

constexpr std::uint32_t kHashBits = 15;
constexpr std::uint32_t kHashSize = 1u << kHashBits;

// Greedy mode skips inserting the interior of matches longer than this —
// positions inside a long run rarely seed better matches and the skip is
// most of deflate-fast's speed on low-entropy record data.
constexpr int kMaxInsertLength = 32;

std::uint32_t hash3(const std::uint8_t* p) noexcept {
  // Multiplicative hash of a 3-byte prefix.
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 0x9e3779b1u) >> (32 - kHashBits);
}

/// Length of the common prefix of a and b, capped at max_len. Compares
/// eight bytes per iteration where the byte order lets countr_zero find
/// the first differing byte.
int match_length(const std::uint8_t* a, const std::uint8_t* b,
                 int max_len) noexcept {
  int len = 0;
  if constexpr (std::endian::native == std::endian::little) {
    while (len + 8 <= max_len) {
      std::uint64_t va;
      std::uint64_t vb;
      std::memcpy(&va, a + len, 8);
      std::memcpy(&vb, b + len, 8);
      const std::uint64_t diff = va ^ vb;
      if (diff != 0) return len + (std::countr_zero(diff) >> 3);
      len += 8;
    }
  }
  while (len < max_len && a[len] == b[len]) ++len;
  return len;
}

struct Match {
  int length = 0;
  std::int32_t distance = 0;
};

/// A view over the workspace arrays plus the input; all state that must
/// persist across calls lives in Lz77Workspace.
struct MatchFinder {
  const std::uint8_t* data;
  std::int32_t size;
  std::int32_t* head;
  std::uint32_t* head_gen;
  std::int32_t* prev;
  std::uint32_t gen;

  void insert(std::int32_t pos) noexcept {
    if (pos + kMinMatch > size) return;
    const std::uint32_t h = hash3(data + pos);
    prev[pos] = head_gen[h] == gen ? head[h] : -1;
    head[h] = pos;
    head_gen[h] = gen;
  }

  /// Longest match for the string at `pos`, probing at most `max_chain`
  /// candidates. Only positions inserted this generation are reachable,
  /// so results are independent of prior inputs seen by the workspace.
  Match best_match(std::int32_t pos, int max_chain, int nice) const noexcept {
    Match best;
    const int max_len = std::min<std::int32_t>(kMaxMatch, size - pos);
    if (max_len < kMinMatch) return best;

    const std::int32_t limit = pos > kWindowSize ? pos - kWindowSize : 0;
    const std::uint32_t h = hash3(data + pos);
    std::int32_t cand = head_gen[h] == gen ? head[h] : -1;
    int best_len = kMinMatch - 1;

    while (cand >= limit && max_chain-- > 0) {
      // Quick reject on the byte one past the current best; cand < pos
      // and best_len < max_len keep both probes in bounds.
      if (data[cand + best_len] == data[pos + best_len]) {
        const int len = match_length(data + cand, data + pos, max_len);
        if (len > best_len) {
          best_len = len;
          best.distance = pos - cand;
          if (len >= nice || len >= max_len) break;
        }
      }
      cand = prev[cand];
    }
    if (best_len >= kMinMatch) best.length = best_len;
    return best;
  }
};

void push_literal(std::vector<Lz77Token>& out, std::uint8_t byte) {
  Lz77Token t;
  t.literal = byte;
  out.push_back(t);
}

void push_match(std::vector<Lz77Token>& out, int length, std::int32_t dist) {
  Lz77Token t;
  t.length = static_cast<std::uint16_t>(length);
  t.distance = static_cast<std::uint16_t>(dist);
  out.push_back(t);
}

void tokenize_greedy(MatchFinder& f, const Lz77Params& params,
                     std::vector<Lz77Token>& out) {
  std::int32_t pos = 0;
  while (pos < f.size) {
    const Match m = f.best_match(pos, params.max_chain, params.nice_length);
    f.insert(pos);
    if (m.length >= kMinMatch) {
      push_match(out, m.length, m.distance);
      const std::int32_t next = pos + m.length;
      if (m.length <= kMaxInsertLength)
        for (std::int32_t i = pos + 1; i < next; ++i) f.insert(i);
      pos = next;
    } else {
      push_literal(out, f.data[pos]);
      ++pos;
    }
  }
}

// zlib deflate_slow-style lazy matching: hold the match found at pos-1
// and emit it only if pos does not find a strictly longer one; a held
// match >= good_length shrinks the chain budget, >= nice_length skips
// the search entirely.
void tokenize_lazy(MatchFinder& f, const Lz77Params& params,
                   std::vector<Lz77Token>& out) {
  std::int32_t pos = 0;
  Match held;  // match found at pos-1 (length == 0 means none held)
  while (pos < f.size) {
    Match cur;
    if (held.length < params.nice_length) {
      int chain = params.max_chain;
      if (held.length >= params.good_length) chain >>= 2;
      cur = f.best_match(pos, chain, params.nice_length);
    }
    f.insert(pos);

    if (held.length >= kMinMatch && held.length >= cur.length) {
      push_match(out, held.length, held.distance);
      // The match starts at pos-1; positions <= pos are already in the
      // chains, so insert the rest of its cover before skipping ahead.
      const std::int32_t next = pos - 1 + held.length;
      for (std::int32_t i = pos + 1; i < next; ++i) f.insert(i);
      pos = next;
      held = Match{};
      continue;
    }

    if (held.length >= kMinMatch) {
      // Current match is strictly longer: the held position degrades to
      // a literal and the current match becomes the held one.
      push_literal(out, f.data[pos - 1]);
    } else if (cur.length < kMinMatch) {
      push_literal(out, f.data[pos]);
    }
    held = cur;
    ++pos;
  }
  if (held.length >= kMinMatch) {
    // Tail: the loop ended with a match still held at pos-1.
    push_match(out, held.length, held.distance);
  }
}

}  // namespace

void Lz77Workspace::begin(std::size_t input_size) {
  if (head_.empty()) {
    head_.assign(kHashSize, -1);
    head_gen_.assign(kHashSize, 0);
  }
  if (prev_.size() < input_size) prev_.resize(input_size);
  if (++generation_ == 0) {
    // Stamp space exhausted after 2^32 - 1 uses: one full clear, then
    // restart at generation 1 so stamp 0 stays "never written".
    std::fill(head_gen_.begin(), head_gen_.end(), 0u);
    generation_ = 1;
  }
}

void lz77_tokenize_into(Lz77Workspace& workspace,
                        std::span<const std::uint8_t> input,
                        const Lz77Params& params,
                        std::vector<Lz77Token>& out) {
  out.clear();
  if (input.empty()) return;
  CDC_CHECK(input.size() <=
            static_cast<std::size_t>(
                std::numeric_limits<std::int32_t>::max() - kMaxMatch));
  workspace.begin(input.size());

  MatchFinder finder{input.data(),
                     static_cast<std::int32_t>(input.size()),
                     workspace.head_.data(),
                     workspace.head_gen_.data(),
                     workspace.prev_.data(),
                     workspace.generation_};
  if (params.lazy) {
    tokenize_lazy(finder, params, out);
  } else {
    tokenize_greedy(finder, params, out);
  }
}

std::vector<Lz77Token> lz77_tokenize(std::span<const std::uint8_t> input,
                                     const Lz77Params& params) {
  thread_local Lz77Workspace workspace;
  std::vector<Lz77Token> tokens;
  tokens.reserve(input.size() / 4);
  lz77_tokenize_into(workspace, input, params, tokens);
  return tokens;
}

std::vector<std::uint8_t> lz77_expand(std::span<const Lz77Token> tokens) {
  std::vector<std::uint8_t> out;
  for (const Lz77Token& t : tokens) {
    if (t.is_literal()) {
      out.push_back(t.literal);
    } else {
      CDC_CHECK(t.distance >= 1 && t.distance <= out.size());
      CDC_CHECK(t.length >= kMinMatch && t.length <= kMaxMatch);
      const std::size_t start = out.size() - t.distance;
      for (std::size_t i = 0; i < t.length; ++i)
        out.push_back(out[start + i]);  // overlapping copies are defined
    }
  }
  return out;
}

}  // namespace cdc::compress
