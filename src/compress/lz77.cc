#include "compress/lz77.h"

#include <algorithm>

#include "support/check.h"

namespace cdc::compress {

namespace {

constexpr std::uint32_t kHashBits = 15;
constexpr std::uint32_t kHashSize = 1u << kHashBits;

std::uint32_t hash3(const std::uint8_t* p) noexcept {
  // Multiplicative hash of a 3-byte prefix.
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 0x9e3779b1u) >> (32 - kHashBits);
}

struct Matcher {
  explicit Matcher(std::span<const std::uint8_t> input)
      : data(input.data()),
        size(input.size()),
        head(kHashSize, -1),
        prev(input.size(), -1) {}

  void insert(std::size_t pos) noexcept {
    if (pos + kMinMatch > size) return;
    const std::uint32_t h = hash3(data + pos);
    prev[pos] = head[h];
    head[h] = static_cast<std::ptrdiff_t>(pos);
  }

  /// Longest match for the string at `pos`, probing at most
  /// `params.max_chain` chain entries within the window.
  Lz77Token best_match(std::size_t pos, const Lz77Params& params) const
      noexcept {
    Lz77Token best;
    best.literal = data[pos];
    if (pos + kMinMatch > size) return best;

    const std::size_t limit =
        pos >= kWindowSize ? pos - kWindowSize : 0;
    const std::size_t max_len =
        std::min<std::size_t>(kMaxMatch, size - pos);
    std::ptrdiff_t cand = head[hash3(data + pos)];
    int chain = params.max_chain;

    while (cand >= 0 && static_cast<std::size_t>(cand) >= limit &&
           chain-- > 0) {
      const std::size_t c = static_cast<std::size_t>(cand);
      if (c < pos) {
        // Quick reject on the byte one past the current best.
        const std::size_t probe = best.length;
        if (probe == 0 || (probe < max_len &&
                           data[c + probe] == data[pos + probe])) {
          std::size_t len = 0;
          while (len < max_len && data[c + len] == data[pos + len]) ++len;
          if (len >= kMinMatch && len > best.length) {
            best.length = static_cast<std::uint16_t>(len);
            best.distance = static_cast<std::uint16_t>(pos - c);
            if (len >= static_cast<std::size_t>(params.nice_length)) break;
          }
        }
      }
      cand = prev[c];
    }
    return best;
  }

  const std::uint8_t* data;
  std::size_t size;
  std::vector<std::ptrdiff_t> head;
  std::vector<std::ptrdiff_t> prev;
};

}  // namespace

std::vector<Lz77Token> lz77_tokenize(std::span<const std::uint8_t> input,
                                     const Lz77Params& params) {
  std::vector<Lz77Token> tokens;
  if (input.empty()) return tokens;
  tokens.reserve(input.size() / 4);

  Matcher matcher(input);
  std::size_t pos = 0;
  while (pos < input.size()) {
    Lz77Token cur = matcher.best_match(pos, params);
    if (params.lazy && cur.length >= kMinMatch &&
        cur.length < static_cast<std::uint16_t>(params.nice_length) &&
        pos + 1 < input.size()) {
      // One-step lazy evaluation: if the next position has a strictly
      // longer match, emit a literal here instead.
      matcher.insert(pos);
      const Lz77Token next = matcher.best_match(pos + 1, params);
      if (next.length > cur.length) {
        Lz77Token lit;
        lit.literal = input[pos];
        tokens.push_back(lit);
        ++pos;
        continue;  // `pos` already inserted; next loop re-evaluates there
      }
      // Keep the current match; finish inserting its covered positions.
      for (std::size_t i = 1; i < cur.length; ++i)
        matcher.insert(pos + i);
      tokens.push_back(cur);
      pos += cur.length;
      continue;
    }

    if (cur.length >= kMinMatch) {
      for (std::size_t i = 0; i < cur.length; ++i) matcher.insert(pos + i);
      tokens.push_back(cur);
      pos += cur.length;
    } else {
      Lz77Token lit;
      lit.literal = input[pos];
      matcher.insert(pos);
      tokens.push_back(lit);
      ++pos;
    }
  }
  return tokens;
}

std::vector<std::uint8_t> lz77_expand(std::span<const Lz77Token> tokens) {
  std::vector<std::uint8_t> out;
  for (const Lz77Token& t : tokens) {
    if (t.is_literal()) {
      out.push_back(t.literal);
    } else {
      CDC_CHECK(t.distance >= 1 && t.distance <= out.size());
      CDC_CHECK(t.length >= kMinMatch && t.length <= kMaxMatch);
      const std::size_t start = out.size() - t.distance;
      for (std::size_t i = 0; i < t.length; ++i)
        out.push_back(out[start + i]);  // overlapping copies are defined
    }
  }
  return out;
}

}  // namespace cdc::compress
