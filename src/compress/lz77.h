// LZ77 tokenization over a 32 KiB sliding window with hash-chain match
// search and one-step lazy matching — the front half of DEFLATE.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cdc::compress {

/// One LZ77 token: either a literal byte or a back-reference.
struct Lz77Token {
  // length == 0 means literal; otherwise a match of `length` in [3, 258]
  // at `distance` in [1, 32768].
  std::uint16_t length = 0;
  std::uint16_t distance = 0;
  std::uint8_t literal = 0;

  [[nodiscard]] bool is_literal() const noexcept { return length == 0; }
};

struct Lz77Params {
  int max_chain = 128;     ///< hash-chain positions probed per match search
  int nice_length = 128;   ///< stop searching once a match this long is found
  bool lazy = true;        ///< one-step lazy matching
};

constexpr int kMinMatch = 3;
constexpr int kMaxMatch = 258;
constexpr int kWindowSize = 32768;

/// Greedy/lazy tokenization of `input`. The token stream, when expanded in
/// order, reproduces `input` exactly (property-tested).
std::vector<Lz77Token> lz77_tokenize(std::span<const std::uint8_t> input,
                                     const Lz77Params& params = {});

/// Expands a token stream back into bytes (the reference inverse used by
/// tests; the DEFLATE decoder has its own incremental copy loop).
std::vector<std::uint8_t> lz77_expand(std::span<const Lz77Token> tokens);

}  // namespace cdc::compress
