// LZ77 tokenization over a 32 KiB sliding window with hash-chain match
// search and one-step lazy matching — the front half of DEFLATE.
//
// The match finder's state (head/prev hash chains) lives in an explicit
// Lz77Workspace so the hot path never allocates: workers keep one
// workspace per thread and recycle it across calls. Reset is O(1) via
// generation stamps on the hash heads — stale chain entries from earlier
// inputs are simply never followed — so tokenization is a pure function
// of (input, params) regardless of what the workspace processed before.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cdc::compress {

/// One LZ77 token: either a literal byte or a back-reference.
struct Lz77Token {
  // length == 0 means literal; otherwise a match of `length` in [3, 258]
  // at `distance` in [1, 32768].
  std::uint16_t length = 0;
  std::uint16_t distance = 0;
  std::uint8_t literal = 0;

  [[nodiscard]] bool is_literal() const noexcept { return length == 0; }
};

struct Lz77Params {
  int max_chain = 128;     ///< hash-chain positions probed per match search
  int good_length = 32;    ///< quarter the chain budget beyond this match
  int nice_length = 128;   ///< stop searching once a match this long is found
  bool lazy = true;        ///< one-step lazy matching
};

constexpr int kMinMatch = 3;
constexpr int kMaxMatch = 258;
constexpr int kWindowSize = 32768;

/// Recyclable match-finder state. Reusing one workspace across calls
/// avoids the ~160 KiB head/prev (re)allocation per compress call the
/// seed paid; results are identical to a fresh workspace.
class Lz77Workspace {
 public:
  Lz77Workspace() = default;

  Lz77Workspace(const Lz77Workspace&) = delete;
  Lz77Workspace& operator=(const Lz77Workspace&) = delete;

  /// Bytes currently retained by the chain arrays (tests/benches).
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return head_.capacity() * sizeof(std::int32_t) +
           head_gen_.capacity() * sizeof(std::uint32_t) +
           prev_.capacity() * sizeof(std::int32_t);
  }

 private:
  friend void lz77_tokenize_into(Lz77Workspace&,
                                 std::span<const std::uint8_t>,
                                 const Lz77Params&,
                                 std::vector<Lz77Token>&);

  void begin(std::size_t input_size);

  std::vector<std::int32_t> head_;      ///< kHashSize, lazily sized
  std::vector<std::uint32_t> head_gen_; ///< generation stamp per head slot
  std::vector<std::int32_t> prev_;      ///< >= input_size, grown as needed
  std::uint32_t generation_ = 0;
};

/// Tokenizes `input` into `out` (cleared first) using `workspace` for the
/// match-finder state. The token stream, when expanded in order,
/// reproduces `input` exactly (property-tested); the same (input, params)
/// produce the same tokens on any thread and any workspace history.
void lz77_tokenize_into(Lz77Workspace& workspace,
                        std::span<const std::uint8_t> input,
                        const Lz77Params& params,
                        std::vector<Lz77Token>& out);

/// Convenience wrapper over a thread-local workspace.
std::vector<Lz77Token> lz77_tokenize(std::span<const std::uint8_t> input,
                                     const Lz77Params& params = {});

/// Expands a token stream back into bytes (the reference inverse used by
/// tests; the DEFLATE decoder has its own incremental copy loop).
std::vector<std::uint8_t> lz77_expand(std::span<const Lz77Token> tokens);

}  // namespace cdc::compress
