#include "corpus/chunk_store.h"

#include <algorithm>

#include "support/check.h"

namespace cdc::corpus {

namespace {

/// Second, independent base for the strong hash (first is kKarpRabinBase).
constexpr std::uint64_t kSecondBase = 1000003;

}  // namespace

ChunkId chunk_id(std::span<const std::uint8_t> bytes) noexcept {
  // Length folded in so a chunk and its zero-padded extension differ even
  // when the polynomial hashes agree on the shared prefix.
  ChunkId id;
  id.hi = kr_add(kr_hash(bytes, kKarpRabinBase),
                 kr_mul(bytes.size() + 1, 0x1234567887654321ull &
                                              kKarpRabinPrime));
  id.lo = kr_add(kr_hash(bytes, kSecondBase), bytes.size());
  return id;
}

std::optional<std::uint32_t> ChunkStore::lookup(
    std::span<const std::uint8_t> bytes, const ChunkId& id) const {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return std::nullopt;
  for (const std::uint32_t ordinal : it->second) {
    const Entry& entry = chunks_[ordinal];
    if (entry.bytes.size() == bytes.size() &&
        std::equal(bytes.begin(), bytes.end(), entry.bytes.begin()))
      return ordinal;
  }
  return std::nullopt;
}

std::uint32_t ChunkStore::insert_unique(std::span<const std::uint8_t> bytes,
                                        const ChunkId& id) {
  const auto ordinal = static_cast<std::uint32_t>(chunks_.size());
  Entry entry;
  entry.id = id;
  entry.bytes.assign(bytes.begin(), bytes.end());
  chunks_.push_back(std::move(entry));
  by_id_[id].push_back(ordinal);
  stored_bytes_ += bytes.size();
  return ordinal;
}

ChunkStore::InternResult ChunkStore::intern(
    std::span<const std::uint8_t> bytes) {
  presented_bytes_ += bytes.size();
  const ChunkId id = chunk_id(bytes);
  InternResult result;
  if (const auto hit = lookup(bytes, id)) {
    result.ordinal = *hit;
    result.inserted = false;
  } else {
    result.ordinal = insert_unique(bytes, id);
    result.inserted = true;
  }
  ++chunks_[result.ordinal].refs;
  return result;
}

std::uint32_t ChunkStore::adopt(std::span<const std::uint8_t> bytes) {
  const ChunkId id = chunk_id(bytes);
  if (const auto hit = lookup(bytes, id)) return *hit;
  return insert_unique(bytes, id);
}

void ChunkStore::add_reference(std::uint32_t ordinal) {
  CDC_CHECK_MSG(ordinal < chunks_.size(), "chunk ordinal out of range");
  ++chunks_[ordinal].refs;
}

std::span<const std::uint8_t> ChunkStore::chunk(std::uint32_t ordinal) const {
  CDC_CHECK_MSG(ordinal < chunks_.size(), "chunk ordinal out of range");
  return chunks_[ordinal].bytes;
}

const ChunkId& ChunkStore::id(std::uint32_t ordinal) const {
  CDC_CHECK_MSG(ordinal < chunks_.size(), "chunk ordinal out of range");
  return chunks_[ordinal].id;
}

std::uint64_t ChunkStore::ref_count(std::uint32_t ordinal) const {
  CDC_CHECK_MSG(ordinal < chunks_.size(), "chunk ordinal out of range");
  return chunks_[ordinal].refs;
}

}  // namespace cdc::corpus
