// Content-addressed chunk table: the dedup substrate of the corpus layer.
//
// Chunks are keyed by a 122-bit strong hash (two independent Karp-Rabin
// polynomial hashes over the full chunk); identical content interns to
// one ordinal no matter which member brought it in, and a hash collision
// between distinct contents is caught by a byte compare on the hit path
// and stored as a separate ordinal — correctness never rests on the hash
// alone. Ordinals are dense and assigned in intern order, which is what
// lets member manifests reference chunks by small varints and lets the
// corpus container rebuild the table by re-interning chunk frames in file
// order (each frame is CRC-protected by the container format).
//
// Refcounts track how many member-manifest references point at each
// chunk; the corpus is append-only, so they serve integrity checks and
// dedup statistics rather than reclamation.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "corpus/rolling.h"

namespace cdc::corpus {

/// Strong content hash of one chunk: two Karp-Rabin polynomial hashes
/// with independent bases, 61 bits each.
struct ChunkId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend auto operator<=>(const ChunkId&, const ChunkId&) = default;
};

[[nodiscard]] ChunkId chunk_id(std::span<const std::uint8_t> bytes) noexcept;

class ChunkStore {
 public:
  struct InternResult {
    std::uint32_t ordinal = 0;
    bool inserted = false;  ///< false: dedup hit on an existing chunk
  };

  /// Interns `bytes`, returning the ordinal of the unique chunk with that
  /// content and bumping its refcount by one (one call = one manifest
  /// reference). Deterministic: the same sequence of intern calls yields
  /// the same ordinals everywhere.
  InternResult intern(std::span<const std::uint8_t> bytes);

  /// Re-admits a chunk while rebuilding from a container, with refcount 0
  /// (member manifests re-add their references as they load). Returns the
  /// ordinal, which for a clean rebuild equals the frame's position.
  std::uint32_t adopt(std::span<const std::uint8_t> bytes);

  /// Adds one manifest reference to an existing ordinal.
  void add_reference(std::uint32_t ordinal);

  /// Side-effect-free membership probe (encoding selection costs a
  /// chunked stream before committing to intern it).
  [[nodiscard]] std::optional<std::uint32_t> peek(
      std::span<const std::uint8_t> bytes) const {
    return lookup(bytes, chunk_id(bytes));
  }

  [[nodiscard]] std::span<const std::uint8_t> chunk(
      std::uint32_t ordinal) const;
  [[nodiscard]] const ChunkId& id(std::uint32_t ordinal) const;
  [[nodiscard]] std::uint64_t ref_count(std::uint32_t ordinal) const;

  /// Number of unique chunks.
  [[nodiscard]] std::uint32_t count() const noexcept {
    return static_cast<std::uint32_t>(chunks_.size());
  }
  /// Bytes of unique chunk content held (what dedup actually stores).
  [[nodiscard]] std::uint64_t stored_bytes() const noexcept {
    return stored_bytes_;
  }
  /// Bytes presented across all intern calls (what dedup saved from).
  [[nodiscard]] std::uint64_t presented_bytes() const noexcept {
    return presented_bytes_;
  }

 private:
  struct Entry {
    ChunkId id;
    std::vector<std::uint8_t> bytes;
    std::uint64_t refs = 0;
  };
  struct IdHash {
    std::size_t operator()(const ChunkId& id) const noexcept {
      return static_cast<std::size_t>(id.hi ^ (id.lo * 0x9e3779b97f4a7c15ull));
    }
  };

  std::uint32_t insert_unique(std::span<const std::uint8_t> bytes,
                              const ChunkId& id);
  [[nodiscard]] std::optional<std::uint32_t> lookup(
      std::span<const std::uint8_t> bytes, const ChunkId& id) const;

  std::vector<Entry> chunks_;
  /// id → ordinals with that id (more than one only on a true collision).
  std::unordered_map<ChunkId, std::vector<std::uint32_t>, IdHash> by_id_;
  std::uint64_t stored_bytes_ = 0;
  std::uint64_t presented_bytes_ = 0;
};

}  // namespace cdc::corpus
