#include "corpus/chunker.h"

#include <bit>

#include "support/check.h"
#include "support/rng.h"

namespace cdc::corpus {

namespace {

/// Seed-derived polynomial base: odd, in [257, 2^16), so the hash mixes
/// well and differently seeded chunkers disagree on boundaries.
std::uint64_t base_for(std::uint64_t seed) {
  support::Xoshiro256 rng(seed ^ 0x9e3779b97f4a7c15ull);
  return (rng.bounded(65279) + 257) | 1;
}

}  // namespace

std::vector<std::size_t> chunk_boundaries(
    std::span<const std::uint8_t> bytes, const ChunkerConfig& config) {
  CDC_CHECK_MSG(std::has_single_bit(config.avg_size),
                "chunker avg_size must be a power of two");
  CDC_CHECK_MSG(config.min_size > 0 && config.min_size <= config.avg_size &&
                    config.avg_size <= config.max_size,
                "chunker requires 0 < min <= avg <= max");
  CDC_CHECK_MSG(config.window <= config.min_size,
                "chunker window must fit inside min_size");

  std::vector<std::size_t> cuts;
  if (bytes.empty()) return cuts;

  const std::uint64_t base = base_for(config.seed);
  const std::uint64_t mask = config.avg_size - 1;
  // The boundary pattern the masked window hash must hit. Derived from the
  // seed (second RNG draw, so it is independent of the base above).
  support::Xoshiro256 rng(config.seed ^ 0x6a09e667f3bcc909ull);
  const std::uint64_t magic = rng() & mask;

  KarpRabinWindow window(config.window, base);
  std::size_t chunk_start = 0;
  std::size_t filled = 0;  ///< bytes of the current chunk fed to `window`
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const std::size_t in_chunk = i - chunk_start + 1;
    if (filled < config.window) {
      window.push(bytes[i]);
      ++filled;
    } else {
      window.roll(bytes[i - config.window], bytes[i]);
    }
    const bool content_cut = in_chunk >= config.min_size &&
                             filled >= config.window &&
                             (window.hash() & mask) == magic;
    if (content_cut || in_chunk >= config.max_size) {
      cuts.push_back(i + 1);
      chunk_start = i + 1;
      window.reset();
      filled = 0;
    }
  }
  if (cuts.empty() || cuts.back() != bytes.size())
    cuts.push_back(bytes.size());
  return cuts;
}

std::vector<std::span<const std::uint8_t>> chunk_spans(
    std::span<const std::uint8_t> bytes, const ChunkerConfig& config) {
  std::vector<std::span<const std::uint8_t>> out;
  std::size_t start = 0;
  for (const std::size_t cut : chunk_boundaries(bytes, config)) {
    out.push_back(bytes.subspan(start, cut - start));
    start = cut;
  }
  return out;
}

}  // namespace cdc::corpus
