// Content-defined chunking over record payloads.
//
// Splits a byte stream into chunks whose boundaries depend only on local
// content: a cut lands where the Karp-Rabin hash of the trailing window
// matches a seed-derived pattern. Inserting or deleting bytes therefore
// shifts only the chunks around the edit — downstream chunks
// resynchronize on the same content positions, which is what lets the
// content-addressed chunk store (corpus/chunk_store.h) deduplicate
// near-identical records across corpus members. Deterministic in
// (bytes, config): same input, same seed, same cuts, on every machine.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "corpus/rolling.h"

namespace cdc::corpus {

struct ChunkerConfig {
  /// Rolling-window width in bytes. Cuts react to the last `window` bytes
  /// only; larger windows make boundaries more selective, smaller ones
  /// resynchronize faster after an edit.
  std::size_t window = 32;
  /// Hard floor: no cut before `min_size` bytes (the window restarts at
  /// each cut, so boundary checks are suppressed until then). The final
  /// chunk of a stream may be shorter — there is nothing left to extend
  /// it with.
  std::size_t min_size = 128;
  /// Expected chunk size between min and max: a cut fires when the low
  /// log2(avg_size) hash bits match the seed pattern. Must be a power of
  /// two.
  std::size_t avg_size = 1024;
  /// Hard ceiling: a cut is forced at `max_size` bytes even if the
  /// content never matches.
  std::size_t max_size = 4096;
  /// Seeds both the polynomial base and the boundary pattern, so two
  /// corpora with different seeds cut the same content differently.
  std::uint64_t seed = 1;
};

/// Cut points of `bytes` under `config`: ascending offsets, each the
/// exclusive end of one chunk, always ending with bytes.size() (for
/// non-empty input). Every chunk but the last is in
/// [min_size, max_size]; the last is in (0, max_size].
[[nodiscard]] std::vector<std::size_t> chunk_boundaries(
    std::span<const std::uint8_t> bytes, const ChunkerConfig& config);

/// The chunks themselves, as views aliasing `bytes`.
[[nodiscard]] std::vector<std::span<const std::uint8_t>> chunk_spans(
    std::span<const std::uint8_t> bytes, const ChunkerConfig& config);

}  // namespace cdc::corpus
