#include "corpus/corpus.h"

#include <algorithm>
#include <set>
#include <utility>

#include "compress/crc32.h"
#include "obs/metrics.h"
#include "support/binary.h"
#include "support/check.h"

namespace cdc::corpus {

namespace {

constexpr std::uint8_t kMemberMagic = 'M';
constexpr std::uint8_t kChunkMagic = 'C';
constexpr std::uint8_t kFamilyMagic = 'F';
constexpr std::uint8_t kFormatVersion = 1;
constexpr std::uint8_t kFlagReference = 0x01;

runtime::StreamKey meta_stream() {
  return runtime::StreamKey{kCorpusMetaRank, 0};
}
runtime::StreamKey chunk_stream() {
  return runtime::StreamKey{kCorpusChunkRank, 0};
}
runtime::StreamKey member_stream(std::uint32_t ordinal) {
  return runtime::StreamKey{kCorpusMemberRank, ordinal};
}

struct Counters {
  obs::Counter& members = obs::counter("corpus.members");
  obs::Counter& streams = obs::counter("corpus.streams");
  obs::Counter& raw_bytes = obs::counter("corpus.raw_bytes");
  obs::Counter& stored_bytes = obs::counter("corpus.stored_bytes");
  obs::Counter& chunk_inserted = obs::counter("corpus.chunks.inserted");
  obs::Counter& chunk_hits = obs::counter("corpus.chunks.hits");
  obs::Counter& chunk_hit_bytes = obs::counter("corpus.chunks.hit_bytes");
  obs::Counter& enc_chunks = obs::counter("corpus.enc.chunks");
  obs::Counter& enc_onepass = obs::counter("corpus.enc.delta_onepass");
  obs::Counter& enc_correcting = obs::counter("corpus.enc.delta_correcting");
  obs::Counter& enc_gzip = obs::counter("corpus.enc.gzip");
  obs::Counter& enc_raw = obs::counter("corpus.enc.raw");
  obs::Counter& delta_copied = obs::counter("corpus.delta.copied_bytes");
  obs::Counter& delta_literal = obs::counter("corpus.delta.literal_bytes");
  obs::Counter& delta_corrections = obs::counter("corpus.delta.corrections");
  obs::Counter& delta_cycles = obs::counter("corpus.delta.cycles_broken");
  obs::Counter& pool_hits = obs::counter("corpus.pool.hits");
  obs::Counter& pool_misses = obs::counter("corpus.pool.misses");
  obs::Counter& pool_recycled = obs::counter("corpus.pool.recycled_bytes");
  obs::Counter& read_streams = obs::counter("corpus.read.streams");
  obs::Counter& read_in_place = obs::counter("corpus.read.in_place");
};

Counters& counters() {
  static Counters c;
  return c;
}

std::vector<std::uint8_t> pool_acquire(support::BufferPool& pool) {
  std::vector<std::uint8_t> buffer;
  if (pool.acquire(buffer)) {
    counters().pool_hits.add(1);
    counters().pool_recycled.add(buffer.capacity());
  } else {
    counters().pool_misses.add(1);
  }
  return buffer;
}

void pool_release(support::BufferPool& pool, std::vector<std::uint8_t> buf) {
  pool.release(std::move(buf));
}

obs::Counter& encoding_counter(MemberEncoding encoding) {
  switch (encoding) {
    case MemberEncoding::kChunks: return counters().enc_chunks;
    case MemberEncoding::kDeltaOnepass: return counters().enc_onepass;
    case MemberEncoding::kDeltaCorrecting: return counters().enc_correcting;
    case MemberEncoding::kSelfGzip: return counters().enc_gzip;
    case MemberEncoding::kRaw: return counters().enc_raw;
  }
  return counters().enc_raw;
}

}  // namespace

std::string_view to_string(MemberEncoding encoding) noexcept {
  switch (encoding) {
    case MemberEncoding::kChunks: return "chunks";
    case MemberEncoding::kDeltaOnepass: return "delta-onepass";
    case MemberEncoding::kDeltaCorrecting: return "delta-correcting";
    case MemberEncoding::kSelfGzip: return "gzip";
    case MemberEncoding::kRaw: return "raw";
  }
  return "?";
}

Corpus::Corpus(std::string path, CorpusConfig config)
    : config_(config), writer_(std::move(path)) {}

const std::string& Corpus::path() const noexcept { return writer_.path(); }

std::vector<std::uint8_t> Corpus::pooled() { return pool_acquire(pool_); }

void Corpus::recycle(std::vector<std::uint8_t> buffer) {
  pool_release(pool_, std::move(buffer));
}

std::uint32_t Corpus::add_member(const std::string& family,
                                 const std::string& member_name,
                                 const runtime::RecordStore& record,
                                 bool pin_reference) {
  CDC_CHECK_MSG(!sealed_, "corpus already sealed");
  const std::uint32_t ordinal = next_member_++;
  auto [fam_it, fresh_family] = families_.try_emplace(family);
  FamilyState& fam = fam_it->second;
  const bool is_reference = fresh_family || pin_reference;
  const std::uint32_t delta_ref = is_reference ? ordinal : fam.reference;

  std::vector<runtime::StreamKey> keys = record.keys();
  std::sort(keys.begin(), keys.end());

  support::ByteWriter manifest(pooled());
  manifest.u8(kMemberMagic);
  manifest.u8(kFormatVersion);
  manifest.sized_bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(family.data()), family.size()));
  manifest.sized_bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(member_name.data()),
      member_name.size()));
  manifest.u8(is_reference ? kFlagReference : 0);
  manifest.varint(delta_ref);
  manifest.varint(keys.size());

  std::uint64_t chunk_frame_bytes = 0;
  std::map<runtime::StreamKey, std::vector<std::uint8_t>> raw_streams;
  for (const runtime::StreamKey& key : keys) {
    std::vector<std::uint8_t> raw = record.read(key);
    stats_.raw_bytes += raw.size();
    counters().raw_bytes.add(raw.size());

    // ---- candidate encodings -------------------------------------------
    // Raw is always available; everything else must beat it.
    MemberEncoding best = MemberEncoding::kRaw;
    std::uint64_t best_cost = raw.size() + 2;

    std::vector<std::uint8_t> gz =
        compress::gzip_compress(raw, config_.level, pooled());
    if (gz.size() + 2 < best_cost) {
      best = MemberEncoding::kSelfGzip;
      best_cost = gz.size() + 2;
    }

    // Chunk candidate: new content pays full freight (chunk bytes + frame
    // overhead), shared content pays only its manifest ordinal.
    std::vector<std::span<const std::uint8_t>> spans;
    if (!raw.empty()) {
      spans = chunk_spans(raw, config_.chunker);
      std::uint64_t cost = 0;
      std::set<ChunkId> this_stream;  // intra-stream repeats are also hits
      for (const auto& span : spans) {
        cost += 3;  // manifest ordinal
        if (chunks_.peek(span).has_value()) continue;
        const ChunkId id = chunk_id(span);
        if (!this_stream.insert(id).second) continue;
        cost += span.size() + 12;  // chunk bytes + frame header/crc
      }
      if (cost < best_cost) {
        best = MemberEncoding::kChunks;
        best_cost = cost;
      }
    }

    // Delta candidate, when a reference stream with this key exists.
    const std::vector<std::uint8_t>* ref = nullptr;
    if (!is_reference) {
      const auto ref_it = fam.ref_streams.find(key);
      if (ref_it != fam.ref_streams.end()) ref = &ref_it->second;
    }
    std::vector<std::uint8_t> packed_delta;
    if (ref != nullptr) {
      DeltaStats dstats;
      std::vector<std::uint8_t> delta =
          encode_delta(*ref, raw, config_.delta_algorithm, config_.delta,
                       &dstats, pooled());
      packed_delta = compress::deflate_compress(delta, config_.level, pooled());
      recycle(std::move(delta));
      counters().delta_copied.add(dstats.copied_bytes);
      counters().delta_literal.add(dstats.literal_bytes);
      counters().delta_corrections.add(dstats.corrections);
      counters().delta_cycles.add(dstats.cycles_broken);
      if (packed_delta.size() + 4 < best_cost) {
        best = config_.delta_algorithm == DeltaAlgorithm::kOnepass
                   ? MemberEncoding::kDeltaOnepass
                   : MemberEncoding::kDeltaCorrecting;
        best_cost = packed_delta.size() + 4;
      }
    }

    // ---- commit the winner ---------------------------------------------
    manifest.svarint(key.rank);
    manifest.varint(key.callsite);
    manifest.varint(raw.size());
    manifest.u32(compress::crc32(raw));
    manifest.u8(static_cast<std::uint8_t>(best));
    switch (best) {
      case MemberEncoding::kRaw:
        manifest.sized_bytes(raw);
        break;
      case MemberEncoding::kSelfGzip:
        manifest.sized_bytes(gz);
        break;
      case MemberEncoding::kDeltaOnepass:
      case MemberEncoding::kDeltaCorrecting:
        manifest.sized_bytes(packed_delta);
        break;
      case MemberEncoding::kChunks: {
        manifest.varint(spans.size());
        for (const auto& span : spans) {
          const ChunkStore::InternResult result = chunks_.intern(span);
          if (result.inserted) {
            support::ByteWriter frame(pooled());
            frame.u8(kChunkMagic);
            frame.varint(result.ordinal);
            frame.bytes(span);
            writer_.append_frame(chunk_stream(), frame.view());
            chunk_frame_bytes += frame.size();
            counters().chunk_inserted.add(1);
            recycle(std::move(frame).take());
          } else {
            counters().chunk_hits.add(1);
            counters().chunk_hit_bytes.add(span.size());
            stats_.chunk_hits += 1;
            stats_.chunk_hit_bytes += span.size();
          }
          manifest.varint(result.ordinal);
        }
        break;
      }
    }
    stats_.by_encoding[static_cast<std::size_t>(best)] += 1;
    encoding_counter(best).add(1);
    ++stats_.streams;
    counters().streams.add(1);
    recycle(std::move(gz));
    recycle(std::move(packed_delta));
    if (is_reference) raw_streams.emplace(key, std::move(raw));
  }

  writer_.append_frame(member_stream(ordinal), manifest.view());
  stats_.stored_bytes += manifest.size() + chunk_frame_bytes;
  counters().stored_bytes.add(manifest.size() + chunk_frame_bytes);
  recycle(std::move(manifest).take());

  if (is_reference) {
    fam.reference = ordinal;
    fam.ref_streams = std::move(raw_streams);
  }
  ++fam.members;
  ++stats_.members;
  stats_.families = families_.size();
  stats_.chunk_count = chunks_.count();
  stats_.chunk_bytes = chunks_.stored_bytes();
  counters().members.add(1);
  return ordinal;
}

void Corpus::write_family_table() {
  support::ByteWriter table(pooled());
  table.u8(kFamilyMagic);
  table.u8(kFormatVersion);
  table.varint(families_.size());
  for (const auto& [name, fam] : families_) {
    table.sized_bytes(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(name.data()), name.size()));
    table.varint(fam.reference);
    table.varint(fam.members);
  }
  writer_.append_frame(meta_stream(), table.view());
  stats_.stored_bytes += table.size();
  recycle(std::move(table).take());
}

void Corpus::flush() { writer_.flush(); }

void Corpus::seal() {
  if (sealed_) return;
  write_family_table();
  writer_.seal();
  sealed_ = true;
}

void Corpus::abandon() {
  writer_.abandon();
  sealed_ = true;
}

// ---------------------------------------------------------------------------
// CorpusStore
// ---------------------------------------------------------------------------

CorpusStore::CorpusStore(Corpus* corpus, std::string family,
                         std::string member_name, bool pin_reference)
    : corpus_(corpus), family_(std::move(family)),
      member_name_(std::move(member_name)), pin_reference_(pin_reference),
      buffer_(std::make_unique<runtime::MemoryStore>()) {
  CDC_CHECK_MSG(corpus_ != nullptr, "CorpusStore requires a corpus");
}

void CorpusStore::append(const runtime::StreamKey& key,
                         std::span<const std::uint8_t> bytes) {
  buffer_->append(key, bytes);
}

std::vector<std::uint8_t> CorpusStore::read(
    const runtime::StreamKey& key) const {
  return buffer_->read(key);
}

std::vector<runtime::StreamKey> CorpusStore::keys() const {
  return buffer_->keys();
}

std::uint64_t CorpusStore::total_bytes() const {
  return buffer_->total_bytes();
}

std::uint64_t CorpusStore::rank_bytes(minimpi::Rank rank) const {
  return buffer_->rank_bytes(rank);
}

void CorpusStore::sync() { corpus_->flush(); }

std::uint32_t CorpusStore::seal_member() {
  const std::uint32_t ordinal =
      corpus_->add_member(family_, member_name_, *buffer_, pin_reference_);
  buffer_ = std::make_unique<runtime::MemoryStore>();
  pin_reference_ = false;  // a pin applies to the member that carried it
  return ordinal;
}

// ---------------------------------------------------------------------------
// CorpusReader
// ---------------------------------------------------------------------------

std::unique_ptr<CorpusReader> CorpusReader::open(const std::string& path,
                                                 std::string* error) {
  auto set_error = [&](const std::string& message) {
    if (error != nullptr) *error = message;
  };
  std::string open_error;
  auto container = store::ContainerReader::open(path, &open_error);
  if (container == nullptr) {
    set_error(open_error);
    return nullptr;
  }
  if (!container->header_ok()) {
    set_error("not a corpus container: " + container->header_error());
    return nullptr;
  }
  if (!container->index_ok()) {
    set_error("corpus index unreadable (" + container->index_error() +
              ") — salvage with repack first");
    return nullptr;
  }

  auto reader = std::unique_ptr<CorpusReader>(new CorpusReader());
  reader->reader_ = std::move(container);

  // Chunk table: re-admit surviving chunk frames. Each frame carries the
  // ordinal it was interned under, so members keep resolving correctly
  // even when salvage dropped earlier chunk frames.
  std::map<std::uint32_t, std::uint32_t> chunk_map;  // stated → store ordinal
  for (const auto payload : reader->reader_->frame_payloads(chunk_stream())) {
    support::ByteReader in(payload);
    std::uint8_t magic = 0;
    std::uint64_t stated = 0;
    if (!in.try_u8(magic) || magic != kChunkMagic || !in.try_varint(stated))
      continue;  // unparseable chunk frame: members needing it degrade
    std::span<const std::uint8_t> bytes;
    if (!in.try_bytes(in.remaining(), bytes)) continue;
    chunk_map[static_cast<std::uint32_t>(stated)] = reader->chunks_.adopt(bytes);
  }

  // Member manifests.
  std::set<std::string> families;
  for (const runtime::StreamKey& key : reader->reader_->keys()) {
    if (key.rank != kCorpusMemberRank) continue;
    const auto frames = reader->reader_->frame_payloads(key);
    if (frames.empty()) continue;
    Member member;
    member.ordinal = key.callsite;
    MemberData data;
    support::ByteReader in(frames.front());
    std::uint8_t magic = 0;
    std::uint8_t version = 0;
    std::uint8_t flags = 0;
    std::uint64_t delta_ref = 0;
    std::uint64_t stream_count = 0;
    std::span<const std::uint8_t> family_bytes;
    std::span<const std::uint8_t> name_bytes;
    bool ok = in.try_u8(magic) && magic == kMemberMagic &&
              in.try_u8(version) && version == kFormatVersion &&
              in.try_sized_bytes(family_bytes) &&
              in.try_sized_bytes(name_bytes) && in.try_u8(flags) &&
              in.try_varint(delta_ref) && in.try_varint(stream_count);
    if (ok) {
      member.family.assign(family_bytes.begin(), family_bytes.end());
      member.name.assign(name_bytes.begin(), name_bytes.end());
      member.is_reference = (flags & kFlagReference) != 0;
      member.delta_ref = static_cast<std::uint32_t>(delta_ref);
      for (std::uint64_t s = 0; ok && s < stream_count; ++s) {
        StreamEntry entry;
        std::int64_t rank = 0;
        std::uint64_t callsite = 0;
        std::uint64_t raw_len = 0;
        std::uint8_t encoding = 0;
        ok = in.try_svarint(rank) && in.try_varint(callsite) &&
             in.try_varint(raw_len) && in.try_u32(entry.crc) &&
             in.try_u8(encoding);
        if (!ok) break;
        entry.key = runtime::StreamKey{
            static_cast<minimpi::Rank>(rank),
            static_cast<minimpi::CallsiteId>(callsite)};
        entry.raw_len = raw_len;
        entry.encoding = static_cast<MemberEncoding>(encoding);
        switch (entry.encoding) {
          case MemberEncoding::kRaw:
          case MemberEncoding::kSelfGzip:
          case MemberEncoding::kDeltaOnepass:
          case MemberEncoding::kDeltaCorrecting: {
            std::span<const std::uint8_t> body;
            ok = in.try_sized_bytes(body);
            if (ok) entry.payload.assign(body.begin(), body.end());
            break;
          }
          case MemberEncoding::kChunks: {
            std::uint64_t count = 0;
            ok = in.try_varint(count);
            for (std::uint64_t c = 0; ok && c < count; ++c) {
              std::uint64_t stated = 0;
              ok = in.try_varint(stated);
              if (!ok) break;
              const auto mapped =
                  chunk_map.find(static_cast<std::uint32_t>(stated));
              if (mapped == chunk_map.end()) {
                member.readable = false;
                member.damage = "chunk " + std::to_string(stated) +
                                " lost to salvage";
                entry.chunk_ordinals.clear();
                // Keep parsing so the remaining streams stay visible.
                for (++c; c < count; ++c) {
                  ok = in.try_varint(stated);
                  if (!ok) break;
                }
                break;
              }
              entry.chunk_ordinals.push_back(mapped->second);
            }
            break;
          }
          default:
            ok = false;
        }
        if (ok) data.streams.push_back(std::move(entry));
      }
    }
    if (!ok) {
      member.readable = false;
      if (member.damage.empty()) member.damage = "manifest unparseable";
    }
    if (!member.family.empty()) families.insert(member.family);
    reader->stats_.raw_bytes += [&] {
      std::uint64_t total = 0;
      for (const auto& entry : data.streams) total += entry.raw_len;
      return total;
    }();
    reader->stats_.streams += data.streams.size();
    for (const auto& entry : data.streams)
      reader->stats_.by_encoding[static_cast<std::size_t>(entry.encoding)] += 1;
    reader->data_.emplace(member.ordinal, std::move(data));
    reader->members_.push_back(std::move(member));
  }
  std::sort(reader->members_.begin(), reader->members_.end(),
            [](const Member& a, const Member& b) {
              return a.ordinal < b.ordinal;
            });

  // Delta members need their reference member alive and readable.
  for (Member& member : reader->members_) {
    if (!member.readable || member.delta_ref == member.ordinal) continue;
    const Member* ref = reader->member(member.delta_ref);
    if (ref == nullptr || !ref->readable) {
      member.readable = false;
      member.damage = "reference member " + std::to_string(member.delta_ref) +
                      (ref == nullptr ? " lost to salvage" : " unreadable");
    }
  }

  reader->stats_.members = reader->members_.size();
  reader->stats_.families = families.size();
  reader->stats_.chunk_count = reader->chunks_.count();
  reader->stats_.chunk_bytes = reader->chunks_.stored_bytes();
  for (const runtime::StreamKey& key : reader->reader_->keys()) {
    if (key.rank > kCorpusMetaRank) continue;  // corpus metadata ranks only
    const store::StreamIndexEntry* entry = reader->reader_->find(key);
    if (entry != nullptr) reader->stats_.stored_bytes += entry->payload_bytes;
  }
  return reader;
}

const CorpusReader::Member* CorpusReader::member(std::uint32_t ordinal) const {
  const auto it = std::lower_bound(
      members_.begin(), members_.end(), ordinal,
      [](const Member& m, std::uint32_t o) { return m.ordinal < o; });
  return it != members_.end() && it->ordinal == ordinal ? &*it : nullptr;
}

std::vector<runtime::StreamKey> CorpusReader::member_keys(
    std::uint32_t ordinal) const {
  std::vector<runtime::StreamKey> out;
  const auto it = data_.find(ordinal);
  if (it == data_.end()) return out;
  out.reserve(it->second.streams.size());
  for (const StreamEntry& entry : it->second.streams) out.push_back(entry.key);
  return out;
}

const std::vector<std::uint8_t>* CorpusReader::reference_stream(
    std::uint32_t ref_ordinal, const runtime::StreamKey& key) const {
  auto& cache = ref_cache_[ref_ordinal];
  const auto hit = cache.find(key);
  if (hit != cache.end()) return &hit->second;
  const auto data_it = data_.find(ref_ordinal);
  if (data_it == data_.end()) return nullptr;
  for (const StreamEntry& entry : data_it->second.streams) {
    if (entry.key != key) continue;
    // Reference streams are stored self-contained; a delta here would
    // mean a forged or mis-salvaged manifest.
    if (entry.encoding == MemberEncoding::kDeltaOnepass ||
        entry.encoding == MemberEncoding::kDeltaCorrecting)
      return nullptr;
    auto bytes = read_stream(ref_ordinal, key, false);
    if (!bytes.has_value()) return nullptr;
    return &cache.emplace(key, std::move(*bytes)).first->second;
  }
  return nullptr;
}

std::optional<std::vector<std::uint8_t>> CorpusReader::read_stream(
    std::uint32_t ordinal, const runtime::StreamKey& key,
    bool in_place) const {
  const Member* info = member(ordinal);
  const auto data_it = data_.find(ordinal);
  if (info == nullptr || !info->readable || data_it == data_.end())
    return std::nullopt;
  const StreamEntry* entry = nullptr;
  for (const StreamEntry& candidate : data_it->second.streams)
    if (candidate.key == key) {
      entry = &candidate;
      break;
    }
  if (entry == nullptr) return std::nullopt;

  counters().read_streams.add(1);
  std::optional<std::vector<std::uint8_t>> raw;
  switch (entry->encoding) {
    case MemberEncoding::kRaw:
      raw = entry->payload;
      break;
    case MemberEncoding::kSelfGzip:
      raw = compress::gzip_decompress(entry->payload);
      break;
    case MemberEncoding::kChunks: {
      std::vector<std::uint8_t> out = pool_acquire(pool_);
      out.reserve(static_cast<std::size_t>(entry->raw_len));
      for (const std::uint32_t chunk : entry->chunk_ordinals) {
        const auto bytes = chunks_.chunk(chunk);
        out.insert(out.end(), bytes.begin(), bytes.end());
      }
      raw = std::move(out);
      break;
    }
    case MemberEncoding::kDeltaOnepass:
    case MemberEncoding::kDeltaCorrecting: {
      const std::vector<std::uint8_t>* ref =
          reference_stream(info->delta_ref, key);
      if (ref == nullptr) return std::nullopt;
      const auto delta = compress::deflate_decompress(entry->payload);
      if (!delta.has_value()) return std::nullopt;
      if (in_place) {
        counters().read_in_place.add(1);
        std::vector<std::uint8_t> buffer = pool_acquire(pool_);
        buffer.assign(ref->begin(), ref->end());
        if (!apply_delta_in_place(buffer, *delta)) return std::nullopt;
        raw = std::move(buffer);
      } else {
        raw = apply_delta(*ref, *delta, pool_acquire(pool_));
      }
      break;
    }
    default:
      return std::nullopt;
  }
  if (!raw.has_value()) return std::nullopt;
  if (raw->size() != entry->raw_len || compress::crc32(*raw) != entry->crc)
    return std::nullopt;
  return raw;
}

bool CorpusReader::load_member(std::uint32_t ordinal,
                               runtime::MemoryStore& out,
                               bool in_place) const {
  const auto data_it = data_.find(ordinal);
  if (data_it == data_.end()) return false;
  for (const StreamEntry& entry : data_it->second.streams) {
    auto raw = read_stream(ordinal, entry.key, in_place);
    if (!raw.has_value()) return false;
    out.append(entry.key, *raw);
    pool_release(pool_, std::move(*raw));
  }
  return true;
}

std::vector<std::size_t> CorpusReader::chunk_sizes() const {
  std::vector<std::size_t> sizes;
  sizes.reserve(chunks_.count());
  for (std::uint32_t i = 0; i < chunks_.count(); ++i)
    sizes.push_back(chunks_.chunk(i).size());
  return sizes;
}

std::uint64_t CorpusReader::file_bytes() const noexcept {
  return reader_ != nullptr ? reader_->file_bytes() : 0;
}

}  // namespace cdc::corpus
