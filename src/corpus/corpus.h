// The record corpus: one container file holding many recorded runs
// ("members") of the same application family, stored at a fraction of
// their independent size.
//
// The paper makes one record small by encoding it as a difference from a
// predictable reference (the Lamport clock order); the corpus applies the
// same move across records. Every family (app, config) elects a reference
// member — first write wins unless a later member is explicitly pinned —
// and each subsequent member stream is stored as whichever of these is
// smallest:
//
//   * a differential (onepass or correcting, corpus/delta.h) against the
//     reference member's same stream, deflate-compressed;
//   * content-defined chunks (corpus/chunker.h) interned in a
//     content-addressed chunk table (corpus/chunk_store.h), so bytes
//     shared with ANY earlier member are stored once;
//   * self-compressed gzip, the fallback when sharing does not pay;
//   * raw bytes, for streams too small for any header to pay.
//
// Everything persists in the existing CDCC container format (one frame
// per chunk, one frame per member manifest, reserved negative ranks), so
// flush()/seal()/abandon() durability semantics, verify, and the
// repack_container salvage path carry over unchanged. Chunk frames are
// appended before the member frame that references them, so any member
// frame that survives a crash can resolve its chunks from the same
// salvaged file.
//
// CorpusStore adapts the ingest side to the runtime::RecordStore
// interface: a Recorder writes into it like any other store, and
// seal_member() commits the buffered record to the corpus.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "compress/deflate.h"
#include "corpus/chunk_store.h"
#include "corpus/chunker.h"
#include "corpus/delta.h"
#include "runtime/storage.h"
#include "store/container_reader.h"
#include "store/container_writer.h"
#include "support/buffer_pool.h"

namespace cdc::corpus {

/// Reserved ranks for corpus metadata streams. Real MPI ranks are
/// non-negative; these stay clear of them (and of other reserved users of
/// negative ranks) so corpus containers and record containers share the
/// frame format without ambiguity.
inline constexpr std::int32_t kCorpusMetaRank = -9000;   ///< family table
inline constexpr std::int32_t kCorpusChunkRank = -9001;  ///< chunk frames
inline constexpr std::int32_t kCorpusMemberRank = -9002; ///< member frames

/// How one member stream is stored.
enum class MemberEncoding : std::uint8_t {
  kChunks = 1,           ///< chunk-table ordinals
  kDeltaOnepass = 2,     ///< deflated onepass delta vs the reference
  kDeltaCorrecting = 3,  ///< deflated correcting delta vs the reference
  kSelfGzip = 4,         ///< independent gzip
  kRaw = 5,              ///< stored bytes
};

[[nodiscard]] std::string_view to_string(MemberEncoding encoding) noexcept;

struct CorpusConfig {
  ChunkerConfig chunker;
  DeltaConfig delta;
  /// Which differential encoder to run (selection still compares its
  /// output against chunking and gzip per stream).
  DeltaAlgorithm delta_algorithm = DeltaAlgorithm::kCorrecting;
  /// Entropy-coding level for delta payloads and the gzip fallback.
  compress::DeflateLevel level = compress::DeflateLevel::kDefault;
};

struct CorpusStats {
  std::uint64_t members = 0;
  std::uint64_t families = 0;
  std::uint64_t streams = 0;
  std::uint64_t raw_bytes = 0;      ///< member payloads before encoding
  std::uint64_t stored_bytes = 0;   ///< frame payload bytes written
  std::uint64_t chunk_count = 0;
  std::uint64_t chunk_bytes = 0;    ///< unique chunk content bytes
  std::uint64_t chunk_hits = 0;     ///< intern calls served by dedup
  std::uint64_t chunk_hit_bytes = 0;
  /// Streams stored per encoding, indexed by MemberEncoding value.
  std::uint64_t by_encoding[6] = {0, 0, 0, 0, 0, 0};

  [[nodiscard]] double dedup_ratio() const noexcept {
    return stored_bytes > 0 ? static_cast<double>(raw_bytes) /
                                  static_cast<double>(stored_bytes)
                            : 0.0;
  }
};

/// Write side: builds one corpus container.
class Corpus {
 public:
  /// Creates (truncating) the container at `path`.
  explicit Corpus(std::string path, CorpusConfig config = {});

  Corpus(const Corpus&) = delete;
  Corpus& operator=(const Corpus&) = delete;

  /// Commits every stream of `record` as one member of `family`.
  /// The family's first member becomes its reference; pass
  /// `pin_reference` to make THIS member the reference for members added
  /// after it (earlier members keep their original reference). Returns
  /// the member's corpus-wide ordinal.
  std::uint32_t add_member(const std::string& family,
                           const std::string& member_name,
                           const runtime::RecordStore& record,
                           bool pin_reference = false);

  /// Durability barrier (ContainerWriter::flush).
  void flush();
  /// Writes the family table and the container index/footer. Idempotent.
  void seal();
  /// Crash simulation: closes without index/footer (salvage required).
  void abandon();

  [[nodiscard]] const CorpusStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::string& path() const noexcept;

 private:
  struct FamilyState {
    std::uint32_t reference = 0;  ///< member ordinal deltas point at
    std::uint32_t members = 0;
    /// Reference member's raw streams, kept to delta against.
    std::map<runtime::StreamKey, std::vector<std::uint8_t>> ref_streams;
  };

  std::vector<std::uint8_t> pooled();
  void recycle(std::vector<std::uint8_t> buffer);
  void write_family_table();

  CorpusConfig config_;
  store::ContainerWriter writer_;
  ChunkStore chunks_;
  std::map<std::string, FamilyState> families_;
  std::uint32_t next_member_ = 0;
  CorpusStats stats_;
  support::BufferPool pool_{32};
  bool sealed_ = false;
};

/// RecordStore adapter for ingest: buffers one member in memory, then
/// seal_member() commits it to the corpus. Composes under ShardedStore /
/// RetryingStore / CompressionService exactly like the stock stores.
class CorpusStore final : public runtime::RecordStore {
 public:
  CorpusStore(Corpus* corpus, std::string family, std::string member_name,
              bool pin_reference = false);

  void append(const runtime::StreamKey& key,
              std::span<const std::uint8_t> bytes) override;
  [[nodiscard]] std::vector<std::uint8_t> read(
      const runtime::StreamKey& key) const override;
  [[nodiscard]] std::vector<runtime::StreamKey> keys() const override;
  [[nodiscard]] std::uint64_t total_bytes() const override;
  [[nodiscard]] std::uint64_t rank_bytes(minimpi::Rank rank) const override;
  void sync() override;

  /// Commits the buffered member to the corpus and clears the buffer for
  /// the next one. Returns the member ordinal.
  std::uint32_t seal_member();

 private:
  Corpus* corpus_;
  std::string family_;
  std::string member_name_;
  bool pin_reference_;
  /// MemoryStore is immovable (internal mutex), so the buffer is swapped
  /// out wholesale at seal_member().
  std::unique_ptr<runtime::MemoryStore> buffer_;
};

/// Read side: opens a sealed (or salvaged) corpus container.
class CorpusReader {
 public:
  struct Member {
    std::uint32_t ordinal = 0;
    std::string family;
    std::string name;
    bool is_reference = false;
    /// Self-contained members have delta_ref == ordinal; delta members
    /// point at the member their streams are encoded against.
    std::uint32_t delta_ref = 0;
    bool readable = true;   ///< false: salvage lost chunks or the reference
    std::string damage;     ///< why, when !readable
  };

  /// Opens `path`. Requires a readable index (a crashed container must go
  /// through repack_container first — the salvage contract of the store
  /// layer). Members whose chunks or reference member were lost to
  /// salvage open as readable == false instead of failing the corpus.
  static std::unique_ptr<CorpusReader> open(const std::string& path,
                                            std::string* error = nullptr);

  [[nodiscard]] const std::vector<Member>& members() const noexcept {
    return members_;
  }
  [[nodiscard]] const Member* member(std::uint32_t ordinal) const;

  /// Stream keys of one member (its record's keys).
  [[nodiscard]] std::vector<runtime::StreamKey> member_keys(
      std::uint32_t ordinal) const;

  /// Reconstructed raw bytes of one member stream, CRC-verified against
  /// the manifest. `in_place` reconstructs delta streams with the TKDE'03
  /// in-place transform (reference buffer mutated into the version)
  /// instead of copying out of a pristine reference. nullopt when the
  /// member is unreadable or reconstruction fails verification.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> read_stream(
      std::uint32_t ordinal, const runtime::StreamKey& key,
      bool in_place = false) const;

  /// Materializes a whole member into `out` (a fresh store) for replay.
  [[nodiscard]] bool load_member(std::uint32_t ordinal,
                                 runtime::MemoryStore& out,
                                 bool in_place = false) const;

  [[nodiscard]] const CorpusStats& stats() const noexcept { return stats_; }
  /// Unique chunk sizes (for the inspector's histogram).
  [[nodiscard]] std::vector<std::size_t> chunk_sizes() const;
  [[nodiscard]] std::uint64_t file_bytes() const noexcept;

 private:
  struct StreamEntry {
    runtime::StreamKey key;
    std::uint64_t raw_len = 0;
    std::uint32_t crc = 0;
    MemberEncoding encoding = MemberEncoding::kRaw;
    std::vector<std::uint32_t> chunk_ordinals;  ///< kChunks (store ordinals)
    std::vector<std::uint8_t> payload;          ///< delta/gzip/raw body
  };
  struct MemberData {
    std::vector<StreamEntry> streams;
  };

  CorpusReader() = default;
  [[nodiscard]] const std::vector<std::uint8_t>* reference_stream(
      std::uint32_t ref_ordinal, const runtime::StreamKey& key) const;

  std::unique_ptr<store::ContainerReader> reader_;
  ChunkStore chunks_;
  std::vector<Member> members_;
  std::map<std::uint32_t, MemberData> data_;
  CorpusStats stats_;
  /// Reference streams are reconstructed once and kept: every non-pinned
  /// member of a family deltas against the same one.
  mutable std::map<std::uint32_t,
                   std::map<runtime::StreamKey, std::vector<std::uint8_t>>>
      ref_cache_;
  mutable support::BufferPool pool_{8};
};

}  // namespace cdc::corpus
