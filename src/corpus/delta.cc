#include "corpus/delta.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <numeric>
#include <queue>
#include <utility>

#include "support/binary.h"
#include "support/check.h"

namespace cdc::corpus {

namespace {

constexpr std::uint8_t kDeltaMagic = 'D';
constexpr std::uint8_t kDeltaVersion = 1;
constexpr std::uint8_t kOpEnd = 0x00;
constexpr std::uint8_t kOpAdd = 0x01;
constexpr std::uint8_t kOpCopy = 0x02;

/// Power-of-two table size: at least the configured floor, grows with the
/// input so load factor stays sane, capped so a pathological input cannot
/// ask for gigabytes of table.
std::size_t table_slots(std::size_t floor_size, std::size_t input) {
  const std::size_t want =
      std::bit_ceil(std::max<std::size_t>(input / 4, std::size_t{1}));
  return std::clamp<std::size_t>(want, std::max<std::size_t>(floor_size, 16),
                                 std::size_t{1} << 20);
}

/// Rolling footprint hasher: O(1) when queried at consecutive offsets,
/// recomputes after a jump (match skips move both encoders' pointers).
class FootprintScanner {
 public:
  FootprintScanner(std::span<const std::uint8_t> data, std::size_t width,
                   std::uint64_t base)
      : data_(data), width_(width), window_(width, base) {}

  /// Hash of data[pos, pos + width). Requires pos + width <= data.size().
  std::uint64_t at(std::size_t pos) {
    if (valid_ && pos == pos_) return window_.hash();
    if (valid_ && pos == pos_ + 1) {
      window_.roll(data_[pos - 1], data_[pos + width_ - 1]);
    } else {
      window_.reset();
      for (std::size_t i = 0; i < width_; ++i) window_.push(data_[pos + i]);
    }
    pos_ = pos;
    valid_ = true;
    return window_.hash();
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t width_;
  KarpRabinWindow window_;
  std::size_t pos_ = 0;
  bool valid_ = false;
};

std::size_t match_forward(std::span<const std::uint8_t> ref,
                          std::span<const std::uint8_t> ver, std::size_t ro,
                          std::size_t vo) {
  const std::size_t limit = std::min(ref.size() - ro, ver.size() - vo);
  std::size_t len = 0;
  while (len < limit && ref[ro + len] == ver[vo + len]) ++len;
  return len;
}

void flush_literal(std::vector<DeltaCommand>& cmds,
                   std::span<const std::uint8_t> ver, std::size_t begin,
                   std::size_t end) {
  if (end <= begin) return;
  DeltaCommand cmd;
  cmd.kind = DeltaCommand::Kind::kAdd;
  cmd.write_off = begin;
  cmd.length = end - begin;
  cmd.bytes.assign(ver.begin() + static_cast<std::ptrdiff_t>(begin),
                   ver.begin() + static_cast<std::ptrdiff_t>(end));
  cmds.push_back(std::move(cmd));
}

DeltaCommand make_copy(std::size_t write_off, std::size_t read_off,
                       std::size_t len) {
  DeltaCommand cmd;
  cmd.kind = DeltaCommand::Kind::kCopy;
  cmd.write_off = write_off;
  cmd.read_off = read_off;
  cmd.length = len;
  return cmd;
}

/// JACM'02 §6: reference footprints enter the (first-come) table only as
/// the reference pointer advances in step with the version pointer;
/// matches jump the reference pointer forward past the copied region.
std::vector<DeltaCommand> encode_onepass(std::span<const std::uint8_t> ref,
                                         std::span<const std::uint8_t> ver,
                                         const DeltaConfig& config) {
  std::vector<DeltaCommand> cmds;
  const std::size_t s = config.footprint;
  const std::size_t slots =
      table_slots(config.table_size, std::max(ref.size(), ver.size()));
  const std::uint64_t mask = slots - 1;
  std::vector<std::int64_t> table(slots, -1);
  FootprintScanner ref_scan(ref, s, config.base);
  FootprintScanner ver_scan(ver, s, config.base);

  std::size_t vp = 0;
  std::size_t rp = 0;
  std::size_t literal_start = 0;
  while (vp + s <= ver.size()) {
    while (rp + s <= ref.size() && rp <= vp) {
      const std::size_t slot = ref_scan.at(rp) & mask;
      if (table[slot] < 0) table[slot] = static_cast<std::int64_t>(rp);
      ++rp;
    }
    const std::size_t slot = ver_scan.at(vp) & mask;
    const std::int64_t cand = table[slot];
    if (cand >= 0) {
      const auto ro = static_cast<std::size_t>(cand);
      if (std::memcmp(ref.data() + ro, ver.data() + vp, s) == 0) {
        const std::size_t len = s + match_forward(ref, ver, ro + s, vp + s);
        if (len >= config.min_match) {
          flush_literal(cmds, ver, literal_start, vp);
          cmds.push_back(make_copy(vp, ro, len));
          vp += len;
          literal_start = vp;
          rp = std::max(rp, ro + len);
          continue;
        }
      }
    }
    ++vp;
  }
  flush_literal(cmds, ver, literal_start, ver.size());
  return cmds;
}

/// JACM'02 §8: the whole reference is checkpointed up front (strided so
/// the table holds it), and every match extends backward as well as
/// forward, retracting pending literal bytes the greedy forward scan had
/// already given up on.
std::vector<DeltaCommand> encode_correcting(std::span<const std::uint8_t> ref,
                                            std::span<const std::uint8_t> ver,
                                            const DeltaConfig& config,
                                            DeltaStats* stats) {
  std::vector<DeltaCommand> cmds;
  const std::size_t s = config.footprint;
  const std::size_t slots =
      table_slots(config.table_size, std::max(ref.size(), ver.size()));
  const std::uint64_t mask = slots - 1;
  std::vector<std::int64_t> table(slots, -1);
  FootprintScanner ref_scan(ref, s, config.base);
  FootprintScanner ver_scan(ver, s, config.base);

  const std::size_t footprints = ref.size() >= s ? ref.size() - s + 1 : 0;
  if (footprints > 0) {
    const std::size_t stride =
        std::max<std::size_t>(1, (footprints + slots - 1) / slots);
    for (std::size_t ro = 0; ro + s <= ref.size(); ro += stride) {
      const std::size_t slot = ref_scan.at(ro) & mask;
      if (table[slot] < 0) table[slot] = static_cast<std::int64_t>(ro);
    }
  }

  std::size_t vp = 0;
  std::size_t literal_start = 0;
  while (vp + s <= ver.size()) {
    const std::size_t slot = ver_scan.at(vp) & mask;
    const std::int64_t cand = table[slot];
    if (cand >= 0) {
      const auto ro = static_cast<std::size_t>(cand);
      if (std::memcmp(ref.data() + ro, ver.data() + vp, s) == 0) {
        const std::size_t fwd = s + match_forward(ref, ver, ro + s, vp + s);
        // Backward extension: only pending literal bytes (at or past
        // literal_start) may be retracted — committed commands stand.
        std::size_t back = 0;
        while (back < ro && back < vp - literal_start &&
               ref[ro - back - 1] == ver[vp - back - 1])
          ++back;
        const std::size_t len = fwd + back;
        if (len >= config.min_match) {
          if (stats) stats->corrections += back;
          const std::size_t wstart = vp - back;
          flush_literal(cmds, ver, literal_start, wstart);
          cmds.push_back(make_copy(wstart, ro - back, len));
          vp = wstart + len;
          literal_start = vp;
          continue;
        }
      }
    }
    ++vp;
  }
  flush_literal(cmds, ver, literal_start, ver.size());
  return cmds;
}

/// TKDE'03 in-place ordering: copy u must run before copy v when v writes
/// into u's read region; Kahn's algorithm over that digraph, breaking
/// cycles by materializing the cheapest remaining copy as a literal.
/// Literals write without reading, so they all run last. The result is
/// simultaneously valid against a pristine reference (every command has
/// an explicit write offset), which is why one stored form serves both
/// apply_delta and apply_delta_in_place.
std::vector<DeltaCommand> reorder_for_in_place(
    std::vector<DeltaCommand> cmds, std::span<const std::uint8_t> ref,
    DeltaStats* stats) {
  std::vector<DeltaCommand> copies;
  std::vector<DeltaCommand> adds;
  for (DeltaCommand& cmd : cmds) {
    (cmd.kind == DeltaCommand::Kind::kCopy ? copies : adds)
        .push_back(std::move(cmd));
  }

  const std::size_t n = copies.size();
  std::vector<std::vector<std::uint32_t>> succ(n);
  std::vector<std::uint32_t> indeg(n, 0);
  if (n > 0) {
    std::vector<std::uint32_t> by_read(n);
    std::iota(by_read.begin(), by_read.end(), 0u);
    std::sort(by_read.begin(), by_read.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return copies[a].read_off < copies[b].read_off;
              });
    std::uint64_t max_read_len = 0;
    for (const DeltaCommand& c : copies)
      max_read_len = std::max(max_read_len, c.length);
    for (std::uint32_t v = 0; v < n; ++v) {
      const std::uint64_t wstart = copies[v].write_off;
      const std::uint64_t wend = wstart + copies[v].length;
      // Candidate readers have read_off in (wstart - max_read_len, wend).
      const std::uint64_t lo =
          wstart >= max_read_len ? wstart - max_read_len + 1 : 0;
      auto first = std::lower_bound(
          by_read.begin(), by_read.end(), lo,
          [&](std::uint32_t idx, std::uint64_t key) {
            return copies[idx].read_off < key;
          });
      for (auto it = first; it != by_read.end(); ++it) {
        const std::uint32_t u = *it;
        if (copies[u].read_off >= wend) break;
        if (u == v) continue;  // self-overlap: memmove handles it
        if (copies[u].read_off + copies[u].length > wstart) {
          succ[u].push_back(v);
          ++indeg[v];
        }
      }
    }
  }

  // Min-heap on (write_off, index) so the emitted order is deterministic.
  using Ready = std::pair<std::uint64_t, std::uint32_t>;
  std::priority_queue<Ready, std::vector<Ready>, std::greater<>> ready;
  for (std::uint32_t i = 0; i < n; ++i)
    if (indeg[i] == 0) ready.emplace(copies[i].write_off, i);

  std::vector<DeltaCommand> ordered;
  ordered.reserve(cmds.size());
  std::vector<char> done(n, 0);
  std::size_t remaining = n;
  auto retire = [&](std::uint32_t idx) {
    done[idx] = 1;
    --remaining;
    for (const std::uint32_t v : succ[idx])
      if (!done[v] && --indeg[v] == 0) ready.emplace(copies[v].write_off, v);
  };
  while (remaining > 0) {
    if (ready.empty()) {
      // Every remaining copy sits on a cycle; convert the cheapest one to
      // a literal (its bytes are known: they come from the reference).
      std::uint32_t pick = 0;
      bool have = false;
      for (std::uint32_t i = 0; i < n; ++i) {
        if (done[i]) continue;
        if (!have || copies[i].length < copies[pick].length ||
            (copies[i].length == copies[pick].length &&
             copies[i].write_off < copies[pick].write_off)) {
          pick = i;
          have = true;
        }
      }
      CDC_CHECK_MSG(have, "in-place ordering lost a copy");
      DeltaCommand& c = copies[pick];
      DeltaCommand add;
      add.kind = DeltaCommand::Kind::kAdd;
      add.write_off = c.write_off;
      add.length = c.length;
      const auto ro = static_cast<std::ptrdiff_t>(c.read_off);
      add.bytes.assign(ref.begin() + ro,
                       ref.begin() + ro + static_cast<std::ptrdiff_t>(c.length));
      adds.push_back(std::move(add));
      if (stats) ++stats->cycles_broken;
      retire(pick);
      continue;
    }
    const auto [off, idx] = ready.top();
    ready.pop();
    if (done[idx]) continue;
    ordered.push_back(std::move(copies[idx]));
    retire(idx);
  }

  std::sort(adds.begin(), adds.end(),
            [](const DeltaCommand& a, const DeltaCommand& b) {
              return a.write_off < b.write_off;
            });
  for (DeltaCommand& add : adds) ordered.push_back(std::move(add));
  return ordered;
}

// Re-points copies onto the diagonal and merges the runs that become
// contiguous. Record streams are fixed-width rows, so two members of a
// family agree byte-for-byte at most offsets — but the footprint table
// keeps the FIRST occurrence of repeated content, so the matcher hands
// back an early off-diagonal read_off even when the aligned bytes are
// identical. Diagonal copies serialize as zero deltas (serialize_delta),
// overlap trivially safely in place, and fuse into longer runs.
std::vector<DeltaCommand> diagonalize(std::vector<DeltaCommand> cmds,
                                      std::span<const std::uint8_t> ref,
                                      std::span<const std::uint8_t> ver) {
  for (DeltaCommand& cmd : cmds) {
    if (cmd.kind != DeltaCommand::Kind::kCopy) continue;
    if (cmd.read_off == cmd.write_off) continue;
    if (cmd.write_off + cmd.length > ref.size()) continue;
    if (std::memcmp(ref.data() + cmd.write_off, ver.data() + cmd.write_off,
                    static_cast<std::size_t>(cmd.length)) == 0)
      cmd.read_off = cmd.write_off;
  }
  // Encoders emit copies in version order, so contiguous diagonal (or
  // merely collinear) neighbours are adjacent here.
  std::vector<DeltaCommand> merged;
  merged.reserve(cmds.size());
  for (DeltaCommand& cmd : cmds) {
    if (!merged.empty() && cmd.kind == DeltaCommand::Kind::kCopy &&
        merged.back().kind == DeltaCommand::Kind::kCopy &&
        merged.back().write_off + merged.back().length == cmd.write_off &&
        merged.back().read_off + merged.back().length == cmd.read_off) {
      merged.back().length += cmd.length;
      continue;
    }
    merged.push_back(std::move(cmd));
  }
  return merged;
}

}  // namespace

std::vector<DeltaCommand> delta_commands(std::span<const std::uint8_t> reference,
                                         std::span<const std::uint8_t> version,
                                         DeltaAlgorithm algorithm,
                                         const DeltaConfig& config,
                                         DeltaStats* stats) {
  CDC_CHECK_MSG(config.footprint >= 4, "delta footprint too small");
  CDC_CHECK_MSG(config.min_match >= config.footprint / 2,
                "delta min_match too small to pay for a copy opcode");
  std::vector<DeltaCommand> cmds =
      algorithm == DeltaAlgorithm::kOnepass
          ? encode_onepass(reference, version, config)
          : encode_correcting(reference, version, config, stats);
  cmds = diagonalize(std::move(cmds), reference, version);
  cmds = reorder_for_in_place(std::move(cmds), reference, stats);
  if (stats) {
    for (const DeltaCommand& cmd : cmds) {
      if (cmd.kind == DeltaCommand::Kind::kCopy) {
        ++stats->copies;
        stats->copied_bytes += cmd.length;
      } else {
        ++stats->adds;
        stats->literal_bytes += cmd.length;
      }
    }
  }
  return cmds;
}

std::vector<std::uint8_t> serialize_delta(std::span<const DeltaCommand> commands,
                                          std::uint64_t ref_len,
                                          std::uint64_t ver_len,
                                          DeltaAlgorithm algorithm,
                                          std::vector<std::uint8_t> reuse) {
  support::ByteWriter writer(std::move(reuse));
  writer.u8(kDeltaMagic);
  writer.u8(kDeltaVersion);
  writer.u8(static_cast<std::uint8_t>(algorithm));
  writer.varint(ref_len);
  writer.varint(ver_len);
  // Offsets are relative: write_off as a zigzag delta from the write
  // cursor (the end of the previous command's extent), read_off as a
  // zigzag delta from the command's own write_off. Record streams are
  // fixed-width rows, so cross-member edits leave most copies on the
  // diagonal (read_off == write_off, contiguous with the previous
  // command) — both deltas collapse to single zero bytes and a COPY costs
  // 4 bytes instead of up to 3 full varint offsets.
  std::uint64_t cursor = 0;
  for (const DeltaCommand& cmd : commands) {
    if (cmd.kind == DeltaCommand::Kind::kAdd) {
      writer.u8(kOpAdd);
      writer.svarint(static_cast<std::int64_t>(cmd.write_off - cursor));
      writer.sized_bytes(cmd.bytes);
    } else {
      writer.u8(kOpCopy);
      writer.svarint(static_cast<std::int64_t>(cmd.write_off - cursor));
      writer.svarint(static_cast<std::int64_t>(cmd.read_off - cmd.write_off));
      writer.varint(cmd.length);
    }
    cursor = cmd.write_off + cmd.length;
  }
  writer.u8(kOpEnd);
  return std::move(writer).take();
}

std::vector<std::uint8_t> encode_delta(std::span<const std::uint8_t> reference,
                                       std::span<const std::uint8_t> version,
                                       DeltaAlgorithm algorithm,
                                       const DeltaConfig& config,
                                       DeltaStats* stats,
                                       std::vector<std::uint8_t> reuse) {
  const std::vector<DeltaCommand> cmds =
      delta_commands(reference, version, algorithm, config, stats);
  return serialize_delta(cmds, reference.size(), version.size(), algorithm,
                         std::move(reuse));
}

namespace {

bool parse_header(support::ByteReader& reader, DeltaHeader& out) {
  std::uint8_t magic = 0;
  std::uint8_t version = 0;
  if (!reader.try_u8(magic) || magic != kDeltaMagic) return false;
  if (!reader.try_u8(version) || version != kDeltaVersion) return false;
  if (!reader.try_u8(out.algorithm)) return false;
  if (out.algorithm != static_cast<std::uint8_t>(DeltaAlgorithm::kOnepass) &&
      out.algorithm != static_cast<std::uint8_t>(DeltaAlgorithm::kCorrecting))
    return false;
  return reader.try_varint(out.ref_len) && reader.try_varint(out.ver_len);
}

}  // namespace

std::optional<DeltaHeader> read_delta_header(
    std::span<const std::uint8_t> delta) {
  support::ByteReader reader(delta);
  DeltaHeader header;
  if (!parse_header(reader, header)) return std::nullopt;
  return header;
}

std::optional<std::vector<std::uint8_t>> apply_delta(
    std::span<const std::uint8_t> reference,
    std::span<const std::uint8_t> delta, std::vector<std::uint8_t> reuse) {
  support::ByteReader reader(delta);
  DeltaHeader header;
  if (!parse_header(reader, header)) return std::nullopt;
  if (header.ref_len != reference.size()) return std::nullopt;
  reuse.clear();
  reuse.resize(header.ver_len, 0);
  std::uint64_t cursor = 0;
  for (;;) {
    std::uint8_t op = 0;
    if (!reader.try_u8(op)) return std::nullopt;
    if (op == kOpEnd) break;
    std::int64_t dwrite = 0;
    if (!reader.try_svarint(dwrite)) return std::nullopt;
    // Wraparound from a hostile delta lands far past ver_len and fails
    // the same bounds checks an in-range offset must pass.
    const std::uint64_t write_off =
        cursor + static_cast<std::uint64_t>(dwrite);
    if (op == kOpAdd) {
      std::span<const std::uint8_t> literal;
      if (!reader.try_sized_bytes(literal)) return std::nullopt;
      if (write_off > header.ver_len ||
          literal.size() > header.ver_len - write_off)
        return std::nullopt;
      if (!literal.empty())
        std::memcpy(reuse.data() + write_off, literal.data(), literal.size());
      cursor = write_off + literal.size();
    } else if (op == kOpCopy) {
      std::int64_t dread = 0;
      std::uint64_t length = 0;
      if (!reader.try_svarint(dread) || !reader.try_varint(length))
        return std::nullopt;
      const std::uint64_t read_off =
          write_off + static_cast<std::uint64_t>(dread);
      if (read_off > header.ref_len || length > header.ref_len - read_off ||
          write_off > header.ver_len || length > header.ver_len - write_off)
        return std::nullopt;
      if (length > 0)
        std::memcpy(reuse.data() + write_off, reference.data() + read_off,
                    static_cast<std::size_t>(length));
      cursor = write_off + length;
    } else {
      return std::nullopt;
    }
  }
  if (!reader.exhausted()) return std::nullopt;
  return reuse;
}

bool apply_delta_in_place(std::vector<std::uint8_t>& buffer,
                          std::span<const std::uint8_t> delta) {
  support::ByteReader reader(delta);
  DeltaHeader header;
  if (!parse_header(reader, header)) return false;
  if (header.ref_len != buffer.size()) return false;
  const std::uint64_t work = std::max(header.ref_len, header.ver_len);
  buffer.resize(work, 0);
  std::uint64_t cursor = 0;
  for (;;) {
    std::uint8_t op = 0;
    if (!reader.try_u8(op)) return false;
    if (op == kOpEnd) break;
    std::int64_t dwrite = 0;
    if (!reader.try_svarint(dwrite)) return false;
    const std::uint64_t write_off =
        cursor + static_cast<std::uint64_t>(dwrite);
    if (op == kOpAdd) {
      std::span<const std::uint8_t> literal;
      if (!reader.try_sized_bytes(literal)) return false;
      if (write_off > header.ver_len ||
          literal.size() > header.ver_len - write_off)
        return false;
      if (!literal.empty())
        std::memcpy(buffer.data() + write_off, literal.data(), literal.size());
      cursor = write_off + literal.size();
    } else if (op == kOpCopy) {
      std::int64_t dread = 0;
      std::uint64_t length = 0;
      if (!reader.try_svarint(dread) || !reader.try_varint(length))
        return false;
      const std::uint64_t read_off =
          write_off + static_cast<std::uint64_t>(dread);
      if (read_off > header.ref_len || length > header.ref_len - read_off ||
          write_off > header.ver_len || length > header.ver_len - write_off)
        return false;
      if (length > 0)
        std::memmove(buffer.data() + write_off, buffer.data() + read_off,
                     static_cast<std::size_t>(length));
      cursor = write_off + length;
    } else {
      return false;
    }
  }
  if (!reader.exhausted()) return false;
  buffer.resize(header.ver_len);
  return true;
}

}  // namespace cdc::corpus
