// Differential compression of one record against a reference record.
//
// Implements the two practical algorithms of Ajtai, Burns, Fagin, Long &
// Stockmeyer, "Compactly Encoding Unstructured Inputs with Differential
// Compression" (JACM 49(3), 2002):
//
//   * onepass    — linear time, constant space: reference and version are
//                  scanned in lockstep, fingerprinting s-byte footprints
//                  into a fixed-size hash table as the reference pointer
//                  advances. Good when shared content appears in roughly
//                  the same order in both strings.
//   * correcting — ~linear time, O(q) space: the whole reference is
//                  checkpointed into the table up front (every k-th
//                  offset so it fits q slots), and a version match
//                  extends BACKWARD as well as forward, retracting
//                  already-emitted literal bytes — the corrective step
//                  that recovers matches onepass commits past. Better
//                  when blocks moved or were rearranged.
//
// Both emit the same command stream — COPY(read_off, len) from the
// reference plus ADD literals — serialized with explicit write offsets in
// an order that is safe to apply *in place*: following Burns, Long &
// Stockmeyer, "In-Place Reconstruction of Version Differences" (TKDE
// 15(4), 2003), copies are topologically ordered by their
// read-before-write conflicts (cycles broken by materializing the
// cheapest copy as a literal) and literals run last, so the version can
// be rebuilt directly in the buffer holding the reference, with no
// scratch space. The same command order is equally valid against a
// pristine reference into a fresh buffer; apply_delta and
// apply_delta_in_place are byte-for-byte interchangeable.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "corpus/rolling.h"

namespace cdc::corpus {

enum class DeltaAlgorithm : std::uint8_t {
  kOnepass = 1,
  kCorrecting = 2,
};

[[nodiscard]] constexpr std::string_view to_string(
    DeltaAlgorithm algorithm) noexcept {
  switch (algorithm) {
    case DeltaAlgorithm::kOnepass: return "onepass";
    case DeltaAlgorithm::kCorrecting: return "correcting";
  }
  return "?";
}

struct DeltaConfig {
  /// Footprint (seed) width in bytes: the granularity of match detection.
  std::size_t footprint = 16;
  /// Hash-table size floor; the table auto-sizes up for large inputs
  /// (next power of two of input/4) with this as the minimum.
  std::size_t table_size = 1u << 12;
  /// Checkpointing density cap for the correcting algorithm: reference
  /// offsets are sampled so at most `table_size` (auto-sized) entries are
  /// live, as in the paper's §8.
  /// Matches shorter than this are left as literals (a COPY costs ~5-10
  /// bytes of opcodes; copying fewer bytes than that loses).
  std::size_t min_match = 12;
  /// Karp-Rabin polynomial base for footprints.
  std::uint64_t base = kKarpRabinBase;
};

/// One reconstruction command. Copies read from the reference; literals
/// carry their bytes. `write_off` is the command's position in the
/// version being rebuilt (explicit because in-place ordering permutes the
/// commands out of version order).
struct DeltaCommand {
  enum class Kind : std::uint8_t { kAdd, kCopy };
  Kind kind = Kind::kAdd;
  std::uint64_t write_off = 0;
  std::uint64_t read_off = 0;              ///< kCopy only
  std::uint64_t length = 0;                ///< copy length / literal length
  std::vector<std::uint8_t> bytes;         ///< kAdd literal payload
};

struct DeltaStats {
  std::uint64_t copies = 0;
  std::uint64_t adds = 0;
  std::uint64_t copied_bytes = 0;
  std::uint64_t literal_bytes = 0;
  std::uint64_t corrections = 0;       ///< literal bytes retracted by
                                       ///< backward extension (correcting)
  std::uint64_t cycles_broken = 0;     ///< copies materialized for in-place
};

/// Computes the command stream rebuilding `version` from `reference`,
/// already permuted into in-place-safe order. Deterministic in
/// (reference, version, algorithm, config).
[[nodiscard]] std::vector<DeltaCommand> delta_commands(
    std::span<const std::uint8_t> reference,
    std::span<const std::uint8_t> version, DeltaAlgorithm algorithm,
    const DeltaConfig& config = {}, DeltaStats* stats = nullptr);

/// Serializes a command stream into the on-storage delta format:
///   u8 'D' | u8 version(1) | u8 algorithm | varint ref_len |
///   varint ver_len | commands | u8 0x00
///   command := u8 0x01 | svarint dwrite | varint len | bytes     (ADD)
///            | u8 0x02 | svarint dwrite | svarint dread |
///              varint len                                        (COPY)
/// where write_off = cursor + dwrite (cursor = end of the previous
/// command's write extent, 0 initially) and read_off = write_off + dread.
/// Record streams are fixed-width rows, so cross-member edits keep most
/// copies on the diagonal: dwrite == dread == 0 and a COPY costs 4 bytes.
/// `reuse` donates capacity for the output (contents discarded).
[[nodiscard]] std::vector<std::uint8_t> serialize_delta(
    std::span<const DeltaCommand> commands, std::uint64_t ref_len,
    std::uint64_t ver_len, DeltaAlgorithm algorithm,
    std::vector<std::uint8_t> reuse = {});

/// encode = delta_commands + serialize_delta in one call.
[[nodiscard]] std::vector<std::uint8_t> encode_delta(
    std::span<const std::uint8_t> reference,
    std::span<const std::uint8_t> version, DeltaAlgorithm algorithm,
    const DeltaConfig& config = {}, DeltaStats* stats = nullptr,
    std::vector<std::uint8_t> reuse = {});

/// Sizes recorded in a serialized delta's header.
struct DeltaHeader {
  std::uint8_t algorithm = 0;
  std::uint64_t ref_len = 0;
  std::uint64_t ver_len = 0;
};
[[nodiscard]] std::optional<DeltaHeader> read_delta_header(
    std::span<const std::uint8_t> delta);

/// Rebuilds the version into a fresh buffer, reading from `reference`.
/// nullopt on malformed delta (never aborts: deltas live on storage).
[[nodiscard]] std::optional<std::vector<std::uint8_t>> apply_delta(
    std::span<const std::uint8_t> reference,
    std::span<const std::uint8_t> delta,
    std::vector<std::uint8_t> reuse = {});

/// In-place reconstruction: `buffer` holds the reference on entry and the
/// version on successful return — no scratch allocation beyond resizing
/// `buffer` to max(ref_len, ver_len). Returns false (buffer contents
/// unspecified) on malformed delta or when buffer.size() != ref_len.
[[nodiscard]] bool apply_delta_in_place(
    std::vector<std::uint8_t>& buffer, std::span<const std::uint8_t> delta);

}  // namespace cdc::corpus
