// Karp-Rabin rolling hashes over byte strings.
//
// The fingerprinting substrate of the corpus layer: the content-defined
// chunker (corpus/chunker.h) and both differential-compression encoders
// (corpus/delta.h) fingerprint fixed-width byte windows with the same
// polynomial hash, following Ajtai/Burns/Fagin/Long/Stockmeyer (JACM
// 49(3), 2002) §4: arithmetic modulo the Mersenne prime 2^61-1 with a
// small polynomial base for good bit mixing. A window hash can be rolled
// one byte at a time in O(1), and rolling from offset i to i+1 yields
// exactly the direct polynomial evaluation at i+1 — the property the
// chunker's determinism (and its property tests) rest on.
#pragma once

#include <cstdint>
#include <span>

#include "support/check.h"

namespace cdc::corpus {

/// 2^61 - 1: multiplication of two residues fits in __uint128_t and the
/// Mersenne form makes the reduction two adds.
inline constexpr std::uint64_t kKarpRabinPrime = (std::uint64_t{1} << 61) - 1;

/// Default polynomial base (a primitive-ish small odd base; the chunker
/// derives per-seed bases from it so differently seeded corpora cut at
/// different content positions).
inline constexpr std::uint64_t kKarpRabinBase = 263;

[[nodiscard]] constexpr std::uint64_t kr_mod(std::uint64_t v) noexcept {
  v = (v & kKarpRabinPrime) + (v >> 61);
  return v >= kKarpRabinPrime ? v - kKarpRabinPrime : v;
}

[[nodiscard]] constexpr std::uint64_t kr_mul(std::uint64_t a,
                                             std::uint64_t b) noexcept {
  const unsigned __int128 wide =
      static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
  const std::uint64_t lo = static_cast<std::uint64_t>(wide) & kKarpRabinPrime;
  const std::uint64_t hi = static_cast<std::uint64_t>(wide >> 61);
  return kr_mod(lo + hi);
}

[[nodiscard]] constexpr std::uint64_t kr_add(std::uint64_t a,
                                             std::uint64_t b) noexcept {
  return kr_mod(a + b);
}

[[nodiscard]] constexpr std::uint64_t kr_sub(std::uint64_t a,
                                             std::uint64_t b) noexcept {
  return kr_mod(a + kKarpRabinPrime - kr_mod(b));
}

/// base^exp mod 2^61-1.
[[nodiscard]] constexpr std::uint64_t kr_pow(std::uint64_t base,
                                             std::uint64_t exp) noexcept {
  std::uint64_t result = 1;
  std::uint64_t acc = kr_mod(base);
  while (exp > 0) {
    if (exp & 1) result = kr_mul(result, acc);
    acc = kr_mul(acc, acc);
    exp >>= 1;
  }
  return result;
}

/// Direct polynomial evaluation: H(x) = sum x[i] * base^(n-1-i) mod p.
/// The reference the incremental roller must agree with at every offset.
[[nodiscard]] constexpr std::uint64_t kr_hash(
    std::span<const std::uint8_t> bytes,
    std::uint64_t base = kKarpRabinBase) noexcept {
  std::uint64_t h = 0;
  for (const std::uint8_t byte : bytes)
    h = kr_add(kr_mul(h, base), byte);
  return h;
}

/// Fixed-width window roller: push() grows the window to `width` bytes,
/// roll() slides it one byte in O(1). hash() equals kr_hash of the bytes
/// currently in the window.
class KarpRabinWindow {
 public:
  explicit KarpRabinWindow(std::size_t width,
                           std::uint64_t base = kKarpRabinBase)
      : width_(width), base_(kr_mod(base)),
        top_power_(kr_pow(base, width > 0 ? width - 1 : 0)) {
    CDC_CHECK_MSG(width > 0, "rolling window must be non-empty");
  }

  /// Appends one byte to a not-yet-full window.
  void push(std::uint8_t in) noexcept {
    hash_ = kr_add(kr_mul(hash_, base_), in);
    ++filled_;
  }

  /// Slides a full window: drops `out` (the byte that entered `width`
  /// steps ago) and appends `in`.
  void roll(std::uint8_t out, std::uint8_t in) noexcept {
    hash_ = kr_sub(hash_, kr_mul(out, top_power_));
    hash_ = kr_add(kr_mul(hash_, base_), in);
  }

  [[nodiscard]] bool full() const noexcept { return filled_ >= width_; }
  [[nodiscard]] std::uint64_t hash() const noexcept { return hash_; }
  [[nodiscard]] std::size_t width() const noexcept { return width_; }

  void reset() noexcept {
    hash_ = 0;
    filled_ = 0;
  }

 private:
  std::size_t width_;
  std::uint64_t base_;
  std::uint64_t top_power_;
  std::uint64_t hash_ = 0;
  std::size_t filled_ = 0;
};

}  // namespace cdc::corpus
