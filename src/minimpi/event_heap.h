// Reserve-ahead binary min-heap for simulator event queues.
//
// std::priority_queue owns its vector and gives it up only by
// destruction, so every epoch of a windowed run pays the allocation of a
// fresh backing store, and displacement-heavy phases (MF re-polls pushing
// while deliveries pop) churn the allocator. This heap keeps one backing
// vector for its whole lifetime: clear() drops the elements but keeps the
// capacity, reserve() pre-sizes it ahead of a known burst, and pop()
// returns the element by move instead of top()/pop() copy-then-drop. With
// a comparator that is a strict total order (every simulator event key is
// unique), the pop sequence is fully determined by the key order — the
// heap's internal layout never shows through, which is what lets the
// sequential and parallel executors share it without perturbing either's
// schedule. Matches the PR 5 pool discipline: allocation-free steady
// state after warm-up.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace cdc::minimpi {

/// `Before(a, b)` returns true when `a` must pop before `b` (a strict
/// weak order; a strict *total* order makes pops deterministic).
template <typename T, typename Before>
class EventHeap {
 public:
  EventHeap() = default;
  explicit EventHeap(Before before) : before_(std::move(before)) {}

  [[nodiscard]] bool empty() const noexcept { return slots_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return slots_.capacity();
  }

  void reserve(std::size_t n) { slots_.reserve(n); }

  /// Drops every element but keeps the backing vector's capacity — the
  /// cross-epoch reuse this type exists for.
  void clear() noexcept { slots_.clear(); }

  [[nodiscard]] const T& top() const noexcept { return slots_.front(); }

  void push(T value) {
    slots_.push_back(std::move(value));
    sift_up(slots_.size() - 1);
  }

  /// Removes and returns the front element by move.
  T pop() {
    T out = std::move(slots_.front());
    if (slots_.size() > 1) {
      slots_.front() = std::move(slots_.back());
      slots_.pop_back();
      sift_down(0);
    } else {
      slots_.pop_back();
    }
    return out;
  }

 private:
  void sift_up(std::size_t i) noexcept {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before_(slots_[i], slots_[parent])) break;
      std::swap(slots_[i], slots_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) noexcept {
    const std::size_t n = slots_.size();
    for (;;) {
      const std::size_t left = 2 * i + 1;
      if (left >= n) break;
      std::size_t best = left;
      const std::size_t right = left + 1;
      if (right < n && before_(slots_[right], slots_[left])) best = right;
      if (!before_(slots_[best], slots_[i])) break;
      std::swap(slots_[i], slots_[best]);
      i = best;
    }
  }

  std::vector<T> slots_;
  Before before_;
};

}  // namespace cdc::minimpi
