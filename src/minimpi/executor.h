// Event-loop drivers for the MiniMPI simulator.
//
// One interface, two engines. The SequentialExecutor is the original
// single-threaded (time, seq)-ordered loop — bit-identical to every
// earlier release, and the reference semantics the record/replay tests
// were built against. The ParallelExecutor runs rank coroutines on a
// worker-thread pool under conservative time-window synchronization
// (DESIGN.md §15): all workers apply events with `time < horizon`, meet at
// an epoch barrier where cross-rank deliveries and collective completions
// are resolved, then the horizon advances by the lookahead (the minimum
// cross-rank message latency, Config::base_latency — fault-plan delays
// only ever add to it). Every event carries a (time, origin_seq,
// origin_rank) key assigned during its origin rank's own deterministic
// execution, so per-rank application order — and therefore every recorded
// schedule — is identical for every worker count.
//
// Simulator::run() picks the engine from Config::workers; instantiate an
// Executor directly only to drive one simulator with a pre-built engine.
#pragma once

#include <memory>

#include "minimpi/simulator.h"

namespace cdc::minimpi {

class Executor {
 public:
  virtual ~Executor() = default;

  /// Drives `sim` to completion and returns its final stats. Same
  /// contract as Simulator::run(): aborts with a diagnostic on deadlock.
  virtual Simulator::Stats run(Simulator& sim) = 0;

  /// The engine Config::workers selects: 0 → sequential, ≥ 1 → parallel
  /// with that many workers.
  [[nodiscard]] static std::unique_ptr<Executor> make(int workers);
};

class SequentialExecutor final : public Executor {
 public:
  Simulator::Stats run(Simulator& sim) override;
};

class ParallelExecutor final : public Executor {
 public:
  /// `workers` ≥ 1; capped at the simulator's rank count per run.
  explicit ParallelExecutor(int workers);

  Simulator::Stats run(Simulator& sim) override;

 private:
  int requested_workers_;
};

}  // namespace cdc::minimpi
