// Deterministic transport-level fault injection for the MiniMPI simulator.
//
// Replay systems are only trustworthy under adversarial delivery orders and
// partial failures, so the simulator can inject four fault classes at the
// transport layer, all drawn from a dedicated seeded RNG (never the latency
// noise stream — a fully disabled plan draws nothing and leaves a run
// bit-identical to the faultless one):
//   * delay spikes    — individual messages held back for many multiples of
//                       the base latency (a congested link / OS jitter);
//   * reorder bursts  — runs of consecutive sends scattered across a wide
//                       latency window, maximising cross-sender permutation
//                       of application-level receive order;
//   * duplicates      — a second transport copy of a message; the
//                       simulator's per-channel dedup (sequence numbers over
//                       the non-overtaking channel) drops it before the MPI
//                       matching layer, as a real transport would;
//   * rank stalls     — scheduler-level pauses of one rank's compute/poll
//                       resumption (GC pause, OS preemption, NUMA fault);
//   * rank kills      — ULFM-flavoured process failure: the rank stops
//                       executing at a scheduled virtual time, peers that
//                       can no longer be satisfied observe a FailedRank
//                       error on their matching functions, and the
//                       simulator shrinks around the dead rank instead of
//                       deadlocking (see Simulator::run()).
// The timing faults perturb *timing only*: MPI semantics (per-channel
// ordering, exactly-once delivery) are preserved, which is exactly what
// makes the recorded receive order adversarial yet replayable. Rank kills
// additionally truncate the killed rank's event stream — the survival
// scenario degraded-mode replay (tool/degraded.h) is built for.
#pragma once

#include <cstdint>
#include <vector>

namespace cdc::minimpi {

using Rank = std::int32_t;  // mirrors types.h (kept header-standalone)

/// Fault classes, as reported to ToolHooks::on_fault.
enum class FaultKind : std::uint8_t {
  kDelaySpike,
  kReorderBurst,  ///< reported once per message inside a burst
  kDuplicate,
  kRankStall,
  kRankKill,      ///< process failure: the rank never executes again
};

inline constexpr std::size_t kFaultKindCount = 5;

[[nodiscard]] constexpr const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kDelaySpike: return "delay_spike";
    case FaultKind::kReorderBurst: return "reorder_burst";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kRankStall: return "rank_stall";
    case FaultKind::kRankKill: return "rank_kill";
  }
  return "?";
}

/// One scheduled process failure: `rank` stops executing at virtual time
/// `time`. Messages it already has in flight still arrive (the network
/// outlives the process); everything it would have done after `time` never
/// happens.
struct RankKill {
  Rank rank = -1;
  double time = 0.0;
};

/// Seeded fault-injection schedule, part of Simulator::Config. Probabilities
/// are per injection opportunity (per send for the message classes, per
/// scheduled rank resume/poll for stalls).
struct FaultPlan {
  /// Seeds the dedicated fault RNG. Two runs with identical configs,
  /// programs, and seeds inject identical faults (the reproduction contract
  /// every fuzzer failure report relies on).
  std::uint64_t seed = 0;

  // --- Delay spikes.
  double delay_spike_probability = 0.0;
  /// Extra latency: uniform in [0.5, 1.5] x factor x (base + jitter mean).
  double delay_spike_factor = 100.0;

  // --- Reordering bursts.
  double reorder_burst_probability = 0.0;  ///< chance a burst starts
  std::uint32_t reorder_burst_length = 8;  ///< sends affected per burst
  /// Each burst message gets uniform extra latency in
  /// [0, spread x (base + jitter mean)] — wide enough to scramble the
  /// interleaving of every in-burst sender.
  double reorder_burst_spread = 30.0;

  // --- Duplicate delivery.
  double duplicate_probability = 0.0;

  // --- Rank stalls.
  double stall_probability = 0.0;
  /// Stall length: uniform in [0.5, 1.5] x mean seconds.
  double stall_mean = 5.0e-5;

  // --- Rank kills (deterministic schedule, not probabilistic: a kill is a
  // scenario under test, not background noise).
  std::vector<RankKill> kills;

  [[nodiscard]] bool enabled() const noexcept {
    return delay_spike_probability > 0.0 || reorder_burst_probability > 0.0 ||
           duplicate_probability > 0.0 || stall_probability > 0.0 ||
           !kills.empty();
  }
};

/// What actually fired during a run (Simulator::fault_stats()).
struct FaultStats {
  std::uint64_t delay_spikes = 0;
  std::uint64_t reorder_bursts = 0;
  std::uint64_t burst_messages = 0;
  std::uint64_t duplicates_injected = 0;
  /// Transport copies discarded by per-channel dedup. Equals
  /// duplicates_injected once every in-flight copy has arrived — asserted
  /// at the end of Simulator::run(): a duplicate must never reach the MPI
  /// matching layer.
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t stalls = 0;
  double stall_seconds = 0.0;
  std::uint64_t rank_kills = 0;
};

}  // namespace cdc::minimpi
