// Tool interposition interface — MiniMPI's analogue of PMPI/PnMPI.
//
// The paper's tool interposes on MPI in three places: it piggybacks a
// Lamport clock on every send, it observes every application-level
// message-receive event (record mode), and it controls which message a
// matching function returns (replay mode). ToolHooks exposes exactly those
// three points. The default implementation reproduces untooled MPI
// semantics (first-matched, first-delivered).
#pragma once

#include <span>
#include <vector>

#include "minimpi/fault.h"
#include "minimpi/types.h"

namespace cdc::minimpi {

/// Outcome of a selection hook for one MF poll.
struct SelectResult {
  enum class Action : std::uint8_t {
    kDeliver,  ///< deliver `indices` (into the candidate span), in order
    kNoMatch,  ///< Test family: report flag = false now
    kBlock,    ///< keep the call pending until more messages arrive —
               ///< in replay mode even Test-family calls block until the
               ///< recorded message is available (§3.6 wait condition)
  };
  Action action = Action::kNoMatch;
  std::vector<std::size_t> indices;
};

class ToolHooks {
 public:
  virtual ~ToolHooks() = default;

  /// Called for every outgoing message; the returned value is piggybacked
  /// on the message (the tool attaches its Lamport clock here).
  virtual std::uint64_t on_send(Rank /*sender*/) { return 0; }

  /// Called each time an MF call polls its request set. `candidates` are
  /// the matched-but-undelivered receives in match order; `total_requests`
  /// is the number of (receive) requests the MF call covers. Record mode
  /// passes matching through unchanged; replay mode releases only the
  /// recorded next message(s), in the recorded order.
  virtual SelectResult select(Rank /*rank*/, CallsiteId /*callsite*/,
                              MFKind kind,
                              std::span<const Candidate> candidates,
                              std::size_t total_requests, bool blocking) {
    // Untooled MPI semantics: deliver exactly the MPI-matched (bound)
    // candidates, in match order; unbound candidates are invisible.
    SelectResult result;
    std::vector<std::size_t> bound;
    for (std::size_t i = 0; i < candidates.size(); ++i)
      if (candidates[i].bound) bound.push_back(i);
    const bool all_variant =
        kind == MFKind::kWaitall || kind == MFKind::kTestall;
    if (bound.empty() || (all_variant && bound.size() < total_requests)) {
      result.action = blocking ? SelectResult::Action::kBlock
                               : SelectResult::Action::kNoMatch;
      return result;
    }
    result.action = SelectResult::Action::kDeliver;
    result.indices = std::move(bound);
    return result;
  }

  /// A Test-family call reported flag = false — the "unmatched test"
  /// events of Figure 4. The recorder aggregates consecutive occurrences
  /// into the `count` column.
  virtual void on_unmatched_test(Rank /*rank*/, CallsiteId /*callsite*/) {}

  /// Messages were delivered to the application by one MF call, in order.
  /// Record mode turns each into a receive-event row (`with_next` = not
  /// the last of the span); both modes update the rank's Lamport clock.
  virtual void on_deliver(Rank /*rank*/, CallsiteId /*callsite*/,
                          MFKind /*kind*/,
                          std::span<const Completion> /*events*/) {}

  /// The simulation deadlocked and is about to abort; the tool may dump
  /// diagnostic state (the replayer prints per-stream progress).
  virtual void on_deadlock() {}

  /// The event queue drained with matching-function calls still pending and
  /// re-polling made no progress — the simulator is stalled. The tool may
  /// change its own state so a blocked call can complete (the replayer
  /// releases partial-record gating here, bridging gaps left by killed
  /// ranks or truncated records) and return true to request another poll
  /// round. Contract: return true only after actually changing state; a
  /// tool that always returns true livelocks the drain loop. Returning
  /// false (the default) lets the simulator proceed to failure shrinking
  /// and, ultimately, the deadlock diagnostic.
  virtual bool on_stall() { return false; }

  /// A transport fault from the simulator's FaultPlan fired. `rank` is the
  /// destination rank for message faults and the stalled rank for stalls.
  /// Purely observational — fault injection never consults the tool.
  virtual void on_fault(FaultKind /*kind*/, Rank /*rank*/) {}

  /// The parallel executor is about to start its window loop with this
  /// many worker threads. From here until the matching run() return, hook
  /// callbacks arrive concurrently from those workers — a tool that keeps
  /// cross-rank state must lock it, and a tool with deferred I/O should
  /// switch to flushing from on_window() (the only callback guaranteed to
  /// run single-threaded). Never called by the sequential executor.
  virtual void on_parallel_start(int /*workers*/) {}

  /// A conservative time-window completed and the horizon advanced to
  /// `horizon` (also fired once at the terminal drain, with the final
  /// virtual time). Called from the coordinator while every worker is
  /// quiesced at the epoch barrier, so it is safe to touch any tool state
  /// and to perform deferred I/O in a deterministic order. Called by both
  /// executors' drivers only in parallel mode.
  virtual void on_window(double /*horizon*/) {}
};

}  // namespace cdc::minimpi
