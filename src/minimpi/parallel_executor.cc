// The conservative time-window parallel executor (DESIGN.md §15).
//
// Window protocol: the coordinator (worker 0, the caller's thread) merges
// staged cross-rank deliveries into the per-rank heaps, resolves
// collective completions and rank kills, computes T_min = the earliest
// pending event time, and opens the window [T_min, T_min + L) where L is
// the lookahead — Config::base_latency, the minimum cross-rank message
// latency (jitter and fault-plan delays only ever add). Every rank with an
// event below the horizon goes on the ready list; workers claim ranks from
// contiguous per-worker slices by atomic cursor, stealing from other
// slices once their own is dry. A claimed rank is drained to the horizon
// by one worker, so all of its shard state stays owner-serialized; sends
// it performs land at time >= horizon (the lookahead guarantee), are
// staged in the worker's outbox, and enter the destination heap only at
// the next quiesced merge. Determinism: every event carries a
// (time, origin_seq, origin_rank) key drawn during its origin rank's own
// deterministic execution, keys are unique, and each heap pops in strict
// key order — so per-rank application order is a pure function of the
// seed, independent of worker count, steal pattern, and thread timing.
#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>
#include <utility>

#include "minimpi/executor.h"
#include "minimpi/parallel_state.h"
#include "minimpi/simulator.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cdc::minimpi {

namespace {

/// splitmix64 finalizer over (seed, index): statistically independent
/// per-rank streams from one run seed.
std::uint64_t mix64(std::uint64_t seed, std::uint64_t index) noexcept {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

thread_local Simulator::ParallelState::Worker*
    Simulator::ParallelState::tls_worker = nullptr;

// --- Executor factory -----------------------------------------------------

std::unique_ptr<Executor> Executor::make(int workers) {
  if (workers <= 0) return std::make_unique<SequentialExecutor>();
  return std::make_unique<ParallelExecutor>(workers);
}

Simulator::Stats SequentialExecutor::run(Simulator& sim) {
  return sim.run_sequential();
}

ParallelExecutor::ParallelExecutor(int workers)
    : requested_workers_(workers) {
  CDC_CHECK(workers >= 1);
}

Simulator::Stats ParallelExecutor::run(Simulator& sim) {
  CDC_CHECK_MSG(!sim.running_, "run() is not reentrant");
  CDC_CHECK_MSG(sim.config_.base_latency > 0.0,
                "parallel executor needs base_latency > 0 — it is the "
                "conservative lookahead");
  Simulator::ParallelState ps;
  // More workers than ranks would only contend on the ready list.
  ps.workers = std::clamp(requested_workers_, 1, sim.size());
  ps.lookahead = sim.config_.base_latency;
  return ps.drive(sim);
}

// --- Parallel-mode send ---------------------------------------------------

Request Simulator::par_post_isend(Rank src, Rank dst, int tag,
                                  std::span<const std::uint8_t> data) {
  CDC_CHECK(dst >= 0 && dst < size());
  CDC_CHECK(tag >= 0);
  auto& ctx = ranks_[static_cast<std::size_t>(src)];
  auto& shard = par_->shards[static_cast<std::size_t>(src)];
  ParallelState::Worker* worker = ParallelState::tls_worker;
  CDC_CHECK_MSG(worker != nullptr, "send from outside the worker pool");

  // Mirrors the sequential post_isend step for step, with every global
  // draw and counter replaced by the sender shard's — so the schedule is a
  // function of this rank's own execution order only.
  Message msg;
  msg.source = src;
  msg.dest = dst;
  msg.tag = tag;
  msg.piggyback = hooks_->on_send(src);
  msg.payload.assign(data.begin(), data.end());
  if (hooks_ != &default_hooks_) ctx.time += config_.piggyback_send_cost;

  double latency =
      config_.base_latency + shard.noise.exponential(config_.jitter_mean);
  if (config_.faults.enabled())
    latency = apply_message_faults(latency, src, dst);
  msg.transport_seq = ++shard.channel_send_seq[dst];
  double arrival = ctx.time + latency;
  auto [it, inserted] = shard.channel_last_arrival.try_emplace(dst, 0.0);
  if (!inserted && arrival <= it->second) arrival = it->second + 1e-12;
  it->second = arrival;

  if (config_.faults.duplicate_probability > 0.0 &&
      shard.fault_rng.uniform() < config_.faults.duplicate_probability) {
    // The copy carries the original's transport sequence number — the
    // dedup key — and trails it on the (non-overtaking) channel.
    Message dup = msg;
    double dup_arrival =
        arrival + shard.fault_rng.exponential(config_.jitter_mean);
    if (dup_arrival <= it->second) dup_arrival = it->second + 1e-12;
    it->second = dup_arrival;
    const Rank dest = dup.dest;
    par_->push_delivery(*worker, dup_arrival, shard, src, dest,
                        std::move(dup));
    ++shard.fault_stats.duplicates_injected;
    obs::trace_instant("fault.duplicate", dest);
    hooks_->on_fault(FaultKind::kDuplicate, dest);
  }
  par_->push_delivery(*worker, arrival, shard, src, dst, std::move(msg));
  ++shard.stats.messages_sent;

  // Buffered-send model: locally complete on creation.
  RequestState req;
  req.kind = RequestState::Kind::kSend;
  req.matched = true;
  ctx.requests.push_back(std::move(req));
  return Request{ctx.requests.size() - 1};
}

// --- Engine ---------------------------------------------------------------

Simulator::Stats Simulator::ParallelState::drive(Simulator& sim) {
  sim.running_ = true;
  const int nranks = sim.size();
  shards.resize(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    Shard& s = shards[static_cast<std::size_t>(r)];
    s.noise = support::Xoshiro256(
        mix64(sim.config_.noise_seed, static_cast<std::uint64_t>(r)));
    s.fault_rng = support::Xoshiro256(
        mix64(sim.config_.faults.seed ^ 0xfa17fa17fa17fa17ull,
              static_cast<std::uint64_t>(r) + 0x10001));
  }
  worker_state.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w)
    worker_state.push_back(std::make_unique<Worker>());
  cursors = std::make_unique<Cursor[]>(static_cast<std::size_t>(workers));
  ready.reserve(static_cast<std::size_t>(nranks));

  sim.par_ = this;
  sim.hooks_->on_parallel_start(workers);

  for (int r = 0; r < nranks; ++r) {
    auto& ctx = sim.ranks_[static_cast<std::size_t>(r)];
    CDC_CHECK_MSG(ctx.task.valid(), "rank has no program installed");
    sim.schedule(0.0, Simulator::EventType::kResume, r, ctx.task.handle());
  }
  for (const RankKill& kill : sim.config_.faults.kills) {
    CDC_CHECK_MSG(kill.rank >= 0 && kill.rank < nranks,
                  "fault plan kills a rank outside the communicator");
    CDC_CHECK_MSG(kill.time >= 0.0, "rank kill scheduled before t=0");
    sim.schedule(kill.time, Simulator::EventType::kKill, kill.rank);
  }

  {
    std::barrier<> window_barrier(workers);
    sync = &window_barrier;
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers - 1));
    for (int w = 1; w < workers; ++w)
      pool.emplace_back([this, &sim, w] { worker_loop(sim, w); });
    worker_loop(sim, 0);  // the caller's thread is worker 0 / coordinator
    for (auto& t : pool) t.join();
    sync = nullptr;
  }

  if (worker_failed.load(std::memory_order_acquire)) {
    sim.par_ = nullptr;
    sim.running_ = false;
    std::rethrow_exception(error);
  }

  // Merge the per-shard tallies, in rank order. This is the only place
  // shard stats are summed — the hot path never touches an atomic.
  for (const Shard& s : shards) {
    sim.stats_.messages_sent += s.stats.messages_sent;
    sim.stats_.receive_events_delivered += s.stats.receive_events_delivered;
    sim.stats_.mf_calls += s.stats.mf_calls;
    sim.stats_.unmatched_tests += s.stats.unmatched_tests;
    sim.stats_.scheduler_events += s.stats.scheduler_events;
    sim.stats_.mf_failures += s.stats.mf_failures;
    sim.stats_.mf_timeouts += s.stats.mf_timeouts;
    sim.stats_.ranks_failed += s.stats.ranks_failed;
    sim.stats_.max_queue_depth =
        std::max(sim.stats_.max_queue_depth, s.max_heap_depth);
    sim.fault_stats_.delay_spikes += s.fault_stats.delay_spikes;
    sim.fault_stats_.reorder_bursts += s.fault_stats.reorder_bursts;
    sim.fault_stats_.burst_messages += s.fault_stats.burst_messages;
    sim.fault_stats_.duplicates_injected += s.fault_stats.duplicates_injected;
    sim.fault_stats_.duplicates_dropped += s.fault_stats.duplicates_dropped;
    sim.fault_stats_.stalls += s.fault_stats.stalls;
    sim.fault_stats_.stall_seconds += s.fault_stats.stall_seconds;
    sim.fault_stats_.rank_kills += s.fault_stats.rank_kills;
  }
  sim.failed_count_ = failed_count.load(std::memory_order_relaxed);

  CDC_CHECK_MSG(sim.fault_stats_.duplicates_dropped ==
                    sim.fault_stats_.duplicates_injected,
                "a transport duplicate leaked past channel dedup");
  bool deadlocked = false;
  for (int r = 0; r < nranks; ++r) {
    const auto& ctx = sim.ranks_[static_cast<std::size_t>(r)];
    if (!ctx.finished && !ctx.failed) deadlocked = true;
    sim.stats_.end_time = std::max(sim.stats_.end_time, ctx.time);
  }
  if (deadlocked) {
    sim.describe_stuck_ranks();
    sim.hooks_->on_deadlock();
    CDC_CHECK_MSG(false, "simulation deadlocked");
  }
  sim.now_ = sim.stats_.end_time;
  sim.running_ = false;
  sim.par_ = nullptr;

  sim.emit_obs_stats();
  if (obs::enabled()) {
    std::uint64_t steals = 0;
    std::uint64_t idle = 0;
    for (const auto& w : worker_state) {
      steals += w->steals;
      idle += w->idle_windows;
      obs::histogram("sim.exec.worker_events").record(w->total_events);
    }
    obs::counter("sim.exec.steals").add(steals);
    // A "barrier wait" is a worker arriving at the epoch barrier with
    // nothing processed — the idle-imbalance signal, not mere arrivals.
    obs::counter("sim.exec.barrier_waits").add(idle);
    obs::counter("sim.exec.horizon_advances").add(windows);
    obs::gauge("sim.exec.workers").add(workers);
  }
  return sim.stats_;
}

void Simulator::ParallelState::worker_loop(Simulator& sim, int wid) {
  tls_worker = worker_state[static_cast<std::size_t>(wid)].get();
  for (;;) {
    if (wid == 0) coordinate(sim);
    sync->arrive_and_wait();  // window layout published / stop decided
    if (stop.load(std::memory_order_acquire)) break;
    try {
      process_window(sim, wid);
    } catch (...) {
      // Keep participating in the barriers so nobody hangs; the
      // coordinator turns the flag into a stop at the next window.
      {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
      }
      worker_failed.store(true, std::memory_order_release);
    }
    sync->arrive_and_wait();  // window quiesced
  }
  tls_worker = nullptr;
}

void Simulator::ParallelState::merge_and_resolve(Simulator& sim) {
  // Drain outboxes in worker order. Arrival order into a heap is
  // irrelevant — the (time, oseq, orank) keys alone decide pop order — so
  // this loop need not be deterministic, but it is anyway.
  for (auto& wptr : worker_state) {
    Worker& w = *wptr;
    for (PEvent& ev : w.outbox) {
      Shard& dst = shards[static_cast<std::size_t>(ev.rank)];
      dst.heap.push(std::move(ev));
      dst.max_heap_depth =
          std::max<std::uint64_t>(dst.max_heap_depth, dst.heap.size());
    }
    w.outbox.clear();
  }
  // Publish kill effects so live_count() is exact before collective
  // completion re-runs.
  sim.failed_count_ = failed_count.load(std::memory_order_relaxed);
  std::uint64_t total_events = 0;
  for (const Shard& s : shards) total_events += s.stats.scheduler_events;
  CDC_CHECK_MSG(total_events <= sim.config_.max_events,
                "event budget exceeded (runaway program?)");
  if (collective_dirty.exchange(false, std::memory_order_acq_rel)) {
    sim.complete_barrier_if_ready();
    sim.complete_allreduce_if_ready();
  }
}

double Simulator::ParallelState::global_now() const noexcept {
  double t = 0.0;
  for (const Shard& s : shards) t = std::max(t, s.now);
  return t;
}

void Simulator::ParallelState::coordinate(Simulator& sim) {
  if (worker_failed.load(std::memory_order_acquire)) {
    stop.store(true, std::memory_order_release);
    return;
  }
  merge_and_resolve(sim);
  if (!first_window) {
    ++windows;
    // The previous window is quiesced: tools flush deferred I/O here, in
    // deterministic order.
    sim.hooks_->on_window(horizon);
  }
  first_window = false;

  for (;;) {
    double tmin = std::numeric_limits<double>::infinity();
    for (const Shard& s : shards)
      if (!s.heap.empty()) tmin = std::min(tmin, s.heap.top().time);
    if (tmin != std::numeric_limits<double>::infinity()) {
      horizon = tmin + lookahead;
      obs::publish_virtual_now(tmin);
      break;
    }

    // Terminal drain ladder — mirrors the sequential outer loop: re-poll
    // pending MF calls, then let the tool change state (on_stall), then
    // shrink failed waits; give up when nothing moves.
    bool any_pending_mf = false;
    for (const auto& ctx : sim.ranks_)
      any_pending_mf =
          any_pending_mf || (!ctx.finished && !ctx.failed && ctx.mf_active);
    if (!any_pending_mf) {
      sim.hooks_->on_window(global_now());
      stop.store(true, std::memory_order_release);
      return;
    }
    std::uint64_t progress = 0;
    for (const Shard& s : shards)
      progress += s.stats.receive_events_delivered + s.stats.unmatched_tests;
    if (progress == last_progress) {
      if (!sim.hooks_->on_stall() && !sim.shrink_failed_waits()) {
        // Genuinely stuck; drive() falls through to the deadlock report.
        sim.hooks_->on_window(global_now());
        stop.store(true, std::memory_order_release);
        return;
      }
      last_progress = ~std::uint64_t{0};
    } else {
      last_progress = progress;
    }
    const double gnow = global_now();
    for (int r = 0; r < sim.size(); ++r) {
      auto& ctx = sim.ranks_[static_cast<std::size_t>(r)];
      if (!ctx.finished && !ctx.failed && ctx.mf_active &&
          !ctx.mf_poll_scheduled) {
        ctx.mf_poll_scheduled = true;
        sim.schedule(gnow, Simulator::EventType::kPoll, r);
      }
    }
    // shrink_failed_waits / on_stall resumed continuations inline on this
    // thread: pick up anything they sent or resolved before rescanning.
    merge_and_resolve(sim);
  }

  // Lay out the window: ready ranks in rank order, partitioned into
  // contiguous per-worker slices; cursors reset for the claim/steal race.
  ready.clear();
  for (int r = 0; r < sim.size(); ++r) {
    const Shard& s = shards[static_cast<std::size_t>(r)];
    if (!s.heap.empty() && s.heap.top().time < horizon) ready.push_back(r);
  }
  const std::size_t n = ready.size();
  const std::size_t nw = static_cast<std::size_t>(workers);
  const std::size_t base = n / nw;
  const std::size_t rem = n % nw;
  std::size_t off = 0;
  for (std::size_t i = 0; i < nw; ++i) {
    Worker& w = *worker_state[i];
    w.slice_begin = off;
    w.slice_size = base + (i < rem ? 1 : 0);
    off += w.slice_size;
    cursors[i].next.store(0, std::memory_order_relaxed);
  }
}

void Simulator::ParallelState::process_window(Simulator& sim, int wid) {
  Worker& me = *worker_state[static_cast<std::size_t>(wid)];
  me.window_events = 0;
  for (int v = 0; v < workers; ++v) {
    const int victim = (wid + v) % workers;
    Worker& vw = *worker_state[static_cast<std::size_t>(victim)];
    for (;;) {
      const std::size_t idx =
          cursors[victim].next.fetch_add(1, std::memory_order_relaxed);
      if (idx >= vw.slice_size) break;
      if (victim != wid) ++me.steals;
      run_rank(sim, me, ready[vw.slice_begin + idx]);
    }
  }
  me.total_events += me.window_events;
  if (me.window_events == 0) ++me.idle_windows;
  static obs::Counter& obs_events = obs::counter("sim.scheduler_events");
  obs_events.add(me.window_events);
}

void Simulator::ParallelState::run_rank(Simulator& sim, Worker& me,
                                        Rank rank) {
  Shard& s = shards[static_cast<std::size_t>(rank)];
  auto& ctx = sim.ranks_[static_cast<std::size_t>(rank)];
  while (!s.heap.empty() && s.heap.top().time < horizon) {
    PEvent ev = s.heap.pop();
    // No monotonicity CHECK here: a kill-triggered collective completion
    // can release survivors below an already-applied event time. The
    // inversion is itself deterministic, so clamping keeps worker-count
    // invariance (DESIGN.md §15).
    s.now = std::max(s.now, ev.time);
    ++s.stats.scheduler_events;
    ++me.window_events;

    switch (ev.type) {
      case Simulator::EventType::kResume:
        if (ctx.failed) break;
        sim.resume_rank(rank, ev.handle, ev.time);
        break;
      case Simulator::EventType::kDeliver: {
        // Transport dedup against the receiver-side per-source sequence:
        // per-channel delivery is non-overtaking, so a non-increasing
        // value is a duplicate copy.
        auto& delivered = s.channel_delivered_seq[ev.msg->source];
        if (ev.msg->transport_seq <= delivered) {
          ++s.fault_stats.duplicates_dropped;
          break;
        }
        delivered = ev.msg->transport_seq;
        // A dead destination consumes the arrival (keeping the duplicate
        // accounting exact) but is no longer there to match it.
        if (ctx.failed) break;
        sim.try_match_arrival(rank, std::move(*ev.msg));
        break;
      }
      case Simulator::EventType::kPoll:
        if (ctx.failed) break;
        ctx.time = std::max(ctx.time, ev.time);
        sim.poll_mf(rank);
        break;
      case Simulator::EventType::kKill:
        sim.kill_rank(rank);
        break;
      case Simulator::EventType::kTimeout: {
        if (ctx.failed || ctx.finished || !ctx.mf_active) break;
        if (ctx.mf_epoch != ev.payload) break;  // stale timer
        ++s.stats.mf_timeouts;
        sim.fail_mf(rank, /*timed_out=*/true, {});
        break;
      }
    }
  }
}

}  // namespace cdc::minimpi
