// Per-rank shard state of the parallel executor (DESIGN.md §15).
//
// Everything the sequential loop keeps globally that would make a
// schedule depend on global event order — RNG streams, sequence counters,
// channel bookkeeping, the event queue itself — lives here per rank.
// A shard is touched only by the worker currently running its rank (one
// ready-task per rank per window keeps that owner-serialized) or by the
// coordinator while every worker is quiesced at the window barrier, so no
// shard field needs a lock. Internal header: included by simulator.cc and
// parallel_executor.cc only.
#pragma once

#include <atomic>
#include <barrier>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "minimpi/event_heap.h"
#include "minimpi/simulator.h"
#include "support/rng.h"

namespace cdc::minimpi {

struct Simulator::ParallelState {
  /// One parallel event. `oseq` is drawn from the *origin* rank's shard
  /// counter while that rank executes deterministically, so the
  /// (time, oseq, orank) key is unique and worker-count-invariant — heap
  /// pop order never depends on which worker inserted what when.
  struct PEvent {
    double time = 0.0;
    std::uint64_t oseq = 0;
    Rank orank = -1;
    EventType type = EventType::kResume;
    Rank rank = -1;                  ///< destination rank
    std::coroutine_handle<> handle;  ///< kResume only
    std::uint64_t payload = 0;       ///< kTimeout: the armed mf_epoch
    std::unique_ptr<Message> msg;    ///< kDeliver only (no global in-flight map)
  };

  /// Strict total order over unique keys: the tie-break total order of the
  /// window protocol.
  struct PEventBefore {
    bool operator()(const PEvent& a, const PEvent& b) const noexcept {
      if (a.time != b.time) return a.time < b.time;
      if (a.oseq != b.oseq) return a.oseq < b.oseq;
      return a.orank < b.orank;
    }
  };

  struct Shard {
    EventHeap<PEvent, PEventBefore> heap;
    /// Deterministic per-rank streams: draws depend only on this rank's
    /// own execution order, never on cross-rank interleaving.
    support::Xoshiro256 noise{1};
    support::Xoshiro256 fault_rng{1};
    std::uint32_t burst_remaining = 0;
    std::uint64_t next_seq = 0;        ///< event + arrival sequence counter
    std::uint64_t next_match_seq = 1;  ///< candidate surfacing order
    double now = 0.0;                  ///< time of the event being applied
    // Sender-side channel state, keyed by destination rank (all traffic on
    // a (src, dst) channel originates here).
    std::unordered_map<Rank, double> channel_last_arrival;
    std::unordered_map<Rank, std::uint64_t> channel_send_seq;
    // Receiver-side transport dedup, keyed by source rank.
    std::unordered_map<Rank, std::uint64_t> channel_delivered_seq;
    /// Satellite-exact accounting: per-shard tallies merged once at run
    /// end — no atomics anywhere on the hot path.
    Stats stats;
    FaultStats fault_stats;
    std::uint64_t max_heap_depth = 0;
  };

  /// Per-worker scratch, cache-line padded against false sharing.
  struct alignas(64) Worker {
    /// Cross-rank deliveries produced this window; the coordinator drains
    /// them into destination heaps at the barrier. Capacity is retained
    /// across windows (allocation-free steady state).
    std::vector<PEvent> outbox;
    std::uint64_t window_events = 0;
    std::uint64_t total_events = 0;
    std::uint64_t steals = 0;
    std::uint64_t idle_windows = 0;
    std::size_t slice_begin = 0;  ///< into `ready`
    std::size_t slice_size = 0;
  };

  /// Work-stealing cursor of one worker's ready slice; owner and thieves
  /// both claim ranks by fetch_add.
  struct alignas(64) Cursor {
    std::atomic<std::size_t> next{0};
  };

  int workers = 1;
  double lookahead = 0.0;
  double horizon = 0.0;
  std::vector<Shard> shards;
  std::vector<std::unique_ptr<Worker>> worker_state;
  std::unique_ptr<Cursor[]> cursors;
  /// Ranks with at least one event below the horizon, rebuilt per window.
  std::vector<Rank> ready;

  // Cross-rank effects are staged through these and resolved only at the
  // window barrier, where the coordinator re-runs collective completion
  // deterministically (rank-order iteration, quiesced workers).
  std::atomic<int> barrier_waiting{0};
  std::atomic<int> allreduce_waiting{0};
  std::atomic<int> failed_count{0};
  std::atomic<bool> collective_dirty{false};

  void push_delivery(Worker& producer, double arrival, Shard& origin,
                     Rank origin_rank, Rank dst, Message&& msg) {
    PEvent ev;
    ev.time = arrival;
    ev.oseq = origin.next_seq++;
    ev.orank = origin_rank;
    ev.type = EventType::kDeliver;
    ev.rank = dst;
    ev.msg = std::make_unique<Message>(std::move(msg));
    producer.outbox.push_back(std::move(ev));
  }

  // --- Engine driver (parallel_executor.cc) -------------------------------

  /// The worker currently executing on this thread; par_post_isend routes
  /// outgoing deliveries to its outbox. The main thread doubles as worker
  /// 0 (and as the coordinator).
  static thread_local Worker* tls_worker;

  std::barrier<>* sync = nullptr;
  std::atomic<bool> stop{false};
  /// A worker stashed `error` (application exception surfaced through a
  /// rank coroutine); the coordinator turns it into a stop, and drive()
  /// rethrows after joining.
  std::atomic<bool> worker_failed{false};
  std::mutex error_mu;
  std::exception_ptr error;  ///< guarded by error_mu

  std::uint64_t windows = 0;
  std::uint64_t last_progress = ~std::uint64_t{0};
  bool first_window = true;

  Simulator::Stats drive(Simulator& sim);
  void worker_loop(Simulator& sim, int wid);
  /// Coordinator serial section: merge outboxes, resolve cross-rank
  /// effects, then either lay out the next window or stop the engine.
  void coordinate(Simulator& sim);
  void merge_and_resolve(Simulator& sim);
  void process_window(Simulator& sim, int wid);
  void run_rank(Simulator& sim, Worker& me, Rank rank);
  [[nodiscard]] double global_now() const noexcept;
};

}  // namespace cdc::minimpi
