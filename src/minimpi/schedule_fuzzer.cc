#include "minimpi/schedule_fuzzer.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>

#include "apps/mcb.h"
#include "apps/taskfarm.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "store/container_reader.h"
#include "store/container_store.h"
#include "store/resilient.h"
#include "support/check.h"
#include "support/oracle.h"
#include "tool/crash_store.h"
#include "tool/degraded.h"
#include "tool/frame_sink.h"
#include "tool/recorder.h"
#include "tool/replayer.h"

namespace cdc::fuzz {

namespace {

/// splitmix64 finalizer: decorrelates the per-purpose seeds derived from
/// one case seed (noise vs. faults, record vs. replay).
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

minimpi::Simulator::Config sim_config(int num_ranks,
                                      std::uint64_t noise_seed,
                                      const minimpi::FaultPlan& faults,
                                      int workers = 0) {
  minimpi::Simulator::Config config;
  config.num_ranks = num_ranks;
  config.noise_seed = noise_seed;
  config.faults = faults;
  config.workers = workers;
  return config;
}

/// Seed-cycled executor axis for record runs: rotate through the
/// sequential engine and 1/2/4-worker parallel engines so every fuzz
/// class continuously proves that a parallel-recorded container replays
/// (on the sequential engine) exactly like a sequentially recorded one.
/// Replay runs stay sequential — replay fidelity is the property under
/// test, not a second parallelism axis. The recorder-crash class also
/// stays sequential: its CrashingStore throws from whichever thread
/// flushes, and the crash point is defined in terms of the sequential
/// flush sequence.
int workers_for(std::uint64_t seed) noexcept {
  static constexpr std::array<int, 4> kWorkerAxis = {0, 1, 2, 4};
  return kWorkerAxis[seed % kWorkerAxis.size()];
}

std::uint64_t fired_faults(const minimpi::FaultStats& stats) noexcept {
  return stats.delay_spikes + stats.burst_messages +
         stats.duplicates_injected + stats.stalls;
}

tool::ToolOptions tool_options(std::size_t chunk_target,
                               bool partial_record = false) {
  tool::ToolOptions options;
  options.chunk_target = chunk_target;
  options.partial_record = partial_record;
  return options;
}

std::string format_double_bits(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::filesystem::path scratch_root(const std::string& scratch_dir) {
  return scratch_dir.empty() ? std::filesystem::temp_directory_path()
                             : std::filesystem::path(scratch_dir);
}

void remove_quietly(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

/// Prefix lengths for support::check_prefix, from replay progress: per
/// stream, the events gated by the (partial) record before the global
/// release.
std::map<runtime::StreamKey, std::uint64_t> prefix_lengths(
    const tool::Replayer& replayer) {
  std::map<runtime::StreamKey, std::uint64_t> lengths;
  for (const auto& [key, stats] : replayer.stream_totals())
    lengths[key] = stats.replayed_events + stats.replayed_unmatched;
  return lengths;
}

}  // namespace

minimpi::FaultPlan plan_for(FaultClass cls, std::uint64_t seed) {
  minimpi::FaultPlan plan;
  plan.seed = seed;
  const bool all = cls == FaultClass::kAll;
  if (all || cls == FaultClass::kDelaySpike)
    plan.delay_spike_probability = 0.05;
  if (all || cls == FaultClass::kReorderBurst)
    plan.reorder_burst_probability = 0.02;
  if (all || cls == FaultClass::kDuplicate)
    plan.duplicate_probability = 0.05;
  if (all || cls == FaultClass::kRankStall) plan.stall_probability = 0.01;
  return plan;
}

FuzzWorkload taskfarm_workload(int num_ranks, int tasks) {
  apps::TaskFarmConfig config;
  config.tasks = tasks;
  FuzzWorkload workload;
  workload.name = "taskfarm" + std::to_string(num_ranks) + "x" +
                  std::to_string(tasks);
  workload.num_ranks = num_ranks;
  workload.kill_tolerant = true;  // the farm shrinks around dead workers
  workload.run = [config](minimpi::Simulator& sim) {
    return apps::run_taskfarm(sim, config).accumulated;
  };
  return workload;
}

FuzzWorkload mcb_workload(int grid_x, int grid_y, int particles_per_rank) {
  apps::McbConfig config;
  config.grid_x = grid_x;
  config.grid_y = grid_y;
  config.particles_per_rank = particles_per_rank;
  config.segments_per_particle = 6;
  config.tracks_per_poll = 8;
  FuzzWorkload workload;
  workload.name = "mcb" + std::to_string(grid_x) + "x" +
                  std::to_string(grid_y);
  workload.num_ranks = grid_x * grid_y;
  workload.run = [config](minimpi::Simulator& sim) {
    return apps::run_mcb(sim, config).global_tally;
  };
  return workload;
}

std::string FuzzFailure::repro() const {
  return "workload=" + workload + " class=" + fault_class_name(cls) +
         " seed=" + std::to_string(seed);
}

std::string FuzzReport::summary() const {
  std::string out = "fuzz: " + std::to_string(cases_passed) + "/" +
                    std::to_string(cases_run) + " cases passed, " +
                    std::to_string(events_checked) + " events checked, " +
                    std::to_string(faults_injected) + " faults injected";
  for (const FuzzFailure& f : failures)
    out += "\n  FAIL " + f.repro() + ": " + f.detail;
  return out;
}

ScheduleFuzzer::ScheduleFuzzer(FuzzWorkload workload, FuzzOptions options)
    : workload_(std::move(workload)), options_(std::move(options)) {
  CDC_CHECK(workload_.run != nullptr && workload_.num_ranks >= 2);
}

FuzzReport ScheduleFuzzer::run() {
  FuzzReport report;
  for (const FaultClass cls : options_.classes)
    for (std::uint32_t i = 0; i < options_.num_seeds; ++i)
      if (auto failure = run_case(cls, options_.base_seed + i, &report))
        report.failures.push_back(std::move(*failure));
  return report;
}

std::optional<FuzzFailure> ScheduleFuzzer::run_case(FaultClass cls,
                                                    std::uint64_t seed,
                                                    FuzzReport* report) {
  switch (cls) {
    case FaultClass::kRecorderCrash: return run_crash_case(seed, report);
    case FaultClass::kRankKill: return run_kill_case(seed, report);
    case FaultClass::kIoFault: return run_io_fault_case(seed, report);
    case FaultClass::kWindow: return run_window_case(seed, report);
    default: return run_transport_case(cls, seed, report);
  }
}

std::optional<FuzzFailure> ScheduleFuzzer::run_transport_case(
    FaultClass cls, std::uint64_t seed, FuzzReport* report) {
  FuzzFailure failure{workload_.name, cls, seed, {}};
  if (report != nullptr) ++report->cases_run;

  // Record under the case's fault schedule.
  runtime::MemoryStore store;
  tool::Recorder recorder(workload_.num_ranks, &store,
                          tool_options(options_.chunk_target));
  support::OrderProbe record_probe(&recorder);
  minimpi::Simulator record_sim(
      sim_config(workload_.num_ranks, mix(seed * 4 + 1),
                 plan_for(cls, mix(seed * 4 + 2)), workers_for(seed)),
      &record_probe);
  const double recorded_value = workload_.run(record_sim);
  recorder.finalize();

  // Replay under a different noise seed AND a different fault schedule of
  // the same class: replay must pin the receive order regardless of what
  // the replay run's own transport does.
  tool::Replayer replayer(workload_.num_ranks, &store,
                          tool_options(options_.chunk_target));
  support::OrderProbe replay_probe(&replayer);
  minimpi::Simulator replay_sim(
      sim_config(workload_.num_ranks, mix(seed * 4 + 3),
                 plan_for(cls, mix(seed * 4 + 4))),
      &replay_probe);
  const double replayed_value = workload_.run(replay_sim);

  if (report != nullptr)
    report->faults_injected += fired_faults(record_sim.fault_stats()) +
                               fired_faults(replay_sim.fault_stats());

  const support::OracleReport oracle =
      support::check_equivalence(record_probe.trace(), replay_probe.trace());
  if (report != nullptr) report->events_checked += oracle.events_compared;
  if (!oracle.ok) {
    failure.detail = oracle.summary();
    return failure;
  }
  if (recorded_value != replayed_value) {
    failure.detail = "order-sensitive result diverged: recorded " +
                     format_double_bits(recorded_value) + " != replayed " +
                     format_double_bits(replayed_value);
    return failure;
  }
  if (!replayer.fully_replayed()) {
    failure.detail = "replay finished with unconsumed record";
    return failure;
  }
  if (report != nullptr) ++report->cases_passed;
  return std::nullopt;
}

std::string ScheduleFuzzer::scratch_path(const char* tag,
                                         std::uint64_t seed) const {
  const std::string file = "cdc_fuzz_" + workload_.name + "_" + tag + "_" +
                           std::to_string(seed) + "_" +
                           std::to_string(::getpid()) + ".cdc";
  return (scratch_root(options_.scratch_dir) / file).string();
}

std::optional<FuzzFailure> ScheduleFuzzer::run_crash_case(
    std::uint64_t seed, FuzzReport* report) {
  FuzzFailure failure{workload_.name, FaultClass::kRecorderCrash, seed, {}};
  if (report != nullptr) ++report->cases_run;
  const std::string container_path = scratch_path("crash", seed);
  const std::string repacked_path = scratch_path("repacked", seed);

  // Record into an on-disk container; the recorder "crashes" after a
  // seed-dependent number of frame appends and the container is abandoned
  // unsealed — a killed process's on-disk state.
  store::ContainerStore container(container_path);
  tool::CrashingStore crashing(&container, /*appends_before_crash=*/seed % 32);
  tool::Recorder recorder(workload_.num_ranks, &crashing,
                          tool_options(options_.chunk_target));
  support::OrderProbe record_probe(&recorder);
  minimpi::Simulator record_sim(
      sim_config(workload_.num_ranks, mix(seed * 4 + 1), {}), &record_probe);
  workload_.run(record_sim);
  recorder.finalize();
  container.abandon();

  // Salvage: repack the intact frames into a fresh sealed container and
  // prefix-replay it.
  store::SalvageResult salvage =
      store::salvage_container(container_path, repacked_path);
  std::optional<FuzzFailure> result;
  if (salvage.store == nullptr) {
    // Nothing salvageable is legitimate only when (almost) nothing was
    // persisted: a header-only container is below the reader's minimum
    // size. Anything else is a salvage bug.
    if (crashing.appends_forwarded() > 0) {
      failure.detail = "salvage failed with " +
                       std::to_string(crashing.appends_forwarded()) +
                       " frames persisted: " + salvage.repack.error;
      result = failure;
    } else if (report != nullptr) {
      ++report->cases_passed;
    }
  } else {
    tool::Replayer replayer(workload_.num_ranks, salvage.store.get(),
                            tool_options(options_.chunk_target,
                                         /*partial_record=*/true));
    support::OrderProbe replay_probe(&replayer);
    minimpi::Simulator replay_sim(
        sim_config(workload_.num_ranks, mix(seed * 4 + 3), {}),
        &replay_probe);
    workload_.run(replay_sim);

    const support::OracleReport oracle = support::check_prefix(
        record_probe.trace(), replay_probe.trace(), prefix_lengths(replayer));
    if (report != nullptr) report->events_checked += oracle.events_compared;
    if (!oracle.ok) {
      failure.detail = oracle.summary();
      result = failure;
    } else if (salvage.repack.frames_kept > 0 &&
               oracle.events_compared == 0 && !replayer.released()) {
      // An empty verified prefix is legitimate under a tiny crash budget:
      // the first MF call can hit a stream with no salvaged chunks, which
      // releases the whole replay to passthrough before anything is gated.
      // But frames present + nothing gated + no release = a dead replay.
      failure.detail = "frames were salvaged but the replay gated nothing";
      result = failure;
    } else if (report != nullptr) {
      ++report->cases_passed;
    }
  }
  remove_quietly(container_path);
  remove_quietly(repacked_path);
  return result;
}

std::optional<FuzzFailure> ScheduleFuzzer::run_kill_case(std::uint64_t seed,
                                                         FuzzReport* report) {
  FuzzFailure failure{workload_.name, FaultClass::kRankKill, seed, {}};
  if (report != nullptr) ++report->cases_run;
  CDC_CHECK_MSG(workload_.kill_tolerant,
                "kRankKill requires a kill-tolerant workload");

  // Probe run (same noise seed, no faults): learn the run's virtual span
  // so the seeded kill lands mid-run rather than before the first message
  // or after the last.
  double probe_end = 0.0;
  {
    // Same engine as the record run below, so the span estimate matches.
    minimpi::Simulator probe(
        sim_config(workload_.num_ranks, mix(seed * 4 + 1), {},
                   workers_for(seed)));
    workload_.run(probe);
    probe_end = probe.stats().end_time;
  }

  minimpi::FaultPlan plan;
  plan.seed = mix(seed * 4 + 2);
  minimpi::RankKill kill;
  kill.rank = 1 + static_cast<minimpi::Rank>(
                      mix(seed * 4 + 2) %
                      static_cast<std::uint64_t>(workload_.num_ranks - 1));
  kill.time = probe_end * (0.10 + 0.80 * static_cast<double>(
                                             mix(seed * 4 + 5) % 1000) /
                                      1000.0);
  plan.kills.push_back(kill);

  // Record the killed run into a sealed on-disk container: the recorder
  // survives the process failure (the survivors' streams are complete;
  // the victim's end at its death).
  const std::string container_path = scratch_path("kill", seed);
  support::Trace recorded_trace;
  std::uint64_t kills_fired = 0;
  {
    store::ContainerStore container(container_path);
    tool::Recorder recorder(workload_.num_ranks, &container,
                            tool_options(options_.chunk_target));
    support::OrderProbe record_probe(&recorder);
    minimpi::Simulator record_sim(
        sim_config(workload_.num_ranks, mix(seed * 4 + 1), plan,
                   workers_for(seed)),
        &record_probe);
    workload_.run(record_sim);
    recorder.finalize();
    container.seal();
    recorded_trace = record_probe.trace();
    kills_fired = record_sim.fault_stats().rank_kills;
    if (report != nullptr) report->faults_injected += kills_fired;
  }

  // The gap report is this case's CI artifact; a recorder that survived
  // to seal() must leave a frame-complete container (the degradation is
  // semantic — the victim's streams just end early).
  const tool::GapReport gaps = tool::inspect_gaps(container_path);
  if (!options_.gap_report_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.gap_report_dir, ec);
    const std::string name = "gaps_" + workload_.name + "_" +
                             std::to_string(seed) + ".json";
    obs::JsonWriter::write_file(
        (std::filesystem::path(options_.gap_report_dir) / name).string(),
        gaps.to_json());
  }

  std::optional<FuzzFailure> result;
  if (!gaps.container_sealed || gaps.frame_coverage() < 1.0) {
    failure.detail = "sealed post-kill container is frame-damaged: " +
                     (gaps.container_errors.empty()
                          ? "coverage < 1"
                          : gaps.container_errors.front());
    result = failure;
  } else if (kills_fired != 1) {
    // The victim finished before its kill time: deterministic per seed and
    // legitimate (nothing degraded to check), but only a late kill
    // fraction should ever get there.
    if (report != nullptr) ++report->cases_passed;
  } else {
    // Degraded replay: a fault-free run gated by the truncated record;
    // once the victim's streams run dry the replayer releases survivors
    // to passthrough, and the oracle checks the gated prefix.
    const auto replay_store = store::ContainerStore::open(container_path);
    tool::Replayer replayer(workload_.num_ranks, replay_store.get(),
                            tool_options(options_.chunk_target,
                                         /*partial_record=*/true));
    support::OrderProbe replay_probe(&replayer);
    minimpi::Simulator replay_sim(
        sim_config(workload_.num_ranks, mix(seed * 4 + 3), {}),
        &replay_probe);
    workload_.run(replay_sim);

    const support::OracleReport oracle = support::check_prefix(
        recorded_trace, replay_probe.trace(), prefix_lengths(replayer));
    if (report != nullptr) report->events_checked += oracle.events_compared;
    if (!oracle.ok) {
      failure.detail = oracle.summary();
      result = failure;
    } else if (oracle.events_compared == 0 && !replayer.released()) {
      failure.detail = "a killed run was recorded but the replay gated "
                       "nothing";
      result = failure;
    } else if (report != nullptr) {
      ++report->cases_passed;
    }
  }
  remove_quietly(container_path);
  return result;
}

std::optional<FuzzFailure> ScheduleFuzzer::run_io_fault_case(
    std::uint64_t seed, FuzzReport* report) {
  FuzzFailure failure{workload_.name, FaultClass::kIoFault, seed, {}};
  if (report != nullptr) ++report->cases_run;

  // Reference: the same seeded run recorded with no storage faults.
  runtime::MemoryStore clean;
  support::Trace recorded_trace;
  double recorded_value = 0.0;
  {
    tool::Recorder recorder(workload_.num_ranks, &clean,
                            tool_options(options_.chunk_target));
    support::OrderProbe probe(&recorder);
    minimpi::Simulator sim(
        sim_config(workload_.num_ranks, mix(seed * 4 + 1), {},
                   workers_for(seed)),
        &probe);
    recorded_value = workload_.run(sim);
    recorder.finalize();
    recorded_trace = probe.trace();
  }

  // The same run again, with seeded transient I/O faults injected between
  // the frame sink and the store — every one must be absorbed by the
  // bounded-backoff retries, leaving the record bit-identical.
  runtime::MemoryStore base;
  store::IoFaultPlan fault_plan;
  fault_plan.seed = mix(seed * 4 + 2);
  fault_plan.eio_every_n = 7;
  fault_plan.eio_probability = 0.25;
  fault_plan.failures_per_fault =
      1 + static_cast<std::uint32_t>(mix(seed * 4 + 4) % 3);
  fault_plan.short_write_probability = 0.5;
  fault_plan.fsync_failure_every_n = 2;
  store::IoFaultStore faulty(&base, fault_plan);
  store::RetryPolicy policy;
  policy.jitter_seed = mix(seed * 4 + 5);
  tool::RetryingFrameSink sink(&faulty, policy);
  std::uint64_t checkpoint_failures = 0;
  {
    tool::Recorder recorder(workload_.num_ranks, &sink.store(),
                            tool_options(options_.chunk_target), &sink);
    support::OrderProbe probe(&recorder);
    minimpi::Simulator sim(
        sim_config(workload_.num_ranks, mix(seed * 4 + 1), {},
                   workers_for(seed)),
        &probe);
    workload_.run(sim);
    recorder.finalize();
    checkpoint_failures = recorder.checkpoint_failures();
  }
  if (report != nullptr)
    report->faults_injected += faulty.stats().transient_throws +
                               faulty.stats().fsync_failures;

  if (sink.stats().quarantined != 0) {
    failure.detail = "transient faults quarantined " +
                     std::to_string(sink.stats().quarantined) + " frame(s)";
    return failure;
  }
  if (checkpoint_failures != 0) {
    failure.detail = "checkpoint sync failed through the retrying store";
    return failure;
  }
  const double backoff_bound =
      policy.max_total_backoff_ms() *
      static_cast<double>(faulty.stats().appends);
  if (sink.stats().backoff_ms_total > backoff_bound) {
    failure.detail = "backoff exceeded its bound: " +
                     std::to_string(sink.stats().backoff_ms_total) + "ms > " +
                     std::to_string(backoff_bound) + "ms";
    return failure;
  }
  // Bit-identical to the fault-free record, stream by stream.
  const auto clean_keys = clean.keys();
  if (clean_keys != base.keys()) {
    failure.detail = "faulted record has different streams";
    return failure;
  }
  for (const runtime::StreamKey& key : clean_keys) {
    if (clean.read(key) != base.read(key)) {
      failure.detail = "stream (rank=" + std::to_string(key.rank) +
                       ", callsite=" + std::to_string(key.callsite) +
                       ") is not bit-identical after retried faults";
      return failure;
    }
  }

  // And the surviving record replays with full equivalence.
  tool::Replayer replayer(workload_.num_ranks, &base,
                          tool_options(options_.chunk_target));
  support::OrderProbe replay_probe(&replayer);
  minimpi::Simulator replay_sim(
      sim_config(workload_.num_ranks, mix(seed * 4 + 3), {}), &replay_probe);
  const double replayed_value = workload_.run(replay_sim);

  const support::OracleReport oracle =
      support::check_equivalence(recorded_trace, replay_probe.trace());
  if (report != nullptr) report->events_checked += oracle.events_compared;
  if (!oracle.ok) {
    failure.detail = oracle.summary();
    return failure;
  }
  if (recorded_value != replayed_value) {
    failure.detail = "order-sensitive result diverged after retried faults";
    return failure;
  }
  if (report != nullptr) ++report->cases_passed;
  return std::nullopt;
}

std::optional<FuzzFailure> ScheduleFuzzer::run_window_case(
    std::uint64_t seed, FuzzReport* report) {
  FuzzFailure failure{workload_.name, FaultClass::kWindow, seed, {}};
  if (report != nullptr) ++report->cases_run;
  // The transport adversary cycles deterministically with the seed, so a
  // 16-seed sweep covers every transport class at least twice.
  static constexpr std::array<FaultClass, 6> kTransport = {
      FaultClass::kNone,      FaultClass::kDelaySpike,
      FaultClass::kReorderBurst, FaultClass::kDuplicate,
      FaultClass::kRankStall, FaultClass::kAll,
  };
  const FaultClass transport = kTransport[seed % kTransport.size()];
  const std::string container_path = scratch_path("window", seed);

  // Record under the case's fault schedule into a sealed, epoch-indexed
  // container on disk.
  {
    store::ContainerStore container(container_path);
    tool::Recorder recorder(workload_.num_ranks, &container,
                            tool_options(options_.chunk_target));
    support::OrderProbe record_probe(&recorder);
    minimpi::Simulator record_sim(
        sim_config(workload_.num_ranks, mix(seed * 8 + 1),
                   plan_for(transport, mix(seed * 8 + 2)),
                   workers_for(seed)),
        &record_probe);
    workload_.run(record_sim);
    recorder.finalize();
    container.seal();
    if (report != nullptr)
      report->faults_injected += fired_faults(record_sim.fault_stats());
  }
  const auto cleanup = [&] { remove_quietly(container_path); };

  const auto store = store::ContainerStore::open(container_path);
  if (store->reader() == nullptr || !store->reader()->epoch_index_ok()) {
    failure.detail = "sealed container has no usable epoch index";
    cleanup();
    return failure;
  }

  // Full replay under a different schedule: the reference trace every
  // window slice is checked against.
  tool::Replayer full(workload_.num_ranks, store.get(),
                      tool_options(options_.chunk_target));
  support::OrderProbe full_probe(&full);
  minimpi::Simulator full_sim(
      sim_config(workload_.num_ranks, mix(seed * 8 + 3),
                 plan_for(transport, mix(seed * 8 + 4))),
      &full_probe);
  workload_.run(full_sim);
  if (report != nullptr)
    report->faults_injected += fired_faults(full_sim.fault_stats());
  if (!full.fully_replayed()) {
    failure.detail = "full replay finished with unconsumed record";
    cleanup();
    return failure;
  }

  // A seed-derived epoch window inside the record's deepest stream.
  std::uint64_t epochs = 0;
  for (const auto& [key, stats] : full.stream_totals())
    epochs = std::max(epochs, stats.chunks);
  if (epochs == 0) {
    failure.detail = "record holds no epochs to window";
    cleanup();
    return failure;
  }
  const std::uint64_t lo = mix(seed * 8 + 5) % epochs;
  const std::uint64_t hi = lo + 1 + mix(seed * 8 + 6) % (epochs - lo);

  // Windowed replay under a third schedule. The stream bytes must come
  // from the epoch-index seek — a sequential-read fallback is a failure.
  obs::Counter& fallbacks = obs::counter("store.container.epoch_fallbacks");
  const std::uint64_t fallbacks_before = fallbacks.value();
  tool::Replayer window(workload_.num_ranks, store.get(),
                        tool_options(options_.chunk_target));
  window.replay_window(lo, hi);
  support::OrderProbe window_probe(&window);
  minimpi::Simulator window_sim(
      sim_config(workload_.num_ranks, mix(seed * 8 + 7),
                 plan_for(transport, mix(seed * 8 + 9))),
      &window_probe);
  workload_.run(window_sim);
  if (report != nullptr)
    report->faults_injected += fired_faults(window_sim.fault_stats());
  if (fallbacks.value() != fallbacks_before) {
    failure.detail = "windowed replay fell back to a sequential read";
    cleanup();
    return failure;
  }

  // Slice both traces to each stream's verified [begin, end) and compare
  // event-for-event: windowed replay must surface exactly the interval the
  // full replay surfaced.
  support::Trace full_slice;
  support::Trace window_slice;
  for (const auto& [key, slice] : window.window_slices()) {
    const auto full_it = full_probe.trace().find(key);
    const auto window_it = window_probe.trace().find(key);
    if (slice.end > slice.begin &&
        (full_it == full_probe.trace().end() ||
         window_it == window_probe.trace().end() ||
         full_it->second.size() < slice.end ||
         window_it->second.size() < slice.end)) {
      failure.detail = "window slice [" + std::to_string(slice.begin) + ", " +
                       std::to_string(slice.end) +
                       ") runs past a trace of stream (rank=" +
                       std::to_string(key.rank) +
                       ", callsite=" + std::to_string(key.callsite) + ")";
      cleanup();
      return failure;
    }
    if (slice.end == slice.begin) continue;
    full_slice[key].assign(
        full_it->second.begin() + static_cast<std::ptrdiff_t>(slice.begin),
        full_it->second.begin() + static_cast<std::ptrdiff_t>(slice.end));
    window_slice[key].assign(
        window_it->second.begin() + static_cast<std::ptrdiff_t>(slice.begin),
        window_it->second.begin() + static_cast<std::ptrdiff_t>(slice.end));
  }
  const support::OracleReport oracle =
      support::check_equivalence(full_slice, window_slice);
  if (report != nullptr) report->events_checked += oracle.events_compared;
  if (!oracle.ok) {
    failure.detail = "window [" + std::to_string(lo) + ", " +
                     std::to_string(hi) + "): " + oracle.summary();
    cleanup();
    return failure;
  }
  // Non-vacuity: the stream that triggered the release covered its whole
  // window, so a window over a non-empty record verifies real events.
  if (oracle.events_compared == 0) {
    failure.detail = "window [" + std::to_string(lo) + ", " +
                     std::to_string(hi) + ") verified zero events";
    cleanup();
    return failure;
  }
  cleanup();
  if (report != nullptr) ++report->cases_passed;
  return std::nullopt;
}

// --- Crash-at-every-frame-boundary sweep -----------------------------------

std::string CrashSweepReport::summary() const {
  std::string out = "crash sweep: " + std::to_string(prefixes_verified) +
                    "/" + std::to_string(boundaries_tested) +
                    " boundaries verified (" +
                    std::to_string(frames_recorded) + " frames, " +
                    std::to_string(events_checked) + " events checked)";
  for (const std::string& f : failures) out += "\n  FAIL " + f;
  return out;
}

CrashSweepReport crash_boundary_sweep(const FuzzWorkload& workload,
                                      std::uint64_t seed,
                                      const std::string& scratch_dir,
                                      std::size_t chunk_target) {
  CrashSweepReport report;
  const auto root = scratch_root(scratch_dir);
  const std::string stem = "cdc_sweep_" + workload.name + "_" +
                           std::to_string(seed) + "_" +
                           std::to_string(::getpid());
  const std::string sealed_path = (root / (stem + ".cdc")).string();
  const std::string trunc_path = (root / (stem + "_trunc.cdc")).string();
  const std::string repacked_path = (root / (stem + "_repacked.cdc")).string();

  // One clean recording, sealed — the reference run and the byte source
  // for every truncation.
  support::Trace recorded_trace;
  {
    store::ContainerStore container(sealed_path);
    tool::Recorder recorder(workload.num_ranks, &container,
                            tool_options(chunk_target));
    support::OrderProbe probe(&recorder);
    minimpi::Simulator sim(
        sim_config(workload.num_ranks, mix(seed * 4 + 1), {}), &probe);
    workload.run(sim);
    recorder.finalize();
    container.seal();
    recorded_trace = probe.trace();
  }

  std::vector<std::uint64_t> boundaries;
  std::vector<std::uint8_t> bytes;
  {
    const auto reader = store::ContainerReader::open(sealed_path);
    CDC_CHECK_MSG(reader != nullptr && reader->index_ok(),
                  "sweep recording produced an unreadable container");
    for (const auto& frame : reader->scan_good_frames())
      boundaries.push_back(frame.offset);  // truncating here drops frame..end
    boundaries.push_back(reader->data_end());  // all frames, no footer
    report.frames_recorded = boundaries.size() - 1;

    std::ifstream in(sealed_path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
    CDC_CHECK(bytes.size() == reader->file_bytes());
  }

  for (std::size_t b = 0; b < boundaries.size(); ++b) {
    ++report.boundaries_tested;
    const std::uint64_t boundary = boundaries[b];
    const auto fail = [&](const std::string& what) {
      report.failures.push_back("boundary " + std::to_string(b) + " (offset " +
                                std::to_string(boundary) + "): " + what);
    };
    {
      std::ofstream out(trunc_path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(boundary));
      CDC_CHECK(out.good());
    }

    store::SalvageResult salvage =
        store::salvage_container(trunc_path, repacked_path);
    if (salvage.store == nullptr) {
      // Only the empty prefix (header-only file, below the reader's
      // minimum size) may fail to salvage.
      if (b == 0)
        ++report.prefixes_verified;
      else
        fail("salvage failed: " + salvage.repack.error);
      continue;
    }
    if (salvage.repack.frames_kept != b) {
      fail("expected " + std::to_string(b) + " salvaged frames, got " +
           std::to_string(salvage.repack.frames_kept));
      continue;
    }

    // Every surviving byte re-verifies by CRC after the repack.
    const auto reader = store::ContainerReader::open(repacked_path);
    const store::VerifyReport verify =
        reader != nullptr ? reader->verify() : store::VerifyReport{};
    if (reader == nullptr || !verify.ok) {
      fail("repacked container failed verification");
      continue;
    }

    tool::Replayer replayer(workload.num_ranks, salvage.store.get(),
                            tool_options(chunk_target,
                                         /*partial_record=*/true));
    support::OrderProbe probe(&replayer);
    minimpi::Simulator sim(
        sim_config(workload.num_ranks, mix(seed * 4 + 3), {}), &probe);
    workload.run(sim);

    const support::OracleReport oracle = support::check_prefix(
        recorded_trace, probe.trace(), prefix_lengths(replayer));
    report.events_checked += oracle.events_compared;
    if (!oracle.ok) {
      fail(oracle.summary());
      continue;
    }
    ++report.prefixes_verified;
  }

  remove_quietly(sealed_path);
  remove_quietly(trunc_path);
  remove_quietly(repacked_path);
  return report;
}

}  // namespace cdc::fuzz
