// Schedule fuzzer: adversarial record→replay validation at volume.
//
// Drives N seeded delivery-order permutations — each under a transport
// fault class from minimpi/fault.h — through the full pipeline
// (record → encode → store → decode → replay) and checks every case with
// the replay-equivalence oracle (support/oracle.h): the replayed
// per-(rank, callsite) receive order must be bit-identical to the recorded
// one, and the workload's order-sensitive floating-point result must match
// bitwise. The recorder-crash class records into an on-disk container,
// abandons it unsealed mid-run (tool/crash_store.h), salvages it with the
// store repack path, and prefix-replays the survivor; a companion sweep
// truncates a sealed container at every frame boundary and proves each
// salvaged prefix CRC-verifies and replays faithfully.
//
// The simulator's executor is a seed-cycled fuzz axis: record runs rotate
// through the sequential engine and 1/2/4-worker parallel engines
// (workers = {0,1,2,4}[seed % 4]), so every class also exercises the
// conservative-window parallel executor; replay runs stay sequential.
//
// Every failure carries (workload, fault class, seed) — the complete
// reproduction key: two runs with the same triple are bit-identical
// (the worker count is derived from the seed).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "minimpi/fault.h"
#include "minimpi/simulator.h"

namespace cdc::fuzz {

/// One fault class per fuzz case. kAll layers every transport fault;
/// kRecorderCrash is the storage-failure case (no transport faults — the
/// crash is the adversary). kRankKill and kIoFault are the
/// survive-and-resume classes: a process failure mid-run (requires a
/// kill-tolerant workload; the record is then degraded-replayed and
/// prefix-checked) and transient storage I/O errors absorbed by the
/// retrying frame sink (the record must come out bit-identical).
enum class FaultClass : std::uint8_t {
  kNone,
  kDelaySpike,
  kReorderBurst,
  kDuplicate,
  kRankStall,
  kAll,
  kRecorderCrash,
  kRankKill,
  kIoFault,
  kWindow,
};

/// Every class every workload supports (kRankKill is excluded: it needs
/// FuzzWorkload::kill_tolerant — see kFailureFaultClasses; kWindow is the
/// nightly windowed-replay class and runs in its own fuzz_window suite).
inline constexpr std::array<FaultClass, 8> kAllFaultClasses = {
    FaultClass::kNone,      FaultClass::kDelaySpike,
    FaultClass::kReorderBurst, FaultClass::kDuplicate,
    FaultClass::kRankStall, FaultClass::kAll,
    FaultClass::kRecorderCrash, FaultClass::kIoFault,
};

/// The survive-and-resume slice (CI's degraded-replay fuzz job): process
/// failure + storage failure.
inline constexpr std::array<FaultClass, 2> kFailureFaultClasses = {
    FaultClass::kRankKill,
    FaultClass::kIoFault,
};

/// The windowed-replay class (nightly `fuzz_window` suite): each case
/// records under a seed-derived transport fault class into an
/// epoch-indexed container, full-replays it, then replays a seed-derived
/// epoch window [lo, hi) and checks every verified window slice against
/// the same interval of the full-replay trace (support/oracle.h
/// check_equivalence on the slices). The seek must come from the epoch
/// index — a fallback to a sequential read fails the case.
inline constexpr std::array<FaultClass, 1> kWindowFaultClasses = {
    FaultClass::kWindow,
};

[[nodiscard]] constexpr const char* fault_class_name(FaultClass cls) noexcept {
  switch (cls) {
    case FaultClass::kNone: return "none";
    case FaultClass::kDelaySpike: return "delay_spike";
    case FaultClass::kReorderBurst: return "reorder_burst";
    case FaultClass::kDuplicate: return "duplicate";
    case FaultClass::kRankStall: return "rank_stall";
    case FaultClass::kAll: return "all";
    case FaultClass::kRecorderCrash: return "recorder_crash";
    case FaultClass::kRankKill: return "rank_kill";
    case FaultClass::kIoFault: return "io_fault";
    case FaultClass::kWindow: return "window";
  }
  return "?";
}

/// The seeded FaultPlan one fuzz case runs under (deterministic in
/// (cls, seed); kNone/kRecorderCrash yield a disabled plan).
[[nodiscard]] minimpi::FaultPlan plan_for(FaultClass cls, std::uint64_t seed);

/// A workload the fuzzer can drive: installs programs on the simulator,
/// runs it, and returns an order-sensitive floating-point result (bitwise
/// reproduction of that value is part of the oracle check).
struct FuzzWorkload {
  std::string name;
  int num_ranks = 1;
  /// True when the application shrinks around killed ranks (taskfarm).
  /// kRankKill cases require it; MCB's global completion count cannot
  /// survive losing in-flight particles, so it stays false there.
  bool kill_tolerant = false;
  std::function<double(minimpi::Simulator&)> run;
};

/// Master/worker task farm (Waitany/Wait idiom), sized for fuzzing volume.
[[nodiscard]] FuzzWorkload taskfarm_workload(int num_ranks = 6,
                                             int tasks = 160);
/// MCB-style particle transport (Testsome polling idiom), small grid.
[[nodiscard]] FuzzWorkload mcb_workload(int grid_x = 2, int grid_y = 2,
                                        int particles_per_rank = 30);

struct FuzzOptions {
  std::uint64_t base_seed = 1;   ///< case seeds are base_seed + i
  std::uint32_t num_seeds = 64;  ///< cases per fault class
  std::vector<FaultClass> classes{kAllFaultClasses.begin(),
                                  kAllFaultClasses.end()};
  std::size_t chunk_target = 64;  ///< small: exercise chunk/epoch logic
  /// Directory for recorder-crash container files; empty = the system
  /// temp directory.
  std::string scratch_dir;
  /// When non-empty, every kRankKill case writes its machine-readable gap
  /// report (tool::GapReport JSON) here as
  /// `gaps_<workload>_<seed>.json` — the CI fuzz job uploads these as
  /// artifacts.
  std::string gap_report_dir;
};

struct FuzzFailure {
  std::string workload;
  FaultClass cls = FaultClass::kNone;
  std::uint64_t seed = 0;
  std::string detail;

  [[nodiscard]] std::string repro() const;  ///< one-line reproduction key
};

struct FuzzReport {
  std::uint64_t cases_run = 0;
  std::uint64_t cases_passed = 0;
  std::uint64_t events_checked = 0;   ///< oracle event comparisons
  std::uint64_t faults_injected = 0;  ///< across all record+replay runs
  std::vector<FuzzFailure> failures;

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
  [[nodiscard]] std::string summary() const;
};

class ScheduleFuzzer {
 public:
  explicit ScheduleFuzzer(FuzzWorkload workload, FuzzOptions options = {});

  /// Runs every configured (class, seed) case; never aborts on a
  /// mismatch — failures land in the report with their reproduction keys.
  FuzzReport run();

  /// Runs one case (the reproduction entry point for a failure from a CI
  /// log), accumulating into `report` when given.
  std::optional<FuzzFailure> run_case(FaultClass cls, std::uint64_t seed,
                                      FuzzReport* report = nullptr);

 private:
  std::optional<FuzzFailure> run_transport_case(FaultClass cls,
                                                std::uint64_t seed,
                                                FuzzReport* report);
  std::optional<FuzzFailure> run_crash_case(std::uint64_t seed,
                                            FuzzReport* report);
  std::optional<FuzzFailure> run_kill_case(std::uint64_t seed,
                                           FuzzReport* report);
  std::optional<FuzzFailure> run_io_fault_case(std::uint64_t seed,
                                               FuzzReport* report);
  std::optional<FuzzFailure> run_window_case(std::uint64_t seed,
                                             FuzzReport* report);
  [[nodiscard]] std::string scratch_path(const char* tag,
                                         std::uint64_t seed) const;

  FuzzWorkload workload_;
  FuzzOptions options_;
};

/// Crash-at-every-frame-boundary sweep: records `workload` once into a
/// sealed container, then for each frame boundary (including "no frames
/// yet" and "all frames, no footer") truncates a copy there, repacks it,
/// verifies every surviving byte by CRC, and prefix-replays it against the
/// recorded trace.
struct CrashSweepReport {
  std::uint64_t boundaries_tested = 0;
  std::uint64_t prefixes_verified = 0;  ///< CRC-clean and oracle-passed
  std::uint64_t frames_recorded = 0;    ///< frames in the sealed container
  std::uint64_t events_checked = 0;
  std::vector<std::string> failures;

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
  [[nodiscard]] std::string summary() const;
};

[[nodiscard]] CrashSweepReport crash_boundary_sweep(
    const FuzzWorkload& workload, std::uint64_t seed,
    const std::string& scratch_dir = {}, std::size_t chunk_target = 64);

}  // namespace cdc::fuzz
