#include "minimpi/simulator.h"

#include <algorithm>
#include <cmath>

#include "minimpi/executor.h"
#include "minimpi/parallel_state.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cdc::minimpi {

// --- Awaiters -------------------------------------------------------------

void ComputeAwaiter::await_suspend(std::coroutine_handle<> handle) {
  auto& ctx = sim->ranks_[static_cast<std::size_t>(rank)];
  sim->schedule(ctx.time + seconds, Simulator::EventType::kResume, rank,
                handle);
}

void MFAwaiter::await_suspend(std::coroutine_handle<> handle) {
  auto& ctx = sim->ranks_[static_cast<std::size_t>(rank)];
  CDC_CHECK_MSG(!ctx.mf_active, "rank issued a second MF call while pending");
  ++sim->rank_stats(rank).mf_calls;

  // Send-only MF calls complete immediately (buffered-send model) and do
  // not pass through the tool: the paper records receives only.
  bool any_recv = false;
  for (const std::uint64_t id : request_ids) {
    auto& req = ctx.requests[id];
    if (req.kind == Simulator::RequestState::Kind::kRecv) {
      any_recv = true;
    } else {
      CDC_CHECK_MSG(!any_recv || request_ids.size() == 1,
                    "mixed send/recv MF request sets are unsupported");
    }
  }
  // Inactive (already delivered) receives are ignored, as in MPI. A call
  // whose requests are all sends or all inactive completes immediately.
  std::size_t active = 0;
  for (const std::uint64_t id : request_ids) {
    const auto& req = ctx.requests[id];
    if (req.kind == Simulator::RequestState::Kind::kRecv && !req.delivered)
      ++active;
  }
  if (!any_recv || active == 0) {
    for (const std::uint64_t id : request_ids)
      ctx.requests[id].delivered = true;
    result.flag = true;
    sim->schedule(ctx.time + sim->config_.mpi_call_cost,
                  Simulator::EventType::kResume, rank, handle);
    return;
  }
  for (const std::uint64_t id : request_ids) {
    const auto& req = ctx.requests[id];
    CDC_CHECK_MSG(req.kind == Simulator::RequestState::Kind::kRecv,
                  "mixed send/recv MF request sets are unsupported");
  }

  ctx.mf_active = true;
  ctx.mf = this;
  ctx.mf_continuation = handle;
  ctx.mf_poll_scheduled = true;
  ++ctx.mf_epoch;
  double call_cost = sim->config_.mpi_call_cost;
  if (sim->hooks_ != &sim->default_hooks_)
    call_cost += sim->config_.tool_call_cost;
  sim->schedule(ctx.time + call_cost, Simulator::EventType::kPoll, rank);
  if (sim->config_.mf_timeout > 0.0)
    sim->schedule(ctx.time + call_cost + sim->config_.mf_timeout,
                  Simulator::EventType::kTimeout, rank, nullptr,
                  ctx.mf_epoch);
}

void BarrierAwaiter::await_suspend(std::coroutine_handle<> handle) {
  auto& ctx = sim->ranks_[static_cast<std::size_t>(rank)];
  CDC_CHECK(!ctx.in_barrier && ctx.allreduce == nullptr);
  ctx.in_barrier = true;
  ctx.collective_continuation = handle;
  if (sim->par_ != nullptr) {
    // Entry is rank-local; completion is a cross-rank effect and is
    // resolved only by the coordinator at the window barrier.
    sim->par_->barrier_waiting.fetch_add(1, std::memory_order_relaxed);
    sim->par_->collective_dirty.store(true, std::memory_order_release);
    return;
  }
  ++sim->barrier_waiting_;
  sim->complete_barrier_if_ready();
}

void AllreduceAwaiter::await_suspend(std::coroutine_handle<> handle) {
  auto& ctx = sim->ranks_[static_cast<std::size_t>(rank)];
  CDC_CHECK(!ctx.in_barrier && ctx.allreduce == nullptr);
  ctx.allreduce = this;
  ctx.collective_continuation = handle;
  sim->allreduce_inputs_[static_cast<std::size_t>(rank)] =
      std::move(contribution);
  if (sim->par_ != nullptr) {
    sim->par_->allreduce_waiting.fetch_add(1, std::memory_order_relaxed);
    sim->par_->collective_dirty.store(true, std::memory_order_release);
    return;
  }
  ++sim->allreduce_waiting_;
  sim->complete_allreduce_if_ready();
}

// --- Comm -----------------------------------------------------------------

int Comm::size() const noexcept { return sim_->size(); }
double Comm::now() const noexcept {
  return sim_->ranks_[static_cast<std::size_t>(rank_)].time;
}

Request Comm::isend(Rank dst, int tag, std::span<const std::uint8_t> data) {
  return sim_->post_isend(rank_, dst, tag, data);
}

Request Comm::irecv(Rank source, int tag) {
  return sim_->post_irecv(rank_, source, tag);
}

MFAwaiter Comm::make_mf(MFKind kind, std::span<const Request> requests,
                        CallsiteId callsite) {
  MFAwaiter awaiter{sim_, rank_, kind, callsite, {}, {}};
  awaiter.request_ids.reserve(requests.size());
  for (const Request& r : requests) {
    CDC_CHECK_MSG(r.valid(), "invalid request passed to an MF call");
    awaiter.request_ids.push_back(r.id);
  }
  CDC_CHECK_MSG(!awaiter.request_ids.empty(), "empty MF request set");
  return awaiter;
}

MFAwaiter Comm::wait(Request request, CallsiteId callsite) {
  return make_mf(MFKind::kWait, {&request, 1}, callsite);
}
MFAwaiter Comm::waitall(std::span<const Request> requests,
                        CallsiteId callsite) {
  return make_mf(MFKind::kWaitall, requests, callsite);
}
MFAwaiter Comm::waitany(std::span<const Request> requests,
                        CallsiteId callsite) {
  return make_mf(MFKind::kWaitany, requests, callsite);
}
MFAwaiter Comm::waitsome(std::span<const Request> requests,
                         CallsiteId callsite) {
  return make_mf(MFKind::kWaitsome, requests, callsite);
}
MFAwaiter Comm::test(Request request, CallsiteId callsite) {
  return make_mf(MFKind::kTest, {&request, 1}, callsite);
}
MFAwaiter Comm::testall(std::span<const Request> requests,
                        CallsiteId callsite) {
  return make_mf(MFKind::kTestall, requests, callsite);
}
MFAwaiter Comm::testany(std::span<const Request> requests,
                        CallsiteId callsite) {
  return make_mf(MFKind::kTestany, requests, callsite);
}
MFAwaiter Comm::testsome(std::span<const Request> requests,
                         CallsiteId callsite) {
  return make_mf(MFKind::kTestsome, requests, callsite);
}

// --- Simulator ------------------------------------------------------------

Simulator::Simulator(const Config& config, ToolHooks* hooks)
    : config_(config),
      hooks_(hooks != nullptr ? hooks : &default_hooks_),
      noise_(config.noise_seed),
      fault_rng_(config.faults.seed ^ 0xfa17fa17fa17fa17ull) {
  CDC_CHECK(config.num_ranks >= 1);
  ranks_.resize(static_cast<std::size_t>(config.num_ranks));
  allreduce_inputs_.resize(ranks_.size());
  for (int r = 0; r < config.num_ranks; ++r)
    ranks_[static_cast<std::size_t>(r)].comm =
        std::make_unique<Comm>(this, r);
}

Simulator::~Simulator() = default;

void Simulator::set_program(const Program& program) {
  for (int r = 0; r < size(); ++r) set_program(r, program);
}

void Simulator::set_program(Rank rank, const Program& program) {
  CDC_CHECK(rank >= 0 && rank < size());
  CDC_CHECK_MSG(!running_, "set_program during run()");
  auto& ctx = ranks_[static_cast<std::size_t>(rank)];
  // A lambda coroutine's frame refers to the closure object itself, so the
  // callable must outlive the coroutine: store it, then invoke the stored
  // copy.
  ctx.program = program;
  ctx.task = ctx.program(*ctx.comm);
  CDC_CHECK(ctx.task.valid());
}

// --- Mode-aware indirections (DESIGN.md §15) ------------------------------

double Simulator::cur_now(Rank rank) const noexcept {
  return par_ != nullptr ? par_->shards[static_cast<std::size_t>(rank)].now
                         : now_;
}

std::uint64_t Simulator::alloc_seq(Rank rank) {
  return par_ != nullptr
             ? par_->shards[static_cast<std::size_t>(rank)].next_seq++
             : next_seq_++;
}

std::uint64_t Simulator::alloc_match_seq(Rank rank) {
  return par_ != nullptr
             ? par_->shards[static_cast<std::size_t>(rank)].next_match_seq++
             : next_match_seq_++;
}

Simulator::Stats& Simulator::rank_stats(Rank rank) {
  return par_ != nullptr ? par_->shards[static_cast<std::size_t>(rank)].stats
                         : stats_;
}

FaultStats& Simulator::rank_fault_stats(Rank rank) {
  return par_ != nullptr
             ? par_->shards[static_cast<std::size_t>(rank)].fault_stats
             : fault_stats_;
}

support::Xoshiro256& Simulator::fault_rng_for(Rank rank) {
  return par_ != nullptr
             ? par_->shards[static_cast<std::size_t>(rank)].fault_rng
             : fault_rng_;
}

void Simulator::schedule(double time, EventType type, Rank rank,
                         std::coroutine_handle<> handle,
                         std::uint64_t message_index) {
  // Rank stalls pause a rank's resume/poll — never a network delivery,
  // and never the fault-plan timers (kills, MF timeouts).
  if (type == EventType::kResume || type == EventType::kPoll)
    time = maybe_stall(time, rank);
  if (par_ != nullptr) {
    // Parallel deliveries travel through worker outboxes (par_post_isend),
    // never through here, so every event schedule() sees targets the rank
    // whose context is executing — its own shard, owner-serialized (or
    // coordinator-serialized at the window barrier). The key is drawn from
    // that shard's counter, so it never depends on worker interleaving.
    CDC_CHECK(type != EventType::kDeliver);
    auto& shard = par_->shards[static_cast<std::size_t>(rank)];
    ParallelState::PEvent ev;
    ev.time = time;
    ev.oseq = shard.next_seq++;
    ev.orank = rank;
    ev.type = type;
    ev.rank = rank;
    ev.handle = handle;
    ev.payload = message_index;
    shard.heap.push(std::move(ev));
    shard.max_heap_depth =
        std::max<std::uint64_t>(shard.max_heap_depth, shard.heap.size());
    return;
  }
  events_.push(Event{time, next_seq_++, type, rank, handle, message_index});
  stats_.max_queue_depth =
      std::max<std::uint64_t>(stats_.max_queue_depth, events_.size());
}

double Simulator::maybe_stall(double time, Rank rank) {
  const FaultPlan& plan = config_.faults;
  if (plan.stall_probability <= 0.0 || rank < 0) return time;
  support::Xoshiro256& rng = fault_rng_for(rank);
  if (rng.uniform() >= plan.stall_probability) return time;
  const double stall = plan.stall_mean * (0.5 + rng.uniform());
  FaultStats& tallies = rank_fault_stats(rank);
  ++tallies.stalls;
  tallies.stall_seconds += stall;
  obs::trace_instant("fault.stall", rank);
  hooks_->on_fault(FaultKind::kRankStall, rank);
  return time + stall;
}

double Simulator::apply_message_faults(double latency, Rank src, Rank dst) {
  const FaultPlan& plan = config_.faults;
  const double scale = config_.base_latency + config_.jitter_mean;
  support::Xoshiro256& rng = fault_rng_for(src);
  FaultStats& tallies = rank_fault_stats(src);
  std::uint32_t& burst_remaining =
      par_ != nullptr
          ? par_->shards[static_cast<std::size_t>(src)].burst_remaining
          : burst_remaining_;
  if (plan.delay_spike_probability > 0.0 &&
      rng.uniform() < plan.delay_spike_probability) {
    latency += plan.delay_spike_factor * scale * (0.5 + rng.uniform());
    ++tallies.delay_spikes;
    obs::trace_instant("fault.delay_spike", dst);
    hooks_->on_fault(FaultKind::kDelaySpike, dst);
  }
  if (plan.reorder_burst_probability > 0.0) {
    if (burst_remaining == 0 &&
        rng.uniform() < plan.reorder_burst_probability) {
      burst_remaining = plan.reorder_burst_length;
      ++tallies.reorder_bursts;
    }
    if (burst_remaining > 0) {
      --burst_remaining;
      latency += rng.uniform() * plan.reorder_burst_spread * scale;
      ++tallies.burst_messages;
      obs::trace_instant("fault.reorder_burst", dst);
      hooks_->on_fault(FaultKind::kReorderBurst, dst);
    }
  }
  return latency;
}

void Simulator::maybe_duplicate(const Message& msg, double arrival,
                                std::uint64_t channel) {
  const FaultPlan& plan = config_.faults;
  if (plan.duplicate_probability <= 0.0 ||
      fault_rng_.uniform() >= plan.duplicate_probability)
    return;
  // The copy carries the original's transport sequence number — the dedup
  // key — and trails it on the (non-overtaking) channel.
  Message dup = msg;
  double dup_arrival =
      arrival + fault_rng_.exponential(config_.jitter_mean);
  auto it = channel_last_arrival_.find(channel);
  if (it != channel_last_arrival_.end() && dup_arrival <= it->second)
    dup_arrival = it->second + 1e-12;
  channel_last_arrival_[channel] = dup_arrival;
  const std::uint64_t index = next_message_index_++;
  const Rank dest = dup.dest;
  in_flight_.emplace(index, std::move(dup));
  schedule(dup_arrival, EventType::kDeliver, dest, nullptr, index);
  ++fault_stats_.duplicates_injected;
  obs::trace_instant("fault.duplicate", dest);
  hooks_->on_fault(FaultKind::kDuplicate, dest);
}

Request Simulator::post_isend(Rank src, Rank dst, int tag,
                              std::span<const std::uint8_t> data) {
  if (par_ != nullptr) return par_post_isend(src, dst, tag, data);
  CDC_CHECK(dst >= 0 && dst < size());
  CDC_CHECK(tag >= 0);
  auto& ctx = ranks_[static_cast<std::size_t>(src)];

  Message msg;
  msg.source = src;
  msg.dest = dst;
  msg.tag = tag;
  msg.piggyback = hooks_->on_send(src);
  msg.payload.assign(data.begin(), data.end());
  if (hooks_ != &default_hooks_) ctx.time += config_.piggyback_send_cost;

  // Latency noise permutes cross-sender arrival interleavings; per-channel
  // arrival order is forced non-overtaking (MPI ordering guarantee).
  double latency =
      config_.base_latency + noise_.exponential(config_.jitter_mean);
  if (config_.faults.enabled())
    latency = apply_message_faults(latency, src, dst);
  const std::uint64_t channel =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
      static_cast<std::uint32_t>(dst);
  msg.transport_seq = ++channel_send_seq_[channel];
  double arrival = ctx.time + latency;
  auto [it, inserted] = channel_last_arrival_.try_emplace(channel, 0.0);
  if (!inserted && arrival <= it->second)
    arrival = it->second + 1e-12;
  it->second = arrival;

  if (config_.faults.duplicate_probability > 0.0)
    maybe_duplicate(msg, arrival, channel);
  const std::uint64_t index = next_message_index_++;
  in_flight_.emplace(index, std::move(msg));
  schedule(arrival, EventType::kDeliver, dst, nullptr, index);
  ++stats_.messages_sent;

  // Buffered-send model: locally complete on creation.
  RequestState req;
  req.kind = RequestState::Kind::kSend;
  req.matched = true;
  ctx.requests.push_back(std::move(req));
  return Request{ctx.requests.size() - 1};
}

Request Simulator::post_irecv(Rank rank, Rank source, int tag) {
  CDC_CHECK(source == kAnySource || (source >= 0 && source < size()));
  auto& ctx = ranks_[static_cast<std::size_t>(rank)];
  RequestState req;
  req.kind = RequestState::Kind::kRecv;
  req.source_spec = source;
  req.tag_spec = tag;
  ctx.requests.push_back(std::move(req));
  const std::uint64_t id = ctx.requests.size() - 1;

  // A newly posted receive matches the earliest compatible unexpected
  // message (MPI matching rule).
  auto& posted = ctx.requests[id];
  for (auto it = ctx.unexpected.begin(); it != ctx.unexpected.end(); ++it) {
    const bool src_ok =
        posted.source_spec == kAnySource || posted.source_spec == it->source;
    const bool tag_ok =
        posted.tag_spec == kAnyTag || posted.tag_spec == it->tag;
    if (src_ok && tag_ok) {
      posted.matched = true;
      posted.match_seq = alloc_match_seq(rank);
      posted.message = std::move(*it);
      ctx.unexpected.erase(it);
      return Request{id};
    }
  }
  ctx.posted_recvs.push_back(id);
  return Request{id};
}

namespace {

bool envelope_matches(Rank source_spec, int tag_spec, Rank source,
                      int tag) noexcept {
  return (source_spec == kAnySource || source_spec == source) &&
         (tag_spec == kAnyTag || tag_spec == tag);
}

}  // namespace

void Simulator::insert_unexpected(RankCtx& ctx, Message&& message) {
  // Keep the unexpected queue ordered by arrival (displaced messages are
  // re-inserted at their original position).
  auto it = ctx.unexpected.end();
  while (it != ctx.unexpected.begin() &&
         std::prev(it)->arrival_seq > message.arrival_seq)
    --it;
  ctx.unexpected.insert(it, std::move(message));
}

void Simulator::rematch_unexpected(Rank rank, RankCtx& ctx) {
  // Re-run eager matching after a replay-tool rebinding disturbed the
  // request/message association: process arrivals in order against posted
  // receives in post order — the same rule the original arrivals followed.
  for (auto msg_it = ctx.unexpected.begin();
       msg_it != ctx.unexpected.end();) {
    bool matched = false;
    for (auto req_it = ctx.posted_recvs.begin();
         req_it != ctx.posted_recvs.end(); ++req_it) {
      auto& req = ctx.requests[*req_it];
      if (envelope_matches(req.source_spec, req.tag_spec, msg_it->source, msg_it->tag)) {
        req.matched = true;
        req.match_seq = alloc_match_seq(rank);
        req.message = std::move(*msg_it);
        ctx.posted_recvs.erase(req_it);
        msg_it = ctx.unexpected.erase(msg_it);
        matched = true;
        break;
      }
    }
    if (!matched) ++msg_it;
  }
}

void Simulator::try_match_arrival(Rank rank, Message&& message) {
  auto& ctx = ranks_[static_cast<std::size_t>(rank)];
  message.arrival_seq = alloc_seq(rank);
  for (auto it = ctx.posted_recvs.begin(); it != ctx.posted_recvs.end();
       ++it) {
    auto& req = ctx.requests[*it];
    if (envelope_matches(req.source_spec, req.tag_spec, message.source, message.tag)) {
      req.matched = true;
      req.match_seq = alloc_match_seq(rank);
      const std::uint64_t id = *it;
      req.message = std::move(message);
      ctx.posted_recvs.erase(it);
      // Wake a pending MF call that covers this request.
      if (ctx.mf_active && !ctx.mf_poll_scheduled) {
        const auto& ids = ctx.mf->request_ids;
        if (std::find(ids.begin(), ids.end(), id) != ids.end()) {
          ctx.mf_poll_scheduled = true;
          schedule(cur_now(rank), EventType::kPoll, rank);
        }
      }
      return;
    }
  }
  // Unexpected arrival. It may still be deliverable by a replay tool on an
  // interchangeable request, so wake a pending MF call whose undelivered
  // requests could accept it.
  if (ctx.mf_active && !ctx.mf_poll_scheduled) {
    for (const std::uint64_t id : ctx.mf->request_ids) {
      const auto& req = ctx.requests[id];
      if (!req.delivered &&
          envelope_matches(req.source_spec, req.tag_spec, message.source, message.tag)) {
        ctx.mf_poll_scheduled = true;
        schedule(cur_now(rank), EventType::kPoll, rank);
        break;
      }
    }
  }
  insert_unexpected(ctx, std::move(message));
}

void Simulator::poll_mf(Rank rank) {
  auto& ctx = ranks_[static_cast<std::size_t>(rank)];
  ctx.mf_poll_scheduled = false;
  if (!ctx.mf_active) return;
  ctx.time = std::max(ctx.time, cur_now(rank));
  MFAwaiter& mf = *ctx.mf;

  std::vector<Candidate> candidates;
  // For bound candidates: the owning request id; for unbound: the
  // message's arrival_seq (to locate it in the unexpected queue).
  std::vector<std::uint64_t> candidate_handle;
  {
    // Matched-but-undelivered receives, in global match order — the order
    // an untooled run would surface them ("first come, first served").
    std::vector<std::pair<std::uint64_t, std::size_t>> order;
    for (std::size_t i = 0; i < mf.request_ids.size(); ++i) {
      const auto& req = ctx.requests[mf.request_ids[i]];
      if (req.matched && !req.delivered) order.emplace_back(req.match_seq, i);
    }
    std::sort(order.begin(), order.end());
    for (const auto& [seq, i] : order) {
      auto& req = ctx.requests[mf.request_ids[i]];
      candidates.push_back(Candidate{i, req.message.source, req.message.tag,
                                     req.message.piggyback, true,
                                     !req.message.tool_sighted});
      req.message.tool_sighted = true;
      candidate_handle.push_back(mf.request_ids[i]);
    }
    // Unexpected arrivals compatible with an undelivered request of the
    // call (in arrival order): deliverable by a replay tool via request
    // remapping, invisible to untooled MPI semantics.
    for (Message& msg : ctx.unexpected) {
      for (std::size_t i = 0; i < mf.request_ids.size(); ++i) {
        const auto& req = ctx.requests[mf.request_ids[i]];
        if (!req.delivered &&
            envelope_matches(req.source_spec, req.tag_spec, msg.source, msg.tag)) {
          candidates.push_back(Candidate{i, msg.source, msg.tag,
                                         msg.piggyback, false,
                                         !msg.tool_sighted});
          msg.tool_sighted = true;
          candidate_handle.push_back(msg.arrival_seq);
          break;
        }
      }
    }
  }

  const bool blocking = is_blocking(mf.kind);
  std::size_t active_requests = 0;
  for (const std::uint64_t id : mf.request_ids)
    if (!ctx.requests[id].delivered) ++active_requests;
  SelectResult selection =
      hooks_->select(rank, mf.callsite, mf.kind, candidates,
                     active_requests, blocking);

  switch (selection.action) {
    case SelectResult::Action::kBlock:
      CDC_CHECK_MSG(hooks_ != &default_hooks_ || blocking,
                    "default hooks must not block a Test-family call");
      return;  // stays pending; a future arrival re-polls
    case SelectResult::Action::kNoMatch: {
      CDC_CHECK_MSG(!blocking, "Wait-family call cannot report no-match");
      mf.result.flag = false;
      hooks_->on_unmatched_test(rank, mf.callsite);
      ++rank_stats(rank).unmatched_tests;
      break;
    }
    case SelectResult::Action::kDeliver: {
      CDC_CHECK_MSG(!selection.indices.empty(),
                    "kDeliver with an empty index list");
      if (!is_multi_delivery(mf.kind)) selection.indices.resize(1);

      // Phase A: extract the selected messages, releasing their current
      // bindings.
      std::vector<Message> messages;
      std::vector<std::uint64_t> origin_req;  // ~0 for unbound
      std::vector<bool> seen(candidates.size(), false);
      bool disturbed = false;
      for (const std::size_t ci : selection.indices) {
        CDC_CHECK_MSG(ci < candidates.size() && !seen[ci],
                      "selection index out of range or duplicated");
        seen[ci] = true;
        if (candidates[ci].bound) {
          auto& req = ctx.requests[candidate_handle[ci]];
          CDC_CHECK(req.matched && !req.delivered);
          req.matched = false;
          messages.push_back(std::move(req.message));
          origin_req.push_back(candidate_handle[ci]);
        } else {
          const std::uint64_t seq = candidate_handle[ci];
          auto it = std::find_if(
              ctx.unexpected.begin(), ctx.unexpected.end(),
              [seq](const Message& m) { return m.arrival_seq == seq; });
          CDC_CHECK(it != ctx.unexpected.end());
          messages.push_back(std::move(*it));
          ctx.unexpected.erase(it);
          origin_req.push_back(~std::uint64_t{0});
          disturbed = true;
        }
      }

      // Phase B: assign each message to an undelivered request slot of the
      // call — its own request when possible (the untooled path), else the
      // first compatible interchangeable slot (replay-tool remapping).
      std::vector<bool> slot_used(mf.request_ids.size(), false);
      mf.result.flag = true;
      mf.result.completions.reserve(messages.size());
      for (std::size_t k = 0; k < messages.size(); ++k) {
        Message& msg = messages[k];
        std::size_t slot = mf.request_ids.size();
        if (origin_req[k] != ~std::uint64_t{0}) {
          for (std::size_t i = 0; i < mf.request_ids.size(); ++i) {
            if (mf.request_ids[i] == origin_req[k] && !slot_used[i]) {
              slot = i;
              break;
            }
          }
        }
        if (slot == mf.request_ids.size()) {
          for (std::size_t i = 0; i < mf.request_ids.size(); ++i) {
            const auto& req = ctx.requests[mf.request_ids[i]];
            if (!slot_used[i] && !req.delivered &&
                envelope_matches(req.source_spec, req.tag_spec, msg.source, msg.tag)) {
              slot = i;
              break;
            }
          }
        }
        CDC_CHECK_MSG(slot < mf.request_ids.size(),
                      "no compatible request slot for a selected message");
        slot_used[slot] = true;
        auto& req = ctx.requests[mf.request_ids[slot]];
        if (req.matched) {
          // Displace the message MPI had matched here; it returns to the
          // unexpected queue at its original arrival position.
          req.matched = false;
          insert_unexpected(ctx, std::move(req.message));
          disturbed = true;
        }
        req.delivered = true;
        Completion completion;
        completion.span_index = slot;
        completion.source = msg.source;
        completion.tag = msg.tag;
        completion.piggyback = msg.piggyback;
        completion.payload = std::move(msg.payload);
        mf.result.completions.push_back(std::move(completion));
        ++rank_stats(rank).receive_events_delivered;
        obs::trace_instant("recv.deliver", rank, "source",
                           static_cast<std::uint64_t>(
                               static_cast<std::uint32_t>(msg.source)));
      }

      // Phase C: requests that lost their message re-enter the posted
      // list (post order = id order), and arrivals re-match eagerly.
      if (disturbed) {
        for (const std::uint64_t id : mf.request_ids) {
          auto& req = ctx.requests[id];
          if (req.kind == RequestState::Kind::kRecv && !req.delivered &&
              !req.matched) {
            auto it = ctx.posted_recvs.begin();
            while (it != ctx.posted_recvs.end() && *it < id) ++it;
            if (it == ctx.posted_recvs.end() || *it != id)
              ctx.posted_recvs.insert(it, id);
          }
        }
        rematch_unexpected(rank, ctx);
      }
      if (hooks_ != &default_hooks_)
        ctx.time += config_.tool_event_cost *
                    static_cast<double>(mf.result.completions.size());
      hooks_->on_deliver(rank, mf.callsite, mf.kind, mf.result.completions);
      break;
    }
  }

  ctx.mf_active = false;
  ctx.mf = nullptr;
  const std::coroutine_handle<> continuation = ctx.mf_continuation;
  ctx.mf_continuation = nullptr;
  continuation.resume();
  check_rank_done(rank);
}

void Simulator::resume_rank(Rank rank, std::coroutine_handle<> handle,
                            double time) {
  auto& ctx = ranks_[static_cast<std::size_t>(rank)];
  ctx.time = std::max(ctx.time, time);
  handle.resume();
  check_rank_done(rank);
}

void Simulator::check_rank_done(Rank rank) {
  auto& ctx = ranks_[static_cast<std::size_t>(rank)];
  if (!ctx.finished && ctx.task.handle().done()) {
    ctx.task.rethrow_if_failed();
    ctx.finished = true;
  }
}

void Simulator::complete_barrier_if_ready() {
  // Collectives complete over the survivors (ULFM shrink semantics):
  // failed ranks neither participate nor are waited for. Under the
  // parallel executor this runs only on the coordinator with every worker
  // quiesced at the window barrier, so the atomic entry counters are
  // stable and the rank-order iteration below is deterministic.
  const int waiting =
      par_ != nullptr
          ? par_->barrier_waiting.load(std::memory_order_acquire)
          : barrier_waiting_;
  if (live_count() == 0 || waiting != live_count()) return;
  if (par_ != nullptr)
    par_->barrier_waiting.store(0, std::memory_order_relaxed);
  else
    barrier_waiting_ = 0;
  const double hops = std::ceil(std::log2(std::max(2, live_count())));
  double release = 0.0;
  for (const auto& ctx : ranks_)
    if (!ctx.failed) release = std::max(release, ctx.time);
  release += hops * config_.collective_hop_cost;
  for (int r = 0; r < size(); ++r) {
    auto& ctx = ranks_[static_cast<std::size_t>(r)];
    if (!ctx.in_barrier) {
      CDC_CHECK(ctx.failed);
      continue;
    }
    ctx.in_barrier = false;
    schedule(release, EventType::kResume, r, ctx.collective_continuation);
    ctx.collective_continuation = nullptr;
  }
}

void Simulator::complete_allreduce_if_ready() {
  const int waiting =
      par_ != nullptr
          ? par_->allreduce_waiting.load(std::memory_order_acquire)
          : allreduce_waiting_;
  if (live_count() == 0 || waiting != live_count()) return;
  if (par_ != nullptr)
    par_->allreduce_waiting.store(0, std::memory_order_relaxed);
  else
    allreduce_waiting_ = 0;

  // Elementwise sum in strict rank order: bit-reproducible regardless of
  // arrival timing. Failed ranks' contributions are excluded — the
  // survivor-communicator semantics of a post-shrink allreduce.
  std::size_t width = 0;
  for (int r = 0; r < size(); ++r)
    if (ranks_[static_cast<std::size_t>(r)].allreduce != nullptr) {
      width = allreduce_inputs_[static_cast<std::size_t>(r)].size();
      break;
    }
  std::vector<double> sum(width, 0.0);
  for (int r = 0; r < size(); ++r) {
    if (ranks_[static_cast<std::size_t>(r)].allreduce == nullptr) continue;
    const auto& input = allreduce_inputs_[static_cast<std::size_t>(r)];
    CDC_CHECK_MSG(input.size() == width,
                  "allreduce contributions differ in length");
    for (std::size_t i = 0; i < width; ++i) sum[i] += input[i];
  }

  const double hops = 2.0 * std::ceil(std::log2(std::max(2, live_count())));
  double release = 0.0;
  for (const auto& ctx : ranks_)
    if (!ctx.failed) release = std::max(release, ctx.time);
  release += hops * config_.collective_hop_cost;
  for (int r = 0; r < size(); ++r) {
    auto& ctx = ranks_[static_cast<std::size_t>(r)];
    if (ctx.allreduce == nullptr) {
      CDC_CHECK(ctx.failed);
      continue;
    }
    ctx.allreduce->result = sum;
    ctx.allreduce = nullptr;
    allreduce_inputs_[static_cast<std::size_t>(r)].clear();
    schedule(release, EventType::kResume, r, ctx.collective_continuation);
    ctx.collective_continuation = nullptr;
  }
}

void Simulator::kill_rank(Rank rank) {
  auto& ctx = ranks_[static_cast<std::size_t>(rank)];
  if (ctx.failed || ctx.finished) return;  // nothing left to kill
  ctx.failed = true;
  if (par_ != nullptr)
    par_->failed_count.fetch_add(1, std::memory_order_relaxed);
  else
    ++failed_count_;
  ++rank_fault_stats(rank).rank_kills;
  ++rank_stats(rank).ranks_failed;
  obs::trace_instant("fault.rank_kill", rank);
  hooks_->on_fault(FaultKind::kRankKill, rank);

  // The dead process abandons whatever it was blocked in. Its coroutine is
  // simply never resumed again (the frame is reclaimed with the Task); its
  // pending requests and unexpected queue are frozen as-is.
  ctx.mf_active = false;
  ctx.mf = nullptr;
  ctx.mf_continuation = nullptr;
  ctx.mf_poll_scheduled = false;
  if (ctx.in_barrier) {
    ctx.in_barrier = false;
    ctx.collective_continuation = nullptr;
    if (par_ != nullptr)
      par_->barrier_waiting.fetch_sub(1, std::memory_order_relaxed);
    else
      --barrier_waiting_;
  }
  if (ctx.allreduce != nullptr) {
    ctx.allreduce = nullptr;
    ctx.collective_continuation = nullptr;
    allreduce_inputs_[static_cast<std::size_t>(rank)].clear();
    if (par_ != nullptr)
      par_->allreduce_waiting.fetch_sub(1, std::memory_order_relaxed);
    else
      --allreduce_waiting_;
  }
  if (par_ != nullptr) {
    // Dropping a participant may complete a collective over survivors, but
    // that's a cross-rank effect: the coordinator resolves it at the next
    // window barrier.
    par_->collective_dirty.store(true, std::memory_order_release);
    return;
  }
  // Dropping a participant may make a collective complete over survivors.
  complete_barrier_if_ready();
  complete_allreduce_if_ready();
}

void Simulator::fail_mf(Rank rank, bool timed_out,
                        std::vector<Rank> failed_ranks) {
  auto& ctx = ranks_[static_cast<std::size_t>(rank)];
  CDC_CHECK(ctx.mf_active);
  MFAwaiter& mf = *ctx.mf;
  std::sort(failed_ranks.begin(), failed_ranks.end());
  failed_ranks.erase(std::unique(failed_ranks.begin(), failed_ranks.end()),
                     failed_ranks.end());
  mf.result.flag = false;
  mf.result.failed = true;
  mf.result.timed_out = timed_out;
  mf.result.failed_ranks = std::move(failed_ranks);
  ++rank_stats(rank).mf_failures;
  obs::trace_instant(timed_out ? "mf.timeout" : "mf.proc_failed", rank);

  ctx.mf_active = false;
  ctx.mf = nullptr;
  const std::coroutine_handle<> continuation = ctx.mf_continuation;
  ctx.mf_continuation = nullptr;
  continuation.resume();
  check_rank_done(rank);
}

bool Simulator::shrink_failed_waits() {
  // Called at the terminal drain: the event queue is empty and re-polling
  // made no progress, so no in-flight message can satisfy anything. A
  // pending receive whose sender died (or — opt-in — finished) will never
  // match; fail the covering MF call so the application can shrink its
  // wait set and carry on instead of deadlocking.
  bool any_failed = false;
  for (int r = 0; r < size(); ++r) {
    auto& ctx = ranks_[static_cast<std::size_t>(r)];
    if (ctx.finished || ctx.failed || !ctx.mf_active) continue;
    std::vector<Rank> implicated;
    bool wildcard = false;
    for (const std::uint64_t id : ctx.mf->request_ids) {
      const auto& req = ctx.requests[id];
      if (req.kind != RequestState::Kind::kRecv || req.delivered ||
          req.matched)
        continue;
      if (req.source_spec == kAnySource) {
        wildcard = true;
        continue;
      }
      const auto& src = ranks_[static_cast<std::size_t>(req.source_spec)];
      if (src.failed ||
          (config_.fail_unsatisfiable_waits && src.finished))
        implicated.push_back(req.source_spec);
    }
    if (wildcard) {
      // ULFM: an ANY_SOURCE wait is implicated whenever any rank failed
      // (MPI_ERR_PROC_FAILED_PENDING) — and, with the opt-in, when every
      // other rank has finished and can never send again.
      for (int s = 0; s < size(); ++s)
        if (ranks_[static_cast<std::size_t>(s)].failed)
          implicated.push_back(s);
      if (implicated.empty() && config_.fail_unsatisfiable_waits) {
        bool all_done = true;
        for (int s = 0; s < size(); ++s) {
          if (s == r) continue;
          if (!ranks_[static_cast<std::size_t>(s)].finished) all_done = false;
        }
        if (all_done)
          for (int s = 0; s < size(); ++s)
            if (s != r) implicated.push_back(s);
      }
    }
    if (implicated.empty()) continue;
    fail_mf(r, /*timed_out=*/false, std::move(implicated));
    any_failed = true;
  }
  return any_failed;
}

void Simulator::describe_stuck_ranks() const {
  for (int r = 0; r < size(); ++r) {
    const auto& ctx = ranks_[static_cast<std::size_t>(r)];
    if (ctx.finished || ctx.failed) continue;
    if (ctx.mf_active) {
      std::fprintf(stderr,
                   "minimpi: deadlock — rank %d blocked in %s at callsite "
                   "%u (%zu reqs, %zu unexpected)\n",
                   r, mf_kind_name(ctx.mf->kind), ctx.mf->callsite,
                   ctx.mf->request_ids.size(), ctx.unexpected.size());
      for (const std::uint64_t id : ctx.mf->request_ids) {
        const auto& req = ctx.requests[id];
        if (req.kind != RequestState::Kind::kRecv || req.delivered) continue;
        const char* state = "live";
        if (req.source_spec != kAnySource) {
          const auto& src =
              ranks_[static_cast<std::size_t>(req.source_spec)];
          state = src.failed ? "FAILED" : (src.finished ? "finished"
                                                        : "live");
        }
        std::fprintf(stderr,
                     "minimpi:   awaiting source %d tag %d (%s%s)\n",
                     req.source_spec, req.tag_spec,
                     req.source_spec == kAnySource ? "any-source, " : "",
                     req.source_spec == kAnySource
                         ? (failed_count_ > 0 ? "some senders FAILED"
                                              : "senders live")
                         : state);
      }
    } else {
      std::fprintf(stderr, "minimpi: deadlock — rank %d blocked (%s)\n", r,
                   ctx.in_barrier ? "barrier" : "allreduce/unknown");
    }
  }
}

Simulator::Stats Simulator::run() {
  return Executor::make(config_.workers)->run(*this);
}

Simulator::Stats Simulator::run_sequential() {
  CDC_CHECK_MSG(!running_, "run() is not reentrant");
  running_ = true;
  for (int r = 0; r < size(); ++r) {
    auto& ctx = ranks_[static_cast<std::size_t>(r)];
    CDC_CHECK_MSG(ctx.task.valid(), "rank has no program installed");
    schedule(0.0, EventType::kResume, r, ctx.task.handle());
  }
  for (const RankKill& kill : config_.faults.kills) {
    CDC_CHECK_MSG(kill.rank >= 0 && kill.rank < size(),
                  "fault plan kills a rank outside the communicator");
    CDC_CHECK_MSG(kill.time >= 0.0, "rank kill scheduled before t=0");
    schedule(kill.time, EventType::kKill, kill.rank);
  }

  // Outer loop: drain the event queue; when it empties with matching-
  // function calls still pending, re-poll each of them once. A replay tool
  // that released its gating late (e.g. partial-record replay switching to
  // passthrough after the last arrival) can make blocked calls deliverable
  // without any further message traffic; re-polling gives it the chance.
  // Each productive round delivers at least one event, so this terminates.
  static obs::Counter& obs_events = obs::counter("sim.scheduler_events");
  std::uint64_t last_progress = std::numeric_limits<std::uint64_t>::max();
  for (;;) {
    while (!events_.empty()) {
      const Event ev = events_.pop();
      CDC_CHECK(ev.time + 1e-15 >= now_);
      now_ = std::max(now_, ev.time);
      obs::publish_virtual_now(now_);
      obs_events.add(1);
      ++stats_.scheduler_events;
      CDC_CHECK_MSG(stats_.scheduler_events <= config_.max_events,
                    "event budget exceeded (runaway program?)");

      switch (ev.type) {
        case EventType::kResume:
          if (ranks_[static_cast<std::size_t>(ev.rank)].failed) break;
          resume_rank(ev.rank, ev.handle, ev.time);
          break;
        case EventType::kDeliver: {
          auto it = in_flight_.find(ev.message_index);
          CDC_CHECK(it != in_flight_.end());
          Message msg = std::move(it->second);
          in_flight_.erase(it);
          // Transport dedup: per-channel delivery is non-overtaking, so a
          // non-increasing sequence number is a duplicate copy; drop it
          // before the matching layer ever sees it.
          const std::uint64_t channel =
              (static_cast<std::uint64_t>(
                   static_cast<std::uint32_t>(msg.source))
               << 32) |
              static_cast<std::uint32_t>(msg.dest);
          auto& delivered = channel_delivered_seq_[channel];
          if (msg.transport_seq <= delivered) {
            ++fault_stats_.duplicates_dropped;
            break;
          }
          delivered = msg.transport_seq;
          // A dead destination consumes the arrival (keeping channel
          // bookkeeping — and the duplicate accounting — exact) but the
          // process is no longer there to match it.
          if (ranks_[static_cast<std::size_t>(ev.rank)].failed) break;
          try_match_arrival(ev.rank, std::move(msg));
          break;
        }
        case EventType::kPoll:
          if (ranks_[static_cast<std::size_t>(ev.rank)].failed) break;
          ranks_[static_cast<std::size_t>(ev.rank)].time =
              std::max(ranks_[static_cast<std::size_t>(ev.rank)].time,
                       ev.time);
          poll_mf(ev.rank);
          break;
        case EventType::kKill:
          kill_rank(ev.rank);
          break;
        case EventType::kTimeout: {
          auto& ctx = ranks_[static_cast<std::size_t>(ev.rank)];
          if (ctx.failed || ctx.finished || !ctx.mf_active) break;
          if (ctx.mf_epoch != ev.message_index) break;  // stale timer
          ++stats_.mf_timeouts;
          fail_mf(ev.rank, /*timed_out=*/true, {});
          break;
        }
      }
    }

    bool any_pending_mf = false;
    for (const auto& ctx : ranks_)
      any_pending_mf =
          any_pending_mf || (!ctx.finished && !ctx.failed && ctx.mf_active);
    if (!any_pending_mf) break;
    const std::uint64_t progress =
        stats_.receive_events_delivered + stats_.unmatched_tests;
    if (progress == last_progress) {
      // Re-polling changed nothing: the pending calls are truly stuck.
      // Escalate in two stages before declaring deadlock. (1) Let the
      // tool change its own state (the replayer releases partial-record
      // gating here, bridging gaps left by killed ranks or truncated
      // records); its contract is to return true only after an actual
      // state change, so this cannot livelock. (2) Shrink: fail every
      // wait whose senders died (ULFM) — each shrink round fails at
      // least one MF call, so this is bounded too.
      if (!hooks_->on_stall() && !shrink_failed_waits())
        break;  // genuinely stuck: fall through to the deadlock report
      // State changed; treat the next drain round as fresh progress (the
      // failed calls' continuations may have scheduled new events).
      last_progress = std::numeric_limits<std::uint64_t>::max();
    } else {
      last_progress = progress;
    }
    for (int r = 0; r < size(); ++r) {
      auto& ctx = ranks_[static_cast<std::size_t>(r)];
      if (!ctx.finished && !ctx.failed && ctx.mf_active &&
          !ctx.mf_poll_scheduled) {
        ctx.mf_poll_scheduled = true;
        schedule(now_, EventType::kPoll, r);
      }
    }
  }

  CDC_CHECK_MSG(
      fault_stats_.duplicates_dropped == fault_stats_.duplicates_injected,
      "a transport duplicate leaked past channel dedup");
  bool deadlocked = false;
  for (int r = 0; r < size(); ++r) {
    const auto& ctx = ranks_[static_cast<std::size_t>(r)];
    if (!ctx.finished && !ctx.failed) deadlocked = true;
    stats_.end_time = std::max(stats_.end_time, ctx.time);
  }
  if (deadlocked) {
    describe_stuck_ranks();
    hooks_->on_deadlock();
    CDC_CHECK_MSG(false, "simulation deadlocked");
  }
  running_ = false;

  emit_obs_stats();
  return stats_;
}

void Simulator::emit_obs_stats() {
  // Mirror the per-run tallies into the obs registry so the pipeline
  // report sees them without holding a Stats copy.
  if (!obs::enabled()) return;
  obs::counter("sim.messages_sent").add(stats_.messages_sent);
  obs::counter("sim.mf_calls").add(stats_.mf_calls);
  obs::counter("sim.receive_events").add(stats_.receive_events_delivered);
  obs::counter("sim.unmatched_tests").add(stats_.unmatched_tests);
  obs::counter("sim.faults")
      .add(fault_stats_.stalls + fault_stats_.delay_spikes +
           fault_stats_.burst_messages + fault_stats_.duplicates_injected +
           fault_stats_.rank_kills);
  obs::counter("sim.ranks_failed").add(stats_.ranks_failed);
  obs::counter("sim.mf_failures").add(stats_.mf_failures);
  obs::counter("sim.mf_timeouts").add(stats_.mf_timeouts);
  obs::gauge("sim.max_queue_depth")
      .add(static_cast<std::int64_t>(stats_.max_queue_depth));
  obs::gauge("sim.virtual_time_us")
      .add(static_cast<std::int64_t>(stats_.end_time * 1e6));
  obs::publish_virtual_now(stats_.end_time);
}

}  // namespace cdc::minimpi
