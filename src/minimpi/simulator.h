// The MiniMPI discrete-event simulator.
//
// Architecture: one global virtual clock, a (time, sequence)-ordered event
// queue, and one coroutine per rank. Three event kinds exist — rank resume
// (compute finished), message delivery (a send's latency elapsed at the
// receiver), and MF poll (a matching-function call re-examines its request
// set). Message latency = base + Exp(jitter_mean) drawn from a seeded RNG;
// the same seed reproduces a run bit-for-bit, different seeds permute
// application-level receive orders — the non-determinism the paper's tool
// records and replays. Per-(source,destination) delivery is forced
// non-overtaking, matching MPI's ordering guarantee (§3.1 / Figure 3: the
// MPI level is ordered per channel; the application level is not).
#pragma once

#include <coroutine>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "minimpi/event_heap.h"
#include "minimpi/fault.h"
#include "minimpi/hooks.h"
#include "minimpi/task.h"
#include "minimpi/types.h"
#include "support/check.h"
#include "support/rng.h"

namespace cdc::minimpi {

class Comm;
class Simulator;

/// Awaits a fixed amount of virtual compute time.
struct ComputeAwaiter {
  Simulator* sim;
  Rank rank;
  double seconds;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle);
  void await_resume() const noexcept {}
};

/// Awaits one matching-function call (any of the Wait/Test families).
struct MFAwaiter {
  Simulator* sim;
  Rank rank;
  MFKind kind;
  CallsiteId callsite;
  std::vector<std::uint64_t> request_ids;
  MFResult result;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle);
  MFResult await_resume() noexcept { return std::move(result); }
};

/// Awaits a barrier (simulator-level deterministic collective).
struct BarrierAwaiter {
  Simulator* sim;
  Rank rank;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle);
  void await_resume() const noexcept {}
};

/// Awaits an allreduce over a vector of doubles; elementwise reduction in
/// deterministic rank order (so the collective itself never introduces
/// non-determinism — any run-to-run variation comes from the local inputs,
/// exactly as in the paper's MCB discussion).
struct AllreduceAwaiter {
  Simulator* sim;
  Rank rank;
  std::vector<double> contribution;
  std::vector<double> result;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle);
  std::vector<double> await_resume() noexcept { return std::move(result); }
};

/// Per-rank view of the runtime handed to rank programs — the MPI
/// communicator analogue. All methods must be called from the owning
/// rank's coroutine.
class Comm {
 public:
  Comm(Simulator* sim, Rank rank) : sim_(sim), rank_(rank) {}

  [[nodiscard]] Rank rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept;
  [[nodiscard]] double now() const noexcept;

  /// Nonblocking send. Completes locally at once (buffered-send model);
  /// the returned request is immediately waitable.
  Request isend(Rank dst, int tag, std::span<const std::uint8_t> data);

  /// Nonblocking receive with optional wildcards.
  Request irecv(Rank source = kAnySource, int tag = kAnyTag);

  /// Advances this rank's virtual time (models local work).
  [[nodiscard]] ComputeAwaiter compute(double seconds) noexcept {
    return {sim_, rank_, seconds};
  }

  // --- Matching functions (§3.1). `callsite` identifies the MF call
  // location for per-callsite reference orders (§4.4).
  [[nodiscard]] MFAwaiter wait(Request request, CallsiteId callsite = 0);
  [[nodiscard]] MFAwaiter waitall(std::span<const Request> requests,
                                  CallsiteId callsite = 0);
  [[nodiscard]] MFAwaiter waitany(std::span<const Request> requests,
                                  CallsiteId callsite = 0);
  [[nodiscard]] MFAwaiter waitsome(std::span<const Request> requests,
                                   CallsiteId callsite = 0);
  [[nodiscard]] MFAwaiter test(Request request, CallsiteId callsite = 0);
  [[nodiscard]] MFAwaiter testall(std::span<const Request> requests,
                                  CallsiteId callsite = 0);
  [[nodiscard]] MFAwaiter testany(std::span<const Request> requests,
                                  CallsiteId callsite = 0);
  [[nodiscard]] MFAwaiter testsome(std::span<const Request> requests,
                                   CallsiteId callsite = 0);

  // --- Deterministic collectives (not recorded; see DESIGN.md).
  [[nodiscard]] BarrierAwaiter barrier() noexcept { return {sim_, rank_}; }
  [[nodiscard]] AllreduceAwaiter allreduce_sum(std::vector<double> values) {
    return {sim_, rank_, std::move(values), {}};
  }

 private:
  MFAwaiter make_mf(MFKind kind, std::span<const Request> requests,
                    CallsiteId callsite);

  Simulator* sim_;
  Rank rank_;
};

/// A rank program: given its communicator, returns the rank's coroutine.
using Program = std::function<Task(Comm&)>;

class Simulator {
 public:
  struct Config {
    int num_ranks = 1;
    /// Executor selection. 0 (the default) runs the original sequential
    /// event loop, byte-for-byte identical to every earlier release. Any
    /// value >= 1 runs the conservative time-window parallel executor with
    /// that many worker threads (capped at num_ranks); its schedules are
    /// deterministic in the seed and *identical for every worker count*,
    /// but differ from the sequential executor's (per-rank RNG streams —
    /// see DESIGN.md §15).
    int workers = 0;
    std::uint64_t noise_seed = 1;      ///< permutes message arrival orders
    double base_latency = 1.0e-6;      ///< seconds, per message
    double jitter_mean = 5.0e-7;       ///< mean of exponential noise term
    double mpi_call_cost = 5.0e-8;     ///< virtual cost of one MPI call
    double collective_hop_cost = 1.0e-6;
    /// Virtual cost charged to the application thread per delivered
    /// receive event when a tool is attached — models the enqueue +
    /// interference cost of recording (Figure 16's overhead). Calibrate
    /// from real encoder timings (bench/fig16_overhead).
    double tool_event_cost = 0.0;
    /// Virtual cost charged per matching-function call when a tool is
    /// attached — the PMPI/PnMPI interception stack on hot polling loops.
    double tool_call_cost = 0.0;
    /// Virtual cost charged per send for clock piggybacking (§6.2 measures
    /// 1.18% end-to-end for 8-byte piggyback data).
    double piggyback_send_cost = 0.0;
    std::uint64_t max_events = std::numeric_limits<std::uint64_t>::max();
    /// Matching-function timeout in virtual seconds (0 = wait forever, the
    /// MPI default). A pending MF call still unsatisfied this long after it
    /// was issued fails with MFResult::timed_out instead of blocking the
    /// simulation — the escape hatch for survivor ranks whose peers died.
    double mf_timeout = 0.0;
    /// When true, a wait whose remaining senders have all *finished* (not
    /// just failed) also fails with MFResult::failed at the terminal drain
    /// instead of deadlocking; failed_ranks then names those finished
    /// ranks. Off by default: an untooled MPI run deadlocks there.
    bool fail_unsatisfiable_waits = false;
    /// Seeded transport-fault schedule (see fault.h). Disabled by default;
    /// a disabled plan draws nothing from the fault RNG, so the run is
    /// bit-identical to one without the field.
    FaultPlan faults;
  };

  struct Stats {
    std::uint64_t messages_sent = 0;
    std::uint64_t receive_events_delivered = 0;
    std::uint64_t mf_calls = 0;
    std::uint64_t unmatched_tests = 0;
    std::uint64_t scheduler_events = 0;
    std::uint64_t mf_failures = 0;  ///< MF calls failed (ULFM-style)
    std::uint64_t mf_timeouts = 0;  ///< subset of mf_failures: timer expiry
    std::uint64_t ranks_failed = 0;  ///< ranks killed by the fault plan
    /// High-water mark of the event queue (sequential) or the deepest
    /// per-rank heap (parallel) — the backlog gauge the single-threaded
    /// path never reported.
    std::uint64_t max_queue_depth = 0;
    double end_time = 0.0;  ///< virtual seconds when the last rank finished
  };

  explicit Simulator(const Config& config, ToolHooks* hooks = nullptr);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Installs the same program on every rank.
  void set_program(const Program& program);
  /// Installs a program on one rank.
  void set_program(Rank rank, const Program& program);

  /// Runs to completion. Aborts with a diagnostic on deadlock (all ranks
  /// blocked with an empty event queue) — a deadlock here is always a bug
  /// in an application or in a replay tool holding back a message forever.
  Stats run();

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(ranks_.size());
  }
  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FaultStats& fault_stats() const noexcept {
    return fault_stats_;
  }
  [[nodiscard]] Comm& comm(Rank rank) {
    CDC_CHECK(rank >= 0 && rank < size());
    return *ranks_[static_cast<std::size_t>(rank)].comm;
  }
  /// True once the fault plan killed this rank (ULFM process failure).
  [[nodiscard]] bool rank_failed(Rank rank) const {
    CDC_CHECK(rank >= 0 && rank < size());
    return ranks_[static_cast<std::size_t>(rank)].failed;
  }

 private:
  friend class Comm;
  friend struct ComputeAwaiter;
  friend struct MFAwaiter;
  friend struct BarrierAwaiter;
  friend struct AllreduceAwaiter;
  friend class SequentialExecutor;
  friend class ParallelExecutor;

  /// Per-rank execution shards of the parallel executor (defined in
  /// parallel_state.h; owned by ParallelExecutor for the duration of one
  /// run). Non-null exactly while the parallel executor is driving this
  /// simulator — every mode-aware helper below keys off it.
  struct ParallelState;

  struct Message {
    Rank source = -1;
    Rank dest = -1;
    int tag = -1;
    std::uint64_t piggyback = 0;
    std::uint64_t arrival_seq = 0;  ///< stamped at delivery; orders queues
    /// Per-channel send sequence number. Channels deliver non-overtaking,
    /// so arrivals carry strictly increasing values — a repeated value is a
    /// transport duplicate and is dropped before the matching layer.
    std::uint64_t transport_seq = 0;
    bool tool_sighted = false;      ///< already listed to the tool hooks
    std::vector<std::uint8_t> payload;
  };

  struct RequestState {
    enum class Kind : std::uint8_t { kSend, kRecv };
    Kind kind = Kind::kRecv;
    Rank source_spec = kAnySource;
    int tag_spec = kAnyTag;
    bool matched = false;
    bool delivered = false;
    std::uint64_t match_seq = 0;  ///< global order in which matches happened
    Message message;
  };

  enum class EventType : std::uint8_t {
    kResume,
    kDeliver,
    kPoll,
    kKill,     ///< fault-plan rank kill fires
    kTimeout,  ///< a pending MF call's timeout expired
  };

  struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;
    EventType type = EventType::kResume;
    Rank rank = -1;
    std::coroutine_handle<> handle;  // kResume only
    /// kDeliver: index into in_flight_. kTimeout: the rank's mf_epoch the
    /// timer was armed for (a stale timer is ignored).
    std::uint64_t message_index = 0;
  };

  /// Strict total order (seq is unique), so the heap's pop sequence — and
  /// therefore the schedule — is independent of its internal layout.
  struct EventBefore {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time < b.time;
      return a.seq < b.seq;
    }
  };

  struct RankCtx {
    double time = 0.0;
    Program program;  ///< owns the coroutine's closure for the rank's lifetime
    Task task;
    bool finished = false;
    /// Killed by the fault plan: the coroutine is never resumed again, its
    /// pending events are dropped, and peers waiting on it observe
    /// MFResult::failed at the terminal drain (see shrink_failed_waits).
    bool failed = false;
    /// Increments each time an MF call becomes pending; lets a kTimeout
    /// event recognise that the call it was armed for already completed.
    std::uint64_t mf_epoch = 0;
    std::unique_ptr<Comm> comm;

    std::vector<RequestState> requests;
    std::deque<std::uint64_t> posted_recvs;  // unmatched recv ids, post order
    std::deque<Message> unexpected;          // unmatched arrivals, in order

    // At most one MF call can be pending per rank (the rank is a single
    // coroutine).
    bool mf_active = false;
    MFAwaiter* mf = nullptr;
    std::coroutine_handle<> mf_continuation;
    bool mf_poll_scheduled = false;

    // Collective state.
    bool in_barrier = false;
    std::coroutine_handle<> collective_continuation;
    AllreduceAwaiter* allreduce = nullptr;
  };

  void schedule(double time, EventType type, Rank rank,
                std::coroutine_handle<> handle = nullptr,
                std::uint64_t message_index = 0);
  /// Adds fault-plan extra latency (delay spikes, reorder bursts) for one
  /// outgoing message from `src`; returns the adjusted latency.
  double apply_message_faults(double latency, Rank src, Rank dst);
  /// Schedules a transport duplicate of `msg` if the plan rolls one.
  void maybe_duplicate(const Message& msg, double arrival,
                       std::uint64_t channel);
  /// Applies a rank-stall fault to a pending resume/poll time.
  double maybe_stall(double time, Rank rank);
  void try_match_arrival(Rank rank, Message&& message);
  void insert_unexpected(RankCtx& ctx, Message&& message);
  void rematch_unexpected(Rank rank, RankCtx& ctx);
  void poll_mf(Rank rank);
  void resume_rank(Rank rank, std::coroutine_handle<> handle, double time);
  void check_rank_done(Rank rank);
  void complete_barrier_if_ready();
  void complete_allreduce_if_ready();
  /// Marks `rank` dead: drops it from pending collectives, forgets its
  /// pending MF call, and never resumes its coroutine again.
  void kill_rank(Rank rank);
  /// Fails the rank's pending MF call (ULFM MPI_ERR_PROC_FAILED analogue /
  /// timeout) and resumes the application with MFResult::failed set.
  /// Pending requests stay posted; the app drops dead-rank requests from
  /// its next wait set.
  void fail_mf(Rank rank, bool timed_out, std::vector<Rank> failed_ranks);
  /// Terminal-drain shrink: fails every pending MF call that can no longer
  /// be satisfied because implicated senders died (or, with
  /// fail_unsatisfiable_waits, finished). Returns true if any call failed.
  bool shrink_failed_waits();
  /// Prints the per-rank stuck diagnostic ahead of the deadlock abort.
  void describe_stuck_ranks() const;
  [[nodiscard]] int live_count() const noexcept {
    return size() - failed_count_;
  }

  Request post_isend(Rank src, Rank dst, int tag,
                     std::span<const std::uint8_t> data);
  Request post_irecv(Rank rank, Rank source, int tag);

  // --- Mode-aware indirections (DESIGN.md §15). The sequential executor
  // uses the global counters and RNG streams below; under the parallel
  // executor (par_ != nullptr) each routes to the owning rank's shard so
  // every allocation order — and every key derived from one — depends only
  // on that rank's own deterministic execution, never on cross-worker
  // interleaving.
  /// The virtual time of the event currently being applied for `rank`.
  [[nodiscard]] double cur_now(Rank rank) const noexcept;
  /// Next event/arrival sequence number (one counter serves both, as in
  /// the sequential path).
  std::uint64_t alloc_seq(Rank rank);
  /// Next match sequence number (candidate surfacing order).
  std::uint64_t alloc_match_seq(Rank rank);
  /// Stats/fault tallies: the global structs, or the rank's shard.
  [[nodiscard]] Stats& rank_stats(Rank rank);
  [[nodiscard]] FaultStats& rank_fault_stats(Rank rank);
  /// The fault RNG that serves `rank` (sender-side draws).
  [[nodiscard]] support::Xoshiro256& fault_rng_for(Rank rank);

  /// The original single-threaded event loop (workers == 0).
  Stats run_sequential();
  /// Parallel-mode send: per-shard RNG/channel state, delivery via the
  /// current worker's outbox (defined in parallel_executor.cc).
  Request par_post_isend(Rank src, Rank dst, int tag,
                         std::span<const std::uint8_t> data);
  /// Mirrors the per-run tallies into the obs registry (both executors).
  void emit_obs_stats();

  Config config_;
  ToolHooks* hooks_;
  ToolHooks default_hooks_;
  support::Xoshiro256 noise_;
  /// Dedicated fault stream: never consulted when the plan is disabled, so
  /// FaultPlan{} leaves the noise stream — and the run — untouched.
  support::Xoshiro256 fault_rng_;
  std::uint32_t burst_remaining_ = 0;
  FaultStats fault_stats_;
  std::vector<RankCtx> ranks_;
  EventHeap<Event, EventBefore> events_;
  std::unordered_map<std::uint64_t, Message> in_flight_;
  std::unordered_map<std::uint64_t, double> channel_last_arrival_;
  std::unordered_map<std::uint64_t, std::uint64_t> channel_send_seq_;
  std::unordered_map<std::uint64_t, std::uint64_t> channel_delivered_seq_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_match_seq_ = 1;
  std::uint64_t next_message_index_ = 0;
  int barrier_waiting_ = 0;
  int allreduce_waiting_ = 0;
  int failed_count_ = 0;
  std::vector<std::vector<double>> allreduce_inputs_;
  Stats stats_;
  bool running_ = false;
  ParallelState* par_ = nullptr;
};

// --- Typed payload helpers ------------------------------------------------

/// Serializes a trivially copyable value into a payload buffer.
template <typename T>
  requires std::is_trivially_copyable_v<T>
std::vector<std::uint8_t> to_payload(const T& value) {
  std::vector<std::uint8_t> out(sizeof(T));
  std::memcpy(out.data(), &value, sizeof(T));
  return out;
}

/// Deserializes a trivially copyable value from a payload buffer.
template <typename T>
  requires std::is_trivially_copyable_v<T>
T from_payload(std::span<const std::uint8_t> payload) {
  CDC_CHECK(payload.size() == sizeof(T));
  T value;
  std::memcpy(&value, payload.data(), sizeof(T));
  return value;
}

}  // namespace cdc::minimpi
