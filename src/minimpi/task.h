// The coroutine type for rank programs.
//
// Each MPI rank runs as one C++20 coroutine driven by the simulator's
// virtual-time scheduler, so thousands of ranks execute in a single OS
// thread. A rank program suspends at every MiniMPI call (the awaitables in
// comm.h) and is resumed by scheduler events.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace cdc::minimpi {

class Task {
 public:
  struct promise_type {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    // Start suspended; the simulator schedules the first resume at t = 0.
    std::suspend_always initial_suspend() noexcept { return {}; }
    // Stay suspended at the end so the simulator can observe done() and
    // owns destruction of the frame.
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept {
      exception = std::current_exception();
    }

    std::exception_ptr exception;
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}

  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept {
    return static_cast<bool>(handle_);
  }
  [[nodiscard]] bool done() const noexcept { return handle_.done(); }
  [[nodiscard]] std::coroutine_handle<promise_type> handle() const noexcept {
    return handle_;
  }

  /// Rethrows an exception that escaped the rank program, if any.
  void rethrow_if_failed() const {
    if (handle_ && handle_.promise().exception)
      std::rethrow_exception(handle_.promise().exception);
  }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace cdc::minimpi
