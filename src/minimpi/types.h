// Shared vocabulary types of the MiniMPI runtime.
//
// MiniMPI is the MPI substrate of this reproduction: a deterministic
// discrete-event simulation of an MPI library, exposing exactly the surface
// the paper's tool interposes on — nonblocking point-to-point with wildcard
// receives, the Wait/Test matching-function (MF) families, and per-message
// piggyback data. Non-determinism enters through a seeded message-latency
// noise model, mirroring the network/system noise the paper cites as the
// source of message-receive reordering.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cdc::minimpi {

using Rank = std::int32_t;

inline constexpr Rank kAnySource = -1;  ///< MPI_ANY_SOURCE
inline constexpr int kAnyTag = -1;      ///< MPI_ANY_TAG

/// Identifies one matching-function call location in the program. The real
/// tool derives this from call-stack analysis (§4.4 "MF identification");
/// simulated applications pass a small stable integer per call site.
using CallsiteId = std::uint32_t;

/// The MPI matching-function families of §3.1.
enum class MFKind : std::uint8_t {
  kWait,
  kWaitall,
  kWaitany,
  kWaitsome,
  kTest,
  kTestall,
  kTestany,
  kTestsome,
};

[[nodiscard]] constexpr bool is_blocking(MFKind kind) noexcept {
  return kind == MFKind::kWait || kind == MFKind::kWaitall ||
         kind == MFKind::kWaitany || kind == MFKind::kWaitsome;
}

/// True for MF kinds that may deliver more than one message per call —
/// exactly the kinds for which the paper records the `with_next` column.
[[nodiscard]] constexpr bool is_multi_delivery(MFKind kind) noexcept {
  return kind == MFKind::kWaitall || kind == MFKind::kWaitsome ||
         kind == MFKind::kTestall || kind == MFKind::kTestsome;
}

[[nodiscard]] constexpr const char* mf_kind_name(MFKind kind) noexcept {
  switch (kind) {
    case MFKind::kWait: return "Wait";
    case MFKind::kWaitall: return "Waitall";
    case MFKind::kWaitany: return "Waitany";
    case MFKind::kWaitsome: return "Waitsome";
    case MFKind::kTest: return "Test";
    case MFKind::kTestall: return "Testall";
    case MFKind::kTestany: return "Testany";
    case MFKind::kTestsome: return "Testsome";
  }
  return "?";
}

/// Request handle returned by isend/irecv. Valid only within the issuing
/// rank; handles are not reusable after the request completes.
struct Request {
  std::uint64_t id = ~std::uint64_t{0};
  [[nodiscard]] bool valid() const noexcept { return id != ~std::uint64_t{0}; }
};

/// A deliverable message offered to the tool's selection hook.
/// `bound` candidates are matched at the MPI level to a request of the MF
/// call (span_index = that request's position in the call's request array,
/// what MPI_Testsome reports via indices[]). Unbound candidates are
/// arrived-but-unmatched messages whose envelope is compatible with an
/// undelivered request of the call: a replay tool may deliver one on an
/// interchangeable request slot (the PMPI-layer remapping every
/// order-replay tool performs); untooled MPI semantics ignore them.
struct Candidate {
  std::size_t span_index = 0;
  Rank source = -1;
  int tag = -1;
  std::uint64_t piggyback = 0;  ///< Lamport clock attached at send
  bool bound = true;
  /// True the first time this message appears in any candidate list —
  /// tools process sightings only for fresh candidates (dedup is O(1)).
  bool fresh = true;
};

/// A delivered receive, as surfaced to the application (and to the tool's
/// on_deliver hook, which records it).
struct Completion {
  std::size_t span_index = 0;
  Rank source = -1;
  int tag = -1;
  std::uint64_t piggyback = 0;
  std::vector<std::uint8_t> payload;
};

/// Result of one MF call. `flag` is the MPI_Test-style "anything matched"
/// indicator; for Wait-family calls it is always true on return — unless
/// the call failed (ULFM-style): `failed` reports that the call can never
/// be satisfied, either because a peer process died (`failed_ranks` lists
/// the implicated dead ranks, MPI_ERR_PROC_FAILED analogue) or because a
/// configured MF timeout expired (`timed_out`, empty failed_ranks).
/// A failed call delivers nothing; its pending requests stay posted, and
/// the application is expected to drop dead-rank requests from its next
/// wait set (the shrink idiom).
struct MFResult {
  bool flag = false;
  bool failed = false;
  bool timed_out = false;
  std::vector<Rank> failed_ranks;  ///< sorted, deduplicated
  std::vector<Completion> completions;
};

}  // namespace cdc::minimpi
