#include "net/chaos.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include "store/container_reader.h"

namespace cdc::net {

namespace fs = std::filesystem;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

std::string record_name(std::size_t client) {
  return "chaos-" + std::to_string(client);
}

std::uint64_t client_seed(std::uint64_t run_seed, std::size_t client) {
  return run_seed ^ (0x9e3779b97f4a7c15ull * (client + 1));
}

std::vector<WireFrame> to_wire(std::vector<SynthJob>::const_iterator begin,
                               std::vector<SynthJob>::const_iterator end) {
  std::vector<WireFrame> frames;
  frames.reserve(static_cast<std::size_t>(end - begin));
  for (auto it = begin; it != end; ++it) {
    WireFrame frame;
    frame.key = it->key;
    frame.codec = it->job.codec;
    frame.meta = it->job.meta;
    frame.compress = it->job.compress;
    frame.epoch = it->job.epoch;
    frame.payload = it->job.payload;
    frames.push_back(std::move(frame));
  }
  return frames;
}

struct ClientResult {
  bool sealed = false;
  compress::DeflateLevel level = compress::DeflateLevel::kDefault;
  std::uint64_t reconnects = 0;
  std::uint64_t batches_resent = 0;
  std::string error;
};

/// One resuming uploader: connect (with its own dial-retry loop, since the
/// daemon may be mid-restart), stream the deterministic job list, seal.
/// The Client's internal recover() handles any daemon death in between.
void chaos_client(const ChaosConfig& config, std::uint16_t port,
                  std::size_t index, ClientResult& result) {
  Client::Options options;
  options.host = "127.0.0.1";
  options.port = port;
  options.token = config.token;
  options.record = record_name(index);
  options.intent = Intent::kIngest;
  options.level = config.level;
  options.timeout_ms = 10000;
  options.connect_timeout_ms = 5000;
  options.resumable = true;
  options.max_reconnects = config.client_retries;
  options.backoff.jitter_seed = client_seed(config.seed, index);

  std::unique_ptr<Client> client;
  std::string error;
  for (std::uint32_t attempt = 0; attempt <= config.client_retries;
       ++attempt) {
    client = Client::connect(options, &error);
    if (client != nullptr) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50 * (attempt + 1)));
  }
  if (client == nullptr) {
    result.error = "connect: " + error;
    return;
  }
  result.level = client->welcome().level;
  const std::vector<SynthJob> jobs = synth_jobs(
      client_seed(config.seed, index), config.shape, client->welcome().level);
  const std::size_t per_batch = config.shape.frames_per_batch;
  bool sent = true;
  for (std::size_t off = 0; sent && off < jobs.size(); off += per_batch) {
    const std::size_t end = std::min(off + per_batch, jobs.size());
    sent = client->put(to_wire(jobs.begin() + static_cast<std::ptrdiff_t>(off),
                               jobs.begin() + static_cast<std::ptrdiff_t>(end)));
  }
  Sealed sealed;
  result.sealed = sent && client->seal(&sealed);
  result.reconnects = client->reconnects();
  result.batches_resent = client->batches_resent();
  if (!result.sealed) result.error = client->last_error();
  client->bye();
}

bool same_file_bytes(const std::string& a, const std::string& b,
                     std::string* why) {
  std::ifstream fa(a, std::ios::binary);
  std::ifstream fb(b, std::ios::binary);
  if (!fa || !fb) {
    *why = "cannot open for compare";
    return false;
  }
  const std::vector<char> ba((std::istreambuf_iterator<char>(fa)),
                             std::istreambuf_iterator<char>());
  const std::vector<char> bb((std::istreambuf_iterator<char>(fb)),
                             std::istreambuf_iterator<char>());
  if (ba == bb) return true;
  *why = "containers differ (" + std::to_string(ba.size()) + " vs " +
         std::to_string(bb.size()) + " bytes)";
  return false;
}

std::vector<std::string> daemon_args(const ChaosConfig& config,
                                     const std::string& root,
                                     std::uint16_t port,
                                     const std::vector<std::string>& crash) {
  std::vector<std::string> args = {
      "--root",   root,
      "--tenant", config.tenant + ":" + config.token + ":1024:256",
      "--port",   std::to_string(port),
      "--drain-timeout-ms", "10000",
  };
  args.insert(args.end(), crash.begin(), crash.end());
  return args;
}

}  // namespace

// --- DaemonHarness -------------------------------------------------------

DaemonHarness::~DaemonHarness() { kill_now(); }

bool DaemonHarness::start(const DaemonOptions& options, std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = "daemon: " + why;
    return false;
  };
  if (pid_ >= 0 && running()) return fail("already running");
  if (out_fd_ >= 0) {
    ::close(out_fd_);
    out_fd_ = -1;
  }
  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) return fail(std::strerror(errno));
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return fail(std::strerror(errno));
  }
  if (pid == 0) {
    // Child: stdout → pipe, then exec the daemon.
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(options.binary.c_str()));
    for (const std::string& arg : options.args)
      argv.push_back(const_cast<char*>(arg.c_str()));
    argv.push_back(nullptr);
    ::execv(options.binary.c_str(), argv.data());
    ::_exit(127);
  }
  ::close(pipe_fds[1]);
  pid_ = pid;
  out_fd_ = pipe_fds[0];
  exited_ = false;
  status_ = 0;
  port_ = 0;

  // Handshake: read until "LISTENING <port>" or the deadline. The child
  // keeps the pipe for later output; only the first line matters here.
  std::string line;
  const Clock::time_point t0 = Clock::now();
  while (ms_since(t0) < options.start_timeout_ms) {
    pollfd pfd{out_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) {
      if (!running()) return fail("exited before LISTENING");
      continue;
    }
    char byte = 0;
    const ssize_t n = ::read(out_fd_, &byte, 1);
    if (n <= 0) return fail("stdout closed before LISTENING");
    if (byte != '\n') {
      line.push_back(byte);
      continue;
    }
    unsigned parsed = 0;
    if (std::sscanf(line.c_str(), "LISTENING %u", &parsed) == 1) {
      port_ = static_cast<std::uint16_t>(parsed);
      return true;
    }
    line.clear();
  }
  return fail("no LISTENING line within deadline");
}

bool DaemonHarness::running() {
  if (pid_ < 0 || exited_) return false;
  int status = 0;
  const pid_t r = ::waitpid(pid_, &status, WNOHANG);
  if (r == pid_) {
    exited_ = true;
    status_ = status;
    return false;
  }
  return r == 0;
}

bool DaemonHarness::wait_exit(std::uint32_t timeout_ms, int* status) {
  const Clock::time_point t0 = Clock::now();
  while (running()) {
    if (ms_since(t0) >= timeout_ms) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (pid_ < 0) return false;
  if (status != nullptr) *status = status_;
  return true;
}

void DaemonHarness::kill_now() {
  if (pid_ >= 0 && !exited_) {
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    exited_ = true;
    status_ = status;
  }
  if (out_fd_ >= 0) {
    ::close(out_fd_);
    out_fd_ = -1;
  }
}

bool DaemonHarness::terminate(std::uint32_t timeout_ms, int* exit_code) {
  if (pid_ < 0) return false;
  if (!exited_) ::kill(pid_, SIGTERM);
  const bool done = wait_exit(timeout_ms, nullptr);
  if (done && exit_code != nullptr)
    *exit_code = WIFEXITED(status_) ? WEXITSTATUS(status_) : -1;
  if (out_fd_ >= 0) {
    ::close(out_fd_);
    out_fd_ = -1;
  }
  return done;
}

// --- the sweep -----------------------------------------------------------

ChaosReport run_chaos(const ChaosConfig& config) {
  struct Point {
    const char* name;
    std::vector<std::string> crash;
    bool sigterm = false;  ///< harness-driven SIGTERM instead of a crash flag
  };
  const std::string batch = std::to_string(config.crash_batch);
  const std::vector<Point> points = {
      {"mid-batch", {"--crash-sync-batch", batch}, false},
      {"pre-ack", {"--crash-ack-batch", batch}, false},
      {"pre-seal", {"--crash-before-seal"}, false},
      {"post-seal", {"--crash-after-seal"}, false},
      {"sigterm-under-load", {}, true},
  };

  ChaosReport report;
  for (const Point& point : points) {
    ChaosPointResult result;
    result.name = point.name;
    const Clock::time_point point_t0 = Clock::now();
    const std::string root =
        (fs::path(config.root_dir) / point.name).string();
    std::error_code ec;
    fs::remove_all(root, ec);
    fs::create_directories(root, ec);

    DaemonHarness daemon;
    DaemonOptions opts;
    opts.binary = config.binary;
    opts.args = daemon_args(config, root, 0, point.crash);
    std::string error;
    if (!daemon.start(opts, &error)) {
      result.errors.push_back(error);
      report.points.push_back(std::move(result));
      continue;
    }
    const std::uint16_t port = daemon.port();

    std::vector<ClientResult> outcomes(config.clients);
    std::vector<std::thread> threads;
    threads.reserve(config.clients);
    for (std::size_t i = 0; i < config.clients; ++i)
      threads.emplace_back(
          [&, i] { chaos_client(config, port, i, outcomes[i]); });

    // Supervise the death. Crash-flag points kill themselves; the SIGTERM
    // point is killed from here, mid-upload.
    bool restarted = false;
    if (point.sigterm) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      int exit_code = -1;
      if (!daemon.terminate(15000, &exit_code))
        result.errors.push_back("SIGTERM: daemon did not exit");
      else if (exit_code != 0)
        result.errors.push_back("SIGTERM: exit code " +
                                std::to_string(exit_code));
    } else {
      int status = 0;
      if (!daemon.wait_exit(30000, &status)) {
        result.errors.push_back("crash flag never fired");
      } else if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
        result.errors.push_back("daemon died, but not by SIGKILL");
      }
    }
    // Restart on the same port, crash flags disarmed; resuming clients
    // find the replacement via their reconnect loop.
    const Clock::time_point dead_at = Clock::now();
    if (result.errors.empty()) {
      opts.args = daemon_args(config, root, port, {});
      restarted = daemon.start(opts, &error);
      if (!restarted) result.errors.push_back("restart: " + error);
      result.restart_ms = ms_since(dead_at);
    }

    for (std::thread& t : threads) t.join();

    for (std::size_t i = 0; i < config.clients; ++i) {
      const ClientResult& outcome = outcomes[i];
      result.reconnects += outcome.reconnects;
      result.batches_resent += outcome.batches_resent;
      if (outcome.sealed)
        ++result.sealed;
      else
        result.errors.push_back(record_name(i) + ": " + outcome.error);
    }

    // Graceful finish: the replacement daemon must drain out with exit 0.
    if (restarted) {
      int exit_code = -1;
      if (!daemon.terminate(15000, &exit_code))
        result.errors.push_back("final SIGTERM: daemon did not exit");
      else if (exit_code != 0)
        result.errors.push_back("final SIGTERM: exit code " +
                                std::to_string(exit_code));
    }

    // Oracle verification: every sealed record must be byte-identical to
    // a local rebuild from the seed, and pass a full frame-CRC sweep.
    const fs::path tenant_dir = fs::path(root) / config.tenant;
    const fs::path scratch = fs::path(root) / ".verify";
    fs::create_directories(scratch, ec);
    for (std::size_t i = 0; i < config.clients; ++i) {
      if (!outcomes[i].sealed) continue;
      const std::string server_path =
          (tenant_dir / (record_name(i) + ".cdcc")).string();
      const std::string local_path =
          (scratch / (record_name(i) + ".cdcc")).string();
      const std::vector<SynthJob> jobs = synth_jobs(
          client_seed(config.seed, i), config.shape, outcomes[i].level);
      std::string why;
      if (!write_synth_container(local_path, jobs, &why) ||
          !same_file_bytes(server_path, local_path, &why)) {
        result.errors.push_back(record_name(i) + ": " + why);
        continue;
      }
      auto reader = store::ContainerReader::open(server_path, &why);
      if (reader == nullptr || !reader->index_ok() || !reader->verify().ok) {
        result.errors.push_back(record_name(i) + ": verify failed");
        continue;
      }
      ++result.verified;
    }

    result.wall_ms = ms_since(point_t0);
    result.passed = result.errors.empty() &&
                    result.sealed == config.clients &&
                    result.verified == config.clients;
    report.points.push_back(std::move(result));
  }
  return report;
}

}  // namespace cdc::net
