// Daemon kill-sweep chaos harness (DESIGN.md §14).
//
// The crash-safety claim is end-to-end: SIGKILL the *daemon process* at a
// precise protocol state, restart it, let resuming clients finish, and the
// sealed records must be byte-identical to an uninterrupted upload. That
// cannot be tested in-process — SIGKILL takes the test down too — so this
// harness forks cdc_served as a child, parses its `LISTENING <port>`
// handshake, and supervises the kill/restart cycle from outside.
//
//   DaemonHarness — fork/exec one cdc_served, with stdout piped for the
//                   port handshake; waitpid-based exit detection, SIGKILL
//                   and SIGTERM controls, restart on the same port.
//   run_chaos()   — the sweep: for each kill point (mid-batch flush,
//                   between journal fsync and PUT_ACK, before the seal
//                   footer, after the footer but before the SEALED reply,
//                   and SIGTERM-under-load), run N resuming clients
//                   against a crash-armed daemon, restart after the
//                   configured death, and oracle-verify every sealed
//                   record byte-for-byte against a local rebuild from the
//                   client seed (net::write_synth_container).
//
// The same harness drives the recovery bench (bench/fig24_recovery) and
// the nightly chaos CI job.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "compress/deflate.h"
#include "net/load_gen.h"

namespace cdc::net {

struct DaemonOptions {
  std::string binary;              ///< path to the cdc_served executable
  std::vector<std::string> args;   ///< argv[1..] verbatim
  std::uint32_t start_timeout_ms = 15000;  ///< deadline for LISTENING
};

/// One out-of-process cdc_served under supervision. Movable-nothing: the
/// harness object owns the child for its lifetime and SIGKILLs + reaps any
/// survivor on destruction.
class DaemonHarness {
 public:
  DaemonHarness() = default;
  ~DaemonHarness();
  DaemonHarness(const DaemonHarness&) = delete;
  DaemonHarness& operator=(const DaemonHarness&) = delete;

  /// Forks and execs; blocks until the child prints `LISTENING <port>` (or
  /// the deadline). False with *error set on spawn/handshake failure.
  [[nodiscard]] bool start(const DaemonOptions& options, std::string* error);

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] pid_t pid() const noexcept { return pid_; }

  /// Non-blocking liveness probe (waitpid WNOHANG).
  [[nodiscard]] bool running();

  /// Blocks up to `timeout_ms` for the child to exit on its own (the
  /// crash-flag SIGKILL, or a completed drain). True when it exited;
  /// *status receives the raw waitpid status.
  [[nodiscard]] bool wait_exit(std::uint32_t timeout_ms,
                               int* status = nullptr);

  /// SIGKILL + reap. Idempotent.
  void kill_now();

  /// SIGTERM, then wait up to `timeout_ms`. True when the child exited in
  /// time; *exit_code receives WEXITSTATUS (-1 when killed by signal).
  [[nodiscard]] bool terminate(std::uint32_t timeout_ms, int* exit_code);

 private:
  pid_t pid_ = -1;
  int out_fd_ = -1;  ///< read end of the child's stdout pipe
  std::uint16_t port_ = 0;
  bool exited_ = false;
  int status_ = 0;
};

struct ChaosConfig {
  std::string binary;    ///< cdc_served path
  std::string root_dir;  ///< scratch root; each kill point gets a subdir
  std::string tenant = "chaos";
  std::string token = "sesame";
  std::size_t clients = 3;
  SynthShape shape;  ///< per-client upload shape (defaults are sensible)
  std::uint64_t seed = 42;
  compress::DeflateLevel level = compress::DeflateLevel::kDefault;
  /// Reconnect budget per client — generous, because every client rides
  /// out the same daemon death.
  std::uint32_t client_retries = 12;
  /// Crash trigger for the batch-counted kill points (server-global Nth).
  std::uint32_t crash_batch = 7;
};

struct ChaosPointResult {
  std::string name;
  bool passed = false;
  std::size_t sealed = 0;           ///< clients that finished with SEALED
  std::size_t verified = 0;         ///< byte-identical records
  std::uint64_t reconnects = 0;     ///< summed over clients
  std::uint64_t batches_resent = 0; ///< summed over clients
  double restart_ms = 0.0;   ///< daemon death → replacement LISTENING
  double wall_ms = 0.0;      ///< whole point, kill and recovery included
  std::vector<std::string> errors;
};

struct ChaosReport {
  std::vector<ChaosPointResult> points;
  [[nodiscard]] bool ok() const noexcept {
    for (const ChaosPointResult& p : points)
      if (!p.passed) return false;
    return !points.empty();
  }
};

/// Runs the full kill sweep. Blocking; spawns one daemon (twice) and
/// `clients` threads per kill point.
[[nodiscard]] ChaosReport run_chaos(const ChaosConfig& config);

}  // namespace cdc::net
