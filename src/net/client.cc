#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "obs/metrics.h"

namespace cdc::net {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, want) == 0;
}

/// Deadline-bounded TCP connect: non-blocking connect, poll for
/// writability, then back to blocking mode. Returns -1 with *error set.
int dial(const Client::Options& options, std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr)
      *error = "connect " + options.host + ":" +
               std::to_string(options.port) + ": " + why;
    return -1;
  };
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail(std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return fail("bad address");
  }
  if (!set_nonblocking(fd, true)) {
    ::close(fd);
    return fail("fcntl");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    if (errno != EINPROGRESS) {
      const int saved = errno;
      ::close(fd);
      return fail(std::strerror(saved));
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int timeout = options.connect_timeout_ms > 0
                            ? static_cast<int>(options.connect_timeout_ms)
                            : -1;
    const int ready = ::poll(&pfd, 1, timeout);
    if (ready <= 0) {
      ::close(fd);
      return fail(ready == 0 ? "timed out" : std::strerror(errno));
    }
    int so_error = 0;
    socklen_t len = sizeof so_error;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (so_error != 0) {
      ::close(fd);
      return fail(std::strerror(so_error));
    }
  }
  set_nonblocking(fd, false);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  if (options.timeout_ms > 0) {
    // Reads use poll deadlines; a send timeout still bounds the rare
    // fully-wedged-peer case where the socket buffer never drains.
    timeval tv{};
    tv.tv_sec = options.timeout_ms / 1000;
    tv.tv_usec = (options.timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  }
  return fd;
}

}  // namespace

std::unique_ptr<Client> Client::connect(const Options& options,
                                        std::string* error) {
  auto client = std::unique_ptr<Client>(new Client(options));
  if (!client->handshake()) {
    if (error != nullptr) *error = client->last_error_;
    return nullptr;
  }
  return client;
}

bool Client::handshake() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  failed_ = false;
  local_fail_ = false;
  std::string dial_error;
  fd_ = dial(options_, &dial_error);
  if (fd_ < 0) return fail(std::move(dial_error), ErrCode::kInternal, true);
  parser_ = WireParser(options_.limits);

  Hello hello;
  hello.version = options_.version;
  hello.token = options_.token;
  hello.record = options_.record;
  hello.intent = options_.intent;
  hello.level = options_.level;
  hello.resumable = options_.resumable && options_.version >= 2;
  Message msg;
  if (!send_all(encode_hello(hello)) || !read_message(&msg) ||
      is_error(msg))
    return false;
  if (!decode_welcome(msg, welcome_)) return fail("malformed WELCOME");
  return true;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

bool Client::send_all(std::span<const std::uint8_t> bytes) {
  if (failed_ || fd_ < 0) return false;
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR)) continue;
      return fail(std::string("send: ") + std::strerror(errno),
                  ErrCode::kInternal, true);
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool Client::send_raw(std::span<const std::uint8_t> bytes) {
  return send_all(bytes);
}

bool Client::read_message(Message* out) {
  if (failed_ || fd_ < 0) return false;
  while (true) {
    const WireParser::Status status = parser_.next(out);
    if (status == WireParser::Status::kMessage) return true;
    if (status == WireParser::Status::kMalformed)
      return fail("protocol error: " + parser_.error());
    if (options_.timeout_ms > 0) {
      pollfd pfd{fd_, POLLIN, 0};
      const int ready =
          ::poll(&pfd, 1, static_cast<int>(options_.timeout_ms));
      if (ready == 0)
        return fail("recv: timed out", ErrCode::kInternal, true);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return fail(std::string("poll: ") + std::strerror(errno),
                    ErrCode::kInternal, true);
      }
    }
    std::uint8_t buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n == 0)
      return fail("server closed the connection", ErrCode::kInternal, true);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail(std::string("recv: ") + std::strerror(errno),
                  ErrCode::kInternal, true);
    }
    parser_.feed({buf, static_cast<std::size_t>(n)});
  }
}

bool Client::is_error(const Message& msg) {
  if (msg.type != MsgType::kError) return false;
  ErrCode code = ErrCode::kInternal;
  std::string text;
  if (!decode_error(msg, code, text)) {
    (void)fail("undecodable server ERROR");
    return true;
  }
  (void)fail("server: " + text, code);
  return true;
}

bool Client::fail(std::string why, ErrCode code, bool local) {
  failed_ = true;
  local_fail_ = local;
  last_error_ = std::move(why);
  last_code_ = code;
  return false;
}

bool Client::retryable() const noexcept {
  if (!failed_) return false;
  // Local I/O failures (refused, reset, EOF, deadline) are transient by
  // assumption; of the server's verdicts only the drain GOAWAY invites a
  // retry. Everything else — bad token, quota, protocol violation — would
  // just fail again.
  return local_fail_ || last_code_ == ErrCode::kBusy;
}

void Client::backoff_sleep(std::uint32_t attempt) {
  const store::RetryPolicy& policy = options_.backoff;
  double ms = policy.initial_backoff_ms *
              std::pow(policy.backoff_multiplier, attempt);
  ms = std::min(ms, policy.max_backoff_ms);
  ms *= 1.0 + policy.jitter_fraction * (2.0 * jitter_.uniform() - 1.0);
  if (policy.really_sleep && ms > 0.0)
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

bool Client::recover() {
  static obs::Counter& reconnects_total =
      obs::counter("net.client.retry.reconnects");
  static obs::Counter& resumes_total =
      obs::counter("net.client.retry.resumes");
  static obs::Counter& resent_batches_total =
      obs::counter("net.client.retry.resent_batches");
  static obs::Counter& resent_bytes_total =
      obs::counter("net.client.retry.resent_bytes");
  if (!options_.resumable || options_.version < 2 ||
      options_.intent != Intent::kIngest)
    return false;
  if (options_.max_reconnects == 0 || !retryable()) return false;
  const std::string first_error = last_error_;
  for (std::uint32_t attempt = 0; attempt < options_.max_reconnects;
       ++attempt) {
    backoff_sleep(attempt);
    if (!handshake()) {
      if (seal_sent_ && last_code_ == ErrCode::kBadRecord) {
        // The server sealed the record and then died before (or while)
        // replying: a fresh HELLO now collides with a finished container.
        // That IS success — everything we sent is durable and sealed.
        failed_ = false;
        local_fail_ = false;
        sealed_remote_ = true;
        pending_.clear();
        reconnects_total.add(1);
        ++reconnects_;
        return true;
      }
      if (retryable()) continue;
      return false;
    }
    // RESUMED tells us the durable high-water mark; drop what the server
    // already holds and re-send the remainder in order.
    if (!send_all(encode_simple(MsgType::kResume))) continue;
    Message msg;
    if (!read_message(&msg)) continue;
    if (is_error(msg)) {
      if (retryable()) continue;
      return false;
    }
    Resumed resumed;
    if (msg.type != MsgType::kResumed || !decode_resumed(msg, resumed))
      return fail("expected RESUMED");
    resumes_total.add(1);
    while (!pending_.empty() && pending_.front().seq <= resumed.last_seq)
      pending_.pop_front();
    frames_acked_ = resumed.frames_ingested;
    bytes_acked_ = resumed.bytes_ingested;
    bool resent_ok = true;
    for (const PendingBatch& batch : pending_) {
      if (!send_all(batch.bytes)) {
        resent_ok = false;
        break;
      }
      resent_batches_total.add(1);
      resent_bytes_total.add(batch.bytes.size());
      ++batches_resent_;
    }
    if (!resent_ok) continue;
    if (seal_sent_ && !send_all(encode_simple(MsgType::kSeal))) continue;
    reconnects_total.add(1);
    ++reconnects_;
    return true;
  }
  (void)fail("reconnect attempts exhausted (first failure: " + first_error +
                 ")",
             ErrCode::kInternal, true);
  return false;
}

void Client::note_ack(const PutAck& ack) {
  const std::uint64_t now = steady_ns();
  // Acks arrive in sequence order; one ack retires every batch at or
  // below it (a resume can collapse several into one RESUMED).
  while (!pending_.empty() && pending_.front().seq <= ack.seq) {
    if (pending_.front().seq == ack.seq)
      latency_ns_.push_back(now - pending_.front().sent_ns);
    pending_.pop_front();
  }
  frames_acked_ = ack.frames_ingested;
  bytes_acked_ = ack.bytes_ingested;
}

bool Client::resume(Resumed* out, bool skip_acked) {
  if (failed_) return false;
  if (!send_all(encode_simple(MsgType::kResume))) return false;
  Message msg;
  if (!read_message(&msg)) return false;
  if (is_error(msg)) return false;
  Resumed resumed;
  if (msg.type != MsgType::kResumed || !decode_resumed(msg, resumed))
    return fail("expected RESUMED");
  frames_acked_ = resumed.frames_ingested;
  bytes_acked_ = resumed.bytes_ingested;
  if (skip_acked) next_seq_ = resumed.last_seq;
  if (out != nullptr) *out = resumed;
  return true;
}

bool Client::put(std::vector<WireFrame> frames) {
  if (failed_ && !recover()) return false;
  // Drain acks until the window has room — this is where server
  // backpressure (suspended reads → full send buffer → blocked acks)
  // becomes client-visible blocking.
  Message msg;
  while (pending_.size() >= options_.max_inflight) {
    if (!read_message(&msg)) {
      if (recover()) continue;
      return false;
    }
    if (is_error(msg)) {
      if (recover()) continue;
      return false;
    }
    PutAck ack;
    if (msg.type != MsgType::kPutAck || !decode_put_ack(msg, ack))
      return fail("expected PUT_ACK");
    note_ack(ack);
  }
  FrameBatch batch;
  batch.seq = ++next_seq_;
  batch.frames = std::move(frames);
  PendingBatch entry;
  entry.seq = batch.seq;
  entry.bytes = encode_put_frames(batch, welcome_.level);
  entry.sent_ns = steady_ns();
  pending_.push_back(std::move(entry));
  if (send_all(pending_.back().bytes)) return true;
  // recover() re-sends the whole surviving buffer, this batch included.
  return recover();
}

bool Client::seal(Sealed* out) {
  if (failed_ && !recover()) return false;
  if (!sealed_remote_) {
    seal_sent_ = true;
    if (!send_all(encode_simple(MsgType::kSeal)) && !recover()) return false;
  }
  Message msg;
  while (true) {
    if (sealed_remote_) {
      // Sealed in a previous server life; the SEALED stats died with it.
      if (out != nullptr) *out = Sealed{};
      return true;
    }
    if (!read_message(&msg)) {
      if (recover()) continue;
      return false;
    }
    if (is_error(msg)) {
      if (recover()) continue;
      return false;
    }
    if (msg.type == MsgType::kPutAck) {
      PutAck ack;
      if (!decode_put_ack(msg, ack)) return fail("malformed PUT_ACK");
      note_ack(ack);
      continue;
    }
    if (msg.type == MsgType::kSealed) {
      Sealed sealed;
      if (!decode_sealed(msg, sealed)) return fail("malformed SEALED");
      if (out != nullptr) *out = sealed;
      return true;
    }
    return fail("unexpected message while sealing");
  }
}

bool Client::replay_window(std::uint64_t epoch_lo, std::uint64_t epoch_hi,
                           std::vector<WindowStream>* streams,
                           WindowDone* done) {
  if (failed_) return false;
  ReplayWindowReq req;
  req.epoch_lo = epoch_lo;
  req.epoch_hi = epoch_hi;
  if (!send_all(encode_replay_window(req))) return false;
  Message msg;
  while (true) {
    if (!read_message(&msg)) return false;
    if (is_error(msg)) return false;
    if (msg.type == MsgType::kWindowStream) {
      WindowStream ws;
      if (!decode_window_stream(msg, ws))
        return fail("malformed WINDOW_STREAM");
      if (streams != nullptr) streams->push_back(std::move(ws));
      continue;
    }
    if (msg.type == MsgType::kWindowDone) {
      WindowDone wd;
      if (!decode_window_done(msg, wd)) return fail("malformed WINDOW_DONE");
      if (done != nullptr) *done = wd;
      return true;
    }
    return fail("unexpected message in replay");
  }
}

bool Client::inspect(InspectKind kind, std::string* json) {
  if (failed_) return false;
  if (!send_all(encode_inspect(kind))) return false;
  Message msg;
  if (!read_message(&msg)) return false;
  if (is_error(msg)) return false;
  if (msg.type != MsgType::kReport) return fail("expected REPORT");
  if (json != nullptr)
    json->assign(msg.body.begin(), msg.body.end());
  return true;
}

void Client::bye() {
  if (fd_ < 0) return;
  if (!failed_) (void)send_all(encode_simple(MsgType::kBye));
  ::close(fd_);
  fd_ = -1;
}

// --- NetFrameSink --------------------------------------------------------

NetFrameSink::NetFrameSink(Client* client, std::size_t max_batch_frames,
                           std::size_t max_batch_bytes)
    : client_(client),
      max_batch_frames_(max_batch_frames),
      max_batch_bytes_(max_batch_bytes) {}

void NetFrameSink::submit(const runtime::StreamKey& key, tool::FrameJob job) {
  if (!ok_) return;
  WireFrame frame;
  frame.key = key;
  frame.codec = job.codec;
  frame.meta = job.meta;
  frame.compress = job.compress;
  frame.epoch = job.epoch;
  frame.payload = std::move(job.payload);
  pending_bytes_ += frame.payload.size();
  pending_.push_back(std::move(frame));
  if (pending_.size() >= max_batch_frames_ ||
      pending_bytes_ >= max_batch_bytes_)
    ok_ = flush();
}

bool NetFrameSink::flush() {
  if (!ok_) return false;
  if (pending_.empty()) return true;
  std::vector<WireFrame> batch;
  batch.swap(pending_);
  pending_bytes_ = 0;
  ++batches_sent_;
  ok_ = client_->put(std::move(batch));
  return ok_;
}

}  // namespace cdc::net
