#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace cdc::net {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::unique_ptr<Client> Client::connect(const Options& options,
                                        std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return nullptr;
  }
  if (options.timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = options.timeout_ms / 1000;
    tv.tv_usec = (options.timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
          0) {
    if (error != nullptr)
      *error = "connect " + options.host + ":" +
               std::to_string(options.port) + ": " + std::strerror(errno);
    ::close(fd);
    return nullptr;
  }

  auto client = std::unique_ptr<Client>(new Client(options, fd));
  client->parser_ = WireParser(options.limits);

  Hello hello;
  hello.version = kProtocolVersion;
  hello.token = options.token;
  hello.record = options.record;
  hello.intent = options.intent;
  hello.level = options.level;
  Message msg;
  if (!client->send_all(encode_hello(hello)) ||
      !client->read_message(&msg) || client->is_error(msg) ||
      !decode_welcome(msg, client->welcome_)) {
    if (error != nullptr)
      *error = client->failed_ ? client->last_error_
                               : "malformed WELCOME";
    return nullptr;
  }
  return client;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

bool Client::send_all(std::span<const std::uint8_t> bytes) {
  if (failed_ || fd_ < 0) return false;
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR)) continue;
      return fail(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool Client::send_raw(std::span<const std::uint8_t> bytes) {
  return send_all(bytes);
}

bool Client::read_message(Message* out) {
  if (failed_ || fd_ < 0) return false;
  while (true) {
    const WireParser::Status status = parser_.next(out);
    if (status == WireParser::Status::kMessage) return true;
    if (status == WireParser::Status::kMalformed)
      return fail("protocol error: " + parser_.error());
    std::uint8_t buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n == 0) return fail("server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail(std::string("recv: ") + std::strerror(errno));
    }
    parser_.feed({buf, static_cast<std::size_t>(n)});
  }
}

bool Client::is_error(const Message& msg) {
  if (msg.type != MsgType::kError) return false;
  ErrCode code = ErrCode::kInternal;
  std::string text;
  if (!decode_error(msg, code, text)) {
    (void)fail("undecodable server ERROR");
    return true;
  }
  (void)fail("server: " + text, code);
  return true;
}

bool Client::fail(std::string why, ErrCode code) {
  failed_ = true;
  last_error_ = std::move(why);
  last_code_ = code;
  return false;
}

void Client::note_ack(const PutAck& ack) {
  const std::uint64_t now = steady_ns();
  for (std::size_t i = 0; i < inflight_.size(); ++i) {
    if (inflight_[i].seq != ack.seq) continue;
    latency_ns_.push_back(now - inflight_[i].sent_ns);
    inflight_.erase(inflight_.begin() + static_cast<std::ptrdiff_t>(i));
    break;
  }
  frames_acked_ = ack.frames_ingested;
  bytes_acked_ = ack.bytes_ingested;
}

bool Client::put(std::vector<WireFrame> frames) {
  if (failed_) return false;
  // Drain acks until the window has room — this is where server
  // backpressure (suspended reads → full send buffer → blocked acks)
  // becomes client-visible blocking.
  Message msg;
  while (inflight_.size() >= options_.max_inflight) {
    if (!read_message(&msg)) return false;
    if (is_error(msg)) return false;
    PutAck ack;
    if (msg.type != MsgType::kPutAck || !decode_put_ack(msg, ack))
      return fail("expected PUT_ACK");
    note_ack(ack);
  }
  FrameBatch batch;
  batch.seq = ++next_seq_;
  batch.frames = std::move(frames);
  const std::vector<std::uint8_t> bytes =
      encode_put_frames(batch, welcome_.level);
  inflight_.push_back(Inflight{batch.seq, steady_ns()});
  return send_all(bytes);
}

bool Client::seal(Sealed* out) {
  if (failed_) return false;
  if (!send_all(encode_simple(MsgType::kSeal))) return false;
  Message msg;
  while (true) {
    if (!read_message(&msg)) return false;
    if (is_error(msg)) return false;
    if (msg.type == MsgType::kPutAck) {
      PutAck ack;
      if (!decode_put_ack(msg, ack)) return fail("malformed PUT_ACK");
      note_ack(ack);
      continue;
    }
    if (msg.type == MsgType::kSealed) {
      Sealed sealed;
      if (!decode_sealed(msg, sealed)) return fail("malformed SEALED");
      if (out != nullptr) *out = sealed;
      return true;
    }
    return fail("unexpected message while sealing");
  }
}

bool Client::replay_window(std::uint64_t epoch_lo, std::uint64_t epoch_hi,
                           std::vector<WindowStream>* streams,
                           WindowDone* done) {
  if (failed_) return false;
  ReplayWindowReq req;
  req.epoch_lo = epoch_lo;
  req.epoch_hi = epoch_hi;
  if (!send_all(encode_replay_window(req))) return false;
  Message msg;
  while (true) {
    if (!read_message(&msg)) return false;
    if (is_error(msg)) return false;
    if (msg.type == MsgType::kWindowStream) {
      WindowStream ws;
      if (!decode_window_stream(msg, ws))
        return fail("malformed WINDOW_STREAM");
      if (streams != nullptr) streams->push_back(std::move(ws));
      continue;
    }
    if (msg.type == MsgType::kWindowDone) {
      WindowDone wd;
      if (!decode_window_done(msg, wd)) return fail("malformed WINDOW_DONE");
      if (done != nullptr) *done = wd;
      return true;
    }
    return fail("unexpected message in replay");
  }
}

bool Client::inspect(InspectKind kind, std::string* json) {
  if (failed_) return false;
  if (!send_all(encode_inspect(kind))) return false;
  Message msg;
  if (!read_message(&msg)) return false;
  if (is_error(msg)) return false;
  if (msg.type != MsgType::kReport) return fail("expected REPORT");
  if (json != nullptr)
    json->assign(msg.body.begin(), msg.body.end());
  return true;
}

void Client::bye() {
  if (fd_ < 0) return;
  if (!failed_) (void)send_all(encode_simple(MsgType::kBye));
  ::close(fd_);
  fd_ = -1;
}

// --- NetFrameSink --------------------------------------------------------

NetFrameSink::NetFrameSink(Client* client, std::size_t max_batch_frames,
                           std::size_t max_batch_bytes)
    : client_(client),
      max_batch_frames_(max_batch_frames),
      max_batch_bytes_(max_batch_bytes) {}

void NetFrameSink::submit(const runtime::StreamKey& key, tool::FrameJob job) {
  if (!ok_) return;
  WireFrame frame;
  frame.key = key;
  frame.codec = job.codec;
  frame.meta = job.meta;
  frame.compress = job.compress;
  frame.epoch = job.epoch;
  frame.payload = std::move(job.payload);
  pending_bytes_ += frame.payload.size();
  pending_.push_back(std::move(frame));
  if (pending_.size() >= max_batch_frames_ ||
      pending_bytes_ >= max_batch_bytes_)
    ok_ = flush();
}

bool NetFrameSink::flush() {
  if (!ok_) return false;
  if (pending_.empty()) return true;
  std::vector<WireFrame> batch;
  batch.swap(pending_);
  pending_bytes_ = 0;
  ++batches_sent_;
  ok_ = client_->put(std::move(batch));
  return ok_;
}

}  // namespace cdc::net
