// Blocking client for the record/replay service (the library behind the
// `cdc_client` CLI and the fig23 load generator).
//
// A Client owns one TCP connection and one protocol session: connect()
// dials, speaks HELLO, and returns an authenticated session whose
// negotiated parameters (compression level, limits) are in welcome().
// Ingest uses a bounded ack window — put() blocks once `max_inflight`
// batches are unacknowledged, so a client can never outrun the server's
// backpressure by more than the window — and records a submit→ack latency
// sample per batch for the bench's percentile report.
//
// NetFrameSink adapts the connection to the tool::FrameSink seam: the same
// recorder/harness code that writes a local container through an
// InlineFrameSink streams to the service instead, batch boundaries and
// all. Since encode_frame() is deterministic for a given (job, level), a
// record uploaded this way is byte-identical to the container the same
// jobs would have produced locally — the integration suite's oracle.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "tool/frame_sink.h"

namespace cdc::net {

class Client {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::string token;
    std::string record;
    Intent intent = Intent::kIngest;
    compress::DeflateLevel level = compress::DeflateLevel::kDefault;
    /// Unacked PUT_FRAMES batches allowed in flight before put() blocks.
    std::size_t max_inflight = 4;
    Limits limits;
    /// recv/connect timeout; 0 = block forever.
    std::uint32_t timeout_ms = 30000;
  };

  /// Dials, sends HELLO, and waits for WELCOME. Returns nullptr with
  /// *error set on connection failure or an ERROR reply (the server's
  /// diagnostic is included verbatim).
  static std::unique_ptr<Client> connect(const Options& options,
                                         std::string* error);

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] const Welcome& welcome() const noexcept { return welcome_; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// Sends one batch (seq assigned internally), first draining acks until
  /// the in-flight window has room. False on any session failure; see
  /// last_error().
  [[nodiscard]] bool put(std::vector<WireFrame> frames);

  /// Drains every outstanding ack, sends SEAL, and waits for SEALED.
  [[nodiscard]] bool seal(Sealed* out = nullptr);

  /// Requests epochs [lo, hi) of every stream. Fills `streams` (in server
  /// order) and `done`. Replay-intent sessions only.
  [[nodiscard]] bool replay_window(std::uint64_t epoch_lo,
                                   std::uint64_t epoch_hi,
                                   std::vector<WindowStream>* streams,
                                   WindowDone* done);

  /// Fetches one INSPECT report as a JSON document.
  [[nodiscard]] bool inspect(InspectKind kind, std::string* json);

  /// Best-effort BYE + close. Further calls fail. Idempotent.
  void bye();

  /// True once any call failed; the session is dead (the protocol has no
  /// resync — reconnect instead).
  [[nodiscard]] bool failed() const noexcept { return failed_; }
  [[nodiscard]] const std::string& last_error() const noexcept {
    return last_error_;
  }
  /// Error code of the last server ERROR reply (kInternal when the
  /// failure was local: connect, short read, parse).
  [[nodiscard]] ErrCode last_code() const noexcept { return last_code_; }

  /// One submit→ack wall-clock sample per acknowledged batch, in ns.
  [[nodiscard]] const std::vector<std::uint64_t>& ack_latency_ns()
      const noexcept {
    return latency_ns_;
  }
  [[nodiscard]] std::uint64_t frames_acked() const noexcept {
    return frames_acked_;
  }
  [[nodiscard]] std::uint64_t bytes_acked() const noexcept {
    return bytes_acked_;
  }

  /// The raw socket fd — the fault-plan hooks (mid-stream disconnect,
  /// garbage injection) reach around the protocol with it. -1 when closed.
  [[nodiscard]] int fd() const noexcept { return fd_; }
  /// Sends raw bytes outside the protocol (fault injection only).
  [[nodiscard]] bool send_raw(std::span<const std::uint8_t> bytes);

 private:
  Client(Options options, int fd) : options_(std::move(options)), fd_(fd) {}

  [[nodiscard]] bool send_all(std::span<const std::uint8_t> bytes);
  /// Blocks until one complete message arrives (or timeout/EOF/parse
  /// error, which fail the session).
  [[nodiscard]] bool read_message(Message* out);
  /// Handles one PUT_ACK: latency sample + window bookkeeping.
  void note_ack(const PutAck& ack);
  [[nodiscard]] bool fail(std::string why, ErrCode code = ErrCode::kInternal);
  /// True when `msg` is a server ERROR; fails the session with its text.
  [[nodiscard]] bool is_error(const Message& msg);

  Options options_;
  int fd_ = -1;
  WireParser parser_;
  Welcome welcome_;
  bool failed_ = false;
  std::string last_error_;
  ErrCode last_code_ = ErrCode::kInternal;

  std::uint64_t next_seq_ = 0;
  struct Inflight {
    std::uint64_t seq = 0;
    std::uint64_t sent_ns = 0;  ///< steady_clock at send
  };
  std::vector<Inflight> inflight_;
  std::vector<std::uint64_t> latency_ns_;
  std::uint64_t frames_acked_ = 0;
  std::uint64_t bytes_acked_ = 0;
};

/// tool::FrameSink over a Client ingest session: buffers submitted jobs
/// and ships them as PUT_FRAMES batches when either bound fills. submit()
/// cannot report errors (the seam is void); check ok() / call flush()
/// before sealing.
class NetFrameSink final : public tool::FrameSink {
 public:
  explicit NetFrameSink(Client* client, std::size_t max_batch_frames = 256,
                        std::size_t max_batch_bytes = 1u << 20);

  void submit(const runtime::StreamKey& key, tool::FrameJob job) override;

  /// Ships the buffered partial batch, if any.
  [[nodiscard]] bool flush();
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::uint64_t batches_sent() const noexcept {
    return batches_sent_;
  }

 private:
  Client* client_;
  std::size_t max_batch_frames_;
  std::size_t max_batch_bytes_;
  std::vector<WireFrame> pending_;
  std::size_t pending_bytes_ = 0;
  std::uint64_t batches_sent_ = 0;
  bool ok_ = true;
};

}  // namespace cdc::net
