// Blocking client for the record/replay service (the library behind the
// `cdc_client` CLI and the fig23 load generator).
//
// A Client owns one TCP connection and one protocol session: connect()
// dials, speaks HELLO, and returns an authenticated session whose
// negotiated parameters (compression level, limits) are in welcome().
// Ingest uses a bounded ack window — put() blocks once `max_inflight`
// batches are unacknowledged, so a client can never outrun the server's
// backpressure by more than the window — and records a submit→ack latency
// sample per batch for the bench's percentile report.
//
// Deadlines are poll(2)-based, not SO_RCVTIMEO: connect() waits at most
// `connect_timeout_ms` for the three-way handshake, and every read waits
// at most `timeout_ms` for the next byte, so a server that accepts and
// then goes silent cannot wedge the client.
//
// Crash survival (DESIGN.md §14): with `resumable` set the client keeps
// every unacked PUT_FRAMES batch, encoded, in a resend buffer. When a call
// fails retryably — connection refused/reset, EOF, read timeout, or a
// server ERROR(kBusy) GOAWAY — and `max_reconnects` allows it, the client
// redials with bounded jittered exponential backoff (options().backoff),
// renegotiates HELLO(resumable), asks RESUME → RESUMED(last_durable_seq),
// drops buffered batches the server already holds durably, re-sends the
// rest in order, and picks the original call back up. Because frame
// encoding is deterministic and the server deduplicates by sequence
// number, the sealed record is byte-identical to an uninterrupted upload.
//
// NetFrameSink adapts the connection to the tool::FrameSink seam: the same
// recorder/harness code that writes a local container through an
// InlineFrameSink streams to the service instead, batch boundaries and
// all.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "store/resilient.h"
#include "support/rng.h"
#include "tool/frame_sink.h"

namespace cdc::net {

class Client {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::string token;
    std::string record;
    Intent intent = Intent::kIngest;
    compress::DeflateLevel level = compress::DeflateLevel::kDefault;
    /// Unacked PUT_FRAMES batches allowed in flight before put() blocks.
    std::size_t max_inflight = 4;
    Limits limits;
    /// Protocol version offered in HELLO. Lowering it to 1 yields a
    /// pre-resume session (interop testing); the server answers in kind.
    std::uint32_t version = kProtocolVersion;
    /// Per-read deadline (poll before recv); 0 = block forever.
    std::uint32_t timeout_ms = 30000;
    /// Deadline for the TCP connect itself; 0 = block forever.
    std::uint32_t connect_timeout_ms = 10000;
    /// Ask the server to journal this ingest session for crash-safe
    /// resume, and arm the client-side resend buffer. Needs version >= 2.
    bool resumable = false;
    /// Reconnect+resume attempts after a retryable failure (0 = the
    /// pre-resume behaviour: any failure kills the session).
    std::uint32_t max_reconnects = 0;
    /// Backoff between reconnect attempts. Only the delay shape is used
    /// (max_retries is superseded by max_reconnects); really_sleep is on
    /// by default because this is a wall-clock client.
    store::RetryPolicy backoff{
        .max_retries = 0,
        .initial_backoff_ms = 10.0,
        .backoff_multiplier = 2.0,
        .max_backoff_ms = 1000.0,
        .jitter_fraction = 0.25,
        .jitter_seed = 1,
        .really_sleep = true,
    };
  };

  /// Dials, sends HELLO, and waits for WELCOME. Returns nullptr with
  /// *error set on connection failure or an ERROR reply (the server's
  /// diagnostic is included verbatim).
  static std::unique_ptr<Client> connect(const Options& options,
                                         std::string* error);

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] const Welcome& welcome() const noexcept { return welcome_; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// Sends one batch (seq assigned internally), first draining acks until
  /// the in-flight window has room. False on any session failure; see
  /// last_error(). With reconnects enabled, transparently recovers from
  /// retryable failures before reporting one.
  [[nodiscard]] bool put(std::vector<WireFrame> frames);

  /// Drains every outstanding ack, sends SEAL, and waits for SEALED.
  [[nodiscard]] bool seal(Sealed* out = nullptr);

  /// Explicit RESUME → RESUMED exchange (v2 ingest, before any put() on
  /// this connection). Fills `out` with the server's durable high-water
  /// mark. With `skip_acked` the next put() continues numbering after the
  /// durable prefix — the "fresh process resumes an old upload" path;
  /// without it the caller re-sends from seq 1 and relies on server-side
  /// dedup (the oracle path).
  [[nodiscard]] bool resume(Resumed* out, bool skip_acked = true);

  /// Requests epochs [lo, hi) of every stream. Fills `streams` (in server
  /// order) and `done`. Replay-intent sessions only.
  [[nodiscard]] bool replay_window(std::uint64_t epoch_lo,
                                   std::uint64_t epoch_hi,
                                   std::vector<WindowStream>* streams,
                                   WindowDone* done);

  /// Fetches one INSPECT report as a JSON document.
  [[nodiscard]] bool inspect(InspectKind kind, std::string* json);

  /// Best-effort BYE + close. Further calls fail. Idempotent.
  void bye();

  /// True once any call failed; the session is dead (the protocol has no
  /// resync — reconnect instead).
  [[nodiscard]] bool failed() const noexcept { return failed_; }
  [[nodiscard]] const std::string& last_error() const noexcept {
    return last_error_;
  }
  /// Error code of the last server ERROR reply (kInternal when the
  /// failure was local: connect, short read, parse).
  [[nodiscard]] ErrCode last_code() const noexcept { return last_code_; }

  /// One submit→ack wall-clock sample per acknowledged batch, in ns.
  [[nodiscard]] const std::vector<std::uint64_t>& ack_latency_ns()
      const noexcept {
    return latency_ns_;
  }
  [[nodiscard]] std::uint64_t frames_acked() const noexcept {
    return frames_acked_;
  }
  [[nodiscard]] std::uint64_t bytes_acked() const noexcept {
    return bytes_acked_;
  }
  /// Successful reconnect+resume cycles this session survived.
  [[nodiscard]] std::uint64_t reconnects() const noexcept {
    return reconnects_;
  }
  /// Batches re-sent across all recoveries (durably-held ones are dropped
  /// before resend, so this counts genuine re-transmission).
  [[nodiscard]] std::uint64_t batches_resent() const noexcept {
    return batches_resent_;
  }

  /// The raw socket fd — the fault-plan hooks (mid-stream disconnect,
  /// garbage injection) reach around the protocol with it. -1 when closed.
  [[nodiscard]] int fd() const noexcept { return fd_; }
  /// Sends raw bytes outside the protocol (fault injection only).
  [[nodiscard]] bool send_raw(std::span<const std::uint8_t> bytes);

 private:
  explicit Client(Options options)
      : options_(std::move(options)),
        jitter_(options_.backoff.jitter_seed ^ 0xc11e47ull) {}

  /// Dials (with the connect deadline) and runs HELLO → WELCOME. On
  /// success the connection is live and failed_ is clear.
  [[nodiscard]] bool handshake();
  /// The reconnect+resume loop; true restores an operating session with
  /// the resend buffer reconciled against the server's durable state.
  [[nodiscard]] bool recover();
  /// Whether the current failure is worth a reconnect: local I/O (refused,
  /// reset, EOF, timeout) or a server GOAWAY (kBusy) — never a semantic
  /// rejection like kBadToken or kQuota.
  [[nodiscard]] bool retryable() const noexcept;
  void backoff_sleep(std::uint32_t attempt);

  [[nodiscard]] bool send_all(std::span<const std::uint8_t> bytes);
  /// Blocks until one complete message arrives (or deadline/EOF/parse
  /// error, which fail the session).
  [[nodiscard]] bool read_message(Message* out);
  /// Handles one PUT_ACK: latency sample + resend-buffer bookkeeping.
  void note_ack(const PutAck& ack);
  [[nodiscard]] bool fail(std::string why, ErrCode code = ErrCode::kInternal,
                          bool local = false);
  /// True when `msg` is a server ERROR; fails the session with its text.
  [[nodiscard]] bool is_error(const Message& msg);

  Options options_;
  int fd_ = -1;
  WireParser parser_;
  Welcome welcome_;
  bool failed_ = false;
  bool local_fail_ = false;  ///< last failure was I/O, not a server verdict
  std::string last_error_;
  ErrCode last_code_ = ErrCode::kInternal;

  std::uint64_t next_seq_ = 0;
  /// Unacked batches, encoded and ready to re-send after a reconnect.
  /// Doubles as the in-flight window (acks arrive in sequence order).
  struct PendingBatch {
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> bytes;  ///< encoded PUT_FRAMES message
    std::uint64_t sent_ns = 0;        ///< steady_clock at (first) send
  };
  std::deque<PendingBatch> pending_;
  bool seal_sent_ = false;
  /// Set when a reconnect discovers the record already sealed server-side
  /// (the crash ate only the SEALED reply); seal() then reports success.
  bool sealed_remote_ = false;
  std::vector<std::uint64_t> latency_ns_;
  std::uint64_t frames_acked_ = 0;
  std::uint64_t bytes_acked_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t batches_resent_ = 0;
  support::Xoshiro256 jitter_;
};

/// tool::FrameSink over a Client ingest session: buffers submitted jobs
/// and ships them as PUT_FRAMES batches when either bound fills. submit()
/// cannot report errors (the seam is void); check ok() / call flush()
/// before sealing.
class NetFrameSink final : public tool::FrameSink {
 public:
  explicit NetFrameSink(Client* client, std::size_t max_batch_frames = 256,
                        std::size_t max_batch_bytes = 1u << 20);

  void submit(const runtime::StreamKey& key, tool::FrameJob job) override;

  /// Ships the buffered partial batch, if any.
  [[nodiscard]] bool flush();
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::uint64_t batches_sent() const noexcept {
    return batches_sent_;
  }

 private:
  Client* client_;
  std::size_t max_batch_frames_;
  std::size_t max_batch_bytes_;
  std::vector<WireFrame> pending_;
  std::size_t pending_bytes_ = 0;
  std::uint64_t batches_sent_ = 0;
  bool ok_ = true;
};

}  // namespace cdc::net
