#include "net/load_gen.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "store/container_store.h"
#include "support/rng.h"
#include "tool/frame_sink.h"

namespace cdc::net {

namespace fs = std::filesystem;

namespace {

std::uint64_t client_seed(std::uint64_t run_seed, std::size_t client) {
  return run_seed ^ (0x9e3779b97f4a7c15ull * (client + 1));
}

std::string record_name(std::size_t client) {
  return "load-" + std::to_string(client);
}

enum class Behavior {
  kNormal,
  kSlow,
  kDisconnect,
  kDuplicate,
  kGarbage,
  kOversized,
};

/// Deterministic behavior assignment: the first slow_pct% of clients are
/// slow, the next disconnect_pct% disconnect, and so on — percentages of
/// the population, stable under reordering of thread completion.
Behavior behavior_of(std::size_t client, std::size_t clients,
                     const FaultPlan& plan) {
  const auto pct = static_cast<std::uint32_t>((client * 100) / clients);
  std::uint32_t edge = plan.slow_pct;
  if (pct < edge) return Behavior::kSlow;
  edge += plan.disconnect_pct;
  if (pct < edge) return Behavior::kDisconnect;
  edge += plan.duplicate_pct;
  if (pct < edge) return Behavior::kDuplicate;
  edge += plan.garbage_pct;
  if (pct < edge) return Behavior::kGarbage;
  edge += plan.oversized_pct;
  if (pct < edge) return Behavior::kOversized;
  return Behavior::kNormal;
}

struct ClientOutcome {
  Behavior behavior = Behavior::kNormal;
  bool ok = false;  ///< the behavior's expected outcome was observed
  bool sealed = false;
  compress::DeflateLevel level = compress::DeflateLevel::kDefault;
  std::vector<std::uint64_t> latency_ns;
  std::uint64_t frames_acked = 0;
  std::uint64_t bytes_acked = 0;
  std::string error;
};

std::vector<WireFrame> to_wire(std::vector<SynthJob>::const_iterator begin,
                               std::vector<SynthJob>::const_iterator end) {
  std::vector<WireFrame> frames;
  frames.reserve(static_cast<std::size_t>(end - begin));
  for (auto it = begin; it != end; ++it) {
    WireFrame frame;
    frame.key = it->key;
    frame.codec = it->job.codec;
    frame.meta = it->job.meta;
    frame.compress = it->job.compress;
    frame.epoch = it->job.epoch;
    frame.payload = it->job.payload;
    frames.push_back(std::move(frame));
  }
  return frames;
}

Client::Options ingest_options(const LoadConfig& config, std::size_t client) {
  Client::Options options;
  options.host = config.host;
  options.port = config.port;
  options.token = config.token;
  options.record = record_name(client);
  options.intent = Intent::kIngest;
  options.level = config.level;
  options.max_inflight = config.max_inflight;
  return options;
}

void run_client(const LoadConfig& config, std::size_t index,
                ClientOutcome& outcome) {
  const Behavior behavior =
      behavior_of(index, config.clients, config.faults);
  outcome.behavior = behavior;
  support::Xoshiro256 rng(client_seed(config.seed, index) ^
                          0x5bf03635ull);  // decoupled from payload RNG
  std::string error;
  auto client = Client::connect(ingest_options(config, index), &error);
  if (client == nullptr) {
    outcome.error = "connect: " + error;
    return;
  }
  outcome.level = client->welcome().level;
  const std::vector<SynthJob> jobs = synth_jobs(
      client_seed(config.seed, index), config.shape, client->welcome().level);
  const std::size_t per_batch = config.shape.frames_per_batch;

  const auto finish = [&](bool expect_met) {
    outcome.latency_ns = client->ack_latency_ns();
    outcome.frames_acked = client->frames_acked();
    outcome.bytes_acked = client->bytes_acked();
    outcome.ok = expect_met;
    if (!expect_met && outcome.error.empty())
      outcome.error = client->last_error();
  };

  switch (behavior) {
    case Behavior::kNormal:
    case Behavior::kSlow:
    case Behavior::kDuplicate: {
      bool sent = true;
      for (std::size_t off = 0; sent && off < jobs.size(); off += per_batch) {
        const std::size_t end = std::min(off + per_batch, jobs.size());
        sent = client->put(to_wire(jobs.begin() + off, jobs.begin() + end));
        if (behavior == Behavior::kSlow)
          std::this_thread::sleep_for(
              std::chrono::microseconds(500 + rng.bounded(4500)));
      }
      Sealed sealed;
      const bool done = sent && client->seal(&sealed);
      outcome.sealed = done;
      if (!done) {
        outcome.error = client->last_error();
        finish(false);
        return;
      }
      client->bye();
      if (behavior != Behavior::kDuplicate) {
        finish(true);
        return;
      }
      // Duplicate upload: the sealed name must now be refused at HELLO.
      std::string dup_error;
      auto dup = Client::connect(ingest_options(config, index), &dup_error);
      const bool refused =
          dup == nullptr && dup_error.find("exists") != std::string::npos;
      if (!refused)
        outcome.error = "duplicate upload was not refused: " + dup_error;
      finish(refused);
      return;
    }
    case Behavior::kDisconnect: {
      // Upload roughly half, then vanish without SEAL: the server must
      // discard the partial record.
      const std::size_t half = jobs.size() / 2;
      bool sent = true;
      for (std::size_t off = 0; sent && off < half; off += per_batch) {
        const std::size_t end = std::min(off + per_batch, half);
        sent = client->put(to_wire(jobs.begin() + off, jobs.begin() + end));
      }
      finish(sent);
      client.reset();  // abrupt close, no BYE, no SEAL
      return;
    }
    case Behavior::kGarbage: {
      bool sent = true;
      if (!jobs.empty())
        sent = client->put(
            to_wire(jobs.begin(),
                    jobs.begin() + static_cast<std::ptrdiff_t>(
                                       std::min(per_batch, jobs.size()))));
      std::vector<std::uint8_t> noise(64);
      for (auto& byte : noise)
        byte = static_cast<std::uint8_t>(rng.bounded(256));
      noise[0] = 0x00;  // never a valid frame magic
      sent = sent && client->send_raw(noise);
      // The server must answer ERROR (bad message) and close; the session
      // dying on our side is the expected outcome.
      const bool rejected = !client->seal(nullptr);
      if (!rejected) outcome.error = "garbage bytes were accepted";
      finish(sent && rejected);
      return;
    }
    case Behavior::kOversized: {
      WireFrame frame;
      frame.key = runtime::StreamKey{0, 0};
      frame.codec = 0x01;
      frame.compress = false;
      frame.payload.assign(
          static_cast<std::size_t>(Limits{}.max_frame_bytes + 1), 0xAB);
      const bool sent = client->put({std::move(frame)});
      const bool rejected = !client->seal(nullptr);
      if (!rejected) outcome.error = "oversized frame was accepted";
      finish(sent && rejected);
      return;
    }
  }
}

bool same_file_bytes(const std::string& a, const std::string& b,
                     std::string* why) {
  std::ifstream fa(a, std::ios::binary);
  std::ifstream fb(b, std::ios::binary);
  if (!fa || !fb) {
    *why = "cannot open for compare";
    return false;
  }
  const std::vector<char> ba((std::istreambuf_iterator<char>(fa)),
                             std::istreambuf_iterator<char>());
  const std::vector<char> bb((std::istreambuf_iterator<char>(fb)),
                             std::istreambuf_iterator<char>());
  if (ba == bb) return true;
  *why = "containers differ (" + std::to_string(ba.size()) + " vs " +
         std::to_string(bb.size()) + " bytes)";
  return false;
}

void verify_outcomes(const LoadConfig& config,
                     const std::vector<ClientOutcome>& outcomes,
                     LoadReport& report) {
  const fs::path tenant_dir = fs::path(config.server_root) / config.tenant;
  const fs::path scratch = config.scratch_dir.empty()
                               ? tenant_dir / ".verify"
                               : fs::path(config.scratch_dir);
  std::error_code ec;
  fs::create_directories(scratch, ec);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const ClientOutcome& outcome = outcomes[i];
    const std::string server_path =
        (tenant_dir / (record_name(i) + ".cdcc")).string();
    if (!outcome.sealed) {
      // Never sealed: the name must refer to nothing.
      if (fs::exists(server_path)) {
        ++report.verify_failures;
        report.errors.push_back(record_name(i) +
                                ": unsealed record present on server");
      }
      continue;
    }
    const std::vector<SynthJob> jobs = synth_jobs(
        client_seed(config.seed, i), config.shape, outcome.level);
    const std::string local_path =
        (scratch / (record_name(i) + ".cdcc")).string();
    std::string why;
    if (!write_synth_container(local_path, jobs, &why) ||
        !same_file_bytes(server_path, local_path, &why)) {
      ++report.verify_failures;
      report.errors.push_back(record_name(i) + ": " + why);
    } else {
      ++report.verified;
    }
    fs::remove(local_path, ec);
  }
}

double quantile_ms(std::vector<std::uint64_t>& sorted_ns, double p) {
  if (sorted_ns.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ns.size() - 1));
  return static_cast<double>(sorted_ns[index]) / 1e6;
}

}  // namespace

std::vector<SynthJob> synth_jobs(std::uint64_t seed, const SynthShape& shape,
                                 compress::DeflateLevel level) {
  support::Xoshiro256 rng(seed);
  std::vector<SynthJob> jobs;
  jobs.reserve(shape.batches * shape.frames_per_batch);
  const std::size_t streams = std::max<std::size_t>(shape.streams, 1);
  for (std::size_t b = 0; b < shape.batches; ++b) {
    for (std::size_t f = 0; f < shape.frames_per_batch; ++f) {
      const std::size_t stream = (b * shape.frames_per_batch + f) % streams;
      SynthJob sj;
      sj.key.rank = static_cast<minimpi::Rank>(stream);
      sj.key.callsite = 7;
      sj.job.codec = 0x01;
      sj.job.meta = 0;
      sj.job.compress = true;
      sj.job.level = level;
      sj.job.payload.resize(shape.payload_bytes);
      // Runs of repeated bytes with random lengths: compressible but not
      // trivially so, and fully determined by the seed.
      std::size_t at = 0;
      while (at < sj.job.payload.size()) {
        const auto byte = static_cast<std::uint8_t>(rng.bounded(32));
        const std::size_t run =
            std::min<std::size_t>(1 + rng.bounded(48),
                                  sj.job.payload.size() - at);
        std::fill_n(sj.job.payload.begin() +
                        static_cast<std::ptrdiff_t>(at),
                    run, byte);
        at += run;
      }
      if (shape.epochs) {
        runtime::EpochMeta meta;
        meta.matched = 1 + rng.bounded(64);
        meta.unmatched = rng.bounded(8);
        sj.job.epoch = meta;
      }
      jobs.push_back(std::move(sj));
    }
  }
  return jobs;
}

bool write_synth_container(const std::string& path,
                           const std::vector<SynthJob>& jobs,
                           std::string* error) {
  try {
    store::ContainerStore store(path);
    tool::InlineFrameSink sink(&store);
    for (const SynthJob& sj : jobs) {
      tool::FrameJob job = sj.job;  // copy; submit consumes
      sink.submit(sj.key, std::move(job));
    }
    store.seal();
    return true;
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
}

LoadReport run_load(const LoadConfig& config) {
  LoadReport report;
  report.clients = config.clients;
  std::vector<ClientOutcome> outcomes(config.clients);
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(config.clients);
    for (std::size_t i = 0; i < config.clients; ++i)
      threads.emplace_back(
          [&config, i, &outcomes] { run_client(config, i, outcomes[i]); });
    for (std::thread& t : threads) t.join();
  }
  const auto t1 = std::chrono::steady_clock::now();
  report.duration_s =
      std::chrono::duration<double>(t1 - t0).count();

  std::vector<std::uint64_t> latencies;
  for (const ClientOutcome& outcome : outcomes) {
    report.frames_acked += outcome.frames_acked;
    report.raw_bytes_acked += outcome.bytes_acked;
    latencies.insert(latencies.end(), outcome.latency_ns.begin(),
                     outcome.latency_ns.end());
    if (outcome.ok) {
      if (outcome.sealed) ++report.sealed;
      if (outcome.behavior == Behavior::kDisconnect ||
          outcome.behavior == Behavior::kDuplicate ||
          outcome.behavior == Behavior::kGarbage ||
          outcome.behavior == Behavior::kOversized)
        ++report.expected_failures;
    } else {
      ++report.unexpected_failures;
      report.errors.push_back(outcome.error.empty() ? "unknown failure"
                                                    : outcome.error);
    }
  }
  std::sort(latencies.begin(), latencies.end());
  report.latency_samples = latencies.size();
  report.ack_p50_ms = quantile_ms(latencies, 0.50);
  report.ack_p95_ms = quantile_ms(latencies, 0.95);
  report.ack_p99_ms = quantile_ms(latencies, 0.99);
  if (report.duration_s > 0) {
    report.frames_per_s =
        static_cast<double>(report.frames_acked) / report.duration_s;
    report.mb_per_s = static_cast<double>(report.raw_bytes_acked) /
                      (1024.0 * 1024.0) / report.duration_s;
  }
  if (!config.server_root.empty())
    verify_outcomes(config, outcomes, report);
  return report;
}

}  // namespace cdc::net
