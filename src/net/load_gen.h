// Seeded many-client load generator + fault plan for the record service.
//
// The workload is deterministic end to end: client `i` derives its RNG
// from (seed, i), synth_jobs() derives every frame payload from that RNG,
// and encode_frame() is deterministic — so after the run, the verifier can
// rebuild each surviving record locally from nothing but the seed and
// byte-compare it against the container the server sealed. That turns a
// hundred concurrent clients plus injected faults (slow readers,
// mid-stream disconnects, duplicate uploads, garbage bytes, oversized
// frames) into an *oracle-checked* stress test, not just a survival test.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/client.h"
#include "tool/frame.h"

namespace cdc::net {

/// Shape of one synthetic client upload.
struct SynthShape {
  std::size_t batches = 8;
  std::size_t frames_per_batch = 16;
  std::size_t payload_bytes = 2048;  ///< raw bytes per frame
  std::size_t streams = 4;           ///< distinct stream keys cycled over
  bool epochs = true;                ///< attach EpochMeta (epoch index)
};

struct SynthJob {
  runtime::StreamKey key;
  tool::FrameJob job;
};

/// The deterministic job list client `seed` uploads: generator and
/// verifier call this with the same arguments and get identical jobs.
[[nodiscard]] std::vector<SynthJob> synth_jobs(std::uint64_t seed,
                                               const SynthShape& shape,
                                               compress::DeflateLevel level);

/// Writes the container `jobs` produce through a local InlineFrameSink —
/// the oracle side of the byte-identity check.
[[nodiscard]] bool write_synth_container(const std::string& path,
                                         const std::vector<SynthJob>& jobs,
                                         std::string* error = nullptr);

/// Percentage mix of misbehaving clients (the rest upload normally).
/// Percentages are of the client population; they must sum to <= 100.
struct FaultPlan {
  std::uint32_t slow_pct = 0;        ///< sleeps between batches
  std::uint32_t disconnect_pct = 0;  ///< closes mid-stream, never seals
  std::uint32_t duplicate_pct = 0;   ///< re-uploads its sealed record name
  std::uint32_t garbage_pct = 0;     ///< injects non-protocol bytes
  std::uint32_t oversized_pct = 0;   ///< ships a frame above the limit
};

struct LoadConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string token;
  std::size_t clients = 8;
  SynthShape shape;
  compress::DeflateLevel level = compress::DeflateLevel::kDefault;
  std::uint64_t seed = 1;
  std::size_t max_inflight = 4;
  FaultPlan faults;
  /// When non-empty, verify after the run: expected-sealed records are
  /// rebuilt from the seed and byte-compared against
  /// `<server_root>/<tenant>/<record>.cdcc`; expected-absent records must
  /// be absent. Requires filesystem access to the server root (loopback).
  std::string server_root;
  std::string tenant;
  std::string scratch_dir;  ///< where the verifier rebuilds containers
};

struct LoadReport {
  std::size_t clients = 0;
  std::size_t sealed = 0;
  std::size_t expected_failures = 0;    ///< faults that failed as planned
  std::size_t unexpected_failures = 0;  ///< anything else (test failure)
  std::uint64_t frames_acked = 0;
  std::uint64_t raw_bytes_acked = 0;
  double duration_s = 0.0;
  double frames_per_s = 0.0;
  double mb_per_s = 0.0;
  std::uint64_t latency_samples = 0;
  double ack_p50_ms = 0.0;
  double ack_p95_ms = 0.0;
  double ack_p99_ms = 0.0;
  std::size_t verified = 0;         ///< byte-identical records
  std::size_t verify_failures = 0;  ///< mismatched or wrongly-present
  std::vector<std::string> errors;  ///< diagnostics for the failures

  [[nodiscard]] bool ok() const noexcept {
    return unexpected_failures == 0 && verify_failures == 0;
  }
};

/// Runs the plan: one thread per client, all concurrent. Blocks until
/// every client finishes and (when configured) verification completes.
[[nodiscard]] LoadReport run_load(const LoadConfig& config);

}  // namespace cdc::net
