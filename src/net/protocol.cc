#include "net/protocol.h"

#include <cstring>

#include "compress/crc32.h"
#include "obs/metrics.h"
#include "support/binary.h"
#include "tool/frame.h"

namespace cdc::net {

namespace {

/// Upper bound on the fixed-position part of a wire message: magic + type +
/// stored_raw + three maximal (10-byte) varints. A buffer at least this
/// long that still fails the header parse is malformed, not truncated.
constexpr std::size_t kMaxHeaderBytes = 3 + 3 * 10;

constexpr std::size_t kCrcBytes = 4;

std::uint8_t level_byte(compress::DeflateLevel level) noexcept {
  return static_cast<std::uint8_t>(level);
}

bool level_from_byte(std::uint8_t b, compress::DeflateLevel& out) noexcept {
  if (b > static_cast<std::uint8_t>(compress::DeflateLevel::kBest))
    return false;
  out = static_cast<compress::DeflateLevel>(b);
  return true;
}

bool read_string(support::ByteReader& in, std::string& out) {
  std::span<const std::uint8_t> bytes;
  if (!in.try_sized_bytes(bytes)) return false;
  out.assign(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  return true;
}

void write_string(support::ByteWriter& out, const std::string& s) {
  out.sized_bytes({reinterpret_cast<const std::uint8_t*>(s.data()),
                   s.size()});
}

}  // namespace

const char* err_code_name(ErrCode code) noexcept {
  switch (code) {
    case ErrCode::kBadVersion: return "bad_version";
    case ErrCode::kBadToken: return "bad_token";
    case ErrCode::kBadMessage: return "bad_message";
    case ErrCode::kOversized: return "oversized";
    case ErrCode::kQuota: return "quota";
    case ErrCode::kBadRecord: return "bad_record";
    case ErrCode::kBusy: return "busy";
    case ErrCode::kInternal: return "internal";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_message(MsgType type, std::uint64_t meta,
                                         std::span<const std::uint8_t> body,
                                         compress::DeflateLevel level) {
  static obs::Counter& msgs = obs::counter("net.wire.msgs_encoded");
  tool::FrameJob job;
  job.codec = static_cast<std::uint8_t>(type);
  job.meta = meta;
  job.compress = level != compress::DeflateLevel::kStored;
  job.level = level;
  job.payload.assign(body.begin(), body.end());
  std::vector<std::uint8_t> framed = tool::encode_frame(job);
  const std::uint32_t crc = compress::crc32(framed);
  for (int i = 0; i < 4; ++i)
    framed.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  msgs.add(1);
  return framed;
}

std::vector<std::uint8_t> encode_hello(const Hello& hello) {
  support::ByteWriter body;
  write_string(body, hello.token);
  write_string(body, hello.record);
  body.u8(static_cast<std::uint8_t>(hello.intent));
  body.u8(level_byte(hello.level));
  // The flags byte exists only from version 2 on; a v1 body must stay
  // byte-identical to what v1 servers expect.
  if (hello.version >= 2) body.u8(hello.resumable ? 1u : 0u);
  // HELLO itself always rides at the fast level: the session level it
  // *requests* is not negotiated yet.
  return encode_message(MsgType::kHello, hello.version, body.view(),
                        compress::DeflateLevel::kFast);
}

bool decode_hello(const Message& msg, Hello& out) {
  if (msg.type != MsgType::kHello || msg.meta > 0xff) return false;
  out.version = static_cast<std::uint8_t>(msg.meta);
  support::ByteReader in(msg.body);
  std::uint8_t intent = 0;
  std::uint8_t level = 0;
  if (!read_string(in, out.token) || !read_string(in, out.record) ||
      !in.try_u8(intent) || !in.try_u8(level))
    return false;
  out.resumable = false;
  if (out.version >= 2) {
    std::uint8_t flags = 0;
    if (!in.try_u8(flags) || (flags & ~1u) != 0) return false;
    out.resumable = (flags & 1u) != 0;
  }
  if (!in.exhausted()) return false;
  if (intent > static_cast<std::uint8_t>(Intent::kReplay)) return false;
  out.intent = static_cast<Intent>(intent);
  return level_from_byte(level, out.level);
}

std::vector<std::uint8_t> encode_welcome(const Welcome& w) {
  support::ByteWriter body;
  body.u8(level_byte(w.level));
  body.varint(w.session_id);
  body.varint(w.limits.max_message_body);
  body.varint(w.limits.max_frame_bytes);
  body.varint(w.limits.max_batch_frames);
  return encode_message(MsgType::kWelcome, w.version, body.view(),
                        compress::DeflateLevel::kFast);
}

bool decode_welcome(const Message& msg, Welcome& out) {
  if (msg.type != MsgType::kWelcome || msg.meta > 0xff) return false;
  out.version = static_cast<std::uint8_t>(msg.meta);
  support::ByteReader in(msg.body);
  std::uint8_t level = 0;
  if (!in.try_u8(level) || !level_from_byte(level, out.level)) return false;
  return in.try_varint(out.session_id) &&
         in.try_varint(out.limits.max_message_body) &&
         in.try_varint(out.limits.max_frame_bytes) &&
         in.try_varint(out.limits.max_batch_frames) && in.exhausted();
}

std::vector<std::uint8_t> encode_put_frames(const FrameBatch& batch,
                                            compress::DeflateLevel level) {
  support::ByteWriter body;
  body.varint(batch.frames.size());
  for (const WireFrame& f : batch.frames) {
    body.svarint(f.key.rank);
    body.varint(f.key.callsite);
    body.u8(f.codec);
    body.varint(f.meta);
    const std::uint8_t flags =
        (f.compress ? 1u : 0u) | (f.epoch.has_value() ? 2u : 0u) |
        (f.pre_encoded ? 4u : 0u);
    body.u8(flags);
    if (f.epoch.has_value()) {
      body.varint(f.epoch->matched);
      body.varint(f.epoch->unmatched);
    }
    body.sized_bytes(f.payload);
  }
  return encode_message(MsgType::kPutFrames, batch.seq, body.view(), level);
}

bool decode_put_frames(const Message& msg, const Limits& limits,
                       FrameBatch& out) {
  if (msg.type != MsgType::kPutFrames) return false;
  out.seq = msg.meta;
  out.frames.clear();
  support::ByteReader in(msg.body);
  std::uint64_t count = 0;
  if (!in.try_varint(count) || count > limits.max_batch_frames) return false;
  out.frames.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    WireFrame f;
    std::int64_t rank = 0;
    std::uint64_t callsite = 0;
    std::uint8_t flags = 0;
    if (!in.try_svarint(rank) || !in.try_varint(callsite) ||
        !in.try_u8(f.codec) || !in.try_varint(f.meta) || !in.try_u8(flags))
      return false;
    f.key.rank = static_cast<minimpi::Rank>(rank);
    f.key.callsite = static_cast<minimpi::CallsiteId>(callsite);
    f.compress = (flags & 1u) != 0;
    f.pre_encoded = (flags & 4u) != 0;
    if ((flags & 2u) != 0) {
      runtime::EpochMeta epoch;
      if (!in.try_varint(epoch.matched) || !in.try_varint(epoch.unmatched))
        return false;
      f.epoch = epoch;
    }
    std::span<const std::uint8_t> payload;
    if (!in.try_sized_bytes(payload) ||
        payload.size() > limits.max_frame_bytes)
      return false;
    f.payload.assign(payload.begin(), payload.end());
    out.frames.push_back(std::move(f));
  }
  return in.exhausted();
}

std::vector<std::uint8_t> encode_put_ack(const PutAck& ack) {
  support::ByteWriter body;
  body.varint(ack.frames_ingested);
  body.varint(ack.bytes_ingested);
  return encode_message(MsgType::kPutAck, ack.seq, body.view(),
                        compress::DeflateLevel::kStored);
}

bool decode_put_ack(const Message& msg, PutAck& out) {
  if (msg.type != MsgType::kPutAck) return false;
  out.seq = msg.meta;
  support::ByteReader in(msg.body);
  return in.try_varint(out.frames_ingested) &&
         in.try_varint(out.bytes_ingested) && in.exhausted();
}

std::vector<std::uint8_t> encode_resumed(const Resumed& r) {
  support::ByteWriter body;
  body.varint(r.frames_ingested);
  body.varint(r.bytes_ingested);
  return encode_message(MsgType::kResumed, r.last_seq, body.view(),
                        compress::DeflateLevel::kStored);
}

bool decode_resumed(const Message& msg, Resumed& out) {
  if (msg.type != MsgType::kResumed) return false;
  out.last_seq = msg.meta;
  support::ByteReader in(msg.body);
  return in.try_varint(out.frames_ingested) &&
         in.try_varint(out.bytes_ingested) && in.exhausted();
}

std::vector<std::uint8_t> encode_sealed(const Sealed& sealed) {
  support::ByteWriter body;
  body.varint(sealed.container_bytes);
  body.varint(sealed.streams);
  body.varint(sealed.frames);
  return encode_message(MsgType::kSealed, 0, body.view(),
                        compress::DeflateLevel::kStored);
}

bool decode_sealed(const Message& msg, Sealed& out) {
  if (msg.type != MsgType::kSealed) return false;
  support::ByteReader in(msg.body);
  return in.try_varint(out.container_bytes) && in.try_varint(out.streams) &&
         in.try_varint(out.frames) && in.exhausted();
}

std::vector<std::uint8_t> encode_replay_window(const ReplayWindowReq& req) {
  support::ByteWriter body;
  body.varint(req.epoch_lo);
  body.varint(req.epoch_hi);
  return encode_message(MsgType::kReplayWindow, 0, body.view(),
                        compress::DeflateLevel::kStored);
}

bool decode_replay_window(const Message& msg, ReplayWindowReq& out) {
  if (msg.type != MsgType::kReplayWindow) return false;
  support::ByteReader in(msg.body);
  return in.try_varint(out.epoch_lo) && in.try_varint(out.epoch_hi) &&
         in.exhausted();
}

std::vector<std::uint8_t> encode_window_stream(const WindowStream& ws,
                                               compress::DeflateLevel level) {
  support::ByteWriter body;
  body.svarint(ws.key.rank);
  body.varint(ws.key.callsite);
  body.varint(ws.first_epoch);
  body.u8(ws.seeked ? 1 : 0);
  body.sized_bytes(ws.bytes);
  // Window bytes are already DEFLATE frames; recompressing them buys
  // nothing, so WINDOW_STREAM always rides stored unless asked otherwise.
  return encode_message(MsgType::kWindowStream, 0, body.view(), level);
}

bool decode_window_stream(const Message& msg, WindowStream& out) {
  if (msg.type != MsgType::kWindowStream) return false;
  support::ByteReader in(msg.body);
  std::int64_t rank = 0;
  std::uint64_t callsite = 0;
  std::uint8_t seeked = 0;
  std::span<const std::uint8_t> bytes;
  if (!in.try_svarint(rank) || !in.try_varint(callsite) ||
      !in.try_varint(out.first_epoch) || !in.try_u8(seeked) ||
      !in.try_sized_bytes(bytes) || !in.exhausted())
    return false;
  out.key.rank = static_cast<minimpi::Rank>(rank);
  out.key.callsite = static_cast<minimpi::CallsiteId>(callsite);
  out.seeked = seeked != 0;
  out.bytes.assign(bytes.begin(), bytes.end());
  return true;
}

std::vector<std::uint8_t> encode_window_done(const WindowDone& done) {
  support::ByteWriter body;
  body.varint(done.streams);
  body.u8(done.all_seeked ? 1 : 0);
  return encode_message(MsgType::kWindowDone, 0, body.view(),
                        compress::DeflateLevel::kStored);
}

bool decode_window_done(const Message& msg, WindowDone& out) {
  if (msg.type != MsgType::kWindowDone) return false;
  support::ByteReader in(msg.body);
  std::uint8_t all = 0;
  if (!in.try_varint(out.streams) || !in.try_u8(all) || !in.exhausted())
    return false;
  out.all_seeked = all != 0;
  return true;
}

std::vector<std::uint8_t> encode_inspect(InspectKind kind) {
  const std::uint8_t body[1] = {static_cast<std::uint8_t>(kind)};
  return encode_message(MsgType::kInspect, 0, body,
                        compress::DeflateLevel::kStored);
}

bool decode_inspect(const Message& msg, InspectKind& out) {
  if (msg.type != MsgType::kInspect || msg.body.size() != 1 ||
      msg.body[0] > static_cast<std::uint8_t>(InspectKind::kGaps))
    return false;
  out = static_cast<InspectKind>(msg.body[0]);
  return true;
}

std::vector<std::uint8_t> encode_report(const std::string& json) {
  return encode_message(
      MsgType::kReport, 0,
      {reinterpret_cast<const std::uint8_t*>(json.data()), json.size()},
      compress::DeflateLevel::kFast);
}

std::vector<std::uint8_t> encode_error(ErrCode code, const std::string& text) {
  return encode_message(
      MsgType::kError, static_cast<std::uint64_t>(code),
      {reinterpret_cast<const std::uint8_t*>(text.data()), text.size()},
      compress::DeflateLevel::kStored);
}

bool decode_error(const Message& msg, ErrCode& code, std::string& text) {
  if (msg.type != MsgType::kError) return false;
  if (msg.meta == 0 ||
      msg.meta > static_cast<std::uint64_t>(ErrCode::kInternal))
    return false;
  code = static_cast<ErrCode>(msg.meta);
  text.assign(reinterpret_cast<const char*>(msg.body.data()),
              msg.body.size());
  return true;
}

std::vector<std::uint8_t> encode_simple(MsgType type) {
  return encode_message(type, 0, {}, compress::DeflateLevel::kStored);
}

// --- WireParser ----------------------------------------------------------

void WireParser::feed(std::span<const std::uint8_t> bytes) {
  if (broken_) return;  // terminal; don't grow the buffer further
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

WireParser::Status WireParser::fail(std::string why) {
  broken_ = true;
  error_ = std::move(why);
  buffer_.clear();
  consumed_ = 0;
  obs::counter("net.wire.parse_errors").add(1);
  return Status::kMalformed;
}

WireParser::Status WireParser::next(Message* out) {
  if (broken_) return Status::kMalformed;
  const std::span<const std::uint8_t> avail =
      std::span<const std::uint8_t>(buffer_).subspan(consumed_);
  if (avail.empty()) return Status::kNeedMore;

  // Fixed fields + length varints. A parse failure here is truncation
  // unless we already hold the longest possible header.
  support::ByteReader header(avail);
  std::uint8_t magic = 0;
  std::uint8_t type = 0;
  std::uint8_t stored_raw = 0;
  std::uint64_t meta = 0;
  std::uint64_t raw_len = 0;
  std::uint64_t body_len = 0;
  if (!header.try_u8(magic)) return Status::kNeedMore;
  if (magic != tool::kFrameMagic)
    return fail("bad message magic byte");
  if (!header.try_u8(type) || !header.try_u8(stored_raw) ||
      !header.try_varint(meta) || !header.try_varint(raw_len) ||
      !header.try_varint(body_len)) {
    return avail.size() >= kMaxHeaderBytes
               ? fail("unparseable message header")
               : Status::kNeedMore;
  }
  if (stored_raw > 1) return fail("bad stored_raw flag");
  // Oversized length prefixes are rejected *before* waiting for the bytes
  // they announce — the hostile-length guard.
  if (raw_len > limits_.max_message_body)
    return fail("message raw length exceeds limit");
  if (body_len > limits_.max_message_body)
    return fail("message body length exceeds limit");
  if (stored_raw == 1 && raw_len != body_len)
    return fail("stored message with mismatched lengths");

  const std::size_t header_size = header.position();
  const std::size_t frame_size =
      header_size + static_cast<std::size_t>(body_len);
  if (avail.size() < frame_size + kCrcBytes) return Status::kNeedMore;

  const std::span<const std::uint8_t> frame = avail.subspan(0, frame_size);
  std::uint32_t wire_crc = 0;
  for (int i = 0; i < 4; ++i)
    wire_crc |= static_cast<std::uint32_t>(avail[frame_size + i]) << (8 * i);
  if (compress::crc32(frame) != wire_crc)
    return fail("message crc mismatch");

  // The CRC held, so the frame bytes are exactly what the peer sent; any
  // failure from here is a malformed *message*, not line noise. Reuse the
  // storage-frame decoder for the inflate + raw_len validation.
  support::ByteReader frame_reader(frame);
  std::optional<tool::Frame> decoded = tool::read_frame(frame_reader);
  if (!decoded.has_value() || !frame_reader.exhausted())
    return fail("message frame decode failed");

  out->type = static_cast<MsgType>(decoded->codec);
  out->meta = decoded->meta;
  out->body = std::move(decoded->payload);
  consumed_ += frame_size + kCrcBytes;
  // Compact once the parsed-off prefix dominates, so a long-lived
  // connection doesn't accrete its whole history.
  if (consumed_ > 4096 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  obs::counter("net.wire.msgs_decoded").add(1);
  return Status::kMessage;
}

}  // namespace cdc::net
