// The CDC record/replay service wire protocol (DESIGN.md §13).
//
// Every message on the wire is one *tool frame* — the same length-prefixed
// container the storage layer already writes (tool/frame.h):
//
//   u8 0xC4 | u8 type | u8 stored_raw | varint meta |
//   varint raw_len | varint body_len | body | u32 crc32
//
// with the frame's codec byte repurposed as the message type, the meta
// varint as a per-type scalar (protocol version in HELLO, batch sequence
// number in PUT_FRAMES, error code in ERROR), and a CRC-32 of every
// preceding message byte appended — the container-frame trick applied to
// the socket. Message bodies ride DEFLATE-compressed at the session's
// negotiated level unless that would grow them (stored_raw), so the wire
// format inherits the codec stack for free.
//
// The protocol is versioned (HELLO carries the client's version, WELCOME
// the server's; the server rejects versions outside its supported range
// with kErrBadVersion) and hard-limited: a length prefix above
// Limits::max_message_body aborts the parse *before* any buffering, so a
// hostile 2^60-byte announcement costs the server nothing.
//
// Conversation shape (client → server unless noted):
//   HELLO(token, record, intent, level)  → WELCOME | ERROR
//   intent = kIngest:  [RESUME → RESUMED(last_durable_seq)]   (v2 only)
//                      PUT_FRAMES* → PUT_ACK (per batch, ← server)
//                      SEAL → SEALED
//   intent = kReplay:  REPLAY_WINDOW(lo, hi) → WINDOW_STREAM* WINDOW_DONE
//                      INSPECT(kind) → REPORT
//   BYE ends any session gracefully.
//
// Version 2 adds crash-safe resumable ingest. A v2 HELLO carries a flags
// byte (bit 0 = resumable); when set, the server journals per-batch
// durability next to the container and a reconnecting client may reopen
// the same record, ask RESUME, and learn from RESUMED which batch prefix
// is already fsync-durable — batches at or below that sequence are
// deduplicated server-side, so re-sending from last_durable_seq+1 yields
// a byte-identical sealed container. v1 clients are unchanged: HELLO
// version 1 has no flags byte and the server never requires RESUME.
//
// Parsing is incremental and hostile-input-safe: WireParser consumes raw
// socket bytes and yields complete, CRC-verified messages, `kNeedMore`
// while a message is still in flight, or a terminal `kMalformed` with a
// diagnostic — it never aborts, whatever the bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "compress/deflate.h"
#include "runtime/storage.h"

namespace cdc::net {

inline constexpr std::uint8_t kProtocolVersion = 2;
/// Oldest client version the server still speaks.
inline constexpr std::uint8_t kMinProtocolVersion = 1;

/// Message types (the tool-frame codec byte).
enum class MsgType : std::uint8_t {
  kHello = 1,
  kWelcome = 2,
  kPutFrames = 3,
  kPutAck = 4,
  kSeal = 5,
  kSealed = 6,
  kReplayWindow = 7,
  kWindowStream = 8,
  kWindowDone = 9,
  kInspect = 10,
  kReport = 11,
  kError = 12,
  kBye = 13,
  kResume = 14,   ///< v2: client asks for the durable high-water mark
  kResumed = 15,  ///< v2: server replies with last_durable_seq + totals
};

/// ERROR message codes (the meta varint of a kError message).
enum class ErrCode : std::uint64_t {
  kBadVersion = 1,   ///< HELLO version outside [kMinProtocolVersion, ours]
  kBadToken = 2,     ///< unknown tenant token
  kBadMessage = 3,   ///< malformed or out-of-sequence message
  kOversized = 4,    ///< frame/batch above the negotiated limits
  kQuota = 5,        ///< tenant byte or record quota exhausted
  kBadRecord = 6,    ///< unknown record / record not sealed / name taken
  kBusy = 7,         ///< server shutting down or session aborted
  kInternal = 8,     ///< server-side failure (I/O, ...)
};

[[nodiscard]] const char* err_code_name(ErrCode code) noexcept;

/// What a HELLO wants to do with its record.
enum class Intent : std::uint8_t {
  kIngest = 0,   ///< create the record and stream frames in
  kReplay = 1,   ///< open a sealed record for windowed replay / inspection
};

/// Hard parser limits. Negotiated per session in WELCOME (the server may
/// lower them), but never raised above these compile-time bounds.
struct Limits {
  /// Max decompressed body of one message. PUT_FRAMES batches and window
  /// stream bytes must fit; 16 MiB is ~100x the largest chunk the recorder
  /// seals.
  std::uint64_t max_message_body = 16ull << 20;
  /// Max raw payload of a single record frame inside a batch.
  std::uint64_t max_frame_bytes = 4ull << 20;
  /// Max frames per PUT_FRAMES batch.
  std::uint64_t max_batch_frames = 4096;
};

/// One parsed wire message.
struct Message {
  MsgType type = MsgType::kError;
  std::uint64_t meta = 0;
  std::vector<std::uint8_t> body;  ///< decompressed
};

// --- typed payloads ------------------------------------------------------

struct Hello {
  std::uint8_t version = kProtocolVersion;  ///< rides in the meta varint
  std::string token;
  std::string record;
  Intent intent = Intent::kIngest;
  compress::DeflateLevel level = compress::DeflateLevel::kDefault;
  /// v2 flags bit 0: journal this ingest session so it survives a crash
  /// or disconnect and can be reopened by a later resumable HELLO. Never
  /// encoded for version 1 (v1 bodies have no flags byte).
  bool resumable = false;
};

struct Welcome {
  std::uint8_t version = kProtocolVersion;  ///< rides in the meta varint
  compress::DeflateLevel level = compress::DeflateLevel::kDefault;
  std::uint64_t session_id = 0;
  Limits limits;
};

/// One record frame inside a PUT_FRAMES batch: the network twin of
/// tool::FrameJob, plus a pre-encoded escape hatch for re-uploading frames
/// that are already tool-frame bytes (duplicate-upload and mirror flows).
struct WireFrame {
  runtime::StreamKey key;
  std::uint8_t codec = 0;
  std::uint64_t meta = 0;
  bool compress = true;
  bool pre_encoded = false;  ///< payload is finished tool-frame bytes
  std::optional<runtime::EpochMeta> epoch;
  std::vector<std::uint8_t> payload;
};

struct FrameBatch {
  std::uint64_t seq = 0;  ///< rides in the meta varint; echoed by PUT_ACK
  std::vector<WireFrame> frames;
};

struct PutAck {
  std::uint64_t seq = 0;  ///< rides in the meta varint
  std::uint64_t frames_ingested = 0;  ///< session total after this batch
  std::uint64_t bytes_ingested = 0;   ///< raw payload bytes, session total
};

struct Sealed {
  std::uint64_t container_bytes = 0;
  std::uint64_t streams = 0;
  std::uint64_t frames = 0;
};

/// RESUMED: the server's durable high-water mark for a reopened session.
/// Batches with seq <= last_seq are already fsync-durable (and journaled);
/// the client re-sends from last_seq + 1. The totals mirror what the
/// PUT_ACK for batch last_seq reported.
struct Resumed {
  std::uint64_t last_seq = 0;  ///< rides in the meta varint
  std::uint64_t frames_ingested = 0;
  std::uint64_t bytes_ingested = 0;
};

struct ReplayWindowReq {
  std::uint64_t epoch_lo = 0;
  std::uint64_t epoch_hi = 0;
};

struct WindowStream {
  runtime::StreamKey key;
  std::uint64_t first_epoch = 0;
  bool seeked = false;
  std::vector<std::uint8_t> bytes;  ///< concatenated frame payloads
};

struct WindowDone {
  std::uint64_t streams = 0;
  bool all_seeked = false;
};

enum class InspectKind : std::uint8_t {
  kVerify = 0,    ///< ContainerReader::verify summary
  kPipeline = 1,  ///< obs::PipelineReport of the container
  kGaps = 2,      ///< degraded-replay gap report
};

// --- encode --------------------------------------------------------------

/// Encodes a complete wire message: tool frame (type in the codec byte,
/// `meta` in the meta varint, `body` DEFLATE-compressed at `level`) plus
/// the trailing CRC-32. Deterministic for a given (message, level).
[[nodiscard]] std::vector<std::uint8_t> encode_message(
    MsgType type, std::uint64_t meta, std::span<const std::uint8_t> body,
    compress::DeflateLevel level = compress::DeflateLevel::kDefault);

[[nodiscard]] std::vector<std::uint8_t> encode_hello(const Hello& hello);
[[nodiscard]] std::vector<std::uint8_t> encode_welcome(const Welcome& w);
[[nodiscard]] std::vector<std::uint8_t> encode_put_frames(
    const FrameBatch& batch, compress::DeflateLevel level);
[[nodiscard]] std::vector<std::uint8_t> encode_put_ack(const PutAck& ack);
[[nodiscard]] std::vector<std::uint8_t> encode_resumed(const Resumed& r);
[[nodiscard]] std::vector<std::uint8_t> encode_sealed(const Sealed& sealed);
[[nodiscard]] std::vector<std::uint8_t> encode_replay_window(
    const ReplayWindowReq& req);
[[nodiscard]] std::vector<std::uint8_t> encode_window_stream(
    const WindowStream& ws, compress::DeflateLevel level);
[[nodiscard]] std::vector<std::uint8_t> encode_window_done(
    const WindowDone& done);
[[nodiscard]] std::vector<std::uint8_t> encode_inspect(InspectKind kind);
[[nodiscard]] std::vector<std::uint8_t> encode_report(const std::string& json);
[[nodiscard]] std::vector<std::uint8_t> encode_error(ErrCode code,
                                                     const std::string& text);
[[nodiscard]] std::vector<std::uint8_t> encode_simple(MsgType type);

// --- typed decode (body → struct; false on malformed) --------------------

[[nodiscard]] bool decode_hello(const Message& msg, Hello& out);
[[nodiscard]] bool decode_welcome(const Message& msg, Welcome& out);
[[nodiscard]] bool decode_put_frames(const Message& msg, const Limits& limits,
                                     FrameBatch& out);
[[nodiscard]] bool decode_put_ack(const Message& msg, PutAck& out);
[[nodiscard]] bool decode_resumed(const Message& msg, Resumed& out);
[[nodiscard]] bool decode_sealed(const Message& msg, Sealed& out);
[[nodiscard]] bool decode_replay_window(const Message& msg,
                                        ReplayWindowReq& out);
[[nodiscard]] bool decode_window_stream(const Message& msg, WindowStream& out);
[[nodiscard]] bool decode_window_done(const Message& msg, WindowDone& out);
[[nodiscard]] bool decode_inspect(const Message& msg, InspectKind& out);
/// ERROR carries its code in meta and a UTF-8 diagnostic as the body.
[[nodiscard]] bool decode_error(const Message& msg, ErrCode& code,
                                std::string& text);

// --- incremental parse ---------------------------------------------------

/// Streaming message parser over raw socket bytes. Feed bytes as they
/// arrive; next() yields complete CRC-verified messages. A parse error is
/// terminal: the connection's byte stream is unrecoverable past a framing
/// error (lengths can no longer be trusted), matching the per-connection
/// error contract — the server sends ERROR and closes.
class WireParser {
 public:
  explicit WireParser(const Limits& limits = {}) : limits_(limits) {}

  /// Appends raw bytes from the socket.
  void feed(std::span<const std::uint8_t> bytes);

  enum class Status {
    kMessage,   ///< *out filled with the next message
    kNeedMore,  ///< the buffered bytes end mid-message
    kMalformed, ///< terminal framing error; see error()
  };

  /// Extracts the next complete message, if any.
  [[nodiscard]] Status next(Message* out);

  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  /// Bytes buffered but not yet consumed (bounded by one message).
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size() - consumed_;
  }

 private:
  [[nodiscard]] Status fail(std::string why);

  Limits limits_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  ///< parsed-off prefix, compacted lazily
  bool broken_ = false;
  std::string error_;
};

}  // namespace cdc::net
