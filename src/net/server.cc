#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <set>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "store/compression_service.h"
#include "store/container_store.h"
#include "store/mpmc_queue.h"
#include "store/quota.h"
#include "store/session_journal.h"
#include "tool/degraded.h"
#include "tool/frame.h"
#include "tool/frame_sink.h"
#include "tool/pipeline_inspect.h"

namespace cdc::net {

namespace fs = std::filesystem;

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Record names become file names under the tenant directory, so the
/// grammar is strict: no separators, no dotfiles, no traversal.
bool valid_record_name(const std::string& name) {
  if (name.empty() || name.size() > 128 || name[0] == '.') return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

/// The container header: magic + version + 3 reserved bytes. A journaled
/// session with zero durable batches has exactly this prefix on disk.
constexpr std::uint64_t kContainerHeaderBytes =
    sizeof(store::kContainerMagic) + 4;

/// Cheap sealed-ness probe for the startup scan: a sealed container ends
/// in the 8-byte stream-index footer magic. No full open/parse needed.
bool container_sealed_on_disk(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.good()) return false;
  const auto size = static_cast<std::int64_t>(in.tellg());
  if (size < 8) return false;
  in.seekg(size - 8);
  std::uint8_t tail[8] = {};
  in.read(reinterpret_cast<char*>(tail), 8);
  return in.gcount() == 8 &&
         std::memcmp(tail, store::kFooterMagic, sizeof tail) == 0;
}

}  // namespace

struct Server::Impl {
  // --- session-worker → event-thread handoff -----------------------------

  struct Completion {
    enum class Kind { kAck, kSealed, kFailed };
    Kind kind = Kind::kAck;
    PutAck ack;
    Sealed sealed;
    ErrCode code = ErrCode::kInternal;
    std::string text;
  };

  struct WorkItem {
    bool seal = false;
    FrameBatch batch;
  };

  /// One in-flight record upload: the bounded queue, the worker that
  /// drains it into the storage stack, and the stack itself.
  struct IngestSession {
    std::string tenant;
    std::string record;
    std::string path;
    compress::DeflateLevel level = compress::DeflateLevel::kDefault;
    std::uint64_t raw_budget = 0;  ///< tenant bytes left at open

    std::unique_ptr<store::ContainerStore> container;
    store::QuotaStore quota;
    std::unique_ptr<runtime::RecordStore> wrapped;  ///< store_wrapper seam
    runtime::RecordStore* target = nullptr;  ///< what the sink stack writes
    std::unique_ptr<store::CompressionService> service;  ///< kService only
    std::unique_ptr<tool::FrameSink> sink;
    store::BoundedMpmcQueue<WorkItem> queue;

    std::mutex done_mutex;
    std::vector<Completion> done;

    std::atomic<bool> failed{false};
    bool sealed = false;        ///< event thread
    bool seal_enqueued = false; ///< event thread
    std::uint64_t outstanding = 0;  ///< event thread: enqueued − completed
    std::uint64_t frames = 0;   ///< worker thread until sealed
    std::uint64_t raw_bytes = 0;

    // Crash-safe resume state. committed_seq is the durable high-water
    // mark: the worker advances it after flush + journal fsync, and the
    // event thread reads it only while the worker is provably idle (a
    // RESUME before any PUT on the connection).
    bool resumable = false;
    std::unique_ptr<store::SessionJournal> journal;  ///< worker after start
    std::atomic<std::uint64_t> committed_seq{0};
    /// Worker sets this after the footer is durable; lets teardown tell a
    /// sealed-but-unreplied session from a genuine partial.
    std::atomic<bool> sealed_on_disk{false};

    obs::Counter* tenant_frames = nullptr;
    obs::Counter* tenant_bytes = nullptr;

    std::thread worker;

    IngestSession(std::string tenant_name, std::string record_name,
                  std::string file_path, std::uint64_t budget,
                  std::uint64_t quota_budget, std::size_t queue_batches,
                  std::unique_ptr<store::ContainerStore> store)
        : tenant(std::move(tenant_name)),
          record(std::move(record_name)),
          path(std::move(file_path)),
          raw_budget(budget),
          container(std::move(store)),
          // Hard backstop at the store seam; the worker's raw-byte check
          // below trips first in normal operation (raw >= stored).
          quota(container.get(), quota_budget),
          queue(queue_batches) {}
  };

  struct ReplaySession {
    std::string path;
    std::unique_ptr<store::ContainerReader> reader;
  };

  struct TenantState {
    TenantConfig config;
    std::set<std::string> active;  ///< records mid-ingest
    std::set<std::string> sealed;
    /// Journaled partials awaiting a resumable HELLO (parked on disconnect
    /// or rebuilt by the startup scan). The journal file is the source of
    /// truth; this set only reserves the names.
    std::set<std::string> resumable;
    std::uint64_t used_raw_bytes = 0;
  };

  struct Conn {
    int fd = -1;
    WireParser parser;
    std::deque<std::vector<std::uint8_t>> tx;
    std::size_t tx_off = 0;
    enum class Phase { kAwaitHello, kIngest, kReplay, kClosed } phase =
        Phase::kAwaitHello;
    TenantState* tenant = nullptr;
    std::shared_ptr<IngestSession> ingest;
    std::unique_ptr<ReplaySession> replay;
    std::optional<WorkItem> parked;  ///< backpressure: read interest off
    bool close_after_flush = false;
    bool puts_seen = false;   ///< RESUME is only legal before the first PUT
    bool goaway_sent = false; ///< drain(): GOAWAY ERROR already queued

    explicit Conn(int f, const Limits& limits) : fd(f), parser(limits) {}
    [[nodiscard]] bool suspended() const noexcept {
      return parked.has_value();
    }
  };

  explicit Impl(ServerConfig cfg) : config(std::move(cfg)) {
    for (const TenantConfig& t : config.tenants) {
      TenantState state;
      state.config = t;
      tenants.emplace(t.token, std::move(state));
    }
  }

  // --- lifecycle ---------------------------------------------------------

  bool start(std::string* error) {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) return fail_start(error, "socket");
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config.port);
    if (::inet_pton(AF_INET, config.host.c_str(), &addr.sin_addr) != 1)
      return fail_start(error, "inet_pton");
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0)
      return fail_start(error, "bind");
    if (::listen(listen_fd, config.listen_backlog) != 0)
      return fail_start(error, "listen");
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0)
      bound_port = ntohs(bound.sin_port);
    if (!set_nonblocking(listen_fd)) return fail_start(error, "fcntl");
    if (::pipe(wake_pipe) != 0) return fail_start(error, "pipe");
    set_nonblocking(wake_pipe[0]);
    set_nonblocking(wake_pipe[1]);
    std::error_code ec;
    fs::create_directories(config.root_dir, ec);
    if (ec) return fail_start(error, "root_dir");
    recover_sessions();
    stop_requested.store(false, std::memory_order_relaxed);
    drain_requested.store(false, std::memory_order_relaxed);
    event_thread = std::thread([this] { event_loop(); });
    return true;
  }

  /// Startup scan over the store root: every `<record>.cdcc.cdcj` sidecar
  /// is either a finished seal whose journal outlived it (drop the
  /// journal), a valid resumable partial (reserve the name in the resume
  /// table — the heavy container reopen is deferred to the resuming
  /// HELLO), or garbage (drop both files). Unsealed containers with no
  /// journal are pre-resume leftovers and are discarded, restoring the
  /// "a record name means a sealed container or nothing" invariant for
  /// non-resumable uploads.
  void recover_sessions() {
    static obs::Counter& recovered = obs::counter("net.server.resume.recovered");
    static obs::Counter& discarded = obs::counter("net.server.resume.discarded");
    for (auto& [token, tenant] : tenants) {
      const fs::path dir = fs::path(config.root_dir) / tenant.config.name;
      std::error_code ec;
      if (!fs::is_directory(dir, ec)) continue;
      for (const auto& entry : fs::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        constexpr const char* kSuffix = ".cdcc";
        constexpr std::size_t kSuffixLen = 5;
        if (name.size() <= kSuffixLen ||
            name.compare(name.size() - kSuffixLen, kSuffixLen, kSuffix) != 0)
          continue;
        const std::string record = name.substr(0, name.size() - kSuffixLen);
        const std::string path = entry.path().string();
        const std::string journal_path = store::session_journal_path(path);
        if (container_sealed_on_disk(entry.path())) {
          // Crash between seal() and journal removal: the record is whole.
          fs::remove(journal_path, ec);
          continue;
        }
        const std::optional<store::JournalState> state =
            fs::exists(journal_path, ec)
                ? store::read_session_journal(journal_path)
                : std::nullopt;
        if (state.has_value() && state->record == record &&
            state->tenant == tenant.config.name) {
          tenant.resumable.insert(record);
          recovered.add(1);
          stat_sessions_recovered.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // No (valid) journal: an unresumable partial. Discard it with its
        // sidecars so the name frees up.
        fs::remove(path, ec);
        fs::remove(journal_path, ec);
        fs::remove(path + ".cdcq", ec);
        discarded.add(1);
        stat_partials_discarded.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  bool fail_start(std::string* error, const char* what) {
    if (error != nullptr)
      *error = std::string(what) + ": " + std::strerror(errno);
    if (listen_fd >= 0) ::close(listen_fd);
    listen_fd = -1;
    return false;
  }

  void stop() {
    if (event_thread.joinable()) {
      stop_requested.store(true, std::memory_order_relaxed);
      wake();
      event_thread.join();
    }
    close_fds();
  }

  bool drain(std::uint32_t timeout_ms) {
    if (!event_thread.joinable()) return true;
    // The deadline is published before the flag: the event thread reads it
    // only after its acquire-load of drain_requested sees the store.
    drain_deadline = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(timeout_ms);
    drain_requested.store(true, std::memory_order_release);
    wake();
    event_thread.join();
    close_fds();
    return drained_clean.load(std::memory_order_relaxed);
  }

  void close_fds() {
    if (listen_fd >= 0) ::close(listen_fd);
    listen_fd = -1;
    if (wake_pipe[0] >= 0) ::close(wake_pipe[0]);
    if (wake_pipe[1] >= 0) ::close(wake_pipe[1]);
    wake_pipe[0] = wake_pipe[1] = -1;
  }

  void wake() const {
    if (wake_pipe[1] >= 0) {
      const std::uint8_t byte = 1;
      [[maybe_unused]] const auto n = ::write(wake_pipe[1], &byte, 1);
    }
  }

  // --- event loop --------------------------------------------------------

  void event_loop() {
    static obs::Counter& bytes_in = obs::counter("net.bytes_in");
    std::vector<pollfd> fds;
    while (!stop_requested.load(std::memory_order_relaxed)) {
      const bool draining = drain_requested.load(std::memory_order_acquire);
      fds.clear();
      // Draining: stop accepting (poll ignores fd −1) and stop reading
      // every connection — in-flight batches finish, nothing new lands.
      fds.push_back({draining ? -1 : listen_fd, POLLIN, 0});
      fds.push_back({wake_pipe[0], POLLIN, 0});
      for (const auto& conn : conns) {
        short events = 0;
        if (!draining && !conn->suspended() && !conn->close_after_flush)
          events |= POLLIN;
        if (!conn->tx.empty()) events |= POLLOUT;
        fds.push_back({conn->fd, events, 0});
      }
      const int ready = ::poll(fds.data(), fds.size(), 100);
      if (ready < 0 && errno != EINTR) break;

      if ((fds[1].revents & POLLIN) != 0) {
        std::uint8_t drain[256];
        while (::read(wake_pipe[0], drain, sizeof drain) > 0) {
        }
      }

      // Worker completions first: acks unblock client windows, and a
      // drained queue is what lets parked batches resume below.
      for (auto& conn : conns) drain_completions(*conn);
      for (auto& conn : conns) retry_parked(*conn);

      if (draining) {
        goaway_pass();
        if (conns.empty()) {
          drained_clean.store(true, std::memory_order_relaxed);
          break;
        }
        if (std::chrono::steady_clock::now() >= drain_deadline) break;
      }

      if ((fds[0].revents & POLLIN) != 0) accept_new();

      // Only the connections that were polled this round: accept_new()
      // may have grown `conns` past the pollfd array, and those fresh
      // sockets have no revents yet (they are polled next round).
      const std::size_t polled = fds.size() - 2;
      for (std::size_t i = 0; i < polled; ++i) {
        Conn& conn = *conns[i];
        const pollfd& pfd = fds[2 + i];
        if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
            (pfd.revents & POLLIN) == 0) {
          conn.close_after_flush = true;
          conn.tx.clear();
          continue;
        }
        if ((pfd.revents & POLLIN) != 0) {
          bool peer_closed = false;
          std::uint8_t buf[65536];
          while (true) {
            const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
            if (n > 0) {
              bytes_in.add(static_cast<std::uint64_t>(n));
              conn.parser.feed({buf, static_cast<std::size_t>(n)});
              if (n < static_cast<ssize_t>(sizeof buf)) break;
              continue;
            }
            if (n == 0) {
              peer_closed = true;
            }
            break;
          }
          dispatch(conn);
          if (peer_closed) {
            conn.close_after_flush = true;
            conn.tx.clear();
          }
        }
        if ((pfd.revents & POLLOUT) != 0) flush_tx(conn);
      }

      reap_closed();
    }

    // Shutdown: abort whatever is still in flight and close everything.
    for (auto& conn : conns) teardown(*conn);
    conns.clear();
  }

  /// One drain-mode sweep: tell every connection that can hear it to go
  /// away. Idle connections get the ERROR immediately; ingest connections
  /// only once their enqueued batches are fully completed (acked/journaled)
  /// — the ERROR then lands *after* the final PUT_ACK in the tx queue, so
  /// a resumable client knows exactly what survived.
  void goaway_pass() {
    for (auto& conn : conns) {
      if (conn->goaway_sent || conn->close_after_flush ||
          conn->phase == Conn::Phase::kClosed)
        continue;
      if (conn->ingest != nullptr &&
          (conn->ingest->outstanding > 0 || conn->parked.has_value()))
        continue;
      conn->goaway_sent = true;
      send_error(*conn, ErrCode::kBusy, "server draining; resume later");
    }
  }

  void accept_new() {
    static obs::Counter& accepted = obs::counter("net.conns.accepted");
    while (true) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) return;
      set_nonblocking(fd);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      conns.push_back(std::make_unique<Conn>(fd, config.limits));
      accepted.add(1);
      stat_connections_accepted.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // --- per-connection machinery ------------------------------------------

  void send_msg(Conn& conn, std::vector<std::uint8_t> msg) {
    obs::counter("net.msgs_out").add(1);
    conn.tx.push_back(std::move(msg));
    flush_tx(conn);
  }

  void send_error(Conn& conn, ErrCode code, const std::string& text) {
    static obs::Counter& errors = obs::counter("net.errors_sent");
    errors.add(1);
    stat_errors_sent.fetch_add(1, std::memory_order_relaxed);
    send_msg(conn, encode_error(code, text));
    conn.close_after_flush = true;
  }

  void flush_tx(Conn& conn) {
    static obs::Counter& bytes_out = obs::counter("net.bytes_out");
    while (!conn.tx.empty()) {
      const std::vector<std::uint8_t>& front = conn.tx.front();
      const ssize_t n =
          ::send(conn.fd, front.data() + conn.tx_off,
                 front.size() - conn.tx_off, MSG_NOSIGNAL);
      if (n <= 0) return;  // EAGAIN or error; POLLOUT/teardown handles it
      bytes_out.add(static_cast<std::uint64_t>(n));
      conn.tx_off += static_cast<std::size_t>(n);
      if (conn.tx_off == front.size()) {
        conn.tx.pop_front();
        conn.tx_off = 0;
      }
    }
  }

  void dispatch(Conn& conn) {
    static obs::Counter& msgs_in = obs::counter("net.msgs_in");
    while (!conn.suspended() && !conn.close_after_flush) {
      Message msg;
      const WireParser::Status status = conn.parser.next(&msg);
      if (status == WireParser::Status::kNeedMore) return;
      if (status == WireParser::Status::kMalformed) {
        send_error(conn, ErrCode::kBadMessage, conn.parser.error());
        return;
      }
      msgs_in.add(1);
      handle(conn, msg);
    }
  }

  void handle(Conn& conn, const Message& msg) {
    if (msg.type == MsgType::kBye) {
      conn.close_after_flush = true;
      return;
    }
    switch (conn.phase) {
      case Conn::Phase::kAwaitHello:
        handle_hello(conn, msg);
        return;
      case Conn::Phase::kIngest:
        handle_ingest(conn, msg);
        return;
      case Conn::Phase::kReplay:
        handle_replay(conn, msg);
        return;
      case Conn::Phase::kClosed:
        return;
    }
  }

  void handle_hello(Conn& conn, const Message& msg) {
    // The version gate precedes body decode: the version rides in the
    // frame meta, and a future version's HELLO body may legitimately
    // have a shape this server cannot parse — "too new" must win over
    // "malformed".
    if (msg.type == MsgType::kHello &&
        (msg.meta < kMinProtocolVersion || msg.meta > kProtocolVersion)) {
      send_error(conn, ErrCode::kBadVersion,
                 "unsupported protocol version " +
                     std::to_string(msg.meta));
      return;
    }
    Hello hello;
    if (!decode_hello(msg, hello)) {
      send_error(conn, ErrCode::kBadMessage, "expected HELLO");
      return;
    }
    const auto it = tenants.find(hello.token);
    if (it == tenants.end()) {
      send_error(conn, ErrCode::kBadToken, "unknown token");
      return;
    }
    TenantState& tenant = it->second;
    if (!valid_record_name(hello.record)) {
      send_error(conn, ErrCode::kBadRecord, "invalid record name");
      return;
    }
    const fs::path dir = fs::path(config.root_dir) / tenant.config.name;
    const std::string path = (dir / (hello.record + ".cdcc")).string();

    Welcome welcome;
    // Speak the client's dialect: a v1 client gets a v1 WELCOME and never
    // sees the resume machinery.
    welcome.version = std::min(hello.version, kProtocolVersion);
    welcome.level = std::min(hello.level, config.max_level);
    welcome.session_id = ++next_session_id;
    welcome.limits = config.limits;
    const bool wants_resume = hello.version >= 2 && hello.resumable;

    if (hello.intent == Intent::kIngest) {
      if (wants_resume && tenant.resumable.count(hello.record) != 0) {
        // Reopen the journaled partial at its durable prefix. The name
        // moves resumable → active; record/byte quota was already charged
        // against this upload when it first opened.
        conn.ingest =
            open_resumed_ingest(tenant, hello.record, path, &welcome.level);
        if (conn.ingest == nullptr) {
          // The journal or container failed validation: the durable state
          // is unrecoverable, so free the name rather than wedge it. The
          // client cannot transparently re-send (its acked prefix is
          // gone); it must hear the truth and start over.
          tenant.resumable.erase(hello.record);
          std::error_code ec;
          fs::remove(path, ec);
          fs::remove(store::session_journal_path(path), ec);
          fs::remove(path + ".cdcq", ec);
          stat_partials_discarded.fetch_add(1, std::memory_order_relaxed);
          obs::counter("net.server.resume.discarded").add(1);
          send_error(conn, ErrCode::kInternal,
                     "record '" + hello.record + "' cannot be resumed");
          return;
        }
        tenant.resumable.erase(hello.record);
        tenant.active.insert(hello.record);
        conn.tenant = &tenant;
        conn.phase = Conn::Phase::kIngest;
        obs::counter("net.sessions.opened").add(1);
        obs::counter("net.server.resume.sessions").add(1);
        stat_sessions_opened.fetch_add(1, std::memory_order_relaxed);
        stat_sessions_resumed.fetch_add(1, std::memory_order_relaxed);
        send_msg(conn, encode_welcome(welcome));
        return;
      }
      if (tenant.active.size() + tenant.sealed.size() +
              tenant.resumable.size() >=
          tenant.config.max_records) {
        send_error(conn, ErrCode::kQuota, "record quota exhausted");
        return;
      }
      if (tenant.used_raw_bytes >= tenant.config.max_bytes) {
        send_error(conn, ErrCode::kQuota, "byte quota exhausted");
        return;
      }
      if (tenant.active.count(hello.record) != 0 ||
          tenant.sealed.count(hello.record) != 0 || fs::exists(path)) {
        send_error(conn, ErrCode::kBadRecord,
                   "record '" + hello.record + "' already exists");
        return;
      }
      std::error_code ec;
      fs::create_directories(dir, ec);
      if (ec) {
        send_error(conn, ErrCode::kInternal, "cannot create tenant dir");
        return;
      }
      conn.tenant = &tenant;
      conn.ingest = open_ingest(tenant, hello.record, path, welcome.level,
                                wants_resume);
      if (conn.ingest == nullptr) {
        send_error(conn, ErrCode::kInternal, "cannot open record");
        return;
      }
      tenant.active.insert(hello.record);
      conn.phase = Conn::Phase::kIngest;
      obs::counter("net.sessions.opened").add(1);
      stat_sessions_opened.fetch_add(1, std::memory_order_relaxed);
      send_msg(conn, encode_welcome(welcome));
      return;
    }

    // kReplay: the record must already be a sealed, verifiable container.
    if (tenant.sealed.count(hello.record) == 0 && !fs::exists(path)) {
      send_error(conn, ErrCode::kBadRecord,
                 "record '" + hello.record + "' does not exist");
      return;
    }
    std::string open_error;
    auto reader = store::ContainerReader::open(path, &open_error);
    if (reader == nullptr || !reader->index_ok()) {
      send_error(conn, ErrCode::kBadRecord,
                 "record not readable: " +
                     (reader == nullptr ? open_error
                                        : reader->index_error()));
      return;
    }
    // Full sweep up front so the trusted read paths (read_stream_window
    // aborts on CRC mismatch) can never be reached with damaged bytes.
    if (!reader->verify().ok) {
      send_error(conn, ErrCode::kBadRecord, "record fails verification");
      return;
    }
    conn.tenant = &tenant;
    conn.replay = std::make_unique<ReplaySession>();
    conn.replay->path = path;
    conn.replay->reader = std::move(reader);
    conn.phase = Conn::Phase::kReplay;
    send_msg(conn, encode_welcome(welcome));
  }

  std::shared_ptr<IngestSession> open_ingest(TenantState& tenant,
                                             const std::string& record,
                                             const std::string& path,
                                             compress::DeflateLevel level,
                                             bool resumable) {
    const std::uint64_t budget =
        tenant.config.max_bytes - tenant.used_raw_bytes;
    std::shared_ptr<IngestSession> session;
    try {
      session = std::make_shared<IngestSession>(
          tenant.config.name, record, path, budget,
          budget + (budget >> 2) + 4096, config.ingest_queue_batches,
          std::make_unique<store::ContainerStore>(path));
    } catch (const std::exception&) {
      return nullptr;
    }
    session->level = level;
    if (resumable) {
      session->resumable = true;
      session->journal = store::SessionJournal::create(
          store::session_journal_path(path), tenant.config.name, record,
          static_cast<std::uint8_t>(level));
      if (session->journal == nullptr) {
        session->container->abandon();
        std::error_code ec;
        fs::remove(path, ec);
        return nullptr;
      }
    }
    attach_sink_and_worker(tenant, *session);
    return session;
  }

  /// Reopens a journaled partial: validates the journal, resumes the
  /// container at the journal's durable prefix (truncating any torn tail),
  /// and restores the session counters to exactly what the last durable
  /// PUT_ACK promised. Nullptr when either sidecar fails validation.
  std::shared_ptr<IngestSession> open_resumed_ingest(
      TenantState& tenant, const std::string& record, const std::string& path,
      compress::DeflateLevel* level_out) {
    const std::optional<store::JournalState> js =
        store::read_session_journal(store::session_journal_path(path));
    if (!js.has_value() || js->record != record ||
        js->tenant != tenant.config.name)
      return nullptr;
    if (js->level > static_cast<std::uint8_t>(compress::DeflateLevel::kBest))
      return nullptr;
    // An empty journal proves only the 8-byte container header; a populated
    // one proves exactly container_bytes.
    const std::uint64_t durable =
        js->entries == 0 ? kContainerHeaderBytes : js->container_bytes;
    std::string error;
    auto container =
        store::ContainerStore::resume(path, durable, js->metas, &error);
    if (container == nullptr) return nullptr;
    const std::uint64_t budget =
        tenant.config.max_bytes - tenant.used_raw_bytes;
    // The quota backstop budget accounts for the bytes already stored in
    // the resumed prefix (QuotaStore's own meter restarts at zero).
    const std::uint64_t backstop = budget + (budget >> 2) + 4096;
    std::shared_ptr<IngestSession> session;
    try {
      session = std::make_shared<IngestSession>(
          tenant.config.name, record, path, budget,
          backstop > durable ? backstop - durable : 1,
          config.ingest_queue_batches, std::move(container));
    } catch (const std::exception&) {
      return nullptr;
    }
    // The session resumes at the level it was journaled with — byte
    // identity requires every frame of the record to share one encoder
    // setting, whatever the reconnecting HELLO asked for.
    session->level = static_cast<compress::DeflateLevel>(js->level);
    *level_out = session->level;
    session->resumable = true;
    session->committed_seq.store(js->last_seq, std::memory_order_relaxed);
    session->frames = js->frames_total;
    session->raw_bytes = js->raw_bytes_total;
    session->journal =
        store::SessionJournal::open_append(store::session_journal_path(path));
    if (session->journal == nullptr) return nullptr;
    attach_sink_and_worker(tenant, *session);
    return session;
  }

  void attach_sink_and_worker(TenantState& tenant, IngestSession& session) {
    session.target = &session.quota;
    if (config.store_wrapper) {
      session.wrapped = config.store_wrapper(&session.quota);
      if (session.wrapped != nullptr) session.target = session.wrapped.get();
    }
    switch (config.sink_mode) {
      case SinkMode::kInline:
        session.sink = std::make_unique<tool::InlineFrameSink>(session.target);
        break;
      case SinkMode::kService: {
        store::CompressionService::Config service_config;
        service_config.workers = config.service_workers;
        service_config.level = session.level;
        session.service = std::make_unique<store::CompressionService>(
            session.target, service_config);
        session.sink =
            std::make_unique<tool::AsyncFrameSink>(session.service.get());
        break;
      }
      case SinkMode::kRetrying:
        session.sink = std::make_unique<tool::RetryingFrameSink>(
            session.target, store::RetryPolicy{}, session.path + ".cdcq");
        break;
    }
    session.tenant_frames =
        &obs::counter("net.tenant." + tenant.config.name + ".frames");
    session.tenant_bytes =
        &obs::counter("net.tenant." + tenant.config.name + ".raw_bytes");
    IngestSession* raw = &session;
    session.worker = std::thread([this, raw] { ingest_loop(*raw); });
  }

  void handle_ingest(Conn& conn, const Message& msg) {
    IngestSession& session = *conn.ingest;
    if (msg.type == MsgType::kResume) {
      // Only legal before any PUT on this connection: the worker is then
      // provably idle, so the event thread can read the durable totals
      // without racing the journal writes.
      if (conn.puts_seen || session.seal_enqueued) {
        send_error(conn, ErrCode::kBadMessage, "RESUME after PUT_FRAMES");
        return;
      }
      Resumed resumed;
      resumed.last_seq = session.committed_seq.load(std::memory_order_relaxed);
      resumed.frames_ingested = session.frames;
      resumed.bytes_ingested = session.raw_bytes;
      send_msg(conn, encode_resumed(resumed));
      return;
    }
    if (msg.type == MsgType::kPutFrames) {
      if (session.sealed || session.seal_enqueued) {
        send_error(conn, ErrCode::kBadMessage, "PUT_FRAMES after SEAL");
        return;
      }
      WorkItem item;
      if (!decode_put_frames(msg, config.limits, item.batch)) {
        send_error(conn, ErrCode::kOversized,
                   "malformed or over-limit PUT_FRAMES batch");
        return;
      }
      conn.puts_seen = true;
      enqueue(conn, std::move(item));
      return;
    }
    if (msg.type == MsgType::kSeal) {
      if (session.sealed || session.seal_enqueued) {
        send_error(conn, ErrCode::kBadMessage, "duplicate SEAL");
        return;
      }
      session.seal_enqueued = true;
      WorkItem item;
      item.seal = true;
      enqueue(conn, std::move(item));
      return;
    }
    send_error(conn, ErrCode::kBadMessage, "unexpected message in ingest");
  }

  void enqueue(Conn& conn, WorkItem item) {
    static obs::Counter& suspensions =
        obs::counter("net.backpressure.suspensions");
    static obs::Gauge& suspended = obs::gauge("net.backpressure.suspended");
    if (conn.ingest->queue.try_push(std::move(item))) {
      ++conn.ingest->outstanding;
      return;
    }
    // Queue full: park the batch and stop reading this socket until the
    // worker drains — bounded buffering, TCP pushes back to the client.
    conn.parked = std::move(item);
    suspensions.add(1);
    suspended.add(1);
    stat_suspensions.fetch_add(1, std::memory_order_relaxed);
  }

  void retry_parked(Conn& conn) {
    static obs::Gauge& suspended = obs::gauge("net.backpressure.suspended");
    if (!conn.parked.has_value() || conn.ingest == nullptr) return;
    if (!conn.ingest->queue.try_push(std::move(*conn.parked))) return;
    ++conn.ingest->outstanding;
    conn.parked.reset();
    suspended.sub(1);
    // Messages parsed before the suspension may still be buffered; resume
    // dispatching them now that there is queue room again.
    dispatch(conn);
  }

  void handle_replay(Conn& conn, const Message& msg) {
    ReplaySession& session = *conn.replay;
    if (msg.type == MsgType::kReplayWindow) {
      ReplayWindowReq req;
      if (!decode_replay_window(msg, req) || req.epoch_lo >= req.epoch_hi) {
        send_error(conn, ErrCode::kBadMessage,
                   "REPLAY_WINDOW needs LO < HI");
        return;
      }
      obs::counter("net.replay.windows").add(1);
      const auto keys = session.reader->keys();
      bool all_seeked = true;
      std::uint64_t streams = 0;
      for (const runtime::StreamKey& key : keys) {
        store::ContainerReader::WindowRead read =
            session.reader->read_stream_window(key, req.epoch_lo,
                                               req.epoch_hi);
        if (read.bytes.size() + 64 > config.limits.max_message_body) {
          send_error(conn, ErrCode::kOversized,
                     "window exceeds message size limit");
          return;
        }
        WindowStream ws;
        ws.key = key;
        ws.first_epoch = read.first_epoch;
        ws.seeked = read.seeked;
        ws.bytes = std::move(read.bytes);
        all_seeked = all_seeked && ws.seeked;
        ++streams;
        obs::counter("net.replay.window_bytes").add(ws.bytes.size());
        send_msg(conn, encode_window_stream(
                           ws, compress::DeflateLevel::kStored));
      }
      WindowDone done;
      done.streams = streams;
      done.all_seeked = all_seeked;
      send_msg(conn, encode_window_done(done));
      return;
    }
    if (msg.type == MsgType::kInspect) {
      InspectKind kind = InspectKind::kVerify;
      if (!decode_inspect(msg, kind)) {
        send_error(conn, ErrCode::kBadMessage, "malformed INSPECT");
        return;
      }
      send_msg(conn, encode_report(inspect_json(session, kind)));
      return;
    }
    send_error(conn, ErrCode::kBadMessage, "unexpected message in replay");
  }

  static std::string inspect_json(const ReplaySession& session,
                                  InspectKind kind) {
    switch (kind) {
      case InspectKind::kVerify: {
        const store::VerifyReport report = session.reader->verify();
        obs::JsonWriter w;
        w.begin_object();
        w.field("ok", report.ok);
        w.field("frames_checked", report.frames_checked);
        w.field("payload_bytes", report.payload_bytes);
        w.field("bad_frames", report.bad_frames.size());
        w.key("container_errors").begin_array();
        for (const std::string& e : report.container_errors) w.value(e);
        w.end_array();
        w.end_object();
        return std::move(w).take();
      }
      case InspectKind::kPipeline: {
        obs::PipelineReport report;
        std::string error;
        if (!tool::fill_container_section(session.path, report, &error))
          return std::string("{\"error\":\"") + error + "\"}";
        report.reconcile();
        return report.to_json();
      }
      case InspectKind::kGaps:
        return tool::inspect_gaps(session.path, session.path + ".cdcq")
            .to_json();
    }
    return "{}";
  }

  // --- ingest worker ------------------------------------------------------

  /// Chaos hook: SIGKILL the process when `counter` reaches `target`
  /// (server-global Nth trigger; 0 = disabled). Out-of-process only — the
  /// kill-sweep harness runs cdc_served as a child it can reap.
  static void maybe_crash_at(std::uint32_t target,
                             std::atomic<std::uint32_t>& counter) {
    if (target != 0 &&
        counter.fetch_add(1, std::memory_order_relaxed) + 1 == target)
      ::raise(SIGKILL);
  }

  static void maybe_crash_if(bool flag) {
    if (flag) ::raise(SIGKILL);
  }

  void ingest_loop(IngestSession& session) {
    static obs::Counter& frames_total = obs::counter("net.ingest.frames");
    static obs::Counter& bytes_total = obs::counter("net.ingest.raw_bytes");
    static obs::Counter& batches_total = obs::counter("net.ingest.batches");
    static obs::Counter& deduped = obs::counter("net.server.resume.deduped");
    static obs::Histogram& batch_ns =
        obs::histogram("net.ingest.batch_ns");
    static obs::Histogram& batch_frames =
        obs::histogram("net.ingest.batch_frames");
    WorkItem item;
    while (session.queue.pop(item)) {
      if (session.failed.load(std::memory_order_relaxed)) continue;
      if (item.seal) {
        try {
          if (session.service != nullptr) session.service->drain();
          maybe_crash_if(config.crash.kill_before_seal);
          session.container->seal();
          // The footer is durable: the journal has served its purpose and
          // must go before SEALED, so a later crash + startup scan sees a
          // finished record, not a resumable partial.
          if (session.journal != nullptr) {
            session.journal.reset();
            std::error_code ec;
            fs::remove(store::session_journal_path(session.path), ec);
          }
          session.sealed_on_disk.store(true, std::memory_order_release);
          maybe_crash_if(config.crash.kill_after_seal);
          Completion done;
          done.kind = Completion::Kind::kSealed;
          std::error_code ec;
          const auto size = fs::file_size(session.path, ec);
          done.sealed.container_bytes = ec ? 0 : size;
          done.sealed.streams = session.container->keys().size();
          done.sealed.frames = session.frames;
          complete(session, std::move(done));
        } catch (const std::exception& e) {
          fail_session(session, ErrCode::kInternal, e.what());
        }
        continue;
      }
      const obs::Stopwatch sw;
      try {
        // Resume dedup: anything at or below the durable high-water mark
        // was flushed + journaled in a previous life (or a previous send);
        // re-ack with the durable totals and drop the bytes.
        const std::uint64_t committed =
            session.committed_seq.load(std::memory_order_relaxed);
        if (item.batch.seq <= committed) {
          deduped.add(1);
          stat_batches_deduped.fetch_add(1, std::memory_order_relaxed);
          Completion ack;
          ack.kind = Completion::Kind::kAck;
          ack.ack.seq = item.batch.seq;
          ack.ack.frames_ingested = session.frames;
          ack.ack.bytes_ingested = session.raw_bytes;
          complete(session, std::move(ack));
          continue;
        }
        if (item.batch.seq != committed + 1) {
          fail_session(session, ErrCode::kBadMessage,
                       "out-of-order batch sequence");
          continue;
        }
        std::uint64_t batch_bytes = 0;
        for (const WireFrame& frame : item.batch.frames)
          batch_bytes += frame.payload.size();
        // Tenant quota on raw payload bytes, checked before any submit so
        // the parallel service never sees a mid-batch quota trip.
        if (session.raw_bytes + batch_bytes > session.raw_budget) {
          fail_session(session, ErrCode::kQuota,
                       "tenant byte quota exhausted");
          continue;
        }
        // Journal entries describe container frames in file order, so the
        // epoch flags must be captured per wire frame before the payloads
        // are moved into the sink.
        std::vector<store::ResumeFrameMeta> metas;
        if (session.journal != nullptr) {
          metas.reserve(item.batch.frames.size());
          for (const WireFrame& frame : item.batch.frames) {
            store::ResumeFrameMeta meta;
            meta.has_epoch = frame.epoch.has_value();
            if (frame.epoch.has_value()) meta.epoch = *frame.epoch;
            metas.push_back(meta);
          }
        }
        for (WireFrame& frame : item.batch.frames) {
          if (frame.pre_encoded) {
            // Re-upload path: the payload must already be one valid tool
            // frame; append it verbatim (no re-encode).
            support::ByteReader reader(frame.payload);
            const std::optional<tool::Frame> parsed =
                tool::read_frame(reader);
            if (!parsed.has_value() || !reader.exhausted()) {
              fail_session(session, ErrCode::kBadMessage,
                           "invalid pre-encoded frame");
              break;
            }
            if (frame.epoch.has_value())
              session.target->append_epoch(frame.key, frame.payload,
                                           *frame.epoch);
            else
              session.target->append(frame.key, frame.payload);
          } else {
            tool::FrameJob job;
            job.codec = frame.codec;
            job.meta = frame.meta;
            job.compress = frame.compress;
            job.level = session.level;
            job.epoch = frame.epoch;
            job.payload = std::move(frame.payload);
            session.sink->submit(frame.key, std::move(job));
          }
        }
        if (session.failed.load(std::memory_order_relaxed)) continue;
        // Durability before acknowledgement (DESIGN.md §14): drain the
        // parallel service so every frame of this batch is in the
        // container, flush the container, fsync the journal entry, and
        // only then advance committed_seq and emit the PUT_ACK. The crash
        // hooks bracket each ordering edge the kill sweep exercises.
        maybe_crash_at(config.crash.kill_before_sync_batch, crash_sync_count);
        if (session.service != nullptr) session.service->drain();
        session.target->sync();
        session.frames += item.batch.frames.size();
        session.raw_bytes += batch_bytes;
        if (session.journal != nullptr) {
          if (!session.journal->append_batch(
                  item.batch.seq, metas, session.frames, session.raw_bytes,
                  session.container->writer_file_bytes())) {
            fail_session(session, ErrCode::kInternal,
                         "session journal write failed");
            continue;
          }
        }
        session.committed_seq.store(item.batch.seq,
                                    std::memory_order_release);
        maybe_crash_at(config.crash.kill_before_ack_batch, crash_ack_count);
        frames_total.add(item.batch.frames.size());
        bytes_total.add(batch_bytes);
        batches_total.add(1);
        batch_frames.record(item.batch.frames.size());
        session.tenant_frames->add(item.batch.frames.size());
        session.tenant_bytes->add(batch_bytes);
        stat_frames_ingested.fetch_add(item.batch.frames.size(),
                                       std::memory_order_relaxed);
        stat_bytes_ingested.fetch_add(batch_bytes,
                                      std::memory_order_relaxed);
        if (config.ingest_delay_us > 0)
          std::this_thread::sleep_for(
              std::chrono::microseconds(config.ingest_delay_us));
        Completion ack;
        ack.kind = Completion::Kind::kAck;
        ack.ack.seq = item.batch.seq;
        ack.ack.frames_ingested = session.frames;
        ack.ack.bytes_ingested = session.raw_bytes;
        batch_ns.record(sw.ns());
        complete(session, std::move(ack));
      } catch (const store::QuotaExceeded& e) {
        fail_session(session, ErrCode::kQuota, e.what());
      } catch (const std::exception& e) {
        fail_session(session, ErrCode::kInternal, e.what());
      }
    }
  }

  void fail_session(IngestSession& session, ErrCode code, std::string text) {
    Completion failure;
    failure.kind = Completion::Kind::kFailed;
    failure.code = code;
    failure.text = std::move(text);
    session.failed.store(true, std::memory_order_relaxed);
    complete(session, std::move(failure));
  }

  void complete(IngestSession& session, Completion completion) {
    {
      const std::lock_guard<std::mutex> lock(session.done_mutex);
      session.done.push_back(std::move(completion));
    }
    wake();
  }

  void drain_completions(Conn& conn) {
    if (conn.ingest == nullptr) return;
    std::vector<Completion> done;
    {
      const std::lock_guard<std::mutex> lock(conn.ingest->done_mutex);
      done.swap(conn.ingest->done);
    }
    for (Completion& completion : done) {
      if (conn.ingest->outstanding > 0) --conn.ingest->outstanding;
      switch (completion.kind) {
        case Completion::Kind::kAck:
          send_msg(conn, encode_put_ack(completion.ack));
          break;
        case Completion::Kind::kSealed: {
          conn.ingest->sealed = true;
          TenantState& tenant = *conn.tenant;
          tenant.active.erase(conn.ingest->record);
          tenant.sealed.insert(conn.ingest->record);
          tenant.used_raw_bytes += conn.ingest->raw_bytes;
          obs::counter("net.sessions.sealed").add(1);
          stat_sessions_sealed.fetch_add(1, std::memory_order_relaxed);
          send_msg(conn, encode_sealed(completion.sealed));
          break;
        }
        case Completion::Kind::kFailed:
          send_error(conn, completion.code, completion.text);
          break;
      }
    }
  }

  // --- teardown -----------------------------------------------------------

  void teardown(Conn& conn) {
    static obs::Counter& closed = obs::counter("net.conns.closed");
    static obs::Gauge& suspended = obs::gauge("net.backpressure.suspended");
    if (conn.phase == Conn::Phase::kClosed) return;
    if (conn.parked.has_value()) {
      conn.parked.reset();
      suspended.sub(1);
    }
    if (conn.ingest != nullptr) {
      IngestSession& session = *conn.ingest;
      session.queue.close();
      if (session.worker.joinable()) session.worker.join();
      if (!session.sealed) {
        // Quiesce the sink stack first — the CompressionService
        // destructor drains its backlog into the store, and those commits
        // must land before the container is abandoned or parked
        // (append-after-abandon is a checked abort).
        session.sink.reset();
        session.service.reset();
        if (session.sealed_on_disk.load(std::memory_order_acquire)) {
          // The worker sealed but the SEALED reply never drained: the
          // record on disk is whole, so register it — deleting it here
          // would destroy a finished record.
          if (conn.tenant != nullptr) {
            conn.tenant->active.erase(session.record);
            conn.tenant->sealed.insert(session.record);
            conn.tenant->used_raw_bytes += session.raw_bytes;
          }
          obs::counter("net.sessions.sealed").add(1);
          stat_sessions_sealed.fetch_add(1, std::memory_order_relaxed);
        } else if (session.resumable) {
          // Park the partial: journal + container stay on disk, the name
          // moves active → resumable, and a reconnecting HELLO picks the
          // upload back up at the durable prefix.
          session.journal.reset();
          session.container->abandon();
          if (conn.tenant != nullptr) {
            conn.tenant->active.erase(session.record);
            conn.tenant->resumable.insert(session.record);
          }
          obs::counter("net.server.resume.parked").add(1);
          stat_sessions_parked.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Non-resumable partial: discard. The container is abandoned
          // (no footer) and removed, the name freed — a retry re-uploads
          // from scratch.
          session.container->abandon();
          std::error_code ec;
          fs::remove(session.path, ec);
          fs::remove(session.path + ".cdcq", ec);
          if (conn.tenant != nullptr)
            conn.tenant->active.erase(session.record);
          obs::counter("net.sessions.aborted").add(1);
          stat_sessions_aborted.fetch_add(1, std::memory_order_relaxed);
        }
      }
      conn.ingest.reset();
    }
    conn.replay.reset();
    ::close(conn.fd);
    conn.phase = Conn::Phase::kClosed;
    closed.add(1);
    stat_connections_closed.fetch_add(1, std::memory_order_relaxed);
  }

  void reap_closed() {
    for (auto& conn : conns) {
      const bool done =
          conn->close_after_flush && conn->tx.empty();
      if (done) teardown(*conn);
    }
    std::erase_if(conns, [](const std::unique_ptr<Conn>& conn) {
      return conn->phase == Conn::Phase::kClosed;
    });
  }

  // --- state --------------------------------------------------------------

  ServerConfig config;
  int listen_fd = -1;
  int wake_pipe[2] = {-1, -1};
  std::uint16_t bound_port = 0;
  std::atomic<bool> stop_requested{false};
  std::atomic<bool> drain_requested{false};
  std::atomic<bool> drained_clean{false};
  std::chrono::steady_clock::time_point drain_deadline;
  std::atomic<std::uint32_t> crash_sync_count{0};
  std::atomic<std::uint32_t> crash_ack_count{0};
  std::thread event_thread;
  std::map<std::string, TenantState> tenants;  ///< token → state
  std::vector<std::unique_ptr<Conn>> conns;
  std::uint64_t next_session_id = 0;

  std::atomic<std::uint64_t> stat_connections_accepted{0};
  std::atomic<std::uint64_t> stat_connections_closed{0};
  std::atomic<std::uint64_t> stat_sessions_opened{0};
  std::atomic<std::uint64_t> stat_sessions_sealed{0};
  std::atomic<std::uint64_t> stat_sessions_aborted{0};
  std::atomic<std::uint64_t> stat_frames_ingested{0};
  std::atomic<std::uint64_t> stat_bytes_ingested{0};
  std::atomic<std::uint64_t> stat_errors_sent{0};
  std::atomic<std::uint64_t> stat_suspensions{0};
  std::atomic<std::uint64_t> stat_sessions_resumed{0};
  std::atomic<std::uint64_t> stat_sessions_recovered{0};
  std::atomic<std::uint64_t> stat_sessions_parked{0};
  std::atomic<std::uint64_t> stat_batches_deduped{0};
  std::atomic<std::uint64_t> stat_partials_discarded{0};
};

Server::Server(ServerConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}

Server::~Server() { stop(); }

bool Server::start(std::string* error) { return impl_->start(error); }

void Server::stop() { impl_->stop(); }

bool Server::drain(std::uint32_t timeout_ms) {
  return impl_->drain(timeout_ms);
}

std::uint16_t Server::port() const noexcept { return impl_->bound_port; }

Server::Stats Server::stats() const {
  Server::Stats stats;
  stats.connections_accepted =
      impl_->stat_connections_accepted.load(std::memory_order_relaxed);
  stats.connections_closed =
      impl_->stat_connections_closed.load(std::memory_order_relaxed);
  stats.sessions_opened =
      impl_->stat_sessions_opened.load(std::memory_order_relaxed);
  stats.sessions_sealed =
      impl_->stat_sessions_sealed.load(std::memory_order_relaxed);
  stats.sessions_aborted =
      impl_->stat_sessions_aborted.load(std::memory_order_relaxed);
  stats.frames_ingested =
      impl_->stat_frames_ingested.load(std::memory_order_relaxed);
  stats.bytes_ingested =
      impl_->stat_bytes_ingested.load(std::memory_order_relaxed);
  stats.errors_sent = impl_->stat_errors_sent.load(std::memory_order_relaxed);
  stats.backpressure_suspensions =
      impl_->stat_suspensions.load(std::memory_order_relaxed);
  stats.sessions_resumed =
      impl_->stat_sessions_resumed.load(std::memory_order_relaxed);
  stats.sessions_recovered =
      impl_->stat_sessions_recovered.load(std::memory_order_relaxed);
  stats.sessions_parked =
      impl_->stat_sessions_parked.load(std::memory_order_relaxed);
  stats.batches_deduped =
      impl_->stat_batches_deduped.load(std::memory_order_relaxed);
  stats.partials_discarded =
      impl_->stat_partials_discarded.load(std::memory_order_relaxed);
  return stats;
}

const ServerConfig& Server::config() const noexcept { return impl_->config; }

}  // namespace cdc::net
