// The multi-tenant record/replay service: `cdc_served`'s engine.
//
// One poll(2)-driven event thread owns every socket: it accepts
// connections, feeds raw bytes through per-connection WireParsers, and
// dispatches messages against a per-connection state machine
// (HELLO → ingest | replay). Ingest work never runs on the event thread:
// each ingest session owns a bounded MPMC queue and one worker thread that
// drains batches into the existing storage stack — QuotaStore →
// ContainerStore, fronted by the configured FrameSink (inline encode,
// parallel CompressionService, or RetryingFrameSink with quarantine).
//
// Backpressure is structural, not advisory: when a session's queue is
// full, the event thread parks the parsed batch, *stops polling the
// connection for reads* (slow-reader suspension), and lets TCP flow
// control push back to the client; nothing in the server buffers
// unboundedly. The `net.backpressure.suspensions` counter observes it.
//
// Tenancy: HELLO authenticates by token against the configured tenant
// table. Each tenant gets a byte budget (enforced per-session by a
// QuotaStore at the store seam) and a record-count cap; records live under
// `<root>/<tenant>/<record>.cdcc` as ordinary sealed containers, so every
// existing tool (record_inspector, replay, corpus ingest) works on them
// unchanged. A disconnect mid-ingest discards the partial record — the
// client's retry re-uploads from scratch — so a record name either refers
// to a sealed, verifiable container or to nothing.
//
// Crash safety (DESIGN.md §14): a v2 client may mark its session
// *resumable* in HELLO. The server then journals per-batch durability in a
// CRC'd sidecar (store/session_journal.h) — container bytes are flushed
// and the journal entry fsync'd BEFORE the PUT_ACK goes out — and a
// disconnect parks the partial instead of discarding it. A reconnecting
// resumable HELLO reopens the container at its durable prefix
// (ContainerStore::resume), answers RESUME with the durable high-water
// mark, and deduplicates re-sent batches by sequence number, so the sealed
// result is byte-identical to an uninterrupted upload. On start() the
// store root is scanned: journaled partials are rebuilt into the resume
// table, un-journaled partials are discarded. drain() is the graceful
// SIGTERM path: stop accepting, GOAWAY idle connections, let in-flight
// batches finish, journal-and-park resumable sessions, all under a
// deadline.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "compress/deflate.h"
#include "net/protocol.h"
#include "runtime/storage.h"

namespace cdc::net {

struct TenantConfig {
  std::string name;   ///< directory name under the server root
  std::string token;  ///< bearer token presented in HELLO
  std::uint64_t max_bytes = 256ull << 20;  ///< container bytes across records
  std::uint32_t max_records = 256;         ///< sealed + in-flight records
};

/// Which sink stack ingest sessions route through (DESIGN.md §13).
enum class SinkMode : std::uint8_t {
  kInline = 0,    ///< encode on the session worker, append directly
  kService = 1,   ///< parallel CompressionService per session
  kRetrying = 2,  ///< RetryingFrameSink (bounded backoff + quarantine)
};

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; see Server::port()
  std::string root_dir;    ///< record storage root (created if absent)
  std::vector<TenantConfig> tenants;
  SinkMode sink_mode = SinkMode::kInline;
  std::size_t service_workers = 2;  ///< kService mode worker count
  /// Ingest-queue bound, in batches, per session — the backpressure knob.
  std::size_t ingest_queue_batches = 8;
  Limits limits;
  /// Highest DEFLATE level a client may negotiate (requests above it are
  /// clamped, mirroring content-encoding negotiation).
  compress::DeflateLevel max_level = compress::DeflateLevel::kBest;
  /// Test/bench-only throttle: sleep this long per ingested batch on the
  /// session worker, to force queue buildup and exercise backpressure.
  std::uint32_t ingest_delay_us = 0;
  int listen_backlog = 128;
  /// Test seam: wraps the store each ingest session's sink stack (and its
  /// durability sync()) writes through — e.g. a store::IoFaultStore to
  /// exercise the fsync-before-ack ordering. The wrapped store must
  /// delegate to the passed inner store; null return means "no wrap".
  std::function<std::unique_ptr<runtime::RecordStore>(runtime::RecordStore*)>
      store_wrapper;
  /// Chaos knobs (cdc_served --crash-*): raise SIGKILL at a precise
  /// protocol state, for the kill-sweep harness. Batch counters are
  /// server-global (Nth batch across all sessions); 0 / false = off.
  struct CrashPlan {
    /// SIGKILL while ingesting the Nth batch: frames appended, container
    /// NOT yet flushed, journal NOT yet written — the mid-batch tear.
    std::uint32_t kill_before_sync_batch = 0;
    /// SIGKILL after the Nth batch is flushed + journaled but before its
    /// PUT_ACK — the client must survive an ack it never saw.
    std::uint32_t kill_before_ack_batch = 0;
    /// SIGKILL on SEAL after the backlog drains, before the footer.
    bool kill_before_seal = false;
    /// SIGKILL after the footer is durable, before the SEALED reply.
    bool kill_after_seal = false;
  };
  CrashPlan crash;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the event thread. False (with *error set)
  /// on bind/listen failure.
  [[nodiscard]] bool start(std::string* error = nullptr);

  /// Stops accepting, aborts in-flight sessions (non-resumable partial
  /// records are discarded; resumable ones are parked for a later resume),
  /// closes every connection, and joins all threads. Idempotent.
  void stop();

  /// Graceful shutdown: stops accepting, sends a GOAWAY-style ERROR(kBusy)
  /// to idle connections, lets every enqueued batch finish (journaled and
  /// acked), then closes ingest connections — resumable sessions are
  /// parked with their journals intact, so clients can reconnect and
  /// resume after a restart. Returns true when every connection closed
  /// before `timeout_ms`; false means the deadline forced the exit (the
  /// surviving state is still consistent — journals never over-promise).
  /// Joins all threads either way; call instead of stop().
  [[nodiscard]] bool drain(std::uint32_t timeout_ms);

  /// The bound port (after start()); useful with port = 0.
  [[nodiscard]] std::uint16_t port() const noexcept;

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_closed = 0;
    std::uint64_t sessions_opened = 0;
    std::uint64_t sessions_sealed = 0;
    std::uint64_t sessions_aborted = 0;
    std::uint64_t frames_ingested = 0;
    std::uint64_t bytes_ingested = 0;  ///< raw payload bytes
    std::uint64_t errors_sent = 0;
    std::uint64_t backpressure_suspensions = 0;
    std::uint64_t sessions_resumed = 0;    ///< reopened via resumable HELLO
    std::uint64_t sessions_recovered = 0;  ///< journaled partials found at start()
    std::uint64_t sessions_parked = 0;     ///< resumable partials kept on close
    std::uint64_t batches_deduped = 0;     ///< re-sent batches dropped by seq
    std::uint64_t partials_discarded = 0;  ///< unresumable leftovers removed
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const ServerConfig& config() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cdc::net
