// The multi-tenant record/replay service: `cdc_served`'s engine.
//
// One poll(2)-driven event thread owns every socket: it accepts
// connections, feeds raw bytes through per-connection WireParsers, and
// dispatches messages against a per-connection state machine
// (HELLO → ingest | replay). Ingest work never runs on the event thread:
// each ingest session owns a bounded MPMC queue and one worker thread that
// drains batches into the existing storage stack — QuotaStore →
// ContainerStore, fronted by the configured FrameSink (inline encode,
// parallel CompressionService, or RetryingFrameSink with quarantine).
//
// Backpressure is structural, not advisory: when a session's queue is
// full, the event thread parks the parsed batch, *stops polling the
// connection for reads* (slow-reader suspension), and lets TCP flow
// control push back to the client; nothing in the server buffers
// unboundedly. The `net.backpressure.suspensions` counter observes it.
//
// Tenancy: HELLO authenticates by token against the configured tenant
// table. Each tenant gets a byte budget (enforced per-session by a
// QuotaStore at the store seam) and a record-count cap; records live under
// `<root>/<tenant>/<record>.cdcc` as ordinary sealed containers, so every
// existing tool (record_inspector, replay, corpus ingest) works on them
// unchanged. A disconnect mid-ingest discards the partial record — the
// client's retry re-uploads from scratch — so a record name either refers
// to a sealed, verifiable container or to nothing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "compress/deflate.h"
#include "net/protocol.h"

namespace cdc::net {

struct TenantConfig {
  std::string name;   ///< directory name under the server root
  std::string token;  ///< bearer token presented in HELLO
  std::uint64_t max_bytes = 256ull << 20;  ///< container bytes across records
  std::uint32_t max_records = 256;         ///< sealed + in-flight records
};

/// Which sink stack ingest sessions route through (DESIGN.md §13).
enum class SinkMode : std::uint8_t {
  kInline = 0,    ///< encode on the session worker, append directly
  kService = 1,   ///< parallel CompressionService per session
  kRetrying = 2,  ///< RetryingFrameSink (bounded backoff + quarantine)
};

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; see Server::port()
  std::string root_dir;    ///< record storage root (created if absent)
  std::vector<TenantConfig> tenants;
  SinkMode sink_mode = SinkMode::kInline;
  std::size_t service_workers = 2;  ///< kService mode worker count
  /// Ingest-queue bound, in batches, per session — the backpressure knob.
  std::size_t ingest_queue_batches = 8;
  Limits limits;
  /// Highest DEFLATE level a client may negotiate (requests above it are
  /// clamped, mirroring content-encoding negotiation).
  compress::DeflateLevel max_level = compress::DeflateLevel::kBest;
  /// Test/bench-only throttle: sleep this long per ingested batch on the
  /// session worker, to force queue buildup and exercise backpressure.
  std::uint32_t ingest_delay_us = 0;
  int listen_backlog = 128;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the event thread. False (with *error set)
  /// on bind/listen failure.
  [[nodiscard]] bool start(std::string* error = nullptr);

  /// Stops accepting, aborts in-flight sessions (their partial records are
  /// discarded), closes every connection, and joins all threads.
  /// Idempotent.
  void stop();

  /// The bound port (after start()); useful with port = 0.
  [[nodiscard]] std::uint16_t port() const noexcept;

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_closed = 0;
    std::uint64_t sessions_opened = 0;
    std::uint64_t sessions_sealed = 0;
    std::uint64_t sessions_aborted = 0;
    std::uint64_t frames_ingested = 0;
    std::uint64_t bytes_ingested = 0;  ///< raw payload bytes
    std::uint64_t errors_sent = 0;
    std::uint64_t backpressure_suspensions = 0;
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const ServerConfig& config() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cdc::net
