#include "obs/json.h"

#include <cctype>

namespace cdc::obs {

namespace {

// Recursive-descent validator over the RFC 8259 grammar. `depth` bounds
// recursion so adversarial input cannot blow the stack.
class Validator {
 public:
  explicit Validator(std::string_view doc) : doc_(doc) {}

  bool run() {
    skip_ws();
    if (!value(64)) return false;
    skip_ws();
    return pos_ == doc_.size();
  }

 private:
  [[nodiscard]] bool eof() const { return pos_ >= doc_.size(); }
  [[nodiscard]] char peek() const { return doc_[pos_]; }
  bool eat(char c) {
    if (eof() || doc_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++pos_;
  }
  bool literal(std::string_view word) {
    if (doc_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool string() {
    if (!eat('"')) return false;
    while (!eof()) {
      const char c = doc_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (eof()) return false;
        const char e = doc_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (eof() || !std::isxdigit(
                             static_cast<unsigned char>(doc_[pos_])))
              return false;
            ++pos_;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    eat('-');
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
      return false;
    if (!eat('0'))
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    if (eat('.')) {
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eat('+')) eat('-');
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    return pos_ > start;
  }

  bool value(int depth) {  // NOLINT(misc-no-recursion)
    if (depth <= 0 || eof()) return false;
    switch (peek()) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object(int depth) {  // NOLINT(misc-no-recursion)
    eat('{');
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      if (!value(depth - 1)) return false;
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  bool array(int depth) {  // NOLINT(misc-no-recursion)
    eat('[');
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      skip_ws();
      if (!value(depth - 1)) return false;
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  std::string_view doc_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_well_formed(std::string_view doc) noexcept {
  return Validator(doc).run();
}

}  // namespace cdc::obs
