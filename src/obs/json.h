// Minimal streaming JSON writer used by the metrics snapshot, the trace
// exporter, the pipeline report, and the BENCH_*.json emitters — one
// implementation of escaping and comma placement instead of five fprintf
// blocks. Emits deterministic, human-diffable output: two-space indent,
// keys in insertion order, %.17g doubles (round-trip exact).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "support/check.h"

namespace cdc::obs {

class JsonWriter {
 public:
  JsonWriter& begin_object() { return open('{', '}'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('[', ']'); }
  JsonWriter& end_array() { return close(']'); }

  /// Starts `"key": ` inside an object; follow with a value or container.
  JsonWriter& key(std::string_view k) {
    comma();
    write_string(k);
    out_ += ": ";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    comma();
    write_string(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) {
    comma();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& value(double v) {
    comma();
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    // JSON has no inf/nan; clamp to null like Chrome's tracer does.
    if (std::isfinite(v)) out_ += buf; else out_ += "null";
    return *this;
  }
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  JsonWriter& value(T v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }

  template <typename T>
  JsonWriter& field(std::string_view k, const T& v) {
    return key(k).value(v);
  }

  /// Finishes and returns the document. All containers must be closed.
  [[nodiscard]] std::string take() && {
    CDC_CHECK_MSG(stack_.empty(), "unclosed JSON container");
    out_ += '\n';
    return std::move(out_);
  }

  /// Writes the (finished) document to `path`; false on I/O error.
  static bool write_file(const std::string& path, const std::string& doc) {
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) return false;
    const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), out);
    return std::fclose(out) == 0 && written == doc.size();
  }

 private:
  struct Level {
    char closer;
    bool first = true;
  };

  JsonWriter& open(char opener, char closer) {
    comma();
    out_ += opener;
    stack_.push_back(Level{closer});
    return *this;
  }

  JsonWriter& close(char closer) {
    CDC_CHECK_MSG(!stack_.empty() && stack_.back().closer == closer,
                  "mismatched JSON container close");
    const bool empty = stack_.back().first;
    stack_.pop_back();
    if (!empty) {
      out_ += '\n';
      indent();
    }
    out_ += closer;
    return *this;
  }

  void comma() {
    if (pending_value_) {
      pending_value_ = false;
      return;  // value completes a `key: ` — no newline, no comma
    }
    if (stack_.empty()) return;
    if (!stack_.back().first) out_ += ',';
    stack_.back().first = false;
    out_ += '\n';
    indent();
  }

  void indent() {
    out_.append(2 * stack_.size(), ' ');
  }

  void write_string(std::string_view s) {
    out_ += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(c));
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<Level> stack_;
  bool pending_value_ = false;
};

/// Syntax-only JSON well-formedness check (RFC 8259 grammar, no semantic
/// limits). Used by the trace/report tests and cheap enough to run on
/// every export in debug builds.
[[nodiscard]] bool json_well_formed(std::string_view doc) noexcept;

}  // namespace cdc::obs
