#include "obs/metrics.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

#include "obs/json.h"

namespace cdc::obs {

double HistogramValue::quantile(double p) const noexcept {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count);
  double seen = 0.0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const double in_bucket = static_cast<double>(buckets[b]);
    if (in_bucket == 0.0) continue;
    if (seen + in_bucket >= target) {
      const double lo =
          std::max(static_cast<double>(Histogram::bucket_lo(b)),
                   static_cast<double>(min));
      const double hi =
          std::min(static_cast<double>(Histogram::bucket_hi(b)),
                   static_cast<double>(max));
      const double frac =
          in_bucket > 0.0 ? (target - seen) / in_bucket : 0.0;
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen += in_bucket;
  }
  return static_cast<double>(max);
}

HistogramValue Histogram::merged() const {
  HistogramValue out;
  out.name = name_;
  out.min = ~std::uint64_t{0};
  for (const auto& shard : shards_) {
    out.count += shard.count.load(std::memory_order_relaxed);
    out.sum += shard.sum.load(std::memory_order_relaxed);
    out.min = std::min(out.min, shard.min.load(std::memory_order_relaxed));
    out.max = std::max(out.max, shard.max.load(std::memory_order_relaxed));
    for (std::size_t b = 0; b < out.buckets.size(); ++b)
      out.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
  }
  if (out.count == 0) out.min = 0;
  return out;
}

// --- Snapshot lookups -----------------------------------------------------

namespace {

template <typename T>
const T* find_by_name(const std::vector<T>& values, std::string_view name) {
  for (const T& v : values)
    if (v.name == name) return &v;
  return nullptr;
}

}  // namespace

const CounterValue* MetricsSnapshot::find_counter(std::string_view n) const {
  return find_by_name(counters, n);
}
const GaugeValue* MetricsSnapshot::find_gauge(std::string_view n) const {
  return find_by_name(gauges, n);
}
const HistogramValue* MetricsSnapshot::find_histogram(
    std::string_view n) const {
  return find_by_name(histograms, n);
}
std::uint64_t MetricsSnapshot::counter_or(std::string_view n,
                                          std::uint64_t fallback) const {
  const CounterValue* c = find_counter(n);
  return c != nullptr ? c->value : fallback;
}

std::string MetricsSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const CounterValue& c : counters) w.field(c.name, c.value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const GaugeValue& g : gauges)
    w.field(g.name, static_cast<std::int64_t>(g.value));
  w.end_object();
  w.key("histograms").begin_object();
  for (const HistogramValue& h : histograms) {
    w.key(h.name).begin_object();
    w.field("count", h.count);
    w.field("sum", h.sum);
    w.field("min", h.min);
    w.field("max", h.max);
    w.field("mean", h.mean());
    w.field("p50", h.quantile(0.50));
    w.field("p95", h.quantile(0.95));
    w.field("p99", h.quantile(0.99));
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return std::move(w).take();
}

// --- Registry -------------------------------------------------------------

struct Registry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

Registry::Impl& Registry::impl() const {
  // Leaked singleton: metric handles must stay valid through static
  // destruction (worker threads may still be recording).
  static Impl* instance = new Impl();
  return *instance;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  Impl& i = impl();
  std::lock_guard lock(i.mutex);
  auto it = i.counters.find(name);
  if (it == i.counters.end())
    it = i.counters
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name)))
             .first;
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  Impl& i = impl();
  std::lock_guard lock(i.mutex);
  auto it = i.gauges.find(name);
  if (it == i.gauges.end())
    it = i.gauges
             .emplace(std::string(name),
                      std::make_unique<Gauge>(std::string(name)))
             .first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  Impl& i = impl();
  std::lock_guard lock(i.mutex);
  auto it = i.histograms.find(name);
  if (it == i.histograms.end())
    it = i.histograms
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::string(name)))
             .first;
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  Impl& i = impl();
  std::lock_guard lock(i.mutex);
  MetricsSnapshot snap;
  snap.counters.reserve(i.counters.size());
  for (const auto& [name, c] : i.counters)
    snap.counters.push_back(CounterValue{name, c->value()});
  snap.gauges.reserve(i.gauges.size());
  for (const auto& [name, g] : i.gauges)
    snap.gauges.push_back(GaugeValue{name, g->value()});
  snap.histograms.reserve(i.histograms.size());
  for (const auto& [name, h] : i.histograms)
    snap.histograms.push_back(h->merged());
  return snap;
}

void Registry::reset_values() {
  Impl& i = impl();
  std::lock_guard lock(i.mutex);
  for (auto& [name, c] : i.counters) c->reset();
  for (auto& [name, g] : i.gauges) g->reset();
  for (auto& [name, h] : i.histograms) h->reset();
}

Counter& counter(std::string_view name) {
  return Registry::global().counter(name);
}
Gauge& gauge(std::string_view name) {
  return Registry::global().gauge(name);
}
Histogram& histogram(std::string_view name) {
  return Registry::global().histogram(name);
}

}  // namespace cdc::obs
