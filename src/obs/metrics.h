// Low-overhead metrics: counters, gauges, and log-bucketed histograms
// behind a process-global registry.
//
// Hot-path contract: one record is a relaxed atomic add into a per-thread
// shard (thread_index() masked down to kMetricShards cache-line-padded
// slots), so the CompressionService workers, the AsyncRecorder consumer,
// and the simulator event loop can all hammer the same metric without a
// shared cache line. Values are merged only at snapshot time. When the
// layer is runtime-disabled every record call is a relaxed load + branch;
// built with -DCDC_OBS_DISABLED the calls compile away entirely.
//
// Handles returned by the registry are valid for the process lifetime —
// cache them in a function-local static:
//   static obs::Counter& jobs = obs::counter("store.service.jobs");
//   jobs.add(1);
//
// Naming scheme (DESIGN.md §8): dot-separated `<layer>.<object>.<what>`,
// with units as a final suffix where they are not obvious (`_ns`, `_us`,
// `_bytes`). Layers in use: sim, record, replay, store, tool, bench.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.h"

namespace cdc::obs {

inline constexpr std::size_t kMetricShards = 16;  // power of two

namespace detail {

struct alignas(64) CounterShard {
  std::atomic<std::uint64_t> value{0};
};

struct alignas(64) GaugeShard {
  std::atomic<std::int64_t> value{0};
};

/// One thread-shard of a histogram: count/sum/min/max plus 64 log2
/// buckets (bucket index = bit_width(value); zeros land in bucket 0).
struct alignas(64) HistogramShard {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> min{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max{0};
  std::array<std::atomic<std::uint64_t>, 65> buckets{};
};

inline void atomic_min(std::atomic<std::uint64_t>& slot,
                       std::uint64_t v) noexcept {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

inline void atomic_max(std::atomic<std::uint64_t>& slot,
                       std::uint64_t v) noexcept {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Monotonic event/byte counter.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void add(std::uint64_t delta = 1) noexcept {
#ifndef CDC_OBS_DISABLED
    if (!enabled()) return;
    shards_[thread_index() & (kMetricShards - 1)].value.fetch_add(
        delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& shard : shards_)
      total += shard.value.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (auto& shard : shards_)
      shard.value.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  std::array<detail::CounterShard, kMetricShards> shards_;
};

/// Signed up/down value (queue depths, in-flight counts). The reported
/// value is the sum over shards, so concurrent +1/-1 pairs from different
/// threads cancel exactly.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void add(std::int64_t delta) noexcept {
#ifndef CDC_OBS_DISABLED
    if (!enabled()) return;
    shards_[thread_index() & (kMetricShards - 1)].value.fetch_add(
        delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }
  void sub(std::int64_t delta) noexcept { add(-delta); }

  [[nodiscard]] std::int64_t value() const noexcept {
    std::int64_t total = 0;
    for (const auto& shard : shards_)
      total += shard.value.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (auto& shard : shards_)
      shard.value.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  std::array<detail::GaugeShard, kMetricShards> shards_;
};

/// Merged view of one histogram at snapshot time.
struct HistogramValue {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  /// buckets[b] counts values with bit_width(v) == b (b = 0 holds zeros).
  std::array<std::uint64_t, 65> buckets{};

  [[nodiscard]] double mean() const noexcept {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }
  /// Approximate quantile from the log2 buckets: linear interpolation
  /// inside the winning bucket. p in [0, 1].
  [[nodiscard]] double quantile(double p) const noexcept;
};

/// Concurrent log2-bucket histogram over unsigned values (ns, bytes,
/// depths). ~2x resolution error at worst, constant-time record.
class Histogram {
 public:
  explicit Histogram(std::string name) : name_(std::move(name)) {}

  void record(std::uint64_t v) noexcept {
#ifndef CDC_OBS_DISABLED
    if (!enabled()) return;
    auto& shard = shards_[thread_index() & (kMetricShards - 1)];
    shard.count.fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(v, std::memory_order_relaxed);
    detail::atomic_min(shard.min, v);
    detail::atomic_max(shard.max, v);
    shard.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  [[nodiscard]] HistogramValue merged() const;

  void reset() noexcept {
    for (auto& shard : shards_) {
      shard.count.store(0, std::memory_order_relaxed);
      shard.sum.store(0, std::memory_order_relaxed);
      shard.min.store(~std::uint64_t{0}, std::memory_order_relaxed);
      shard.max.store(0, std::memory_order_relaxed);
      for (auto& bucket : shard.buckets)
        bucket.store(0, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] static constexpr std::size_t bucket_of(
      std::uint64_t v) noexcept {
    return static_cast<std::size_t>(64 - std::countl_zero(v));
  }
  /// Inclusive value range covered by bucket `b`.
  [[nodiscard]] static constexpr std::uint64_t bucket_lo(
      std::size_t b) noexcept {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }
  [[nodiscard]] static constexpr std::uint64_t bucket_hi(
      std::size_t b) noexcept {
    return b == 0 ? 0 : (std::uint64_t{1} << (b - 1)) * 2 - 1;
  }

 private:
  std::string name_;
  std::array<detail::HistogramShard, kMetricShards> shards_;
};

struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeValue {
  std::string name;
  std::int64_t value = 0;
};

/// Point-in-time merge of every registered metric, name-sorted.
struct MetricsSnapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  [[nodiscard]] const CounterValue* find_counter(std::string_view n) const;
  [[nodiscard]] const GaugeValue* find_gauge(std::string_view n) const;
  [[nodiscard]] const HistogramValue* find_histogram(
      std::string_view n) const;
  /// Counter value by name; `fallback` when absent.
  [[nodiscard]] std::uint64_t counter_or(std::string_view n,
                                         std::uint64_t fallback = 0) const;

  /// The whole snapshot as a JSON object keyed by metric name.
  [[nodiscard]] std::string to_json() const;
};

/// Owns every metric; handles are stable for the registry's lifetime.
/// Registration takes a mutex (do it once, outside hot paths); recording
/// never does.
class Registry {
 public:
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every value, keeping registrations (bench/test isolation).
  /// Not linearizable against concurrent recorders — quiesce first.
  void reset_values();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

// Process-global convenience accessors (Registry::global()).
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

/// Wall-clock interval helper for stage timings: created started, and
/// `ns()` reads the elapsed nanoseconds. When the obs layer is disabled it
/// never touches the clock, so disabled timing costs one branch.
class Stopwatch {
 public:
  Stopwatch() noexcept
      : start_us_(obs::enabled() ? wall_now_us() : 0.0) {}

  [[nodiscard]] std::uint64_t ns() const noexcept {
    if (!obs::enabled()) return 0;
    const double us = wall_now_us() - start_us_;
    return us > 0.0 ? static_cast<std::uint64_t>(us * 1e3) : 0;
  }

 private:
  double start_us_;
};

}  // namespace cdc::obs
