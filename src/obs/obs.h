// Observability substrate shared by the metrics and tracing layers.
//
// Three tiny global facilities, all safe to touch from any thread:
//   * the runtime enable flag — one relaxed atomic load on every metric
//     record; CDC_OBS=0 in the environment starts the process disabled;
//   * the published virtual clock — the simulator's event loop stores the
//     current virtual time here so trace events emitted anywhere (tool
//     hooks, compression workers) can stamp both time domains;
//   * stable small thread indices — shard selection for the per-thread
//     metric slots and the `tid` field of trace events.
//
// Compile-time kill switch: building with -DCDC_OBS_DISABLED turns every
// metric-record and trace-emit path in the headers into an empty inline
// function, so the whole layer compiles to no-ops (the registry and
// snapshot APIs remain so callers need no #ifdefs of their own).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>

namespace cdc::obs {

namespace detail {

inline std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{[] {
    const char* env = std::getenv("CDC_OBS");
    return env == nullptr || env[0] != '0';
  }()};
  return flag;
}

inline std::atomic<double>& virtual_now_slot() noexcept {
  static std::atomic<double> now{0.0};
  return now;
}

}  // namespace detail

/// False when the layer was compiled out with -DCDC_OBS_DISABLED. Tests
/// and tools that assert on recorded values use this to skip themselves
/// in that configuration instead of failing on the deliberate no-ops.
[[nodiscard]] constexpr bool compiled_in() noexcept {
#ifdef CDC_OBS_DISABLED
  return false;
#else
  return true;
#endif
}

/// Runtime switch for the whole layer. Disabled means every record/emit
/// call returns after one relaxed load — the "enabled-but-idle" cost that
/// bench/fig16_overhead measures is the enabled path.
[[nodiscard]] inline bool enabled() noexcept {
#ifdef CDC_OBS_DISABLED
  return false;
#else
  return detail::enabled_flag().load(std::memory_order_relaxed);
#endif
}

inline void set_enabled(bool on) noexcept {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}

/// The simulator publishes its virtual clock here as it processes events;
/// 0.0 outside a run. Relaxed: readers only annotate, never synchronize.
inline void publish_virtual_now(double seconds) noexcept {
  detail::virtual_now_slot().store(seconds, std::memory_order_relaxed);
}

[[nodiscard]] inline double virtual_now() noexcept {
  return detail::virtual_now_slot().load(std::memory_order_relaxed);
}

/// Dense per-thread index, assigned on first use and stable for the
/// thread's lifetime. Used for metric-shard selection (masked down) and
/// as the trace `tid`.
[[nodiscard]] inline std::uint32_t thread_index() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

/// Monotonic wall time in microseconds since the first call in the
/// process — the trace `ts` domain (Chrome trace events use us).
[[nodiscard]] inline double wall_now_us() noexcept {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration<double, std::micro>(Clock::now() - epoch)
      .count();
}

}  // namespace cdc::obs
