#include "obs/report.h"

#include <cinttypes>
#include <cstdio>

#include "obs/json.h"
#include "obs/stats.h"

namespace cdc::obs {

DistReport DistReport::from(const HistogramValue& h) {
  DistReport d;
  d.count = h.count;
  d.min = h.min;
  d.max = h.max;
  d.mean = h.mean();
  d.p50 = h.quantile(0.50);
  d.p95 = h.quantile(0.95);
  d.p99 = h.quantile(0.99);
  return d;
}

namespace {

DistReport dist_or_empty(const MetricsSnapshot& s, std::string_view name) {
  const HistogramValue* h = s.find_histogram(name);
  return h != nullptr ? DistReport::from(*h) : DistReport{};
}

void fill_stage(const MetricsSnapshot& s, StageReport& stage,
                const std::string& prefix) {
  stage.calls = s.counter_or(prefix + ".calls");
  stage.ns = s.counter_or(prefix + ".ns");
  stage.bytes_in = s.counter_or(prefix + ".bytes_in");
  stage.bytes_out = s.counter_or(prefix + ".bytes_out");
  stage.values_out = s.counter_or(prefix + ".values");
}

void write_stage(JsonWriter& w, const StageReport& stage) {
  w.key(stage.name).begin_object();
  w.field("calls", stage.calls);
  w.field("ns", stage.ns);
  w.field("bytes_in", stage.bytes_in);
  w.field("bytes_out", stage.bytes_out);
  w.field("values_out", stage.values_out);
  w.end_object();
}

void write_dist(JsonWriter& w, std::string_view key, const DistReport& d) {
  w.key(key).begin_object();
  w.field("count", d.count);
  w.field("min", d.min);
  w.field("max", d.max);
  w.field("mean", d.mean);
  w.field("p50", d.p50);
  w.field("p95", d.p95);
  w.field("p99", d.p99);
  w.end_object();
}

}  // namespace

double PipelineReport::deflate_mb_per_s() const noexcept {
  if (stage_deflate.ns == 0) return 0.0;
  return static_cast<double>(stage_deflate.bytes_in) * 1e3 /
         static_cast<double>(stage_deflate.ns);
}

double PipelineReport::inflate_mb_per_s() const noexcept {
  if (stage_inflate.ns == 0) return 0.0;
  return static_cast<double>(stage_inflate.bytes_out) * 1e3 /
         static_cast<double>(stage_inflate.ns);
}

double PipelineReport::pool_hit_rate() const noexcept {
  const std::uint64_t total = pool_hits + pool_misses;
  if (total == 0) return 0.0;
  return static_cast<double>(pool_hits) / static_cast<double>(total);
}

double PipelineReport::corpus_dedup_ratio() const noexcept {
  if (corpus_stored_bytes == 0) return 0.0;
  return static_cast<double>(corpus_raw_bytes) /
         static_cast<double>(corpus_stored_bytes);
}

double PipelineReport::corpus_pool_hit_rate() const noexcept {
  const std::uint64_t total = corpus_pool_hits + corpus_pool_misses;
  if (total == 0) return 0.0;
  return static_cast<double>(corpus_pool_hits) / static_cast<double>(total);
}

PipelineReport PipelineReport::from_snapshot(
    const MetricsSnapshot& s) {
  PipelineReport r;
  fill_stage(s, r.stage_re, "record.stage.re");
  fill_stage(s, r.stage_pe, "record.stage.pe");
  fill_stage(s, r.stage_lp, "record.stage.lp");
  fill_stage(s, r.stage_deflate, "record.stage.deflate");
  r.events_matched = s.counter_or("record.events.matched");
  r.events_unmatched = s.counter_or("record.events.unmatched");
  r.chunks = s.counter_or("record.chunks");
  r.frame_bytes_out = s.counter_or("record.frame.bytes_out");

  r.epoch_cuts = s.counter_or("record.epoch.cut_found");
  r.epoch_deferrals = s.counter_or("record.epoch.cut_deferred");
  r.epoch_flush_events = dist_or_empty(s, "record.epoch.flush_events");
  r.epoch_flush_ns = dist_or_empty(s, "record.epoch.flush_ns");

  r.service_jobs = s.counter_or("store.service.jobs");
  r.service_raw_bytes = s.counter_or("store.service.raw_bytes");
  r.service_encoded_bytes = s.counter_or("store.service.encoded_bytes");
  r.service_submit_stalls = s.counter_or("store.service.submit_stalls");
  r.service_queue_depth = dist_or_empty(s, "store.service.queue_depth");
  r.service_encode_ns = dist_or_empty(s, "store.service.encode_ns");
  r.service_commit_wait_ns =
      dist_or_empty(s, "store.service.commit_wait_ns");

  r.pool_hits = s.counter_or("store.pool.hits");
  r.pool_misses = s.counter_or("store.pool.misses");
  r.pool_recycled_bytes = s.counter_or("store.pool.recycled_bytes");

  r.async_enqueued = s.counter_or("tool.async.enqueued");
  r.async_dequeued = s.counter_or("tool.async.dequeued");
  r.async_producer_stalls = s.counter_or("tool.async.producer_stalls");

  r.sim_messages = s.counter_or("sim.messages_sent");
  r.sim_events = s.counter_or("sim.scheduler_events");
  r.sim_mf_calls = s.counter_or("sim.mf_calls");
  r.sim_faults = s.counter_or("sim.faults");
  if (const GaugeValue* vt = s.find_gauge("sim.virtual_time_us"))
    r.sim_virtual_seconds = static_cast<double>(vt->value) * 1e-6;
  if (const GaugeValue* qd = s.find_gauge("sim.max_queue_depth"))
    r.sim_max_queue_depth = static_cast<std::uint64_t>(qd->value);
  if (const GaugeValue* workers = s.find_gauge("sim.exec.workers"))
    r.exec_workers = static_cast<std::uint64_t>(workers->value);
  r.exec_windows = s.counter_or("sim.exec.horizon_advances");
  r.exec_steals = s.counter_or("sim.exec.steals");
  r.exec_barrier_waits = s.counter_or("sim.exec.barrier_waits");
  r.exec_worker_events = dist_or_empty(s, "sim.exec.worker_events");

  r.writer_frames = s.counter_or("store.container.frames");
  r.writer_payload_bytes = s.counter_or("store.container.payload_bytes");

  fill_stage(s, r.stage_inflate, "record.stage.inflate");
  r.decode_jobs = s.counter_or("store.decode.jobs");
  r.decode_bytes = s.counter_or("store.decode.decoded_bytes");
  r.decode_submit_stalls = s.counter_or("store.decode.submit_stalls");
  r.decode_queue_depth = dist_or_empty(s, "store.decode.queue_depth");
  r.decode_ns = dist_or_empty(s, "store.decode.decode_ns");
  r.decode_commit_wait_ns =
      dist_or_empty(s, "store.decode.commit_wait_ns");
  r.epoch_streams = s.counter_or("store.container.epoch_streams");
  r.epoch_fallbacks = s.counter_or("store.container.epoch_fallbacks");

  r.corpus_members = s.counter_or("corpus.members");
  r.corpus_streams = s.counter_or("corpus.streams");
  r.corpus_raw_bytes = s.counter_or("corpus.raw_bytes");
  r.corpus_stored_bytes = s.counter_or("corpus.stored_bytes");
  r.corpus_chunks_inserted = s.counter_or("corpus.chunks.inserted");
  r.corpus_chunk_hits = s.counter_or("corpus.chunks.hits");
  r.corpus_chunk_hit_bytes = s.counter_or("corpus.chunks.hit_bytes");
  r.corpus_pool_hits = s.counter_or("corpus.pool.hits");
  r.corpus_pool_misses = s.counter_or("corpus.pool.misses");
  r.corpus_pool_recycled_bytes = s.counter_or("corpus.pool.recycled_bytes");

  r.net_conns_accepted = s.counter_or("net.conns.accepted");
  r.net_conns_closed = s.counter_or("net.conns.closed");
  r.net_msgs_in = s.counter_or("net.msgs_in");
  r.net_msgs_out = s.counter_or("net.msgs_out");
  r.net_bytes_in = s.counter_or("net.bytes_in");
  r.net_bytes_out = s.counter_or("net.bytes_out");
  r.net_errors_sent = s.counter_or("net.errors_sent");
  r.net_parse_errors = s.counter_or("net.wire.parse_errors");
  r.net_suspensions = s.counter_or("net.backpressure.suspensions");
  r.net_sessions_opened = s.counter_or("net.sessions.opened");
  r.net_sessions_sealed = s.counter_or("net.sessions.sealed");
  r.net_sessions_aborted = s.counter_or("net.sessions.aborted");
  r.net_ingest_frames = s.counter_or("net.ingest.frames");
  r.net_ingest_raw_bytes = s.counter_or("net.ingest.raw_bytes");
  r.net_ingest_batches = s.counter_or("net.ingest.batches");
  r.net_replay_windows = s.counter_or("net.replay.windows");
  r.net_replay_window_bytes = s.counter_or("net.replay.window_bytes");
  r.net_resume_sessions = s.counter_or("net.server.resume.sessions");
  r.net_resume_recovered = s.counter_or("net.server.resume.recovered");
  r.net_resume_parked = s.counter_or("net.server.resume.parked");
  r.net_resume_deduped = s.counter_or("net.server.resume.deduped");
  r.net_resume_discarded = s.counter_or("net.server.resume.discarded");
  r.net_client_reconnects = s.counter_or("net.client.retry.reconnects");
  r.net_client_resumes = s.counter_or("net.client.retry.resumes");
  r.net_client_resent_batches = s.counter_or("net.client.retry.resent_batches");
  r.net_client_resent_bytes = s.counter_or("net.client.retry.resent_bytes");
  r.net_batch_ns = dist_or_empty(s, "net.ingest.batch_ns");
  // Tenant rows: every net.tenant.<name>.<what> counter becomes one cell.
  for (const CounterValue& c : s.counters) {
    constexpr std::string_view kPrefix = "net.tenant.";
    if (c.name.size() <= kPrefix.size() ||
        c.name.compare(0, kPrefix.size(), kPrefix) != 0)
      continue;
    const std::size_t dot = c.name.rfind('.');
    if (dot <= kPrefix.size()) continue;
    const std::string tenant = c.name.substr(kPrefix.size(),
                                             dot - kPrefix.size());
    const std::string what = c.name.substr(dot + 1);
    if (what == "frames") r.net_tenants[tenant].frames = c.value;
    else if (what == "raw_bytes") r.net_tenants[tenant].raw_bytes = c.value;
  }
  return r;
}

bool PipelineReport::reconcile() {
  reconciled = true;
  reconcile_note.clear();
  char note[160];

  const bool have_live = frame_bytes_out > 0;
  const bool have_container = container_frames > 0;
  if (have_live && have_container) {
    if (frame_bytes_out != container_stored_bytes) {
      reconciled = false;
      std::snprintf(note, sizeof note,
                    "encoder emitted %" PRIu64
                    " framed bytes but the container holds %" PRIu64,
                    frame_bytes_out, container_stored_bytes);
      reconcile_note = note;
    }
    if (reconciled && chunks != container_frames) {
      reconciled = false;
      std::snprintf(note, sizeof note,
                    "encoder sealed %" PRIu64
                    " chunks but the container holds %" PRIu64 " frames",
                    chunks, container_frames);
      reconcile_note = note;
    }
  }
  // Deflate accounting must agree with itself regardless of source.
  if (reconciled && have_live &&
      stage_deflate.bytes_out > frame_bytes_out) {
    reconciled = false;
    std::snprintf(note, sizeof note,
                  "deflate output %" PRIu64
                  " exceeds total framed bytes %" PRIu64,
                  stage_deflate.bytes_out, frame_bytes_out);
    reconcile_note = note;
  }
  if (reconciled && have_container &&
      container_stored_bytes > container_file_bytes &&
      container_file_bytes > 0) {
    reconciled = false;
    std::snprintf(note, sizeof note,
                  "stored frame bytes %" PRIu64
                  " exceed the container file size %" PRIu64,
                  container_stored_bytes, container_file_bytes);
    reconcile_note = note;
  }
  if (reconciled)
    reconcile_note = have_live && have_container
                         ? "encoder and container byte totals match"
                         : "single-source report; internal totals consistent";
  return reconciled;
}

std::string PipelineReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.field("report", "cdc_pipeline");

  w.key("stages").begin_object();
  write_stage(w, stage_re);
  write_stage(w, stage_pe);
  write_stage(w, stage_lp);
  write_stage(w, stage_deflate);
  write_stage(w, stage_inflate);
  w.end_object();

  w.key("record").begin_object();
  w.field("events_matched", events_matched);
  w.field("events_unmatched", events_unmatched);
  w.field("chunks", chunks);
  w.field("frame_bytes_out", frame_bytes_out);
  w.field("epoch_cuts", epoch_cuts);
  w.field("epoch_deferrals", epoch_deferrals);
  write_dist(w, "epoch_flush_events", epoch_flush_events);
  write_dist(w, "epoch_flush_ns", epoch_flush_ns);
  w.end_object();

  w.key("compression_service").begin_object();
  w.field("jobs", service_jobs);
  w.field("raw_bytes", service_raw_bytes);
  w.field("encoded_bytes", service_encoded_bytes);
  w.field("submit_stalls", service_submit_stalls);
  w.field("deflate_mb_per_s", deflate_mb_per_s());
  write_dist(w, "queue_depth", service_queue_depth);
  write_dist(w, "encode_ns", service_encode_ns);
  write_dist(w, "commit_wait_ns", service_commit_wait_ns);
  w.key("buffer_pool").begin_object();
  w.field("hits", pool_hits);
  w.field("misses", pool_misses);
  w.field("recycled_bytes", pool_recycled_bytes);
  w.field("hit_rate", pool_hit_rate());
  w.end_object();
  w.end_object();

  w.key("decode").begin_object();
  w.field("jobs", decode_jobs);
  w.field("decoded_bytes", decode_bytes);
  w.field("submit_stalls", decode_submit_stalls);
  w.field("inflate_mb_per_s", inflate_mb_per_s());
  w.field("epoch_streams", epoch_streams);
  w.field("epoch_fallbacks", epoch_fallbacks);
  write_dist(w, "queue_depth", decode_queue_depth);
  write_dist(w, "decode_ns", decode_ns);
  write_dist(w, "commit_wait_ns", decode_commit_wait_ns);
  w.end_object();

  w.key("async_recorder").begin_object();
  w.field("enqueued", async_enqueued);
  w.field("dequeued", async_dequeued);
  w.field("producer_stalls", async_producer_stalls);
  w.end_object();

  w.key("simulator").begin_object();
  w.field("messages_sent", sim_messages);
  w.field("scheduler_events", sim_events);
  w.field("mf_calls", sim_mf_calls);
  w.field("faults", sim_faults);
  w.field("virtual_seconds", sim_virtual_seconds);
  w.field("max_queue_depth", sim_max_queue_depth);
  w.key("executor").begin_object();
  w.field("workers", exec_workers);
  w.field("windows", exec_windows);
  w.field("steals", exec_steals);
  w.field("barrier_waits", exec_barrier_waits);
  write_dist(w, "worker_events", exec_worker_events);
  w.end_object();
  w.end_object();

  w.key("corpus").begin_object();
  w.field("members", corpus_members);
  w.field("streams", corpus_streams);
  w.field("raw_bytes", corpus_raw_bytes);
  w.field("stored_bytes", corpus_stored_bytes);
  w.field("dedup_ratio", corpus_dedup_ratio());
  w.field("chunks_inserted", corpus_chunks_inserted);
  w.field("chunk_hits", corpus_chunk_hits);
  w.field("chunk_hit_bytes", corpus_chunk_hit_bytes);
  w.key("buffer_pool").begin_object();
  w.field("hits", corpus_pool_hits);
  w.field("misses", corpus_pool_misses);
  w.field("recycled_bytes", corpus_pool_recycled_bytes);
  w.field("hit_rate", corpus_pool_hit_rate());
  w.end_object();
  w.end_object();

  w.key("net").begin_object();
  w.field("conns_accepted", net_conns_accepted);
  w.field("conns_closed", net_conns_closed);
  w.field("msgs_in", net_msgs_in);
  w.field("msgs_out", net_msgs_out);
  w.field("bytes_in", net_bytes_in);
  w.field("bytes_out", net_bytes_out);
  w.field("errors_sent", net_errors_sent);
  w.field("parse_errors", net_parse_errors);
  w.field("backpressure_suspensions", net_suspensions);
  w.field("sessions_opened", net_sessions_opened);
  w.field("sessions_sealed", net_sessions_sealed);
  w.field("sessions_aborted", net_sessions_aborted);
  w.field("ingest_frames", net_ingest_frames);
  w.field("ingest_raw_bytes", net_ingest_raw_bytes);
  w.field("ingest_batches", net_ingest_batches);
  w.field("replay_windows", net_replay_windows);
  w.field("replay_window_bytes", net_replay_window_bytes);
  w.key("resume").begin_object();
  w.field("sessions", net_resume_sessions);
  w.field("recovered", net_resume_recovered);
  w.field("parked", net_resume_parked);
  w.field("deduped", net_resume_deduped);
  w.field("discarded", net_resume_discarded);
  w.end_object();
  w.key("client_retry").begin_object();
  w.field("reconnects", net_client_reconnects);
  w.field("resumes", net_client_resumes);
  w.field("resent_batches", net_client_resent_batches);
  w.field("resent_bytes", net_client_resent_bytes);
  w.end_object();
  write_dist(w, "ingest_batch_ns", net_batch_ns);
  w.key("tenants").begin_object();
  for (const auto& [tenant, row] : net_tenants) {
    w.key(tenant).begin_object();
    w.field("frames", row.frames);
    w.field("raw_bytes", row.raw_bytes);
    w.end_object();
  }
  w.end_object();
  w.end_object();

  w.key("container").begin_object();
  w.field("file_bytes", container_file_bytes);
  w.field("frames", container_frames);
  w.field("stored_bytes", container_stored_bytes);
  w.field("raw_bytes", container_raw_bytes);
  w.field("chunk_events", container_chunk_events);
  w.field("chunk_values", container_chunk_values);
  w.field("writer_frames", writer_frames);
  w.field("writer_payload_bytes", writer_payload_bytes);
  w.field("sealed", container_sealed);
  w.key("codec_frames").begin_object();
  for (const auto& [codec, frames] : container_codec_frames)
    w.field(codec, frames);
  w.end_object();
  w.end_object();

  w.key("reconciliation").begin_object();
  w.field("ok", reconciled);
  w.field("note", reconcile_note);
  w.end_object();

  w.end_object();
  return std::move(w).take();
}

void PipelineReport::print(std::FILE* out) const {
  const auto bytes = [](std::uint64_t b) {
    return format_bytes(static_cast<double>(b));
  };
  std::fprintf(out, "== CDC pipeline report ==\n");
  if (sim_events > 0)
    std::fprintf(out,
                 "simulator : %" PRIu64 " events, %" PRIu64
                 " messages, %" PRIu64 " MF calls, %" PRIu64
                 " faults, %.6f virtual s\n",
                 sim_events, sim_messages, sim_mf_calls, sim_faults,
                 sim_virtual_seconds);
  if (exec_workers > 0)
    std::fprintf(out,
                 "executor  : %" PRIu64 " workers, %" PRIu64
                 " windows, %" PRIu64 " steals, %" PRIu64
                 " idle worker-windows; events/worker p50 %.0f max %" PRIu64
                 "\n",
                 exec_workers, exec_windows, exec_steals, exec_barrier_waits,
                 exec_worker_events.p50, exec_worker_events.max);
  if (events_matched > 0) {
    std::fprintf(out,
                 "record    : %" PRIu64 " matched + %" PRIu64
                 " unmatched events -> %" PRIu64 " chunks (%s framed)\n",
                 events_matched, events_unmatched, chunks,
                 bytes(frame_bytes_out).c_str());
    std::fprintf(out,
                 "epoch     : %" PRIu64 " clean cuts, %" PRIu64
                 " deferrals; events/flush p50 %.0f p99 %.0f; "
                 "flush ns p50 %.0f p99 %.0f\n",
                 epoch_cuts, epoch_deferrals, epoch_flush_events.p50,
                 epoch_flush_events.p99, epoch_flush_ns.p50,
                 epoch_flush_ns.p99);
    const StageReport* stages[] = {&stage_re, &stage_pe, &stage_lp,
                                   &stage_deflate};
    for (const StageReport* s : stages) {
      std::fprintf(out,
                   "  stage %-24s %8" PRIu64 " calls %10.3f ms",
                   s->name.c_str(), s->calls,
                   static_cast<double>(s->ns) * 1e-6);
      if (s->bytes_in > 0 || s->bytes_out > 0)
        std::fprintf(out, "  %s -> %s", bytes(s->bytes_in).c_str(),
                     bytes(s->bytes_out).c_str());
      if (s->values_out > 0)
        std::fprintf(out, "  %" PRIu64 " values", s->values_out);
      if (s == &stage_deflate && s->ns > 0)
        std::fprintf(out, "  %.1f MB/s", deflate_mb_per_s());
      std::fprintf(out, "\n");
    }
  }
  if (pool_hits + pool_misses > 0)
    std::fprintf(out,
                 "buffers   : %" PRIu64 " pool hits / %" PRIu64
                 " misses (%.1f%% reuse), %s recycled\n",
                 pool_hits, pool_misses, 100.0 * pool_hit_rate(),
                 bytes(pool_recycled_bytes).c_str());
  if (service_jobs > 0)
    std::fprintf(out,
                 "service   : %" PRIu64 " jobs, %s raw -> %s encoded, "
                 "%" PRIu64 " submit stalls, queue depth p50 %.0f max "
                 "%" PRIu64 "\n",
                 service_jobs, bytes(service_raw_bytes).c_str(),
                 bytes(service_encoded_bytes).c_str(),
                 service_submit_stalls, service_queue_depth.p50,
                 service_queue_depth.max);
  if (stage_inflate.calls > 0)
    std::fprintf(out,
                 "  stage %-24s %8" PRIu64 " calls %10.3f ms  %s -> %s"
                 "  %.1f MB/s\n",
                 stage_inflate.name.c_str(), stage_inflate.calls,
                 static_cast<double>(stage_inflate.ns) * 1e-6,
                 bytes(stage_inflate.bytes_in).c_str(),
                 bytes(stage_inflate.bytes_out).c_str(),
                 inflate_mb_per_s());
  if (decode_jobs > 0)
    std::fprintf(out,
                 "decode    : %" PRIu64 " jobs, %s decoded, %" PRIu64
                 " submit stalls, queue depth p50 %.0f max %" PRIu64 "\n",
                 decode_jobs, bytes(decode_bytes).c_str(),
                 decode_submit_stalls, decode_queue_depth.p50,
                 decode_queue_depth.max);
  if (epoch_streams > 0 || epoch_fallbacks > 0)
    std::fprintf(out,
                 "epoch idx : %" PRIu64 " streams indexed, %" PRIu64
                 " windowed-read fallbacks\n",
                 epoch_streams, epoch_fallbacks);
  if (async_enqueued > 0)
    std::fprintf(out,
                 "async     : %" PRIu64 " enqueued, %" PRIu64
                 " dequeued, %" PRIu64 " producer stalls\n",
                 async_enqueued, async_dequeued, async_producer_stalls);
  if (corpus_members > 0) {
    std::fprintf(out,
                 "corpus    : %" PRIu64 " members, %" PRIu64
                 " streams, %s raw -> %s stored, dedup %.2fx\n",
                 corpus_members, corpus_streams,
                 bytes(corpus_raw_bytes).c_str(),
                 bytes(corpus_stored_bytes).c_str(), corpus_dedup_ratio());
    std::fprintf(out,
                 "  chunks  : %" PRIu64 " inserted, %" PRIu64
                 " dedup hits (%s saved); pool %.1f%% reuse, %s recycled\n",
                 corpus_chunks_inserted, corpus_chunk_hits,
                 bytes(corpus_chunk_hit_bytes).c_str(),
                 100.0 * corpus_pool_hit_rate(),
                 bytes(corpus_pool_recycled_bytes).c_str());
  }
  if (net_conns_accepted > 0) {
    std::fprintf(out,
                 "net       : %" PRIu64 " conns, %" PRIu64 " msgs in / %"
                 PRIu64 " out (%s / %s), %" PRIu64 " errors, %" PRIu64
                 " suspensions\n",
                 net_conns_accepted, net_msgs_in, net_msgs_out,
                 bytes(net_bytes_in).c_str(), bytes(net_bytes_out).c_str(),
                 net_errors_sent, net_suspensions);
    std::fprintf(out,
                 "  sessions: %" PRIu64 " opened, %" PRIu64 " sealed, %"
                 PRIu64 " aborted; %" PRIu64 " frames (%s raw) in %" PRIu64
                 " batches; %" PRIu64 " windows (%s) out\n",
                 net_sessions_opened, net_sessions_sealed,
                 net_sessions_aborted, net_ingest_frames,
                 bytes(net_ingest_raw_bytes).c_str(), net_ingest_batches,
                 net_replay_windows,
                 bytes(net_replay_window_bytes).c_str());
    if (net_resume_sessions > 0 || net_resume_recovered > 0 ||
        net_resume_parked > 0 || net_client_reconnects > 0) {
      std::fprintf(out,
                   "  resume  : %" PRIu64 " sessions, %" PRIu64
                   " recovered, %" PRIu64 " parked, %" PRIu64
                   " deduped, %" PRIu64 " discarded; clients %" PRIu64
                   " reconnects, %" PRIu64 " batches re-sent (%s)\n",
                   net_resume_sessions, net_resume_recovered,
                   net_resume_parked, net_resume_deduped,
                   net_resume_discarded, net_client_reconnects,
                   net_client_resent_batches,
                   bytes(net_client_resent_bytes).c_str());
    }
    for (const auto& [tenant, row] : net_tenants)
      std::fprintf(out, "  tenant %-16s %8" PRIu64 " frames  %s\n",
                   tenant.c_str(), row.frames,
                   bytes(row.raw_bytes).c_str());
  }
  if (container_frames > 0) {
    std::fprintf(out,
                 "container : %" PRIu64 " frames, %s stored (%s raw "
                 "chunks), file %s, %ssealed\n",
                 container_frames, bytes(container_stored_bytes).c_str(),
                 bytes(container_raw_bytes).c_str(),
                 bytes(container_file_bytes).c_str(),
                 container_sealed ? "" : "NOT ");
    for (const auto& [codec, frames] : container_codec_frames)
      std::fprintf(out, "  codec %-16s %8" PRIu64 " frames\n",
                   codec.c_str(), frames);
    if (container_chunk_events > 0)
      std::fprintf(out,
                   "  CDC chunks: %" PRIu64 " matched events, %" PRIu64
                   " stored values (%.3f values/event)\n",
                   container_chunk_events, container_chunk_values,
                   static_cast<double>(container_chunk_values) /
                       static_cast<double>(container_chunk_events));
  }
  std::fprintf(out, "reconcile : %s — %s\n", reconciled ? "OK" : "FAILED",
               reconcile_note.c_str());
}

}  // namespace cdc::obs
