// The per-run pipeline report: one structured answer to "where did the
// bytes and the time go" for a record/replay run.
//
// Two data sources fill it:
//   * the live metrics snapshot of an instrumented run (stage timings,
//     epoch flush distribution, compression-service behaviour) — see
//     PipelineReport::from_snapshot and the metric names in DESIGN.md §8;
//   * a record container on disk, decoded frame by frame (byte totals per
//     stage, frame counts per codec) — filled by tool::inspect_pipeline,
//     which lives above the store layer.
// When both are present, reconcile() cross-checks them: the bytes the
// encoder reported writing must equal the bytes the container actually
// holds.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.h"

namespace cdc::obs {

/// One codec stage: work in, work out, time spent.
struct StageReport {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t ns = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  /// Stored-value accounting (the paper's 55 → 23 → 19 arithmetic) where
  /// bytes are not yet meaningful for a stage.
  std::uint64_t values_out = 0;
};

/// Compact histogram summary for the report (latency distributions).
struct DistReport {
  std::uint64_t count = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  static DistReport from(const HistogramValue& h);
};

struct PipelineReport {
  // --- live section (zero when built from a cold container) -------------
  /// redundancy elimination → permutation → LP serialize → gzip/DEFLATE.
  StageReport stage_re{"redundancy_elimination"};
  StageReport stage_pe{"permutation"};
  StageReport stage_lp{"lp_serialize"};
  StageReport stage_deflate{"deflate"};
  std::uint64_t events_matched = 0;
  std::uint64_t events_unmatched = 0;
  std::uint64_t chunks = 0;
  std::uint64_t frame_bytes_out = 0;  ///< framed bytes the encoder emitted

  std::uint64_t epoch_cuts = 0;
  std::uint64_t epoch_deferrals = 0;  ///< flushes postponed by a dirty cut
  DistReport epoch_flush_events;      ///< matched events per flushed chunk
  DistReport epoch_flush_ns;          ///< wall ns per flush call

  std::uint64_t service_jobs = 0;
  std::uint64_t service_raw_bytes = 0;
  std::uint64_t service_encoded_bytes = 0;
  std::uint64_t service_submit_stalls = 0;
  DistReport service_queue_depth;
  DistReport service_encode_ns;
  DistReport service_commit_wait_ns;

  /// Output-buffer recycling (store.pool.* — the CompressionService's
  /// BufferPool and the inline/retrying sinks' scratch buffers report
  /// under the same names, so this is the whole pipeline's reuse rate).
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  std::uint64_t pool_recycled_bytes = 0;

  std::uint64_t async_enqueued = 0;
  std::uint64_t async_dequeued = 0;
  std::uint64_t async_producer_stalls = 0;

  std::uint64_t sim_messages = 0;
  std::uint64_t sim_events = 0;
  std::uint64_t sim_mf_calls = 0;
  std::uint64_t sim_faults = 0;
  double sim_virtual_seconds = 0.0;
  /// Event-queue high-water mark (sim.max_queue_depth — the deepest
  /// per-rank shard heap under the parallel executor).
  std::uint64_t sim_max_queue_depth = 0;

  // --- executor section (zero on sequential runs — DESIGN.md §15) ---------
  std::uint64_t exec_workers = 0;           ///< worker threads of the run
  std::uint64_t exec_windows = 0;           ///< horizon advances (windows)
  std::uint64_t exec_steals = 0;            ///< cross-worker rank claims
  std::uint64_t exec_barrier_waits = 0;     ///< worker-windows spent idle
  DistReport exec_worker_events;            ///< events per worker, whole run

  std::uint64_t writer_frames = 0;
  std::uint64_t writer_payload_bytes = 0;

  // --- decode section (zero for record-only runs) -------------------------
  /// DEFLATE decode (tool::read_frame) — the mirror of stage_deflate.
  StageReport stage_inflate{"inflate"};
  std::uint64_t decode_jobs = 0;  ///< DecompressionService jobs committed
  std::uint64_t decode_bytes = 0;
  std::uint64_t decode_submit_stalls = 0;
  DistReport decode_queue_depth;
  DistReport decode_ns;
  DistReport decode_commit_wait_ns;
  /// Epoch-index bookkeeping: streams indexed at seal time, and windowed
  /// reads that had to fall back to a sequential scan (damaged or absent
  /// index) — a nonzero fallback count on a fresh container is a bug.
  std::uint64_t epoch_streams = 0;
  std::uint64_t epoch_fallbacks = 0;

  // --- corpus section (zero when no corpus store ran) --------------------
  std::uint64_t corpus_members = 0;
  std::uint64_t corpus_streams = 0;
  std::uint64_t corpus_raw_bytes = 0;     ///< member payloads before dedup
  std::uint64_t corpus_stored_bytes = 0;  ///< corpus frame bytes written
  std::uint64_t corpus_chunks_inserted = 0;
  std::uint64_t corpus_chunk_hits = 0;
  std::uint64_t corpus_chunk_hit_bytes = 0;
  std::uint64_t corpus_pool_hits = 0;
  std::uint64_t corpus_pool_misses = 0;
  std::uint64_t corpus_pool_recycled_bytes = 0;

  // --- net section (zero when no record service ran) ----------------------
  std::uint64_t net_conns_accepted = 0;
  std::uint64_t net_conns_closed = 0;
  std::uint64_t net_msgs_in = 0;
  std::uint64_t net_msgs_out = 0;
  std::uint64_t net_bytes_in = 0;
  std::uint64_t net_bytes_out = 0;
  std::uint64_t net_errors_sent = 0;
  std::uint64_t net_parse_errors = 0;
  std::uint64_t net_suspensions = 0;  ///< backpressure read-suspensions
  std::uint64_t net_sessions_opened = 0;
  std::uint64_t net_sessions_sealed = 0;
  std::uint64_t net_sessions_aborted = 0;
  std::uint64_t net_ingest_frames = 0;
  std::uint64_t net_ingest_raw_bytes = 0;
  std::uint64_t net_ingest_batches = 0;
  std::uint64_t net_replay_windows = 0;
  std::uint64_t net_replay_window_bytes = 0;
  // Crash-safe resume (DESIGN.md §14): server-side session lifecycle
  // and client-side retry activity.
  std::uint64_t net_resume_sessions = 0;    ///< resumed via v2 HELLO
  std::uint64_t net_resume_recovered = 0;   ///< journaled partials at start
  std::uint64_t net_resume_parked = 0;      ///< partials kept on disconnect
  std::uint64_t net_resume_deduped = 0;     ///< re-sent batches dropped
  std::uint64_t net_resume_discarded = 0;   ///< unresumable partials removed
  std::uint64_t net_client_reconnects = 0;
  std::uint64_t net_client_resumes = 0;
  std::uint64_t net_client_resent_batches = 0;
  std::uint64_t net_client_resent_bytes = 0;
  DistReport net_batch_ns;  ///< per-batch ingest wall time
  /// Per-tenant ingest totals, keyed by tenant name (the server registers
  /// net.tenant.<name>.frames / .raw_bytes counters per tenant).
  struct NetTenantRow {
    std::uint64_t frames = 0;
    std::uint64_t raw_bytes = 0;
  };
  std::map<std::string, NetTenantRow> net_tenants;

  // --- container section (zero without a container) ----------------------
  std::uint64_t container_file_bytes = 0;
  std::uint64_t container_frames = 0;
  /// Tool-frame bytes (header + compressed payload) summed over frames —
  /// what must match frame_bytes_out and the index payload accounting.
  std::uint64_t container_stored_bytes = 0;
  /// Decompressed chunk payload bytes (the deflate stage's input side).
  std::uint64_t container_raw_bytes = 0;
  std::uint64_t container_chunk_events = 0;   ///< matched N over CDC chunks
  std::uint64_t container_chunk_values = 0;   ///< stored-value accounting
  std::map<std::string, std::uint64_t> container_codec_frames;
  bool container_sealed = false;

  // --- reconciliation -----------------------------------------------------
  bool reconciled = false;
  std::string reconcile_note;

  /// DEFLATE stage throughput in MB/s (raw bytes in over stage wall time);
  /// 0 when the stage recorded no time.
  [[nodiscard]] double deflate_mb_per_s() const noexcept;

  /// Inflate stage throughput in MB/s measured on the raw (decompressed)
  /// side, so it is directly comparable to deflate_mb_per_s(); 0 when the
  /// stage recorded no time.
  [[nodiscard]] double inflate_mb_per_s() const noexcept;

  /// Fraction of frame encodes that reused a recycled output buffer,
  /// in [0, 1]; 0 when nothing was encoded.
  [[nodiscard]] double pool_hit_rate() const noexcept;

  /// Corpus dedup ratio: member raw bytes over corpus stored bytes (the
  /// "dedup" column); 0 when no corpus ingest ran.
  [[nodiscard]] double corpus_dedup_ratio() const noexcept;

  /// Corpus scratch-pool reuse rate in [0, 1].
  [[nodiscard]] double corpus_pool_hit_rate() const noexcept;

  /// Fills the live section from a metrics snapshot.
  static PipelineReport from_snapshot(const MetricsSnapshot& snapshot);

  /// Cross-checks live totals against the container section (call after
  /// both are filled); sets `reconciled`/`reconcile_note` and returns
  /// `reconciled`. With no live data it only checks the container's
  /// internal consistency.
  bool reconcile();

  [[nodiscard]] std::string to_json() const;
  void print(std::FILE* out) const;
};

}  // namespace cdc::obs
