// Descriptive statistics shared by the metrics layer, the pipeline
// report, and the figure benches. Home of the accumulators that used to
// live in support/stats.h (which now re-exports from here): one place owns
// the min/max/mean/variance logic.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "support/check.h"

namespace cdc::obs {

/// Online min/max/mean accumulator (Welford variance).
class Summary {
 public:
  void add(double x) noexcept {
    ++n_;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept {
    return std::sqrt(variance());
  }

 private:
  std::size_t n_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Fixed-width bucket histogram over [lo, hi); values outside clamp to the
/// end buckets. (The concurrent, log-bucketed metric histogram lives in
/// obs/metrics.h — this one is the single-threaded analysis tool Figure 14
/// plots.)
class FixedHistogram {
 public:
  FixedHistogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets, 0) {
    CDC_CHECK(hi > lo && buckets > 0);
  }

  void add(double x) noexcept {
    const double t = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::ptrdiff_t>(
        t * static_cast<double>(counts_.size()));
    idx = std::clamp<std::ptrdiff_t>(
        idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    summary_.add(x);
  }

  [[nodiscard]] const std::vector<std::size_t>& counts() const noexcept {
    return counts_;
  }
  [[nodiscard]] double bucket_lo(std::size_t i) const noexcept {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
  }
  [[nodiscard]] double bucket_width() const noexcept {
    return (hi_ - lo_) / static_cast<double>(counts_.size());
  }
  [[nodiscard]] const Summary& summary() const noexcept { return summary_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  Summary summary_;
};

/// Human-readable byte size, e.g. "197.0 MB" — used by the fig-13/15/17
/// harness output to mirror the paper's units.
inline std::string format_bytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1000.0 && u < 4) {
    bytes /= 1000.0;
    ++u;
  }
  char out[32];
  std::snprintf(out, sizeof out, "%.2f %s", bytes, units[u]);
  return out;
}

}  // namespace cdc::obs
