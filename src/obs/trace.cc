#include "obs/trace.h"

#include <algorithm>

#include "obs/json.h"

namespace cdc::obs {

TraceBuffer::TraceBuffer(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 1)) {}

std::size_t TraceBuffer::size() const noexcept {
  const std::uint64_t n = next_.load(std::memory_order_relaxed);
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(n, ring_.size()));
}

std::uint64_t TraceBuffer::dropped() const noexcept {
  const std::uint64_t n = next_.load(std::memory_order_relaxed);
  return n > ring_.size() ? n - ring_.size() : 0;
}

std::vector<TraceEvent> TraceBuffer::events() const {
  const std::uint64_t n = next_.load(std::memory_order_relaxed);
  std::vector<TraceEvent> out;
  if (n <= ring_.size()) {
    out.assign(ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(n));
  } else {
    // Oldest surviving event sits at next_ % capacity.
    const std::size_t head = static_cast<std::size_t>(n % ring_.size());
    out.reserve(ring_.size());
    out.insert(out.end(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head));
  }
  return out;
}

std::string TraceBuffer::export_chrome_json(
    const TraceExportOptions& options) const {
  JsonWriter w;
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  for (const TraceEvent& e : events()) {
    w.begin_object();
    w.field("name", e.name);
    w.field("ph", std::string_view(&e.phase, 1));
    // Chrome wants integers for pid/tid; ranks map to pids so Perfetto
    // groups tracks per simulated process. Rankless events land on pid 0.
    w.field("pid", e.rank >= 0 ? e.rank : 0);
    w.field("tid", e.tid);
    w.field("ts", options.virtual_time ? e.virt_us : e.wall_us);
    if (e.phase == 'X')
      w.field("dur", options.virtual_time ? e.dur_virt_us : e.dur_wall_us);
    if (options.include_args) {
      w.key("args").begin_object();
      if (options.virtual_time)
        w.field("wall_us", e.wall_us);
      else
        w.field("vt_us", e.virt_us);
      if (e.arg_name != nullptr) w.field(e.arg_name, e.arg);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return std::move(w).take();
}

void install_trace(TraceBuffer* buffer) noexcept {
  detail::trace_slot().store(buffer, std::memory_order_release);
}

TraceBuffer* trace_sink() noexcept {
  return detail::trace_slot().load(std::memory_order_acquire);
}

void trace_instant(const char* name, std::int32_t rank,
                   const char* arg_name, std::uint64_t arg) noexcept {
  if (!tracing()) return;
  TraceBuffer* sink = trace_sink();
  if (sink == nullptr) return;
  TraceEvent e;
  e.name = name;
  e.phase = 'i';
  e.rank = rank;
  e.tid = thread_index();
  e.wall_us = wall_now_us();
  e.virt_us = virtual_now() * 1e6;
  e.arg_name = arg_name;
  e.arg = arg;
  sink->emit(e);
}

TraceSpan::TraceSpan(const char* name, std::int32_t rank,
                     const char* arg_name, std::uint64_t arg) noexcept {
  if (!tracing()) return;
  active_ = true;
  event_.name = name;
  event_.phase = 'X';
  event_.rank = rank;
  event_.tid = thread_index();
  event_.wall_us = wall_now_us();
  event_.virt_us = virtual_now() * 1e6;
  event_.arg_name = arg_name;
  event_.arg = arg;
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  TraceBuffer* sink = trace_sink();
  if (sink == nullptr) return;  // uninstalled while the span was open
  event_.dur_wall_us = wall_now_us() - event_.wall_us;
  event_.dur_virt_us =
      std::max(0.0, virtual_now() * 1e6 - event_.virt_us);
  sink->emit(event_);
}

}  // namespace cdc::obs
