// Virtual-time tracing: a bounded per-run flight-recorder ring of spans
// and instant events, exportable as Chrome trace-event JSON (loadable in
// Perfetto / chrome://tracing).
//
// Every event is stamped with BOTH time domains:
//   * wall time  — microseconds since process start (steady clock);
//   * virtual time — the simulator's clock as last published through
//     obs::publish_virtual_now (µs), so message receives, epoch flushes,
//     codec stage boundaries, and injected faults can be correlated
//     against the simulated schedule, not just against the host CPU.
// Export picks either domain for the `ts` axis; virtual-time export of a
// single-threaded run is bit-deterministic for a fixed CDC_SEED (the other
// domain rides along in `args` unless suppressed).
//
// The ring is a fixed-capacity flight recorder: emission is an atomic
// index fetch_add plus a slot write (no allocation, no locking), and once
// full the oldest events are overwritten — a crashed or runaway run keeps
// its most recent window. Event names must be string literals (or
// otherwise outlive the buffer); the ring stores only the pointer.
//
// Tracing is off unless a buffer is installed:
//   obs::TraceBuffer ring(1 << 16);
//   obs::install_trace(&ring);          // emitters now record
//   ... run ...
//   obs::install_trace(nullptr);        // quiesce before exporting
//   std::string json = ring.export_chrome_json({.virtual_time = true});
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace cdc::obs {

struct TraceExportOptions {
  /// Use virtual time as the trace `ts`/`dur` axis (deterministic for a
  /// fixed seed); wall time otherwise.
  bool virtual_time = false;
  /// Include the other time domain (and numeric args) in `args`. Turn
  /// off for byte-deterministic output.
  bool include_args = true;
};

struct TraceEvent {
  const char* name = "";       ///< static-lifetime string
  char phase = 'i';            ///< 'X' complete span, 'i' instant
  std::int32_t rank = -1;      ///< simulator rank; -1 = no rank (pid 0)
  std::uint32_t tid = 0;       ///< obs::thread_index() of the emitter
  double wall_us = 0.0;
  double virt_us = 0.0;
  double dur_wall_us = 0.0;    ///< 'X' only
  double dur_virt_us = 0.0;    ///< 'X' only
  const char* arg_name = nullptr;  ///< optional single numeric argument
  std::uint64_t arg = 0;
};

class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Lock-free append; overwrites the oldest event when full. Slots are
  /// written non-atomically — export only after emitters have quiesced.
  void emit(const TraceEvent& event) noexcept {
    const std::uint64_t i = next_.fetch_add(1, std::memory_order_relaxed);
    ring_[static_cast<std::size_t>(i % ring_.size())] = event;
  }

  [[nodiscard]] std::size_t capacity() const noexcept {
    return ring_.size();
  }
  /// Events currently retained (≤ capacity).
  [[nodiscard]] std::size_t size() const noexcept;
  /// Events lost to overwrite so far.
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  void clear() noexcept { next_.store(0, std::memory_order_relaxed); }

  /// Chrome trace-event JSON ({"traceEvents": [...]}); `ts` in µs.
  [[nodiscard]] std::string export_chrome_json(
      const TraceExportOptions& options = {}) const;

 private:
  std::vector<TraceEvent> ring_;
  std::atomic<std::uint64_t> next_{0};
};

/// Installs (or, with nullptr, removes) the process-global trace sink.
/// The buffer must outlive its installation.
void install_trace(TraceBuffer* buffer) noexcept;
[[nodiscard]] TraceBuffer* trace_sink() noexcept;

/// True when a sink is installed and the obs layer is enabled — emitters
/// that need to prepare arguments should check this first.
[[nodiscard]] inline bool tracing() noexcept;

/// Emits an instant event ('i') into the installed sink, if any.
void trace_instant(const char* name, std::int32_t rank = -1,
                   const char* arg_name = nullptr,
                   std::uint64_t arg = 0) noexcept;

/// RAII span: stamps both clocks at construction and emits one 'X' event
/// at destruction. Inert when tracing was off at construction.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, std::int32_t rank = -1,
                     const char* arg_name = nullptr,
                     std::uint64_t arg = 0) noexcept;
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Updates the span's numeric argument before it closes (e.g. bytes
  /// produced, known only at the end of the stage).
  void set_arg(std::uint64_t arg) noexcept { event_.arg = arg; }

 private:
  bool active_ = false;
  TraceEvent event_;
};

// --- inline bits ----------------------------------------------------------

namespace detail {
inline std::atomic<TraceBuffer*>& trace_slot() noexcept {
  static std::atomic<TraceBuffer*> slot{nullptr};
  return slot;
}
}  // namespace detail

inline bool tracing() noexcept {
#ifdef CDC_OBS_DISABLED
  return false;
#else
  return enabled() &&
         detail::trace_slot().load(std::memory_order_acquire) != nullptr;
#endif
}

}  // namespace cdc::obs
