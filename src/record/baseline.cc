#include "record/baseline.h"

#include "support/bitstream.h"

namespace cdc::record {

std::vector<std::uint8_t> baseline_serialize(std::span<const EventRow> rows) {
  support::BitWriter writer;
  for (const EventRow& row : rows) {
    writer.write(static_cast<std::uint32_t>(row.count), 32);
    writer.write(static_cast<std::uint32_t>(row.count >> 32), 32);
    writer.write(row.event.flag ? 1u : 0u, 1);
    writer.write(row.event.with_next ? 1u : 0u, 1);
    writer.write(static_cast<std::uint32_t>(row.event.rank), 32);
    writer.write(static_cast<std::uint32_t>(row.event.clock), 32);
    writer.write(static_cast<std::uint32_t>(row.event.clock >> 32), 32);
  }
  return std::move(writer).finish();
}

std::optional<std::vector<EventRow>> baseline_parse(
    std::span<const std::uint8_t> bytes, std::size_t row_count) {
  support::BitReader reader(bytes);
  std::vector<EventRow> rows;
  rows.reserve(row_count);
  for (std::size_t i = 0; i < row_count; ++i) {
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
    std::uint32_t flag = 0;
    std::uint32_t with_next = 0;
    std::uint32_t rank = 0;
    std::uint32_t clock_lo = 0;
    std::uint32_t clock_hi = 0;
    if (!reader.try_read(32, lo) || !reader.try_read(32, hi) ||
        !reader.try_read(1, flag) || !reader.try_read(1, with_next) ||
        !reader.try_read(32, rank) || !reader.try_read(32, clock_lo) ||
        !reader.try_read(32, clock_hi))
      return std::nullopt;
    EventRow row;
    row.count = (static_cast<std::uint64_t>(hi) << 32) | lo;
    row.event.flag = flag != 0;
    row.event.with_next = with_next != 0;
    row.event.rank = static_cast<std::int32_t>(rank);
    row.event.clock =
        (static_cast<std::uint64_t>(clock_hi) << 32) | clock_lo;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace cdc::record
