// The traditional order-replay record format (§6.1's "w/o Compression"
// baseline): one Figure 4 row per event run, bit-packed exactly as the
// paper accounts it — count (64 bits), flag (1 bit), with_next (1 bit),
// rank (32 bits), clock (64 bits) = 162 bits per row. The "gzip" baseline
// of Figure 13 applies gzip to this packed byte stream.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "record/event.h"

namespace cdc::record {

inline constexpr std::size_t kBaselineBitsPerRow = 64 + 1 + 1 + 32 + 64;

/// Bit-packs Figure 4 rows (162 bits each, final byte zero-padded).
std::vector<std::uint8_t> baseline_serialize(std::span<const EventRow> rows);

/// Parses a baseline byte stream back into rows. The row count must be
/// supplied (the format is headerless, as a traditional tool's would be).
std::optional<std::vector<EventRow>> baseline_parse(
    std::span<const std::uint8_t> bytes, std::size_t row_count);

/// Exact size in bytes of `row_count` packed rows.
[[nodiscard]] constexpr std::size_t baseline_size_bytes(
    std::size_t row_count) noexcept {
  return (row_count * kBaselineBitsPerRow + 7) / 8;
}

}  // namespace cdc::record
