#include "record/chunk.h"

#include <algorithm>
#include <map>

#include "record/fast_permutation.h"
#include "record/lp.h"
#include "support/bitstream.h"
#include "support/check.h"

namespace cdc::record {

std::vector<clock::MessageId> reference_order(
    std::span<const clock::MessageId> matched) {
  std::vector<clock::MessageId> reference(matched.begin(), matched.end());
  std::sort(reference.begin(), reference.end(), clock::ReferenceOrderLess{});
  return reference;
}

CdcChunk encode_chunk(const ChunkTables& tables) {
  CdcChunk chunk;
  chunk.num_matched = tables.matched.size();
  chunk.with_next = tables.with_next;
  chunk.unmatched = tables.unmatched;

  // Reference order and the observed permutation B over reference indices.
  const std::vector<clock::MessageId> reference =
      reference_order(tables.matched);
  std::map<std::pair<std::uint64_t, std::int32_t>, std::uint32_t> ref_index;
  for (std::uint32_t j = 0; j < reference.size(); ++j) {
    const bool inserted =
        ref_index
            .emplace(std::make_pair(reference[j].clock, reference[j].sender),
                     j)
            .second;
    CDC_CHECK_MSG(inserted, "duplicate (clock, sender) message id in chunk");
  }
  std::vector<std::uint32_t> b;
  b.reserve(tables.matched.size());
  for (const clock::MessageId& id : tables.matched)
    b.push_back(ref_index.at(std::make_pair(id.clock, id.sender)));

  chunk.moves = fast_encode_permutation(b);
  chunk.ref_senders.reserve(reference.size());
  for (const clock::MessageId& id : reference)
    chunk.ref_senders.push_back(id.sender);

  // Epoch line: per-sender maximum clock among the chunk's receives.
  std::map<std::int32_t, std::uint64_t> epoch;
  for (const clock::MessageId& id : tables.matched) {
    auto [it, inserted] = epoch.emplace(id.sender, id.clock);
    if (!inserted && id.clock > it->second) it->second = id.clock;
  }
  for (const auto& [sender, max_clock] : epoch)
    chunk.epoch.push_back(EpochEntry{sender, max_clock});
  return chunk;
}

std::vector<std::uint32_t> observed_reference_indices(const CdcChunk& chunk) {
  return fast_apply_moves(static_cast<std::size_t>(chunk.num_matched),
                          chunk.moves);
}

ChunkTables decode_chunk(const CdcChunk& chunk,
                         std::span<const clock::MessageId> reference) {
  CDC_CHECK(reference.size() == chunk.num_matched);
  for (std::size_t j = 0; j < reference.size(); ++j)
    CDC_CHECK_MSG(reference[j].sender == chunk.ref_senders[j],
                  "reference order disagrees with the recorded senders");
  ChunkTables tables;
  const std::vector<std::uint32_t> b = observed_reference_indices(chunk);
  tables.matched.reserve(reference.size());
  for (const std::uint32_t j : b) tables.matched.push_back(reference[j]);
  tables.with_next = chunk.with_next;
  tables.unmatched = chunk.unmatched;
  return tables;
}

// --- Serialization --------------------------------------------------------

namespace {

void write_lp_indices(support::ByteWriter& writer,
                      std::span<const std::int64_t> indices) {
  const std::vector<std::int64_t> encoded = lp_encode(indices);
  writer.varint(encoded.size());
  for (const std::int64_t e : encoded) writer.svarint(e);
}

[[nodiscard]] bool read_lp_indices(support::ByteReader& reader,
                                   std::vector<std::int64_t>& out) {
  std::uint64_t n = 0;
  if (!reader.try_varint(n) || n > reader.remaining() + 1) return false;
  std::vector<std::int64_t> encoded(static_cast<std::size_t>(n));
  for (auto& e : encoded)
    if (!reader.try_svarint(e)) return false;
  out = lp_decode(encoded);
  return true;
}

}  // namespace

void write_chunk(support::ByteWriter& writer, const CdcChunk& chunk) {
  writer.varint(chunk.num_matched);

  // Permutation-difference table: LP-encoded indices, zigzag delays.
  std::vector<std::int64_t> move_indices;
  move_indices.reserve(chunk.moves.size());
  for (const MoveOp& op : chunk.moves) move_indices.push_back(op.index);
  write_lp_indices(writer, move_indices);
  for (const MoveOp& op : chunk.moves) writer.svarint(op.delay);

  // with_next table: LP-encoded indices when sparse, a bitmap over the
  // matched events when dense (Testsome-heavy streams mark most events).
  {
    support::ByteWriter sparse;
    std::vector<std::int64_t> wn(chunk.with_next.begin(),
                                 chunk.with_next.end());
    write_lp_indices(sparse, wn);
    const std::size_t bitmap_bytes =
        (static_cast<std::size_t>(chunk.num_matched) + 7) / 8;
    if (bitmap_bytes < sparse.size()) {
      writer.u8(1);  // bitmap mode
      support::BitWriter bitmap;
      std::size_t next = 0;
      for (std::uint64_t i = 0; i < chunk.num_matched; ++i) {
        const bool set =
            next < chunk.with_next.size() && chunk.with_next[next] == i;
        if (set) ++next;
        bitmap.write(set ? 1u : 0u, 1);
      }
      writer.bytes(std::move(bitmap).finish());
    } else {
      writer.u8(0);  // sparse mode
      writer.bytes(sparse.view());
    }
  }

  // unmatched-test table.
  std::vector<std::int64_t> um;
  um.reserve(chunk.unmatched.size());
  for (const UnmatchedRun& run : chunk.unmatched)
    um.push_back(static_cast<std::int64_t>(run.index));
  write_lp_indices(writer, um);
  for (const UnmatchedRun& run : chunk.unmatched) writer.varint(run.count);

  // Epoch line: senders are sorted, so delta-encode; clocks verbatim.
  // Written before the sender column, whose alphabet it defines.
  writer.varint(chunk.epoch.size());
  std::int64_t prev_sender = 0;
  for (const EpochEntry& entry : chunk.epoch) {
    writer.svarint(entry.sender - prev_sender);
    prev_sender = entry.sender;
    writer.varint(entry.clock);
  }

  // Reference-order sender column, bit-packed against the epoch-table
  // alphabet: ceil(log2(#senders)) bits per entry; zero bits when the
  // chunk has a single sender.
  {
    std::map<std::int32_t, std::uint32_t> alphabet;
    for (const EpochEntry& entry : chunk.epoch)
      alphabet.emplace(entry.sender,
                       static_cast<std::uint32_t>(alphabet.size()));
    int bits = 0;
    while ((std::size_t{1} << bits) < alphabet.size()) ++bits;
    support::BitWriter packed;
    for (const std::int32_t s : chunk.ref_senders)
      packed.write(alphabet.at(s), bits);
    const std::vector<std::uint8_t> bytes = std::move(packed).finish();
    writer.bytes(bytes);
  }
}

std::optional<CdcChunk> read_chunk(support::ByteReader& reader) {
  CdcChunk chunk;
  if (!reader.try_varint(chunk.num_matched)) return std::nullopt;

  std::vector<std::int64_t> move_indices;
  if (!read_lp_indices(reader, move_indices)) return std::nullopt;
  chunk.moves.resize(move_indices.size());
  for (std::size_t i = 0; i < move_indices.size(); ++i) {
    chunk.moves[i].index = move_indices[i];
    if (!reader.try_svarint(chunk.moves[i].delay)) return std::nullopt;
  }

  std::uint8_t wn_mode = 0;
  if (!reader.try_u8(wn_mode)) return std::nullopt;
  if (wn_mode == 1) {
    if (chunk.num_matched > (std::uint64_t{1} << 28)) return std::nullopt;
    const std::size_t bitmap_bytes =
        (static_cast<std::size_t>(chunk.num_matched) + 7) / 8;
    std::span<const std::uint8_t> body;
    if (!reader.try_bytes(bitmap_bytes, body)) return std::nullopt;
    support::BitReader bitmap(body);
    for (std::uint64_t i = 0; i < chunk.num_matched; ++i) {
      std::uint32_t bit = 0;
      if (!bitmap.try_read_bit(bit)) return std::nullopt;
      if (bit != 0) chunk.with_next.push_back(i);
    }
  } else if (wn_mode == 0) {
    std::vector<std::int64_t> wn;
    if (!read_lp_indices(reader, wn)) return std::nullopt;
    chunk.with_next.assign(wn.begin(), wn.end());
  } else {
    return std::nullopt;
  }

  std::vector<std::int64_t> um;
  if (!read_lp_indices(reader, um)) return std::nullopt;
  chunk.unmatched.resize(um.size());
  for (std::size_t i = 0; i < um.size(); ++i) {
    chunk.unmatched[i].index = static_cast<std::uint64_t>(um[i]);
    if (!reader.try_varint(chunk.unmatched[i].count)) return std::nullopt;
  }

  if (chunk.num_matched > (std::uint64_t{1} << 28)) return std::nullopt;

  std::uint64_t num_epoch = 0;
  if (!reader.try_varint(num_epoch) || num_epoch > reader.remaining() + 1)
    return std::nullopt;
  chunk.epoch.resize(static_cast<std::size_t>(num_epoch));
  std::int64_t prev_sender = 0;
  for (auto& entry : chunk.epoch) {
    std::int64_t delta = 0;
    if (!reader.try_svarint(delta)) return std::nullopt;
    prev_sender += delta;
    entry.sender = static_cast<std::int32_t>(prev_sender);
    if (!reader.try_varint(entry.clock)) return std::nullopt;
  }

  // Bit-packed sender column over the epoch alphabet.
  {
    int bits = 0;
    while ((std::size_t{1} << bits) < chunk.epoch.size()) ++bits;
    const std::size_t packed_bytes =
        (static_cast<std::size_t>(chunk.num_matched) *
             static_cast<std::size_t>(bits) + 7) / 8;
    std::span<const std::uint8_t> body;
    if (!reader.try_bytes(packed_bytes, body)) return std::nullopt;
    support::BitReader packed(body);
    chunk.ref_senders.resize(static_cast<std::size_t>(chunk.num_matched));
    for (auto& s : chunk.ref_senders) {
      std::uint32_t index = 0;
      if (bits > 0 && !packed.try_read(bits, index)) return std::nullopt;
      if (index >= chunk.epoch.size()) {
        if (chunk.epoch.empty()) return std::nullopt;
        return std::nullopt;
      }
      s = chunk.epoch[index].sender;
    }
  }
  return chunk;
}

void write_tables_re(support::ByteWriter& writer, const ChunkTables& tables) {
  writer.varint(tables.matched.size());
  for (const clock::MessageId& id : tables.matched) {
    writer.varint(static_cast<std::uint64_t>(id.sender));
    writer.varint(id.clock);
  }
  std::vector<std::int64_t> wn(tables.with_next.begin(),
                               tables.with_next.end());
  writer.varint(wn.size());
  for (const std::int64_t i : wn) writer.varint(static_cast<std::uint64_t>(i));
  writer.varint(tables.unmatched.size());
  for (const UnmatchedRun& run : tables.unmatched) {
    writer.varint(run.index);
    writer.varint(run.count);
  }
}

std::optional<ChunkTables> read_tables_re(support::ByteReader& reader) {
  ChunkTables tables;
  std::uint64_t n = 0;
  if (!reader.try_varint(n) || n > reader.remaining() + 1)
    return std::nullopt;
  tables.matched.resize(static_cast<std::size_t>(n));
  for (auto& id : tables.matched) {
    std::uint64_t sender = 0;
    if (!reader.try_varint(sender) || !reader.try_varint(id.clock))
      return std::nullopt;
    id.sender = static_cast<std::int32_t>(sender);
  }
  std::uint64_t wn = 0;
  if (!reader.try_varint(wn) || wn > reader.remaining() + 1)
    return std::nullopt;
  tables.with_next.resize(static_cast<std::size_t>(wn));
  for (auto& i : tables.with_next)
    if (!reader.try_varint(i)) return std::nullopt;
  std::uint64_t um = 0;
  if (!reader.try_varint(um) || um > reader.remaining() + 1)
    return std::nullopt;
  tables.unmatched.resize(static_cast<std::size_t>(um));
  for (auto& run : tables.unmatched)
    if (!reader.try_varint(run.index) || !reader.try_varint(run.count))
      return std::nullopt;
  return tables;
}

}  // namespace cdc::record
