// The CDC chunk format (§3.3–§3.5, Figure 8) and its serializers.
//
// A chunk encodes one flushed span of a (process, callsite) receive-event
// stream. Crucially, the matched messages' (rank, clock) pairs are NOT
// stored (Figure 8 stores 19 values for the worked example: 6 permutation-
// difference + 1 with_next + 6 unmatched-test + 6 epoch-line): replay
// reconstructs the reference order from the replay run's own piggybacked
// clocks, which are identical to the record run's because clocks are
// replayable (Theorem 2). The chunk stores only:
//   * N                 — number of matched receives in the chunk;
//   * permutation diff  — (reference index, delay) move ops (§3.3);
//   * with_next         — observed indices delivered with their successor;
//   * unmatched-test    — (observed index, count) runs;
//   * epoch line        — per-sender maximum clock in the chunk (§3.5),
//                         which tells replay which chunk a received
//                         message belongs to.
// Index columns are linear-predictive encoded (§3.4) before the final
// entropy stage (gzip/DEFLATE) is applied to the serialized bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "record/edit_distance.h"
#include "record/tables.h"
#include "support/binary.h"

namespace cdc::record {

struct EpochEntry {
  std::int32_t sender = -1;
  std::uint64_t clock = 0;

  friend bool operator==(const EpochEntry&, const EpochEntry&) = default;
};

struct CdcChunk {
  std::uint64_t num_matched = 0;        ///< N
  std::vector<MoveOp> moves;            ///< sorted by reference index
  std::vector<std::uint64_t> with_next; ///< observed indices, increasing
  std::vector<UnmatchedRun> unmatched;  ///< increasing by observed index
  std::vector<EpochEntry> epoch;        ///< sorted by sender
  /// Sender of each reference-order position. This column is a deviation
  /// from the paper's literal Figure 8 format (see DESIGN.md): it lets
  /// replay identify "reference index j" as "the k-th chunk message from
  /// sender s" purely from per-sender arrival prefixes (per-channel clocks
  /// are strictly increasing), so a release waits only for the specific
  /// messages Axiom 1 (ii) requires — the condition whose liveness
  /// Theorem 1 actually proves. Gating instead on a clock frontier over
  /// *unarrived* messages (the operational reading of Axiom 1 (iii))
  /// deadlocks: ranks block deliveries on other ranks' future sends, which
  /// are themselves blocked. The column is near-constant run-length data
  /// and nearly free after the final entropy stage.
  std::vector<std::int32_t> ref_senders;

  friend bool operator==(const CdcChunk&, const CdcChunk&) = default;

  /// The paper's stored-value accounting (19 in the Figure 8 example):
  /// 2 per move, 1 per with_next row, 2 per unmatched row, 2 per epoch row.
  /// The ref_senders column is excluded here (reported separately) so that
  /// the 55 → 23 → 19 worked-example arithmetic stays comparable.
  [[nodiscard]] std::size_t value_count() const noexcept {
    return 2 * moves.size() + with_next.size() + 2 * unmatched.size() +
           2 * epoch.size();
  }
};

/// Permutation-encodes the redundancy-eliminated tables into a chunk.
CdcChunk encode_chunk(const ChunkTables& tables);

/// Reconstructs the observed order as reference indices: B = apply(moves).
std::vector<std::uint32_t> observed_reference_indices(const CdcChunk& chunk);

/// Rebuilds the full tables from a chunk given the reference-order message
/// ids (as replay reconstructs them from arrivals; tests obtain them by
/// sorting the original matched set by (clock, sender)).
ChunkTables decode_chunk(const CdcChunk& chunk,
                         std::span<const clock::MessageId> reference_order);

/// Computes the reference order of a matched set: sorted by
/// (clock, sender rank) — Definition 6.
std::vector<clock::MessageId> reference_order(
    std::span<const clock::MessageId> matched);

// --- Serialization --------------------------------------------------------

/// Serializes a chunk with LP-encoded index columns.
void write_chunk(support::ByteWriter& writer, const CdcChunk& chunk);

/// Parses a chunk; std::nullopt on malformed input.
std::optional<CdcChunk> read_chunk(support::ByteReader& reader);

/// Serializes the redundancy-elimination-only format (the "CDC (RE)"
/// variant of Figure 13): matched (rank, clock) pairs stored verbatim.
void write_tables_re(support::ByteWriter& writer, const ChunkTables& tables);

std::optional<ChunkTables> read_tables_re(support::ByteReader& reader);

}  // namespace cdc::record
