#include "record/edit_distance.h"

#include <algorithm>

#include "support/check.h"

namespace cdc::record {

std::vector<bool> lis_membership(std::span<const std::uint32_t> b) {
  const std::size_t n = b.size();
  std::vector<bool> keep(n, false);
  if (n == 0) return keep;

  // Patience sorting: tails[k] = index of the smallest possible tail of an
  // increasing subsequence of length k+1; parent links recover one LIS.
  std::vector<std::size_t> tails;
  std::vector<std::size_t> parent(n, SIZE_MAX);
  std::vector<std::size_t> tail_index(n, SIZE_MAX);
  for (std::size_t i = 0; i < n; ++i) {
    const auto it = std::lower_bound(
        tails.begin(), tails.end(), b[i],
        [&](std::size_t idx, std::uint32_t value) { return b[idx] < value; });
    const std::size_t k = static_cast<std::size_t>(it - tails.begin());
    if (k > 0) parent[i] = tails[k - 1];
    if (it == tails.end()) {
      tails.push_back(i);
    } else {
      *it = i;
    }
    tail_index[i] = k;
  }
  std::size_t cur = tails.back();
  while (cur != SIZE_MAX) {
    keep[cur] = true;
    cur = parent[cur];
  }
  (void)tail_index;
  return keep;
}

std::vector<MoveOp> encode_permutation(std::span<const std::uint32_t> b) {
  const std::size_t n = b.size();
  const std::vector<bool> keep = lis_membership(b);

  // Moved elements, processed in increasing reference-index (value) order.
  std::vector<std::uint32_t> moved;
  for (std::size_t i = 0; i < n; ++i)
    if (!keep[i]) moved.push_back(b[i]);
  std::sort(moved.begin(), moved.end());

  // Position of each element within B, for the target computation.
  std::vector<std::size_t> pos_in_b(n);
  for (std::size_t i = 0; i < n; ++i) pos_in_b[b[i]] = i;

  // Simulate the decoder: the working list starts as the identity. An
  // element is "settled" once it will never move again (LIS members from
  // the start, moved elements after their op). Settled elements always
  // appear in B-relative order, so inserting x right after the c-th
  // settled element — c = number of settled elements before x in B —
  // fixes every (x, settled) pair; each (x, not-yet-processed) pair is
  // fixed later by the other element's own op. Hence the final list is B.
  std::vector<MoveOp> ops;
  ops.reserve(moved.size());
  std::vector<std::uint32_t> work(n);
  for (std::uint32_t v = 0; v < n; ++v) work[v] = v;
  std::vector<bool> settled(n);
  for (std::size_t i = 0; i < n; ++i) settled[b[i]] = keep[i];

  for (const std::uint32_t x : moved) {
    // One pass: current index of x and the number of settled elements
    // preceding x in the observed order.
    std::int64_t j = -1;
    std::int64_t c = 0;
    for (std::size_t i = 0; i < work.size(); ++i) {
      const std::uint32_t v = work[i];
      if (v == x) {
        j = static_cast<std::int64_t>(i);
      } else if (settled[v] && pos_in_b[v] < pos_in_b[x]) {
        ++c;
      }
    }
    CDC_CHECK(j >= 0);
    work.erase(work.begin() + j);
    // Target index: just past the c-th settled element.
    std::int64_t t = 0;
    for (std::int64_t seen = 0; seen < c; ++t)
      if (settled[work[static_cast<std::size_t>(t)]]) ++seen;
    work.insert(work.begin() + t, x);
    settled[x] = true;
    ops.push_back(MoveOp{static_cast<std::int64_t>(x), t - j});
  }

  // The simulation must have reconstructed B exactly.
  for (std::size_t i = 0; i < n; ++i)
    CDC_CHECK_MSG(work[i] == b[i], "permutation encoder self-check failed");
  return ops;
}

std::vector<std::uint32_t> apply_moves(std::size_t n,
                                       std::span<const MoveOp> ops) {
  std::vector<std::uint32_t> work(n);
  for (std::size_t i = 0; i < n; ++i) work[i] = static_cast<std::uint32_t>(i);
  for (const MoveOp& op : ops) {
    const auto it = std::find(work.begin(), work.end(),
                              static_cast<std::uint32_t>(op.index));
    CDC_CHECK_MSG(it != work.end(), "move op names an unknown element");
    const std::int64_t j = it - work.begin();
    const std::uint32_t value = *it;
    work.erase(it);
    const std::int64_t t = j + op.delay;
    CDC_CHECK_MSG(t >= 0 && t <= static_cast<std::int64_t>(work.size()),
                  "move op target out of range");
    work.insert(work.begin() + t, value);
  }
  return work;
}

std::size_t banded_edit_distance(std::span<const std::uint32_t> b) {
  // With P the identity, a match point for bᵢ is j = bᵢ: the edit script
  // deletes every element off one maximal increasing chain and re-inserts
  // it, so D = 2 × (N − LIS). The O(N + D) walk follows the main chain
  // greedily and pays O(1) per departure, implemented as a single pass
  // that extends the current increasing run and counts the elements that
  // break it against the best chain found so far.
  const std::size_t n = b.size();
  if (n == 0) return 0;
  // Greedy banded walk: maintain the set of chain tails within the band.
  // For permutations this reduces to patience sorting restricted to the
  // touched diagonals; complexity O(N + D log D) in the worst case and
  // O(N) when B is already sorted.
  std::vector<std::uint32_t> tails;
  for (const std::uint32_t v : b) {
    if (tails.empty() || v > tails.back()) {
      tails.push_back(v);
    } else {
      *std::lower_bound(tails.begin(), tails.end(), v) = v;
    }
  }
  return 2 * (n - tails.size());
}

std::size_t dp_edit_distance(std::span<const std::uint32_t> b) {
  // Insert/delete-only edit distance against the identity permutation.
  const std::size_t n = b.size();
  std::vector<std::size_t> prev(n + 1);
  std::vector<std::size_t> cur(n + 1);
  for (std::size_t j = 0; j <= n; ++j) prev[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= n; ++j) {
      if (b[i - 1] == static_cast<std::uint32_t>(j - 1)) {
        cur[j] = prev[j - 1];
      } else {
        cur[j] = std::min(prev[j], cur[j - 1]) + 1;
      }
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

double permutation_percentage(std::span<const std::uint32_t> b) {
  if (b.empty()) return 0.0;
  const std::vector<bool> keep = lis_membership(b);
  std::size_t moved = 0;
  for (const bool k : keep)
    if (!k) ++moved;
  return static_cast<double>(moved) / static_cast<double>(b.size());
}

}  // namespace cdc::record
