// Permutation encoding (§3.3) and the fast edit-distance algorithm (§4.1).
//
// The observed receive order B is a permutation of the reference order
// P = {0, 1, …, N−1} (reference indices assigned by sorting receives by
// (clock, sender rank), Definition 6). CDC records only the elements that
// moved: the complement of a longest common subsequence of B and P — and
// since P is the identity, of a longest *increasing* subsequence of B.
// Each moved element is stored as one (reference index, delay) pair; the
// worked example of Figures 7/10, B = {0,3,2,1,4,7,5,6}, encodes to
// {(1,+2), (2,+1), (7,−2)}.
//
// Decode applies the ops in recorded order to the working list, which
// starts as P: remove element x (identified by its reference index), then
// reinsert it `delay` positions away from where it was. This sequential
// application provably reconstructs B when ops are emitted in increasing
// reference-index order: an op places its element correctly relative to
// every non-moved element and every already-placed moved element, and each
// later op re-places its own element relative to everything present —
// so after the final op every pair of elements is correctly ordered.
//
// Two algorithms compute the minimal move set and are cross-checked in
// tests: an O(N log N) patience-sorting LIS, and the paper's O(N + D)
// banded walk that exploits bᵢ = pⱼ ⇔ j = bᵢ (D = edit distance = 2 ×
// number of moved elements).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cdc::record {

/// One permutation-difference row (Figure 7): the element whose reference
/// index is `index` was observed `delay` positions away from where the
/// sequentially-decoded working list had it (positive = received late).
struct MoveOp {
  std::int64_t index = 0;
  std::int64_t delay = 0;

  friend bool operator==(const MoveOp&, const MoveOp&) = default;
};

/// Longest increasing subsequence — returns one LIS as element *values*
/// membership mask: keep[i] is true iff B[i] is part of the chosen LIS.
/// O(N log N) patience sorting.
std::vector<bool> lis_membership(std::span<const std::uint32_t> b);

/// Minimal move ops turning the identity permutation into `b`
/// (b must be a permutation of {0..N−1}). Ops are sorted by reference
/// index; |ops| = N − LIS(b).
std::vector<MoveOp> encode_permutation(std::span<const std::uint32_t> b);

/// Applies move ops to the identity permutation of size n, reproducing the
/// observed order.
std::vector<std::uint32_t> apply_moves(std::size_t n,
                                       std::span<const MoveOp> ops);

/// Insert/delete edit distance between `b` and the identity permutation,
/// computed by the paper's O(N + D) method: walk the match diagonal
/// (j = bᵢ) and count departures. Equals 2 × (N − LIS(b)).
std::size_t banded_edit_distance(std::span<const std::uint32_t> b);

/// Reference O(N²) dynamic-programming insert/delete edit distance used to
/// validate banded_edit_distance in tests.
std::size_t dp_edit_distance(std::span<const std::uint32_t> b);

/// Fraction of permutated messages Np / N (Figure 14's metric): moved
/// elements over total. Returns 0 for empty input.
double permutation_percentage(std::span<const std::uint32_t> b);

}  // namespace cdc::record
