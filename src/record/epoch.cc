#include "record/epoch.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "obs/metrics.h"
#include "support/check.h"

namespace cdc::record {

std::size_t find_clean_cut(std::span<const ReceiveEvent> events,
                           const PendingMins& pending_min,
                           std::size_t max_matched) {
  constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();

  // Matched events only, in observed order.
  std::vector<const ReceiveEvent*> matched;
  for (const ReceiveEvent& e : events)
    if (e.flag) matched.push_back(&e);
  const std::size_t n = matched.size();
  const std::size_t cap = std::min(n, max_matched);

  // Per-sender position lists and suffix minima of clocks.
  struct SenderState {
    std::vector<std::uint64_t> clocks;     // in observed order
    std::vector<std::uint64_t> suffix_min; // suffix_min[k] = min clocks[k..]
    std::size_t next = 0;                  // first position not in prefix
    std::uint64_t prefix_max = 0;
    bool in_prefix = false;
    bool violating = false;
    std::uint64_t pending = kInf;
  };
  std::unordered_map<std::int32_t, SenderState> senders;
  std::vector<std::int32_t> order;  // sender of each matched position
  order.reserve(n);
  for (const ReceiveEvent* e : matched) {
    senders[e->rank].clocks.push_back(e->clock);
    order.push_back(e->rank);
  }
  for (auto& [sender, state] : senders) {
    state.suffix_min.resize(state.clocks.size());
    std::uint64_t running = kInf;
    for (std::size_t k = state.clocks.size(); k-- > 0;) {
      running = std::min(running, state.clocks[k]);
      state.suffix_min[k] = running;
    }
    const auto it = pending_min.find(sender);
    if (it != pending_min.end()) state.pending = it->second;
  }

  // Walk cut positions left to right, maintaining the number of senders
  // whose prefix max is not strictly below everything still outside.
  std::size_t violations = 0;
  std::size_t best = 0;
  for (std::size_t cut = 0; cut <= cap; ++cut) {
    if (cut > 0) {
      SenderState& s = senders.at(order[cut - 1]);
      const std::uint64_t c = s.clocks[s.next];
      ++s.next;
      s.prefix_max = s.in_prefix ? std::max(s.prefix_max, c) : c;
      s.in_prefix = true;
      const std::uint64_t outside =
          std::min(s.next < s.clocks.size() ? s.suffix_min[s.next] : kInf,
                   s.pending);
      const bool now_violating = s.prefix_max >= outside;
      if (now_violating != s.violating) {
        s.violating = now_violating;
        violations += now_violating ? 1 : std::size_t(-1);
      }
    }
    // A cut between a with_next event and its successor is illegal.
    const bool splits_group = cut > 0 && matched[cut - 1]->with_next;
    if (violations == 0 && !splits_group) best = cut;
  }
  static obs::Counter& cut_found = obs::counter("record.epoch.cut_found");
  static obs::Counter& cut_deferred =
      obs::counter("record.epoch.cut_deferred");
  (best > 0 ? cut_found : cut_deferred).add(1);
  return best;
}

std::vector<ReceiveEvent> take_cut(std::vector<ReceiveEvent>& events,
                                   std::size_t matched_count) {
  std::size_t seen = 0;
  std::size_t end = 0;
  for (; end < events.size() && seen < matched_count; ++end)
    if (events[end].flag) ++seen;
  CDC_CHECK_MSG(seen == matched_count, "cut exceeds buffered matched events");
  std::vector<ReceiveEvent> prefix(events.begin(),
                                   events.begin() + static_cast<long>(end));
  events.erase(events.begin(), events.begin() + static_cast<long>(end));
  return prefix;
}

}  // namespace cdc::record
