// Epoch enforcement (§3.5).
//
// A chunk can only be flushed at a "clean cut": for every sender, every
// clock inside the chunk must be strictly smaller than every clock of that
// sender that is still outside it — later buffered receives, and messages
// that have arrived at the MPI level but are not yet delivered to the
// application. This guarantees that, during replay, the epoch line
// (per-sender max clock of the chunk) classifies every received message
// into the right chunk: a message "runs off the epoch line" if and only if
// it was recorded in a later chunk. A cut is also forbidden from splitting
// a with_next group (messages delivered by one MF call stay together).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "record/event.h"

namespace cdc::record {

/// Minimum clock per sender among messages arrived at the MPI level but
/// not yet delivered to the application at this callsite.
using PendingMins = std::map<std::int32_t, std::uint64_t>;

/// Returns the largest L <= max_matched such that cutting the stream right
/// after its L-th matched event is clean, or 0 if no clean cut exists yet.
/// O(N) over the buffered matched events.
std::size_t find_clean_cut(std::span<const ReceiveEvent> events,
                           const PendingMins& pending_min,
                           std::size_t max_matched);

/// Splits `events` at the point right after the L-th matched event;
/// returns the prefix and erases it (plus nothing after it) from `events`.
std::vector<ReceiveEvent> take_cut(std::vector<ReceiveEvent>& events,
                                   std::size_t matched_count);

}  // namespace cdc::record
