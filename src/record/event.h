// The receive-event model of §3.1 (Figure 4).
//
// Order-replay needs, per MF call and per process, the quintuple
// (count, flag, with_next, rank, clock). In this library the raw stream is
// a sequence of ReceiveEvent values — one per MF outcome — and the `count`
// aggregation of consecutive unmatched tests happens at serialization time
// (EventRow).
#pragma once

#include <cstdint>
#include <vector>

#include "clock/lamport.h"

namespace cdc::record {

/// One application-level MF outcome at one callsite.
struct ReceiveEvent {
  /// Matching status: true = a message was delivered, false = a
  /// Test-family call reported no match.
  bool flag = false;
  /// True when this message was delivered together with the next event's
  /// message in the same MF call (matched message set, §3.1).
  bool with_next = false;
  /// Sender rank (valid when flag).
  std::int32_t rank = -1;
  /// Piggybacked Lamport clock (valid when flag). Together with `rank`
  /// this uniquely identifies the message (§3.1).
  std::uint64_t clock = 0;

  friend bool operator==(const ReceiveEvent&, const ReceiveEvent&) = default;

  [[nodiscard]] clock::MessageId id() const noexcept {
    return clock::MessageId{rank, clock};
  }
};

/// One row of the Figure 4 recording table: a run of `count` identical
/// events (only unmatched tests repeat; matched events are unique).
struct EventRow {
  std::uint64_t count = 1;
  ReceiveEvent event;

  friend bool operator==(const EventRow&, const EventRow&) = default;
};

/// Collapses an event stream into Figure 4 rows.
inline std::vector<EventRow> to_rows(const std::vector<ReceiveEvent>& events) {
  std::vector<EventRow> rows;
  for (const ReceiveEvent& e : events) {
    if (!e.flag && !rows.empty() && !rows.back().event.flag) {
      ++rows.back().count;
    } else {
      rows.push_back(EventRow{1, e});
    }
  }
  return rows;
}

/// Expands Figure 4 rows back into an event stream.
inline std::vector<ReceiveEvent> from_rows(const std::vector<EventRow>& rows) {
  std::vector<ReceiveEvent> events;
  for (const EventRow& row : rows)
    for (std::uint64_t i = 0; i < row.count; ++i) events.push_back(row.event);
  return events;
}

}  // namespace cdc::record
