#include "record/fast_permutation.h"

#include <algorithm>
#include <bit>

#include "support/check.h"

namespace cdc::record {

namespace detail {

namespace {

std::uint64_t mix_priority(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

WorkingList::WorkingList(std::size_t n) : nodes_(n), count_(n) {
  for (std::size_t v = 0; v < n; ++v)
    nodes_[v].priority = mix_priority(v);
  // Build a balanced-by-priority treap of the identity sequence in O(N)
  // with a rightmost-spine insertion.
  std::vector<std::uint32_t> spine;
  for (std::uint32_t v = 0; v < n; ++v) {
    std::uint32_t last = kNil;
    while (!spine.empty() &&
           nodes_[spine.back()].priority < nodes_[v].priority) {
      last = spine.back();
      pull(last);
      spine.pop_back();
    }
    if (last != kNil) {
      nodes_[v].left = last;
      nodes_[last].parent = v;
    }
    if (!spine.empty()) {
      nodes_[spine.back()].right = v;
      nodes_[v].parent = spine.back();
    }
    spine.push_back(v);
  }
  while (!spine.empty()) {
    pull(spine.back());
    root_ = spine.back();
    spine.pop_back();
  }
  if (n == 0) root_ = kNil;
}

void WorkingList::pull(std::uint32_t node) noexcept {
  auto& n = nodes_[node];
  n.size = 1 + (n.left != kNil ? nodes_[n.left].size : 0) +
           (n.right != kNil ? nodes_[n.right].size : 0);
}

std::uint32_t WorkingList::merge(std::uint32_t a, std::uint32_t b) {
  if (a == kNil) return b;
  if (b == kNil) return a;
  if (nodes_[a].priority > nodes_[b].priority) {
    const std::uint32_t right = merge(nodes_[a].right, b);
    nodes_[a].right = right;
    nodes_[right].parent = a;
    pull(a);
    nodes_[a].parent = kNil;
    return a;
  }
  const std::uint32_t left = merge(a, nodes_[b].left);
  nodes_[b].left = left;
  nodes_[left].parent = b;
  pull(b);
  nodes_[b].parent = kNil;
  return b;
}

void WorkingList::split(std::uint32_t node, std::uint32_t count,
                        std::uint32_t& left, std::uint32_t& right) {
  if (node == kNil) {
    left = kNil;
    right = kNil;
    return;
  }
  nodes_[node].parent = kNil;
  const std::uint32_t left_size =
      nodes_[node].left != kNil ? nodes_[nodes_[node].left].size : 0;
  if (count <= left_size) {
    std::uint32_t inner = kNil;
    split(nodes_[node].left, count, left, inner);
    nodes_[node].left = inner;
    if (inner != kNil) nodes_[inner].parent = node;
    pull(node);
    right = node;
    if (left != kNil) nodes_[left].parent = kNil;
  } else {
    std::uint32_t inner = kNil;
    split(nodes_[node].right, count - left_size - 1, inner, right);
    nodes_[node].right = inner;
    if (inner != kNil) nodes_[inner].parent = node;
    pull(node);
    left = node;
    if (right != kNil) nodes_[right].parent = kNil;
  }
}

std::size_t WorkingList::position_of(std::uint32_t value) const {
  const Node& n = nodes_[value];
  std::size_t position = n.left != kNil ? nodes_[n.left].size : 0;
  std::uint32_t child = value;
  std::uint32_t parent = n.parent;
  while (parent != kNil) {
    if (nodes_[parent].right == child) {
      position += 1 +
                  (nodes_[parent].left != kNil
                       ? nodes_[nodes_[parent].left].size
                       : 0);
    }
    child = parent;
    parent = nodes_[parent].parent;
  }
  return position;
}

void WorkingList::erase(std::uint32_t value) {
  const std::size_t position = position_of(value);
  std::uint32_t left = kNil;
  std::uint32_t middle = kNil;
  std::uint32_t right = kNil;
  split(root_, static_cast<std::uint32_t>(position), left, middle);
  std::uint32_t single = kNil;
  split(middle, 1, single, right);
  CDC_DCHECK(single == value);
  nodes_[value] = Node{kNil, kNil, kNil, 1, nodes_[value].priority};
  root_ = merge(left, right);
  if (root_ != kNil) nodes_[root_].parent = kNil;
  --count_;
}

void WorkingList::insert_at(std::size_t position, std::uint32_t value) {
  nodes_[value].left = kNil;
  nodes_[value].right = kNil;
  nodes_[value].parent = kNil;
  nodes_[value].size = 1;
  std::uint32_t left = kNil;
  std::uint32_t right = kNil;
  split(root_, static_cast<std::uint32_t>(position), left, right);
  root_ = merge(merge(left, value), right);
  if (root_ != kNil) nodes_[root_].parent = kNil;
  ++count_;
}

void WorkingList::collect(std::uint32_t node,
                          std::vector<std::uint32_t>& out) const {
  if (node == kNil) return;
  collect(nodes_[node].left, out);
  out.push_back(node);
  collect(nodes_[node].right, out);
}

std::vector<std::uint32_t> WorkingList::to_vector() const {
  std::vector<std::uint32_t> out;
  out.reserve(count_);
  collect(root_, out);
  return out;
}

void Fenwick::add(std::size_t index, int delta) {
  for (std::size_t i = index + 1; i < tree_.size(); i += i & (~i + 1))
    tree_[i] += delta;
}

int Fenwick::prefix(std::size_t index) const {
  int sum = 0;
  for (std::size_t i = std::min(index, tree_.size() - 1); i > 0;
       i -= i & (~i + 1))
    sum += tree_[i];
  return sum;
}

std::size_t Fenwick::select(int target) const {
  std::size_t index = 0;
  std::size_t mask = std::bit_floor(tree_.size() - 1);
  int remaining = target;
  while (mask > 0) {
    const std::size_t next = index + mask;
    if (next < tree_.size() && tree_[next] < remaining) {
      index = next;
      remaining -= tree_[next];
    }
    mask >>= 1;
  }
  return index;  // 0-based element index
}

}  // namespace detail

std::vector<MoveOp> fast_encode_permutation(
    std::span<const std::uint32_t> b) {
  const std::size_t n = b.size();
  const std::vector<bool> keep = lis_membership(b);

  std::vector<std::uint32_t> moved;
  for (std::size_t i = 0; i < n; ++i)
    if (!keep[i]) moved.push_back(b[i]);
  std::sort(moved.begin(), moved.end());
  if (moved.empty()) return {};

  std::vector<std::size_t> pos_in_b(n);
  for (std::size_t i = 0; i < n; ++i) pos_in_b[b[i]] = i;

  // settled_by_obs marks the observed positions of settled elements;
  // obs_to_value recovers the element at an observed position.
  detail::Fenwick settled_by_obs(n);
  std::vector<std::uint32_t> obs_to_value(n);
  for (std::size_t i = 0; i < n; ++i) obs_to_value[i] = b[i];
  for (std::size_t i = 0; i < n; ++i)
    if (keep[i]) settled_by_obs.add(i, 1);

  // list_rank_of_settled: working-list positions, restricted to settled
  // elements, keyed by observed position. The c-th settled element of the
  // working list is the settled element with the c-th smallest observed
  // position (settled elements always appear in B order).
  detail::WorkingList work(n);

  std::vector<MoveOp> ops;
  ops.reserve(moved.size());
  for (const std::uint32_t x : moved) {
    const std::size_t j = work.position_of(x);
    work.erase(x);
    // c = number of settled elements before x in the observed order.
    const int c = settled_by_obs.prefix(pos_in_b[x]);
    std::size_t t = 0;
    if (c > 0) {
      // Observed position of the c-th settled element, then its current
      // working-list position; insert right after it.
      const std::size_t obs = settled_by_obs.select(c);
      t = work.position_of(obs_to_value[obs]) + 1;
    }
    work.insert_at(t, x);
    settled_by_obs.add(pos_in_b[x], 1);
    ops.push_back(MoveOp{static_cast<std::int64_t>(x),
                         static_cast<std::int64_t>(t) -
                             static_cast<std::int64_t>(j)});
  }
  return ops;
}

std::vector<std::uint32_t> fast_apply_moves(std::size_t n,
                                            std::span<const MoveOp> ops) {
  detail::WorkingList work(n);
  for (const MoveOp& op : ops) {
    CDC_CHECK_MSG(op.index >= 0 && op.index < static_cast<std::int64_t>(n),
                  "move op names an unknown element");
    const auto value = static_cast<std::uint32_t>(op.index);
    const std::size_t j = work.position_of(value);
    work.erase(value);
    const std::int64_t t = static_cast<std::int64_t>(j) + op.delay;
    CDC_CHECK_MSG(t >= 0 && t <= static_cast<std::int64_t>(work.size()),
                  "move op target out of range");
    work.insert_at(static_cast<std::size_t>(t), value);
  }
  return work.to_vector();
}

}  // namespace cdc::record
