// Fast permutation encode/decode (§4.1's "fast edit distance" speed class).
//
// The reference implementations in edit_distance.h simulate the move-op
// decoder on a flat vector: O(N + N·D) per chunk, which is fine at the
// default 4K-event chunks but quadratic-ish for large ones. This module
// provides the same transformations in O((N + D) log N) using an
// order-statistic treap for the working list plus a Fenwick tree over
// observed positions for the settled-element rank queries. Both engines
// are cross-checked against each other in the tests; encode_chunk and
// observed_reference_indices use the fast engine.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "record/edit_distance.h"

namespace cdc::record {

/// Same contract as encode_permutation: minimal move ops, sorted by
/// reference index, sequential-decode semantics.
std::vector<MoveOp> fast_encode_permutation(
    std::span<const std::uint32_t> b);

/// Same contract as apply_moves.
std::vector<std::uint32_t> fast_apply_moves(std::size_t n,
                                            std::span<const MoveOp> ops);

namespace detail {

/// Order-statistic treap over the working list of reference indices.
/// Nodes are preallocated (one per element); priorities come from a
/// deterministic hash so behaviour is reproducible.
class WorkingList {
 public:
  explicit WorkingList(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return count_; }

  /// Current position of element `value`. O(log N).
  [[nodiscard]] std::size_t position_of(std::uint32_t value) const;

  /// Removes element `value`. O(log N).
  void erase(std::uint32_t value);

  /// Inserts element `value` so that exactly `position` elements precede
  /// it. O(log N).
  void insert_at(std::size_t position, std::uint32_t value);

  /// In-order traversal into a vector. O(N).
  [[nodiscard]] std::vector<std::uint32_t> to_vector() const;

 private:
  struct Node {
    std::uint32_t left = kNil;
    std::uint32_t right = kNil;
    std::uint32_t parent = kNil;
    std::uint32_t size = 1;
    std::uint64_t priority = 0;
  };
  static constexpr std::uint32_t kNil = 0xffffffffu;

  void pull(std::uint32_t node) noexcept;
  [[nodiscard]] std::uint32_t merge(std::uint32_t a, std::uint32_t b);
  /// Splits `node` into [first `count` elements, rest].
  void split(std::uint32_t node, std::uint32_t count, std::uint32_t& left,
             std::uint32_t& right);
  void collect(std::uint32_t node, std::vector<std::uint32_t>& out) const;

  std::vector<Node> nodes_;  // index == element value
  std::uint32_t root_ = kNil;
  std::size_t count_ = 0;
};

/// Fenwick tree over 0..n-1 with point update / prefix sum / select.
class Fenwick {
 public:
  explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}

  void add(std::size_t index, int delta);
  /// Sum over [0, index).
  [[nodiscard]] int prefix(std::size_t index) const;
  /// Smallest index such that prefix(index + 1) >= target (target >= 1).
  [[nodiscard]] std::size_t select(int target) const;

 private:
  std::vector<int> tree_;
};

}  // namespace detail

}  // namespace cdc::record
