// Linear predictive encoding (§3.4).
//
// Index columns in the CDC tables grow monotonically; LP encoding predicts
// x̂ₙ = 2xₙ₋₁ − xₙ₋₂ (p = 2, a = (2, −1): the next value lies on the line
// through the previous two) and stores the residual eₙ = xₙ − x̂ₙ, with
// xᵢ≤0 = 0. Residuals of near-linear sequences are near zero, which the
// final gzip stage compresses well. The transform is exactly invertible.
//
// Note: the paper's Figure 8 leaves the first *two* values verbatim while
// the §3.4 text (and its worked example {1,2,4,6,8,12,17} → {1,0,1,0,0,2,1})
// predicts from the second value on with x₀ = 0. We implement the text
// formula; see DESIGN.md.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cdc::record {

/// eₙ = xₙ − 2xₙ₋₁ + xₙ₋₂ with out-of-range terms zero.
///
/// The arithmetic is done in uint64 so adversarial inputs (fuzzed chunk
/// bytes decode to arbitrary int64 values) wrap mod 2⁶⁴ instead of hitting
/// signed overflow; encode/decode stay exact inverses under wraparound.
inline std::vector<std::int64_t> lp_encode(std::span<const std::int64_t> xs) {
  std::vector<std::int64_t> es(xs.size());
  for (std::size_t n = 0; n < xs.size(); ++n) {
    const auto x1 = static_cast<std::uint64_t>(n >= 1 ? xs[n - 1] : 0);
    const auto x2 = static_cast<std::uint64_t>(n >= 2 ? xs[n - 2] : 0);
    es[n] = static_cast<std::int64_t>(static_cast<std::uint64_t>(xs[n]) -
                                      2 * x1 + x2);
  }
  return es;
}

/// Inverse of lp_encode: xₙ = eₙ + 2xₙ₋₁ − xₙ₋₂.
inline std::vector<std::int64_t> lp_decode(std::span<const std::int64_t> es) {
  std::vector<std::int64_t> xs(es.size());
  for (std::size_t n = 0; n < es.size(); ++n) {
    const auto x1 = static_cast<std::uint64_t>(n >= 1 ? xs[n - 1] : 0);
    const auto x2 = static_cast<std::uint64_t>(n >= 2 ? xs[n - 2] : 0);
    xs[n] = static_cast<std::int64_t>(static_cast<std::uint64_t>(es[n]) +
                                      2 * x1 - x2);
  }
  return xs;
}

}  // namespace cdc::record
