#include "record/tables.h"

#include "support/check.h"

namespace cdc::record {

ChunkTables build_tables(std::span<const ReceiveEvent> events) {
  ChunkTables tables;
  std::uint64_t pending_unmatched = 0;
  for (const ReceiveEvent& e : events) {
    if (!e.flag) {
      ++pending_unmatched;
      continue;
    }
    const std::uint64_t index = tables.matched.size();
    if (pending_unmatched > 0) {
      tables.unmatched.push_back(UnmatchedRun{index, pending_unmatched});
      pending_unmatched = 0;
    }
    if (e.with_next) tables.with_next.push_back(index);
    tables.matched.push_back(e.id());
  }
  if (pending_unmatched > 0)
    tables.unmatched.push_back(
        UnmatchedRun{tables.matched.size(), pending_unmatched});
  return tables;
}

std::vector<ReceiveEvent> tables_to_events(const ChunkTables& tables) {
  std::vector<ReceiveEvent> events;
  std::size_t next_unmatched = 0;
  std::size_t next_with = 0;
  for (std::uint64_t i = 0; i <= tables.matched.size(); ++i) {
    if (next_unmatched < tables.unmatched.size() &&
        tables.unmatched[next_unmatched].index == i) {
      for (std::uint64_t k = 0; k < tables.unmatched[next_unmatched].count;
           ++k)
        events.push_back(ReceiveEvent{false, false, -1, 0});
      ++next_unmatched;
    }
    if (i == tables.matched.size()) break;
    ReceiveEvent e;
    e.flag = true;
    e.rank = tables.matched[i].sender;
    e.clock = tables.matched[i].clock;
    if (next_with < tables.with_next.size() &&
        tables.with_next[next_with] == i) {
      e.with_next = true;
      ++next_with;
    }
    events.push_back(e);
  }
  CDC_CHECK_MSG(next_unmatched == tables.unmatched.size() &&
                    next_with == tables.with_next.size(),
                "tables reference out-of-range observed indices");
  return events;
}

}  // namespace cdc::record
