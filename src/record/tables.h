// Redundancy elimination (§3.2, Figure 6).
//
// The Figure 4 recording table is split into three tables so that each
// stores only non-redundant information:
//   * matched-test  — the matched receives in observed order (rank, clock);
//   * with_next     — observed indices of receives delivered together with
//                     the next one (empty unless Waitall/Waitsome/
//                     Testall/Testsome are used);
//   * unmatched-test— (observed index, count) pairs: how many unmatched
//                     Test-family results occurred immediately before the
//                     matched receive at that index (index == N means
//                     trailing unmatched tests after the last receive).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "clock/lamport.h"
#include "record/event.h"

namespace cdc::record {

struct UnmatchedRun {
  std::uint64_t index = 0;  ///< observed matched-event index it precedes
  std::uint64_t count = 0;  ///< number of consecutive unmatched tests

  friend bool operator==(const UnmatchedRun&, const UnmatchedRun&) = default;
};

struct ChunkTables {
  std::vector<clock::MessageId> matched;  ///< observed order
  std::vector<std::uint64_t> with_next;   ///< observed indices, increasing
  std::vector<UnmatchedRun> unmatched;    ///< increasing by index

  friend bool operator==(const ChunkTables&, const ChunkTables&) = default;

  /// Number of stored values under the paper's accounting (Figure 6:
  /// 23 in the worked example): 2 per matched event, 1 per with_next row,
  /// 2 per unmatched row.
  [[nodiscard]] std::size_t value_count() const noexcept {
    return 2 * matched.size() + with_next.size() + 2 * unmatched.size();
  }
};

/// Splits an event stream into the three tables.
ChunkTables build_tables(std::span<const ReceiveEvent> events);

/// Reassembles the event stream from the tables (inverse of build_tables).
std::vector<ReceiveEvent> tables_to_events(const ChunkTables& tables);

}  // namespace cdc::record
