// Bounded lock-free single-producer/single-consumer ring buffer (§4.2).
//
// The paper's recording path is an SPSC pair: the application (main)
// thread enqueues receive events, the dedicated CDC thread dequeues,
// encodes and writes — "both main and CDC thread can concurrently enqueue
// and dequeue events race free without needing explicit mutual exclusion".
// The ring is bounded and "will block the main thread when the queue is
// filled up" — callers spin/back off on try_push failure.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <new>
#include <vector>

#include "support/check.h"

namespace cdc::runtime {

template <typename T>
class SpscQueue {
 public:
  /// Capacity is rounded up to a power of two; one slot is sacrificed to
  /// distinguish full from empty.
  explicit SpscQueue(std::size_t capacity)
      : mask_(std::bit_ceil(capacity + 1) - 1),
        slots_(mask_ + 1) {
    CDC_CHECK(capacity >= 1);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. Returns false when full.
  bool try_push(T&& value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;
    slots_[head] = std::move(value);
    head_.store(next, std::memory_order_release);
    return true;
  }

  bool try_push(const T& value) {
    T copy = value;
    return try_push(std::move(copy));
  }

  /// Consumer side. Returns false when empty.
  bool try_pop(T& out) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy (exact only when called from producer or
  /// consumer with the other side quiescent).
  [[nodiscard]] std::size_t size_approx() const noexcept {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

  [[nodiscard]] bool empty_approx() const noexcept {
    return size_approx() == 0;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_; }

 private:
  // 64 bytes covers current x86-64 and most AArch64 parts; the standard
  // constant triggers -Winterference-size and an ABI warning on GCC.
  static constexpr std::size_t kCacheLine = 64;

  const std::size_t mask_;
  std::vector<T> slots_;
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};  // producer-owned
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};  // consumer-owned
};

}  // namespace cdc::runtime
