#include "runtime/storage.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "support/check.h"

namespace cdc::runtime {

// --- MemoryStore ------------------------------------------------------------

void MemoryStore::append(const StreamKey& key,
                         std::span<const std::uint8_t> bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& stream = streams_[key];
  stream.insert(stream.end(), bytes.begin(), bytes.end());
}

std::vector<std::uint8_t> MemoryStore::read(const StreamKey& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = streams_.find(key);
  return it != streams_.end() ? it->second : std::vector<std::uint8_t>{};
}

std::vector<StreamKey> MemoryStore::keys() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<StreamKey> out;
  out.reserve(streams_.size());
  for (const auto& [key, stream] : streams_) out.push_back(key);
  return out;
}

std::uint64_t MemoryStore::total_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [key, stream] : streams_) total += stream.size();
  return total;
}

std::uint64_t MemoryStore::rank_bytes(minimpi::Rank rank) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [key, stream] : streams_)
    if (key.rank == rank) total += stream.size();
  return total;
}

// --- FileStore --------------------------------------------------------------

FileStore::FileStore(std::string directory)
    : directory_(std::move(directory)) {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  const bool usable =
      !ec && std::filesystem::is_directory(directory_, ec) && !ec;
  if (!usable)
    std::fprintf(stderr, "FileStore: cannot use '%s' as record directory\n",
                 directory_.c_str());
  CDC_CHECK_MSG(usable, "cannot create record directory");
}

std::string FileStore::path_for(const StreamKey& key) const {
  return directory_ + "/" + std::to_string(key.rank) + "_" +
         std::to_string(key.callsite) + ".cdcrec";
}

void FileStore::append(const StreamKey& key,
                       std::span<const std::uint8_t> bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::string path = path_for(key);
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out.good())
    std::fprintf(stderr, "FileStore: cannot open '%s' for append\n",
                 path.c_str());
  CDC_CHECK_MSG(out.good(),
                "cannot open record file for append (directory missing or "
                "unwritable?)");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  CDC_CHECK_MSG(out.good(), "record file write failed");
  sizes_[key] += bytes.size();
}

std::vector<std::uint8_t> FileStore::read(const StreamKey& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::string path = path_for(key);
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    // Distinguish "stream never recorded" (legitimately empty) from a
    // vanished directory or file — silent empty reads turn storage
    // failures into baffling replay divergence.
    std::error_code ec;
    if (!std::filesystem::is_directory(directory_, ec) || ec) {
      std::fprintf(stderr, "FileStore: record directory '%s' is gone\n",
                   directory_.c_str());
      CDC_CHECK_MSG(false, "record directory missing on read");
    }
    if (sizes_.contains(key)) {
      std::fprintf(stderr, "FileStore: record file '%s' is gone\n",
                   path.c_str());
      CDC_CHECK_MSG(false, "record file missing on read");
    }
    return {};
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  CDC_CHECK_MSG(!in.bad(), "record file read failed");
  return bytes;
}

std::vector<StreamKey> FileStore::keys() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<StreamKey> out;
  out.reserve(sizes_.size());
  for (const auto& [key, size] : sizes_) out.push_back(key);
  return out;
}

std::uint64_t FileStore::total_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [key, size] : sizes_) total += size;
  return total;
}

std::uint64_t FileStore::rank_bytes(minimpi::Rank rank) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [key, size] : sizes_)
    if (key.rank == rank) total += size;
  return total;
}

// --- CountingStore ----------------------------------------------------------

void CountingStore::append(const StreamKey& key,
                           std::span<const std::uint8_t> bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  sizes_[key] += bytes.size();
}

std::vector<std::uint8_t> CountingStore::read(const StreamKey&) const {
  CDC_CHECK_MSG(false, "CountingStore discards data; replay is impossible");
  return {};
}

std::vector<StreamKey> CountingStore::keys() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<StreamKey> out;
  out.reserve(sizes_.size());
  for (const auto& [key, size] : sizes_) out.push_back(key);
  return out;
}

std::uint64_t CountingStore::total_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [key, size] : sizes_) total += size;
  return total;
}

std::uint64_t CountingStore::rank_bytes(minimpi::Rank rank) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [key, size] : sizes_)
    if (key.rank == rank) total += size;
  return total;
}

}  // namespace cdc::runtime
