// Record storage backends.
//
// The paper writes per-process record data to node-local storage (SSD or
// ramdisk). Here a RecordStore maps a stream key — (MPI rank, MF callsite)
// — to an append-only byte stream. MemoryStore models ramdisk recording;
// FileStore persists streams as files in a directory; size accounting is
// identical across backends, which is what the evaluation measures.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "minimpi/types.h"

namespace cdc::runtime {

struct StreamKey {
  minimpi::Rank rank = 0;
  minimpi::CallsiteId callsite = 0;

  friend auto operator<=>(const StreamKey&, const StreamKey&) = default;
};

/// Per-epoch replay metadata riding along with one appended chunk: how
/// many events the chunk holds. Epoch-aware stores (the container) persist
/// this in a seekable index so windowed replay can slice a stream at epoch
/// boundaries without decoding it from the start; every other store
/// ignores it.
struct EpochMeta {
  std::uint64_t matched = 0;    ///< delivered (gated) events in the epoch
  std::uint64_t unmatched = 0;  ///< recorded unmatched tests in the epoch

  friend bool operator==(const EpochMeta&, const EpochMeta&) = default;
};

/// A recoverable storage I/O failure (EIO, short write, fsync error).
/// Contract: a store that throws this from append()/sync() committed
/// *nothing* of the failed operation — retrying the identical call is
/// safe. Unrecoverable conditions (bad path, permissions) keep the loud
/// CDC_CHECK abort; IoError is reserved for faults worth retrying.
/// Thrown by fault-injecting stores (store/resilient.h) and caught by
/// RetryingStore; the stock backends below never throw it.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class RecordStore {
 public:
  virtual ~RecordStore() = default;

  virtual void append(const StreamKey& key,
                      std::span<const std::uint8_t> bytes) = 0;
  [[nodiscard]] virtual std::vector<std::uint8_t> read(
      const StreamKey& key) const = 0;
  [[nodiscard]] virtual std::vector<StreamKey> keys() const = 0;
  [[nodiscard]] virtual std::uint64_t total_bytes() const = 0;

  /// Bytes attributable to one rank (per-process record size).
  [[nodiscard]] virtual std::uint64_t rank_bytes(minimpi::Rank rank) const = 0;

  /// append() plus the epoch metadata of the chunk the bytes carry. The
  /// default forwards to append() — only epoch-aware stores (and the
  /// decorators in front of them) override. Same contract as append(),
  /// including the IoError nothing-committed guarantee.
  virtual void append_epoch(const StreamKey& key,
                            std::span<const std::uint8_t> bytes,
                            const EpochMeta& /*meta*/) {
    append(key, bytes);
  }

  /// The frames of epochs [0, epoch_hi) of one stream — a seekable backend
  /// (the epoch-indexed container) serves exactly those bytes without
  /// touching the rest of the stream; the default reads everything, which
  /// is always correct (the replayer stops decoding at its chunk limit).
  [[nodiscard]] virtual std::vector<std::uint8_t> read_prefix(
      const StreamKey& key, std::uint64_t /*epoch_hi*/) const {
    return read(key);
  }

  /// Durability barrier (fsync analogue): on return, every byte appended so
  /// far survives a crash of the writer. May throw IoError on injected
  /// fsync failure. No-op for stores that are already durable per append.
  virtual void sync() {}
};

/// Ramdisk-style in-memory store. Thread-safe (the asynchronous recording
/// worker and the application may touch different streams concurrently).
class MemoryStore final : public RecordStore {
 public:
  void append(const StreamKey& key,
              std::span<const std::uint8_t> bytes) override;
  [[nodiscard]] std::vector<std::uint8_t> read(
      const StreamKey& key) const override;
  [[nodiscard]] std::vector<StreamKey> keys() const override;
  [[nodiscard]] std::uint64_t total_bytes() const override;
  [[nodiscard]] std::uint64_t rank_bytes(minimpi::Rank rank) const override;

 private:
  mutable std::mutex mutex_;
  std::map<StreamKey, std::vector<std::uint8_t>> streams_;
};

/// Directory-backed store: one file per stream, named
/// `<rank>_<callsite>.cdcrec`.
class FileStore final : public RecordStore {
 public:
  explicit FileStore(std::string directory);

  void append(const StreamKey& key,
              std::span<const std::uint8_t> bytes) override;
  [[nodiscard]] std::vector<std::uint8_t> read(
      const StreamKey& key) const override;
  [[nodiscard]] std::vector<StreamKey> keys() const override;
  [[nodiscard]] std::uint64_t total_bytes() const override;
  [[nodiscard]] std::uint64_t rank_bytes(minimpi::Rank rank) const override;

 private:
  [[nodiscard]] std::string path_for(const StreamKey& key) const;

  std::string directory_;
  mutable std::mutex mutex_;
  std::map<StreamKey, std::uint64_t> sizes_;
};

/// Size-accounting-only store for compression benchmarks at scale: bytes
/// are counted and discarded.
class CountingStore final : public RecordStore {
 public:
  void append(const StreamKey& key,
              std::span<const std::uint8_t> bytes) override;
  [[nodiscard]] std::vector<std::uint8_t> read(
      const StreamKey& key) const override;
  [[nodiscard]] std::vector<StreamKey> keys() const override;
  [[nodiscard]] std::uint64_t total_bytes() const override;
  [[nodiscard]] std::uint64_t rank_bytes(minimpi::Rank rank) const override;

 private:
  mutable std::mutex mutex_;
  std::map<StreamKey, std::uint64_t> sizes_;
};

}  // namespace cdc::runtime
