#include "store/compression_service.h"

#include "support/check.h"

namespace cdc::store {

CompressionService::CompressionService(runtime::RecordStore* store)
    : CompressionService(store, Config{}) {}

CompressionService::CompressionService(runtime::RecordStore* store,
                                       const Config& config)
    : store_(store), queue_(config.queue_capacity) {
  CDC_CHECK(store != nullptr);
  CDC_CHECK_MSG(config.workers >= 1,
                "compression service needs at least one worker");
  workers_.reserve(config.workers);
  for (std::size_t i = 0; i < config.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

CompressionService::~CompressionService() {
  queue_.close();
  workers_.clear();  // joins
}

void CompressionService::submit(const runtime::StreamKey& key,
                                std::size_t raw_size_hint, Encoder encode) {
  // submit_mutex_ makes ticket order equal queue order, which in-order
  // commit relies on: FIFO pops then guarantee the lowest outstanding
  // ticket is always held by some worker, never stranded behind blocked
  // ones. It must NOT be the commit mutex — push() blocks on a full
  // queue, and workers need the commit mutex to drain it.
  const std::lock_guard<std::mutex> lock(submit_mutex_);
  Job job;
  job.key = key;
  job.raw_size = raw_size_hint;
  job.encode = std::move(encode);
  job.ticket = next_ticket_;
  const bool pushed = queue_.push(std::move(job));
  CDC_CHECK_MSG(pushed, "submit after the compression service stopped");
  ++next_ticket_;
  raw_bytes_ += raw_size_hint;
}

void CompressionService::worker_loop() {
  Job job;
  while (queue_.pop(job)) {
    const std::vector<std::uint8_t> encoded = job.encode();
    commit_in_order(job, encoded);
  }
}

void CompressionService::commit_in_order(
    const Job& job, const std::vector<std::uint8_t>& encoded) {
  std::unique_lock<std::mutex> lock(commit_mutex_);
  commit_cv_.wait(lock, [&] { return next_commit_ == job.ticket; });
  store_->append(job.key, encoded);
  encoded_bytes_ += encoded.size();
  ++next_commit_;
  commit_cv_.notify_all();
}

void CompressionService::drain() {
  std::uint64_t submitted = 0;
  {
    const std::lock_guard<std::mutex> lock(submit_mutex_);
    submitted = next_ticket_;
  }
  std::unique_lock<std::mutex> lock(commit_mutex_);
  commit_cv_.wait(lock, [&] { return next_commit_ >= submitted; });
}

CompressionService::Stats CompressionService::stats() const {
  Stats stats;
  {
    const std::lock_guard<std::mutex> lock(submit_mutex_);
    stats.raw_bytes = raw_bytes_;
  }
  {
    const std::lock_guard<std::mutex> lock(commit_mutex_);
    stats.jobs = next_commit_;
    stats.encoded_bytes = encoded_bytes_;
  }
  stats.workers = workers_.size();
  return stats;
}

}  // namespace cdc::store
