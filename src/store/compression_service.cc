#include "store/compression_service.h"

#include "obs/metrics.h"
#include "support/check.h"

namespace cdc::store {

CompressionService::CompressionService(runtime::RecordStore* store)
    : CompressionService(store, Config{}) {}

CompressionService::CompressionService(runtime::RecordStore* store,
                                       const Config& config)
    : store_(store),
      queue_(config.queue_capacity),
      level_(config.level),
      pool_(config.pool_buffers) {
  CDC_CHECK(store != nullptr);
  CDC_CHECK_MSG(config.workers >= 1,
                "compression service needs at least one worker");
  workers_.reserve(config.workers);
  for (std::size_t i = 0; i < config.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

CompressionService::~CompressionService() {
  queue_.close();
  workers_.clear();  // joins
}

void CompressionService::submit(const runtime::StreamKey& key,
                                std::size_t raw_size_hint, Encoder encode,
                                std::optional<runtime::EpochMeta> epoch) {
  submit_job(key, raw_size_hint,
             [encode = std::move(encode)](std::vector<std::uint8_t>) {
               return encode();
             },
             epoch);
}

void CompressionService::submit(const runtime::StreamKey& key,
                                std::size_t raw_size_hint,
                                EncoderInto encode,
                                std::optional<runtime::EpochMeta> epoch) {
  submit_job(key, raw_size_hint, std::move(encode), epoch);
}

void CompressionService::submit_job(const runtime::StreamKey& key,
                                    std::size_t raw_size_hint,
                                    EncoderInto encode,
                                    std::optional<runtime::EpochMeta> epoch) {
  // submit_mutex_ makes ticket order equal queue order, which in-order
  // commit relies on: FIFO pops then guarantee the lowest outstanding
  // ticket is always held by some worker, never stranded behind blocked
  // ones. It must NOT be the commit mutex — push() blocks on a full
  // queue, and workers need the commit mutex to drain it.
  static obs::Counter& obs_jobs = obs::counter("store.service.jobs");
  static obs::Counter& obs_raw = obs::counter("store.service.raw_bytes");
  static obs::Counter& obs_stalls =
      obs::counter("store.service.submit_stalls");
  static obs::Histogram& obs_depth =
      obs::histogram("store.service.queue_depth");
  const std::lock_guard<std::mutex> lock(submit_mutex_);
  if (obs::enabled()) {
    // A full queue means this push is about to block on back-pressure.
    if (queue_.size() >= queue_.capacity()) obs_stalls.add(1);
  }
  Job job;
  job.key = key;
  job.raw_size = raw_size_hint;
  job.encode = std::move(encode);
  job.epoch = epoch;
  job.ticket = next_ticket_;
  const bool pushed = queue_.push(std::move(job));
  CDC_CHECK_MSG(pushed, "submit after the compression service stopped");
  ++next_ticket_;
  raw_bytes_ += raw_size_hint;
  obs_jobs.add(1);
  obs_raw.add(raw_size_hint);
  if (obs::enabled()) obs_depth.record(queue_.size());
}

void CompressionService::worker_loop() {
  static obs::Histogram& obs_encode_ns =
      obs::histogram("store.service.encode_ns");
  static obs::Counter& obs_pool_hits = obs::counter("store.pool.hits");
  static obs::Counter& obs_pool_misses = obs::counter("store.pool.misses");
  static obs::Counter& obs_pool_recycled =
      obs::counter("store.pool.recycled_bytes");
  Job job;
  std::vector<std::uint8_t> buf;
  while (queue_.pop(job)) {
    if (pool_.acquire(buf)) {
      obs_pool_hits.add(1);
      obs_pool_recycled.add(buf.capacity());
    } else {
      obs_pool_misses.add(1);
    }
    const obs::Stopwatch sw;
    std::vector<std::uint8_t> encoded = job.encode(std::move(buf));
    obs_encode_ns.record(sw.ns());
    commit_in_order(job, encoded);
    // The store copied the bytes; the capacity goes back to the pool.
    pool_.release(std::move(encoded));
  }
}

void CompressionService::commit_in_order(
    const Job& job, const std::vector<std::uint8_t>& encoded) {
  static obs::Histogram& obs_wait_ns =
      obs::histogram("store.service.commit_wait_ns");
  static obs::Counter& obs_encoded =
      obs::counter("store.service.encoded_bytes");
  const obs::Stopwatch sw;
  std::unique_lock<std::mutex> lock(commit_mutex_);
  commit_cv_.wait(lock, [&] { return next_commit_ == job.ticket; });
  obs_wait_ns.record(sw.ns());
  if (job.epoch.has_value())
    store_->append_epoch(job.key, encoded, *job.epoch);
  else
    store_->append(job.key, encoded);
  encoded_bytes_ += encoded.size();
  obs_encoded.add(encoded.size());
  ++next_commit_;
  commit_cv_.notify_all();
}

void CompressionService::drain() {
  std::uint64_t submitted = 0;
  {
    const std::lock_guard<std::mutex> lock(submit_mutex_);
    submitted = next_ticket_;
  }
  std::unique_lock<std::mutex> lock(commit_mutex_);
  commit_cv_.wait(lock, [&] { return next_commit_ >= submitted; });
}

CompressionService::Stats CompressionService::stats() const {
  Stats stats;
  {
    const std::lock_guard<std::mutex> lock(submit_mutex_);
    stats.raw_bytes = raw_bytes_;
  }
  {
    const std::lock_guard<std::mutex> lock(commit_mutex_);
    stats.jobs = next_commit_;
    stats.encoded_bytes = encoded_bytes_;
  }
  stats.workers = workers_.size();
  stats.pool = pool_.stats();
  return stats;
}

}  // namespace cdc::store
