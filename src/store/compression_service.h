// Parallel chunk-compression service.
//
// The seed serialized all DEFLATE work on whichever thread flushed a
// chunk (the application thread under the synchronous Recorder, the one
// AsyncRecorder worker otherwise). This service fans sealed-chunk
// encoding jobs out over a bounded MPMC queue to a worker pool and then
// commits the encoded frames to the RecordStore *in submission order*
// (ticketed two-phase commit), so the byte stream each store key receives
// is bit-identical to the inline path — replay and the Figure 13 size
// accounting cannot tell the difference, only the wall clock can.
//
// Jobs are opaque encode closures rather than raw payloads so the service
// stays codec-agnostic: the tool layer hands it `encode_frame` thunks,
// the benches hand it synthetic ones, and a future replay-side service
// can hand it decode work unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <thread>
#include <vector>

#include "compress/deflate.h"
#include "runtime/storage.h"
#include "store/mpmc_queue.h"
#include "support/buffer_pool.h"

namespace cdc::store {

class CompressionService {
 public:
  /// Produces the fully framed bytes to append for one job. Runs on a
  /// worker thread; must be self-contained (owns its input payload).
  using Encoder = std::function<std::vector<std::uint8_t>()>;

  /// Pool-aware encoder: `reuse` donates recycled capacity (contents
  /// discarded) and the returned vector goes back to the pool after the
  /// commit, so steady-state encoding is allocation-free.
  using EncoderInto =
      std::function<std::vector<std::uint8_t>(std::vector<std::uint8_t>)>;

  struct Config {
    std::size_t workers = 2;
    std::size_t queue_capacity = 128;  ///< back-pressure bound, in jobs
    /// Compression level the service's owner stamps onto submitted jobs
    /// (the service itself is codec-agnostic; this is the plumbing knob
    /// recorders and benches read back via level()).
    compress::DeflateLevel level = compress::DeflateLevel::kDefault;
    std::size_t pool_buffers = 16;  ///< output buffers retained for reuse
  };

  explicit CompressionService(runtime::RecordStore* store);
  CompressionService(runtime::RecordStore* store, const Config& config);

  /// Drains outstanding jobs and stops the workers.
  ~CompressionService();

  CompressionService(const CompressionService&) = delete;
  CompressionService& operator=(const CompressionService&) = delete;

  /// Enqueues one encode job for `key`. Blocks when `queue_capacity`
  /// jobs are already outstanding. `raw_size_hint` is the uncompressed
  /// payload size, used only for throughput accounting. `epoch` is the
  /// chunk's epoch metadata, committed via RecordStore::append_epoch when
  /// present so epoch-aware stores index the frame.
  void submit(const runtime::StreamKey& key, std::size_t raw_size_hint,
              Encoder encode,
              std::optional<runtime::EpochMeta> epoch = std::nullopt);

  /// Pool-aware variant: the worker hands `encode` a recycled output
  /// buffer and returns the encoded result to the pool after commit.
  void submit(const runtime::StreamKey& key, std::size_t raw_size_hint,
              EncoderInto encode,
              std::optional<runtime::EpochMeta> epoch = std::nullopt);

  [[nodiscard]] compress::DeflateLevel level() const noexcept {
    return level_;
  }

  /// Blocks until every job submitted so far has been committed to the
  /// store. Safe to call repeatedly and to keep submitting afterwards.
  void drain();

  struct Stats {
    std::uint64_t jobs = 0;
    std::uint64_t raw_bytes = 0;      ///< sum of size hints
    std::uint64_t encoded_bytes = 0;  ///< framed bytes committed
    std::size_t workers = 0;
    support::BufferPool::Stats pool;  ///< output-buffer recycling
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Job {
    std::uint64_t ticket = 0;
    runtime::StreamKey key;
    std::size_t raw_size = 0;
    EncoderInto encode;
    std::optional<runtime::EpochMeta> epoch;
  };

  void submit_job(const runtime::StreamKey& key, std::size_t raw_size_hint,
                  EncoderInto encode,
                  std::optional<runtime::EpochMeta> epoch);

  void worker_loop();
  void commit_in_order(const Job& job,
                       const std::vector<std::uint8_t>& encoded);

  runtime::RecordStore* store_;
  BoundedMpmcQueue<Job> queue_;
  const compress::DeflateLevel level_;
  support::BufferPool pool_;

  // Ticketed in-order commit: submit() hands out tickets under
  // submit_mutex_ (so queue order == ticket order), workers encode out of
  // order, commit_in_order admits exactly one worker at a time in ticket
  // order under commit_mutex_. The two mutexes are never held together
  // by the service itself — see submit() for why that matters.
  mutable std::mutex submit_mutex_;
  std::uint64_t next_ticket_ = 0;  ///< next ticket submit() hands out
  std::uint64_t raw_bytes_ = 0;

  mutable std::mutex commit_mutex_;
  std::condition_variable commit_cv_;
  std::uint64_t next_commit_ = 0;  ///< ticket allowed to commit next
  std::uint64_t encoded_bytes_ = 0;

  std::vector<std::jthread> workers_;
};

}  // namespace cdc::store
