// The CDC record-container format: an append-only segment log that packs
// every (rank, callsite) stream of one recorded run into a single file,
// the way the paper's per-process records land on one node-local device
// (§4.2). Layout:
//
//   [header]   8 B   "CDCC" | version u8 (=1) | 3 reserved zero bytes
//   [frame]*         data frames, appended in commit order
//   [epochs]         optional epoch index (see below)
//   [epoch footer] 20 B  epoch crc32 u32 | epoch length u64 | "CDCEPOX1"
//   [index]          stream directory (per-stream frame offsets)
//   [footer]  20 B   index crc32 u32 | index length u64 | "CDCINDX1"
//
// Each frame is individually CRC32-protected (compress/crc32.h):
//
//   u8 0xF7 | svarint rank | varint callsite | varint seq |
//   varint payload_len | payload | u32 crc32(everything after the magic)
//
// The fixed-size footer makes stream lookup O(1 + index) on open: seek to
// EOF-20, validate the magic, seek back over the index, CRC-check it, and
// every stream's frame offsets are known without scanning the data region.
// A container whose footer or index is damaged is still recoverable by
// sequential scan (see ContainerReader::verify and repack_container).
//
// The epoch index is the random-access side of the same trick: one record
// per (stream, epoch) mapping the epoch to its frame offset and event
// counts, so a replay window [lo, hi) knows which frames to decode and how
// many events precede the window without inflating the whole stream.
// Payload layout (all varints):
//
//   varint stream_count
//   per stream: svarint rank | varint callsite | varint epoch_count
//     per epoch: varint frame-offset delta | varint matched | varint unmatched
//
// The section is optional — containers written before it existed (or whose
// appenders carried no epoch metadata) simply omit it, and a damaged epoch
// section degrades to sequential decode (loudly, via the
// store.container.epoch_fallbacks counter) instead of failing the open:
// the epoch index is an accelerator, never a trust anchor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/storage.h"

namespace cdc::store {

inline constexpr std::uint8_t kContainerMagic[4] = {'C', 'D', 'C', 'C'};
inline constexpr std::uint8_t kContainerVersion = 1;
inline constexpr std::size_t kContainerHeaderSize = 8;

inline constexpr std::uint8_t kFrameMagic = 0xF7;

inline constexpr std::uint8_t kFooterMagic[8] = {'C', 'D', 'C', 'I',
                                                 'N', 'D', 'X', '1'};
inline constexpr std::size_t kContainerFooterSize = 4 + 8 + 8;

inline constexpr std::uint8_t kEpochFooterMagic[8] = {'C', 'D', 'C', 'E',
                                                      'P', 'O', 'X', '1'};
inline constexpr std::size_t kEpochFooterSize = 4 + 8 + 8;

/// Index entry for one stream: where its frames live in the data region.
struct StreamIndexEntry {
  runtime::StreamKey key;
  std::vector<std::uint64_t> frame_offsets;  ///< file offset of each frame
  std::uint64_t payload_bytes = 0;           ///< sum of frame payload sizes
};

/// One epoch of one stream: the frame that holds it and its event counts.
struct EpochRecord {
  std::uint64_t frame_offset = 0;  ///< file offset of the epoch's frame
  std::uint64_t matched = 0;       ///< delivered (gated) events
  std::uint64_t unmatched = 0;     ///< recorded unmatched tests
};

/// Epoch index for one stream. Epoch e lives in the stream's e-th frame —
/// the recorder seals exactly one chunk per frame — so the offsets here
/// mirror StreamIndexEntry::frame_offsets, which is the redundancy the
/// reader cross-checks to catch a stale or mismatched epoch section.
struct StreamEpochIndex {
  runtime::StreamKey key;
  std::vector<EpochRecord> epochs;

  /// Delivered events in epochs [0, epoch) — the event-index origin of a
  /// replay window starting at `epoch` (clamped to the stream's end).
  [[nodiscard]] std::uint64_t matched_before(std::uint64_t epoch) const {
    std::uint64_t total = 0;
    for (std::uint64_t e = 0; e < epoch && e < epochs.size(); ++e)
      total += epochs[e].matched;
    return total;
  }
};

/// One defect found while verifying a container.
struct FrameDefect {
  std::uint64_t offset = 0;  ///< file offset of the affected frame
  bool key_known = false;    ///< stream identification succeeded
  runtime::StreamKey key;
  std::uint64_t seq = 0;  ///< per-stream frame sequence number
  std::string reason;     ///< e.g. "frame crc mismatch"
};

/// Result of a full-container verification pass.
struct VerifyReport {
  bool ok = true;
  std::uint64_t frames_checked = 0;
  std::uint64_t payload_bytes = 0;
  std::vector<FrameDefect> bad_frames;
  /// Container-level problems (header, index, footer, truncation).
  std::vector<std::string> container_errors;

  [[nodiscard]] std::string summary() const;
};

}  // namespace cdc::store
