#include "store/container_reader.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "compress/crc32.h"
#include "obs/metrics.h"
#include "store/container_writer.h"
#include "support/binary.h"
#include "support/check.h"

namespace cdc::store {

namespace {

std::string offset_str(std::uint64_t offset) {
  return "offset " + std::to_string(offset);
}

}  // namespace

std::string VerifyReport::summary() const {
  std::string out = ok ? "OK" : "CORRUPT";
  out += ": " + std::to_string(frames_checked) + " frames, " +
         std::to_string(payload_bytes) + " payload bytes";
  if (!bad_frames.empty())
    out += ", " + std::to_string(bad_frames.size()) + " bad frame(s)";
  if (!container_errors.empty())
    out += ", " + std::to_string(container_errors.size()) +
           " container error(s)";
  return out;
}

std::unique_ptr<ContainerReader> ContainerReader::open(
    const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return nullptr;
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  // Any readable file opens — even one truncated below the header+footer
  // minimum (an empty container, a crash during the very first write).
  // Damage is reported through header/index diagnostics so the salvage
  // path can still return the (possibly empty) record instead of failing
  // closed.
  auto reader = std::unique_ptr<ContainerReader>(new ContainerReader());
  reader->path_ = path;
  reader->bytes_ = std::move(bytes);
  reader->parse_footer_and_index();
  return reader;
}

void ContainerReader::parse_footer_and_index() {
  // Header.
  header_ok_ = bytes_.size() >= kContainerHeaderSize &&
               std::memcmp(bytes_.data(), kContainerMagic, 4) == 0 &&
               bytes_[4] == kContainerVersion && bytes_[5] == 0 &&
               bytes_[6] == 0 && bytes_[7] == 0;
  if (!header_ok_)
    header_error_ = bytes_.size() < kContainerHeaderSize
                        ? "file smaller than the container header"
                        : "bad container header (magic/version)";

  // Fixed-size footer at EOF. A file too small to hold one is a container
  // truncated before (or inside) its footer: no index, data region is
  // whatever frames survive a sequential scan.
  if (bytes_.size() < kContainerHeaderSize + kContainerFooterSize) {
    index_error_ = "file too small for an index footer (truncated?)";
    return;
  }
  const std::span<const std::uint8_t> all(bytes_);
  const std::size_t footer_at = bytes_.size() - kContainerFooterSize;
  support::ByteReader footer(all.subspan(footer_at, kContainerFooterSize));
  const std::uint32_t index_crc = footer.u32();
  const std::uint64_t index_len = footer.u64();
  if (std::memcmp(bytes_.data() + footer_at + 12, kFooterMagic, 8) != 0) {
    index_error_ = "bad footer magic";
    return;
  }
  if (index_len > footer_at - kContainerHeaderSize) {
    index_error_ = "footer index length exceeds file";
    return;
  }
  const std::size_t index_at = footer_at - index_len;
  data_end_ = index_at;  // trustworthy once the index CRC matches
  const auto index_bytes =
      all.subspan(index_at, static_cast<std::size_t>(index_len));
  if (compress::crc32(index_bytes) != index_crc) {
    index_error_ = "index crc mismatch";
    return;
  }

  support::ByteReader in(index_bytes);
  std::uint64_t stream_count = 0;
  if (!in.try_varint(stream_count)) {
    index_error_ = "truncated index";
    return;
  }
  for (std::uint64_t s = 0; s < stream_count; ++s) {
    std::int64_t rank = 0;
    std::uint64_t callsite = 0;
    std::uint64_t frame_count = 0;
    std::uint64_t payload_bytes = 0;
    if (!in.try_svarint(rank) || !in.try_varint(callsite) ||
        !in.try_varint(frame_count) || !in.try_varint(payload_bytes)) {
      index_error_ = "truncated index entry";
      return;
    }
    StreamIndexEntry entry;
    entry.key = runtime::StreamKey{
        static_cast<minimpi::Rank>(rank),
        static_cast<minimpi::CallsiteId>(callsite)};
    entry.payload_bytes = payload_bytes;
    entry.frame_offsets.reserve(frame_count);
    std::uint64_t offset = 0;
    for (std::uint64_t f = 0; f < frame_count; ++f) {
      std::uint64_t delta = 0;
      if (!in.try_varint(delta)) {
        index_error_ = "truncated index offsets";
        return;
      }
      offset += delta;
      if (offset < kContainerHeaderSize || offset >= data_end_) {
        index_error_ = "index offset out of range";
        return;
      }
      entry.frame_offsets.push_back(offset);
    }
    index_.emplace(entry.key, std::move(entry));
  }
  if (!in.exhausted()) {
    index_error_ = "trailing bytes after index";
    return;
  }
  index_ok_ = true;
  parse_epoch_section(index_at);
}

void ContainerReader::parse_epoch_section(std::size_t index_at) {
  // The section sits immediately before the stream index, self-located by
  // its own fixed-size footer. No magic there = old container; fine.
  if (index_at < kContainerHeaderSize + kEpochFooterSize) return;
  const std::size_t footer_at = index_at - kEpochFooterSize;
  if (std::memcmp(bytes_.data() + footer_at + 12, kEpochFooterMagic, 8) != 0)
    return;
  epoch_present_ = true;

  // On any damage below: keep the container usable by re-deriving the end
  // of the frame region from the last indexed frame (frames are
  // self-sizing and CRC-protected, so this is safe), then report the
  // damage instead of trusting a possibly-wrong epoch length.
  const auto recover_data_end = [&] {
    data_end_ = footer_at;
    std::uint64_t last = 0;
    for (const auto& [key, entry] : index_)
      if (!entry.frame_offsets.empty())
        last = std::max(last, entry.frame_offsets.back());
    if (last != 0) {
      const ParsedFrame frame = parse_frame_at(last, footer_at);
      if (frame.parsed && frame.crc_ok) data_end_ = last + frame.frame_size;
    }
  };

  const std::span<const std::uint8_t> all(bytes_);
  support::ByteReader footer(all.subspan(footer_at, kEpochFooterSize));
  const std::uint32_t epoch_crc = footer.u32();
  const std::uint64_t epoch_len = footer.u64();
  if (epoch_len > footer_at - kContainerHeaderSize) {
    epoch_error_ = "epoch index length exceeds file";
    recover_data_end();
    return;
  }
  const std::size_t epoch_at =
      footer_at - static_cast<std::size_t>(epoch_len);
  const auto epoch_bytes =
      all.subspan(epoch_at, static_cast<std::size_t>(epoch_len));
  if (compress::crc32(epoch_bytes) != epoch_crc) {
    epoch_error_ = "epoch index crc mismatch";
    recover_data_end();
    return;
  }

  support::ByteReader in(epoch_bytes);
  std::map<runtime::StreamKey, StreamEpochIndex> parsed;
  std::uint64_t stream_count = 0;
  bool ok = in.try_varint(stream_count);
  for (std::uint64_t s = 0; ok && s < stream_count; ++s) {
    std::int64_t rank = 0;
    std::uint64_t callsite = 0;
    std::uint64_t epoch_count = 0;
    if (!in.try_svarint(rank) || !in.try_varint(callsite) ||
        !in.try_varint(epoch_count)) {
      ok = false;
      break;
    }
    StreamEpochIndex entry;
    entry.key =
        runtime::StreamKey{static_cast<minimpi::Rank>(rank),
                           static_cast<minimpi::CallsiteId>(callsite)};
    entry.epochs.reserve(static_cast<std::size_t>(epoch_count));
    std::uint64_t offset = 0;
    for (std::uint64_t e = 0; e < epoch_count; ++e) {
      EpochRecord record;
      std::uint64_t delta = 0;
      if (!in.try_varint(delta) || !in.try_varint(record.matched) ||
          !in.try_varint(record.unmatched)) {
        ok = false;
        break;
      }
      offset += delta;
      record.frame_offset = offset;
      entry.epochs.push_back(record);
    }
    if (ok) parsed.emplace(entry.key, std::move(entry));
  }
  if (!ok || !in.exhausted()) {
    epoch_error_ = "truncated epoch index";
    recover_data_end();
    return;
  }

  // Cross-check against the stream index: epoch e must live in frame e.
  // A mismatch means one of the two indexes is lying; the frame CRCs will
  // arbitrate at read time, but the epoch map cannot be used for seeking.
  for (const auto& [key, entry] : parsed) {
    const StreamIndexEntry* stream = find(key);
    if (stream == nullptr ||
        stream->frame_offsets.size() != entry.epochs.size()) {
      epoch_error_ = "epoch index disagrees with stream index";
      recover_data_end();
      return;
    }
    for (std::size_t e = 0; e < entry.epochs.size(); ++e) {
      if (entry.epochs[e].frame_offset != stream->frame_offsets[e]) {
        epoch_error_ = "epoch index frame offset mismatch";
        recover_data_end();
        return;
      }
    }
  }

  epochs_ = std::move(parsed);
  epoch_ok_ = true;
  data_end_ = epoch_at;
}

const StreamEpochIndex* ContainerReader::find_epochs(
    const runtime::StreamKey& key) const {
  if (!epoch_ok_) return nullptr;
  const auto it = epochs_.find(key);
  return it != epochs_.end() ? &it->second : nullptr;
}

ContainerReader::ParsedFrame ContainerReader::parse_frame_at(
    std::uint64_t offset, std::uint64_t limit) const {
  ParsedFrame frame;
  if (offset >= limit) {
    frame.parse_error = "frame offset past data region";
    return frame;
  }
  const std::span<const std::uint8_t> all(bytes_);
  const auto region = all.subspan(static_cast<std::size_t>(offset),
                                  static_cast<std::size_t>(limit - offset));
  support::ByteReader in(region);
  std::uint8_t magic = 0;
  if (!in.try_u8(magic) || magic != kFrameMagic) {
    frame.parse_error = "bad frame magic";
    return frame;
  }
  std::int64_t rank = 0;
  std::uint64_t callsite = 0;
  std::uint64_t seq = 0;
  std::uint64_t payload_len = 0;
  if (!in.try_svarint(rank) || !in.try_varint(callsite) ||
      !in.try_varint(seq) || !in.try_varint(payload_len)) {
    frame.parse_error = "truncated frame header";
    return frame;
  }
  std::span<const std::uint8_t> payload;
  if (!in.try_bytes(static_cast<std::size_t>(payload_len), payload)) {
    frame.parse_error = "frame payload overruns data region";
    return frame;
  }
  const std::size_t body_end = in.position();
  std::uint32_t stored_crc = 0;
  if (!in.try_u32(stored_crc)) {
    frame.parse_error = "truncated frame crc";
    return frame;
  }
  frame.parsed = true;
  frame.key = runtime::StreamKey{static_cast<minimpi::Rank>(rank),
                                 static_cast<minimpi::CallsiteId>(callsite)};
  frame.seq = seq;
  frame.payload = payload;
  frame.frame_size = in.position();
  frame.crc_ok = compress::crc32(region.subspan(1, body_end - 1)) ==
                 stored_crc;
  if (!frame.crc_ok) frame.parse_error = "frame crc mismatch";
  return frame;
}

std::vector<std::uint64_t> ContainerReader::sorted_index_offsets() const {
  std::vector<std::uint64_t> offsets;
  for (const auto& [key, entry] : index_)
    offsets.insert(offsets.end(), entry.frame_offsets.begin(),
                   entry.frame_offsets.end());
  std::sort(offsets.begin(), offsets.end());
  return offsets;
}

std::vector<runtime::StreamKey> ContainerReader::keys() const {
  std::vector<runtime::StreamKey> out;
  if (index_ok_) {
    out.reserve(index_.size());
    for (const auto& [key, entry] : index_) out.push_back(key);
    return out;
  }
  for (const GoodFrame& frame : scan_good_frames())
    if (out.empty() || std::find(out.begin(), out.end(), frame.key) ==
                           out.end())
      out.push_back(frame.key);
  return out;
}

const StreamIndexEntry* ContainerReader::find(
    const runtime::StreamKey& key) const {
  const auto it = index_.find(key);
  return it != index_.end() ? &it->second : nullptr;
}

std::vector<std::uint8_t> ContainerReader::read_stream(
    const runtime::StreamKey& key) const {
  CDC_CHECK_MSG(index_ok_,
                "container index unreadable — run verify/repack first");
  const StreamIndexEntry* entry = find(key);
  if (entry == nullptr) return {};
  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(entry->payload_bytes));
  for (const std::uint64_t offset : entry->frame_offsets) {
    const ParsedFrame frame = parse_frame_at(offset, data_end_);
    CDC_CHECK_MSG(frame.parsed && frame.crc_ok,
                  "container frame corrupt — refusing to replay from it");
    CDC_CHECK_MSG(frame.key == key, "container frame belongs to another "
                                    "stream — index is inconsistent");
    out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  }
  return out;
}

ContainerReader::WindowRead ContainerReader::read_stream_window(
    const runtime::StreamKey& key, std::uint64_t epoch_lo,
    std::uint64_t epoch_hi) const {
  CDC_CHECK_MSG(index_ok_,
                "container index unreadable — run verify/repack first");
  WindowRead window;
  const StreamEpochIndex* epochs = find_epochs(key);
  if (epochs == nullptr) {
    // Damaged or absent epoch index: loud sequential fallback. The caller
    // gets the whole stream and decodes from epoch 0 — slower, never wrong.
    obs::counter("store.container.epoch_fallbacks").add(1);
    window.bytes = read_stream(key);
    return window;
  }
  const std::uint64_t n = epochs->epochs.size();
  const std::uint64_t lo = std::min(epoch_lo, n);
  const std::uint64_t hi = std::min(epoch_hi, n);
  window.seeked = true;
  window.first_epoch = lo;
  for (std::uint64_t e = lo; e < hi; ++e) {
    const ParsedFrame frame =
        parse_frame_at(epochs->epochs[e].frame_offset, data_end_);
    CDC_CHECK_MSG(frame.parsed && frame.crc_ok,
                  "container frame corrupt — refusing to replay from it");
    CDC_CHECK_MSG(frame.key == key, "container frame belongs to another "
                                    "stream — index is inconsistent");
    window.bytes.insert(window.bytes.end(), frame.payload.begin(),
                        frame.payload.end());
  }
  return window;
}

std::vector<std::span<const std::uint8_t>> ContainerReader::frame_payloads(
    const runtime::StreamKey& key) const {
  CDC_CHECK_MSG(index_ok_,
                "container index unreadable — run verify/repack first");
  const StreamIndexEntry* entry = find(key);
  if (entry == nullptr) return {};
  std::vector<std::span<const std::uint8_t>> out;
  out.reserve(entry->frame_offsets.size());
  for (const std::uint64_t offset : entry->frame_offsets) {
    const ParsedFrame frame = parse_frame_at(offset, data_end_);
    CDC_CHECK_MSG(frame.parsed && frame.crc_ok,
                  "container frame corrupt — refusing to replay from it");
    CDC_CHECK_MSG(frame.key == key, "container frame belongs to another "
                                    "stream — index is inconsistent");
    out.push_back(frame.payload);
  }
  return out;
}

VerifyReport ContainerReader::verify() const {
  VerifyReport report;
  if (!header_ok_) {
    report.container_errors.push_back(header_error_);
  }
  if (!index_ok_) report.container_errors.push_back(index_error_);
  if (epoch_present_ && !epoch_ok_)
    report.container_errors.push_back("epoch index: " + epoch_error_);

  // Identity fallback for frames whose own header bytes are mangled.
  std::map<std::uint64_t, std::pair<runtime::StreamKey, std::uint64_t>>
      identity;
  if (index_ok_) {
    for (const auto& [key, entry] : index_)
      for (std::size_t i = 0; i < entry.frame_offsets.size(); ++i)
        identity.emplace(entry.frame_offsets[i], std::make_pair(key, i));
  }

  const auto add_defect = [&](std::uint64_t offset, const ParsedFrame& frame,
                              const std::string& reason) {
    FrameDefect defect;
    defect.offset = offset;
    defect.reason = reason;
    const auto it = identity.find(offset);
    if (it != identity.end()) {
      defect.key_known = true;
      defect.key = it->second.first;
      defect.seq = it->second.second;
    } else if (frame.parsed) {
      defect.key_known = true;
      defect.key = frame.key;
      defect.seq = frame.seq;
    }
    report.bad_frames.push_back(defect);
  };

  if (index_ok_) {
    // Index-driven sweep with a contiguity check: the frames listed in the
    // index must tile the data region exactly, so a flip anywhere in the
    // data region lands inside some checked frame.
    const std::vector<std::uint64_t> offsets = sorted_index_offsets();
    std::uint64_t expected = kContainerHeaderSize;
    for (const std::uint64_t offset : offsets) {
      if (offset != expected)
        report.container_errors.push_back(
            "index/data gap or overlap at " + offset_str(offset));
      const ParsedFrame frame = parse_frame_at(offset, data_end_);
      if (!frame.parsed || !frame.crc_ok) {
        add_defect(offset, frame, frame.parse_error);
        expected = offset;  // resync on the next indexed offset
        continue;
      }
      const auto it = identity.find(offset);
      if (it != identity.end() &&
          (frame.key != it->second.first || frame.seq != it->second.second)) {
        add_defect(offset, frame, "frame identity disagrees with index");
      } else {
        ++report.frames_checked;
        report.payload_bytes += frame.payload.size();
      }
      expected = offset + frame.frame_size;
    }
    if (report.bad_frames.empty() && expected != data_end_)
      report.container_errors.push_back(
          "data region does not end where the index begins (" +
          offset_str(expected) + " vs " + offset_str(data_end_) + ")");
  } else {
    // No trustworthy index: sequential scan as far as frames parse.
    const std::uint64_t limit = data_end_ != 0 ? data_end_ : bytes_.size();
    std::uint64_t pos = kContainerHeaderSize;
    while (pos < limit) {
      const ParsedFrame frame = parse_frame_at(pos, limit);
      if (!frame.parsed) {
        report.container_errors.push_back(
            "sequential scan stopped at " + offset_str(pos) + " (" +
            frame.parse_error + "); remainder unverified");
        break;
      }
      if (!frame.crc_ok) add_defect(pos, frame, frame.parse_error);
      else {
        ++report.frames_checked;
        report.payload_bytes += frame.payload.size();
      }
      pos += frame.frame_size;
    }
  }

  report.ok = header_ok_ && index_ok_ && report.bad_frames.empty() &&
              report.container_errors.empty();
  return report;
}

std::vector<ContainerReader::GoodFrame> ContainerReader::scan_good_frames()
    const {
  std::vector<GoodFrame> out;
  if (index_ok_) {
    for (const std::uint64_t offset : sorted_index_offsets()) {
      const ParsedFrame frame = parse_frame_at(offset, data_end_);
      if (frame.parsed && frame.crc_ok)
        out.push_back(GoodFrame{offset, frame.key, frame.seq, frame.payload});
    }
    return out;
  }
  const std::uint64_t limit = data_end_ != 0 ? data_end_ : bytes_.size();
  std::uint64_t pos = kContainerHeaderSize;
  while (pos < limit) {
    const ParsedFrame frame = parse_frame_at(pos, limit);
    if (!frame.parsed) break;  // cannot resync without an index
    if (frame.crc_ok)
      out.push_back(GoodFrame{pos, frame.key, frame.seq, frame.payload});
    pos += frame.frame_size;
  }
  return out;
}

RepackResult repack_container(const std::string& in_path,
                              const std::string& out_path) {
  RepackResult result;
  std::string error;
  const auto reader = ContainerReader::open(in_path, &error);
  if (reader == nullptr) {
    result.error = error;
    return result;
  }
  const auto frames = reader->scan_good_frames();
  std::uint64_t listed = frames.size();
  if (reader->index_ok()) {
    listed = 0;
    for (const runtime::StreamKey& key : reader->keys())
      listed += reader->find(key)->frame_offsets.size();
  }
  {
    ContainerWriter writer(out_path);
    for (const ContainerReader::GoodFrame& frame : frames)
      writer.append_frame(frame.key, frame.payload);
    writer.seal();
  }
  result.ok = true;
  result.frames_kept = frames.size();
  result.frames_dropped = listed - frames.size();
  result.bytes_in = reader->file_bytes();
  result.bytes_out = std::filesystem::file_size(out_path);
  return result;
}

}  // namespace cdc::store
